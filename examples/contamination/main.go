// Contamination: the executable version of the scenario in §6.3 of the
// paper, which motivates all of A_nuc's extra machinery.
//
// Naively replacing majorities with Σν quorums in the Mostéfaoui–Raynal
// algorithm looks plausible — Σν quorums at correct processes intersect,
// just like majorities. But Σν lets a *faulty* process use quorums that
// intersect nothing: that process races ahead deciding on its own stale
// estimate, and when Ω (legally!) points correct stragglers at it before
// stabilizing, they adopt the stale estimate and later decide on it, while
// another correct process has already decided the other value. Two correct
// processes decide differently: nonuniform agreement is violated.
//
// A_nuc survives the exact same detector histories and schedules: quorum
// histories travel on every message, the "distrust" rule rejects estimates
// from processes whose quorums provably conflict with live ones, and the
// SAW/ACK quorum-awareness handshake gates decisions (§6.3).
package main

import (
	"fmt"
	"log"

	"nuconsensus"
)

func main() {
	const (
		n         = 3
		misleader = nuconsensus.ProcessID(2) // faulty, crashes late
		period    = 40
		stabilize = 280
	)
	pattern := nuconsensus.Crashes(n, map[nuconsensus.ProcessID]nuconsensus.Time{
		misleader: stabilize + 40,
	})
	proposals := []int{0, 0, 1} // the misleader alone proposes 1

	naiveViolations, anucViolations := 0, 0
	const seeds = 20
	var exampleSeed int64 = -1
	for seed := int64(1); seed <= seeds; seed++ {
		history := nuconsensus.Pair(
			nuconsensus.AlternatingOmega(misleader, 0, period, stabilize),
			nuconsensus.SigmaNu(pattern, stabilize, seed),
		)

		// The naive algorithm under the adversary.
		res, err := nuconsensus.Simulate(nuconsensus.SimOptions{
			Automaton:       nuconsensus.MRNaiveNu(proposals),
			Pattern:         pattern,
			History:         history,
			Seed:            seed,
			StopWhenDecided: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := nuconsensus.CheckNonuniformConsensus(res.Config, pattern); err != nil {
			naiveViolations++
			if exampleSeed < 0 {
				exampleSeed = seed
				fmt.Printf("seed %d, naive MR with Σν quorums:\n", seed)
				for p, v := range res.Decisions {
					fmt.Printf("  %v decided %d\n", p, v)
				}
				fmt.Printf("  -> %v\n\n", err)
			}
		}

		// A_nuc (with T_{Σν→Σν+}, per Theorem 6.28) on the same histories.
		res, err = nuconsensus.Simulate(nuconsensus.SimOptions{
			Automaton:       nuconsensus.BoostedANuc(proposals),
			Pattern:         pattern,
			History:         history,
			Seed:            seed,
			MaxSteps:        8000,
			StopWhenDecided: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := nuconsensus.CheckNonuniformConsensus(res.Config, pattern); err != nil {
			anucViolations++
		}
	}

	fmt.Printf("across %d adversarial executions:\n", seeds)
	fmt.Printf("  naive MR+Σν     : %d nonuniform-agreement violations (contamination)\n", naiveViolations)
	fmt.Printf("  T_{Σν→Σν+}∘A_nuc: %d violations\n", anucViolations)
	if naiveViolations == 0 {
		log.Fatal("expected the adversary to contaminate the naive algorithm")
	}
	if anucViolations != 0 {
		log.Fatal("A_nuc must never violate nonuniform agreement")
	}
	fmt.Println("\nA_nuc's distrust rule and quorum-awareness handshake block the contamination (§6.3).")
}
