// Replicated log: the application the paper's introduction motivates —
// "consensus ... lies at the heart of many important problems in
// fault-tolerant distributed computing" — built on A_nuc, one nonuniform
// consensus instance per log slot.
//
// Each replica queues commands it wants appended; commands are forwarded to
// every replica (leader-based consensus decides the leader's proposal, so
// the leader must learn them), each slot runs A_nuc, and correct replicas
// end with identical logs.
//
// Nonuniformity leaves a visible fingerprint on the design: a faulty
// replica may decide a value no correct replica decides (experiment E14),
// so the usual DECIDED-gossip fast path is unsound here — laggards must
// finish their own instances, and decided instances stay alive to keep
// feeding them. See internal/rsm for the details.
package main

import (
	"fmt"
	"log"

	"nuconsensus"
)

func main() {
	// Four replicas; p3 crashes mid-run. Each wants its own commands in.
	commands := [][]int{
		{101, 102}, // p0's commands
		{201},      // p1's
		{301, 302}, // p2's
		{401},      // p3's (may or may not land before its crash)
	}
	const slots = 6
	pattern := nuconsensus.Crashes(4, map[nuconsensus.ProcessID]nuconsensus.Time{3: 120})

	res, err := nuconsensus.Simulate(nuconsensus.SimOptions{
		Automaton:       nuconsensus.ReplicatedLog(commands, slots),
		Pattern:         pattern,
		History:         nuconsensus.PairForANuc(pattern, 150, 7),
		Seed:            7,
		MaxSteps:        150000,
		StopWhenDecided: true, // "decided" = every correct replica's log is full
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Decided {
		log.Fatalf("log never filled (%d steps)", res.Steps)
	}

	fmt.Printf("replicated %d slots in %d steps, %d messages\n\n", slots, res.Steps, res.MessagesSent)
	var reference []int
	for p := 0; p < 4; p++ {
		entries, ok := nuconsensus.LogEntries(res.States, nuconsensus.ProcessID(p))
		if !ok {
			continue
		}
		crashedNote := ""
		if pattern.Faulty().Has(nuconsensus.ProcessID(p)) {
			crashedNote = "  (crashed mid-run)"
		}
		fmt.Printf("p%d log: %v%s\n", p, entries, crashedNote)
		if pattern.Correct().Has(nuconsensus.ProcessID(p)) {
			if reference == nil {
				reference = entries
			} else if fmt.Sprint(entries) != fmt.Sprint(reference) {
				log.Fatalf("correct replicas diverged: %v vs %v", entries, reference)
			}
		}
	}
	fmt.Println("\nall correct replicas hold identical logs — per-slot nonuniform agreement.")
	fmt.Println("(-1 entries are no-ops: slots decided while every live queue was empty)")
}
