// Partition: the executable version of Theorem 7.1 (ONLY-IF) — when half
// or more of the processes may crash, no algorithm can transform (Ω, Σν)
// into Σ, so the nonuniform and uniform weakest failure detectors really
// are different.
//
// The proof is a partition argument. Split Π into halves A and B and give
// every process the constant (Ω, Σν) history (min A, A) in A and
// (min B, B) in B — legal for Σν because the quorums of *correct*
// processes always intersect (in each run only one side is correct).
//
//	Run R:  B crashes before taking a step. Completeness of Σ forces the
//	        candidate to output some quorum A' ⊆ A at a ∈ A, at a time τ.
//	Run R′: identical through τ for A (B is merely slow), then A crashes
//	        and B runs alone; completeness now forces some B' ⊆ B at
//	        b ∈ B. But a already output A' at τ — and A' ∩ B' = ∅,
//	        violating Σ's intersection property.
//
// We stage both runs against two natural candidates and print the
// forced violation.
package main

import (
	"fmt"
	"log"

	"nuconsensus"
)

func main() {
	for _, n := range []int{4, 6} {
		t := n / 2 // half the processes may crash: t ≥ n/2
		fmt.Printf("== n=%d, t=%d (E_t with t ≥ n/2) ==\n", n, t)
		candidates := []struct {
			name string
			aut  nuconsensus.Automaton
		}{
			{"(n−t)-threshold rounds", nuconsensus.ThresholdQuorum(n, t)},
			{"Σν passthrough", nuconsensus.PassthroughQuorum(n)},
		}
		for _, c := range candidates {
			o := nuconsensus.RunPartition(c.name, c.aut, n, t)
			if o.Err != nil {
				log.Fatalf("%s: %v", c.name, o.Err)
			}
			fmt.Printf("  candidate %-22s run R: %v output %v at τ=%d;  run R′: %v output %v\n",
				c.name, nuconsensus.ProcessID(0), o.AQuorum, o.Tau, o.BQuorum.Min(), o.BQuorum)
			if !o.Disjoint {
				log.Fatalf("%s: expected disjoint quorums", c.name)
			}
			fmt.Printf("    %v ∩ %v = ∅ — Σ's intersection property is violated\n", o.AQuorum, o.BQuorum)
		}
		fmt.Println()
	}
	fmt.Println("Every candidate satisfying Σ-completeness in both runs is forced into the")
	fmt.Println("violation: (Ω, Σν) is strictly weaker than (Ω, Σ) when t ≥ n/2 (Theorem 7.1).")
}
