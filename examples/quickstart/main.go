// Quickstart: solve nonuniform consensus among five processes, two of
// which crash, using the paper's algorithm A_nuc driven by (Ω, Σν+) — on
// all three substrates: the deterministic model simulator, the goroutine
// runtime, and a real TCP mesh on loopback.
package main

import (
	"fmt"
	"log"

	"nuconsensus"
)

func main() {
	const n = 5
	proposals := []int{10, 20, 20, 10, 20} // process p proposes proposals[p]

	// Two processes crash: p1 early, p4 later.
	pattern := nuconsensus.Crashes(n, map[nuconsensus.ProcessID]nuconsensus.Time{
		1: 50,
		4: 200,
	})

	// Canonical detector histories: noisy before t=300, stable afterwards.
	history := nuconsensus.Pair(
		nuconsensus.Omega(pattern, 300, 1),
		nuconsensus.SigmaNuPlus(pattern, 300, 1),
	)

	fmt.Println("== deterministic simulator ==")
	res, err := nuconsensus.Simulate(nuconsensus.SimOptions{
		Automaton:       nuconsensus.ANuc(proposals),
		Pattern:         pattern,
		History:         history,
		Seed:            42,
		StopWhenDecided: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	report(res, pattern)

	fmt.Println("== goroutine runtime ==")
	res, err = nuconsensus.RunCluster(nuconsensus.ClusterOptions{
		Automaton: nuconsensus.ANuc(proposals),
		Pattern:   pattern,
		History:   history,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	report(res, pattern)

	fmt.Println("== TCP loopback mesh ==")
	res, err = nuconsensus.RunTCP(nuconsensus.ClusterOptions{
		Automaton: nuconsensus.ANuc(proposals),
		Pattern:   pattern,
		History:   history,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	report(res, pattern)
}

func report(res *nuconsensus.SimResult, pattern *nuconsensus.FailurePattern) {
	fmt.Printf("steps: %d, messages: %d, all correct decided: %v\n",
		res.Steps, res.MessagesSent, res.Decided)
	for p, v := range res.Decisions {
		fmt.Printf("  %v decided %d\n", p, v)
	}
	if err := nuconsensus.CheckNonuniformConsensus(res.Config, pattern); err != nil {
		log.Fatalf("consensus violated: %v", err)
	}
	fmt.Println("nonuniform consensus: termination ✓ validity ✓ agreement ✓")
	fmt.Println()
}
