// Oracle-free: the paper folded back into a deployable protocol stack.
//
// (Ω, Σν) is the weakest failure detector for nonuniform consensus — but
// where do you get one? In a partially synchronous system with a correct
// majority, you build both halves yourself:
//
//   - Ω from heartbeats with adaptive timeouts (internal/hb): suspicion of
//     correct processes eventually ceases once delays stabilize, and all
//     correct processes converge on the smallest unsuspected one;
//   - Σν+ from the Theorem 7.1 (IF) threshold algorithm, with the owner
//     forced into every quorum: (n−t)-sets pairwise intersect when
//     t < n/2, giving every Σν+ property for free.
//
// Composing the two with A_nuc yields nonuniform consensus with no failure
// detector at all — this run even survives a hostile pre-GST prefix in
// which the scheduler starves message delivery.
package main

import (
	"fmt"
	"log"

	"nuconsensus"
)

func main() {
	const (
		n   = 5
		t   = 2   // t < n/2 crashes tolerated
		gst = 400 // the scheduler misbehaves before this time
	)
	proposals := []int{100, 200, 100, 200, 100}
	pattern := nuconsensus.Crashes(n, map[nuconsensus.ProcessID]nuconsensus.Time{
		1: 60,
		3: 120,
	})

	res, err := nuconsensus.Simulate(nuconsensus.SimOptions{
		Automaton:       nuconsensus.OracleFreeANuc(proposals, t),
		Pattern:         pattern,
		History:         nil, // no failure detector — that's the point
		Seed:            7,
		GST:             gst,
		MaxSteps:        80000,
		StopWhenDecided: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("partial synchrony: hostile until t=%d, timely afterwards\n", gst)
	fmt.Printf("crashes: p1@60, p3@120 (t=%d < n/2)\n\n", t)
	fmt.Printf("all correct decided: %v after %d steps, %d messages\n",
		res.Decided, res.Steps, res.MessagesSent)
	for p, v := range res.Decisions {
		fmt.Printf("  %v decided %d\n", p, v)
	}
	if !res.Decided {
		log.Fatal("expected decisions under partial synchrony")
	}
	if err := nuconsensus.CheckNonuniformConsensus(res.Config, pattern); err != nil {
		log.Fatalf("consensus violated: %v", err)
	}
	fmt.Println("\nnonuniform consensus with zero oracles: the (Ω, Σν+) pair was built")
	fmt.Println("from heartbeats and threshold quorums (internal/hb + Theorem 7.1 IF).")
	fmt.Printf("message profile: %v\n", res.SentKinds)
}
