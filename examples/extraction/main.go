// Extraction: the executable version of the necessity direction
// (Theorem 5.4). Given ANY failure detector D that can be used to solve
// nonuniform consensus, the algorithm T_{D→Σν} emulates Σν:
//
//  1. every process runs A_DAG, sampling its local D module and gossiping
//     an ever-growing DAG of samples (§4.1);
//  2. from a fresh subgraph G_p|u_p of that DAG, it simulates schedules of
//     the consensus algorithm A (which uses D) from the all-0 and all-1
//     initial configurations (§4.2);
//  3. whenever it finds schedules deciding in both, the participants form
//     its next Σν quorum — the freshness barrier u_p gives completeness,
//     and run-merging (Lemma 2.2) is why two disjoint quorums would let A
//     decide 0 and 1 in one run, so quorums of correct processes must
//     intersect (Lemma 5.3).
//
// Here D = (Ω, Σ) and A = Mostéfaoui–Raynal with Σ quorums. Because this
// A solves *uniform* consensus, the very same extraction also yields Σ
// (Theorem 5.8) — we check both specifications.
package main

import (
	"fmt"
	"log"

	"nuconsensus"
)

func main() {
	const n = 3
	pattern := nuconsensus.Crashes(n, map[nuconsensus.ProcessID]nuconsensus.Time{
		2: 30, // p2 crashes early; the emulated quorums must eventually exclude it
	})
	history := nuconsensus.Pair(
		nuconsensus.Omega(pattern, 40, 7),
		nuconsensus.Sigma(pattern, 40, 7),
	)
	extractor := nuconsensus.ExtractSigmaNu(n,
		func(proposals []int) nuconsensus.Automaton { return nuconsensus.MRSigma(proposals) },
		1, // search for deciding simulated schedules on every step
	)

	res, err := nuconsensus.Simulate(nuconsensus.SimOptions{
		Automaton: extractor,
		Pattern:   pattern,
		History:   history,
		Seed:      7,
		MaxSteps:  700,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Show how each correct process's emulated quorum evolves.
	last := map[nuconsensus.ProcessID]string{}
	for _, s := range res.EmulatedOutputs {
		if pattern.Correct().Has(s.P) && last[s.P] != s.Val.String() {
			fmt.Printf("t=%4d  %v emits %s\n", s.T, s.P, s.Val)
			last[s.P] = s.Val.String()
		}
	}

	if err := nuconsensus.CheckEmulatedSigmaNu(res, pattern); err != nil {
		log.Fatalf("emulated Σν violates its specification: %v", err)
	}
	fmt.Println("\nemulated history satisfies Σν: nonuniform intersection ✓ completeness ✓")

	if err := nuconsensus.CheckEmulatedSigma(res, pattern); err != nil {
		log.Fatalf("emulated Σ violates its specification: %v", err)
	}
	fmt.Println("…and, since MR-Σ solves uniform consensus, full Σ as well (Theorem 5.8) ✓")
}
