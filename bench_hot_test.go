// Hot-path benchmarks: the four inner loops every layer multiplies (the
// sim step loop, the wire codec, substrate.Inbox, the explore frontier —
// the last one lives in bench_test.go as BenchmarkExploreFrontier). These
// are the benchmarks cmd/benchreport normalizes into BENCH_9.json and the
// CI perf job gates on: allocs/op on the sim step loop and the wire
// decode/encode paths must stay at their committed baseline (zero in
// steady state), per DESIGN.md §8.
package nuconsensus_test

import (
	"fmt"
	"testing"

	"nuconsensus/internal/consensus"
	dagpkg "nuconsensus/internal/dag"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/hb"
	"nuconsensus/internal/model"
	"nuconsensus/internal/obs"
	"nuconsensus/internal/quorum"
	"nuconsensus/internal/rsm"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/substrate"
	"nuconsensus/internal/wire"
)

// idleState is the zero-size state of the idle benchmark automaton; its
// boxing is allocation-free, so the benchmark isolates engine overhead.
type idleState struct{}

func (s idleState) CloneState() model.State { return s }

// idleAutomaton takes λ-steps forever: no sends, no state change. It is
// the steady-state floor of the step loop — everything the engine itself
// costs per step, with the algorithm contributing nothing.
type idleAutomaton struct{ n int }

func (a idleAutomaton) Name() string                          { return "bench-idle" }
func (a idleAutomaton) N() int                                { return a.n }
func (a idleAutomaton) InitState(model.ProcessID) model.State { return idleState{} }
func (a idleAutomaton) Step(p model.ProcessID, s model.State, m *model.Message, d model.FDValue) (model.State, []model.Send) {
	return s, nil
}

// pingAutomaton sends one heartbeat to the next process on every step —
// the messaging steady state: each step allocates exactly the messages the
// model semantics require (payloads are immutable once sent) and nothing
// else.
type pingAutomaton struct{ n int }

func (a pingAutomaton) Name() string                          { return "bench-ping" }
func (a pingAutomaton) N() int                                { return a.n }
func (a pingAutomaton) InitState(model.ProcessID) model.State { return idleState{} }
func (a pingAutomaton) Step(p model.ProcessID, s model.State, m *model.Message, d model.FDValue) (model.State, []model.Send) {
	return s, []model.Send{{To: model.ProcessID((int(p) + 1) % a.n), Payload: hb.HeartbeatPayload{}}}
}

// nullHistory is the empty failure-detector history (every query yields no
// value), so detector plumbing costs nothing in the step benchmarks.
type nullHistory struct{}

func (nullHistory) Output(model.ProcessID, model.Time) model.FDValue { return nil }

// benchSimSteps runs b.N steps through one engine instance so ns/op and
// allocs/op are per-step figures; the constant per-run setup vanishes as
// b.N grows.
func benchSimSteps(b *testing.B, aut model.Automaton, bus *obs.Bus) {
	b.Helper()
	pattern := model.NewFailurePattern(aut.N())
	b.ReportAllocs()
	b.ResetTimer()
	res, err := sim.Run(sim.Exec{
		Automaton: aut,
		Pattern:   pattern,
		History:   nullHistory{},
		Scheduler: sim.NewFairScheduler(1, 0.8, 3),
		MaxSteps:  b.N,
		Bus:       bus,
	})
	if err != nil {
		b.Fatal(err)
	}
	if res.Steps != b.N {
		b.Fatalf("ran %d steps, want %d", res.Steps, b.N)
	}
}

// BenchmarkSimStep measures the deterministic step loop's steady state:
// "idle" is pure engine overhead (must be 0 allocs/op), "idle-bus" adds
// the obs event bus with a metrics registry and no sinks (must also be 0
// allocs/op), and "messaging" adds one heartbeat send per step (allocs are
// the model's own message objects).
func BenchmarkSimStep(b *testing.B) {
	b.Run("idle", func(b *testing.B) {
		benchSimSteps(b, idleAutomaton{n: 4}, nil)
	})
	b.Run("idle-bus", func(b *testing.B) {
		benchSimSteps(b, idleAutomaton{n: 4}, obs.NewBus(nil, obs.NewRegistry()))
	})
	b.Run("messaging", func(b *testing.B) {
		benchSimSteps(b, pingAutomaton{n: 4}, nil)
	})
	b.Run("messaging-bus", func(b *testing.B) {
		benchSimSteps(b, pingAutomaton{n: 4}, obs.NewBus(nil, obs.NewRegistry()))
	})
}

// benchFrames returns framed wire messages representative of the hot
// paths: the minimal heartbeat (the highest-frequency small frame), a
// REPORT (small consensus payload), and a DAG snapshot (the CHT-style
// gossip heavyweight whose construction/decode cost dominates E2).
func benchFrame(b *testing.B, payload model.Payload) []byte {
	b.Helper()
	frame, err := wire.EncodeMessage(&model.Message{From: 1, To: 2, Seq: 7, Payload: payload})
	if err != nil {
		b.Fatal(err)
	}
	return frame
}

// BenchmarkWireEncode measures payload → frame encoding into a reused
// buffer. Steady state must be 0 allocs/op for every payload kind: the
// scratch buffer comes from the caller (netrun recycles frames through the
// package pool).
func BenchmarkWireEncode(b *testing.B) {
	for _, tc := range []struct {
		name string
		pl   model.Payload
	}{
		{"heartbeat", hb.HeartbeatPayload{}},
		{"lead-hist", consensusLead(3, 1, quorumHistories(5))},
		{"lead-delta", benchDeltaPayload()},
		{"dag64", benchGraphPayload(64)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			msg := &model.Message{From: 1, To: 2, Seq: 7, Payload: tc.pl}
			var frame []byte
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if frame, err = wire.AppendMessage(frame[:0], msg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireDecode measures frame → message decoding. The heartbeat
// path must be 0 allocs/op in steady state (zero-size payload, caller-
// provided message); larger payloads allocate only their semantic
// structures.
func BenchmarkWireDecode(b *testing.B) {
	for _, tc := range []struct {
		name string
		pl   model.Payload
	}{
		{"heartbeat", hb.HeartbeatPayload{}},
		{"report", benchReportPayload()},
		{"lead-delta", benchDeltaPayload()},
		{"dag64", benchGraphPayload(64)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			frame := benchFrame(b, tc.pl)
			var msg model.Message
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := wire.DecodeMessageInto(&msg, frame); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWirePeek measures the envelope-only parse the tcp readers run
// on every received frame (supersession collapsing works on undecoded
// frames). Must be 0 allocs/op.
func BenchmarkWirePeek(b *testing.B) {
	frame := benchFrame(b, benchGraphPayload(64))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.PeekMessage(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInbox measures the concurrent substrates' mailbox under its two
// regimes: plain FIFO put/take, and a superseding flood (DAG snapshots)
// where puts collapse older pending frames.
func BenchmarkInbox(b *testing.B) {
	b.Run("put-take", func(b *testing.B) {
		inbox := &substrate.Inbox{}
		msg := &model.Message{From: 0, To: 1, Seq: 1, Payload: hb.HeartbeatPayload{}}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inbox.Put(msg)
			if inbox.Take() == nil {
				b.Fatal("empty inbox")
			}
		}
	})
	b.Run("superseding-flood", func(b *testing.B) {
		inbox := &substrate.Inbox{}
		msg := &model.Message{From: 0, To: 1, Seq: 1, Payload: benchGraphPayload(4)}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inbox.Put(msg)
			if i%8 == 7 { // drain occasionally: a flooded receiver taking 1-in-8
				inbox.Take()
			}
		}
	})
	b.Run("put-batch", func(b *testing.B) {
		inbox := &substrate.Inbox{}
		batch := make([]*model.Message, 16)
		for i := range batch {
			batch[i] = &model.Message{From: 0, To: 1, Seq: uint64(i), Payload: hb.HeartbeatPayload{}}
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inbox.PutBatch(batch)
			for range batch {
				inbox.Take()
			}
		}
	})
}

// benchReportPayload is the small consensus payload of the decode bench.
func benchReportPayload() model.Payload { return consensus.ReportPayload{K: 3, V: 1} }

// benchDeltaPayload is a slot-wrapped LEAD carrying an incremental history
// delta — the steady-state frame of the shared-store replicated log. Its
// encode path shares the zero-allocation contract with the other payload
// kinds.
func benchDeltaPayload() model.Payload {
	return rsm.SlotPayload{Slot: 2, Inner: consensus.LeadDeltaPayload{K: 3, V: 1, Delta: quorum.Delta{
		Base: 40, To: 44, Adds: []quorum.DeltaEntry{
			{R: 0, Q: model.SetOf(0, 1)},
			{R: 1, Q: model.SetOf(1, 2)},
			{R: 2, Q: model.SetOf(0, 2)},
			{R: 3, Q: model.SetOf(1, 3)},
		},
	}}}
}

// benchGraphPayload builds an n-node DAG snapshot, the heavyweight gossip
// payload of A_DAG (and the only SupersededPayload in the repo).
func benchGraphPayload(n int) model.Payload {
	g := dagpkg.NewGraph()
	for i := 0; i < n; i++ {
		g.AddSample(model.ProcessID(i%4), fd.QuorumValue{Quorum: model.SetOf(0, 1)}, i/4+1)
	}
	return dagpkg.GraphPayload{G: g}
}

func init() {
	// Guard against accidentally benchmarking a non-superseding graph
	// payload in the flood benchmark.
	if _, ok := benchGraphPayload(1).(model.SupersededPayload); !ok {
		panic(fmt.Sprintf("dag graph payload no longer supersedes"))
	}
}
