// Benchmarks: one per experiment table/figure of EXPERIMENTS.md. Each
// benchmark runs the experiment's core workload once per iteration at a
// representative configuration and reports domain metrics (steps, messages,
// rounds, convergence times) alongside ns/op. Regenerate the full tables
// with `go run ./cmd/experiments`.
package nuconsensus_test

import (
	"context"
	"fmt"
	"testing"

	"nuconsensus"
	"nuconsensus/internal/consensus"
	dagpkg "nuconsensus/internal/dag"
	"nuconsensus/internal/experiments"
	"nuconsensus/internal/explore"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/quorum"
	"nuconsensus/internal/wire"
)

// quorumHistories builds a small history map for codec benchmarks.
func quorumHistories(n int) quorum.Histories {
	h := quorum.NewHistories(n)
	for i := 0; i < n; i++ {
		h.Add(nuconsensus.ProcessID(i), nuconsensus.SetOf(nuconsensus.ProcessID(i), 0))
	}
	return h
}

func consensusLead(k, v int, h quorum.Histories) consensus.LeadPayload {
	return consensus.LeadPayload{K: k, V: v, Hist: h}
}

// quorumOf projects an emulated output to its quorum component.
func quorumOf(v nuconsensus.FDValue) (nuconsensus.ProcessSet, bool) { return fd.QuorumOf(v) }

// crashyPattern crashes the f highest-numbered processes at staggered times.
func crashyPattern(n, f int) *nuconsensus.FailurePattern {
	pattern := nuconsensus.NewFailurePattern(n)
	for i := 0; i < f; i++ {
		pattern.SetCrash(nuconsensus.ProcessID(n-1-i), nuconsensus.Time(20+10*i))
	}
	return pattern
}

func altProposals(n int) []int {
	props := make([]int, n)
	for i := range props {
		props[i] = i % 2
	}
	return props
}

// benchConsensus runs one consensus execution per iteration and reports
// steps and messages per decision.
func benchConsensus(b *testing.B, build func() nuconsensus.Automaton, pattern *nuconsensus.FailurePattern, hist nuconsensus.History, maxSteps int) {
	b.Helper()
	var steps, msgs int
	for i := 0; i < b.N; i++ {
		res, err := nuconsensus.Simulate(nuconsensus.SimOptions{
			Automaton:       build(),
			Pattern:         pattern,
			History:         hist,
			Seed:            int64(i + 1),
			MaxSteps:        maxSteps,
			StopWhenDecided: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Decided {
			b.Fatalf("iteration %d: no decision in %d steps", i, res.Steps)
		}
		steps += res.Steps
		msgs += res.MessagesSent
	}
	b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
}

// BenchmarkE1 — Table E1: A_nuc with (Ω, Σν+), across n and minority/
// super-majority failures.
func BenchmarkE1(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		for _, f := range []int{(n - 1) / 2, n - 1} {
			b.Run(fmt.Sprintf("n=%d/f=%d", n, f), func(b *testing.B) {
				pattern := crashyPattern(n, f)
				hist := nuconsensus.Pair(
					nuconsensus.Omega(pattern, 100, 1),
					nuconsensus.SigmaNuPlus(pattern, 100, 1),
				)
				benchConsensus(b, func() nuconsensus.Automaton {
					return nuconsensus.ANuc(altProposals(n))
				}, pattern, hist, 50000)
			})
		}
	}
}

// BenchmarkE2 — Table E2: the end-to-end (Ω, Σν) stack, T_{Σν→Σν+}∘A_nuc.
func BenchmarkE2(b *testing.B) {
	for _, n := range []int{3, 4} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pattern := crashyPattern(n, 1)
			hist := nuconsensus.Pair(
				nuconsensus.Omega(pattern, 100, 1),
				nuconsensus.SigmaNu(pattern, 100, 1),
			)
			benchConsensus(b, func() nuconsensus.Automaton {
				return nuconsensus.BoostedANuc(altProposals(n))
			}, pattern, hist, 8000)
		})
	}
}

// BenchmarkE3 — Table E3: one T_{Σν→Σν+} emulation run.
func BenchmarkE3(b *testing.B) {
	for _, n := range []int{3, 5} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pattern := crashyPattern(n, 1)
			hist := nuconsensus.SigmaNu(pattern, 90, 1)
			for i := 0; i < b.N; i++ {
				res, err := nuconsensus.Simulate(nuconsensus.SimOptions{
					Automaton: nuconsensus.BoostSigmaNu(n),
					Pattern:   pattern,
					History:   hist,
					Seed:      int64(i + 1),
					MaxSteps:  500,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := nuconsensus.CheckEmulatedSigmaNuPlus(res, pattern); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4 — Table E4: one T_{D→Σν} extraction run with D = (Ω, Σν+),
// A = A_nuc.
func BenchmarkE4(b *testing.B) {
	n := 3
	pattern := crashyPattern(n, 1)
	hist := nuconsensus.Pair(
		nuconsensus.Omega(pattern, 40, 1),
		nuconsensus.SigmaNuPlus(pattern, 40, 1),
	)
	for i := 0; i < b.N; i++ {
		res, err := nuconsensus.Simulate(nuconsensus.SimOptions{
			Automaton: nuconsensus.ExtractSigmaNu(n,
				func(props []int) nuconsensus.Automaton { return nuconsensus.ANuc(props) }, 1),
			Pattern:  pattern,
			History:  hist,
			Seed:     int64(i + 1),
			MaxSteps: 500,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := nuconsensus.CheckEmulatedSigmaNu(res, pattern); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5 — Table E5: extraction of full Σ from D = (Ω, Σ), A = MR-Σ.
func BenchmarkE5(b *testing.B) {
	n := 3
	pattern := crashyPattern(n, 1)
	hist := nuconsensus.Pair(
		nuconsensus.Omega(pattern, 40, 1),
		nuconsensus.Sigma(pattern, 40, 1),
	)
	for i := 0; i < b.N; i++ {
		res, err := nuconsensus.Simulate(nuconsensus.SimOptions{
			Automaton: nuconsensus.ExtractSigmaNu(n,
				func(props []int) nuconsensus.Automaton { return nuconsensus.MRSigma(props) }, 1),
			Pattern:  pattern,
			History:  hist,
			Seed:     int64(i + 1),
			MaxSteps: 500,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := nuconsensus.CheckEmulatedSigma(res, pattern); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6 — Table E6: one adversarial execution of the naive algorithm
// (which may or may not get contaminated at a given seed) vs the boosted
// A_nuc on the same history.
func BenchmarkE6(b *testing.B) {
	pattern := nuconsensus.Crashes(3, map[nuconsensus.ProcessID]nuconsensus.Time{2: 320})
	hist := func(seed int64) nuconsensus.History {
		return nuconsensus.Pair(
			nuconsensus.AlternatingOmega(2, 0, 40, 280),
			nuconsensus.SigmaNu(pattern, 280, seed),
		)
	}
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nuconsensus.Simulate(nuconsensus.SimOptions{
				Automaton:       nuconsensus.MRNaiveNu([]int{0, 0, 1}),
				Pattern:         pattern,
				History:         hist(int64(i + 1)),
				Seed:            int64(i + 1),
				MaxSteps:        20000,
				StopWhenDecided: true,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("anuc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := nuconsensus.Simulate(nuconsensus.SimOptions{
				Automaton:       nuconsensus.BoostedANuc([]int{0, 0, 1}),
				Pattern:         pattern,
				History:         hist(int64(i + 1)),
				Seed:            int64(i + 1),
				MaxSteps:        8000,
				StopWhenDecided: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := nuconsensus.CheckNonuniformConsensus(res.Config, pattern); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE7 — Table E7: staging both partition runs against a candidate.
func BenchmarkE7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := nuconsensus.RunPartition("threshold", nuconsensus.ThresholdQuorum(4, 2), 4, 2)
		if o.Err != nil || !o.Disjoint {
			b.Fatalf("partition failed: %+v", o)
		}
	}
}

// BenchmarkE8 — Table E8: one from-scratch Σ emulation run.
func BenchmarkE8(b *testing.B) {
	for _, n := range []int{5, 9} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			t := (n - 1) / 2
			pattern := crashyPattern(n, t)
			for i := 0; i < b.N; i++ {
				res, err := nuconsensus.Simulate(nuconsensus.SimOptions{
					Automaton: nuconsensus.ScratchSigma(n, t),
					Pattern:   pattern,
					History:   nuconsensus.Pair(nuconsensus.Omega(pattern, 0, 1), nuconsensus.Sigma(pattern, 0, 1)),
					Seed:      int64(i + 1),
					MaxSteps:  800,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := nuconsensus.CheckEmulatedSigma(res, pattern); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9 — Table E9: the run-merging experiment (Lemma 2.2).
func BenchmarkE9(b *testing.B) {
	sc := experiments.Scale{Seeds: 1, MaxSteps: 1000}
	for i := 0; i < b.N; i++ {
		if tb := experiments.Registry["E9"].Run(sc); !tb.Pass {
			b.Fatalf("E9 failed:\n%s", tb.Render())
		}
	}
}

// BenchmarkE10 — Table E10: one A_DAG execution plus the §4 structure checks.
func BenchmarkE10(b *testing.B) {
	sc := experiments.Scale{Seeds: 1, MaxSteps: 1000}
	for i := 0; i < b.N; i++ {
		if tb := experiments.Registry["E10"].Run(sc); !tb.Pass {
			b.Fatalf("E10 failed:\n%s", tb.Render())
		}
	}
}

// BenchmarkAllParallel runs a representative slice of the experiment suite
// through the worker-pool engine at several pool sizes. Comparing the
// workers=1 and workers=4 sub-benchmarks gives the parallel speedup on the
// host; the rendered output is identical at every size, so this measures
// scheduling only.
func BenchmarkAllParallel(b *testing.B) {
	ids := []string{"E1", "E7", "E8", "E9", "E10", "E13", "E15", "Q1", "Q2", "Q7"}
	sc := experiments.Scale{Seeds: 2, MaxSteps: 20000}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tables, err := experiments.RunIDs(context.Background(), ids, sc, experiments.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				for _, tb := range tables {
					if !tb.Pass {
						b.Fatalf("%s failed:\n%s", tb.ID, tb.Render())
					}
				}
			}
		})
	}
}

// BenchmarkQ1 — Figure Q1: decision latency of the three algorithms at
// n = 7 with minority failures.
func BenchmarkQ1(b *testing.B) {
	n := 7
	pattern := crashyPattern(n, (n-1)/2)
	pairPlus := nuconsensus.Pair(nuconsensus.Omega(pattern, 100, 1), nuconsensus.SigmaNuPlus(pattern, 100, 1))
	pairSigma := nuconsensus.Pair(nuconsensus.Omega(pattern, 100, 1), nuconsensus.Sigma(pattern, 100, 1))
	b.Run("anuc", func(b *testing.B) {
		benchConsensus(b, func() nuconsensus.Automaton { return nuconsensus.ANuc(altProposals(n)) }, pattern, pairPlus, 50000)
	})
	b.Run("mr-majority", func(b *testing.B) {
		benchConsensus(b, func() nuconsensus.Automaton { return nuconsensus.MRMajority(altProposals(n)) }, pattern, pairSigma, 50000)
	})
	b.Run("mr-sigma", func(b *testing.B) {
		benchConsensus(b, func() nuconsensus.Automaton { return nuconsensus.MRSigma(altProposals(n)) }, pattern, pairSigma, 50000)
	})
}

// BenchmarkQ2 — Figure Q2: message-kind profile of a decided A_nuc run
// (LEAD/REP/PROP/SAW/ACK), reported as metrics.
func BenchmarkQ2(b *testing.B) {
	n := 5
	pattern := crashyPattern(n, 2)
	hist := nuconsensus.Pair(nuconsensus.Omega(pattern, 100, 1), nuconsensus.SigmaNuPlus(pattern, 100, 1))
	kinds := map[string]int{}
	for i := 0; i < b.N; i++ {
		res, err := nuconsensus.Simulate(nuconsensus.SimOptions{
			Automaton:       nuconsensus.ANuc(altProposals(n)),
			Pattern:         pattern,
			History:         hist,
			Seed:            int64(i + 1),
			MaxSteps:        50000,
			StopWhenDecided: true,
		})
		if err != nil || !res.Decided {
			b.Fatalf("run failed: %v", err)
		}
		for k, v := range res.SentKinds {
			kinds[k] += v
		}
	}
	for _, k := range []string{"LEAD", "REP", "PROP", "SAW", "ACK"} {
		b.ReportMetric(float64(kinds[k])/float64(b.N), k+"/op")
	}
}

// BenchmarkQ3 — Figure Q3: extraction convergence; reports the time of the
// first correct-only emitted quorum.
func BenchmarkQ3(b *testing.B) {
	n := 3
	pattern := crashyPattern(n, 1)
	hist := nuconsensus.Pair(nuconsensus.Omega(pattern, 40, 1), nuconsensus.SigmaNuPlus(pattern, 40, 1))
	var first float64
	for i := 0; i < b.N; i++ {
		res, err := nuconsensus.Simulate(nuconsensus.SimOptions{
			Automaton: nuconsensus.ExtractSigmaNu(n,
				func(props []int) nuconsensus.Automaton { return nuconsensus.ANuc(props) }, 1),
			Pattern:  pattern,
			History:  hist,
			Seed:     int64(i + 1),
			MaxSteps: 700,
		})
		if err != nil {
			b.Fatal(err)
		}
		correct := pattern.Correct()
		for _, s := range res.EmulatedOutputs {
			q, _ := quorumOf(s.Val)
			if correct.Has(s.P) && q.SubsetOf(correct) {
				first += float64(s.T)
				break
			}
		}
	}
	b.ReportMetric(first/float64(b.N), "first-correct-t/op")
}

// BenchmarkQ4 — Figure Q4: one adversarial hunt pair (naive vs A_nuc) per
// iteration; the table itself is regenerated by cmd/experiments.
func BenchmarkQ4(b *testing.B) {
	BenchmarkE6(b)
}

// BenchmarkQ5 — Figure Q5: the fully ablated A_nuc under the adversary.
func BenchmarkQ5(b *testing.B) {
	pattern := nuconsensus.Crashes(3, map[nuconsensus.ProcessID]nuconsensus.Time{2: 320})
	for i := 0; i < b.N; i++ {
		if _, err := nuconsensus.Simulate(nuconsensus.SimOptions{
			Automaton: nuconsensus.ANucAblated([]int{0, 0, 1}, true, true),
			Pattern:   pattern,
			History: nuconsensus.Pair(
				nuconsensus.AlternatingOmega(2, 0, 40, 280),
				nuconsensus.SigmaNuPlus(pattern, 280, int64(i+1)),
			),
			Seed:            int64(i + 1),
			MaxSteps:        20000,
			StopWhenDecided: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11 — Table E11: one heartbeat-Ω emulation run under partial
// synchrony.
func BenchmarkE11(b *testing.B) {
	n := 5
	pattern := crashyPattern(n, 2)
	for i := 0; i < b.N; i++ {
		if _, err := nuconsensus.Simulate(nuconsensus.SimOptions{
			Automaton: nuconsensus.HeartbeatOmega(n, 0, 0),
			Pattern:   pattern,
			Seed:      int64(i + 1),
			GST:       300,
			MaxSteps:  2500,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12 — Table E12: one oracle-free consensus run (heartbeat Ω +
// from-scratch Σν+ + A_nuc) under partial synchrony.
func BenchmarkE12(b *testing.B) {
	for _, n := range []int{3, 5} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tf := (n - 1) / 2
			pattern := crashyPattern(n, tf)
			benchConsensus(b, func() nuconsensus.Automaton {
				return nuconsensus.OracleFreeANuc(altProposals(n), tf)
			}, pattern, nil, 60000)
		})
	}
}

// BenchmarkE13 — Table E13: one ◇P heartbeat-suspicion run under partial
// synchrony.
func BenchmarkE13(b *testing.B) {
	pattern := crashyPattern(5, 2)
	for i := 0; i < b.N; i++ {
		if _, err := nuconsensus.Simulate(nuconsensus.SimOptions{
			Automaton: nuconsensus.HeartbeatSuspector(5, 0, 0),
			Pattern:   pattern,
			Seed:      int64(i + 1),
			GST:       300,
			MaxSteps:  2500,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14 — Table E14: one A_nuc run under the faulty-divergence
// adversary (the nonuniform/uniform gap).
func BenchmarkE14(b *testing.B) {
	pattern := nuconsensus.Crashes(3, map[nuconsensus.ProcessID]nuconsensus.Time{2: 150})
	hist := nuconsensus.Pair(nuconsensus.Omega(pattern, 200, 1), nuconsensus.SigmaNuPlus(pattern, 200, 1))
	benchConsensus(b, func() nuconsensus.Automaton {
		return nuconsensus.ANuc([]int{0, 0, 1})
	}, pattern, hist, 30000)
}

// BenchmarkQ6 — Figure Q6: one extraction run per path strategy.
func BenchmarkQ6(b *testing.B) {
	n := 3
	pattern := crashyPattern(n, 1)
	hist := nuconsensus.Pair(nuconsensus.Omega(pattern, 40, 1), nuconsensus.SigmaNuPlus(pattern, 40, 1))
	for i := 0; i < b.N; i++ {
		if _, err := nuconsensus.Simulate(nuconsensus.SimOptions{
			Automaton: nuconsensus.ExtractSigmaNu(n,
				func(props []int) nuconsensus.Automaton { return nuconsensus.ANuc(props) }, 1),
			Pattern:  pattern,
			History:  hist,
			Seed:     int64(i + 1),
			MaxSteps: 700,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireCodec measures the binary codec on the heaviest payloads:
// a LEAD message with quorum histories and a 200-node DAG snapshot.
func BenchmarkWireCodec(b *testing.B) {
	b.Run("lead-with-histories", func(b *testing.B) {
		pattern := nuconsensus.Crashes(5, nil)
		_ = pattern
		hist := quorumHistories(5)
		pl := consensusLead(3, 1, hist)
		for i := 0; i < b.N; i++ {
			raw, err := wire.EncodePayload(pl)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := wire.DecodePayload(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dag-200-nodes", func(b *testing.B) {
		g := dagpkg.NewGraph()
		for i := 0; i < 200; i++ {
			g.AddSample(nuconsensus.ProcessID(i%4), fd.QuorumValue{Quorum: nuconsensus.SetOf(0, 1)}, i/4+1)
		}
		pl := dagpkg.GraphPayload{G: g}
		raw, err := wire.EncodePayload(pl)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(raw)), "bytes")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			raw, err := wire.EncodePayload(pl)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := wire.DecodePayload(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQ7 — Table Q7: the replicated-log application, time to fill a
// 4-slot log across four replicas with one crash.
func BenchmarkQ7(b *testing.B) {
	pattern := nuconsensus.Crashes(4, map[nuconsensus.ProcessID]nuconsensus.Time{3: 60})
	for i := 0; i < b.N; i++ {
		res, err := nuconsensus.Simulate(nuconsensus.SimOptions{
			Automaton:       nuconsensus.ReplicatedLog([][]int{{1, 2}, {3}, {4}, {5}}, 4),
			Pattern:         pattern,
			History:         nuconsensus.PairForANuc(pattern, 80, int64(i+1)),
			Seed:            int64(i + 1),
			MaxSteps:        150000,
			StopWhenDecided: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Decided {
			b.Fatal("log never filled")
		}
	}
}

// BenchmarkE15 — Table E15: one Chandra–Toueg decision with ◇S.
func BenchmarkE15(b *testing.B) {
	pattern := crashyPattern(5, 2)
	hist := nuconsensus.Suspicion(pattern, 90, 1)
	benchConsensus(b, func() nuconsensus.Automaton {
		return nuconsensus.ChandraToueg(altProposals(5))
	}, pattern, hist, 30000)
}

// BenchmarkExploreFrontier — Table E16: one bounded exploration of the
// failure-free A_nuc verification scenario (the model checker's level-
// synchronized frontier is the workload: expand, fingerprint, merge,
// materialize). Reports unique states and executed edges per op.
func BenchmarkExploreFrontier(b *testing.B) {
	sc := explore.VerifyANuc(3, 0)[0]
	o := sc.Opts
	o.Bound = 5
	var states, edges int64
	for i := 0; i < b.N; i++ {
		res, err := explore.Explore(o)
		if err != nil {
			b.Fatal(err)
		}
		states, edges = res.States, res.Edges
	}
	b.ReportMetric(float64(states), "states/op")
	b.ReportMetric(float64(edges), "edges/op")
}
