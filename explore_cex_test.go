package nuconsensus_test

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"nuconsensus"
	"nuconsensus/internal/explore"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// e6GoldenPath pins the shrunk contamination counterexample byte for byte:
// the schedule the explorer finds for E6's naive-MR failure is itself a
// deterministic artifact, so any drift in the engine, the reduction or the
// shrinker shows up as a golden diff. Regenerate with `go test -run
// TestExploreFindsContamination -update .` and review the new schedule.
const e6GoldenPath = "testdata/e6_counterexample.json"

// contaminationHunt caches the exhaustive E6 hunt (the expensive part,
// ~10^5 states) so the golden and determinism tests share one run.
var contaminationHunt struct {
	once sync.Once
	res  *explore.Result
	err  error
}

func huntContamination(t *testing.T) *explore.Result {
	t.Helper()
	contaminationHunt.once.Do(func() {
		sc := explore.Contamination()
		o := sc.Opts
		o.Bound = sc.Bound
		o.Parallel = 1
		contaminationHunt.res, contaminationHunt.err = explore.Explore(o)
	})
	if contaminationHunt.err != nil {
		t.Fatal(contaminationHunt.err)
	}
	return contaminationHunt.res
}

// TestExploreFindsContamination is the exhaustive counterpart of
// experiment E6: the bounded model checker must find the naive-MR+Σν
// contamination, the shrinker must reduce it to a minimal schedule, the
// schedule must match the pinned golden record byte for byte, and
// replaying that record through the ordinary Replay path must reproduce
// the agreement violation.
func TestExploreFindsContamination(t *testing.T) {
	sc := explore.Contamination()
	res := huntContamination(t)
	if res.Violations == 0 || res.Counterexample == nil {
		t.Fatalf("exhaustive search found no contamination: %+v", res)
	}
	if res.Reduction < 2 {
		t.Errorf("reduction %f < 2x over naive enumeration", res.Reduction)
	}
	o := sc.Opts
	o.Bound = sc.Bound
	shrunk := explore.Shrink(o, res.Counterexample.Path)
	if len(shrunk) > len(res.Counterexample.Path) {
		t.Errorf("shrinking grew the schedule: %d -> %d", len(res.Counterexample.Path), len(shrunk))
	}
	if len(shrunk) > 31 {
		t.Errorf("shrunk schedule has %d steps; the hand-derived contamination needs at most 31", len(shrunk))
	}

	rec := nuconsensus.RecordedFromSchedule(3, shrunk)
	tmp := filepath.Join(t.TempDir(), "cex.json")
	if err := nuconsensus.SaveRecordedRun(tmp, rec); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.WriteFile(e6GoldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(e6GoldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("shrunk counterexample drifted from golden %s (run with -update and review):\ngot:\n%s\nwant:\n%s",
			e6GoldenPath, got, want)
	}

	// The golden record replays to the violation through the ordinary
	// replay path: both correct processes decide, and they disagree.
	loaded, err := nuconsensus.LoadRecordedRun(e6GoldenPath)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := nuconsensus.Replay(nuconsensus.SimOptions{
		Automaton: nuconsensus.MRNaiveNu([]int{0, 1, 1}),
		Pattern:   nuconsensus.Crashes(3, map[nuconsensus.ProcessID]nuconsensus.Time{2: 5}),
		History:   sc.History,
	}, loaded)
	if err != nil {
		t.Fatal(err)
	}
	v0, ok0 := replayed.Decisions[0]
	v1, ok1 := replayed.Decisions[1]
	if !ok0 || !ok1 || v0 == v1 {
		t.Errorf("replay did not reproduce the contamination: decisions %v", replayed.Decisions)
	}
}

// TestExploreParallelByteIdentical is the worker-count acceptance check on
// the real workload: the full E6 hunt must return a byte-identical Result
// — counts, reduction factor and counterexample included — at -parallel 8.
func TestExploreParallelByteIdentical(t *testing.T) {
	r1 := huntContamination(t)
	sc := explore.Contamination()
	o := sc.Opts
	o.Bound = sc.Bound
	o.Parallel = 8
	r8, err := explore.Explore(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Errorf("results differ between -parallel 1 and -parallel 8:\n%+v\nvs\n%+v", r1, r8)
	}
}
