package nuconsensus_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"nuconsensus"
)

func TestRecordAndReplay(t *testing.T) {
	pattern := nuconsensus.Crashes(4, map[nuconsensus.ProcessID]nuconsensus.Time{1: 30})
	hist := nuconsensus.Pair(
		nuconsensus.Omega(pattern, 60, 9),
		nuconsensus.SigmaNuPlus(pattern, 60, 9),
	)
	opts := nuconsensus.SimOptions{
		Automaton:       nuconsensus.ANuc([]int{0, 1, 1, 0}),
		Pattern:         pattern,
		History:         hist,
		Seed:            9,
		StopWhenDecided: true,
	}
	res, rec, err := nuconsensus.SimulateRecorded(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided {
		t.Fatal("baseline run did not decide")
	}
	if len(rec.Choices) != res.Steps {
		t.Fatalf("recorded %d choices for %d steps", len(rec.Choices), res.Steps)
	}

	// Round-trip through JSON on disk.
	path := filepath.Join(t.TempDir(), "run.json")
	if err := nuconsensus.SaveRecordedRun(path, rec); err != nil {
		t.Fatal(err)
	}
	loaded, err := nuconsensus.LoadRecordedRun(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, rec) {
		t.Fatal("record did not survive the JSON round trip")
	}

	// Replay must land on the same decisions in the same number of steps.
	opts2 := opts
	opts2.MaxSteps = len(loaded.Choices)
	replayed, err := nuconsensus.Replay(opts2, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed.Decisions, res.Decisions) {
		t.Fatalf("replay decisions %v, want %v", replayed.Decisions, res.Decisions)
	}
}

func TestReplayRejectsSizeMismatch(t *testing.T) {
	pattern := nuconsensus.Crashes(3, nil)
	rec := &nuconsensus.RecordedRun{N: 4}
	_, err := nuconsensus.Replay(nuconsensus.SimOptions{
		Automaton: nuconsensus.ANuc([]int{0, 1, 1}),
		Pattern:   pattern,
	}, rec)
	if err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

func TestLoadRecordedRunErrors(t *testing.T) {
	if _, err := nuconsensus.LoadRecordedRun(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := nuconsensus.SaveRecordedRun(bad, &nuconsensus.RecordedRun{}); err != nil {
		t.Fatal(err)
	}
	// Corrupt it.
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := nuconsensus.LoadRecordedRun(bad); err == nil {
		t.Error("corrupted file must error")
	}
}

func TestLoadRecordedRunTruncated(t *testing.T) {
	// A record cut off mid-JSON (e.g. a crash while writing, or a partial
	// artifact download) must be rejected, not read as a shorter schedule.
	path := filepath.Join(t.TempDir(), "run.json")
	p0 := nuconsensus.ProcessID(0)
	rec := &nuconsensus.RecordedRun{
		N: 3,
		Choices: []nuconsensus.SchedulingChoice{
			{P: 0, Deliver: false},
			{P: 1, Deliver: true, From: &p0},
			{P: 2, Deliver: true},
		},
	}
	if err := nuconsensus.SaveRecordedRun(path, rec); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := nuconsensus.LoadRecordedRun(path); err == nil {
		t.Error("truncated file must error")
	}
}

func TestLoadRecordedRunUnknownKind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	if err := writeFile(path, `{"kind":"bogus/run/v9","n":3,"seed":1,"choices":[]}`); err != nil {
		t.Fatal(err)
	}
	_, err := nuconsensus.LoadRecordedRun(path)
	if err == nil {
		t.Fatal("unknown payload kind must error")
	}
	if !strings.Contains(err.Error(), "unknown payload kind") {
		t.Errorf("error %q should name the unknown payload kind", err)
	}

	// SaveRecordedRun stamps the current kind, and a stamped record loads.
	rec := &nuconsensus.RecordedRun{N: 2}
	if err := nuconsensus.SaveRecordedRun(path, rec); err != nil {
		t.Fatal(err)
	}
	if rec.Kind != nuconsensus.RecordedRunKind {
		t.Errorf("SaveRecordedRun stamped kind %q, want %q", rec.Kind, nuconsensus.RecordedRunKind)
	}
	loaded, err := nuconsensus.LoadRecordedRun(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Kind != nuconsensus.RecordedRunKind {
		t.Errorf("loaded kind %q, want %q", loaded.Kind, nuconsensus.RecordedRunKind)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
