module nuconsensus

go 1.22
