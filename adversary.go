package nuconsensus

import (
	"nuconsensus/internal/experiments"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/transform"
)

// AlternatingOmega returns the adversarial Ω history of the contamination
// scenario (§6.3): correct processes see the real leader and the misleader
// in alternating windows of period ticks until stabilize, then the leader
// forever; the (faulty) misleader's own module always outputs the
// misleader, so it keeps — and keeps deciding on — its own stale estimate.
// This is a legal Ω history: the spec constrains only the eventual outputs
// at correct processes.
func AlternatingOmega(misleader, leader ProcessID, period, stabilize Time) History {
	return &fd.AlternatingOmega{
		Misleader: misleader,
		Leader:    leader,
		Period:    period,
		Stabilize: stabilize,
		SelfLoyal: true,
	}
}

// ConstHistory returns the history in which process p's module outputs
// leader[p] paired with quorum[p] forever — the shape of the hand-crafted
// histories in the Theorem 7.1 partition runs.
func ConstHistory(leaders []ProcessID, quorums []ProcessSet) History {
	vals := make([]FDValue, len(leaders))
	for p := range vals {
		vals[p] = fd.PairValue{
			First:  fd.LeaderValue{Leader: leaders[p]},
			Second: fd.QuorumValue{Quorum: quorums[p]},
		}
	}
	return fd.ConstPerProcess{Values: vals}
}

// ThresholdQuorum returns the (n−t)-threshold quorum algorithm without the
// t < n/2 restriction — the natural but doomed candidate for emulating Σ
// in environments where half or more processes may crash (Theorem 7.1,
// ONLY-IF).
func ThresholdQuorum(n, t int) Automaton { return transform.NewThresholdQuorum(n, t) }

// PassthroughQuorum returns the identity quorum "transformation" (output
// the last sampled quorum), the second doomed candidate of the partition
// experiment.
func PassthroughQuorum(n int) Automaton { return transform.NewPassthroughQuorum(n) }

// PartitionOutcome reports the result of staging Theorem 7.1's partition
// argument against a candidate Σ-emulation algorithm.
type PartitionOutcome = experiments.PartitionOutcome

// RunPartition stages the two runs R and R′ of Theorem 7.1 (ONLY-IF)
// against a candidate algorithm over n processes with fault bound t ≥ n/2:
// in R the second half of the processes crashes immediately and the
// candidate must output a quorum A' inside the first half; in R′ the first
// half crashes just after doing exactly the same thing and the candidate
// must output a quorum B' inside the second half. A' ∩ B' = ∅ exhibits the
// Σ intersection violation that dooms every candidate.
func RunPartition(name string, candidate Automaton, n, t int) PartitionOutcome {
	return experiments.RunPartition(name, candidate, n, t)
}
