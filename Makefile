# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race bench experiments experiments-full fuzz fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/runtime ./internal/netrun

bench:
	$(GO) test -bench=. -benchmem .

experiments:
	$(GO) run ./cmd/experiments

experiments-full:
	$(GO) run ./cmd/experiments -full -o EXPERIMENTS.tables.md

fuzz:
	$(GO) test ./internal/wire -fuzz FuzzDecodePayload -fuzztime 30s
	$(GO) test ./internal/wire -fuzz FuzzDecodeValue -fuzztime 30s

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
