# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race bench bench-hot bench-report bench-check experiments experiments-full substrate-smoke explore-smoke obs-smoke e17-smoke serve-smoke trace-smoke fuzz fmt vet lint lint-flow lint-static ci clean

# Smoke-test artifacts (metrics dumps, span streams, Chrome traces) land
# here; CI uploads the directory, .gitignore keeps it out of the tree.
ARTIFACTS ?= artifacts

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# BENCH_HOT selects the hot-path benchmarks the perf contract covers: the
# sim step loop, the wire codec, the substrate inbox, the explorer
# frontier, the long replicated-log run, the history-delta inner loops,
# and the serving layer's batch codec and session dedup.
# BENCH_COUNT=3 runs each three times; cmd/benchreport takes the
# per-metric median so a single noisy run cannot move the baseline.
BENCH_HOT ?= BenchmarkSimStep|BenchmarkWire|BenchmarkInbox|BenchmarkExploreFrontier|BenchmarkLogLongRun|BenchmarkHistoryDelta|BenchmarkServeBatch|BenchmarkSessionDedup
BENCH_COUNT ?= 3
BENCH_JSON ?= BENCH_9.json

# bench-hot prints the raw hot-path benchmark runs.
bench-hot:
	$(GO) test -run '^$$' -bench '$(BENCH_HOT)' -benchmem -count=$(BENCH_COUNT) .

# bench-report regenerates the committed perf baseline from a fresh run
# (median of $(BENCH_COUNT); see README "Benchmarks and the perf contract").
bench-report:
	$(GO) test -run '^$$' -bench '$(BENCH_HOT)' -benchmem -count=$(BENCH_COUNT) . > bench-hot.txt
	$(GO) run ./cmd/benchreport -in bench-hot.txt -out $(BENCH_JSON)
	@rm -f bench-hot.txt
	@echo "bench: wrote $(BENCH_JSON)"

# bench-check is the CI perf gate: re-run the hot-path slice and fail if
# allocs/op on the sim step loop or the wire codec regresses against the
# committed baseline (0-alloc baselines fail on ANY allocation).
bench-check:
	$(GO) test -run '^$$' -bench '$(BENCH_HOT)' -benchmem -count=$(BENCH_COUNT) . > bench-hot.txt
	$(GO) run ./cmd/benchreport -in bench-hot.txt -check $(BENCH_JSON)
	@rm -f bench-hot.txt

experiments:
	$(GO) run ./cmd/experiments

experiments-full:
	$(GO) run ./cmd/experiments -full -parallel 0 -json EXPERIMENTS.tables.json -o EXPERIMENTS.tables.md

# substrate-smoke runs a small portable slice on the concurrent goroutine
# substrate under the race detector — the CI cross-substrate check.
substrate-smoke:
	$(GO) run -race ./cmd/experiments -e E1,Q1,Q2 -substrate async

# explore-smoke exhaustively verifies A_nuc safety at a small bound and
# checks the model checker's worker-count determinism by diffing stdout
# between -parallel 1 and -parallel 8 (it must be byte-identical). The
# full E6 counterexample hunt runs in CI's explore job and in the tests.
explore-smoke:
	$(GO) run ./cmd/explore -target anuc -n 3 -f 1 -bound 6 -parallel 1 > explore-smoke.p1.txt
	$(GO) run ./cmd/explore -target anuc -n 3 -f 1 -bound 6 -parallel 8 > explore-smoke.p8.txt
	diff explore-smoke.p1.txt explore-smoke.p8.txt
	@rm -f explore-smoke.p1.txt explore-smoke.p8.txt
	@echo "explore: verified, byte-identical at -parallel 1 and 8"

# obs-smoke exports E1's causal event stream on the sim substrate and
# checks the observability determinism contract (DESIGN.md §7): the JSONL
# event log and the metrics dump must be byte-identical at -parallel 1 and
# -parallel 8, and the Chrome trace must be well-formed JSON.
obs-smoke:
	$(GO) run ./cmd/experiments -e E1 -parallel 1 \
		-events obs-smoke.p1.jsonl -trace obs-smoke.trace.json -metrics obs-smoke.p1.metrics > /dev/null
	$(GO) run ./cmd/experiments -e E1 -parallel 8 \
		-events obs-smoke.p8.jsonl -metrics obs-smoke.p8.metrics > /dev/null
	diff obs-smoke.p1.jsonl obs-smoke.p8.jsonl
	diff obs-smoke.p1.metrics obs-smoke.p8.metrics
	python3 -m json.tool obs-smoke.trace.json > /dev/null
	@rm -f obs-smoke.p1.jsonl obs-smoke.p8.jsonl obs-smoke.p1.metrics obs-smoke.p8.metrics obs-smoke.trace.json
	@echo "obs: event log and metrics byte-identical at -parallel 1 and 8; trace is valid JSON"

# serve-smoke checks the serving layer both ways it runs. First E18 on
# the sim substrate: the metrics dump (the serve.* counters fold
# commutatively) must be byte-identical at -parallel 1 and 8. Then the
# real thing: a 3-node cmd/nucd cluster over loopback TCP serves a short
# cmd/nucload run (writes + plain and read-index reads), both sides dump
# their metrics registries as JSONL (the CI artifact), and the dumps must
# actually carry the serving-path instruments. nucd itself fails the
# target if the replicas' machines diverge or the step budget runs out;
# nucload fails it if any write goes unacked.
serve-smoke:
	mkdir -p $(ARTIFACTS)
	$(GO) run ./cmd/experiments -e E18 -parallel 1 -metrics $(ARTIFACTS)/serve-smoke.p1.metrics > /dev/null
	$(GO) run ./cmd/experiments -e E18 -parallel 8 -metrics $(ARTIFACTS)/serve-smoke.p8.metrics > /dev/null
	diff $(ARTIFACTS)/serve-smoke.p1.metrics $(ARTIFACTS)/serve-smoke.p8.metrics
	$(GO) build -o nucd.smoke ./cmd/nucd
	$(GO) build -o nucload.smoke ./cmd/nucload
	rm -f $(ARTIFACTS)/serve-smoke.addrs
	./nucd.smoke -n 3 -ops 300 -batch 8 -addr-file $(ARTIFACTS)/serve-smoke.addrs \
	    -metrics $(ARTIFACTS)/nucd.metrics.jsonl & \
	pid=$$!; \
	./nucload.smoke -addr-file $(ARTIFACTS)/serve-smoke.addrs -ops 300 -clients 4 -window 4 \
	    -read-frac 0.3 -timeout 60s -metrics $(ARTIFACTS)/nucload.metrics.jsonl \
	    || { kill $$pid 2>/dev/null; exit 1; }; \
	wait $$pid
	grep -q '"name":"serve.apply.commands"' $(ARTIFACTS)/nucd.metrics.jsonl
	grep -q '"name":"load.write_us"' $(ARTIFACTS)/nucload.metrics.jsonl
	@rm -f nucd.smoke nucload.smoke
	@echo "serve: E18 metrics byte-identical at -parallel 1 and 8; nucd+nucload TCP run clean"

# trace-smoke is the end-to-end tracing gate: a 3-node cmd/nucd cluster
# with -trace and the telemetry listener serves a traced cmd/nucload run;
# /metrics, /healthz and /statusz are scraped over HTTP from the live
# daemon (the Prometheus rendering must carry the span counter, the
# status report the applier frontiers); then cmd/nuctrace joins the two
# span streams and -check demands a complete ingress→batch→decide→apply→
# reply chain, telescoping exactly to the end-to-end latency, for 100% of
# acked requests. The Chrome export must parse as JSON.
trace-smoke:
	mkdir -p $(ARTIFACTS)
	$(GO) build -o nucd.smoke ./cmd/nucd
	$(GO) build -o nucload.smoke ./cmd/nucload
	$(GO) build -o nuctrace.smoke ./cmd/nuctrace
	rm -f $(ARTIFACTS)/trace-smoke.addrs $(ARTIFACTS)/trace-smoke.addrs.debug
	./nucd.smoke -n 3 -ops 200 -batch 8 -addr-file $(ARTIFACTS)/trace-smoke.addrs \
	    -trace $(ARTIFACTS)/nucd.trace.jsonl -debug-addr 127.0.0.1:0 -slow 250ms & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s $(ARTIFACTS)/trace-smoke.addrs.debug ] && break; sleep 0.1; done; \
	python3 -c "import urllib.request; \
	addr = open('$(ARTIFACTS)/trace-smoke.addrs.debug').read().strip(); \
	body = urllib.request.urlopen('http://%s/metrics' % addr).read().decode(); \
	assert '# TYPE obs_spans counter' in body, body[:400]; \
	assert urllib.request.urlopen('http://%s/healthz' % addr).read().decode().strip() == 'ok'; \
	assert b'frontier' in urllib.request.urlopen('http://%s/statusz' % addr).read(); \
	print('live scrape ok: /metrics /healthz /statusz')" \
	    || { kill $$pid 2>/dev/null; exit 1; }; \
	./nucload.smoke -addr-file $(ARTIFACTS)/trace-smoke.addrs -ops 200 -clients 4 -window 4 \
	    -timeout 60s -trace $(ARTIFACTS)/nucload.trace.jsonl \
	    || { kill $$pid 2>/dev/null; exit 1; }; \
	wait $$pid
	./nuctrace.smoke -check -chrome $(ARTIFACTS)/trace-smoke.chrome.json \
	    $(ARTIFACTS)/nucd.trace.jsonl $(ARTIFACTS)/nucload.trace.jsonl
	python3 -m json.tool $(ARTIFACTS)/trace-smoke.chrome.json > /dev/null
	@rm -f nucd.smoke nucload.smoke nuctrace.smoke
	@echo "trace: every acked request reconstructs a complete, telescoping span chain"

# e17-smoke runs the long-log scale experiment (E17) end to end and checks
# the shared-store transport contract on its obs metrics dump: byte-
# identical at -parallel 1 and 8 (the rsm.hist.* counters fold
# commutatively), zero delta gaps on FIFO substrates, and incremental
# delta hits dominating snapshot fallbacks. The experiment run itself
# fails the target if E17's claim stops holding.
e17-smoke:
	$(GO) run ./cmd/experiments -e E17 -parallel 1 -metrics e17-smoke.p1.metrics > /dev/null
	$(GO) run ./cmd/experiments -e E17 -parallel 8 -metrics e17-smoke.p8.metrics > /dev/null
	diff e17-smoke.p1.metrics e17-smoke.p8.metrics
	grep -q '^rsm.hist.delta_gaps counter 0$$' e17-smoke.p1.metrics
	awk '$$1 == "rsm.hist.delta_hits" { hits = $$3 } \
	     $$1 == "rsm.hist.full_fallbacks" { falls = $$3 } \
	     END { exit !(hits > 10 * falls) }' e17-smoke.p1.metrics
	@rm -f e17-smoke.p1.metrics e17-smoke.p8.metrics
	@echo "e17: metrics byte-identical at -parallel 1 and 8; delta transport healthy"

fuzz:
	$(GO) test ./internal/wire -fuzz FuzzDecodePayload -fuzztime 30s
	$(GO) test ./internal/wire -fuzz FuzzDecodeValue -fuzztime 30s

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# lint runs the repo's own go/analysis suite (all nine analyzers; see
# `go run ./cmd/nuclint -list`). Also usable as `go vet -vettool`:
#   go build -o nuclint ./cmd/nuclint && go vet -vettool=./nuclint ./...
lint:
	$(GO) run ./cmd/nuclint ./...

# lint-flow runs only the dataflow analyzers (CFG + worklist solver on
# top of internal/lint/flow) — the slow, path-sensitive subset, split out
# so it can be iterated on in isolation.
lint-flow:
	$(GO) run ./cmd/nuclint -only bufownership,locksafe,atomicmix ./...

# lint-static is the one static-check entry point every CI job shares:
# gofmt cleanliness, go vet, and the repo's nuclint suite (the dataflow
# subset included — lint-flow exists for focused runs, lint covers it).
lint-static: vet lint lint-flow
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# ci mirrors .github/workflows/ci.yml: static checks, build, tests, race
# detector, and a parallel experiments run that fails on any claim failure.
ci: lint-static
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./...
	$(GO) run ./cmd/experiments -parallel 4 -json experiments.json
	$(GO) run -race ./cmd/experiments -e E1,Q1,Q2 -substrate async
	$(MAKE) explore-smoke
	$(MAKE) obs-smoke
	$(MAKE) e17-smoke
	$(MAKE) serve-smoke
	$(MAKE) trace-smoke

clean:
	$(GO) clean ./...
