# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race bench experiments experiments-full substrate-smoke explore-smoke fuzz fmt vet lint ci clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

experiments:
	$(GO) run ./cmd/experiments

experiments-full:
	$(GO) run ./cmd/experiments -full -parallel 0 -json EXPERIMENTS.tables.json -o EXPERIMENTS.tables.md

# substrate-smoke runs a small portable slice on the concurrent goroutine
# substrate under the race detector — the CI cross-substrate check.
substrate-smoke:
	$(GO) run -race ./cmd/experiments -e E1,Q1,Q2 -substrate async

# explore-smoke exhaustively verifies A_nuc safety at a small bound and
# checks the model checker's worker-count determinism by diffing stdout
# between -parallel 1 and -parallel 8 (it must be byte-identical). The
# full E6 counterexample hunt runs in CI's explore job and in the tests.
explore-smoke:
	$(GO) run ./cmd/explore -target anuc -n 3 -f 1 -bound 6 -parallel 1 > explore-smoke.p1.txt
	$(GO) run ./cmd/explore -target anuc -n 3 -f 1 -bound 6 -parallel 8 > explore-smoke.p8.txt
	diff explore-smoke.p1.txt explore-smoke.p8.txt
	@rm -f explore-smoke.p1.txt explore-smoke.p8.txt
	@echo "explore: verified, byte-identical at -parallel 1 and 8"

fuzz:
	$(GO) test ./internal/wire -fuzz FuzzDecodePayload -fuzztime 30s
	$(GO) test ./internal/wire -fuzz FuzzDecodeValue -fuzztime 30s

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# lint runs the repo's own go/analysis suite (nodeterm, maporder,
# specregistry, seedhash). Also usable as `go vet -vettool`:
#   go build -o nuclint ./cmd/nuclint && go vet -vettool=./nuclint ./...
lint:
	$(GO) run ./cmd/nuclint ./...

# ci mirrors .github/workflows/ci.yml: static checks, build, tests, race
# detector, and a parallel experiments run that fails on any claim failure.
ci: vet lint
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./...
	$(GO) run ./cmd/experiments -parallel 4 -json experiments.json
	$(GO) run -race ./cmd/experiments -e E1,Q1,Q2 -substrate async
	$(MAKE) explore-smoke

clean:
	$(GO) clean ./...
