package nuconsensus

import (
	"encoding/json"
	"fmt"
	"os"

	"nuconsensus/internal/explore"
	"nuconsensus/internal/model"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/substrate"
	"nuconsensus/internal/trace"
)

// SchedulingChoice is one recorded scheduler decision: which process
// stepped and whether it received the oldest pending message. A sequence of
// choices, together with the automaton, pattern, history and their seeds,
// replays an execution bit for bit — executions are deterministic functions
// of these inputs.
type SchedulingChoice struct {
	P       ProcessID `json:"p"`
	Deliver bool      `json:"deliver"`
	// From, when present, names the sender whose oldest pending message is
	// received (per-link FIFO). Absent means oldest over all senders, which
	// is what the fair scheduler records; the explorer's shrunk
	// counterexamples pin the link explicitly.
	From *ProcessID `json:"from,omitempty"`
}

// RecordedRunKind tags the on-disk payload format of a RecordedRun.
// LoadRecordedRun rejects files carrying any other kind, so a future format
// change cannot be silently misread as a schedule.
const RecordedRunKind = "nuconsensus/run/v1"

// RecordedRun is a persistable execution record.
type RecordedRun struct {
	Kind    string             `json:"kind,omitempty"`
	N       int                `json:"n"`
	Seed    int64              `json:"seed"`
	Choices []SchedulingChoice `json:"choices"`
}

// SimulateRecorded runs like Simulate but also captures the scheduling
// choices, so the execution can be replayed (and, e.g., a contamination
// counterexample attached to a bug report).
func SimulateRecorded(opts SimOptions) (*SimResult, *RecordedRun, error) {
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 50000
	}
	var stop func(*model.Configuration, model.Time) bool
	if opts.StopWhenDecided {
		stop = substrate.AllCorrectDecided(opts.Pattern)
	}
	tr := &trace.Recorder{}
	res, err := sim.Run(sim.Exec{
		Automaton:    opts.Automaton,
		Pattern:      opts.Pattern,
		History:      historyOrNull(opts.History),
		Scheduler:    sim.NewFairScheduler(opts.Seed, 0.8, 3),
		MaxSteps:     maxSteps,
		StopWhen:     stop,
		KeepSchedule: true,
		Recorder:     tr,
	})
	if err != nil {
		return nil, nil, err
	}
	rec := &RecordedRun{N: opts.Automaton.N(), Seed: opts.Seed}
	for _, e := range res.Schedule {
		rec.Choices = append(rec.Choices, SchedulingChoice{P: e.P, Deliver: e.M != nil})
	}
	return fromSubstrate(res), rec, nil
}

// Replay re-executes a recorded run: the same automaton, pattern and
// history must be supplied (they are not part of the record); the recorded
// choices drive the scheduler, with a fair fallback past the end of the
// script.
func Replay(opts SimOptions, rec *RecordedRun) (*SimResult, error) {
	if rec.N != opts.Automaton.N() {
		return nil, fmt.Errorf("nuconsensus: record is for n=%d but automaton has n=%d", rec.N, opts.Automaton.N())
	}
	script := make([]sim.Choice, len(rec.Choices))
	for i, c := range rec.Choices {
		script[i] = sim.Choice{P: c.P, Deliver: c.Deliver, From: c.From}
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = len(script)
	}
	var stop func(*model.Configuration, model.Time) bool
	if opts.StopWhenDecided {
		stop = substrate.AllCorrectDecided(opts.Pattern)
	}
	tr := &trace.Recorder{}
	res, err := sim.Run(sim.Exec{
		Automaton: opts.Automaton,
		Pattern:   opts.Pattern,
		History:   historyOrNull(opts.History),
		Scheduler: &sim.ScriptedScheduler{Script: script, Fallback: sim.NewFairScheduler(rec.Seed, 0.8, 3)},
		MaxSteps:  maxSteps,
		StopWhen:  stop,
		Recorder:  tr,
	})
	if err != nil {
		return nil, err
	}
	return fromSubstrate(res), nil
}

// RecordedFromSchedule converts a schedule found by the bounded model
// checker (internal/explore) into a replayable record: each explorer
// choice becomes a scheduling choice that delivers the oldest message on
// the same link (or takes a λ step). The record carries no FD values —
// Replay reads those from SimOptions.History, so the caller must replay
// against the history the schedule was explored under: the scenario's own
// history for single-history menus, or explore.PinnedHistory(menu, path,
// fallback) when the menu offered the adversary several values.
func RecordedFromSchedule(n int, schedule []explore.Choice) *RecordedRun {
	rec := &RecordedRun{Kind: RecordedRunKind, N: n}
	for _, ch := range schedule {
		sc := SchedulingChoice{P: ch.P, Deliver: ch.From != model.NoProcess}
		if sc.Deliver {
			from := ch.From
			sc.From = &from
		}
		rec.Choices = append(rec.Choices, sc)
	}
	return rec
}

// SaveRecordedRun writes a record as JSON, stamping RecordedRunKind if the
// record does not carry a kind yet.
func SaveRecordedRun(path string, rec *RecordedRun) error {
	if rec.Kind == "" {
		rec.Kind = RecordedRunKind
	}
	data, err := json.MarshalIndent(rec, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadRecordedRun reads a record written by SaveRecordedRun.
func LoadRecordedRun(path string) (*RecordedRun, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec RecordedRun
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("nuconsensus: parsing %s: %w", path, err)
	}
	// A missing kind is accepted for records written before the tag existed;
	// anything else must match exactly.
	if rec.Kind != "" && rec.Kind != RecordedRunKind {
		return nil, fmt.Errorf("nuconsensus: %s: unknown payload kind %q (want %q)", path, rec.Kind, RecordedRunKind)
	}
	return &rec, nil
}

func historyOrNull(h History) History {
	if h == nil {
		return nullHistory()
	}
	return h
}
