// Command partition stages the Theorem 7.1 (ONLY-IF) lower-bound argument:
// for t ≥ n/2 no algorithm transforms (Ω, Σν) to Σ. It builds the proof's
// runs R and R′ against a candidate algorithm and prints the forced
// intersection violation.
//
// Usage:
//
//	partition -n 4 [-candidate threshold|passthrough]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nuconsensus"
)

func main() {
	var (
		n    = flag.Int("n", 4, "number of processes (even)")
		cand = flag.String("candidate", "threshold", "candidate algorithm: threshold | passthrough")
	)
	flag.Parse()
	if *n%2 != 0 || *n < 4 {
		log.Fatalf("need even n ≥ 4, got %d", *n)
	}
	t := *n / 2

	var aut nuconsensus.Automaton
	switch *cand {
	case "threshold":
		aut = nuconsensus.ThresholdQuorum(*n, t)
	case "passthrough":
		aut = nuconsensus.PassthroughQuorum(*n)
	default:
		log.Fatalf("unknown candidate %q", *cand)
	}

	fmt.Printf("candidate %q claims to transform (Ω, Σν) to Σ over n=%d, t=%d\n\n", *cand, *n, t)
	o := nuconsensus.RunPartition(*cand, aut, *n, t)
	if o.Err != nil {
		log.Fatal(o.Err)
	}
	fmt.Printf("run R : B = second half crashes at time 0; completeness forces output %v at τ=%d\n", o.AQuorum, o.Tau)
	fmt.Printf("run R′: identical for A through τ (B merely slow), then A crashes;\n")
	fmt.Printf("        completeness forces output %v\n\n", o.BQuorum)
	if !o.Disjoint {
		fmt.Println("candidate escaped the violation?! (it must then have failed completeness)")
		os.Exit(1)
	}
	fmt.Printf("%v ∩ %v = ∅ — the candidate violates Σ's intersection property.\n", o.AQuorum, o.BQuorum)
	fmt.Println("No candidate can win: completeness in both runs forces disjoint quorums (Theorem 7.1).")
}
