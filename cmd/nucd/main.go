// Command nucd hosts a replicated KV/queue service: an n-process serving
// cluster (internal/serve over the rsm log) executing on the TCP-mesh
// substrate inside one OS process, with one client listener per node
// speaking the varint-framed SREQ/SREP payload protocol of internal/wire.
//
// Writes are batched per node (-batch commands per consensus value, or a
// -flush timeout for stragglers), gossiped as BATCH bodies, decided as
// batch IDs on the pipelined shared-store log, and applied exactly once
// through per-client sessions; the reply to a write is sent when it
// applies at the node that accepted it. Reads are served locally: plain
// reads from the node's machine, linearizable reads via read-index (snap
// the decided frontier, wait until applied, then read).
//
// With -ops N the daemon exits once every node has applied N distinct
// commands (pair it with cmd/nucload -ops N); with -ops 0 it runs until
// the log is full. On exit it verifies cross-node machine agreement,
// writes the metrics registry as JSONL (-metrics), and prints a summary.
//
// Observability: -trace writes the request span stream (ingress, seal,
// decide, apply, reply — see internal/obs and cmd/nuctrace) as JSONL;
// -debug-addr starts an HTTP listener with /metrics (Prometheus text
// exposition of the live registry), /healthz and /statusz (per-node
// applier progress, parked-message count, ingress depths); -slow logs any
// write whose end-to-end latency exceeds the threshold.
//
// Usage:
//
//	nucd -n 4 -ops 2000 -batch 16 -addr-file /tmp/nucd.addrs &
//	nucload -addr-file /tmp/nucd.addrs -ops 2000 -clients 8
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"nuconsensus/internal/model"
	_ "nuconsensus/internal/netrun" // register the tcp substrate
	"nuconsensus/internal/obs"
	"nuconsensus/internal/rsm"
	"nuconsensus/internal/serve"
	"nuconsensus/internal/substrate"
	"nuconsensus/internal/wire"
)

func main() {
	var (
		n         = flag.Int("n", 4, "number of replicas (2..64)")
		slots     = flag.Int("slots", 1<<16, "log capacity (consensus instances)")
		pipeline  = flag.Int("pipeline", 2, "slot instances in flight")
		batch     = flag.Int("batch", 16, "max commands per consensus batch")
		flush     = flag.Duration("flush", 2*time.Millisecond, "partial-batch flush interval")
		ops       = flag.Int("ops", 0, "exit after this many distinct commands applied everywhere (0: run to log-full)")
		seed      = flag.Int64("seed", 1, "substrate seed")
		stabilize = flag.Int64("stabilize", 60, "failure-detector stabilization time (logical ticks)")
		maxSteps  = flag.Int("maxsteps", 50_000_000, "logical step budget")
		addrFile  = flag.String("addr-file", "", "write the client listener addresses to this file (one per line)")
		metrics   = flag.String("metrics", "", "write the metrics registry as JSONL to this file at exit")
		trace     = flag.String("trace", "", "write the request span stream as JSONL to this file")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /healthz, /statusz on this address (e.g. 127.0.0.1:0)")
		slow      = flag.Duration("slow", 0, "log writes whose end-to-end latency exceeds this (0: off)")
	)
	flag.Parse()
	if *n < 2 || *n > 64 {
		log.Fatalf("nucd: need 2 <= n <= 64, got %d", *n)
	}

	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			log.Fatalf("nucd: trace file: %v", err)
		}
		// Hosts are exempt from the determinism contract, so the tracer
		// gets the wall clock; the deterministic core below emits through
		// the same tracer without ever touching the clock itself.
		tracer = obs.NewTracer(f, obs.Wall{}, reg)
	}
	pattern := model.NewFailurePattern(*n)
	cl := serve.NewCluster(serve.Config{
		N: *n, Slots: *slots, Pipeline: *pipeline,
		Target: *ops, Registry: reg, Tracer: tracer,
	})
	cl.Log().WithMetrics(reg)
	sampler := rsm.SamplerForLog(pattern, model.Time(*stabilize), *seed)
	cl.Log().WithSampler(sampler)

	// Client listeners: one per node, ephemeral loopback ports.
	listeners := make([]net.Listener, *n)
	addrs := make([]string, *n)
	for p := 0; p < *n; p++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("nucd: client listener for node %d: %v", p, err)
		}
		listeners[p] = ln
		addrs[p] = ln.Addr().String()
	}
	if *addrFile != "" {
		if err := writeAddrFile(*addrFile, addrs); err != nil {
			log.Fatalf("nucd: %v", err)
		}
	}
	for p, a := range addrs {
		fmt.Printf("listen node=%d addr=%s\n", p, a)
	}

	var conns sync.WaitGroup
	batchers := make([]*batcher, *n)
	for p := 0; p < *n; p++ {
		batchers[p] = newBatcher(p, cl.Ingress(model.ProcessID(p)), *batch, *flush, tracer)
		go serveClients(listeners[p], &node{
			p: p, ap: cl.Applier(model.ProcessID(p)), bt: batchers[p],
			tracer: tracer, slow: *slow, reg: reg,
		}, &conns)
	}

	// Live telemetry listener (replaces the old NUCD_DEBUG stats ticker):
	// /metrics is the Prometheus rendering of the same registry the JSONL
	// dump snapshots, /statusz the structured liveness view that diagnosed
	// the pipelined-window wedge (every node frozen at frontier=2, cmds=0).
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("nucd: debug listener: %v", err)
		}
		fmt.Printf("debug addr=%s\n", ln.Addr().String())
		if *addrFile != "" {
			if err := writeAddrFile(*addrFile+".debug", []string{ln.Addr().String()}); err != nil {
				log.Fatalf("nucd: %v", err)
			}
		}
		go serveDebug(ln, cl, reg, *n, *pipeline, batchers)
	}

	sub, err := substrate.Get("tcp")
	if err != nil {
		log.Fatalf("nucd: %v", err)
	}
	start := time.Now()
	res, err := sub.Run(context.Background(), cl.Automaton(), sampler, pattern, substrate.Options{
		Seed:            *seed,
		MaxSteps:        *maxSteps,
		StopWhenDecided: true,
		Metrics:         reg,
	})
	if err != nil {
		log.Fatalf("nucd: %v", err)
	}
	elapsed := time.Since(start)

	// The halted cluster can no longer apply stalled frontier entries, so
	// unblock read-index waits (they degrade to local reads), stop new
	// accepts, and give in-flight clients a bounded grace to drain their
	// windows and hang up before the process exits under them.
	for p := 0; p < *n; p++ {
		cl.Applier(model.ProcessID(p)).Shutdown()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	drained := make(chan struct{})
	go func() { conns.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		log.Print("nucd: clients still connected after shutdown grace; exiting anyway")
	}

	// Cross-node agreement: every replica applied the same command count
	// and holds the same machine state.
	var refSum uint64
	agree := true
	var applied int64
	for p := 0; p < *n; p++ {
		st := cl.Applier(model.ProcessID(p)).StatsOf()
		sum := cl.Applier(model.ProcessID(p)).Checksum()
		fmt.Printf("node=%d applied=%d cmds=%d dups=%d batches=%d checksum=%016x\n",
			p, st.Applied, st.Commands, st.Dups, st.Batches, sum)
		if p == 0 {
			refSum, applied = sum, st.Commands
		} else if sum != refSum || st.Commands != applied {
			agree = false
		}
	}
	fmt.Printf("done decided=%v steps=%d wall=%s cmds=%d cmds/sec=%.0f bytes_sent=%d\n",
		res.Decided, res.Steps, elapsed.Round(time.Millisecond), applied,
		float64(applied)/elapsed.Seconds(), res.BytesSent)

	if err := tracer.Close(); err != nil {
		log.Fatalf("nucd: trace file: %v", err)
	}
	if tracer != nil {
		fmt.Printf("trace spans=%d file=%s\n", tracer.Spans(), *trace)
	}
	if *metrics != "" {
		if err := writeMetricsJSONL(*metrics, reg); err != nil {
			log.Fatalf("nucd: %v", err)
		}
	}
	if !agree {
		log.Fatal("nucd: replica machines diverged")
	}
	if !res.Decided {
		log.Fatal("nucd: step budget exhausted before the target was reached")
	}
}

// writeAddrFile publishes the listener addresses atomically (write a temp
// file, then rename) so a polling nucload never reads a partial list.
func writeAddrFile(path string, addrs []string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(strings.Join(addrs, "\n")+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// writeMetricsJSONL dumps the registry snapshot, one JSON object per
// instrument in sorted name order.
func writeMetricsJSONL(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, s := range reg.Snapshot() {
		if err := enc.Encode(s); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// nodeStatus is one node's entry in the /statusz report.
type nodeStatus struct {
	Node       int   `json:"node"`
	Frontier   int   `json:"frontier"`
	Applied    int   `json:"applied"`
	Commands   int64 `json:"commands"`
	Dups       int64 `json:"dups"`
	Batches    int64 `json:"batches"`
	Stalled    int   `json:"stalled"`
	Sessions   int   `json:"sessions"`
	ReplyCache int   `json:"reply_cache"`
	IngressLen int   `json:"ingress_len"`
	BatchOpen  int   `json:"batch_open"`
}

// statusReport is the /statusz body.
type statusReport struct {
	Pipeline int          `json:"pipeline"`
	Parked   int64        `json:"parked"` // live parked messages: parked - replayed
	Spans    int64        `json:"spans"`
	Nodes    []nodeStatus `json:"nodes"`
}

// serveDebug runs the telemetry HTTP listener.
func serveDebug(ln net.Listener, cl *serve.Cluster, reg *obs.Registry, n, pipeline int, batchers []*batcher) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, reg)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		rep := statusReport{
			Pipeline: pipeline,
			Parked:   reg.Counter("rsm.parked_msgs").Value() - reg.Counter("rsm.parked_replayed").Value(),
			Spans:    reg.Counter("obs.spans").Value(),
		}
		for p := 0; p < n; p++ {
			st := cl.Applier(model.ProcessID(p)).StatsOf()
			rep.Nodes = append(rep.Nodes, nodeStatus{
				Node: p, Frontier: st.Frontier, Applied: st.Applied,
				Commands: st.Commands, Dups: st.Dups, Batches: st.Batches,
				Stalled: st.Stalled, Sessions: st.Sessions, ReplyCache: st.ReplyCache,
				IngressLen: cl.Ingress(model.ProcessID(p)).Len(),
				BatchOpen:  batchers[p].open(),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	})
	srv := &http.Server{Handler: mux}
	srv.Serve(ln)
}

// batcher groups a node's incoming write commands into consensus batches:
// a group is pushed to the node's ingress when it reaches the size cap or
// when the flush ticker finds it aged. Sealing a group emits one seal span
// per member command — the stage boundary between "waiting for the batch
// to fill" and "waiting for consensus".
type batcher struct {
	mu      sync.Mutex
	cur     []serve.Command
	ingress *serve.Ingress
	size    int
	p       int
	tracer  *obs.Tracer
}

func newBatcher(p int, in *serve.Ingress, size int, flush time.Duration, tracer *obs.Tracer) *batcher {
	b := &batcher{ingress: in, size: size, p: p, tracer: tracer}
	go func() {
		t := time.NewTicker(flush)
		defer t.Stop()
		for range t.C {
			b.mu.Lock()
			b.flushLocked()
			b.mu.Unlock()
		}
	}()
	return b
}

func (b *batcher) add(c serve.Command) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cur = append(b.cur, c)
	if len(b.cur) >= b.size {
		b.flushLocked()
	}
}

func (b *batcher) open() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.cur)
}

func (b *batcher) flushLocked() {
	if len(b.cur) == 0 {
		return
	}
	for _, c := range b.cur {
		b.tracer.Span(obs.SpanEvent{
			Stage: obs.StageSeal, P: b.p, Client: c.Client, Seq: c.Seq,
			Slot: -1, N: len(b.cur),
		})
	}
	b.ingress.Push(b.cur)
	b.cur = nil
}

// node bundles the per-node resources a client connection serves against.
type node struct {
	p      int
	ap     *serve.Applier
	bt     *batcher
	tracer *obs.Tracer
	slow   time.Duration
	reg    *obs.Registry
}

// serveClients accepts client connections for one node.
func serveClients(ln net.Listener, nd *node, conns *sync.WaitGroup) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed at shutdown
		}
		conns.Add(1)
		go func() {
			defer conns.Done()
			handleConn(conn, nd)
		}()
	}
}

// handleConn speaks the framed SREQ/SREP protocol on one connection.
// Writes are acked asynchronously when they apply (RegisterWaiter), so a
// client may pipeline; replies share the connection under a write lock.
func handleConn(conn net.Conn, nd *node) {
	defer conn.Close()
	var wmu sync.Mutex
	reply := func(client uint32, seq uint64, status byte, val, t0 int64) {
		wmu.Lock()
		defer wmu.Unlock()
		if err := wire.WritePayloadFrame(conn, serve.ReplyPayload{Client: client, Seq: seq, Status: status, Val: val, T0: t0}); err != nil {
			conn.Close() // reader sees the error and drops the conn
		}
	}
	cReqs := nd.reg.Counter("nucd.requests")
	cReads := nd.reg.Counter("nucd.reads")
	cLin := nd.reg.Counter("nucd.lin_reads")
	r := bufio.NewReader(conn)
	for {
		pl, err := wire.ReadPayloadFrame(r)
		if err != nil {
			return // closed or corrupted: drop the connection
		}
		req, ok := pl.(serve.RequestPayload)
		if !ok {
			return
		}
		cReqs.Add(1)
		switch req.Op {
		case serve.OpGet:
			cReads.Add(1)
			var v int64
			var hit bool
			if req.Lin {
				cLin.Add(1)
				v, hit = nd.ap.GetLin(req.Key)
			} else {
				v, hit = nd.ap.Get(req.Key)
			}
			status := byte(serve.StatusOK)
			if !hit {
				status = serve.StatusMissing
			}
			reply(req.Client, req.Seq, status, v, req.T0)
		default:
			// A write: trace its ingress, ack when it applies (emitting the
			// reply span and the slow-request log), then batch it toward
			// the log.
			nd.tracer.Span(obs.SpanEvent{
				Stage: obs.StageIngress, P: nd.p, Client: req.Client, Seq: req.Seq,
				Slot: -1, T0: req.T0,
			})
			client, seq, t0 := req.Client, req.Seq, req.T0
			nd.ap.RegisterWaiter(client, seq, func(status byte, val int64) {
				nd.tracer.Span(obs.SpanEvent{
					Stage: obs.StageReply, P: nd.p, Client: client, Seq: seq,
					Slot: -1, N: int(status),
				})
				if nd.slow > 0 && t0 > 0 {
					if e2e := time.Duration(time.Now().UnixNano() - t0); e2e > nd.slow {
						fmt.Printf("SLOW node=%d client=%d seq=%d status=%d e2e=%s\n",
							nd.p, client, seq, status, e2e.Round(time.Microsecond))
					}
				}
				reply(client, seq, status, val, t0)
			})
			nd.bt.add(serve.Command{Client: req.Client, Seq: req.Seq, Op: req.Op, Key: req.Key, Val: req.Val})
		}
	}
}
