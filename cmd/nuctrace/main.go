// Command nuctrace reconstructs per-request timelines from the span JSONL
// streams cmd/nucd and cmd/nucload emit (-trace): it joins the send,
// ingress, seal, inject, decide, apply, reply and recv stages of every
// traced write by its (client, seq) trace context — the batch-level decide
// span fanning out to member commands through the batch ID minted at
// inject — and reports a per-stage latency breakdown.
//
// The five reported stages telescope exactly to the end-to-end latency:
//
//	queue     send → ingress     client runtime + network + server read
//	batch     ingress → seal     waiting for the node's batch to fill/flush
//	consensus seal → decide      the A_nuc slot deciding the batch
//	apply     decide → apply     waiting for the body / session apply
//	reply     apply → recv       ack write-back + network + client read
//
// Output: per-stage p50/p99/max over all complete requests, the slowest
// exemplars with their slot and round counts, and optionally a Chrome
// trace_event export (-chrome) with one lane per request and flow arrows
// between stages — open it in Perfetto. With -check, nuctrace exits
// non-zero unless every acked request has a complete span chain whose
// stage latencies sum to its end-to-end latency (the trace-smoke gate).
//
// Usage:
//
//	nuctrace [-top 5] [-check] [-chrome out.json] [-req 3:17] nucd.trace.jsonl nucload.trace.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"nuconsensus/internal/obs"
)

func main() {
	var (
		top    = flag.Int("top", 5, "how many slowest-request exemplars to print")
		check  = flag.Bool("check", false, "exit non-zero unless every acked request has a complete, telescoping span chain")
		chrome = flag.String("chrome", "", "write a Chrome trace_event export (one lane per request) to this file")
		reqSel = flag.String("req", "", "print one request's full event timeline (client:seq)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("nuctrace: need at least one span JSONL file")
	}
	var evs []obs.SpanEvent
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			log.Fatalf("nuctrace: %v", err)
		}
		part, err := obs.ReadSpans(f)
		f.Close()
		if err != nil {
			log.Fatalf("nuctrace: %s: %v", path, err)
		}
		evs = append(evs, part...)
	}

	reqs := reconstruct(evs)
	if *reqSel != "" {
		printTimeline(reqs, evs, *reqSel)
		return
	}
	report(os.Stdout, reqs, *top)
	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			log.Fatalf("nuctrace: %v", err)
		}
		if err := writeChrome(f, reqs); err != nil {
			log.Fatalf("nuctrace: chrome export: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("nuctrace: chrome export: %v", err)
		}
		fmt.Printf("chrome trace written to %s\n", *chrome)
	}
	if *check {
		if err := checkComplete(reqs); err != nil {
			log.Fatalf("nuctrace: CHECK FAILED: %v", err)
		}
		fmt.Printf("check ok: %d acked requests, all chains complete and telescoping\n", countAcked(reqs))
	}
}

// stageNames are the five telescoping stages, in causal order.
var stageNames = []string{"queue", "batch", "consensus", "apply", "reply"}

// request is one traced write's reconstructed chain. Stage events are nil
// until their span is seen; decide/apply are the ORIGIN node's view (the
// node that accepted the request and will ack it).
type request struct {
	client uint32
	seq    uint64
	origin int // node that accepted the request (P of ingress/seal/inject)
	batch  int // consensus batch the command rode in (from inject/apply)

	send, ingress, seal, inject *obs.SpanEvent
	decide, apply               *obs.SpanEvent
	reply, recv                 *obs.SpanEvent
}

// key identifies one traced command.
type key struct {
	client uint32
	seq    uint64
}

// reconstruct joins the span events into per-request chains. Batch-level
// decide events attach to every member request through the batch ID; when
// the same stage appears twice for a request (it should not), the first
// occurrence wins.
func reconstruct(evs []obs.SpanEvent) []*request {
	byKey := make(map[key]*request)
	var order []key
	get := func(c uint32, s uint64) *request {
		k := key{c, s}
		r, ok := byKey[k]
		if !ok {
			r = &request{client: c, seq: s, origin: -1, batch: -1}
			byKey[k] = r
			order = append(order, k)
		}
		return r
	}
	type decKey struct {
		p, batch int
	}
	decides := make(map[decKey]*obs.SpanEvent)
	for i := range evs {
		ev := &evs[i]
		switch ev.Stage {
		case obs.StageSend:
			r := get(ev.Client, ev.Seq)
			if r.send == nil {
				r.send = ev
			}
		case obs.StageIngress:
			r := get(ev.Client, ev.Seq)
			if r.ingress == nil {
				r.ingress = ev
				r.origin = ev.P
			}
		case obs.StageSeal:
			r := get(ev.Client, ev.Seq)
			if r.seal == nil {
				r.seal = ev
			}
		case obs.StageInject:
			r := get(ev.Client, ev.Seq)
			if r.inject == nil {
				r.inject = ev
				r.batch = ev.Batch
				if r.origin < 0 {
					r.origin = ev.P
				}
			}
		case obs.StageDecide:
			k := decKey{ev.P, ev.Batch}
			if decides[k] == nil {
				decides[k] = ev
			}
		case obs.StageApply:
			r := get(ev.Client, ev.Seq)
			// Keep the origin node's apply; any node's as a fallback.
			if r.apply == nil || (r.origin >= 0 && ev.P == r.origin && r.apply.P != r.origin) {
				r.apply = ev
			}
			if r.batch < 0 {
				r.batch = ev.Batch
			}
		case obs.StageReply:
			r := get(ev.Client, ev.Seq)
			if r.reply == nil {
				r.reply = ev
			}
		case obs.StageRecv:
			r := get(ev.Client, ev.Seq)
			if r.recv == nil {
				r.recv = ev
			}
		}
	}
	out := make([]*request, 0, len(order))
	for _, k := range order {
		r := byKey[k]
		if r.batch >= 0 && r.origin >= 0 {
			r.decide = decides[decKey{r.origin, r.batch}]
		}
		out = append(out, r)
	}
	return out
}

// acked reports whether the client saw the reply.
func (r *request) acked() bool { return r.recv != nil }

// complete reports whether every stage of the chain was traced.
func (r *request) complete() bool {
	return r.send != nil && r.ingress != nil && r.seal != nil && r.inject != nil &&
		r.decide != nil && r.apply != nil && r.reply != nil && r.recv != nil
}

// stages returns the five telescoping stage latencies in nanoseconds.
// Only meaningful on complete requests.
func (r *request) stages() [5]int64 {
	return [5]int64{
		r.ingress.Wall - r.send.Wall,
		r.seal.Wall - r.ingress.Wall,
		r.decide.Wall - r.seal.Wall,
		r.apply.Wall - r.decide.Wall,
		r.recv.Wall - r.apply.Wall,
	}
}

// e2e returns the end-to-end latency in nanoseconds.
func (r *request) e2e() int64 { return r.recv.Wall - r.send.Wall }

func countAcked(reqs []*request) int {
	n := 0
	for _, r := range reqs {
		if r.acked() {
			n++
		}
	}
	return n
}

// checkComplete is the trace-smoke gate: every acked request must have a
// complete chain, and the five stage latencies must sum exactly to the
// end-to-end latency (they telescope by construction, so a mismatch means
// the reconstruction joined the wrong events).
func checkComplete(reqs []*request) error {
	acked := 0
	for _, r := range reqs {
		if !r.acked() {
			continue
		}
		acked++
		if !r.complete() {
			return fmt.Errorf("request c%d#%d acked but chain incomplete: %s", r.client, r.seq, r.missing())
		}
		var sum int64
		for _, d := range r.stages() {
			sum += d
		}
		if sum != r.e2e() {
			return fmt.Errorf("request c%d#%d stages sum to %dns but e2e is %dns", r.client, r.seq, sum, r.e2e())
		}
	}
	if acked == 0 {
		return fmt.Errorf("no acked request in the trace")
	}
	return nil
}

// missing names the absent stages of an incomplete chain.
func (r *request) missing() string {
	var m []string
	for _, s := range []struct {
		name string
		ev   *obs.SpanEvent
	}{
		{"send", r.send}, {"ingress", r.ingress}, {"seal", r.seal}, {"inject", r.inject},
		{"decide", r.decide}, {"apply", r.apply}, {"reply", r.reply}, {"recv", r.recv},
	} {
		if s.ev == nil {
			m = append(m, s.name)
		}
	}
	if len(m) == 0 {
		return "nothing"
	}
	return strings.Join(m, ",")
}

// pctNS returns the nearest-rank q-percentile of a sorted nanosecond
// slice. Exact (offline), unlike the bucketed estimator live metrics use.
func pctNS(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// us renders nanoseconds as microseconds.
func us(ns int64) string { return fmt.Sprintf("%.0fµs", float64(ns)/1e3) }

// report prints the breakdown table and the slowest exemplars.
func report(w io.Writer, reqs []*request, top int) {
	var complete []*request
	for _, r := range reqs {
		if r.complete() {
			complete = append(complete, r)
		}
	}
	acked := countAcked(reqs)
	pct := 0.0
	if acked > 0 {
		pct = 100 * float64(len(complete)) / float64(acked)
	}
	fmt.Fprintf(w, "requests traced=%d acked=%d complete=%d (%.1f%% of acked)\n", len(reqs), acked, len(complete), pct)
	if len(complete) == 0 {
		return
	}

	cols := make([][]int64, len(stageNames)+1)
	for _, r := range complete {
		st := r.stages()
		for i, d := range st {
			cols[i] = append(cols[i], d)
		}
		cols[len(stageNames)] = append(cols[len(stageNames)], r.e2e())
	}
	fmt.Fprintf(w, "%-10s %12s %12s %12s\n", "stage", "p50", "p99", "max")
	for i, name := range append(append([]string{}, stageNames...), "e2e") {
		c := cols[i]
		sort.Slice(c, func(a, b int) bool { return c[a] < c[b] })
		fmt.Fprintf(w, "%-10s %12s %12s %12s\n", name, us(pctNS(c, 0.50)), us(pctNS(c, 0.99)), us(c[len(c)-1]))
	}

	sorted := append([]*request{}, complete...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].e2e() > sorted[b].e2e() })
	if top > len(sorted) {
		top = len(sorted)
	}
	if top > 0 {
		fmt.Fprintf(w, "slowest requests:\n")
	}
	for _, r := range sorted[:top] {
		st := r.stages()
		fmt.Fprintf(w, "  c%d#%d e2e=%s node=%d slot=%d round=%d batch_n=%d | queue=%s batch=%s consensus=%s apply=%s reply=%s\n",
			r.client, r.seq, us(r.e2e()), r.origin, r.decide.Slot, r.decide.N, r.seal.N,
			us(st[0]), us(st[1]), us(st[2]), us(st[3]), us(st[4]))
	}
}

// printTimeline dumps every span event of one request (all nodes' decide
// and apply views included), in wall order.
func printTimeline(reqs []*request, evs []obs.SpanEvent, sel string) {
	parts := strings.SplitN(sel, ":", 2)
	if len(parts) != 2 {
		log.Fatalf("nuctrace: -req wants client:seq, got %q", sel)
	}
	c64, err1 := strconv.ParseUint(parts[0], 10, 32)
	seq, err2 := strconv.ParseUint(parts[1], 10, 64)
	if err1 != nil || err2 != nil {
		log.Fatalf("nuctrace: -req wants client:seq, got %q", sel)
	}
	client := uint32(c64)
	var r *request
	for _, q := range reqs {
		if q.client == client && q.seq == seq {
			r = q
			break
		}
	}
	if r == nil {
		log.Fatalf("nuctrace: no spans for c%d#%d", client, seq)
	}
	var mine []obs.SpanEvent
	for _, ev := range evs {
		if (ev.Client == client && ev.Seq == seq) ||
			(ev.Stage == obs.StageDecide && r.batch >= 0 && ev.Batch == r.batch) {
			mine = append(mine, ev)
		}
	}
	sort.SliceStable(mine, func(a, b int) bool { return mine[a].Wall < mine[b].Wall })
	base := int64(0)
	if len(mine) > 0 {
		base = mine[0].Wall
	}
	fmt.Printf("c%d#%d: %d events (t=0 at first span)\n", client, seq, len(mine))
	for _, ev := range mine {
		extra := ""
		if ev.Batch != 0 {
			extra += fmt.Sprintf(" batch=%d", ev.Batch)
		}
		if ev.Slot >= 0 {
			extra += fmt.Sprintf(" slot=%d", ev.Slot)
		}
		if ev.N != 0 {
			extra += fmt.Sprintf(" n=%d", ev.N)
		}
		fmt.Printf("  t=%-12s p%d %-8s%s\n", us(ev.Wall-base), ev.P, ev.Stage, extra)
	}
}
