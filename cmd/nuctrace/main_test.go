package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nuconsensus/internal/obs"
)

// chain emits a full 8-stage span chain for one request: client c seq q,
// accepted by node p, riding batch b decided into slot s at round rd.
// Stage walls are start, start+1000, start+2000, … so every stage latency
// is exactly 1000ns and e2e is 7000ns.
func chain(p int, c uint32, q uint64, b, s, rd int, start int64) []obs.SpanEvent {
	w := func(i int) int64 { return start + int64(i)*1000 }
	return []obs.SpanEvent{
		{Stage: obs.StageSend, P: p, Client: c, Seq: q, Slot: -1, Wall: w(0)},
		{Stage: obs.StageIngress, P: p, Client: c, Seq: q, Slot: -1, Wall: w(1)},
		{Stage: obs.StageSeal, P: p, Client: c, Seq: q, Slot: -1, N: 2, Wall: w(2)},
		{Stage: obs.StageInject, P: p, Client: c, Seq: q, Batch: b, Slot: -1, N: 2, Wall: w(3)},
		{Stage: obs.StageDecide, P: p, Batch: b, Slot: s, N: rd, Wall: w(4)},
		{Stage: obs.StageApply, P: p, Client: c, Seq: q, Batch: b, Slot: s, Wall: w(5)},
		{Stage: obs.StageReply, P: p, Client: c, Seq: q, Slot: -1, Wall: w(6)},
		{Stage: obs.StageRecv, P: p, Client: c, Seq: q, Slot: -1, Wall: w(7)},
	}
}

func TestReconstructJoinsChains(t *testing.T) {
	var evs []obs.SpanEvent
	evs = append(evs, chain(0, 1, 1, 65, 3, 1, 1000)...)
	evs = append(evs, chain(2, 7, 4, 130, 5, 2, 5000)...)
	// A remote replica's decide+apply for the first batch must not displace
	// the origin's view.
	evs = append(evs,
		obs.SpanEvent{Stage: obs.StageDecide, P: 1, Batch: 65, Slot: 3, N: 4, Wall: 9999},
		obs.SpanEvent{Stage: obs.StageApply, P: 1, Client: 1, Seq: 1, Batch: 65, Slot: 3, Wall: 10000},
	)

	reqs := reconstruct(evs)
	if len(reqs) != 2 {
		t.Fatalf("got %d requests, want 2", len(reqs))
	}
	r := reqs[0]
	if r.client != 1 || r.seq != 1 || r.origin != 0 || r.batch != 65 {
		t.Fatalf("request 0 = c%d#%d origin=%d batch=%d", r.client, r.seq, r.origin, r.batch)
	}
	if !r.complete() {
		t.Fatalf("request 0 incomplete: missing %s", r.missing())
	}
	if r.decide.P != 0 || r.decide.N != 1 {
		t.Fatalf("decide joined from wrong node: p=%d round=%d", r.decide.P, r.decide.N)
	}
	if r.apply.P != 0 {
		t.Fatalf("apply joined from wrong node: p=%d", r.apply.P)
	}
	// consensus spans seal→decide (covering inject), reply spans apply→recv
	// (covering the server's reply write), so those two are 2000ns each.
	want := [5]int64{1000, 1000, 2000, 1000, 2000}
	if got := r.stages(); got != want {
		t.Fatalf("stages = %v, want %v", got, want)
	}
	if r.e2e() != 7000 {
		t.Fatalf("e2e = %dns, want 7000", r.e2e())
	}
	if err := checkComplete(reqs); err != nil {
		t.Fatalf("checkComplete: %v", err)
	}
}

func TestCheckFailsOnIncompleteAck(t *testing.T) {
	evs := chain(0, 1, 1, 65, 3, 1, 0)
	// Drop the decide: the request is still acked (recv present) but the
	// chain cannot telescope.
	var broken []obs.SpanEvent
	for _, ev := range evs {
		if ev.Stage != obs.StageDecide {
			broken = append(broken, ev)
		}
	}
	err := checkComplete(reconstruct(broken))
	if err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("want incomplete-chain error, got %v", err)
	}

	// A request that was never acked (no recv) is not held to completeness.
	ok := evs[:4] // send..inject only, no recv
	if err := checkComplete(reconstruct(append(chain(0, 2, 1, 130, 4, 1, 0), ok...))); err != nil {
		t.Fatalf("unacked request should not fail the check: %v", err)
	}

	if err := checkComplete(nil); err == nil {
		t.Fatal("empty trace should fail the check")
	}
}

func TestPctNS(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if got := pctNS(sorted, 0.5); got != 50 {
		t.Fatalf("p50 = %d, want 50", got)
	}
	if got := pctNS(sorted, 0.99); got != 100 {
		t.Fatalf("p99 = %d, want 100", got)
	}
	if got := pctNS(nil, 0.5); got != 0 {
		t.Fatalf("empty p50 = %d, want 0", got)
	}
}

func TestReportBreakdown(t *testing.T) {
	var evs []obs.SpanEvent
	for i := 0; i < 10; i++ {
		evs = append(evs, chain(i%3, uint32(i+1), 1, 65+i, i, 1, int64(i)*100_000)...)
	}
	var buf bytes.Buffer
	report(&buf, reconstruct(evs), 3)
	out := buf.String()
	for _, want := range []string{
		"requests traced=10 acked=10 complete=10 (100.0% of acked)",
		"consensus", "1µs", "2µs", // stage latencies are 1µs or 2µs by construction
		"e2e", "7µs",
		"slowest requests:",
		"slot=", "round=1", "batch_n=2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report output missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n  c"); got != 3 {
		t.Fatalf("want 3 exemplar lines, got %d:\n%s", got, out)
	}
}

func TestWriteChromeIsValidJSON(t *testing.T) {
	var evs []obs.SpanEvent
	evs = append(evs, chain(0, 1, 1, 65, 3, 1, 1000)...)
	evs = append(evs, chain(1, 2, 1, 66, 4, 2, 2000)...)
	var buf bytes.Buffer
	if err := writeChrome(&buf, reconstruct(evs)); err != nil {
		t.Fatalf("writeChrome: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var slices, flows, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			slices++
		case "s", "f":
			flows++
		case "M":
			meta++
		}
	}
	// 2 lanes × 5 stages; 4 arrows (s+f pairs) per lane; process_name + 2 thread_names.
	if slices != 10 || flows != 16 || meta != 3 {
		t.Fatalf("slices=%d flows=%d meta=%d, want 10/16/3", slices, flows, meta)
	}
	// Earliest send rebases to ts 0.
	if !strings.Contains(buf.String(), `"ts":0.000`) {
		t.Fatalf("expected rebased ts 0.000 in:\n%s", buf.String())
	}
}
