// Chrome trace_event export: one lane (tid) per complete request, five
// "X" slices per lane (the telescoping stages), and s/f flow arrows
// stitching consecutive stages so Perfetto draws each request as one
// connected chain. Same JSON shape as internal/obs's ChromeTrace sink;
// load the file at https://ui.perfetto.dev.
package main

import (
	"fmt"
	"io"
	"sort"
)

// chromeWriter emits trace_event JSON with the comma bookkeeping the
// format needs; the first write error latches and turns the rest into
// no-ops (checked once at the end).
type chromeWriter struct {
	w     io.Writer
	first bool
	err   error
}

func (cw *chromeWriter) writeString(s string) {
	if cw.err != nil {
		return
	}
	_, cw.err = io.WriteString(cw.w, s)
}

func (cw *chromeWriter) record(ev string) {
	if cw.first {
		cw.first = false
		cw.writeString("\n" + ev)
		return
	}
	cw.writeString(",\n" + ev)
}

// flowID gives each stage-to-stage arrow of each request lane a distinct
// id: lane index in the high bits, stage index below.
func flowID(lane, stage int) uint64 {
	return uint64(lane)<<8 | uint64(stage)
}

// writeChrome exports the complete requests, lanes ordered by send time
// and timestamps rebased so the earliest send is t=0.
func writeChrome(w io.Writer, reqs []*request) error {
	var complete []*request
	for _, r := range reqs {
		if r.complete() {
			complete = append(complete, r)
		}
	}
	sort.Slice(complete, func(a, b int) bool { return complete[a].send.Wall < complete[b].send.Wall })
	base := int64(0)
	if len(complete) > 0 {
		base = complete[0].send.Wall
	}
	ts := func(wall int64) float64 { return float64(wall-base) / 1e3 }

	cw := &chromeWriter{w: w, first: true}
	cw.writeString(`{"displayTimeUnit":"ms","traceEvents":[`)
	for lane, r := range complete {
		tid := lane + 1
		// Stage boundaries in causal order; stage i spans bounds[i]..bounds[i+1].
		bounds := []int64{r.send.Wall, r.ingress.Wall, r.seal.Wall, r.decide.Wall, r.apply.Wall, r.recv.Wall}
		for i, name := range stageNames {
			t0, t1 := bounds[i], bounds[i+1]
			cw.record(fmt.Sprintf(
				`{"name":%q,"ph":"X","ts":%.3f,"dur":%.3f,"pid":0,"tid":%d,"args":{"node":%d,"slot":%d,"round":%d,"batch_n":%d}}`,
				name, ts(t0), ts(t1)-ts(t0), tid, r.origin, r.decide.Slot, r.decide.N, r.seal.N))
			if i > 0 {
				// Arrow from the previous stage's end to this stage's start.
				id := flowID(lane, i)
				cw.record(fmt.Sprintf(`{"name":"req","ph":"s","ts":%.3f,"pid":0,"tid":%d,"id":%d}`, ts(t0), tid, id))
				cw.record(fmt.Sprintf(`{"name":"req","ph":"f","bp":"e","ts":%.3f,"pid":0,"tid":%d,"id":%d}`, ts(t0), tid, id))
			}
		}
	}
	cw.record(`{"name":"process_name","ph":"M","pid":0,"args":{"name":"requests"}}`)
	for lane, r := range complete {
		cw.record(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"c%d#%d"}}`,
			lane+1, r.client, r.seq))
	}
	cw.writeString("\n]}\n")
	return cw.err
}
