// Command benchreport normalises `go test -bench` output into the
// canonical BENCH_*.json format that records the repo's performance
// trajectory (README "Benchmarks and the perf contract").
//
// Usage:
//
//	go test -run '^$' -bench 'SimStep|Wire|Inbox|ExploreFrontier' -benchmem -count=3 . > bench.txt
//	go run ./cmd/benchreport -in bench.txt -out BENCH_9.json        # normalise
//	go run ./cmd/benchreport -in bench.txt -check BENCH_9.json      # regression gate
//
// Normalisation takes the median of each metric across the -count runs
// (ns/op, B/op, allocs/op and any custom unit the benchmark reports) and
// strips the GOMAXPROCS suffix from benchmark names, so the JSON is a pure
// function of the measured numbers. Host metadata (goos/goarch/cpu) is
// recorded for context but never compared.
//
// The -check gate compares only allocs/op, and only on the benchmarks the
// hot-path contract covers (-gate regexp; default: the sim step loop, the
// wire decode/encode paths, the history-delta inner loops and the serving
// layer's batch codec and session dedup): allocation
// counts are deterministic
// across hosts, unlike ns/op, so the gate neither flakes on slow CI
// runners nor needs per-host baselines. A baseline of 0 allocs/op fails on
// ANY allocation; nonzero baselines fail on a >10% regression (-max-regress).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Report is the canonical BENCH_*.json document.
type Report struct {
	Schema     string      `json:"schema"` // "nuconsensus-bench/1"
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark's median metrics across the -count runs.
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int                `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// gomaxprocsSuffix is the trailing "-N" go test appends to benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// benchLine matches one result line: name, iteration count, then
// value/unit pairs ("37.70 ns/op", "0 allocs/op", "1234 states/op").
var benchLine = regexp.MustCompile(`^(Benchmark\S*)\s+(\d+)\s+(.+)$`)

// parse reads go test -bench output, collecting every run of every
// benchmark (with -count=N each name appears N times).
func parse(r io.Reader) (*Report, map[string][]map[string]float64, error) {
	rep := &Report{Schema: "nuconsensus-bench/1"}
	runs := make(map[string][]map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, nil, fmt.Errorf("benchreport: odd metric fields in %q", line)
		}
		metrics := make(map[string]float64, len(fields)/2)
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("benchreport: bad value %q in %q: %v", fields[i], line, err)
			}
			metrics[fields[i+1]] = v
		}
		runs[name] = append(runs[name], metrics)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(runs) == 0 {
		return nil, nil, fmt.Errorf("benchreport: no benchmark lines found in input")
	}
	return rep, runs, nil
}

// median of a non-empty sample: the middle value, or the mean of the two
// middle values for even counts.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// build folds the collected runs into the canonical report: benchmarks in
// sorted name order, each metric the median across runs.
func build(rep *Report, runs map[string][]map[string]float64) *Report {
	names := make([]string, 0, len(runs))
	for name := range runs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rs := runs[name]
		var unitNames []string
		for _, m := range rs {
			for unit := range m {
				unitNames = append(unitNames, unit)
			}
		}
		sort.Strings(unitNames)
		med := make(map[string]float64, len(unitNames))
		for _, unit := range unitNames {
			if _, done := med[unit]; done {
				continue
			}
			var vs []float64
			for _, m := range rs {
				if v, ok := m[unit]; ok {
					vs = append(vs, v)
				}
			}
			med[unit] = median(vs)
		}
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{Name: name, Runs: len(rs), Metrics: med})
	}
	return rep
}

// check gates allocs/op against the baseline for every gated benchmark.
// It returns one message per violation (empty means the gate passes).
func check(cur, base *Report, gate *regexp.Regexp, maxRegress float64) []string {
	curByName := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curByName[b.Name] = b
	}
	var bad []string
	for _, b := range base.Benchmarks {
		if !gate.MatchString(b.Name) {
			continue
		}
		baseAllocs, ok := b.Metrics["allocs/op"]
		if !ok {
			continue // baseline recorded without -benchmem; nothing to gate
		}
		nb, ok := curByName[b.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: gated benchmark missing from current run", b.Name))
			continue
		}
		curAllocs, ok := nb.Metrics["allocs/op"]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: current run has no allocs/op (run with -benchmem)", b.Name))
			continue
		}
		switch {
		case baseAllocs == 0 && curAllocs > 0:
			bad = append(bad, fmt.Sprintf("%s: allocs/op regressed from 0 to %g (zero-allocation contract)", b.Name, curAllocs))
		case curAllocs > baseAllocs*(1+maxRegress):
			bad = append(bad, fmt.Sprintf("%s: allocs/op regressed from %g to %g (>%g%%)",
				b.Name, baseAllocs, curAllocs, maxRegress*100))
		}
	}
	return bad
}

func main() {
	var (
		in         = flag.String("in", "-", "go test -bench output to read ('-' for stdin)")
		out        = flag.String("out", "", "write the canonical JSON report to this file ('-' for stdout)")
		checkPath  = flag.String("check", "", "compare against this committed baseline report and fail on allocs/op regressions")
		gateExpr   = flag.String("gate", `^BenchmarkSimStep/|^BenchmarkWireDecode/|^BenchmarkWireEncode/|^BenchmarkHistoryDelta/|^BenchmarkServeBatch/|^BenchmarkSessionDedup/`, "regexp selecting the benchmarks the allocs/op gate covers")
		maxRegress = flag.Float64("max-regress", 0.10, "allowed fractional allocs/op regression for nonzero baselines")
	)
	flag.Parse()
	if *out == "" && *checkPath == "" {
		fmt.Fprintln(os.Stderr, "benchreport: nothing to do; pass -out and/or -check")
		os.Exit(2)
	}

	src := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	rep, runs, err := parse(src)
	if err != nil {
		fatal(err)
	}
	rep = build(rep, runs)

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if *out == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
	}

	if *checkPath != "" {
		gate, err := regexp.Compile(*gateExpr)
		if err != nil {
			fatal(err)
		}
		baseData, err := os.ReadFile(*checkPath)
		if err != nil {
			fatal(err)
		}
		var base Report
		if err := json.Unmarshal(baseData, &base); err != nil {
			fatal(fmt.Errorf("benchreport: bad baseline %s: %v", *checkPath, err))
		}
		if bad := check(rep, &base, gate, *maxRegress); len(bad) > 0 {
			for _, msg := range bad {
				fmt.Fprintln(os.Stderr, "benchreport: FAIL:", msg)
			}
			os.Exit(1)
		}
		fmt.Printf("benchreport: allocs/op gate passed against %s (%d benchmarks gated)\n",
			*checkPath, countGated(&base, gate))
	}
}

// countGated reports how many baseline benchmarks the gate covers.
func countGated(base *Report, gate *regexp.Regexp) int {
	n := 0
	for _, b := range base.Benchmarks {
		if gate.MatchString(b.Name) {
			if _, ok := b.Metrics["allocs/op"]; ok {
				n++
			}
		}
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreport:", err)
	os.Exit(1)
}
