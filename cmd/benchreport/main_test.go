package main

import (
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: nuconsensus
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimStep/idle-4         	28797122	        37.70 ns/op	       0 B/op	       0 allocs/op
BenchmarkSimStep/idle-4         	28000000	        39.10 ns/op	       0 B/op	       0 allocs/op
BenchmarkSimStep/idle-4         	29000000	        36.90 ns/op	       0 B/op	       0 allocs/op
BenchmarkSimStep/idle-bus-4     	18923970	        71.48 ns/op	       0 B/op	       0 allocs/op
BenchmarkWireDecode/heartbeat-4 	56925477	        22.19 ns/op	       0 B/op	       0 allocs/op
BenchmarkExploreFrontier/anuc-4 	      12	  95000000 ns/op	       1234 states/op	       5678 edges/op
PASS
ok  	nuconsensus	9.348s
`

func parseSample(t *testing.T, s string) *Report {
	t.Helper()
	rep, runs, err := parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return build(rep, runs)
}

func TestParseAndBuild(t *testing.T) {
	rep := parseSample(t, sample)
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "nuconsensus" {
		t.Errorf("host metadata wrong: %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("cpu = %q", rep.CPU)
	}
	var idle *Benchmark
	for i := range rep.Benchmarks {
		if rep.Benchmarks[i].Name == "BenchmarkSimStep/idle" {
			idle = &rep.Benchmarks[i]
		}
	}
	if idle == nil {
		t.Fatalf("BenchmarkSimStep/idle missing (GOMAXPROCS suffix not stripped?): %+v", rep.Benchmarks)
	}
	if idle.Runs != 3 {
		t.Errorf("idle runs = %d, want 3", idle.Runs)
	}
	if got := idle.Metrics["ns/op"]; got != 37.70 {
		t.Errorf("idle median ns/op = %g, want 37.70", got)
	}
	if got := idle.Metrics["allocs/op"]; got != 0 {
		t.Errorf("idle allocs/op = %g, want 0", got)
	}
	// Custom units survive normalisation (the explorer's states/op).
	for _, b := range rep.Benchmarks {
		if b.Name == "BenchmarkExploreFrontier/anuc" && b.Metrics["states/op"] != 1234 {
			t.Errorf("states/op = %g, want 1234", b.Metrics["states/op"])
		}
	}
	// Canonical order: sorted by name.
	for i := 1; i < len(rep.Benchmarks); i++ {
		if rep.Benchmarks[i-1].Name >= rep.Benchmarks[i].Name {
			t.Errorf("benchmarks not sorted: %q before %q", rep.Benchmarks[i-1].Name, rep.Benchmarks[i].Name)
		}
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median odd = %g, want 2", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("median even = %g, want 2.5", got)
	}
}

func TestCheckGate(t *testing.T) {
	gate := regexp.MustCompile(`^BenchmarkSimStep/|^BenchmarkWireDecode/`)
	base := parseSample(t, sample)

	// Identical run: gate passes.
	if bad := check(parseSample(t, sample), base, gate, 0.10); len(bad) != 0 {
		t.Errorf("identical run failed the gate: %v", bad)
	}

	// A zero-allocation baseline fails on ANY allocation.
	regressed := strings.Replace(sample,
		"BenchmarkWireDecode/heartbeat-4 	56925477	        22.19 ns/op	       0 B/op	       0 allocs/op",
		"BenchmarkWireDecode/heartbeat-4 	56925477	        22.19 ns/op	       8 B/op	       1 allocs/op", 1)
	bad := check(parseSample(t, regressed), base, gate, 0.10)
	if len(bad) != 1 || !strings.Contains(bad[0], "BenchmarkWireDecode/heartbeat") {
		t.Errorf("0→1 alloc regression not caught: %v", bad)
	}

	// An ungated benchmark may regress freely.
	unrelated := strings.Replace(sample,
		"1234 states/op", "99 states/op", 1)
	if bad := check(parseSample(t, unrelated), base, gate, 0.10); len(bad) != 0 {
		t.Errorf("ungated change failed the gate: %v", bad)
	}

	// A gated benchmark disappearing from the run fails.
	missing := strings.Replace(sample,
		"BenchmarkSimStep/idle-bus-4     	18923970	        71.48 ns/op	       0 B/op	       0 allocs/op\n", "", 1)
	bad = check(parseSample(t, missing), base, gate, 0.10)
	if len(bad) != 1 || !strings.Contains(bad[0], "missing") {
		t.Errorf("missing gated benchmark not caught: %v", bad)
	}

	// Nonzero baselines tolerate <=10% and fail beyond it.
	nzBase := parseSample(t, strings.Replace(sample, "0 allocs/op\nBenchmarkWireDecode", "0 allocs/op\nBenchmarkInboxX-4 	100	 10 ns/op	 0 B/op	 10 allocs/op\nBenchmarkWireDecode", 1))
	okRun := parseSample(t, strings.Replace(sample, "0 allocs/op\nBenchmarkWireDecode", "0 allocs/op\nBenchmarkInboxX-4 	100	 10 ns/op	 0 B/op	 11 allocs/op\nBenchmarkWireDecode", 1))
	badRun := parseSample(t, strings.Replace(sample, "0 allocs/op\nBenchmarkWireDecode", "0 allocs/op\nBenchmarkInboxX-4 	100	 10 ns/op	 0 B/op	 12 allocs/op\nBenchmarkWireDecode", 1))
	nzGate := regexp.MustCompile(`^BenchmarkInboxX$`)
	if bad := check(okRun, nzBase, nzGate, 0.10); len(bad) != 0 {
		t.Errorf("10%% regression should pass: %v", bad)
	}
	if bad := check(badRun, nzBase, nzGate, 0.10); len(bad) != 1 {
		t.Errorf("20%% regression should fail: %v", bad)
	}
}
