// Command explore runs the bounded model checker of internal/explore
// against the repo's two canonical targets:
//
//	explore -target anuc -n 3 -f 1 -bound 7        # exhaustively verify A_nuc safety
//	explore -target naive-mr -bound 31 -o cex.json # find + shrink the E6 contamination
//
// The anuc target explores every schedule and every finite-menu failure
// detector choice up to the depth bound and reports the visited state
// count, the reduction factor over naive schedule enumeration, and any
// safety violation (there must be none). The naive-mr target explores the
// naive MR+Σν adaptation under E6's legal Σν history until it finds the
// contamination violation, shrinks the counterexample to a minimal
// schedule, and (with -o) writes it as a RecordedRun replayable by the
// nucsim replay path and loadable with nuconsensus.LoadRecordedRun.
//
// Everything on stdout is a deterministic function of the flags — byte
// identical at every -parallel value; progress and timing go to stderr.
// The process exits 1 when the outcome contradicts the target's
// expectation (a violation for anuc, no violation for naive-mr), 2 on
// usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"nuconsensus"
	"nuconsensus/internal/explore"
	"nuconsensus/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// report is the machine-readable result of one exploration (-json).
type report struct {
	Target           string                   `json:"target"`
	Label            string                   `json:"label"`
	Bound            int                      `json:"bound"`
	States           int64                    `json:"states"`
	Edges            int64                    `json:"edges"`
	Slept            int64                    `json:"slept"`
	Stutters         int64                    `json:"stutters"`
	SchedulePrefixes float64                  `json:"schedule_prefixes"`
	Reduction        float64                  `json:"reduction"`
	Violations       int64                    `json:"violations"`
	Counterexample   []string                 `json:"counterexample,omitempty"`
	Shrunk           []string                 `json:"shrunk,omitempty"`
	Err              string                   `json:"err,omitempty"`
	Run              *nuconsensus.RecordedRun `json:"run,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("explore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target   = fs.String("target", "anuc", "exploration target: anuc (verify A_nuc safety) or naive-mr (hunt the E6 contamination)")
		n        = fs.Int("n", 3, "number of processes (anuc target)")
		f        = fs.Int("f", 1, "max crash failures to enumerate patterns for (anuc target)")
		bound    = fs.Int("bound", 0, "exploration depth bound (0 = the target's default)")
		parallel = fs.Int("parallel", runtime.NumCPU(), "frontier worker count (output is byte-identical for every value)")
		out      = fs.String("o", "", "write the shrunk counterexample as a replayable RecordedRun JSON file")
		jsonOut  = fs.String("json", "", "write a machine-readable JSON report to this file")
		progress = fs.Bool("progress", false, "print per-level progress to stderr")
		metrics  = fs.String("metrics", "", "write the exploration metrics registry as a sorted text dump to this file ('-' for stderr)")
		debug    = fs.String("debug-addr", "", "serve net/http/pprof and expvar on this address while exploring")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var reg *obs.Registry
	if *metrics != "" || *debug != "" {
		reg = obs.NewRegistry()
	}
	if *debug != "" {
		ds, err := obs.ServeDebug(*debug, reg)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer ds.Close()
		obs.PublishExpvar("nuconsensus", reg)
		fmt.Fprintf(stderr, "(debug server on http://%s/debug/pprof/)\n", ds.Addr)
	}

	var scenarios []explore.Scenario
	switch *target {
	case "anuc":
		scenarios = explore.VerifyANuc(*n, *f)
	case "naive-mr":
		scenarios = []explore.Scenario{explore.Contamination()}
	default:
		fmt.Fprintf(stderr, "explore: unknown -target %q (want anuc or naive-mr)\n", *target)
		return 2
	}

	exit := 0
	var reports []report
	for _, sc := range scenarios {
		o := sc.Opts
		o.Bound = sc.Bound
		if *bound > 0 {
			o.Bound = *bound
		}
		o.Parallel = *parallel
		if *progress {
			o.Progress = func(depth, frontier int, states int64) {
				fmt.Fprintf(stderr, "%s: level %d/%d frontier=%d states=%d\n", sc.Label, depth, o.Bound, frontier, states)
			}
		}
		o.Metrics = reg
		start := time.Now()
		res, err := explore.Explore(o)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		elapsed := time.Since(start)
		rate := ""
		if secs := elapsed.Seconds(); secs > 0 {
			rate = fmt.Sprintf(", %.0f states/s", float64(res.States)/secs)
		}
		fmt.Fprintf(stderr, "%s: explored in %s%s\n", sc.Label, elapsed.Round(time.Millisecond), rate)

		rep := report{
			Target:           *target,
			Label:            sc.Label,
			Bound:            o.Bound,
			States:           res.States,
			Edges:            res.Edges,
			Slept:            res.Slept,
			Stutters:         res.Stutters,
			SchedulePrefixes: res.SchedulePrefixes,
			Reduction:        res.Reduction,
			Violations:       res.Violations,
		}
		fmt.Fprintf(stdout, "%-22s bound=%d states=%d edges=%d slept=%d stutters=%d prefixes=%.4g reduction=%.1fx violations=%d\n",
			sc.Label, o.Bound, res.States, res.Edges, res.Slept, res.Stutters, res.SchedulePrefixes, res.Reduction, res.Violations)

		switch *target {
		case "anuc":
			if res.Violations > 0 {
				exit = 1
				fmt.Fprintf(stdout, "%-22s VIOLATION %s: %v\n", sc.Label, res.Counterexample.Err, res.Counterexample.Path)
			} else {
				fmt.Fprintf(stdout, "%-22s verified: no safety violation in any schedule\n", sc.Label)
			}
		case "naive-mr":
			if res.Counterexample == nil {
				exit = 1
				fmt.Fprintf(stdout, "%-22s no contamination found up to bound %d\n", sc.Label, o.Bound)
				break
			}
			rep.Err = res.Counterexample.Err
			rep.Counterexample = choiceStrings(res.Counterexample.Path)
			shrunk := explore.Shrink(o, res.Counterexample.Path)
			rep.Shrunk = choiceStrings(shrunk)
			rep.Run = nuconsensus.RecordedFromSchedule(o.Automaton.N(), shrunk)
			fmt.Fprintf(stdout, "%-22s violation: %s\n", sc.Label, res.Counterexample.Err)
			fmt.Fprintf(stdout, "%-22s counterexample: %d steps, shrunk to %d: %v\n",
				sc.Label, len(res.Counterexample.Path), len(shrunk), shrunk)
			if *out != "" {
				if err := nuconsensus.SaveRecordedRun(*out, rep.Run); err != nil {
					fmt.Fprintln(stderr, err)
					return 2
				}
				fmt.Fprintf(stderr, "%s: wrote replayable counterexample to %s\n", sc.Label, *out)
			}
		}
		reports = append(reports, rep)
	}

	if *metrics != "" {
		w := io.Writer(stderr)
		var mf *os.File
		if *metrics != "-" {
			f, err := os.Create(*metrics)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			mf = f
			w = f
		}
		if _, err := reg.WriteTo(w); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if mf != nil {
			if err := mf.Close(); err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
		}
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(reports, "", " ")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	return exit
}

// choiceStrings renders a schedule for the JSON report.
func choiceStrings(path []explore.Choice) []string {
	out := make([]string, len(path))
	for i, ch := range path {
		out[i] = ch.String()
	}
	return out
}
