package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunUnknownTarget: an unknown -target is a usage error (exit 2).
func TestRunUnknownTarget(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-target", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("run(-target nope) = %d, want 2 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "unknown -target") {
		t.Fatalf("stderr missing diagnosis: %s", errb.String())
	}
}

// TestRunVerifiesANuc: a small anuc exploration verifies (exit 0) and the
// stdout is byte-identical across worker counts.
func TestRunVerifiesANuc(t *testing.T) {
	var out1, out4, errb bytes.Buffer
	if code := run([]string{"-target", "anuc", "-n", "3", "-f", "0", "-bound", "4", "-parallel", "1"}, &out1, &errb); code != 0 {
		t.Fatalf("run = %d, want 0 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out1.String(), "verified: no safety violation") {
		t.Fatalf("stdout missing verification verdict:\n%s", out1.String())
	}
	if code := run([]string{"-target", "anuc", "-n", "3", "-f", "0", "-bound", "4", "-parallel", "4"}, &out4, &errb); code != 0 {
		t.Fatalf("run(-parallel 4) = %d, want 0 (stderr: %s)", code, errb.String())
	}
	if out1.String() != out4.String() {
		t.Errorf("stdout differs between -parallel 1 and -parallel 4:\n%s\nvs\n%s", out1.String(), out4.String())
	}
}
