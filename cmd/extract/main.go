// Command extract runs the necessity-side emulation T_{D→Σν} (Fig. 2 /
// Theorem 5.4) for a chosen detector D and target algorithm A, then
// validates the emitted history against the Σν (and, when applicable, Σ)
// specification.
//
// Usage:
//
//	extract -n 3 -f 1 -d sigmaplus -seed 1 [-steps 900]
//
// Detector/algorithm pairs: -d sigmaplus uses D=(Ω,Σν+) with A=A_nuc
// (nonuniform consensus); -d sigma uses D=(Ω,Σ) with A=MR-Σ (uniform
// consensus — the emulation then yields full Σ, Theorem 5.8).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"nuconsensus"
)

func main() {
	var (
		n     = flag.Int("n", 3, "number of processes (extraction is exponential-ish; keep small)")
		f     = flag.Int("f", 1, "number of faulty processes")
		det   = flag.String("d", "sigmaplus", "detector: sigmaplus | sigma")
		seed  = flag.Int64("seed", 1, "seed")
		steps = flag.Int("steps", 0, "step budget (default 300+200n)")
	)
	flag.Parse()
	if *f >= *n {
		log.Fatalf("need f < n (got n=%d f=%d)", *n, *f)
	}
	budget := *steps
	if budget <= 0 {
		budget = 300 + 200**n
	}

	rng := rand.New(rand.NewSource(*seed))
	pattern := nuconsensus.NewFailurePattern(*n)
	for _, p := range rng.Perm(*n)[:*f] {
		pattern.SetCrash(nuconsensus.ProcessID(p), nuconsensus.Time(1+rng.Int63n(40)))
	}

	var (
		history  nuconsensus.History
		target   func([]int) nuconsensus.Automaton
		uniform  bool
		detLabel string
	)
	switch *det {
	case "sigmaplus":
		history = nuconsensus.Pair(nuconsensus.Omega(pattern, 40, *seed), nuconsensus.SigmaNuPlus(pattern, 40, *seed))
		target = func(props []int) nuconsensus.Automaton { return nuconsensus.ANuc(props) }
		detLabel = "(Ω,Σν+) with A = A_nuc"
	case "sigma":
		history = nuconsensus.Pair(nuconsensus.Omega(pattern, 40, *seed), nuconsensus.Sigma(pattern, 40, *seed))
		target = func(props []int) nuconsensus.Automaton { return nuconsensus.MRSigma(props) }
		uniform = true
		detLabel = "(Ω,Σ) with A = MR-Σ"
	default:
		log.Fatalf("unknown detector %q", *det)
	}

	fmt.Printf("extracting Σν from D = %s; n=%d pattern=%v budget=%d steps\n", detLabel, *n, pattern, budget)
	res, err := nuconsensus.Simulate(nuconsensus.SimOptions{
		Automaton: nuconsensus.ExtractSigmaNu(*n, target, 1),
		Pattern:   pattern,
		History:   history,
		Seed:      *seed,
		MaxSteps:  budget,
	})
	if err != nil {
		log.Fatal(err)
	}

	last := map[nuconsensus.ProcessID]string{}
	for _, s := range res.EmulatedOutputs {
		if last[s.P] != s.Val.String() {
			fmt.Printf("t=%4d  %v emits %s\n", s.T, s.P, s.Val)
			last[s.P] = s.Val.String()
		}
	}

	if err := nuconsensus.CheckEmulatedSigmaNu(res, pattern); err != nil {
		fmt.Printf("EMULATION INVALID: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("emulated history satisfies Σν (nonuniform intersection + completeness)")
	if uniform {
		if err := nuconsensus.CheckEmulatedSigma(res, pattern); err != nil {
			fmt.Printf("Σ EMULATION INVALID: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("…and full Σ (uniform intersection), since the target solves uniform consensus")
	}
}
