// Command fdlab prints a failure-detector history as a table — one row per
// time step, one column per process — and validates it against its
// specification. Useful for building intuition about what Ω/Σ/Σν/Σν+
// actually guarantee (and what adversarial histories are allowed to do
// before stabilization).
//
// Usage:
//
//	fdlab -d sigmanu -n 4 -crash 1:10,3:25 -stabilize 40 -until 60
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"nuconsensus"
	"nuconsensus/internal/check"
	"nuconsensus/internal/model"
	"nuconsensus/internal/trace"
)

func main() {
	var (
		det       = flag.String("d", "sigmanu", "detector: omega | sigma | sigmanu | sigmanuplus")
		n         = flag.Int("n", 4, "number of processes")
		crashSpec = flag.String("crash", "", "crashes as p:t pairs, e.g. 1:10,3:25")
		stabilize = flag.Int64("stabilize", 40, "stabilization time")
		until     = flag.Int64("until", 60, "print H(p, t) for t in [0, until]")
		every     = flag.Int64("every", 4, "print every k-th time step")
		seed      = flag.Int64("seed", 1, "history seed")
	)
	flag.Parse()

	pattern := nuconsensus.NewFailurePattern(*n)
	if *crashSpec != "" {
		for _, part := range strings.Split(*crashSpec, ",") {
			pt := strings.SplitN(strings.TrimSpace(part), ":", 2)
			if len(pt) != 2 {
				log.Fatalf("bad crash spec %q (want p:t)", part)
			}
			p, err1 := strconv.Atoi(pt[0])
			t, err2 := strconv.ParseInt(pt[1], 10, 64)
			if err1 != nil || err2 != nil {
				log.Fatalf("bad crash spec %q: %v %v", part, err1, err2)
			}
			pattern.SetCrash(nuconsensus.ProcessID(p), nuconsensus.Time(t))
		}
	}

	stab := nuconsensus.Time(*stabilize)
	var (
		history nuconsensus.History
		verify  func([]trace.Sample) error
	)
	switch *det {
	case "omega":
		history = nuconsensus.Omega(pattern, stab, *seed)
		verify = func(s []trace.Sample) error { return check.OmegaOutputs(s, pattern, stab) }
	case "sigma":
		history = nuconsensus.Sigma(pattern, stab, *seed)
		verify = func(s []trace.Sample) error { return check.Sigma(s, pattern, stab) }
	case "sigmanu":
		history = nuconsensus.SigmaNu(pattern, stab, *seed)
		verify = func(s []trace.Sample) error { return check.SigmaNu(s, pattern, stab) }
	case "sigmanuplus":
		history = nuconsensus.SigmaNuPlus(pattern, stab, *seed)
		verify = func(s []trace.Sample) error { return check.SigmaNuPlus(s, pattern, stab) }
	default:
		log.Fatalf("unknown detector %q", *det)
	}

	fmt.Printf("detector %s over %v, stabilizes at t=%d\n\n", *det, pattern, stab)
	fmt.Printf("%6s", "t")
	for p := 0; p < *n; p++ {
		fmt.Printf("  %-16s", fmt.Sprintf("p%d", p))
	}
	fmt.Println()

	var samples []trace.Sample
	for t := nuconsensus.Time(0); t <= nuconsensus.Time(*until); t++ {
		row := t%nuconsensus.Time(*every) == 0 || t == stab
		if row {
			fmt.Printf("%6d", t)
		}
		for p := 0; p < *n; p++ {
			pid := nuconsensus.ProcessID(p)
			if pattern.Crashed(pid, t) {
				if row {
					fmt.Printf("  %-16s", "†")
				}
				continue
			}
			v := history.Output(pid, t)
			samples = append(samples, trace.Sample{P: pid, T: t, Val: v})
			if row {
				fmt.Printf("  %-16s", strip(v))
			}
		}
		if row {
			fmt.Println()
		}
	}

	fmt.Println()
	if err := verify(samples); err != nil {
		fmt.Printf("SPEC VIOLATED: %v\n", err)
		return
	}
	fmt.Printf("all %d samples satisfy the %s specification\n", len(samples), *det)
}

// strip renders a value compactly for the table.
func strip(v model.FDValue) string {
	s := v.String()
	s = strings.TrimPrefix(s, "Q=")
	s = strings.TrimPrefix(s, "Ω=")
	return s
}
