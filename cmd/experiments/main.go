// Command experiments regenerates the reproduction tables of EXPERIMENTS.md:
// one table per theorem/algorithm/scenario of the paper (E1–E10) and per
// quantitative figure (Q1–Q5).
//
// Usage:
//
//	experiments [-e E1,Q4] [-full] [-seeds N]
//
// With no -e flag, every experiment runs in canonical order. The process
// exits nonzero if any selected experiment fails its claim.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nuconsensus/internal/experiments"
)

func main() {
	var (
		sel   = flag.String("e", "", "comma-separated experiment IDs (default: all)")
		full  = flag.Bool("full", false, "run at full scale (slower, more seeds)")
		seeds = flag.Int("seeds", 0, "override the number of seeds per configuration")
		out   = flag.String("o", "", "also write the rendered tables to this file")
	)
	flag.Parse()

	var fileOut *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		fileOut = f
	}

	sc := experiments.Quick
	if *full {
		sc = experiments.Full
	}
	if *seeds > 0 {
		sc.Seeds = *seeds
	}

	ids := experiments.IDs()
	if *sel != "" {
		ids = nil
		for _, id := range strings.Split(*sel, ",") {
			id = strings.TrimSpace(id)
			if _, ok := experiments.Registry[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", id, strings.Join(experiments.IDs(), ", "))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	allPass := true
	for _, id := range ids {
		start := time.Now()
		table := experiments.Registry[id](sc)
		fmt.Println(table.Render())
		fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if fileOut != nil {
			fmt.Fprintln(fileOut, table.Render())
		}
		if !table.Pass {
			allPass = false
		}
	}
	if !allPass {
		fmt.Fprintln(os.Stderr, "FAIL: at least one experiment did not support its claim")
		os.Exit(1)
	}
}
