// Command experiments regenerates the reproduction tables of EXPERIMENTS.md:
// one table per theorem/algorithm/scenario of the paper (E1–E15) and per
// quantitative figure (Q1–Q7), run on the parallel deterministic engine of
// internal/experiments.
//
// Usage:
//
//	experiments [-e E1,Q4] [-substrate sim|async|tcp] [-full] [-seeds N] [-parallel N] [-json out.json] [-timeout 5m]
//	            [-events out.jsonl] [-trace out.trace.json] [-metrics out.metrics] [-debug-addr :6060] [-memprofile heap.pb.gz]
//
// With no -e flag, every experiment runs in canonical order. -substrate
// selects the execution backend of internal/substrate (default sim, the
// deterministic step simulator); on a non-sim substrate only the
// substrate-portable experiments run (and with no -e flag, only those are
// selected). -parallel sets the worker-pool size (default: all CPUs); on
// the sim substrate the rendered tables on stdout are byte-identical for
// every worker count. -json additionally writes a machine-readable report
// (tables, per-row and per-unit timing, pass verdicts, memory summary) for
// CI to archive. -timeout aborts the whole run via context cancellation.
//
// Observability (internal/obs): -events exports every unit's causal event
// stream as JSONL in canonical order (on the sim substrate the file is
// byte-identical at any -parallel value — CI asserts this); -trace exports
// the same stream in Chrome trace_event format, which opens directly in
// Perfetto or chrome://tracing with Send→Deliver flow arrows; -metrics
// writes the run's counter/histogram registry as a sorted text dump;
// -debug-addr serves net/http/pprof and expvar while the run executes;
// -memprofile writes a heap profile at exit. The process exits 1 if any
// selected experiment fails its claim, 2 on usage or runtime errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"nuconsensus/internal/experiments"
	"nuconsensus/internal/obs"
	"nuconsensus/internal/substrate"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command: parses flags, drives the engine,
// renders tables, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sel      = fs.String("e", "", "comma-separated experiment IDs (default: all)")
		full     = fs.Bool("full", false, "run at full scale (slower, more seeds)")
		seeds    = fs.Int("seeds", 0, "override the number of seeds per configuration")
		out      = fs.String("o", "", "also write the rendered tables to this file")
		parallel = fs.Int("parallel", runtime.NumCPU(), "worker-pool size (1 = sequential; output is identical either way)")
		jsonOut  = fs.String("json", "", "write a machine-readable JSON report to this file")
		timeout  = fs.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
		subName  = fs.String("substrate", "sim", "execution backend: "+strings.Join(substrate.Names(), "|"))
		events   = fs.String("events", "", "export the causal event stream as JSONL to this file")
		traceOut = fs.String("trace", "", "export the causal event stream as a Chrome trace_event file (Perfetto)")
		metrics  = fs.String("metrics", "", "write the metrics registry as a sorted text dump to this file ('-' for stderr)")
		debug    = fs.String("debug-addr", "", "serve net/http/pprof and expvar on this address while running")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if _, err := substrate.Get(*subName); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var fileOut *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer f.Close()
		fileOut = f
	}

	sc := experiments.Quick
	if *full {
		sc = experiments.Full
	}
	if *seeds > 0 {
		sc.Seeds = *seeds
	}
	sc.Substrate = *subName

	ids := experiments.IDs()
	if sc.SubstrateName() != "sim" {
		// Without an explicit selection, a concurrent substrate runs the
		// portable slice; an explicit -e naming a non-portable experiment
		// still fails fast in RunIDs.
		ids = experiments.PortableIDs()
	}
	if *sel != "" {
		ids = nil
		for _, id := range strings.Split(*sel, ",") {
			id = strings.TrimSpace(id)
			if _, ok := experiments.Registry[id]; !ok {
				fmt.Fprintf(stderr, "unknown experiment %q; known: %s\n", id, strings.Join(experiments.IDs(), ", "))
				return 2
			}
			ids = append(ids, id)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Observability wiring: a shared registry whenever any consumer wants
	// it, file-backed event sinks fed in canonical order by the engine.
	engOpts := experiments.Options{Workers: *parallel}
	var reg *obs.Registry
	if *metrics != "" || *events != "" || *traceOut != "" || *debug != "" {
		reg = obs.NewRegistry()
		engOpts.Metrics = reg
	}
	var sinks []obs.Sink
	for _, spec := range []struct {
		path string
		mk   func(f *os.File) obs.Sink
	}{
		{*events, func(f *os.File) obs.Sink { return obs.NewJSONL(f) }},
		{*traceOut, func(f *os.File) obs.Sink { return obs.NewChromeTrace(f) }},
	} {
		if spec.path == "" {
			continue
		}
		f, err := os.Create(spec.path)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		sinks = append(sinks, spec.mk(f))
	}
	engOpts.EventSinks = sinks
	if *debug != "" {
		ds, err := obs.ServeDebug(*debug, reg)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer ds.Close()
		obs.PublishExpvar("nuconsensus", reg)
		fmt.Fprintf(stderr, "(debug server on http://%s/debug/pprof/)\n", ds.Addr)
	}

	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)

	start := time.Now()
	tables, err := experiments.RunIDs(ctx, ids, sc, engOpts)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	wall := time.Since(start)

	for _, s := range sinks {
		if err := s.Close(); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	if *metrics != "" {
		w := io.Writer(stderr)
		var mf *os.File
		if *metrics != "-" {
			f, err := os.Create(*metrics)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			mf = f
			w = f
		}
		if _, err := reg.WriteTo(w); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if mf != nil {
			if err := mf.Close(); err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
		}
	}

	allPass := true
	for _, table := range tables {
		fmt.Fprintln(stdout, table.Render())
		// Timing goes to stderr so stdout stays byte-identical across runs
		// and worker counts.
		fmt.Fprintf(stderr, "(%s took %v of worker time)\n", table.ID, table.Elapsed.Round(time.Millisecond))
		if fileOut != nil {
			fmt.Fprintln(fileOut, table.Render())
		}
		if !table.Pass {
			allPass = false
		}
	}
	fmt.Fprintf(stderr, "(%d experiments, %d workers, %v wall)\n", len(tables), *parallel, wall.Round(time.Millisecond))

	if *jsonOut != "" {
		rep := experiments.NewReport(tables, sc, *parallel, wall)
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		rep.MemAllocBytes = memAfter.TotalAlloc - memBefore.TotalAlloc
		rep.NumGC = memAfter.NumGC - memBefore.NumGC
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, err)
			return 2
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		runtime.GC() // up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, err)
			return 2
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	if !allPass {
		fmt.Fprintln(stderr, "FAIL: at least one experiment did not support its claim")
		return 1
	}
	return 0
}
