package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nuconsensus/internal/experiments"
)

// TestRunUnknownExperiment: an unknown -e ID is a usage error (exit 2).
func TestRunUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-e", "NOPE"}, &out, &errb); code != 2 {
		t.Fatalf("run(-e NOPE) = %d, want 2 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Fatalf("stderr missing diagnosis: %s", errb.String())
	}
}

// TestRunFailingClaimExitsOne: a failed claim exits 1 and says FAIL. A
// test-only spec is registered so the check doesn't depend on breaking a
// real experiment.
func TestRunFailingClaimExitsOne(t *testing.T) {
	experiments.Registry["X1"] = &experiments.Spec{
		ID: "X1", Title: "always fails", Claim: "test-only", Columns: []string{"verdict"},
		Configs: func(experiments.Scale) []experiments.Config { return []experiments.Config{{}} },
		Unit: func(_ experiments.Scale, _ experiments.Config, _ *rand.Rand) experiments.UnitResult {
			return experiments.UnitResult{Counted: true, Fail: true, Cells: []string{"no"}}
		},
	}
	defer delete(experiments.Registry, "X1")

	var out, errb bytes.Buffer
	if code := run([]string{"-e", "X1"}, &out, &errb); code != 1 {
		t.Fatalf("run(-e X1) = %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "FAIL") {
		t.Fatalf("stderr missing FAIL verdict: %s", errb.String())
	}
	if !strings.Contains(out.String(), "verdict: FAIL") {
		t.Fatalf("stdout missing rendered FAIL table:\n%s", out.String())
	}
}

// TestEventsByteIdenticalAcrossParallel is the observability acceptance
// test: on the sim substrate, the -events JSONL export and the -metrics
// dump of E1 are byte-identical at -parallel 1 and -parallel 8 (the engine
// replays per-unit event logs into the sinks in canonical task order), and
// the -trace export is valid Chrome trace_event JSON with one flow finish
// per flow start.
func TestEventsByteIdenticalAcrossParallel(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(par string) (events, metrics []byte) {
		t.Helper()
		ev := filepath.Join(dir, "events-"+par+".jsonl")
		me := filepath.Join(dir, "metrics-"+par+".txt")
		var out, errb bytes.Buffer
		if code := run([]string{"-e", "E1", "-parallel", par, "-events", ev, "-metrics", me}, &out, &errb); code != 0 {
			t.Fatalf("run(-e E1 -parallel %s) = %d (stderr: %s)", par, code, errb.String())
		}
		evb, err := os.ReadFile(ev)
		if err != nil {
			t.Fatal(err)
		}
		meb, err := os.ReadFile(me)
		if err != nil {
			t.Fatal(err)
		}
		return evb, meb
	}
	ev1, me1 := runOnce("1")
	ev8, me8 := runOnce("8")
	if len(ev1) == 0 {
		t.Fatal("-events export is empty")
	}
	if !bytes.Equal(ev1, ev8) {
		t.Errorf("-events JSONL differs between -parallel 1 (%d bytes) and -parallel 8 (%d bytes)", len(ev1), len(ev8))
	}
	if !bytes.Equal(me1, me8) {
		t.Errorf("-metrics dump differs between -parallel 1 and -parallel 8:\n%s\nvs\n%s", me1, me8)
	}

	tr := filepath.Join(dir, "e1.trace.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-e", "E1", "-trace", tr}, &out, &errb); code != 0 {
		t.Fatalf("run(-e E1 -trace) = %d (stderr: %s)", code, errb.String())
	}
	raw, err := os.ReadFile(tr)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
			ID uint64 `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("-trace output is not valid Chrome trace JSON: %v", err)
	}
	starts, finishes := map[uint64]int{}, map[uint64]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "s":
			starts[ev.ID]++
		case "f":
			finishes[ev.ID]++
		}
	}
	if len(starts) == 0 {
		t.Fatal("trace has no flow arrows at all")
	}
	for id, n := range finishes {
		if starts[id] < n {
			t.Errorf("flow id %d: %d finishes but only %d starts", id, n, starts[id])
		}
	}
}

// TestRunJSONOutput: -json writes a parseable report alongside the rendered
// stdout tables.
func TestRunJSONOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-e", "E7", "-parallel", "2", "-json", path}, &out, &errb); code != 0 {
		t.Fatalf("run(-e E7 -json) = %d (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "## E7") {
		t.Fatalf("stdout missing rendered table:\n%s", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep experiments.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("-json output does not parse: %v", err)
	}
	if len(rep.Tables) != 1 || rep.Tables[0].ID != "E7" {
		t.Fatalf("report content wrong: %+v", rep)
	}
	if !rep.Pass || rep.Workers != 2 {
		t.Fatalf("report metadata wrong: pass=%v workers=%d", rep.Pass, rep.Workers)
	}
}
