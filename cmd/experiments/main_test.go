package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nuconsensus/internal/experiments"
)

// TestRunUnknownExperiment: an unknown -e ID is a usage error (exit 2).
func TestRunUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-e", "NOPE"}, &out, &errb); code != 2 {
		t.Fatalf("run(-e NOPE) = %d, want 2 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Fatalf("stderr missing diagnosis: %s", errb.String())
	}
}

// TestRunFailingClaimExitsOne: a failed claim exits 1 and says FAIL. A
// test-only spec is registered so the check doesn't depend on breaking a
// real experiment.
func TestRunFailingClaimExitsOne(t *testing.T) {
	experiments.Registry["X1"] = &experiments.Spec{
		ID: "X1", Title: "always fails", Claim: "test-only", Columns: []string{"verdict"},
		Configs: func(experiments.Scale) []experiments.Config { return []experiments.Config{{}} },
		Unit: func(_ experiments.Scale, _ experiments.Config, _ *rand.Rand) experiments.UnitResult {
			return experiments.UnitResult{Counted: true, Fail: true, Cells: []string{"no"}}
		},
	}
	defer delete(experiments.Registry, "X1")

	var out, errb bytes.Buffer
	if code := run([]string{"-e", "X1"}, &out, &errb); code != 1 {
		t.Fatalf("run(-e X1) = %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "FAIL") {
		t.Fatalf("stderr missing FAIL verdict: %s", errb.String())
	}
	if !strings.Contains(out.String(), "verdict: FAIL") {
		t.Fatalf("stdout missing rendered FAIL table:\n%s", out.String())
	}
}

// TestRunJSONOutput: -json writes a parseable report alongside the rendered
// stdout tables.
func TestRunJSONOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-e", "E7", "-parallel", "2", "-json", path}, &out, &errb); code != 0 {
		t.Fatalf("run(-e E7 -json) = %d (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "## E7") {
		t.Fatalf("stdout missing rendered table:\n%s", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep experiments.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("-json output does not parse: %v", err)
	}
	if len(rep.Tables) != 1 || rep.Tables[0].ID != "E7" {
		t.Fatalf("report content wrong: %+v", rep)
	}
	if !rep.Pass || rep.Workers != 2 {
		t.Fatalf("report metadata wrong: pass=%v workers=%d", rep.Pass, rep.Workers)
	}
}
