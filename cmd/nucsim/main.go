// Command nucsim runs one consensus execution from command-line flags and
// reports decisions, latency and message counts.
//
// Usage:
//
//	nucsim -n 5 -f 2 -alg anuc -seed 3 [-runtime] [-proposals 0,1,1,0,1]
//
// Algorithms: anuc (A_nuc with (Ω,Σν+)), boosted (T_{Σν→Σν+}∘A_nuc with
// (Ω,Σν)), mrmaj (MR with majorities and Ω), mrsigma (MR with (Ω,Σ)),
// naive (the incorrect MR+Σν adaptation of §6.3 — expect violations under
// adversarial seeds), oraclefree (heartbeat Ω + from-scratch Σν+ + A_nuc,
// no failure detector; requires f < n/2).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"

	"nuconsensus"
	"nuconsensus/internal/obs"
)

func main() {
	var (
		n         = flag.Int("n", 5, "number of processes (2..64)")
		f         = flag.Int("f", 1, "number of faulty processes")
		alg       = flag.String("alg", "anuc", "algorithm: anuc|boosted|mrmaj|mrsigma|naive|oraclefree")
		seed      = flag.Int64("seed", 1, "scheduler/history seed")
		stabilize = flag.Int64("stabilize", 120, "failure-detector stabilization time")
		maxSteps  = flag.Int("maxsteps", 50000, "step budget")
		useRT     = flag.Bool("runtime", false, "run on the goroutine runtime instead of the simulator")
		useTCP    = flag.Bool("tcp", false, "run over a real TCP loopback mesh (implies concurrent execution)")
		propsFlag = flag.String("proposals", "", "comma-separated proposals (default: alternating 0/1)")
		record    = flag.String("record", "", "write the scheduling choices of the run to this JSON file")
		replay    = flag.String("replay", "", "replay the scheduling choices from this JSON file (simulator only)")
		debug     = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address while running")
	)
	flag.Parse()

	if *debug != "" {
		ds, err := obs.ServeDebug(*debug, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer ds.Close()
		log.Printf("debug server on http://%s/debug/pprof/", ds.Addr)
	}

	if *f >= *n {
		log.Fatalf("need f < n (got n=%d f=%d)", *n, *f)
	}
	proposals := make([]int, *n)
	if *propsFlag != "" {
		parts := strings.Split(*propsFlag, ",")
		if len(parts) != *n {
			log.Fatalf("need exactly %d proposals, got %d", *n, len(parts))
		}
		for i, s := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				log.Fatalf("bad proposal %q: %v", s, err)
			}
			proposals[i] = v
		}
	} else {
		for i := range proposals {
			proposals[i] = i % 2
		}
	}

	rng := rand.New(rand.NewSource(*seed))
	pattern := nuconsensus.NewFailurePattern(*n)
	for _, p := range rng.Perm(*n)[:*f] {
		pattern.SetCrash(nuconsensus.ProcessID(p), nuconsensus.Time(1+rng.Int63n(*stabilize)))
	}

	stab := nuconsensus.Time(*stabilize)
	var (
		aut     nuconsensus.Automaton
		history nuconsensus.History
		uniform bool
	)
	switch *alg {
	case "anuc":
		aut = nuconsensus.ANuc(proposals)
		history = nuconsensus.Pair(nuconsensus.Omega(pattern, stab, *seed), nuconsensus.SigmaNuPlus(pattern, stab, *seed))
	case "boosted":
		aut = nuconsensus.BoostedANuc(proposals)
		history = nuconsensus.Pair(nuconsensus.Omega(pattern, stab, *seed), nuconsensus.SigmaNu(pattern, stab, *seed))
	case "mrmaj":
		if 2**f >= *n {
			log.Fatalf("mrmaj requires a correct majority (f < n/2); it blocks otherwise")
		}
		aut = nuconsensus.MRMajority(proposals)
		history = nuconsensus.Omega(pattern, stab, *seed)
		uniform = true
	case "mrsigma":
		aut = nuconsensus.MRSigma(proposals)
		history = nuconsensus.Pair(nuconsensus.Omega(pattern, stab, *seed), nuconsensus.Sigma(pattern, stab, *seed))
		uniform = true
	case "naive":
		aut = nuconsensus.MRNaiveNu(proposals)
		history = nuconsensus.Pair(nuconsensus.Omega(pattern, stab, *seed), nuconsensus.SigmaNu(pattern, stab, *seed))
	case "oraclefree":
		if 2**f >= *n {
			log.Fatalf("oraclefree requires f < n/2 (from-scratch Σν+ needs a correct majority)")
		}
		aut = nuconsensus.OracleFreeANuc(proposals, (*n-1)/2)
		history = nil // no failure detector at all
	default:
		log.Fatalf("unknown algorithm %q", *alg)
	}

	fmt.Printf("algorithm=%s n=%d f=%d seed=%d pattern=%v\n", aut.Name(), *n, *f, *seed, pattern)

	var (
		res *nuconsensus.SimResult
		err error
	)
	switch {
	case *replay != "":
		rec, lerr := nuconsensus.LoadRecordedRun(*replay)
		if lerr != nil {
			log.Fatal(lerr)
		}
		res, err = nuconsensus.Replay(nuconsensus.SimOptions{
			Automaton: aut, Pattern: pattern, History: history, Seed: *seed,
			StopWhenDecided: true,
		}, rec)
	case *record != "":
		var rec *nuconsensus.RecordedRun
		res, rec, err = nuconsensus.SimulateRecorded(nuconsensus.SimOptions{
			Automaton: aut, Pattern: pattern, History: history, Seed: *seed,
			MaxSteps: *maxSteps, StopWhenDecided: true,
		})
		if err == nil {
			if werr := nuconsensus.SaveRecordedRun(*record, rec); werr != nil {
				log.Fatal(werr)
			}
			fmt.Printf("recorded %d scheduling choices to %s\n", len(rec.Choices), *record)
		}
	case *useTCP:
		res, err = nuconsensus.RunTCP(nuconsensus.ClusterOptions{
			Automaton: aut, Pattern: pattern, History: history, Seed: *seed,
			MaxTicks: nuconsensus.Time(*maxSteps),
		})
	case *useRT:
		res, err = nuconsensus.RunCluster(nuconsensus.ClusterOptions{
			Automaton: aut, Pattern: pattern, History: history, Seed: *seed,
			MaxTicks: nuconsensus.Time(*maxSteps),
		})
	default:
		res, err = nuconsensus.Simulate(nuconsensus.SimOptions{
			Automaton: aut, Pattern: pattern, History: history, Seed: *seed,
			MaxSteps: *maxSteps, StopWhenDecided: true,
		})
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("steps=%d messages=%d decided=%v\n", res.Steps, res.MessagesSent, res.Decided)
	var ps []nuconsensus.ProcessID
	for p := range res.Decisions {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	for _, p := range ps {
		fmt.Printf("  %v decided %d\n", p, res.Decisions[p])
	}
	kinds := make([]string, 0, len(res.SentKinds))
	for k := range res.SentKinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  sent %-5s %d\n", k, res.SentKinds[k])
	}

	checkErr := nuconsensus.CheckNonuniformConsensus(res.Config, pattern)
	if uniform {
		checkErr = nuconsensus.CheckUniformConsensus(res.Config, pattern)
	}
	if checkErr != nil {
		fmt.Printf("CONSENSUS VIOLATED: %v\n", checkErr)
		os.Exit(1)
	}
	fmt.Println("consensus properties hold")
}
