package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"nuconsensus/internal/lint/analysis"
)

// vetConfig is the JSON configuration cmd/go writes for a vet tool, one
// file per compilation unit (the same schema x/tools' unitchecker reads).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one compilation unit under `go vet -vettool`.
// Dependencies arrive as export data (PackageFile) and fact files
// (PackageVetx); the unit's own facts are written to VetxOutput so vet
// can feed them to dependent units.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "nuclint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	exportFor := func(path string) (string, error) {
		if f, ok := cfg.PackageFile[path]; ok && f != "" {
			return f, nil
		}
		return "", fmt.Errorf("no export data for %q", path)
	}
	pkg, err := analysis.CheckFiles(cfg.ImportPath, cfg.Dir, cfg.GoFiles, cfg.ImportMap, exportFor)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg, analysis.NewUnitFacts())
		}
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	facts := analysis.NewUnitFacts()
	depPaths := make([]string, 0, len(cfg.PackageVetx))
	for depPath := range cfg.PackageVetx {
		depPaths = append(depPaths, depPath)
	}
	sort.Strings(depPaths)
	for _, depPath := range depPaths {
		blob, err := os.ReadFile(cfg.PackageVetx[depPath])
		if err != nil {
			continue // missing facts only weaken cross-package checks
		}
		if err := facts.Decode(depPath, blob, analyzers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	findings, err := analysis.RunWithFacts(pkg, analyzers, facts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if code := writeVetx(cfg, facts); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", f.Posn.Filename, f.Posn.Line, f.Posn.Column, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// writeVetx persists the unit's exported facts; vet requires the file to
// exist even when empty.
func writeVetx(cfg vetConfig, facts *analysis.UnitFacts) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	blob, err := facts.Encode(cfg.ImportPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if blob == nil {
		blob = []byte("[]")
	}
	if err := os.WriteFile(cfg.VetxOutput, blob, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	return 0
}
