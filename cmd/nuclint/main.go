// Command nuclint is the multichecker for the repo's determinism and
// model-faithfulness invariants. It bundles nine analyzers:
//
//	atomicmix    fields accessed through sync/atomic are atomic
//	             everywhere outside init/constructors
//	bufownership pooled buffers are not used, re-put or escaped after
//	             PutBuf on any path
//	locksafe     mutexes in concurrent packages released on all paths,
//	             never re-acquired while held, one global order
//	maporder     no map iteration order escaping into output
//	nodeterm     no wall-clock / ambient randomness / env vars / ad-hoc
//	             goroutines in determinism-critical packages
//	obsclock     no obs.Wall (the wall-clock event-stamp shim) in
//	             determinism-critical packages
//	poolbuf      sync.Pool in determinism-critical and pooling-host
//	             packages confined to pointer-free buffer reuse (*[]T)
//	seedhash     per-unit RNGs seeded via the engine's DeriveSeed helper
//	specregistry experiments registry ⇔ Spec literals ⇔ EXPERIMENTS.md
//
// Standalone usage (package patterns, default ./...):
//
//	go run ./cmd/nuclint ./...
//	go run ./cmd/nuclint -only bufownership,locksafe,atomicmix ./...
//	go run ./cmd/nuclint -json report.json ./...
//
// As a vet tool (runs the same analyzers through cmd/go's unit-at-a-time
// protocol, replacing the standard vet passes for that invocation):
//
//	go build -o nuclint ./cmd/nuclint
//	go vet -vettool=$(pwd)/nuclint ./...
//
// Findings can be suppressed case by case with a trailing
// `//lint:allow <analyzer> <why>` comment on the offending line or the
// line above it.
//
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nuconsensus/internal/lint/analysis"
	"nuconsensus/internal/lint/atomicmix"
	"nuconsensus/internal/lint/bufownership"
	"nuconsensus/internal/lint/locksafe"
	"nuconsensus/internal/lint/maporder"
	"nuconsensus/internal/lint/nodeterm"
	"nuconsensus/internal/lint/obsclock"
	"nuconsensus/internal/lint/poolbuf"
	"nuconsensus/internal/lint/seedhash"
	"nuconsensus/internal/lint/specregistry"
)

// analyzers is the nuclint suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	atomicmix.Analyzer,
	bufownership.Analyzer,
	locksafe.Analyzer,
	maporder.Analyzer,
	nodeterm.Analyzer,
	obsclock.Analyzer,
	poolbuf.Analyzer,
	seedhash.Analyzer,
	specregistry.Analyzer,
}

func main() {
	// cmd/go probes vet tools before use: -V=full must print a stable
	// version fingerprint, -flags the tool's extra flag set (none are
	// announced — the standalone-only flags below never reach vet mode).
	for _, arg := range os.Args[1:] {
		switch {
		case strings.HasPrefix(arg, "-V"):
			fmt.Println("nuclint version 2")
			return
		case arg == "-flags":
			fmt.Println("[]")
			return
		}
	}

	fs := flag.NewFlagSet("nuclint", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.String("json", "", `write findings as a JSON array to this file ("-" for stdout)`)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: nuclint [-list] [-only a,b] [-json file] [package patterns]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args, selected, *jsonOut))
}

// selectAnalyzers resolves the -only list against the suite; an empty
// spec selects everything.
func selectAnalyzers(spec string) ([]*analysis.Analyzer, error) {
	if spec == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("nuclint: -only names unknown analyzer %q (see -list)", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("nuclint: -only selected no analyzers")
	}
	return out, nil
}

// jsonFinding is one diagnostic in -json output: flat, stable fields, in
// the same order the text reporter prints.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// standalone loads the patterns through the go toolchain and runs the
// selected suite in-process, facts flowing between packages directly.
func standalone(patterns []string, selected []*analysis.Analyzer, jsonOut string) int {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	findings, err := analysis.Run(pkgs, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	wd, _ := os.Getwd()
	rel := func(name string) string {
		if wd != "" {
			if r, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(r, "..") {
				return r
			}
		}
		return name
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", rel(f.Posn.Filename), f.Posn.Line, f.Posn.Column, f.Analyzer, f.Message)
	}
	if jsonOut != "" {
		report := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			report = append(report, jsonFinding{
				Analyzer: f.Analyzer,
				File:     rel(f.Posn.Filename),
				Line:     f.Posn.Line,
				Column:   f.Posn.Column,
				Message:  f.Message,
			})
		}
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		blob = append(blob, '\n')
		if jsonOut == "-" {
			os.Stdout.Write(blob)
		} else if err := os.WriteFile(jsonOut, blob, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "nuclint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
