// Command nuclint is the multichecker for the repo's determinism and
// model-faithfulness invariants. It bundles six analyzers:
//
//	nodeterm     no wall-clock / ambient randomness / env vars / ad-hoc
//	             goroutines in determinism-critical packages
//	maporder     no map iteration order escaping into output
//	specregistry experiments registry ⇔ Spec literals ⇔ EXPERIMENTS.md
//	seedhash     per-unit RNGs seeded via the engine's DeriveSeed helper
//	obsclock     no obs.Wall (the wall-clock event-stamp shim) in
//	             determinism-critical packages
//	poolbuf      sync.Pool in determinism-critical and pooling-host
//	             packages confined to pointer-free buffer reuse (*[]T)
//
// Standalone usage (package patterns, default ./...):
//
//	go run ./cmd/nuclint ./...
//
// As a vet tool (runs the same analyzers through cmd/go's unit-at-a-time
// protocol, replacing the standard vet passes for that invocation):
//
//	go build -o nuclint ./cmd/nuclint
//	go vet -vettool=$(pwd)/nuclint ./...
//
// Findings can be suppressed case by case with a trailing
// `//lint:allow <analyzer> <why>` comment on the offending line or the
// line above it.
//
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nuconsensus/internal/lint/analysis"
	"nuconsensus/internal/lint/maporder"
	"nuconsensus/internal/lint/nodeterm"
	"nuconsensus/internal/lint/obsclock"
	"nuconsensus/internal/lint/poolbuf"
	"nuconsensus/internal/lint/seedhash"
	"nuconsensus/internal/lint/specregistry"
)

// analyzers is the nuclint suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	maporder.Analyzer,
	nodeterm.Analyzer,
	obsclock.Analyzer,
	poolbuf.Analyzer,
	seedhash.Analyzer,
	specregistry.Analyzer,
}

func main() {
	// cmd/go probes vet tools before use: -V=full must print a stable
	// version fingerprint, -flags the tool's extra flag set (none).
	for _, arg := range os.Args[1:] {
		switch {
		case strings.HasPrefix(arg, "-V"):
			fmt.Println("nuclint version 1")
			return
		case arg == "-flags":
			fmt.Println("[]")
			return
		}
	}

	fs := flag.NewFlagSet("nuclint", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: nuclint [-list] [package patterns]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args))
}

// standalone loads the patterns through the go toolchain and runs the
// whole suite in-process, facts flowing between packages directly.
func standalone(patterns []string) int {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	wd, _ := os.Getwd()
	for _, f := range findings {
		name := f.Posn.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", name, f.Posn.Line, f.Posn.Column, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "nuclint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
