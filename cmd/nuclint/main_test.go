package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nuconsensus/internal/lint/analysis"
)

// allowCases gives, for every analyzer in the suite, a minimal fixture
// that triggers exactly its diagnostic, with an @ALLOW@ slot on the line
// above the offending one. TestAllowSuppressesEachAnalyzer compiles each
// twice: with a plain comment the diagnostic must fire, with the
// analyzer's //lint:allow it must not.
var allowCases = []struct {
	analyzer   string
	importPath string
	files      map[string]string
}{
	{
		analyzer:   "atomicmix",
		importPath: "internal/obs",
		files: map[string]string{"a.go": `package obs

import "sync/atomic"

type counter struct{ n int64 }

func bump(c *counter) { atomic.AddInt64(&c.n, 1) }

func peek(c *counter) int64 {
	@ALLOW@
	return c.n
}
`},
	},
	{
		analyzer:   "bufownership",
		importPath: "internal/netrun",
		files: map[string]string{"a.go": `package netrun

import "nuconsensus/internal/wire"

func f() byte {
	b := wire.GetBuf(8)
	wire.PutBuf(b)
	@ALLOW@
	return b[0]
}
`},
	},
	{
		analyzer:   "locksafe",
		importPath: "internal/substrate",
		files: map[string]string{"a.go": `package substrate

import "sync"

type box struct{ mu sync.Mutex }

func f(b *box, fail bool) {
	@ALLOW@
	b.mu.Lock()
	if fail {
		return
	}
	b.mu.Unlock()
}
`},
	},
	{
		analyzer:   "maporder",
		importPath: "mapscan",
		files: map[string]string{"a.go": `package mapscan

func f(m map[string]int) []string {
	var out []string
	@ALLOW@
	for k := range m {
		out = append(out, k)
	}
	return out
}
`},
	},
	{
		analyzer:   "nodeterm",
		importPath: "internal/model",
		files: map[string]string{"a.go": `package model

import "time"

func f() int64 {
	@ALLOW@
	return time.Now().UnixNano()
}
`},
	},
	{
		analyzer:   "obsclock",
		importPath: "internal/sim",
		files: map[string]string{"a.go": `package sim

import "nuconsensus/internal/obs"

func f(b *obs.Bus) {
	@ALLOW@
	b.SetClock(obs.Wall{})
}
`},
	},
	{
		analyzer:   "poolbuf",
		importPath: "internal/wire",
		files: map[string]string{"a.go": `package wire

import "sync"

@ALLOW@
var p = sync.Pool{New: func() interface{} { return new([]string) }}
`},
	},
	{
		analyzer:   "seedhash",
		importPath: "internal/explore",
		files: map[string]string{"a.go": `package explore

type key [2]uint64

func shardOf(k key, salt int64, w int) int { return int((k[0] ^ uint64(salt)) % uint64(w)) }

func f(ks []key, w int) int {
	@ALLOW@
	return shardOf(ks[0], 42, w)
}
`},
	},
	{
		analyzer:   "specregistry",
		importPath: "experiments",
		files: map[string]string{
			"a.go": `package experiments

type Spec struct {
	ID   string
	Unit func() int
}

var e1 = &Spec{ID: "E1", Unit: func() int { return 1 }}

@ALLOW@
var Registry = map[string]*Spec{
	"E1": e1,
}
`,
			"EXPERIMENTS.md": "# Tables\n\n## E1 — documented\n\n## E9 — documented but never registered\n",
		},
	},
}

// TestAllowSuppressesEachAnalyzer is the table-driven suppression check:
// every analyzer's diagnostic fires without its allow comment and is
// silenced by `//lint:allow <analyzer> <why>` on the line above.
func TestAllowSuppressesEachAnalyzer(t *testing.T) {
	byName := make(map[string]*analysis.Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	covered := make(map[string]bool)
	for _, tc := range allowCases {
		covered[tc.analyzer] = true
		a, ok := byName[tc.analyzer]
		if !ok {
			t.Errorf("allowCases names %q, which is not in the suite", tc.analyzer)
			continue
		}
		t.Run(tc.analyzer, func(t *testing.T) {
			for _, allowed := range []bool{false, true} {
				comment := "// plain comment, no suppression"
				if allowed {
					comment = "//lint:allow " + tc.analyzer + " table-driven suppression test"
				}
				dir := t.TempDir()
				for name, src := range tc.files {
					src = strings.ReplaceAll(src, "@ALLOW@", comment)
					if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o666); err != nil {
						t.Fatal(err)
					}
				}
				pkg, err := analysis.CheckDir(dir, tc.importPath, wd)
				if err != nil {
					t.Fatalf("allowed=%v: loading fixture: %v", allowed, err)
				}
				findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
				if err != nil {
					t.Fatalf("allowed=%v: running %s: %v", allowed, tc.analyzer, err)
				}
				if allowed && len(findings) != 0 {
					t.Errorf("lint:allow did not silence %s: %v", tc.analyzer, findings)
				}
				if !allowed && len(findings) == 0 {
					t.Errorf("fixture did not trigger %s without the allow comment", tc.analyzer)
				}
				for _, f := range findings {
					if f.Analyzer != tc.analyzer {
						t.Errorf("unexpected analyzer in finding: got %s, want %s (%s)", f.Analyzer, tc.analyzer, f.Message)
					}
				}
			}
		})
	}
	for _, a := range analyzers {
		if !covered[a.Name] {
			t.Errorf("analyzer %s has no suppression case: add one to allowCases", a.Name)
		}
	}
}

// TestTreeCleanUnderFullSuite pins satellite hygiene: the module itself
// must carry zero findings under all nine analyzers, so any rule the
// suite enforces on contributors holds for the tree as committed.
func TestTreeCleanUnderFullSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short")
	}
	pkgs, err := analysis.Load(".", "nuconsensus/...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s:%d:%d: %s: %s", f.Posn.Filename, f.Posn.Line, f.Posn.Column, f.Analyzer, f.Message)
	}
}
