// Command nucload drives client traffic against a running cmd/nucd: a
// configurable mix of writes (kv put/del, queue push/pop) and reads (plain
// or linearizable) over Zipf-skewed keys, from -clients concurrent
// sessions that round-robin across the daemon's per-node listeners.
//
// The loop is closed with a window: each session keeps up to -window
// requests outstanding and issues the next as replies return, so -window 1
// is a classic closed loop and larger windows approximate an open one.
// -ops counts WRITE commands — the number the server applies through the
// log — and must match nucd's -ops for auto-exit; reads are issued on top
// at -read-frac of total traffic (batching is a server-side knob: nucd
// -batch). Latency is tracked in microsecond histograms per class (write,
// read, linearizable read) plus overall ops/sec.
//
// Usage:
//
//	nucload -addr-file /tmp/nucd.addrs -ops 2000 -clients 8 -window 4 \
//	        -read-frac 0.3 -lin-frac 0.5 -keys 1024 -zipf 1.3
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"nuconsensus/internal/obs"
	"nuconsensus/internal/serve"
	"nuconsensus/internal/wire"
)

// latencyBuckets frame the microsecond histograms: 50µs to 1s.
var latencyBuckets = []int64{50, 100, 200, 500, 1000, 2000, 5000, 10000, 20000, 50000, 100000, 200000, 500000, 1000000}

func main() {
	var (
		addrsFlag = flag.String("addrs", "", "comma-separated nucd client addresses")
		addrFile  = flag.String("addr-file", "", "read addresses from this file (waits for it to appear)")
		ops       = flag.Int("ops", 2000, "total write commands (match nucd -ops)")
		clients   = flag.Int("clients", 8, "concurrent client sessions")
		window    = flag.Int("window", 1, "outstanding requests per session (1: closed loop)")
		readFrac  = flag.Float64("read-frac", 0.0, "fraction of requests that are reads")
		linFrac   = flag.Float64("lin-frac", 0.5, "fraction of reads that are linearizable")
		queueFrac = flag.Float64("queue-frac", 0.25, "fraction of writes on queues (push/pop)")
		delFrac   = flag.Float64("del-frac", 0.05, "fraction of kv writes that are deletes")
		keys      = flag.Uint64("keys", 1024, "key-space size")
		zipf      = flag.Float64("zipf", 1.3, "Zipf s parameter for key skew (<=1: uniform)")
		seed      = flag.Int64("seed", 1, "workload seed")
		timeout   = flag.Duration("timeout", 2*time.Minute, "abort if the run exceeds this")
		metrics   = flag.String("metrics", "", "write the metrics registry as JSONL to this file")
		trace     = flag.String("trace", "", "write client-side span events (send/recv per write) as JSONL to this file")
	)
	flag.Parse()

	addrs, err := resolveAddrs(*addrsFlag, *addrFile, *timeout)
	if err != nil {
		log.Fatalf("nucload: %v", err)
	}
	if *clients < 1 || *ops < 1 {
		log.Fatal("nucload: need -clients >= 1 and -ops >= 1")
	}

	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			log.Fatalf("nucload: trace file: %v", err)
		}
		tracer = obs.NewTracer(f, obs.Wall{}, reg)
	}
	var wg sync.WaitGroup
	failed := make(chan error, *clients)
	start := time.Now()
	for c := 0; c < *clients; c++ {
		writes := *ops / *clients
		if c < *ops%*clients {
			writes++
		}
		if writes == 0 {
			continue
		}
		wg.Add(1)
		go func(id int, writes int) {
			defer wg.Done()
			s := &session{
				id:      uint32(id + 1),
				addr:    addrs[id%len(addrs)],
				node:    id % len(addrs),
				tracer:  tracer,
				writes:  writes,
				window:  *window,
				rng:     rand.New(rand.NewSource(*seed + int64(id)*104729)),
				reg:     reg,
				rf:      *readFrac,
				lf:      *linFrac,
				qf:      *queueFrac,
				df:      *delFrac,
				keys:    *keys,
				zipfS:   *zipf,
				timeout: *timeout,
			}
			if err := s.run(); err != nil {
				failed <- fmt.Errorf("client %d: %w", id+1, err)
			}
		}(c, writes)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(failed)
	for err := range failed {
		log.Fatalf("nucload: %v", err)
	}

	acked := reg.Counter("load.writes_acked").Value()
	reads := reg.Counter("load.reads").Value()
	total := acked + reads
	fmt.Printf("done ops=%d writes=%d reads=%d wall=%s ops/sec=%.0f\n",
		total, acked, reads, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	for _, class := range []string{"write", "read", "lin"} {
		h := reg.Histogram("load."+class+"_us", latencyBuckets)
		if h.Count() > 0 {
			fmt.Printf("latency %-5s n=%d mean=%dµs p50=%.0fµs p99=%.0fµs\n",
				class, h.Count(), h.Sum()/h.Count(), h.Quantile(0.5), h.Quantile(0.99))
		}
	}
	if err := tracer.Close(); err != nil {
		log.Fatalf("nucload: trace file: %v", err)
	}
	if *metrics != "" {
		if err := writeMetricsJSONL(*metrics, reg); err != nil {
			log.Fatalf("nucload: %v", err)
		}
	}
	if acked != int64(*ops) {
		log.Fatalf("nucload: acked %d writes, want %d", acked, *ops)
	}
}

// resolveAddrs takes -addrs verbatim or polls -addr-file until nucd
// publishes it.
func resolveAddrs(addrs, file string, timeout time.Duration) ([]string, error) {
	if addrs != "" {
		return strings.Split(addrs, ","), nil
	}
	if file == "" {
		return nil, fmt.Errorf("need -addrs or -addr-file")
	}
	deadline := time.Now().Add(timeout)
	for {
		b, err := os.ReadFile(file)
		if err == nil && len(b) > 0 {
			return strings.Fields(string(b)), nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("address file %s never appeared", file)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func writeMetricsJSONL(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, s := range reg.Snapshot() {
		if err := enc.Encode(s); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readSeqBit separates read sequence numbers from the write session-seq
// space, which the server requires to be contiguous per client.
const readSeqBit = uint64(1) << 63

// session is one client: a connection, a contiguous write-seq counter, and
// a window of outstanding requests matched to replies by sequence number.
type session struct {
	id      uint32
	addr    string
	node    int // index of the nucd node this session targets (span P field)
	tracer  *obs.Tracer
	writes  int
	window  int
	rng     *rand.Rand
	reg     *obs.Registry
	rf, lf  float64
	qf, df  float64
	keys    uint64
	zipfS   float64
	timeout time.Duration

	conn    net.Conn
	wseq    uint64  // write seqs: 1, 2, 3, … (contiguous, exactly-once)
	rseq    uint64  // read seqs, tagged with readSeqBit
	readAcc float64 // fractional reads owed per the read/write mix
	sentAt  map[uint64]time.Time
	class   map[uint64]string
}

func (s *session) run() error {
	conn, err := net.Dial("tcp", s.addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(s.timeout))
	s.conn = conn
	s.sentAt = make(map[uint64]time.Time, s.window)
	s.class = make(map[uint64]string, s.window)

	var zipf *rand.Zipf
	if s.zipfS > 1 && s.keys > 1 {
		zipf = rand.NewZipf(s.rng, s.zipfS, 1, s.keys-1)
	}
	key := func() uint64 {
		if zipf != nil {
			return zipf.Uint64()
		}
		return s.rng.Uint64() % s.keys
	}

	r := bufio.NewReader(conn)
	sent := 0
	for sent < s.writes || len(s.sentAt) > 0 {
		// Fill the window; reads are interleaved at the requested fraction.
		for len(s.sentAt) < s.window && sent < s.writes {
			if s.rf > 0 && s.rf < 1 {
				s.readAcc += s.rf / (1 - s.rf)
				for s.readAcc >= 1 && len(s.sentAt) < s.window {
					s.readAcc--
					if err := s.send(s.readReq(key())); err != nil {
						return err
					}
				}
				if len(s.sentAt) >= s.window {
					break
				}
			}
			if err := s.send(s.writeReq(key())); err != nil {
				return err
			}
			sent++
		}
		if len(s.sentAt) == 0 {
			break
		}
		pl, err := wire.ReadPayloadFrame(r)
		if err != nil {
			return fmt.Errorf("read reply: %w", err)
		}
		rep, ok := pl.(serve.ReplyPayload)
		if !ok {
			return fmt.Errorf("unexpected reply payload %T", pl)
		}
		t0, ok := s.sentAt[rep.Seq]
		if !ok {
			return fmt.Errorf("reply for unknown seq %d", rep.Seq)
		}
		class := s.class[rep.Seq]
		delete(s.sentAt, rep.Seq)
		delete(s.class, rep.Seq)
		if rep.Status == serve.StatusDup || rep.Status == serve.StatusRetired {
			s.reg.Counter("load.dup_acks").Add(1)
		}
		s.reg.Histogram("load."+class+"_us", latencyBuckets).Observe(time.Since(t0).Microseconds())
		if class == "write" {
			s.reg.Counter("load.writes_acked").Add(1)
			s.tracer.Span(obs.SpanEvent{
				Stage: obs.StageRecv, P: s.node, Client: s.id, Seq: rep.Seq,
				Slot: -1, N: int(rep.Status),
			})
		} else {
			s.reg.Counter("load.reads").Add(1)
		}
	}
	return nil
}

// writeReq mints the next write with a contiguous session seq.
func (s *session) writeReq(key uint64) (serve.RequestPayload, string) {
	s.wseq++
	req := serve.RequestPayload{Client: s.id, Seq: s.wseq, Key: key, Val: int64(s.rng.Int31())}
	switch {
	case s.rng.Float64() < s.qf:
		if s.rng.Intn(2) == 0 {
			req.Op = serve.OpQPush
		} else {
			req.Op = serve.OpQPop
		}
	case s.rng.Float64() < s.df:
		req.Op = serve.OpDel
	default:
		req.Op = serve.OpPut
	}
	return req, "write"
}

// readReq mints a read outside the write-seq space.
func (s *session) readReq(key uint64) (serve.RequestPayload, string) {
	s.rseq++
	req := serve.RequestPayload{Client: s.id, Seq: s.rseq | readSeqBit, Op: serve.OpGet, Key: key}
	class := "read"
	if s.rng.Float64() < s.lf {
		req.Lin = true
		class = "lin"
	}
	return req, class
}

func (s *session) send(req serve.RequestPayload, class string) error {
	now := time.Now()
	req.T0 = now.UnixNano()
	if err := wire.WritePayloadFrame(s.conn, req); err != nil {
		return err
	}
	s.sentAt[req.Seq] = now
	s.class[req.Seq] = class
	if class == "write" {
		// Stamp the span with the same nanosecond the frame carries, so the
		// client-side and server-side views of the send instant agree.
		s.tracer.Span(obs.SpanEvent{
			Stage: obs.StageSend, P: s.node, Client: s.id, Seq: req.Seq,
			Slot: -1, Wall: req.T0,
		})
	}
	return nil
}
