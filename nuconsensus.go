// Package nuconsensus is a Go implementation of the results of Eisler,
// Hadzilacos and Toueg, "The weakest failure detector to solve nonuniform
// consensus" (PODC 2005; Distributed Computing 19(5), 2007).
//
// The paper proves that (Ω, Σν) — the leader detector paired with the
// nonuniform quorum detector — is the weakest failure detector with which
// asynchronous message-passing processes can solve nonuniform consensus in
// any environment (any number and timing of crashes). This package exposes
// the constructive halves of that proof as runnable artifacts:
//
//   - ANuc: the paper's consensus algorithm A_nuc (Figs. 4–5), which solves
//     nonuniform consensus using (Ω, Σν+) — sufficiency (Theorem 6.27);
//   - BoostSigmaNu: T_{Σν→Σν+} (Fig. 3), which upgrades Σν to Σν+ — so
//     (Ω, Σν) suffices end-to-end (Theorem 6.28);
//   - ExtractSigmaNu: T_{D→Σν} (Fig. 2), the DAG/simulation emulation at
//     the heart of necessity (Theorem 5.4), which also emulates Σ when the
//     given detector solves uniform consensus (Theorem 5.8);
//   - MR*: the Mostéfaoui–Raynal leader-based baselines the paper builds
//     on, including the naive Σν adaptation whose contamination failure
//     (§6.3) motivates A_nuc's distrust and quorum-awareness machinery;
//   - ScratchSigma / Partition: both directions of Theorem 7.1 — Σ is
//     implementable from scratch when a majority is correct, and provably
//     not emulatable from (Ω, Σν) otherwise.
//
// Two substrates run the same algorithms: a deterministic, model-faithful
// step simulator (Simulate) and a goroutine/channel asynchronous runtime
// (RunCluster). Failure detectors are histories over a failure pattern
// (Omega, Sigma, SigmaNu, SigmaNuPlus, Pair, and adversarial variants), and
// spec checkers (Check*) verify both native and emulated detectors.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// per-theorem reproduction tables.
package nuconsensus

import (
	"nuconsensus/internal/check"
	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/hb"
	"nuconsensus/internal/model"
	"nuconsensus/internal/rsm"
	"nuconsensus/internal/transform"
)

// Re-exported core types. ProcessID identifies a process in Π = {0..n−1};
// ProcessSet is a bitset of processes; Time is the discrete global clock.
type (
	ProcessID      = model.ProcessID
	ProcessSet     = model.ProcessSet
	Time           = model.Time
	FailurePattern = model.FailurePattern
	Automaton      = model.Automaton
	History        = model.History
	FDValue        = model.FDValue
)

// NeverCrashes is the crash time of correct processes.
const NeverCrashes = model.NeverCrashes

// NewFailurePattern returns the failure-free pattern over n processes;
// mark crashes with SetCrash.
func NewFailurePattern(n int) *FailurePattern { return model.NewFailurePattern(n) }

// Crashes returns a failure pattern with the given crash times.
func Crashes(n int, at map[ProcessID]Time) *FailurePattern {
	return model.PatternFromCrashes(n, at)
}

// SetOf builds a process set.
func SetOf(ps ...ProcessID) ProcessSet { return model.SetOf(ps...) }

// ANuc returns the paper's algorithm A_nuc for len(proposals) processes,
// where process p proposes proposals[p]. Drive it with a PairDetector of
// Omega and SigmaNuPlus histories (or an emulated Σν+; see BoostedANuc).
func ANuc(proposals []int) Automaton { return consensus.NewANuc(proposals) }

// MRMajority returns the Mostéfaoui–Raynal algorithm with majority waits.
// It solves uniform consensus with Ω when a majority of processes is
// correct — and blocks otherwise.
func MRMajority(proposals []int) Automaton { return consensus.NewMRMajority(proposals) }

// MRSigma returns MR with Σ quorums: uniform consensus with (Ω, Σ) in any
// environment.
func MRSigma(proposals []int) Automaton { return consensus.NewMRSigma(proposals) }

// MRNaiveNu returns the naive Σν adaptation of MR. It is NOT a correct
// nonuniform consensus algorithm: §6.3's contamination scenario makes two
// correct processes decide differently (see examples/contamination).
func MRNaiveNu(proposals []int) Automaton { return consensus.NewMRNaiveNu(proposals) }

// BoostSigmaNu returns the transformer T_{Σν→Σν+} (Theorem 6.7) for n
// processes. Its states expose the emulated Σν+ through their output
// variable.
func BoostSigmaNu(n int) Automaton { return transform.NewSigmaNuPlusTransformer(n) }

// BoostedANuc composes T_{Σν→Σν+} with A_nuc (Theorem 6.28): the returned
// automaton solves nonuniform consensus driven by (Ω, Σν) pair histories.
func BoostedANuc(proposals []int) Automaton {
	return transform.NewComposed(
		transform.NewSigmaNuPlusTransformer(len(proposals)),
		consensus.NewANuc(proposals),
	)
}

// ExtractSigmaNu returns the extraction algorithm T_{D→Σν} (Theorem 5.4)
// for n processes. target builds, for a given proposal assignment, the
// consensus algorithm A that uses the ambient failure detector D; the
// extractor simulates A's schedules over a DAG of D-samples. searchEvery
// throttles the simulation search (1 = every step, as in the paper).
func ExtractSigmaNu(n int, target func(proposals []int) Automaton, searchEvery int) Automaton {
	return transform.NewSigmaNuExtractor(n, func(ps []int) model.Automaton { return target(ps) }, searchEvery)
}

// ScratchSigma returns the from-scratch Σ implementation for environments
// with at most t < n/2 crashes (Theorem 7.1, IF).
func ScratchSigma(n, t int) Automaton { return transform.NewScratchSigma(n, t) }

// Omega returns a canonical Ω history for pattern f: arbitrary outputs
// before stabilize, the smallest correct process afterwards.
func Omega(f *FailurePattern, stabilize Time, seed int64) History {
	return fd.NewOmega(f, stabilize, seed)
}

// Sigma returns a canonical Σ history (uniform intersection).
func Sigma(f *FailurePattern, stabilize Time, seed int64) History {
	return fd.NewSigma(f, stabilize, seed)
}

// SigmaNu returns a canonical adversarial Σν history: correct modules
// behave like Σ, faulty modules emit junk quorums — the freedom Σν grants.
func SigmaNu(f *FailurePattern, stabilize Time, seed int64) History {
	return fd.NewSigmaNu(f, stabilize, seed)
}

// SigmaNuPlus returns a canonical Σν+ history.
func SigmaNuPlus(f *FailurePattern, stabilize Time, seed int64) History {
	return fd.NewSigmaNuPlus(f, stabilize, seed)
}

// Pair combines two histories into the pair detector (D, D') of §2.3.
func Pair(first, second History) History {
	return fd.PairHistory{First: first, Second: second}
}

// Decision returns the value decided by process p in the final states, if
// any.
func Decision(states []model.State, p ProcessID) (int, bool) {
	return model.DecisionOf(states[int(p)])
}

// CheckNonuniformConsensus verifies termination, validity and nonuniform
// agreement of a finished execution's final configuration.
func CheckNonuniformConsensus(c *model.Configuration, f *FailurePattern) error {
	return check.OutcomeFromConfig(c).NonuniformConsensus(f)
}

// CheckUniformConsensus verifies termination, validity and uniform
// agreement.
func CheckUniformConsensus(c *model.Configuration, f *FailurePattern) error {
	return check.OutcomeFromConfig(c).UniformConsensus(f)
}

// ANucAblated returns A_nuc with parts of its machinery disabled, for the
// ablation experiments (Q5): noDistrust removes the distrust rule of
// Fig. 5 lines 51–53; noSeenGate removes the seen_p[Q_p] < k_p decision
// gate of Fig. 4 line 30. Only the unablated algorithm is a correct
// nonuniform consensus algorithm.
func ANucAblated(proposals []int, noDistrust, noSeenGate bool) Automaton {
	return consensus.NewANucAblated(proposals, consensus.Ablation{
		NoDistrust: noDistrust,
		NoSeenGate: noSeenGate,
	})
}

// HeartbeatOmega returns the from-scratch heartbeat implementation of Ω
// (internal/hb): correct under partial synchrony — a fair or eventually
// timely scheduler — with no failure-detector oracle at all. every is the
// heartbeat period in own steps and timeout the initial adaptive suspicion
// timeout (zeros pick defaults).
func HeartbeatOmega(n, every, timeout int) Automaton {
	return hb.NewOmega(n, every, timeout)
}

// ScratchSigmaNuPlus returns the from-scratch Σν+ implementation for
// environments with t < n/2 crashes: the Theorem 7.1 threshold algorithm
// with owner-inclusion.
func ScratchSigmaNuPlus(n, t int) Automaton { return transform.NewScratchSigmaNuPlus(n, t) }

// OracleFreeANuc composes the heartbeat Ω, the from-scratch Σν+ and A_nuc
// into a fully failure-detector-free nonuniform consensus algorithm for
// systems with a correct majority (t < n/2) under partial synchrony. Drive
// it with any history (the ambient failure detector is ignored); the
// assembled (Ω, Σν+) pair the consumer sees is exposed through the states'
// emulated output for validation.
func OracleFreeANuc(proposals []int, t int) Automaton {
	n := len(proposals)
	return transform.NewOracleFree(
		hb.NewOmega(n, 0, 0),
		transform.NewScratchSigmaNuPlus(n, t),
		consensus.NewANuc(proposals),
	)
}

// HeartbeatSuspector returns the ◇P view of the heartbeat detector: it
// emits the set of currently suspected processes, which under partial
// synchrony eventually equals exactly the crashed set at every correct
// process (eventually perfect).
func HeartbeatSuspector(n, every, timeout int) Automaton {
	return hb.NewSuspector(n, every, timeout)
}

// ReplicatedLog returns the replicated-log automaton of internal/rsm: one
// A_nuc instance per log slot, command forwarding, and progress-based
// instance retirement. Drive it like A_nuc, with (Ω, Σν+) pair histories
// (PairForANuc); the execution "decides" when every correct replica's log
// holds slots entries.
func ReplicatedLog(commands [][]int, slots int) Automaton {
	return rsm.NewLog(commands, slots)
}

// LogEntries extracts a replica's decided log from final states.
func LogEntries(states []model.State, p ProcessID) ([]int, bool) {
	lh, ok := states[int(p)].(rsm.LogHolder)
	if !ok {
		return nil, false
	}
	return lh.Entries(), true
}

// PairForANuc builds the canonical (Ω, Σν+) pair history A_nuc and the
// replicated log consume.
func PairForANuc(f *FailurePattern, stabilize Time, seed int64) History {
	return Pair(Omega(f, stabilize, seed), SigmaNuPlus(f, stabilize, seed))
}

// ChandraToueg returns the classic Chandra–Toueg rotating-coordinator
// algorithm (the paper's reference [2]): uniform consensus from an
// eventually-strong suspicion detector (◇S) with a correct majority. Drive
// it with Suspicion histories or the heartbeat suspector.
func ChandraToueg(proposals []int) Automaton { return consensus.NewCT(proposals) }

// Suspicion returns a canonical ◇P/◇S suspicion history: arbitrary
// suspicion before stabilize, exactly the faulty set afterwards.
func Suspicion(f *FailurePattern, stabilize Time, seed int64) History {
	return fd.NewSuspicion(f, stabilize, seed)
}

// OracleFreeCT composes the heartbeat ◇P with Chandra–Toueg: a fully
// failure-detector-free *uniform* consensus stack for majority-correct
// systems under partial synchrony (the uniform sibling of OracleFreeANuc).
func OracleFreeCT(proposals []int) Automaton {
	n := len(proposals)
	return transform.NewFeed(
		hb.NewSuspector(n, 0, 0),
		consensus.NewCT(proposals),
		func(pl model.Payload) bool { _, ok := pl.(hb.HeartbeatPayload); return ok },
	)
}
