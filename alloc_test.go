// Steady-state allocation pins for the sim step loop (DESIGN.md §8). The
// CI perf job gates allocs/op through BENCH_9.json; these tests pin the
// same contract in plain `go test`, so a regression fails everywhere, not
// only in the perf job.
package nuconsensus_test

import (
	"testing"

	"nuconsensus/internal/model"
	"nuconsensus/internal/obs"
	"nuconsensus/internal/sim"
)

// simRunAllocs measures the allocations of one whole sim.Run of the given
// length (scheduler and pattern construction included).
func simRunAllocs(t *testing.T, aut model.Automaton, bus *obs.Bus, steps int) float64 {
	t.Helper()
	return testing.AllocsPerRun(3, func() {
		pattern := model.NewFailurePattern(aut.N())
		res, err := sim.Run(sim.Exec{
			Automaton: aut,
			Pattern:   pattern,
			History:   nullHistory{},
			Scheduler: sim.NewFairScheduler(1, 0.8, 3),
			MaxSteps:  steps,
			Bus:       bus,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Steps != steps {
			t.Fatalf("ran %d steps, want %d", res.Steps, steps)
		}
	})
}

// TestSimStepSteadyStateAllocFree asserts the step loop's steady state is
// allocation-free: two runs differing only in step count must allocate
// exactly the same amount, both bare and with the obs event bus attached.
// (A per-run total would also count setup, so the contract is pinned on
// the difference; the sim engine is single-goroutine, making the counts
// exact, not statistical.)
func TestSimStepSteadyStateAllocFree(t *testing.T) {
	const base, extra = 2000, 10000
	for _, tc := range []struct {
		name string
		bus  func() *obs.Bus
	}{
		{"idle", func() *obs.Bus { return nil }},
		{"idle-bus", func() *obs.Bus { return obs.NewBus(nil, obs.NewRegistry()) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			aut := idleAutomaton{n: 4}
			short := simRunAllocs(t, aut, tc.bus(), base)
			long := simRunAllocs(t, aut, tc.bus(), base+extra)
			if d := long - short; d != 0 {
				t.Errorf("steady-state step loop allocated: %g extra allocs over %d extra steps (short=%g, long=%g)",
					d, extra, short, long)
			}
		})
	}
}
