package serve

import "sync"

// Ingress is the hand-off between a node's client front end (cmd/nucd's
// connection goroutines) and its stepping replica: the front end pushes
// groups of commands, the replica drains one group per step into the log.
// On the sim substrate the queue is pre-loaded before the run, so draining
// stays deterministic.
type Ingress struct {
	mu sync.Mutex
	q  [][]Command
}

// Push enqueues one group of commands destined for a single batch.
func (in *Ingress) Push(cmds []Command) {
	if len(cmds) == 0 {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.q = append(in.q, cmds)
}

// Poll removes and returns the oldest pushed group.
func (in *Ingress) Poll() ([]Command, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.q) == 0 {
		return nil, false
	}
	cmds := in.q[0]
	in.q = in.q[1:]
	return cmds, true
}

// Len returns how many groups are waiting.
func (in *Ingress) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.q)
}
