package serve

import (
	"sync"

	"nuconsensus/internal/model"
	"nuconsensus/internal/obs"
)

// Applier consumes one process's decided log entries, in slot order, and
// runs them through the session layer into the state machine. It is the
// process's rsm.EntrySink endpoint and — like the shared fd.Sampler — a
// mutable resource living OUTSIDE the cloned automaton state: sound on
// linear executions (sim.Run, the concurrent substrates), never under
// explore.
//
// The lock covers every field; client-facing callers (cmd/nucd's
// connection goroutines) and the stepping replica contend on it briefly.
// Result callbacks registered by the front end run outside the lock.
type Applier struct {
	mu   sync.Mutex
	cond *sync.Cond // broadcast whenever applied advances
	p    model.ProcessID

	machine  *Machine
	sessions *Sessions
	bodies   map[int][]Command // batch id → commands, until compaction
	batchAt  map[int]int       // batch id → first slot it was applied at
	stalled  []logEntry        // decided entries waiting for their body
	frontier int               // entries observed decided (sink calls)
	applied  int               // entries fully applied

	retain  bool  // keep decided values for tests/E18 agreement checks
	decided []int // the retained values
	closed  bool  // Shutdown called: read-index waits stop blocking

	// Per-applier tallies: the obs counters above are shared across a
	// cluster's appliers, so replica-local checks read these instead.
	nCommands, nDups, nBatches int64

	waiters map[waiterKey]func(byte, int64)

	// tracer emits decide/apply span events (nil: tracing off). The obs
	// Tracer stamps wall time only through its injected clock, so the
	// applier itself stays clock-free (obsclock contract).
	tracer *obs.Tracer

	cCommands, cDups, cBatches, cDupBatches *obs.Counter
	cNoops, cStalls, cCompactions           *obs.Counter
	gSessions                               *obs.Gauge
	hBatchSize                              *obs.Histogram
}

type logEntry struct {
	slot, v int
	counted bool // stall already counted for this entry
}

type waiterKey struct {
	client uint32
	seq    uint64
}

type notice struct {
	fn     func(byte, int64)
	status byte
	val    int64
}

// batchSizeBuckets frames the serve.apply.batch_size histogram.
var batchSizeBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// NewApplier builds the applier for process p, registering its instruments
// on reg (shared across a cluster's appliers; all instruments are
// commutative, so experiment metrics stay worker-count-independent).
func NewApplier(p model.ProcessID, reg *obs.Registry, retain bool) *Applier {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	a := &Applier{
		p:           p,
		machine:     NewMachine(),
		sessions:    NewSessions(),
		bodies:      make(map[int][]Command),
		batchAt:     make(map[int]int),
		waiters:     make(map[waiterKey]func(byte, int64)),
		retain:      retain,
		cCommands:   reg.Counter("serve.apply.commands"),
		cDups:       reg.Counter("serve.apply.dup_commands"),
		cBatches:    reg.Counter("serve.apply.batches"),
		cDupBatches: reg.Counter("serve.apply.dup_batches"),
		cNoops:      reg.Counter("serve.apply.noops"),
		cStalls:     reg.Counter("serve.apply.stalls"),
		cCompactions: reg.Counter(
			"serve.sessions.compactions"),
		gSessions:  reg.Gauge("serve.sessions.live"),
		hBatchSize: reg.Histogram("serve.apply.batch_size", batchSizeBuckets),
	}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// WithTracer attaches the span tracer (nil keeps tracing off).
func (a *Applier) WithTracer(t *obs.Tracer) *Applier {
	a.tracer = t
	return a
}

// OnEntryRound implements rsm.RoundSink: the slot's decide event, with the
// round count this process observed the decision at. Batch-level — the
// decided value IS the batch ID — so one decide span fans out to every
// member command through the batch ID the inject/apply spans carry.
func (a *Applier) OnEntryRound(_ model.ProcessID, slot, v, round int) {
	if !NoOpEntry(v) {
		a.tracer.Span(obs.SpanEvent{Stage: obs.StageDecide, P: int(a.p), Batch: v, Slot: slot, N: round})
	}
}

// PutBody registers a batch body (from local ingress or BATCH gossip) and
// unstalls any decided entries that were waiting for it.
func (a *Applier) PutBody(id int, cmds []Command) {
	for _, nt := range a.putBodyLocked(id, cmds) {
		nt.fn(nt.status, nt.val)
	}
}

func (a *Applier) putBodyLocked(id int, cmds []Command) []notice {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.bodies[id]; dup {
		return nil
	}
	a.bodies[id] = cmds
	return a.drainLocked()
}

// OnEntry implements rsm.EntrySink: one decided value, in slot order.
func (a *Applier) OnEntry(_ model.ProcessID, slot, v int) {
	for _, nt := range a.onEntryLocked(slot, v) {
		nt.fn(nt.status, nt.val)
	}
}

func (a *Applier) onEntryLocked(slot, v int) []notice {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.frontier++
	if a.retain {
		a.decided = append(a.decided, v)
	}
	a.stalled = append(a.stalled, logEntry{slot: slot, v: v})
	return a.drainLocked()
}

// drainLocked applies the stalled prefix whose bodies are present. Entries
// must apply in slot order, so the first missing body blocks the rest.
func (a *Applier) drainLocked() []notice {
	var out []notice
	for len(a.stalled) > 0 {
		e := a.stalled[0]
		if !NoOpEntry(e.v) {
			if _, ok := a.bodies[e.v]; !ok {
				// A batch applied below the retirement floor can lose its
				// body to compaction and still decide again in a later slot
				// (a pipelined re-proposal in flight at compaction time).
				// Every one of its commands is a session duplicate, so the
				// entry needs no body — anything else is a genuine stall.
				if _, applied := a.batchAt[e.v]; applied {
					a.cDupBatches.Add(1)
					a.stalled = a.stalled[1:]
					a.applied++
					continue
				}
				if !a.stalled[0].counted {
					a.stalled[0].counted = true
					a.cStalls.Add(1)
				}
				break
			}
		}
		a.stalled = a.stalled[1:]
		out = append(out, a.applyLocked(e)...)
		a.applied++
	}
	if len(out) > 0 || a.applied > 0 {
		a.cond.Broadcast()
	}
	return out
}

// applyLocked runs one decided entry through sessions into the machine.
func (a *Applier) applyLocked(e logEntry) []notice {
	if NoOpEntry(e.v) {
		a.cNoops.Add(1)
		return nil
	}
	cmds := a.bodies[e.v]
	if _, dup := a.batchAt[e.v]; dup {
		// The same batch decided in a second slot (a pipelined re-proposal
		// raced its own decision): every command is a session duplicate.
		a.cDupBatches.Add(1)
	} else {
		a.batchAt[e.v] = e.slot
		a.cBatches.Add(1)
		a.nBatches++
		a.hBatchSize.Observe(int64(len(cmds)))
	}
	var out []notice
	for _, c := range cmds {
		var status byte
		var val int64
		if a.sessions.Applied(c.Client, c.Seq) {
			a.cDups.Add(1)
			a.nDups++
			if r, hit := a.sessions.Reply(c.Client, c.Seq); hit {
				status, val = r.status, r.val
			} else {
				status = StatusRetired
			}
		} else {
			val, status = a.machine.Apply(c)
			a.sessions.Record(c.Client, c.Seq, e.slot, status, val)
			a.cCommands.Add(1)
			a.nCommands++
			a.tracer.Span(obs.SpanEvent{
				Stage: obs.StageApply, P: int(a.p), Client: c.Client, Seq: c.Seq,
				Batch: e.v, Slot: e.slot, N: int(status),
			})
		}
		key := waiterKey{client: c.Client, seq: c.Seq}
		if fn, ok := a.waiters[key]; ok {
			delete(a.waiters, key)
			out = append(out, notice{fn: fn, status: status, val: val})
		}
	}
	a.gSessions.Max(int64(a.sessions.Len()))
	return out
}

// Compact releases state no future entry can need: batch bodies decided
// below the retirement floor (every replica appended those slots, and
// decided values leave every proposal pool — see rsm.FloorOf), and the
// cached replies of sessions idle since before the floor. Exactly-once
// bookkeeping — sessions and the batchAt table (two ints per batch, and
// the dup-after-compaction sentinel in drainLocked) — is never dropped.
func (a *Applier) Compact(floor int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for id, slot := range a.batchAt {
		if slot < floor {
			delete(a.bodies, id)
		}
	}
	a.cCompactions.Add(int64(a.sessions.Compact(floor)))
}

// RegisterWaiter arranges fn to run (outside the lock) with the result of
// (client, seq) once it applies; if it already has, fn runs immediately
// with the cached result (StatusRetired when the cache aged out).
func (a *Applier) RegisterWaiter(client uint32, seq uint64, fn func(status byte, val int64)) {
	a.mu.Lock()
	if a.sessions.Applied(client, seq) {
		r, hit := a.sessions.Reply(client, seq)
		a.mu.Unlock()
		if hit {
			fn(r.status, r.val)
		} else {
			fn(StatusRetired, 0)
		}
		return
	}
	a.waiters[waiterKey{client: client, seq: seq}] = fn
	a.mu.Unlock()
}

// ReadIndex snapshots the local decided frontier: the index a
// linearizable read must wait for.
func (a *Applier) ReadIndex() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.frontier
}

// WaitApplied blocks until the applier has applied at least target
// entries (or Shutdown is called). Concurrent-substrate callers only
// (cmd/nucd conn goroutines); on the sim substrate nothing else can
// advance the applier while the caller waits.
func (a *Applier) WaitApplied(target int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.applied < target && !a.closed {
		a.cond.Wait()
	}
}

// Shutdown unblocks read-index waits permanently. Once the cluster
// drivers halt the replicas and close their links, a decided-but-stalled
// frontier entry can never receive its batch body, so a read-index read
// snapshot taken just before the halt would otherwise wait forever; after
// Shutdown such reads degrade to plain local reads instead of deadlocking
// their clients. Writes are unaffected — every acknowledged write applied
// before the halt by definition.
func (a *Applier) Shutdown() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.closed = true
	a.cond.Broadcast()
}

// Get serves an eventually-consistent read from the local machine.
func (a *Applier) Get(key uint64) (int64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.machine.Get(key)
}

// GetLin serves a read-index read: snapshot the decided frontier, wait
// until it is applied, then read. Linearizable with respect to every
// write this node has acknowledged. After Shutdown the wait is waived
// (the halted cluster can no longer deliver stalled bodies) and the read
// is only as fresh as a plain Get.
func (a *Applier) GetLin(key uint64) (int64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	target := a.frontier
	for a.applied < target && !a.closed {
		a.cond.Wait()
	}
	return a.machine.Get(key)
}

// Stats is a consistent snapshot of the applier's progress.
type Stats struct {
	Frontier   int // entries observed decided
	Applied    int // entries applied
	Commands   int64
	Dups       int64
	Batches    int64
	Stalled    int // entries currently waiting for a body
	Sessions   int
	ReplyCache int // cached replies across all live sessions
}

// StatsOf returns the applier's current stats.
func (a *Applier) StatsOf() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Stats{
		Frontier:   a.frontier,
		Applied:    a.applied,
		Commands:   a.nCommands,
		Dups:       a.nDups,
		Batches:    a.nBatches,
		Stalled:    len(a.stalled),
		Sessions:   a.sessions.Len(),
		ReplyCache: a.sessions.CachedReplies(),
	}
}

// Commands returns how many distinct commands this applier has applied.
func (a *Applier) Commands() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nCommands
}

// Decided returns the retained decided values (retain mode only).
func (a *Applier) Decided() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]int(nil), a.decided...)
}

// Checksum digests the machine state for cross-replica agreement checks.
func (a *Applier) Checksum() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.machine.Checksum()
}
