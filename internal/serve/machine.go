package serve

import (
	"hash/fnv"
	"sort"
)

// Machine is the replicated KV/queue state machine. It is driven only by
// the Applier, in slot order, so it needs no locking of its own.
type Machine struct {
	kv     map[uint64]int64
	queues map[uint64][]int64
	ops    uint64 // mutations applied (monotone version)
}

// NewMachine returns an empty state machine.
func NewMachine() *Machine {
	return &Machine{kv: make(map[uint64]int64), queues: make(map[uint64][]int64)}
}

// Apply executes one command and returns its reply value and status. Get
// is tolerated (a logged read costs a slot but stays correct); it does not
// bump the mutation counter.
func (m *Machine) Apply(c Command) (int64, byte) {
	switch c.Op {
	case OpNop:
		return 0, StatusOK
	case OpPut:
		m.kv[c.Key] = c.Val
		m.ops++
		return c.Val, StatusOK
	case OpDel:
		old, ok := m.kv[c.Key]
		delete(m.kv, c.Key)
		m.ops++
		if !ok {
			return 0, StatusMissing
		}
		return old, StatusOK
	case OpQPush:
		q := append(m.queues[c.Key], c.Val)
		m.queues[c.Key] = q
		m.ops++
		return int64(len(q)), StatusOK
	case OpQPop:
		q := m.queues[c.Key]
		if len(q) == 0 {
			return 0, StatusMissing
		}
		v := q[0]
		if len(q) == 1 {
			delete(m.queues, c.Key) // release the drained backing array
		} else {
			m.queues[c.Key] = q[1:]
		}
		m.ops++
		return v, StatusOK
	case OpGet:
		v, ok := m.kv[c.Key]
		if !ok {
			return 0, StatusMissing
		}
		return v, StatusOK
	default:
		return 0, StatusMissing
	}
}

// Get reads a key without going through the log.
func (m *Machine) Get(key uint64) (int64, bool) {
	v, ok := m.kv[key]
	return v, ok
}

// QLen returns the length of a queue.
func (m *Machine) QLen(key uint64) int { return len(m.queues[key]) }

// Ops returns the number of mutations applied.
func (m *Machine) Ops() uint64 { return m.ops }

// Checksum digests the full machine state, order-free: keys are collected
// and sorted before hashing, so two machines that applied the same entries
// in the same slot order produce identical sums.
func (m *Machine) Checksum() uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	keys := make([]uint64, 0, len(m.kv))
	for k := range m.kv {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		put(k)
		put(uint64(m.kv[k]))
	}
	put(0xfeed) // domain separator between the kv and queue sections
	keys = keys[:0]
	for k := range m.queues {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		put(k)
		for _, v := range m.queues[k] {
			put(uint64(v))
		}
		put(0xbeef)
	}
	return h.Sum64()
}
