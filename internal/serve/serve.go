// Package serve is the client-facing layer of the replicated log: a
// KV/queue state machine replicated via one nonuniform-consensus instance
// per slot (internal/rsm), fronted by client sessions with exactly-once
// command application.
//
// The package is the deterministic core only. Everything here runs inside
// the automaton step cycle or behind small mutexes, is free of wall time,
// goroutines and ambient randomness (it is on nodeterm's critical list),
// and is shared verbatim by the sim-substrate experiments (E18), the unit
// tests, and cmd/nucd's real TCP serving path. Three pieces:
//
//   - Replica: an automaton wrapping rsm.Log that batches client commands
//     into one consensus value per slot (a Batch, identified in the log by
//     a packed positive int), gossips batch bodies, and feeds decided
//     entries to an Applier.
//   - Applier: a per-process external resource (like fd.Sampler) holding
//     the KV/queue Machine, the session dedup table, and the decided-entry
//     cursor. Commands apply in slot order exactly once per (client, seq),
//     no matter how many slots a retried batch was decided into.
//   - Ingress: the mutex-guarded queue cmd/nucd pushes live client batches
//     through; Replica drains it into the log via rsm.Inject.
//
// Consistency: writes are linearizable at commit (slot order is agreed by
// every correct process). Reads come in two modes — read-index reads,
// which snapshot the local decided frontier and wait until the Applier has
// caught up to it (linearizable with respect to everything the serving
// node has acknowledged), and eventually-consistent reads served straight
// from the local machine. Under *nonuniform* consensus a nonuniformly
// faulty replica may briefly serve reads no correct process agrees with
// (the E14 phenomenon); DESIGN.md §11 spells out the trade.
package serve

import (
	"fmt"

	"nuconsensus/internal/model"
	"nuconsensus/internal/rsm"
)

// Command op codes. Writes (Put, Del, QPush, QPop) travel through the
// replicated log; Get exists for the client protocol and is served by the
// Applier without consuming a slot.
const (
	OpNop   byte = 0
	OpPut   byte = 1
	OpDel   byte = 2
	OpQPush byte = 3
	OpQPop  byte = 4
	OpGet   byte = 5
)

// Reply status codes.
const (
	StatusOK      byte = 0 // applied (or served); Val carries the result
	StatusMissing byte = 1 // key absent or queue empty
	StatusDup     byte = 2 // duplicate suppressed, cached result returned
	StatusRetired byte = 3 // duplicate older than the cached-reply window
)

// Command is one client operation: Seq numbers start at 1 and increase by
// one per command within a client session, which is what the exactly-once
// dedup keys on.
type Command struct {
	Client uint32
	Seq    uint64
	Op     byte
	Key    uint64
	Val    int64
}

// String renders a command for diagnostics.
func (c Command) String() string {
	return fmt.Sprintf("c%d#%d op%d k%d v%d", c.Client, c.Seq, c.Op, c.Key, c.Val)
}

// Batch is the unit of consensus: many client commands decided in one
// slot. The log carries only the packed ID; bodies travel separately in
// BatchPayload gossip and wait in the Applier until their slot decides.
type Batch struct {
	ID   int
	Cmds []Command
}

// BatchID packs (origin process, per-origin batch index) into the positive
// int the rsm log carries as a command. It never collides with rsm.NoOp
// and is unique as long as one origin mints fewer than 2^56 batches.
func BatchID(p model.ProcessID, i int) int {
	id := ((i + 1) << 6) | int(p)
	if id <= 0 {
		panic(fmt.Sprintf("serve: batch id overflow (p=%d i=%d)", p, i))
	}
	return id
}

// BatchOrigin recovers the minting process from a batch ID.
func BatchOrigin(id int) model.ProcessID { return model.ProcessID(id & 63) }

// BatchPayload gossips a batch body so every replica can apply the slot
// that decides its ID. Bodies are immutable once sent.
type BatchPayload struct {
	ID   int
	Cmds []Command
}

// Kind implements model.Payload.
func (BatchPayload) Kind() string { return "BATCH" }

// String implements model.Payload.
func (b BatchPayload) String() string { return fmt.Sprintf("BATCH(%d,%d cmds)", b.ID, len(b.Cmds)) }

// RequestPayload is one client-protocol request frame (cmd/nucd ↔
// cmd/nucload): a single command plus the read mode. It rides the same
// internal/wire codec as the consensus payloads.
type RequestPayload struct {
	Client uint32
	Seq    uint64
	Op     byte
	Key    uint64
	Val    int64
	Lin    bool  // linearizable read-index read (reads only)
	T0     int64 // client send stamp (wall ns); echoed on the reply, 0 when untraced
}

// Kind implements model.Payload.
func (RequestPayload) Kind() string { return "SREQ" }

// String implements model.Payload.
func (r RequestPayload) String() string {
	return fmt.Sprintf("SREQ(c%d#%d op%d)", r.Client, r.Seq, r.Op)
}

// ReplyPayload is the client-protocol response frame.
type ReplyPayload struct {
	Client uint32
	Seq    uint64
	Status byte
	Val    int64
	T0     int64 // request's send stamp echoed back, so the client can match without state
}

// Kind implements model.Payload.
func (ReplyPayload) Kind() string { return "SREP" }

// String implements model.Payload.
func (r ReplyPayload) String() string {
	return fmt.Sprintf("SREP(c%d#%d s%d)", r.Client, r.Seq, r.Status)
}

// NoOpEntry reports whether a decided log value is the consensus no-op.
func NoOpEntry(v int) bool { return v == rsm.NoOp }
