package serve_test

import (
	"math/rand"
	"testing"

	"nuconsensus/internal/model"
	"nuconsensus/internal/obs"
	"nuconsensus/internal/rsm"
	"nuconsensus/internal/serve"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/substrate"
)

// runCluster drives a serving cluster to its target on the sim substrate
// and returns it alongside whether every correct replica got there.
func runCluster(t *testing.T, cfg serve.Config, crashes map[model.ProcessID]model.Time, stabilize model.Time, seed int64) (*serve.Cluster, bool) {
	t.Helper()
	pattern := model.PatternFromCrashes(cfg.N, crashes)
	cfg.Correct = pattern.Correct()
	cl := serve.NewCluster(cfg)
	var hist model.History
	if cfg.Owned {
		hist = rsm.PairForLog(pattern, stabilize, seed)
	} else {
		sampler := rsm.SamplerForLog(pattern, stabilize, seed)
		cl.Log().WithSampler(sampler)
		hist = sampler
	}
	res, err := sim.Run(sim.Exec{
		Automaton: cl.Automaton(),
		Pattern:   pattern,
		History:   hist,
		Scheduler: sim.NewFairScheduler(seed, 0.8, 3),
		MaxSteps:  400000,
		StopWhen:  substrate.AllCorrectDecided(pattern),
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl, res.Stopped
}

// countWorkload sums the commands in a generated workload.
func countWorkload(wl [][]serve.Batch) int {
	n := 0
	for _, bs := range wl {
		for _, b := range bs {
			n += len(b.Cmds)
		}
	}
	return n
}

// TestServeExactlyOnce: a generated workload lands exactly once on every
// correct replica — equal command counts, equal machine checksums — even
// with a crash and slot pipelining in play.
func TestServeExactlyOnce(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		wl := serve.Workload{Commands: 48, Batch: 4, Clients: 6, Keys: 32, Zipf: 1.3, QueueFrac: 0.25}.Gen(rng, 4)
		total := countWorkload(wl)
		cfg := serve.Config{
			N: 4, Slots: 30, Pipeline: 2,
			Workload: wl, Target: total, Retain: true,
		}
		crashes := map[model.ProcessID]model.Time{3: 70}
		cl, done := runCluster(t, cfg, crashes, 80, seed)
		if !done {
			t.Fatalf("seed=%d: cluster never reached target", seed)
		}
		pattern := model.PatternFromCrashes(4, crashes)
		var refSum uint64
		var refSet bool
		pattern.Correct().ForEach(func(p model.ProcessID) {
			st := cl.Applier(p).StatsOf()
			if st.Commands != int64(total) {
				t.Fatalf("seed=%d: p%d applied %d distinct commands, want %d", seed, p, st.Commands, total)
			}
			sum := cl.Applier(p).Checksum()
			if !refSet {
				refSum, refSet = sum, true
			} else if sum != refSum {
				t.Fatalf("seed=%d: p%d machine checksum %x != %x", seed, p, sum, refSum)
			}
		})
	}
}

// TestDuplicateSuppression: the same (client, seq) command submitted in
// two different batches through two different origin replicas — the
// reconnect-and-retry shape — applies exactly once, and the duplicate is
// counted as suppressed.
func TestDuplicateSuppression(t *testing.T) {
	dup := serve.Command{Client: 9, Seq: 1, Op: serve.OpQPush, Key: 5, Val: 42}
	wl := [][]serve.Batch{
		{{Cmds: []serve.Command{dup, {Client: 9, Seq: 2, Op: serve.OpQPush, Key: 5, Val: 43}}}},
		{{Cmds: []serve.Command{dup}}}, // the retry via another node
		nil,
	}
	// No target: run to log-full so the retry batch is guaranteed to have
	// been decided (a command-count target could be met before it lands).
	cfg := serve.Config{N: 3, Slots: 8, Workload: wl, Retain: true}
	cl, done := runCluster(t, cfg, nil, 60, 7)
	if !done {
		t.Fatal("cluster never filled its log")
	}
	for p := model.ProcessID(0); p < 3; p++ {
		st := cl.Applier(p).StatsOf()
		if st.Commands != 2 {
			t.Fatalf("p%d applied %d distinct commands, want 2", p, st.Commands)
		}
		if st.Dups < 1 {
			t.Fatalf("p%d suppressed %d duplicates, want >= 1", p, st.Dups)
		}
	}
}

// TestReadIndexUnderCrash: with the initial leader candidate crashed, a
// correct replica's read-index read still returns the committed value, and
// the read index never exceeds what the applier has observed decided.
func TestReadIndexUnderCrash(t *testing.T) {
	cmds := []serve.Command{
		{Client: 1, Seq: 1, Op: serve.OpPut, Key: 11, Val: 100},
		{Client: 1, Seq: 2, Op: serve.OpPut, Key: 11, Val: 200},
		{Client: 2, Seq: 1, Op: serve.OpPut, Key: 12, Val: 300},
	}
	wl := [][]serve.Batch{nil, {{Cmds: cmds[:2]}}, {{Cmds: cmds[2:]}}}
	// Process 0 — the stable-leader candidate every Ω history favors — is
	// crashed early, so decisions must come from the survivors.
	crashes := map[model.ProcessID]model.Time{0: 20}
	cfg := serve.Config{N: 3, Slots: 8, Workload: wl, Target: 3, Retain: true}
	cl, done := runCluster(t, cfg, crashes, 80, 11)
	if !done {
		t.Fatal("cluster never reached target")
	}
	for p := model.ProcessID(1); p < 3; p++ {
		ap := cl.Applier(p)
		if v, ok := ap.GetLin(11); !ok || v != 200 {
			t.Fatalf("p%d lin-read key 11 = (%d,%v), want (200,true)", p, v, ok)
		}
		if v, ok := ap.Get(12); !ok || v != 300 {
			t.Fatalf("p%d eventual-read key 12 = (%d,%v), want (300,true)", p, v, ok)
		}
		st := ap.StatsOf()
		if ap.ReadIndex() != st.Frontier {
			t.Fatalf("p%d read index %d != frontier %d", p, ap.ReadIndex(), st.Frontier)
		}
		if st.Applied > st.Frontier {
			t.Fatalf("p%d applied %d beyond frontier %d", p, st.Applied, st.Frontier)
		}
	}
}

// TestPipelinedOrderingAdversarial: table-driven pipelined runs under
// short-stabilization (adversarial) FD histories — decided prefixes agree
// across correct replicas and commands never apply twice.
func TestPipelinedOrderingAdversarial(t *testing.T) {
	cases := []struct {
		name      string
		depth     int
		stabilize model.Time
		crashes   map[model.ProcessID]model.Time
	}{
		{"depth2-noisy", 2, 30, nil},
		{"depth4-noisy", 4, 30, map[model.ProcessID]model.Time{4: 50}},
		{"depth4-calm", 4, 100, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				rng := rand.New(rand.NewSource(seed * 101))
				wl := serve.Workload{Commands: 30, Batch: 3, Clients: 5, Keys: 16, Zipf: 1.2}.Gen(rng, 5)
				total := countWorkload(wl)
				cfg := serve.Config{N: 5, Slots: 24, Pipeline: tc.depth, Workload: wl, Target: total, Retain: true}
				cl, done := runCluster(t, cfg, tc.crashes, tc.stabilize, seed)
				if !done {
					t.Fatalf("seed=%d: cluster never reached target", seed)
				}
				pattern := model.PatternFromCrashes(5, tc.crashes)
				var ref []int
				pattern.Correct().ForEach(func(p model.ProcessID) {
					got := cl.Applier(p).Decided()
					if ref == nil {
						ref = got
						return
					}
					short := len(ref)
					if len(got) < short {
						short = len(got)
					}
					for i := 0; i < short; i++ {
						if got[i] != ref[i] {
							t.Fatalf("seed=%d: decided prefixes diverge at slot %d", seed, i)
						}
					}
				})
				pattern.Correct().ForEach(func(p model.ProcessID) {
					if got := cl.Applier(p).StatsOf().Commands; got != int64(total) {
						t.Fatalf("seed=%d: p%d applied %d commands, want %d", seed, p, got, total)
					}
				})
			}
		})
	}
}

// TestApplierStallsOnMissingBody: decided entries wait, in order, for
// their batch body; the body's arrival unstalls them and wakes read-index
// waiters.
func TestApplierStallsOnMissingBody(t *testing.T) {
	ap := serve.NewApplier(0, obs.NewRegistry(), true)
	id := serve.BatchID(1, 0)
	ap.OnEntry(0, 0, id) // decided before the body gossip arrived
	if st := ap.StatsOf(); st.Applied != 0 || st.Frontier != 1 || st.Stalled != 1 {
		t.Fatalf("pre-body stats = %+v", st)
	}
	// A linearizable read taken now must wait for slot 0 — verify the
	// index snapshot, then deliver the body and check it unstalled.
	if idx := ap.ReadIndex(); idx != 1 {
		t.Fatalf("read index = %d, want 1", idx)
	}
	done := make(chan int64, 1)
	ap.RegisterWaiter(7, 1, func(_ byte, v int64) { done <- v })
	ap.PutBody(id, []serve.Command{{Client: 7, Seq: 1, Op: serve.OpPut, Key: 3, Val: 55}})
	if st := ap.StatsOf(); st.Applied != 1 || st.Stalled != 0 || st.Commands != 1 {
		t.Fatalf("post-body stats = %+v", st)
	}
	ap.WaitApplied(1)
	if v := <-done; v != 55 {
		t.Fatalf("waiter got %d, want 55", v)
	}
	if v, ok := ap.GetLin(3); !ok || v != 55 {
		t.Fatalf("lin read = (%d,%v), want (55,true)", v, ok)
	}
}

// TestDupBatchAfterCompaction: a batch can decide a second time after the
// retirement floor compacted its body away (a pipelined re-proposal in
// flight at compaction time). The applier must recognize the duplicate by
// its batchAt entry and skip it — not stall forever on the missing body.
func TestDupBatchAfterCompaction(t *testing.T) {
	ap := serve.NewApplier(0, obs.NewRegistry(), false)
	id := serve.BatchID(2, 0)
	ap.PutBody(id, []serve.Command{{Client: 1, Seq: 1, Op: serve.OpPut, Key: 5, Val: 9}})
	ap.OnEntry(0, 0, id)
	ap.Compact(1) // floor above slot 0: body dropped, bookkeeping kept
	ap.OnEntry(0, 1, id)
	st := ap.StatsOf()
	if st.Applied != 2 || st.Stalled != 0 {
		t.Fatalf("post-dup stats = %+v, want applied=2 stalled=0", st)
	}
	if st.Commands != 1 {
		t.Fatalf("commands = %d, want exactly-once 1", st.Commands)
	}
	if v, ok := ap.GetLin(5); !ok || v != 9 {
		t.Fatalf("lin read = (%d,%v), want (9,true)", v, ok)
	}
}

// TestSessionsOutOfOrder: the applied set is exact — a later seq landing
// first must not suppress the earlier seq when it finally arrives (the
// pipelined-reorder hazard), and the contiguous frontier catches up.
func TestSessionsOutOfOrder(t *testing.T) {
	s := serve.NewSessions()
	s.Record(1, 3, 0, serve.StatusOK, 30)
	if s.Applied(1, 1) || s.Applied(1, 2) {
		t.Fatal("high-water suppression: seqs 1,2 wrongly marked applied")
	}
	if !s.Applied(1, 3) {
		t.Fatal("seq 3 not marked applied")
	}
	s.Record(1, 1, 1, serve.StatusOK, 10)
	s.Record(1, 2, 1, serve.StatusOK, 20)
	for seq := uint64(1); seq <= 3; seq++ {
		if !s.Applied(1, seq) {
			t.Fatalf("seq %d not applied after catch-up", seq)
		}
		r, hit := s.Reply(1, seq)
		if !hit {
			t.Fatalf("seq %d reply not cached", seq)
		}
		_ = r
	}
}

// TestSessionsCompact: compaction drops cached replies of pre-floor
// sessions but never the exactly-once bookkeeping.
func TestSessionsCompact(t *testing.T) {
	s := serve.NewSessions()
	s.Record(1, 1, 2, serve.StatusOK, 10)
	s.Record(2, 1, 9, serve.StatusOK, 20)
	if n := s.Compact(5); n != 1 {
		t.Fatalf("compacted %d sessions, want 1", n)
	}
	if !s.Applied(1, 1) {
		t.Fatal("compaction dropped applied-seq bookkeeping")
	}
	if _, hit := s.Reply(1, 1); hit {
		t.Fatal("compaction left the cached reply")
	}
	if _, hit := s.Reply(2, 1); !hit {
		t.Fatal("compaction dropped a live session's reply")
	}
}

// TestMachineChecksum: order-of-insertion must not affect the digest, and
// any state difference must.
func TestMachineChecksum(t *testing.T) {
	a, b := serve.NewMachine(), serve.NewMachine()
	a.Apply(serve.Command{Op: serve.OpPut, Key: 1, Val: 10})
	a.Apply(serve.Command{Op: serve.OpPut, Key: 2, Val: 20})
	b.Apply(serve.Command{Op: serve.OpPut, Key: 2, Val: 20})
	b.Apply(serve.Command{Op: serve.OpPut, Key: 1, Val: 10})
	if a.Checksum() != b.Checksum() {
		t.Fatal("insertion order changed the checksum")
	}
	b.Apply(serve.Command{Op: serve.OpQPush, Key: 1, Val: 1})
	if a.Checksum() == b.Checksum() {
		t.Fatal("queue state not covered by the checksum")
	}
}

// TestMachineOps covers the op surface incl. miss paths.
func TestMachineOps(t *testing.T) {
	m := serve.NewMachine()
	if _, st := m.Apply(serve.Command{Op: serve.OpDel, Key: 1}); st != serve.StatusMissing {
		t.Fatal("deleting an absent key must report missing")
	}
	if _, st := m.Apply(serve.Command{Op: serve.OpQPop, Key: 1}); st != serve.StatusMissing {
		t.Fatal("popping an empty queue must report missing")
	}
	m.Apply(serve.Command{Op: serve.OpQPush, Key: 1, Val: 5})
	m.Apply(serve.Command{Op: serve.OpQPush, Key: 1, Val: 6})
	if v, st := m.Apply(serve.Command{Op: serve.OpQPop, Key: 1}); st != serve.StatusOK || v != 5 {
		t.Fatalf("pop = (%d,%d), want FIFO 5", v, st)
	}
	m.Apply(serve.Command{Op: serve.OpPut, Key: 2, Val: 9})
	if v, st := m.Apply(serve.Command{Op: serve.OpGet, Key: 2}); st != serve.StatusOK || v != 9 {
		t.Fatalf("logged get = (%d,%d)", v, st)
	}
	if v, st := m.Apply(serve.Command{Op: serve.OpDel, Key: 2}); st != serve.StatusOK || v != 9 {
		t.Fatalf("del = (%d,%d)", v, st)
	}
}

// TestBatchIDPacking: IDs are positive, collision-free across origins and
// indexes, and recover their origin.
func TestBatchIDPacking(t *testing.T) {
	seen := map[int]bool{}
	for p := model.ProcessID(0); p < 8; p++ {
		for i := 0; i < 100; i++ {
			id := serve.BatchID(p, i)
			if id <= 0 {
				t.Fatalf("BatchID(%d,%d) = %d, not positive", p, i, id)
			}
			if seen[id] {
				t.Fatalf("BatchID(%d,%d) = %d collides", p, i, id)
			}
			seen[id] = true
			if serve.BatchOrigin(id) != p {
				t.Fatalf("BatchOrigin(%d) = %d, want %d", id, serve.BatchOrigin(id), p)
			}
		}
	}
}

// TestIngressDrain: pushed groups surface through the replica into the
// log even when the cluster starts with no initial workload.
func TestIngressDrain(t *testing.T) {
	cfg := serve.Config{N: 3, Slots: 6, Target: 2, Retain: true}
	pattern := model.PatternFromCrashes(3, nil)
	cl := serve.NewCluster(cfg)
	sampler := rsm.SamplerForLog(pattern, 60, 5)
	cl.Log().WithSampler(sampler)
	cl.Ingress(0).Push([]serve.Command{
		{Client: 1, Seq: 1, Op: serve.OpPut, Key: 1, Val: 7},
		{Client: 1, Seq: 2, Op: serve.OpPut, Key: 2, Val: 8},
	})
	res, err := sim.Run(sim.Exec{
		Automaton: cl.Automaton(),
		Pattern:   pattern,
		History:   sampler,
		Scheduler: sim.NewFairScheduler(5, 0.8, 3),
		MaxSteps:  200000,
		StopWhen:  substrate.AllCorrectDecided(pattern),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("ingress batch never applied everywhere")
	}
	for p := model.ProcessID(0); p < 3; p++ {
		if v, ok := cl.Applier(p).Get(2); !ok || v != 8 {
			t.Fatalf("p%d key 2 = (%d,%v), want (8,true)", p, v, ok)
		}
	}
}
