package serve

import (
	"fmt"

	"nuconsensus/internal/model"
	"nuconsensus/internal/obs"
	"nuconsensus/internal/rsm"
)

// Config assembles a serving cluster.
type Config struct {
	N        int       // processes
	Slots    int       // log capacity (consensus instances)
	Pipeline int       // slot instances in flight (<=1: sequential)
	Owned    bool      // per-instance history copies instead of the shared store
	Workload [][]Batch // initial batches per process (IDs assigned here)
	Target   int       // total distinct commands; reaching it is the stop signal (0: log-full)
	// Correct is the set of processes that never crash (pattern.Correct()).
	// The target decision fires only when every correct replica has applied
	// Target commands: a replica deciding on its own progress would be
	// halted by the cluster drivers while laggards still need its messages
	// (and possibly its Ω leadership). Empty means all N are correct.
	Correct  model.ProcessSet
	Registry *obs.Registry
	Retain   bool // appliers keep decided values (tests, agreement checks)
	// Tracer emits request span events from the deterministic core: inject
	// on ingress drain, decide per slot, apply per command. nil: off. The
	// clock lives inside the Tracer (hosts inject obs.Wall; sims keep the
	// Logical default), so this package never touches wall time itself.
	Tracer *obs.Tracer
}

// Cluster wires the serving stack for one run: a Replica automaton over a
// (usually shared-store) rsm log, one Applier and one Ingress per process.
type Cluster struct {
	rep      *Replica
	appliers []*Applier
	ingress  []*Ingress
	log      *rsm.Log
}

// NewCluster builds the cluster. The workload's batch IDs are minted here
// — one authority — and each body is pre-registered with its origin's
// applier only; the other replicas learn it from BATCH gossip, so body
// dissemination is measured traffic, not construction-time cheating.
func NewCluster(cfg Config) *Cluster {
	if cfg.N < 2 {
		panic("serve: cluster needs at least 2 processes")
	}
	if cfg.Pipeline < 1 {
		cfg.Pipeline = 1
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	initial := make([][]Batch, cfg.N)
	cmds := make([][]int, cfg.N)
	for p := 0; p < cfg.N; p++ {
		if p < len(cfg.Workload) {
			for i, b := range cfg.Workload[p] {
				b.ID = BatchID(model.ProcessID(p), i)
				initial[p] = append(initial[p], b)
				cmds[p] = append(cmds[p], b.ID)
			}
		}
	}
	c := &Cluster{
		appliers: make([]*Applier, cfg.N),
		ingress:  make([]*Ingress, cfg.N),
	}
	for p := 0; p < cfg.N; p++ {
		c.appliers[p] = NewApplier(model.ProcessID(p), reg, cfg.Retain).WithTracer(cfg.Tracer)
		c.ingress[p] = &Ingress{}
		for _, b := range initial[p] {
			c.appliers[p].PutBody(b.ID, b.Cmds)
		}
	}
	if cfg.Owned {
		c.log = rsm.NewLog(cmds, cfg.Slots)
	} else {
		c.log = rsm.NewSharedLog(cmds, cfg.Slots)
	}
	c.log = c.log.WithEntrySink(sinkDispatch{appliers: c.appliers}).WithPipeline(cfg.Pipeline)
	correct := cfg.Correct
	if correct.IsEmpty() {
		correct = model.FullSet(cfg.N)
	}
	c.rep = &Replica{
		n:        cfg.N,
		target:   cfg.Target,
		correct:  correct,
		log:      c.log,
		appliers: c.appliers,
		ingress:  c.ingress,
		initial:  initial,
		tracer:   cfg.Tracer,
	}
	return c
}

// Automaton returns the cluster's replica automaton.
func (c *Cluster) Automaton() *Replica { return c.rep }

// Applier returns process p's applier.
func (c *Cluster) Applier(p model.ProcessID) *Applier { return c.appliers[int(p)] }

// Ingress returns process p's ingress queue.
func (c *Cluster) Ingress(p model.ProcessID) *Ingress { return c.ingress[int(p)] }

// Log returns the underlying rsm automaton (to attach a shared sampler).
func (c *Cluster) Log() *rsm.Log { return c.log }

// sinkDispatch routes rsm's decided entries to the owning applier.
type sinkDispatch struct{ appliers []*Applier }

func (s sinkDispatch) OnEntry(p model.ProcessID, slot, v int) {
	s.appliers[int(p)].OnEntry(p, slot, v)
}

// OnEntryRound implements rsm.RoundSink, forwarding the per-slot round
// observation to the owning applier (which emits the decide span).
func (s sinkDispatch) OnEntryRound(p model.ProcessID, slot, v, round int) {
	s.appliers[int(p)].OnEntryRound(p, slot, v, round)
}

// Replica is the serving automaton: rsm.Log plus batch-body gossip,
// ingress draining and applier advancement. Like the sink and sampler it
// relies on per-process external resources, so it runs on linear
// executions only (sim.Run and the concurrent substrates; never explore).
type Replica struct {
	n        int
	target   int
	correct  model.ProcessSet
	log      *rsm.Log
	appliers []*Applier
	ingress  []*Ingress
	initial  [][]Batch
	tracer   *obs.Tracer
}

// Name implements model.Automaton.
func (r *Replica) Name() string { return "serve∘" + r.log.Name() }

// N implements model.Automaton.
func (r *Replica) N() int { return r.n }

// replicaState wraps the log state with the serving layer's bookkeeping.
type replicaState struct {
	r         *Replica
	p         model.ProcessID
	inner     model.State
	announced bool // initial batch bodies gossiped
	nextBatch int  // per-origin mint counter for ingress batches
	lastFloor int  // retirement floor already compacted to
}

// CloneState implements model.State.
func (s *replicaState) CloneState() model.State {
	c := *s
	c.inner = s.inner.CloneState()
	return &c
}

// Decision implements model.Decider: with a target, the replica is done
// once EVERY correct replica's applier has applied that many distinct
// commands — the cluster-wide minimum, readable here because the appliers
// are shared per-run resources. Deciding on local progress alone would be
// wrong: the concurrent cluster drivers halt a decided process and close
// its links, and laggards may still need its proposals (or its Ω
// leadership) to finish the remaining slots. Without a target the replica
// follows the log's own log-full decision.
func (s *replicaState) Decision() (int, bool) {
	if s.r.target > 0 {
		low := int64(1<<62 - 1)
		s.r.correct.ForEach(func(p model.ProcessID) {
			if c := s.r.appliers[int(p)].Commands(); c < low {
				low = c
			}
		})
		if low >= int64(s.r.target) {
			return int(low), true
		}
		return 0, false
	}
	return model.DecisionOf(s.inner)
}

// InitState implements model.Automaton.
func (r *Replica) InitState(p model.ProcessID) model.State {
	return &replicaState{
		r:         r,
		p:         p,
		inner:     r.log.InitState(p),
		nextBatch: len(r.initial[int(p)]),
	}
}

// Step implements model.Automaton.
func (r *Replica) Step(p model.ProcessID, s model.State, m *model.Message, d model.FDValue) (model.State, []model.Send) {
	st := s.CloneState().(*replicaState)
	var out []model.Send

	// Serving-layer payloads are consumed here; everything else belongs to
	// the log (which panics on kinds it does not know — keep it that way).
	fwd := m
	if m != nil {
		if bp, ok := m.Payload.(BatchPayload); ok {
			r.appliers[int(p)].PutBody(bp.ID, bp.Cmds)
			fwd = nil
		}
	}

	// Gossip the initial batch bodies once, alongside the log's own
	// command announce.
	if !st.announced {
		st.announced = true
		for _, b := range r.initial[int(p)] {
			out = append(out, model.Broadcast(model.FullSet(r.n).Remove(p), BatchPayload{ID: b.ID, Cmds: b.Cmds})...)
			r.injectSpans(p, b.ID, b.Cmds)
		}
	}

	// Drain at most one ingress batch per step: mint its ID, register and
	// gossip the body, and inject the ID into the log's pending queue.
	if in := r.ingress[int(p)]; in != nil {
		if cmds, ok := in.Poll(); ok {
			id := BatchID(p, st.nextBatch)
			st.nextBatch++
			r.appliers[int(p)].PutBody(id, cmds)
			out = append(out, model.Broadcast(model.FullSet(r.n).Remove(p), BatchPayload{ID: id, Cmds: cmds})...)
			var sends []model.Send
			st.inner, sends = r.log.Inject(st.inner, id)
			out = append(out, sends...)
			r.injectSpans(p, id, cmds)
		}
	}

	ns, sends := r.log.Step(p, st.inner, fwd, d)
	st.inner = ns
	out = append(out, sends...)

	// Compact the applier when the retirement floor advances.
	if floor := rsm.FloorOf(ns); floor > st.lastFloor {
		st.lastFloor = floor
		r.appliers[int(p)].Compact(floor)
	}
	return st, out
}

// injectSpans emits one inject span per member command the moment its
// batch ID is minted into the log — the join point that later lets the
// batch-level decide span fan out to its members.
func (r *Replica) injectSpans(p model.ProcessID, id int, cmds []Command) {
	if r.tracer == nil {
		return
	}
	for _, c := range cmds {
		r.tracer.Span(obs.SpanEvent{
			Stage: obs.StageInject, P: int(p), Client: c.Client, Seq: c.Seq,
			Batch: id, Slot: -1, N: len(cmds),
		})
	}
}

// DebugState renders a replica state for diagnostics.
func DebugState(s model.State) string {
	st, ok := s.(*replicaState)
	if !ok {
		return fmt.Sprintf("%T", s)
	}
	stats := st.r.appliers[int(st.p)].StatsOf()
	return fmt.Sprintf("serve{applied=%d/%d cmds=%d dups=%d stalled=%d} %s",
		stats.Applied, stats.Frontier, stats.Commands, stats.Dups, stats.Stalled, rsm.DebugState(st.inner))
}
