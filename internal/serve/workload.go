package serve

import (
	"fmt"
	"math/rand"
)

// Workload parameterizes a generated client command stream — the same
// knobs cmd/nucload exposes on the wire and E18 drives in-process.
type Workload struct {
	Commands  int     // total distinct commands
	Batch     int     // commands per batch (consensus value)
	Clients   int     // client sessions, ids 1..Clients
	Keys      uint64  // key-space size
	Zipf      float64 // Zipf s parameter; <=1 means uniform keys
	QueueFrac float64 // fraction of ops on queues (push/pop) vs kv (put/del)
	DelFrac   float64 // fraction of kv ops that are deletes
}

// Gen generates the per-process initial batches for a deterministic run:
// commands round-robin across client sessions with per-session contiguous
// seqs, keys drawn Zipf-skewed (the contention knob) from the seeded rng,
// batches round-robin across origin processes. Batch IDs are left zero;
// NewCluster mints them.
func (w Workload) Gen(rng *rand.Rand, n int) [][]Batch {
	if w.Commands <= 0 || n <= 0 {
		return nil
	}
	if w.Batch < 1 {
		w.Batch = 1
	}
	if w.Clients < 1 {
		w.Clients = 1
	}
	if w.Keys < 1 {
		w.Keys = 1
	}
	var zipf *rand.Zipf
	if w.Zipf > 1 {
		zipf = rand.NewZipf(rng, w.Zipf, 1, w.Keys-1)
	}
	key := func() uint64 {
		if zipf != nil {
			return zipf.Uint64()
		}
		return rng.Uint64() % w.Keys
	}
	seqs := make([]uint64, w.Clients+1)
	out := make([][]Batch, n)
	var cur []Command
	batches := 0
	flush := func() {
		if len(cur) == 0 {
			return
		}
		p := batches % n
		out[p] = append(out[p], Batch{Cmds: cur})
		batches++
		cur = nil
	}
	for i := 0; i < w.Commands; i++ {
		client := uint32(i%w.Clients) + 1
		seqs[client]++
		c := Command{Client: client, Seq: seqs[client], Key: key(), Val: int64(rng.Int31())}
		switch {
		case rng.Float64() < w.QueueFrac:
			if rng.Intn(2) == 0 {
				c.Op = OpQPush
			} else {
				c.Op = OpQPop
			}
		case rng.Float64() < w.DelFrac:
			c.Op = OpDel
		default:
			c.Op = OpPut
		}
		cur = append(cur, c)
		if len(cur) >= w.Batch {
			flush()
		}
	}
	flush()
	return out
}

// Batches returns how many batches the workload generates.
func (w Workload) Batches() int {
	if w.Commands <= 0 {
		return 0
	}
	b := w.Batch
	if b < 1 {
		b = 1
	}
	return (w.Commands + b - 1) / b
}

// String renders the workload shape for run labels.
func (w Workload) String() string {
	return fmt.Sprintf("cmds=%d batch=%d clients=%d keys=%d zipf=%.2f", w.Commands, w.Batch, w.Clients, w.Keys, w.Zipf)
}
