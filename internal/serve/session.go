package serve

// replyWindow bounds how many recent cached replies a session retains for
// retried commands; older duplicates get StatusRetired instead of the
// original result.
const replyWindow = 256

// session is one client's exactly-once bookkeeping. The applied set is
// exact, not a high-water mark: with slot pipelining a client's later
// batch can commit in an earlier slot than a retried earlier batch, so
// "seq <= max seen" would wrongly suppress first arrivals. low is the
// contiguous frontier (every seq <= low applied); above holds the applied
// seqs beyond it, bounded by the pipelining window.
type session struct {
	low      uint64
	above    map[uint64]struct{}
	replies  map[uint64]cachedReply
	lastSlot int // slot of the latest applied command, for compaction
}

type cachedReply struct {
	status byte
	val    int64
}

// Sessions is the per-replica dedup table. Like Machine it is driven only
// under the Applier's lock.
type Sessions struct {
	m map[uint32]*session
}

// NewSessions returns an empty dedup table.
func NewSessions() *Sessions { return &Sessions{m: make(map[uint32]*session)} }

// Len returns the number of live sessions.
func (s *Sessions) Len() int { return len(s.m) }

// CachedReplies counts the cached replies across all live sessions — the
// heavy part of the table, what Compact reclaims.
func (s *Sessions) CachedReplies() int {
	n := 0
	for _, sess := range s.m {
		n += len(sess.replies)
	}
	return n
}

// Applied reports whether (client, seq) has already been applied.
func (s *Sessions) Applied(client uint32, seq uint64) bool {
	sess, ok := s.m[client]
	if !ok {
		return false
	}
	if seq <= sess.low {
		return true
	}
	_, done := sess.above[seq]
	return done
}

// Reply returns the cached result of an applied command, distinguishing a
// cache hit from one that aged out of the reply window.
func (s *Sessions) Reply(client uint32, seq uint64) (cachedReply, bool) {
	sess, ok := s.m[client]
	if !ok {
		return cachedReply{}, false
	}
	r, hit := sess.replies[seq]
	return r, hit
}

// Record marks (client, seq) applied at slot with the given result,
// advancing the contiguous frontier and pruning replies that fell out of
// the window.
func (s *Sessions) Record(client uint32, seq uint64, slot int, status byte, val int64) {
	sess, ok := s.m[client]
	if !ok {
		sess = &session{above: make(map[uint64]struct{}), replies: make(map[uint64]cachedReply)}
		s.m[client] = sess
	}
	sess.above[seq] = struct{}{}
	for {
		if _, ok := sess.above[sess.low+1]; !ok {
			break
		}
		delete(sess.above, sess.low+1)
		sess.low++
	}
	sess.replies[seq] = cachedReply{status: status, val: val}
	if seq > replyWindow {
		// Deleting by probe keeps this O(1) amortized: each Record removes
		// at most as many entries as it inserted.
		delete(sess.replies, seq-replyWindow)
	}
	if slot > sess.lastSlot {
		sess.lastSlot = slot
	}
}

// Compact drops the cached replies — the heavy part of the table — of
// every session whose last activity is below the retirement floor (every
// replica has appended those slots; see rsm.FloorOf). The applied-seq
// bookkeeping survives, so exactly-once holds even for arbitrarily late
// duplicates; only the cached *result* of such a duplicate is gone
// (StatusRetired). Returns how many sessions were compacted.
func (s *Sessions) Compact(floor int) int {
	n := 0
	for _, sess := range s.m {
		if sess.lastSlot < floor && len(sess.replies) > 0 {
			sess.replies = make(map[uint64]cachedReply)
			n++
		}
	}
	return n
}
