package serve_test

import (
	"bytes"
	"testing"

	"nuconsensus/internal/model"
	"nuconsensus/internal/obs"
	"nuconsensus/internal/rsm"
	"nuconsensus/internal/serve"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/substrate"
)

// runTraced drives one ingress-fed cluster run with a Logical-clock tracer
// attached and returns the raw span stream.
func runTraced(t *testing.T, seed int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	tracer := obs.NewTracer(&buf, nil, nil)
	cfg := serve.Config{N: 3, Slots: 6, Target: 2, Retain: true, Tracer: tracer}
	pattern := model.PatternFromCrashes(3, nil)
	cl := serve.NewCluster(cfg)
	sampler := rsm.SamplerForLog(pattern, 60, seed)
	cl.Log().WithSampler(sampler)
	cl.Ingress(0).Push([]serve.Command{
		{Client: 1, Seq: 1, Op: serve.OpPut, Key: 1, Val: 7},
		{Client: 1, Seq: 2, Op: serve.OpPut, Key: 2, Val: 8},
	})
	res, err := sim.Run(sim.Exec{
		Automaton: cl.Automaton(),
		Pattern:   pattern,
		History:   sampler,
		Scheduler: sim.NewFairScheduler(seed, 0.8, 3),
		MaxSteps:  200000,
		StopWhen:  substrate.AllCorrectDecided(pattern),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("cluster never reached target")
	}
	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceDeterministicAndComplete: under the Logical clock the span
// stream is a pure function of the execution — two identical sim runs
// produce byte-identical streams with no wall stamps — and every applied
// command has a complete inject→decide→apply chain on every replica,
// joined through the batch ID.
func TestTraceDeterministicAndComplete(t *testing.T) {
	a := runTraced(t, 5)
	b := runTraced(t, 5)
	if !bytes.Equal(a, b) {
		t.Error("span streams differ between identical sim runs")
	}
	if bytes.Contains(a, []byte(`"w":`)) {
		t.Error("Logical-clock run leaked wall stamps into spans")
	}

	evs, err := obs.ReadSpans(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	// Per process: the batch each traced command injected under, and the
	// slots that decided / applied each batch.
	type key struct {
		p   int
		c   uint32
		seq uint64
	}
	injected := map[key]int{}         // command → batch
	decided := map[int]map[int]bool{} // p → batch decided
	applied := map[key]int{}          // command → batch applied under
	for _, ev := range evs {
		switch ev.Stage {
		case obs.StageInject:
			injected[key{ev.P, ev.Client, ev.Seq}] = ev.Batch
		case obs.StageDecide:
			if decided[ev.P] == nil {
				decided[ev.P] = map[int]bool{}
			}
			decided[ev.P][ev.Batch] = true
			if ev.Slot < 0 {
				t.Errorf("decide span without a slot: %+v", ev)
			}
			if ev.N < 1 {
				t.Errorf("decide span with round %d, want >= 1: %+v", ev.N, ev)
			}
		case obs.StageApply:
			applied[key{ev.P, ev.Client, ev.Seq}] = ev.Batch
		}
	}
	for p := 0; p < 3; p++ {
		for seq := uint64(1); seq <= 2; seq++ {
			k := key{p, 1, seq}
			batch, ok := applied[k]
			if !ok {
				t.Fatalf("p%d: no apply span for (c1, seq%d)", p, seq)
			}
			if !decided[p][batch] {
				t.Errorf("p%d: batch %d applied without a decide span", p, batch)
			}
			// The injecting replica (origin 0) also recorded the same batch.
			if seq == 1 || seq == 2 {
				if got, ok := injected[key{0, 1, seq}]; !ok || got != batch {
					t.Errorf("origin inject batch %d (ok=%v) != applied batch %d", got, ok, batch)
				}
			}
		}
	}
}
