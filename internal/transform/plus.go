package transform

import (
	"fmt"

	"nuconsensus/internal/dag"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
)

// SigmaNuPlusTransformer is algorithm T_{Σν→Σν+} (Fig. 3). Each process
// runs A_DAG sampling Σν; to pick its next Σν+ quorum it looks for a path
// g in the fresh subgraph G_p|u_p with trusted(g) ⊆ participants(g) and
// p ∈ participants(g), and outputs participants(g).
//
// Path search: the canonical longest chain of G_p|u_p and all of its
// suffixes, longest first. The existence proof (Lemma 6.1) uses exactly a
// fresh all-correct chain segment, which the longest chain's suffixes
// eventually contain.
type SigmaNuPlusTransformer struct {
	n int
}

// NewSigmaNuPlusTransformer returns the transformer for an n-process system.
func NewSigmaNuPlusTransformer(n int) *SigmaNuPlusTransformer {
	if n < 2 || n > model.MaxProcesses {
		panic(fmt.Sprintf("transform: invalid system size %d", n))
	}
	return &SigmaNuPlusTransformer{n: n}
}

// Name implements model.Automaton.
func (a *SigmaNuPlusTransformer) Name() string { return "T_{Σν→Σν+}" }

// N implements model.Automaton.
func (a *SigmaNuPlusTransformer) N() int { return a.n }

// plusState is the local state of one T_{Σν→Σν+} process.
type plusState struct {
	b      dag.Builder
	u      dag.Key
	output model.ProcessSet // Σν+-output_p
}

// CloneState implements model.State.
func (s *plusState) CloneState() model.State {
	c := *s
	c.b = s.b.Clone()
	return &c
}

// EmulatedOutput implements model.FDOutput.
func (s *plusState) EmulatedOutput() model.FDValue {
	return fd.QuorumValue{Quorum: s.output}
}

// SampleGraph implements dag.GraphHolder.
func (s *plusState) SampleGraph() *dag.Graph { return s.b.G }

// InitState implements model.Automaton (Fig. 3 lines 1–4).
func (a *SigmaNuPlusTransformer) InitState(p model.ProcessID) model.State {
	return &plusState{
		b:      dag.NewBuilder(p),
		output: model.FullSet(a.n),
	}
}

// Step implements model.Automaton (Fig. 3 lines 5–17).
func (a *SigmaNuPlusTransformer) Step(p model.ProcessID, s model.State, m *model.Message, d model.FDValue) (model.State, []model.Send) {
	st := s.CloneState().(*plusState)
	idx, sends := st.b.DoStep(m, d, model.FullSet(a.n))
	v := st.b.G.Node(idx).Key()
	if st.b.K == 1 {
		st.u = v // line 13
	}
	// Lines 14–17: find a path g in G_p|u_p with
	// trusted(g) ⊆ participants(g) and p ∈ participants(g).
	ui := st.b.G.IndexOf(st.u)
	mask := st.b.G.Descendants(ui)
	path := st.b.G.Nodes(st.b.G.LongestPathFrom(ui, mask))
	if parts, ok := satisfyingSuffix(path, p); ok {
		st.output = parts // line 16
		st.u = v          // line 17
	}
	return st, sends
}

// satisfyingSuffix scans the suffixes of path, longest first, for one with
// trusted(g) ⊆ participants(g) and p ∈ participants(g); it returns that
// suffix's participants. Suffix properties are accumulated right-to-left so
// the scan is linear.
func satisfyingSuffix(path []dag.Node, p model.ProcessID) (model.ProcessSet, bool) {
	n := len(path)
	participants := make([]model.ProcessSet, n+1)
	trusted := make([]model.ProcessSet, n+1)
	for i := n - 1; i >= 0; i-- {
		q, ok := fd.QuorumOf(path[i].D)
		if !ok {
			panic(fmt.Sprintf("transform: T_{Σν→Σν+} sampled non-quorum value %v", path[i].D))
		}
		participants[i] = participants[i+1].Add(path[i].P)
		trusted[i] = trusted[i+1].Union(q)
	}
	for i := 0; i < n; i++ {
		if participants[i].Has(p) && trusted[i].SubsetOf(participants[i]) {
			return participants[i], true
		}
	}
	return 0, false
}
