package transform

import (
	"fmt"

	"nuconsensus/internal/fd"
	"nuconsensus/internal/hb"
	"nuconsensus/internal/model"
)

// OracleFree composes two from-scratch detector implementations with a
// consumer algorithm: the heartbeat Ω of internal/hb, the threshold Σν+ of
// Theorem 7.1's IF direction, and (typically) A_nuc. The result is a fully
// failure-detector-free nonuniform consensus algorithm for environments
// with a correct majority and eventual timeliness — the paper's theory
// folded back into a deployable protocol stack.
//
// Each atomic step advances all three components: the two emitters with
// this step's message if it is theirs (heartbeats → Ω, round messages →
// Σν+), and the consumer with the pair assembled from the emitters' output
// variables. Drive it with any history (fd.Null): it ignores the ambient
// failure detector entirely.
type OracleFree struct {
	omega    model.Automaton
	sigma    model.Automaton
	consumer model.Automaton
}

// NewOracleFree composes an Ω emitter, a quorum emitter and a consumer.
// Both emitters' states must implement model.FDOutput.
func NewOracleFree(omega, sigma, consumer model.Automaton) *OracleFree {
	if omega.N() != consumer.N() || sigma.N() != consumer.N() {
		panic(fmt.Sprintf("transform: component sizes differ (%d, %d, %d)",
			omega.N(), sigma.N(), consumer.N()))
	}
	return &OracleFree{omega: omega, sigma: sigma, consumer: consumer}
}

// Name implements model.Automaton.
func (a *OracleFree) Name() string {
	return fmt.Sprintf("%s+%s∘%s", a.omega.Name(), a.sigma.Name(), a.consumer.Name())
}

// N implements model.Automaton.
func (a *OracleFree) N() int { return a.consumer.N() }

// oracleFreeState bundles the three component states.
type oracleFreeState struct {
	os model.State
	ss model.State
	cs model.State
}

// CloneState implements model.State.
func (s *oracleFreeState) CloneState() model.State {
	return &oracleFreeState{
		os: s.os.CloneState(),
		ss: s.ss.CloneState(),
		cs: s.cs.CloneState(),
	}
}

// Decision implements model.Decider by delegating to the consumer.
func (s *oracleFreeState) Decision() (int, bool) { return model.DecisionOf(s.cs) }

// Proposal implements model.Proposer by delegating to the consumer.
func (s *oracleFreeState) Proposal() int {
	if pr, ok := s.cs.(model.Proposer); ok {
		return pr.Proposal()
	}
	return 0
}

// Round implements model.Rounder by delegating to the consumer.
func (s *oracleFreeState) Round() int {
	r, _ := model.RoundOf(s.cs)
	return r
}

// EmulatedOutput implements model.FDOutput: the assembled (Ω, Σν+) pair the
// consumer sees, so recorded outputs can be validated against both specs.
func (s *oracleFreeState) EmulatedOutput() model.FDValue {
	return fd.PairValue{
		First:  s.os.(model.FDOutput).EmulatedOutput(),
		Second: s.ss.(model.FDOutput).EmulatedOutput(),
	}
}

// InitState implements model.Automaton.
func (a *OracleFree) InitState(p model.ProcessID) model.State {
	return &oracleFreeState{
		os: a.omega.InitState(p),
		ss: a.sigma.InitState(p),
		cs: a.consumer.InitState(p),
	}
}

// Step implements model.Automaton.
func (a *OracleFree) Step(p model.ProcessID, s model.State, m *model.Message, _ model.FDValue) (model.State, []model.Send) {
	st := s.CloneState().(*oracleFreeState)

	var mo, ms, mc *model.Message
	if m != nil {
		switch m.Payload.(type) {
		case hb.HeartbeatPayload:
			mo = m
		case RoundPayload:
			ms = m
		default:
			mc = m
		}
	}

	os, oSends := a.omega.Step(p, st.os, mo, fd.NullValue{})
	st.os = os
	ss, sSends := a.sigma.Step(p, st.ss, ms, fd.NullValue{})
	st.ss = ss

	cs, cSends := a.consumer.Step(p, st.cs, mc, st.EmulatedOutput())
	st.cs = cs

	out := append(oSends, sSends...)
	return st, append(out, cSends...)
}
