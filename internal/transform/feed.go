package transform

import (
	"fmt"

	"nuconsensus/internal/model"
)

// Feed is the generic emitter→consumer composition: each atomic step first
// advances a failure-detector-emitting automaton (with the step's message
// if the emitter owns its payload type), then the consumer with the
// emitter's current output variable as its failure-detector value. It
// generalizes the pair-specific compositions (Composed, OracleFree) to any
// emitter/consumer combination — e.g. the heartbeat ◇P feeding the
// Chandra–Toueg algorithm for an oracle-free *uniform* consensus stack.
type Feed struct {
	emitter     model.Automaton // states must implement model.FDOutput
	consumer    model.Automaton
	emitterOwns func(model.Payload) bool
}

// NewFeed composes emitter and consumer; emitterOwns routes received
// messages (true → emitter, false → consumer).
func NewFeed(emitter, consumer model.Automaton, emitterOwns func(model.Payload) bool) *Feed {
	if emitter.N() != consumer.N() {
		panic(fmt.Sprintf("transform: component sizes differ (%d vs %d)", emitter.N(), consumer.N()))
	}
	return &Feed{emitter: emitter, consumer: consumer, emitterOwns: emitterOwns}
}

// Name implements model.Automaton.
func (a *Feed) Name() string {
	return fmt.Sprintf("%s▸%s", a.emitter.Name(), a.consumer.Name())
}

// N implements model.Automaton.
func (a *Feed) N() int { return a.consumer.N() }

// feedState pairs the two component states.
type feedState struct {
	es model.State
	cs model.State
}

// CloneState implements model.State.
func (s *feedState) CloneState() model.State {
	return &feedState{es: s.es.CloneState(), cs: s.cs.CloneState()}
}

// Decision implements model.Decider by delegating to the consumer.
func (s *feedState) Decision() (int, bool) { return model.DecisionOf(s.cs) }

// Proposal implements model.Proposer by delegating to the consumer.
func (s *feedState) Proposal() int {
	if pr, ok := s.cs.(model.Proposer); ok {
		return pr.Proposal()
	}
	return 0
}

// Round implements model.Rounder by delegating to the consumer.
func (s *feedState) Round() int {
	r, _ := model.RoundOf(s.cs)
	return r
}

// EmulatedOutput implements model.FDOutput: the value the consumer sees.
func (s *feedState) EmulatedOutput() model.FDValue {
	if out, ok := s.es.(model.FDOutput); ok {
		return out.EmulatedOutput()
	}
	return nil
}

// InitState implements model.Automaton.
func (a *Feed) InitState(p model.ProcessID) model.State {
	return &feedState{es: a.emitter.InitState(p), cs: a.consumer.InitState(p)}
}

// Step implements model.Automaton.
func (a *Feed) Step(p model.ProcessID, s model.State, m *model.Message, _ model.FDValue) (model.State, []model.Send) {
	st := s.CloneState().(*feedState)
	var me, mc *model.Message
	if m != nil {
		if a.emitterOwns(m.Payload) {
			me = m
		} else {
			mc = m
		}
	}
	es, eSends := a.emitter.Step(p, st.es, me, nil)
	st.es = es
	d := st.EmulatedOutput()
	if d == nil {
		panic("transform: feed emitter state does not expose an output")
	}
	cs, cSends := a.consumer.Step(p, st.cs, mc, d)
	st.cs = cs
	return st, append(eSends, cSends...)
}
