package transform_test

import (
	"testing"

	"nuconsensus/internal/check"
	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/substrate"
	"nuconsensus/internal/trace"
	"nuconsensus/internal/transform"
)

func TestSigmaNuPlusTransformerSmoke(t *testing.T) {
	n := 4
	pattern := model.PatternFromCrashes(n, map[model.ProcessID]model.Time{1: 30})
	hist := fd.NewSigmaNu(pattern, 80, 3)
	rec := &trace.Recorder{RecordSamples: true}
	res, err := sim.Run(sim.Exec{
		Automaton: transform.NewSigmaNuPlusTransformer(n),
		Pattern:   pattern,
		History:   hist,
		Scheduler: sim.NewFairScheduler(2, 0.8, 3),
		MaxSteps:  400,
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	horizon, herr := check.LastCompletenessViolation(rec.Outputs, pattern)
	if herr != nil || horizon > res.Ticks*4/5 {
		t.Fatalf("emulated Σν+ never stabilized (last completeness violation at %d of %d, %v)", horizon, res.Ticks, herr)
	}
	if err := check.SigmaNuPlus(rec.Outputs, pattern, horizon); err != nil {
		t.Fatalf("emulated Σν+ violates spec: %v", err)
	}
	t.Logf("ok after %d steps, stabilized at %d, %d output samples", res.Steps, horizon, len(rec.Outputs))
}

func TestSigmaNuExtractorSmoke(t *testing.T) {
	n := 3
	pattern := model.PatternFromCrashes(n, map[model.ProcessID]model.Time{2: 30})
	hist := fd.PairHistory{
		First:  fd.NewOmega(pattern, 60, 5),
		Second: fd.NewSigmaNuPlus(pattern, 60, 5),
	}
	target := func(proposals []int) model.Automaton { return consensus.NewANuc(proposals) }
	rec := &trace.Recorder{RecordSamples: true}
	res, err := sim.Run(sim.Exec{
		Automaton: transform.NewSigmaNuExtractor(n, target, 1),
		Pattern:   pattern,
		History:   hist,
		Scheduler: sim.NewFairScheduler(4, 0.8, 3),
		MaxSteps:  500,
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	horizon, herr := check.LastCompletenessViolation(rec.Outputs, pattern)
	if herr != nil || horizon > res.Ticks*4/5 {
		t.Fatalf("emulated Σν never stabilized (last completeness violation at %d of %d, %v)", horizon, res.Ticks, herr)
	}
	if err := check.SigmaNu(rec.Outputs, pattern, horizon); err != nil {
		t.Fatalf("emulated Σν violates spec: %v", err)
	}
	// The emulation is only meaningful if quorums actually tightened from Π.
	tightened := false
	for _, s := range rec.Outputs {
		if q, _ := fd.QuorumOf(s.Val); q != pattern.All() {
			tightened = true
			break
		}
	}
	if !tightened {
		t.Fatal("extractor never updated its output from Π — the schedule search found no decisions")
	}
	t.Logf("ok after %d steps, %d output samples", res.Steps, len(rec.Outputs))
}

func TestComposedANucOverSigmaNuSmoke(t *testing.T) {
	n := 4
	pattern := model.PatternFromCrashes(n, map[model.ProcessID]model.Time{0: 40})
	hist := fd.PairHistory{
		First:  fd.NewOmega(pattern, 80, 9),
		Second: fd.NewSigmaNu(pattern, 80, 9),
	}
	aut := transform.NewComposed(
		transform.NewSigmaNuPlusTransformer(n),
		consensus.NewANuc([]int{3, 7, 7, 3}),
	)
	rec := &trace.Recorder{RecordSamples: true}
	res, err := sim.Run(sim.Exec{
		Automaton: aut,
		Pattern:   pattern,
		History:   hist,
		Scheduler: sim.NewFairScheduler(6, 0.8, 3),
		MaxSteps:  3000,
		StopWhen:  substrate.AllCorrectDecided(pattern),
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatalf("not all correct processes decided within %d steps (%s)", res.Steps, rec.Summary())
	}
	out := check.OutcomeFromConfig(res.Config)
	if err := out.NonuniformConsensus(pattern); err != nil {
		t.Fatal(err)
	}
	t.Logf("decided %v after %d steps", out.Decisions, res.Steps)
}

func TestScratchSigmaSmoke(t *testing.T) {
	n, tFaults := 5, 2
	pattern := model.PatternFromCrashes(n, map[model.ProcessID]model.Time{1: 20, 4: 35})
	rec := &trace.Recorder{RecordSamples: true}
	res, err := sim.Run(sim.Exec{
		Automaton: transform.NewScratchSigma(n, tFaults),
		Pattern:   pattern,
		History:   fd.Null,
		Scheduler: sim.NewFairScheduler(8, 0.8, 3),
		MaxSteps:  600,
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Sigma(rec.Outputs, pattern, res.Ticks*3/4); err != nil {
		t.Fatalf("from-scratch Σ violates spec: %v", err)
	}
	t.Logf("ok after %d steps", res.Steps)
}
