package transform

import (
	"fmt"

	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
)

// PassthroughQuorum is the identity "transformation": each process outputs
// the quorum component its failure detector last produced. Applied to Σν
// it is a correct Σν→Σν emulation and the second doomed candidate in the
// Theorem 7.1 partition experiment: passing Σν through unchanged does not
// yield Σ when t ≥ n/2, because quorums at (eventually) faulty processes
// need not intersect anything.
type PassthroughQuorum struct {
	n int
}

// NewPassthroughQuorum returns the identity quorum transformer.
func NewPassthroughQuorum(n int) *PassthroughQuorum {
	if n < 2 || n > model.MaxProcesses {
		panic(fmt.Sprintf("transform: invalid system size %d", n))
	}
	return &PassthroughQuorum{n: n}
}

// Name implements model.Automaton.
func (a *PassthroughQuorum) Name() string { return "Σν-passthrough" }

// N implements model.Automaton.
func (a *PassthroughQuorum) N() int { return a.n }

// passthroughState holds the last sampled quorum.
type passthroughState struct {
	output model.ProcessSet
}

// CloneState implements model.State.
func (s *passthroughState) CloneState() model.State {
	c := *s
	return &c
}

// EmulatedOutput implements model.FDOutput.
func (s *passthroughState) EmulatedOutput() model.FDValue {
	return fd.QuorumValue{Quorum: s.output}
}

// InitState implements model.Automaton.
func (a *PassthroughQuorum) InitState(model.ProcessID) model.State {
	return &passthroughState{output: model.FullSet(a.n)}
}

// Step implements model.Automaton.
func (a *PassthroughQuorum) Step(_ model.ProcessID, s model.State, _ *model.Message, d model.FDValue) (model.State, []model.Send) {
	st := s.CloneState().(*passthroughState)
	if q, ok := fd.QuorumOf(d); ok {
		st.output = q
	}
	return st, nil
}
