package transform_test

import (
	"testing"

	"nuconsensus/internal/check"
	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/hb"
	"nuconsensus/internal/model"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/substrate"
	"nuconsensus/internal/trace"
	"nuconsensus/internal/transform"
)

func oracleFreeANuc(proposals []int, t int) model.Automaton {
	n := len(proposals)
	return transform.NewOracleFree(
		hb.NewOmega(n, 0, 0),
		transform.NewScratchSigmaNuPlus(n, t),
		consensus.NewANuc(proposals),
	)
}

// TestOracleFreeConsensus is the capstone integration: heartbeat Ω +
// from-scratch Σν+ + A_nuc solves nonuniform consensus with no failure
// detector at all, in a majority-correct environment, even through a
// hostile partial-synchrony prefix.
func TestOracleFreeConsensus(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		n, tf := 5, 2
		pattern := model.PatternFromCrashes(n, map[model.ProcessID]model.Time{1: 50, 3: 90})
		sched := &sim.PartialSyncScheduler{
			GST:    300,
			Before: sim.NewFairScheduler(seed, 0.3, 10),
			After:  sim.NewFairScheduler(seed+100, 0.9, 2),
		}
		rec := &trace.Recorder{RecordSamples: true}
		res, err := sim.Run(sim.Exec{
			Automaton: oracleFreeANuc([]int{0, 1, 0, 1, 0}, tf),
			Pattern:   pattern,
			History:   fd.Null,
			Scheduler: sched,
			MaxSteps:  60000,
			StopWhen:  substrate.AllCorrectDecided(pattern),
			Recorder:  rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stopped {
			t.Fatalf("seed=%d: no decision within %d steps", seed, res.Steps)
		}
		if err := check.OutcomeFromConfig(res.Config).NonuniformConsensus(pattern); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		// The assembled detector pair the consumer saw satisfies both specs.
		horizon, herr := check.LastCompletenessViolation(rec.Outputs, pattern)
		if herr != nil {
			t.Fatal(herr)
		}
		if err := check.SigmaNuPlus(rec.Outputs, pattern, horizon); err != nil {
			t.Fatalf("seed=%d: assembled Σν+ invalid: %v", seed, err)
		}
	}
}

// TestScratchSigmaNuPlusSpec validates the from-scratch Σν+ directly.
func TestScratchSigmaNuPlusSpec(t *testing.T) {
	n, tf := 5, 2
	pattern := model.PatternFromCrashes(n, map[model.ProcessID]model.Time{0: 20, 4: 40})
	rec := &trace.Recorder{RecordSamples: true}
	res, err := sim.Run(sim.Exec{
		Automaton: transform.NewScratchSigmaNuPlus(n, tf),
		Pattern:   pattern,
		History:   fd.Null,
		Scheduler: sim.NewFairScheduler(2, 0.8, 3),
		MaxSteps:  800,
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	horizon, herr := check.LastCompletenessViolation(rec.Outputs, pattern)
	if herr != nil || horizon > res.Ticks*4/5 {
		t.Fatalf("no stabilization: %d of %d (%v)", horizon, res.Ticks, herr)
	}
	if err := check.SigmaNuPlus(rec.Outputs, pattern, horizon); err != nil {
		t.Fatalf("from-scratch Σν+ violates spec: %v", err)
	}
}

func TestOracleFreeSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on component size mismatch")
		}
	}()
	transform.NewOracleFree(
		hb.NewOmega(3, 0, 0),
		transform.NewScratchSigmaNuPlus(5, 2),
		consensus.NewANuc([]int{0, 1, 0, 1, 0}),
	)
}
