package transform

import (
	"fmt"

	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
)

// RoundPayload is the message (k, p) of the from-scratch Σ algorithm; the
// sender p is the message's From field.
type RoundPayload struct {
	K int
}

// Kind implements model.Payload.
func (RoundPayload) Kind() string { return "RND" }

// String implements model.Payload.
func (m RoundPayload) String() string { return fmt.Sprintf("RND(k=%d)", m.K) }

// ScratchSigma implements Σ "from scratch" — without any failure detector —
// in environments where fewer than half the processes may crash
// (Theorem 7.1, IF direction). Each process proceeds in asynchronous
// rounds: it sends (k, p) to all, waits for n−t round-k messages, and
// outputs the set of n−t processes they came from. Since t < n/2 every
// output contains a majority, so any two outputs intersect; eventually only
// correct processes send, so outputs at correct processes complete.
//
// The automaton ignores its failure-detector value; drive it with any
// history (e.g. fd.Null).
type ScratchSigma struct {
	n, t        int
	includeSelf bool // force p into its own quorums (Σν+ self-inclusion)
}

// NewScratchSigma returns the from-scratch Σ automaton for environment E_t
// over n processes. It panics if t ≥ n/2: the ONLY-IF direction of
// Theorem 7.1 (see the partition experiment) shows no such algorithm exists
// there.
func NewScratchSigma(n, t int) *ScratchSigma {
	if 2*t >= n {
		panic(fmt.Sprintf("transform: ScratchSigma requires t < n/2 (got n=%d, t=%d)", n, t))
	}
	return NewThresholdQuorum(n, t)
}

// NewThresholdQuorum returns the (n−t)-threshold quorum algorithm without
// the t < n/2 restriction. For t ≥ n/2 it is the natural — but doomed —
// candidate for implementing Σ: the partition experiment (Theorem 7.1,
// ONLY-IF) runs it through the runs R and R′ of the proof and exhibits the
// intersection violation.
func NewThresholdQuorum(n, t int) *ScratchSigma {
	if n < 2 || n > model.MaxProcesses {
		panic(fmt.Sprintf("transform: invalid system size %d", n))
	}
	if t < 0 || t >= n {
		panic(fmt.Sprintf("transform: invalid fault bound t=%d for n=%d", t, n))
	}
	return &ScratchSigma{n: n, t: t}
}

// Name implements model.Automaton.
func (a *ScratchSigma) Name() string { return "Σ-scratch" }

// N implements model.Automaton.
func (a *ScratchSigma) N() int { return a.n }

// scratchState is the local state of one from-scratch Σ process.
type scratchState struct {
	k       int
	started bool
	output  model.ProcessSet
	// senders[k] lists round-k senders in arrival order, so the quorum is
	// "the set of n−t processes from which it received a message in round
	// k" — the first n−t arrivals.
	senders map[int][]model.ProcessID
}

// CloneState implements model.State.
func (s *scratchState) CloneState() model.State {
	c := *s
	c.senders = make(map[int][]model.ProcessID, len(s.senders))
	for k, v := range s.senders {
		c.senders[k] = append([]model.ProcessID(nil), v...)
	}
	return &c
}

// EmulatedOutput implements model.FDOutput.
func (s *scratchState) EmulatedOutput() model.FDValue {
	return fd.QuorumValue{Quorum: s.output}
}

// InitState implements model.Automaton.
func (a *ScratchSigma) InitState(p model.ProcessID) model.State {
	return &scratchState{
		output:  model.FullSet(a.n),
		senders: make(map[int][]model.ProcessID),
	}
}

// Step implements model.Automaton.
func (a *ScratchSigma) Step(p model.ProcessID, s model.State, m *model.Message, _ model.FDValue) (model.State, []model.Send) {
	st := s.CloneState().(*scratchState)
	var out []model.Send
	if m != nil {
		pl, ok := m.Payload.(RoundPayload)
		if !ok {
			panic(fmt.Sprintf("transform: Σ-scratch received unknown payload %T", m.Payload))
		}
		if pl.K >= st.k { // stale rounds are no longer needed
			st.senders[pl.K] = append(st.senders[pl.K], m.From)
		}
	}
	if !st.started {
		st.started = true
		st.k = 1
		return st, model.Broadcast(model.FullSet(a.n), RoundPayload{K: st.k})
	}
	need := a.n - a.t
	if got := st.senders[st.k]; len(got) >= need {
		var q model.ProcessSet
		for _, sender := range got[:need] {
			q = q.Add(sender)
		}
		if a.includeSelf {
			q = q.Add(p)
		}
		st.output = q
		delete(st.senders, st.k)
		st.k++
		out = model.Broadcast(model.FullSet(a.n), RoundPayload{K: st.k})
	}
	return st, out
}

// NewScratchSigmaNuPlus returns a from-scratch Σν+ for environments with
// t < n/2 crashes: the ScratchSigma algorithm with the owner forced into
// every quorum. The output satisfies all four Σν+ properties: quorums are
// supersets of (n−t)-sets so any two intersect (making nonuniform
// intersection and conditional nonintersection immediate), the owner is
// always included, and eventually only correct processes answer rounds.
// Combined with the heartbeat Ω of internal/hb this gives a fully
// oracle-free (Ω, Σν+) — see NewOracleFreeANuc.
func NewScratchSigmaNuPlus(n, t int) *ScratchSigma {
	s := NewScratchSigma(n, t)
	s.includeSelf = true
	return s
}
