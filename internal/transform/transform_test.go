package transform

import (
	"testing"

	"nuconsensus/internal/check"
	"nuconsensus/internal/dag"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
	"nuconsensus/internal/trace"
)

func node(p model.ProcessID, k int, quorum ...model.ProcessID) dag.Node {
	return dag.Node{P: p, K: k, D: fd.QuorumValue{Quorum: model.SetOf(quorum...)}}
}

func TestSatisfyingSuffix(t *testing.T) {
	tests := []struct {
		name string
		path []dag.Node
		p    model.ProcessID
		want model.ProcessSet
		ok   bool
	}{
		{
			name: "whole path satisfies",
			path: []dag.Node{node(0, 1, 0, 1), node(1, 1, 0, 1)},
			p:    0,
			want: model.SetOf(0, 1),
			ok:   true,
		},
		{
			name: "only a fresh suffix satisfies",
			// The first node trusts p2, which never participates; the
			// suffix from index 1 trusts only {0,1} ⊆ participants.
			path: []dag.Node{node(0, 1, 0, 2), node(0, 2, 0, 1), node(1, 1, 0, 1)},
			p:    0,
			want: model.SetOf(0, 1),
			ok:   true,
		},
		{
			name: "p missing from any satisfying suffix",
			path: []dag.Node{node(1, 1, 1), node(1, 2, 1)},
			p:    0,
			ok:   false,
		},
		{
			name: "trusted never covered",
			path: []dag.Node{node(0, 1, 0, 3), node(1, 1, 1, 3)},
			p:    0,
			ok:   false,
		},
		{
			name: "longest satisfying suffix preferred",
			path: []dag.Node{node(0, 1, 0), node(1, 1, 0, 1)},
			p:    0,
			want: model.SetOf(0, 1), // whole path: trusted {0,1} ⊆ {0,1}
			ok:   true,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := satisfyingSuffix(tc.path, tc.p)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if ok && got != tc.want {
				t.Fatalf("participants = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestSatisfyingSuffixPanicsOnNonQuorum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-quorum sample")
		}
	}()
	satisfyingSuffix([]dag.Node{{P: 0, K: 1, D: fd.NullValue{}}}, 0)
}

func TestScratchSigmaConstructors(t *testing.T) {
	if NewScratchSigma(5, 2) == nil {
		t.Fatal("valid construction failed")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewScratchSigma must reject t ≥ n/2")
			}
		}()
		NewScratchSigma(4, 2)
	}()
	if NewThresholdQuorum(4, 2) == nil {
		t.Fatal("threshold candidate must allow t ≥ n/2")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewThresholdQuorum must reject t ≥ n")
			}
		}()
		NewThresholdQuorum(4, 4)
	}()
}

func TestScratchSigmaRoundsAndOutputs(t *testing.T) {
	a := NewScratchSigma(3, 1)
	c := model.InitialConfiguration(a)
	// Drive round-robin with oldest-first delivery; outputs must be sets of
	// exactly n−t = 2 senders.
	sawNonInitial := false
	for i := 0; i < 60; i++ {
		p := model.ProcessID(i % 3)
		e := model.Step{P: p, M: c.Buffer.Oldest(p), D: fd.NullValue{}}
		c.Apply(a, e)
		out, _ := fd.QuorumOf(c.States[p].(model.FDOutput).EmulatedOutput())
		if out != model.FullSet(3) {
			sawNonInitial = true
			if out.Len() != 2 {
				t.Fatalf("output %v has size %d, want n−t=2", out, out.Len())
			}
		}
	}
	if !sawNonInitial {
		t.Error("outputs never advanced past the initial Π")
	}
}

func TestPassthroughQuorum(t *testing.T) {
	a := NewPassthroughQuorum(3)
	s := a.InitState(1)
	if q, _ := fd.QuorumOf(s.(model.FDOutput).EmulatedOutput()); q != model.FullSet(3) {
		t.Fatalf("initial output %v, want Π", q)
	}
	s2, sends := a.Step(1, s, nil, fd.QuorumValue{Quorum: model.SetOf(1, 2)})
	if len(sends) != 0 {
		t.Error("passthrough must not send messages")
	}
	if q, _ := fd.QuorumOf(s2.(model.FDOutput).EmulatedOutput()); q != model.SetOf(1, 2) {
		t.Errorf("output %v after sampling {p1,p2}", q)
	}
	// Original state untouched.
	if q, _ := fd.QuorumOf(s.(model.FDOutput).EmulatedOutput()); q != model.FullSet(3) {
		t.Error("Step mutated its input state")
	}
}

func TestComposedDelegation(t *testing.T) {
	trans := NewSigmaNuPlusTransformer(2)
	consumer := &fakeConsumer{n: 2}
	a := NewComposed(trans, consumer)
	if a.N() != 2 {
		t.Fatal("N mismatch")
	}
	st := a.InitState(0)
	d := fd.PairValue{First: fd.LeaderValue{Leader: 0}, Second: fd.QuorumValue{Quorum: model.SetOf(0, 1)}}
	st2, _ := a.Step(0, st, nil, d)
	if v, ok := model.DecisionOf(st2); !ok || v != 42 {
		t.Errorf("composed decision = %d, %v; want delegation to consumer", v, ok)
	}
	if r, ok := model.RoundOf(st2); !ok || r != 9 {
		t.Errorf("composed round = %d, %v", r, ok)
	}
	if pr, ok := st2.(model.Proposer); !ok || pr.Proposal() != 5 {
		t.Error("composed proposal delegation broken")
	}
	if out := st2.(model.FDOutput).EmulatedOutput(); out == nil {
		t.Error("composed must expose the transformer's output")
	}
}

func TestComposedSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on size mismatch")
		}
	}()
	NewComposed(NewSigmaNuPlusTransformer(2), &fakeConsumer{n: 3})
}

// fakeConsumer is a minimal consumer automaton that decides 42 on its
// first step and reports round 9.
type fakeConsumer struct{ n int }

type fakeConsumerState struct{ decided bool }

func (s *fakeConsumerState) CloneState() model.State { c := *s; return &c }
func (s *fakeConsumerState) Decision() (int, bool)   { return 42, s.decided }
func (s *fakeConsumerState) Proposal() int           { return 5 }
func (s *fakeConsumerState) Round() int              { return 9 }

func (a *fakeConsumer) Name() string                          { return "fake" }
func (a *fakeConsumer) N() int                                { return a.n }
func (a *fakeConsumer) InitState(model.ProcessID) model.State { return &fakeConsumerState{} }
func (a *fakeConsumer) Step(_ model.ProcessID, s model.State, _ *model.Message, d model.FDValue) (model.State, []model.Send) {
	if _, ok := fd.QuorumOf(d); !ok {
		panic("fake consumer expects a quorum component")
	}
	st := s.CloneState().(*fakeConsumerState)
	st.decided = true
	return st, nil
}

// dPHistory is a canonical ◇P history: arbitrary suspicion before
// stabilize, exactly the faulty set afterwards.
type dPHistory struct {
	pattern   *model.FailurePattern
	stabilize model.Time
}

func (h dPHistory) Output(p model.ProcessID, t model.Time) model.FDValue {
	if t >= h.stabilize {
		return fd.SuspectsValue{Suspects: h.pattern.Faulty()}
	}
	// Pre-stabilization noise: suspect everyone but yourself on odd ticks.
	if t%2 == 1 {
		return fd.SuspectsValue{Suspects: h.pattern.All().Remove(p)}
	}
	return fd.SuspectsValue{Suspects: 0}
}

func TestOmegaFromSuspects(t *testing.T) {
	n := 4
	pattern := model.PatternFromCrashes(n, map[model.ProcessID]model.Time{0: 20, 2: 35})
	aut := NewOmegaFromSuspects(n)
	hist := dPHistory{pattern: pattern, stabilize: 60}

	// Drive each correct process directly through time and check the
	// emitted leader history against the Ω specification.
	var outs []trace.Sample
	states := map[model.ProcessID]model.State{}
	for p := 0; p < n; p++ {
		states[model.ProcessID(p)] = aut.InitState(model.ProcessID(p))
	}
	for tt := model.Time(1); tt <= 120; tt++ {
		for p := 0; p < n; p++ {
			pid := model.ProcessID(p)
			if pattern.Crashed(pid, tt) {
				continue
			}
			st, sends := aut.Step(pid, states[pid], nil, hist.Output(pid, tt))
			if len(sends) != 0 {
				t.Fatal("the ◇P→Ω reduction must be purely local")
			}
			states[pid] = st
			outs = append(outs, trace.Sample{P: pid, T: tt, Val: st.(model.FDOutput).EmulatedOutput()})
		}
	}
	if err := check.OmegaOutputs(outs, pattern, 60); err != nil {
		t.Fatalf("emitted history violates Ω: %v", err)
	}
}

func TestOmegaFromSuspectsPanicsOnWrongInput(t *testing.T) {
	aut := NewOmegaFromSuspects(3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic without a suspects component")
		}
	}()
	aut.Step(0, aut.InitState(0), nil, fd.NullValue{})
}
