package transform

import (
	"fmt"

	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
)

// OmegaFromSuspects transforms any eventually-perfect-style suspicion
// detector (◇P, e.g. hb.NewSuspector) into Ω: each process trusts the
// smallest process it does not currently suspect. Once suspicion converges
// to exactly the faulty set at every correct process (◇P's guarantee),
// every correct process trusts the same correct process forever — the Ω
// specification. It is the classic ◇P ⪰ Ω reduction, stated here as a
// transformation algorithm in the paper's §2.9 sense (it sends no
// messages; the emulation is purely local).
type OmegaFromSuspects struct {
	n int
}

// NewOmegaFromSuspects returns the ◇P→Ω transformation for n processes.
func NewOmegaFromSuspects(n int) *OmegaFromSuspects {
	if n < 2 || n > model.MaxProcesses {
		panic(fmt.Sprintf("transform: invalid system size %d", n))
	}
	return &OmegaFromSuspects{n: n}
}

// Name implements model.Automaton.
func (a *OmegaFromSuspects) Name() string { return "T_{◇P→Ω}" }

// N implements model.Automaton.
func (a *OmegaFromSuspects) N() int { return a.n }

// omegaFromSuspectsState holds the current leader estimate.
type omegaFromSuspectsState struct {
	output model.ProcessID
}

// CloneState implements model.State.
func (s *omegaFromSuspectsState) CloneState() model.State {
	c := *s
	return &c
}

// EmulatedOutput implements model.FDOutput.
func (s *omegaFromSuspectsState) EmulatedOutput() model.FDValue {
	return fd.LeaderValue{Leader: s.output}
}

// InitState implements model.Automaton.
func (a *OmegaFromSuspects) InitState(p model.ProcessID) model.State {
	return &omegaFromSuspectsState{output: p}
}

// Step implements model.Automaton.
func (a *OmegaFromSuspects) Step(p model.ProcessID, s model.State, _ *model.Message, d model.FDValue) (model.State, []model.Send) {
	st := s.CloneState().(*omegaFromSuspectsState)
	sus, ok := fd.SuspectsOf(d)
	if !ok {
		panic(fmt.Sprintf("transform: T_{◇P→Ω} needs a suspects component, got %v", d))
	}
	leader := p // a process never suspects itself
	for q := 0; q < a.n; q++ {
		if pid := model.ProcessID(q); !sus.Has(pid) {
			leader = pid
			break
		}
	}
	st.output = leader
	return st, nil
}
