package transform

import (
	"fmt"

	"nuconsensus/internal/dag"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
)

// Composed is the construction of Theorem 6.28: given (Ω, Σν), run
// T_{Σν→Σν+} concurrently with a consumer algorithm (A_nuc) that uses
// (Ω, Σν+), where the Σν+ module is read from the transformer's output
// variable. Each atomic step of the composed automaton advances the
// transformer with the step's Σν component and then the consumer with
// (Ω, emulated Σν+); the step's single received message is routed to the
// component that understands its payload (DAG snapshots → transformer,
// everything else → consumer), the other component receiving λ.
//
// Drive it with PairValue histories (Ω, Σν).
type Composed struct {
	trans    model.Automaton // states must implement model.FDOutput
	consumer model.Automaton
}

// NewComposed combines a transformer and a consumer over the same system
// size.
func NewComposed(trans, consumer model.Automaton) *Composed {
	if trans.N() != consumer.N() {
		panic(fmt.Sprintf("transform: component sizes differ (%d vs %d)", trans.N(), consumer.N()))
	}
	return &Composed{trans: trans, consumer: consumer}
}

// Name implements model.Automaton.
func (a *Composed) Name() string {
	return fmt.Sprintf("%s∘%s", a.trans.Name(), a.consumer.Name())
}

// N implements model.Automaton.
func (a *Composed) N() int { return a.trans.N() }

// composedState pairs the two component states.
type composedState struct {
	ts model.State
	cs model.State
}

// CloneState implements model.State.
func (s *composedState) CloneState() model.State {
	return &composedState{ts: s.ts.CloneState(), cs: s.cs.CloneState()}
}

// Decision implements model.Decider by delegating to the consumer.
func (s *composedState) Decision() (int, bool) { return model.DecisionOf(s.cs) }

// Proposal implements model.Proposer by delegating to the consumer.
func (s *composedState) Proposal() int {
	if pr, ok := s.cs.(model.Proposer); ok {
		return pr.Proposal()
	}
	return 0
}

// EmulatedOutput implements model.FDOutput by delegating to the
// transformer, so recorded output samples are the emulated Σν+ history.
func (s *composedState) EmulatedOutput() model.FDValue {
	if out, ok := s.ts.(model.FDOutput); ok {
		return out.EmulatedOutput()
	}
	return nil
}

// Round implements model.Rounder by delegating to the consumer.
func (s *composedState) Round() int {
	r, _ := model.RoundOf(s.cs)
	return r
}

// ConsumerState exposes the consumer component's state.
func (s *composedState) ConsumerState() model.State { return s.cs }

// InitState implements model.Automaton.
func (a *Composed) InitState(p model.ProcessID) model.State {
	return &composedState{ts: a.trans.InitState(p), cs: a.consumer.InitState(p)}
}

// Step implements model.Automaton.
func (a *Composed) Step(p model.ProcessID, s model.State, m *model.Message, d model.FDValue) (model.State, []model.Send) {
	st := s.CloneState().(*composedState)

	// Route the received message.
	var mT, mC *model.Message
	if m != nil {
		if _, isDAG := m.Payload.(dag.GraphPayload); isDAG {
			mT = m
		} else {
			mC = m
		}
	}

	// The transformer samples the Σν component of this step's pair value.
	quorum, ok := fd.QuorumOf(d)
	if !ok {
		panic(fmt.Sprintf("transform: composed automaton needs a Σν component, got %v", d))
	}
	ts, tSends := a.trans.Step(p, st.ts, mT, fd.QuorumValue{Quorum: quorum})
	st.ts = ts

	// The consumer reads (Ω, Σν+-output_p).
	leader, ok := fd.LeaderOf(d)
	if !ok {
		panic(fmt.Sprintf("transform: composed automaton needs an Ω component, got %v", d))
	}
	emu := st.EmulatedOutput()
	if emu == nil {
		panic("transform: transformer state does not expose an emulated output")
	}
	cs, cSends := a.consumer.Step(p, st.cs, mC, fd.PairValue{
		First:  fd.LeaderValue{Leader: leader},
		Second: emu,
	})
	st.cs = cs

	return st, append(tSends, cSends...)
}
