// Package transform implements the paper's failure-detector transformation
// algorithms:
//
//   - SigmaNuExtractor — T_{D→Σν} (Fig. 2): extracts Σν from any failure
//     detector D that can be used to solve nonuniform consensus
//     (Theorem 5.4); run with a D that solves *uniform* consensus it
//     extracts Σ (Theorem 5.8).
//   - SigmaNuPlusTransformer — T_{Σν→Σν+} (Fig. 3): boosts Σν to Σν+ in
//     any environment (Theorem 6.7).
//   - ScratchSigma — the from-scratch Σ implementation for environments
//     with a correct majority (Theorem 7.1, IF direction).
//   - Composed — the construction of Theorem 6.28: T_{Σν→Σν+} running
//     concurrently with a consumer algorithm (A_nuc) that reads the
//     emulated Σν+ through the transformer's output variable.
//
// All transformers expose their output_p variable (§2.9) via
// model.FDOutput, so drivers record the emulated history and internal/check
// validates it against the target detector's specification.
package transform

import (
	"fmt"

	"nuconsensus/internal/dag"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
)

// TargetFactory builds the consensus algorithm A (which uses D) for a given
// assignment of proposals — the extractor needs A's initial configurations
// I_0 (all propose 0) and I_1 (all propose 1).
type TargetFactory func(proposals []int) model.Automaton

// SigmaNuExtractor is algorithm T_{D→Σν} (Fig. 2). Each process runs A_DAG
// on D, and uses a fresh subgraph G_p|u_p of its sample DAG to simulate
// schedules of A from I_0 and I_1; when it finds schedules S_0, S_1 in
// which it decides in both, it outputs participants(S_0) ∪ participants(S_1)
// as its Σν quorum and advances the freshness barrier u_p.
//
// The schedule search follows the canonical bounded strategy documented in
// package dag: the longest chain of G_p|u_p with oldest-message-first
// delivery.
// PathStrategy selects which paths of the fresh subgraph G_p|u_p the
// extractor simulates schedules along.
type PathStrategy int

const (
	// LongestChain (default) simulates along the longest chain of G_p|u_p —
	// in fair executions it revisits every live process many times, playing
	// the role of the limit path g^∞ of Lemma 4.8.
	LongestChain PathStrategy = iota
	// OwnChain simulates only along p's own samples. It is an ablation: a
	// solo schedule cannot make the target algorithm decide (consensus
	// needs messages from quorums of other processes), so the search never
	// succeeds, the freshness barrier never advances, and the emulation is
	// stuck at Π — demonstrating why the extraction must simulate
	// cross-process schedules.
	OwnChain
)

type SigmaNuExtractor struct {
	n           int
	target      TargetFactory
	a0, a1      model.Automaton
	searchEvery int
	strategy    PathStrategy
}

// NewSigmaNuExtractor returns the extractor for an n-process system.
// searchEvery throttles the (expensive) simulation search to every k-th
// step; 1 (or ≤0) searches on every step as in the paper.
func NewSigmaNuExtractor(n int, target TargetFactory, searchEvery int) *SigmaNuExtractor {
	return NewSigmaNuExtractorWithStrategy(n, target, searchEvery, LongestChain)
}

// NewSigmaNuExtractorWithStrategy selects the schedule-search path strategy
// (the Q6 ablation uses OwnChain).
func NewSigmaNuExtractorWithStrategy(n int, target TargetFactory, searchEvery int, strategy PathStrategy) *SigmaNuExtractor {
	if n < 2 || n > model.MaxProcesses {
		panic(fmt.Sprintf("transform: invalid system size %d", n))
	}
	if searchEvery <= 0 {
		searchEvery = 1
	}
	zeros := make([]int, n)
	ones := make([]int, n)
	for i := range ones {
		ones[i] = 1
	}
	return &SigmaNuExtractor{
		n:           n,
		target:      target,
		a0:          target(zeros),
		a1:          target(ones),
		searchEvery: searchEvery,
		strategy:    strategy,
	}
}

// Name implements model.Automaton.
func (a *SigmaNuExtractor) Name() string { return "T_{D→Σν}" }

// N implements model.Automaton.
func (a *SigmaNuExtractor) N() int { return a.n }

// extractorState is the local state of one T_{D→Σν} process.
type extractorState struct {
	b      dag.Builder
	u      dag.Key
	output model.ProcessSet // Σν-output_p
}

// CloneState implements model.State.
func (s *extractorState) CloneState() model.State {
	c := *s
	c.b = s.b.Clone()
	return &c
}

// EmulatedOutput implements model.FDOutput.
func (s *extractorState) EmulatedOutput() model.FDValue {
	return fd.QuorumValue{Quorum: s.output}
}

// SampleGraph implements dag.GraphHolder.
func (s *extractorState) SampleGraph() *dag.Graph { return s.b.G }

// InitState implements model.Automaton (Fig. 2 lines 1–4).
func (a *SigmaNuExtractor) InitState(p model.ProcessID) model.State {
	return &extractorState{
		b:      dag.NewBuilder(p),
		output: model.FullSet(a.n),
	}
}

// Step implements model.Automaton (Fig. 2 lines 5–19).
func (a *SigmaNuExtractor) Step(p model.ProcessID, s model.State, m *model.Message, d model.FDValue) (model.State, []model.Send) {
	st := s.CloneState().(*extractorState)
	idx, sends := st.b.DoStep(m, d, model.FullSet(a.n))
	v := st.b.G.Node(idx).Key()
	if st.b.K == 1 {
		st.u = v // line 13
	}
	if st.b.K%a.searchEvery != 0 {
		return st, sends
	}
	// Lines 14–19: look for schedules S_0 ∈ Sch(G_p|u_p, I_0) and
	// S_1 ∈ Sch(G_p|u_p, I_1) in which p decides.
	ui := st.b.G.IndexOf(st.u)
	mask := st.b.G.Descendants(ui)
	var path []dag.Node
	switch a.strategy {
	case OwnChain:
		path = st.b.G.Nodes(st.b.G.OwnChainFrom(ui, mask, p))
	default:
		path = st.b.G.Nodes(st.b.G.LongestPathFrom(ui, mask))
	}
	parts0, _, ok0 := dag.DecidesAlong(a.a0, path, p)
	if !ok0 {
		return st, sends
	}
	parts1, _, ok1 := dag.DecidesAlong(a.a1, path, p)
	if !ok1 {
		return st, sends
	}
	st.output = parts0.Union(parts1) // line 18
	st.u = v                         // line 19
	return st, sends
}
