package rsm

import (
	"testing"

	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
)

// parkedFD is the failure-detector value the parked-message tests step
// with: process 1 is the stable leader and the full set is the quorum.
func parkedFD() model.FDValue {
	return fd.PairValue{
		First:  fd.LeaderValue{Leader: 1},
		Second: fd.QuorumValue{Quorum: model.SetOf(0, 1, 2)},
	}
}

// leadFrom1 is a round-1 leader message for the given slot, as sent by
// process 1's instance of that slot.
func leadFrom1(slot int) *model.Message {
	return &model.Message{From: 1, To: 0, Seq: 1,
		Payload: SlotPayload{Slot: slot, Inner: consensus.LeadPayload{K: 1, V: 42}}}
}

// reportsForSlot collects the wrapped REP payloads addressed from the
// given slot in a send batch.
func reportsForSlot(sends []model.Send, slot int) []consensus.ReportPayload {
	var out []consensus.ReportPayload
	for _, snd := range sends {
		if sp, ok := snd.Payload.(SlotPayload); ok && sp.Slot == slot {
			if rep, ok := sp.Inner.(consensus.ReportPayload); ok {
				out = append(out, rep)
			}
		}
	}
	return out
}

// TestParkedMessageReplaysOnWindowOpen: a message for an in-range slot
// whose instance has not opened yet must be parked and replayed when the
// pipelined window reaches the slot — not dropped. A_nuc sends each phase
// message exactly once, so a dropped leader LEAD wedges the late opener in
// phaseLead forever (the liveness bug cmd/nucd hit: every replica's first
// window decided no-ops before client traffic arrived, later slots opened
// at different times across replicas, and the cluster froze).
func TestParkedMessageReplaysOnWindowOpen(t *testing.T) {
	aut := NewLog([][]int{{}, {}, {}}, 8).WithPipeline(2)
	d := parkedFD()

	// The window is [0,2): slot 2 has no instance, so the leader's LEAD
	// for slot 2 must park.
	ns, _ := aut.Step(0, aut.InitState(0), leadFrom1(2), d)
	st := ns.(*logState)
	if len(st.parked[2]) != 1 {
		t.Fatalf("parked[2] has %d messages, want 1", len(st.parked[2]))
	}

	// Both window slots decide; harvest advances the frontier to 2, opens
	// slots 2 and 3, and must replay the parked LEAD into the fresh slot-2
	// instance.
	st.decided[0] = NoOp
	st.decided[1] = NoOp
	sends := st.harvest(aut, d)
	if len(st.parked) != 0 {
		t.Fatalf("parked map not drained after openWindow: %v", st.parked)
	}
	if _, live := st.instances[2]; !live {
		t.Fatal("slot 2 did not open")
	}
	gotLead := false
	for _, snd := range sends {
		if sp, ok := snd.Payload.(SlotPayload); ok && sp.Slot == 2 && sp.Kind() == "LEAD" {
			gotLead = true
		}
	}
	if !gotLead {
		t.Error("replay produced no slot-2 LEAD broadcast (fresh instance never stepped)")
	}

	// The replayed LEAD must be in the instance's round-1 inbox: one more
	// inner step completes the phaseLead wait on leader 1 and reports the
	// adopted estimate. Before the fix the message was dropped and the
	// instance waited here forever.
	inst, out := aut.inner.Step(0, st.instances[2], nil, d)
	st.instances[2] = inst
	reps := reportsForSlot(wrapSends(2, out), 2)
	if len(reps) == 0 || reps[0].K != 1 || reps[0].V != 42 {
		t.Fatalf("slot-2 instance did not adopt the replayed LEAD: reports = %v", reps)
	}
}

// decidedStub stands in for a slot instance that has already decided; it
// lets the sequential-path test trigger checkDecided without simulating a
// full A_nuc round.
type decidedStub struct{}

func (decidedStub) CloneState() model.State { return decidedStub{} }
func (decidedStub) Decision() (int, bool)   { return NoOp, true }

// TestParkedMessageReplaysSequential: the sequential (pipeline=1) log
// opens slot k+1 lazily when slot k decides, so it has the same
// park-and-replay obligation.
func TestParkedMessageReplaysSequential(t *testing.T) {
	aut := NewLog([][]int{{}, {}, {}}, 4)
	d := parkedFD()

	ns, _ := aut.Step(0, aut.InitState(0), leadFrom1(1), d)
	st := ns.(*logState)
	if len(st.parked[1]) != 1 {
		t.Fatalf("parked[1] has %d messages, want 1", len(st.parked[1]))
	}

	// Slot 0 decides; checkDecided opens slot 1 and replays.
	st.instances[0] = decidedStub{}
	st.checkDecided(aut, d)
	if st.slot != 1 {
		t.Fatalf("slot = %d, want 1", st.slot)
	}
	if len(st.parked) != 0 {
		t.Fatalf("parked map not drained after checkDecided: %v", st.parked)
	}
	inst, out := aut.inner.Step(0, st.instances[1], nil, d)
	st.instances[1] = inst
	reps := reportsForSlot(wrapSends(1, out), 1)
	if len(reps) == 0 || reps[0].K != 1 || reps[0].V != 42 {
		t.Fatalf("slot-1 instance did not adopt the replayed LEAD: reports = %v", reps)
	}
}

// TestParkedSlotBounds: only slots in [current, capacity) park; messages
// for decided/retired slots and beyond-capacity slots are still dropped.
func TestParkedSlotBounds(t *testing.T) {
	aut := NewLog([][]int{{}, {}, {}}, 4).WithPipeline(2)
	d := parkedFD()

	ns, _ := aut.Step(0, aut.InitState(0), leadFrom1(7), d)
	if p := ns.(*logState).parked; len(p) != 0 {
		t.Errorf("beyond-capacity slot parked: %v", p)
	}

	st := aut.InitState(0).(*logState)
	st.slot = 2
	st.progress = []int{2, 2, 2}
	delete(st.instances, 0)
	delete(st.instances, 1)
	ns, _ = aut.Step(0, st, leadFrom1(1), d)
	if p := ns.(*logState).parked; len(p) != 0 {
		t.Errorf("retired slot parked: %v", p)
	}
}
