package rsm_test

import (
	"testing"

	"nuconsensus/internal/model"
	"nuconsensus/internal/obs"
	"nuconsensus/internal/rsm"
	"nuconsensus/internal/sim"
)

// roundSink records OnEntry and OnEntryRound callbacks side by side.
type roundSink struct {
	testSink
	rounds map[model.ProcessID][]int
}

func newRoundSink() *roundSink {
	return &roundSink{
		testSink: testSink{entries: map[model.ProcessID][]sunk{}},
		rounds:   map[model.ProcessID][]int{},
	}
}

func (s *roundSink) OnEntryRound(p model.ProcessID, slot, v, round int) {
	s.rounds[p] = append(s.rounds[p], round)
}

// TestRoundSink: a sink implementing the optional RoundSink extension gets
// one OnEntryRound per OnEntry, in the same order, with a plausible round
// count; and the parked-message counters move consistently (every replay
// drains something previously parked).
func TestRoundSink(t *testing.T) {
	sink := newRoundSink()
	reg := obs.NewRegistry()
	cmds := [][]int{{10, 11}, {20}, {30}}
	const slots, depth = 6, 2
	pattern := model.PatternFromCrashes(3, nil)
	sampler := rsm.SamplerForLog(pattern, 80, 5)
	aut := rsm.NewSharedLog(cmds, slots).WithSampler(sampler).WithMetrics(reg).
		WithPipeline(depth).WithEntrySink(sink)
	correct := pattern.Correct()
	res, err := sim.Run(sim.Exec{
		Automaton: aut,
		Pattern:   pattern,
		History:   sampler,
		Scheduler: sim.NewFairScheduler(5, 0.8, 3),
		MaxSteps:  200000,
		StopWhen: func(c *model.Configuration, _ model.Time) bool {
			done := true
			correct.ForEach(func(p model.ProcessID) {
				if len(sink.entries[p]) < slots {
					done = false
				}
			})
			return done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("log never filled")
	}
	for p := model.ProcessID(0); p < 3; p++ {
		if len(sink.rounds[p]) != len(sink.entries[p]) {
			t.Fatalf("p%d: %d round callbacks for %d entries", p, len(sink.rounds[p]), len(sink.entries[p]))
		}
		for i, r := range sink.rounds[p] {
			if r < 1 {
				t.Fatalf("p%d entry %d decided at round %d, want >= 1", p, i, r)
			}
		}
	}
	parked := reg.Counter("rsm.parked_msgs").Value()
	replayed := reg.Counter("rsm.parked_replayed").Value()
	if replayed > parked {
		t.Fatalf("replayed %d messages but only %d were ever parked", replayed, parked)
	}
	if parked == 0 {
		t.Log("no message was parked this run (seed-dependent); counters untested beyond invariant")
	}
}
