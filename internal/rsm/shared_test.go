package rsm_test

import (
	"context"
	"testing"

	"nuconsensus/internal/consensus"
	"nuconsensus/internal/model"
	"nuconsensus/internal/netrun"
	"nuconsensus/internal/obs"
	"nuconsensus/internal/quorum"
	"nuconsensus/internal/rsm"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/substrate"
)

// runSharedLog drives a shared-store replicated log to completion and
// returns each process's final entries, the stop flag, and the metrics
// registry the run was instrumented with.
func runSharedLog(t *testing.T, cmds [][]int, slots int, crashes map[model.ProcessID]model.Time, seed int64) ([][]int, bool, *obs.Registry) {
	t.Helper()
	n := len(cmds)
	pattern := model.PatternFromCrashes(n, crashes)
	reg := obs.NewRegistry()
	sampler := rsm.SamplerForLog(pattern, 80, seed)
	aut := rsm.NewSharedLog(cmds, slots).WithMetrics(reg).WithSampler(sampler)
	res, err := sim.Run(sim.Exec{
		Automaton: aut,
		Pattern:   pattern,
		History:   sampler,
		Scheduler: sim.NewFairScheduler(seed, 0.8, 3),
		MaxSteps:  120000,
		StopWhen:  rsm.AllAppended(pattern, slots),
	})
	if err != nil {
		t.Fatal(err)
	}
	logs := make([][]int, n)
	for i, s := range res.Config.States {
		if lh, ok := s.(rsm.LogHolder); ok {
			logs[i] = lh.Entries()
		}
	}
	return logs, res.Stopped, reg
}

// TestSharedLogAgreement: the shared-store log satisfies the same per-slot
// agreement and validity as the owned-mode log, under the same seeds and
// crash pattern as TestReplicatedLogAgreement.
func TestSharedLogAgreement(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		cmds := [][]int{{10, 11}, {20}, {30, 31}, {40}}
		crashes := map[model.ProcessID]model.Time{3: 60}
		logs, done, reg := runSharedLog(t, cmds, 4, crashes, seed)
		if !done {
			t.Fatalf("seed=%d: shared log never filled", seed)
		}
		pattern := model.PatternFromCrashes(4, crashes)
		var ref []int
		pattern.Correct().ForEach(func(p model.ProcessID) {
			if ref == nil {
				ref = logs[p]
				return
			}
			if len(logs[p]) != len(ref) {
				t.Fatalf("seed=%d: %v has %d entries, want %d", seed, p, len(logs[p]), len(ref))
			}
			for i := range ref {
				if logs[p][i] != ref[i] {
					t.Fatalf("seed=%d: logs diverge at slot %d: %v vs %v", seed, i, logs[p], ref)
				}
			}
		})
		valid := map[int]bool{rsm.NoOp: true}
		for _, qs := range cmds {
			for _, c := range qs {
				valid[c] = true
			}
		}
		for _, v := range ref {
			if !valid[v] {
				t.Fatalf("seed=%d: log contains unproposed command %d", seed, v)
			}
		}
		assertDeltaTransport(t, reg, 4)
		t.Logf("seed=%d: shared log %v", seed, ref)
	}
}

// assertDeltaTransport checks the shared-mode transport counters: delta
// chaining dominates (hits far above the at-most-one snapshot-shaped first
// transfer per link), and FIFO delivery makes gaps impossible.
func assertDeltaTransport(t *testing.T, reg *obs.Registry, n int) {
	t.Helper()
	hits := reg.Counter("rsm.hist.delta_hits").Value()
	falls := reg.Counter("rsm.hist.full_fallbacks").Value()
	gaps := reg.Counter("rsm.hist.delta_gaps").Value()
	// A_nuc broadcasts include the sender itself, so there are n² FIFO
	// links (self-delivery included), each with at most one snapshot-shaped
	// first transfer.
	links := int64(n * n)
	if gaps != 0 {
		t.Errorf("delta_gaps = %d, want 0 (FIFO links cannot skip)", gaps)
	}
	if falls > links {
		t.Errorf("full_fallbacks = %d, want ≤ %d (one first transfer per link)", falls, links)
	}
	if hits <= 10*falls || hits == 0 {
		t.Errorf("delta_hits = %d vs full_fallbacks = %d: deltas should dominate", hits, falls)
	}
	if reg.Counter("rsm.fd.epochs").Value() == 0 {
		t.Error("rsm.fd.epochs never moved: sampler epochs not fanning out")
	}
	if reg.Gauge("rsm.hist.store_entries").Value() == 0 {
		t.Error("rsm.hist.store_entries gauge never set")
	}
}

// TestSharedLogDrainsCommands mirrors TestReplicatedLogDrainsCommands in
// shared mode.
func TestSharedLogDrainsCommands(t *testing.T) {
	cmds := [][]int{{1}, {2}, {3}}
	logs, done, _ := runSharedLog(t, cmds, 6, nil, 2)
	if !done {
		t.Fatal("shared log never filled")
	}
	appended := map[int]bool{}
	for _, v := range logs[0] {
		appended[v] = true
	}
	for p, qs := range cmds {
		for _, c := range qs {
			if !appended[c] {
				t.Errorf("p%d's command %d never appended in %v", p, c, logs[0])
			}
		}
	}
}

// TestSharedLogOverTCP runs the shared-store stack over real sockets: delta
// payloads cross the wire codec and the sampler is hit from per-process
// goroutines concurrently.
func TestSharedLogOverTCP(t *testing.T) {
	cmds := [][]int{{7}, {8}, {9}}
	const slots = 3
	pattern := model.PatternFromCrashes(3, nil)
	reg := obs.NewRegistry()
	sampler := rsm.SamplerForLog(pattern, 100, 4)
	aut := rsm.NewSharedLog(cmds, slots).WithMetrics(reg).WithSampler(sampler)
	res, err := netrun.New().Run(context.Background(), aut, sampler, pattern, substrate.Options{
		Seed:            4,
		MaxSteps:        3_000_000,
		StopWhenDecided: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided {
		t.Fatalf("shared TCP log never filled (%d ticks)", res.Ticks)
	}
	var ref []int
	for p := 0; p < 3; p++ {
		entries := res.Config.States[p].(rsm.LogHolder).Entries()
		if ref == nil {
			ref = entries
		} else if len(entries) != len(ref) {
			t.Fatalf("log lengths diverge: %v vs %v", entries, ref)
		} else {
			for i := range ref {
				if entries[i] != ref[i] {
					t.Fatalf("logs diverge: %v vs %v", entries, ref)
				}
			}
		}
	}
	if gaps := reg.Counter("rsm.hist.delta_gaps").Value(); gaps != 0 {
		t.Errorf("delta_gaps = %d over TCP, want 0 (per-link FIFO)", gaps)
	}
	t.Logf("shared TCP replicated log: %v (%d wire bytes)", ref, res.BytesSent)
}

// TestSharedCloneIsolation: Step must never mutate its input state — in
// shared mode that hinges on CloneState deep-copying the one shared store
// and rebinding every cloned instance to the copy. Incoming history deltas
// land in the store, so delivering one to a state and re-reading that same
// state is the sharpest probe.
func TestSharedCloneIsolation(t *testing.T) {
	pattern := model.PatternFromCrashes(3, nil)
	hist := rsm.PairForLog(pattern, 40, 7)
	aut := rsm.NewSharedLog([][]int{{1}, {2}, {3}}, 2)
	ns := aut.InitState(0)
	for i := 1; i <= 6; i++ {
		d := quorum.Delta{Base: uint64(i - 1), To: uint64(i), Adds: []quorum.DeltaEntry{
			{R: 1, Q: model.SetOf(1, model.ProcessID(i%3))},
		}}
		m := &model.Message{From: 1, To: 0, Seq: uint64(i),
			Payload: rsm.SlotPayload{Slot: 0, Inner: consensus.LeadDeltaPayload{K: i, V: 5, Delta: d}}}
		before := rsm.StatsOf(ns)
		next, _ := aut.Step(0, ns, m, hist.Output(0, model.Time(i)))
		if after := rsm.StatsOf(ns); after != before {
			t.Fatalf("delivery %d: Step mutated its input state: %+v → %+v", i, before, after)
		}
		ns = next
	}
	if got := rsm.StatsOf(ns); got.StoreVersion == 0 || got.StoreBytes == 0 {
		t.Fatalf("store never absorbed the deltas: %+v", got)
	}
}

// TestStatsOfModes: StatsOf distinguishes shared from owned states and is
// zero for foreign ones.
func TestStatsOfModes(t *testing.T) {
	if got := rsm.StatsOf(nonLogState{}); got != (rsm.StateStats{}) {
		t.Errorf("StatsOf(foreign) = %+v, want zero", got)
	}
	owned := rsm.NewLog([][]int{{1}, {2}}, 2).InitState(0)
	if got := rsm.StatsOf(owned); got.StoreVersion != 0 || got.LiveInstances != 1 {
		t.Errorf("StatsOf(owned init) = %+v", got)
	}
	shared := rsm.NewSharedLog([][]int{{1}, {2}}, 2).InitState(0)
	if got := rsm.StatsOf(shared); got.LiveInstances != 1 || got.HistEntries != 0 {
		t.Errorf("StatsOf(shared init) = %+v", got)
	}
}

// starveScheduler excludes one process from scheduling for its first
// `until` decisions, then behaves exactly like its inner scheduler — a
// deterministic way to create a laggard that must catch up through slots
// its peers decided (and whose stores compacted) long ago.
type starveScheduler struct {
	inner  sim.Scheduler
	victim model.ProcessID
	until  int
	calls  int
}

func (s *starveScheduler) Next(t model.Time, alive model.ProcessSet, c *model.Configuration) (model.ProcessID, *model.Message) {
	s.calls++
	if s.calls <= s.until {
		if rest := alive.Remove(s.victim); !rest.IsEmpty() {
			return s.inner.Next(t, rest, c)
		}
	}
	return s.inner.Next(t, alive, c)
}

// TestSharedLogLaggardCatchesUp: a process starved through thousands of
// steps — while its peers decide slots, retire instances, and compact
// their delta logs — must still drain its FIFO backlog, decide every slot
// itself, and agree, with zero delta gaps and no late snapshot fallbacks
// (compaction floors never pass a version already shipped to the laggard).
func TestSharedLogLaggardCatchesUp(t *testing.T) {
	cmds := [][]int{{10}, {20}, {30}}
	const slots = 4
	pattern := model.PatternFromCrashes(3, nil)
	reg := obs.NewRegistry()
	sampler := rsm.SamplerForLog(pattern, 80, 6)
	aut := rsm.NewSharedLog(cmds, slots).WithMetrics(reg).WithSampler(sampler)
	res, err := sim.Run(sim.Exec{
		Automaton: aut,
		Pattern:   pattern,
		History:   sampler,
		Scheduler: &starveScheduler{inner: sim.NewFairScheduler(6, 0.8, 3), victim: 2, until: 4000},
		MaxSteps:  200000,
		StopWhen:  rsm.AllAppended(pattern, slots),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("laggard never caught up")
	}
	ref := res.Config.States[0].(rsm.LogHolder).Entries()
	lag := res.Config.States[2].(rsm.LogHolder).Entries()
	if len(ref) != slots || len(lag) != slots {
		t.Fatalf("log lengths: p0=%d p2=%d, want %d", len(ref), len(lag), slots)
	}
	for i := range ref {
		if ref[i] != lag[i] {
			t.Fatalf("laggard diverged at slot %d: %v vs %v", i, lag, ref)
		}
	}
	assertDeltaTransport(t, reg, 3)
}
