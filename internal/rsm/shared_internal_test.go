package rsm

import (
	"testing"

	"nuconsensus/internal/consensus"
	"nuconsensus/internal/model"
	"nuconsensus/internal/quorum"
)

// TestDeliveryToRetiredSlotKeepsDeltaChain: a SlotPayload for a slot that
// progress gossip already retired must not panic, and in shared mode its
// piggybacked history delta must still be applied — dropping it would break
// the sender's per-link version chain for every later slot.
func TestDeliveryToRetiredSlotKeepsDeltaChain(t *testing.T) {
	aut := NewSharedLog([][]int{{1}, {2}, {3}}, 3)
	pattern := model.PatternFromCrashes(3, nil)
	hist := PairForLog(pattern, 0, 9)

	st := aut.InitState(0).(*logState)
	// Fabricate a just-retired slot 0: this process decided it, opened slot
	// 1, and then learned every peer passed it too.
	st.slot = 1
	st.entries = append(st.entries, NoOp)
	st.progress = []int{1, 1, 1}
	st.instances[1] = aut.newInstance(0, st)
	st.retire()
	if _, live := st.instances[0]; live {
		t.Fatal("slot 0 should have retired")
	}

	d := quorum.Delta{To: 2, Adds: []quorum.DeltaEntry{
		{R: 1, Q: model.SetOf(1, 2)},
		{R: 2, Q: model.SetOf(1, 2)},
	}}
	m := &model.Message{From: 1, To: 0, Seq: 1,
		Payload: SlotPayload{Slot: 0, Inner: consensus.LeadDeltaPayload{K: 1, V: 2, Delta: d}}}
	ns, _ := aut.Step(0, st, m, hist.Output(0, 1))
	got := ns.(*logState)
	if got.appliedVer[1] != 2 {
		t.Errorf("appliedVer[1] = %d, want 2: retired-slot delta must still advance the chain", got.appliedVer[1])
	}
	if got.store.v.Len() != 2 {
		t.Errorf("store has %d entries, want 2: retired-slot delta's adds never reached the shared store", got.store.v.Len())
	}
	if _, live := got.instances[0]; live {
		t.Error("delivery must not resurrect a retired instance")
	}
}

// TestDeliveryToUnknownSlotIgnored: a slot number that was never opened
// (far ahead of the current one) is ignored without panicking, in both
// modes.
func TestDeliveryToUnknownSlotIgnored(t *testing.T) {
	pattern := model.PatternFromCrashes(3, nil)
	hist := PairForLog(pattern, 0, 9)
	for _, aut := range []*Log{
		NewLog([][]int{{1}, {2}, {3}}, 3),
		NewSharedLog([][]int{{1}, {2}, {3}}, 3),
	} {
		st := aut.InitState(0)
		m := &model.Message{From: 2, To: 0, Seq: 1,
			Payload: SlotPayload{Slot: 7, Inner: consensus.ReportPayload{K: 1, V: 5}}}
		ns, _ := aut.Step(0, st, m, hist.Output(0, 1))
		if _, live := ns.(*logState).instances[7]; live {
			t.Errorf("shared=%v: unknown slot must not open an instance", aut.Shared())
		}
	}
}

// TestPumpCursorSurvivesMidCycleRetirement: the round-robin cursor over
// older live instances must stay valid when retirement shrinks (or empties)
// the set between pump steps.
func TestPumpCursorSurvivesMidCycleRetirement(t *testing.T) {
	aut := NewLog([][]int{{1}, {2}, {3}}, 3)
	pattern := model.PatternFromCrashes(3, nil)
	hist := PairForLog(pattern, 0, 5)

	st := aut.InitState(0).(*logState)
	// Fabricate a filled log whose three instances all linger as "older"
	// (peers have not confirmed progress yet), with the cursor mid-cycle.
	st.slot = 3
	st.entries = []int{NoOp, NoOp, NoOp}
	st.progress = []int{3, 0, 0}
	st.instances[1] = aut.newInstance(0, st)
	st.instances[2] = aut.newInstance(0, st)
	st.pump = 2
	st.steps = pumpPeriod - 1 // the very next step pumps

	ns, _ := aut.Step(0, st, nil, hist.Output(0, 1))
	cur := ns.(*logState)
	if len(cur.instances) != 3 {
		t.Fatalf("live instances = %d, want 3", len(cur.instances))
	}

	// Peers announce progress 2 mid-cycle: slots 0 and 1 retire while the
	// cursor points past the shrunken list.
	for _, from := range []model.ProcessID{1, 2} {
		n, _ := aut.Step(0, cur, &model.Message{From: from, To: 0, Seq: 1, Payload: ProgressPayload{Slot: 2}}, hist.Output(0, 2))
		cur = n.(*logState)
	}
	if got := cur.olderSlots(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("older slots after retirement = %v, want [2]", got)
	}

	// Keep stepping through several pump cycles: the cursor must keep
	// selecting the one surviving slot, and a final retirement emptying the
	// set must also be safe.
	for i := 0; i < 3*pumpPeriod; i++ {
		n, _ := aut.Step(0, cur, nil, hist.Output(0, model.Time(3+i)))
		cur = n.(*logState)
	}
	n, _ := aut.Step(0, cur, &model.Message{From: 1, To: 0, Seq: 2, Payload: ProgressPayload{Slot: 3}}, hist.Output(0, 20))
	cur = n.(*logState)
	n, _ = aut.Step(0, cur, &model.Message{From: 2, To: 0, Seq: 2, Payload: ProgressPayload{Slot: 3}}, hist.Output(0, 21))
	cur = n.(*logState)
	if len(cur.instances) != 0 {
		t.Fatalf("instances after full retirement = %d, want 0", len(cur.instances))
	}
	for i := 0; i < 2*pumpPeriod; i++ {
		n, _ := aut.Step(0, cur, nil, hist.Output(0, model.Time(22+i)))
		cur = n.(*logState)
	}
}
