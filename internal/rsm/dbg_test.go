package rsm_test

import (
	"context"
	"fmt"
	"testing"

	"nuconsensus/internal/model"
	"nuconsensus/internal/netrun"
	"nuconsensus/internal/rsm"
	"nuconsensus/internal/substrate"
)

func TestDebugTCPRSMStuck(t *testing.T) {
	for seed := int64(4); seed <= 9; seed++ {
		pattern := model.PatternFromCrashes(3, nil)
		res, err := netrun.New().Run(context.Background(), rsm.NewLog([][]int{{7}, {8}, {9}}, 3), rsm.PairForLog(pattern, 100, seed), pattern, substrate.Options{
			Seed:            seed,
			MaxSteps:        600000,
			StopWhenDecided: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("seed=%d decided=%v ticks=%d\n", seed, res.Decided, res.Ticks)
		if !res.Decided {
			for p, s := range res.Config.States {
				fmt.Printf("  p%d: %s\n", p, rsm.DebugState(s))
			}
		}
	}
}
