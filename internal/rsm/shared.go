// Shared-detector runtime for the replicated log.
//
// In the default (owned) mode every live slot instance owns a full copy of
// its process's quorum histories and every LEAD/PROP message carries a
// complete clone — per-slot live state and bytes-on-wire both scale with
// the total history size. In shared mode (NewSharedLog) each process holds
// ONE versioned history store (quorum.Versioned) that all its live slot
// instances read and write through the consensus.HistoryStore interface,
// and outgoing LEAD/PROP messages carry (baseVersion, delta) against the
// version this process last shipped to that destination. Receivers apply
// the delta to their own shared store before handing the inner instance a
// history-free payload.
//
// Delta chaining is sound because every substrate in this repository
// delivers FIFO per link and delta payloads never implement
// model.SupersededPayload (so inboxes cannot collapse one): the deltas a
// process receives from one sender arrive in send order, each based
// exactly on the previous one's To version. A receiver whose base has
// been compacted away (or a fresh delta after the sender's floor passed
// it) gets a full snapshot (Delta.Base == 0) instead — the
// rsm.hist.full_fallbacks counter measures how rarely that happens.
package rsm

import (
	"math/bits"

	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
	"nuconsensus/internal/obs"
	"nuconsensus/internal/quorum"
)

// NewSharedLog returns the replicated-log automaton in shared-store mode:
// one versioned history store and one failure-detector sample stream per
// process, shared by all live slot instances, with delta-encoded history
// transport. Log semantics (decided entries) are the same as NewLog's;
// only the history plumbing differs.
func NewSharedLog(cmds [][]int, slots int) *Log {
	a := NewLog(cmds, slots)
	a.shared = true
	return a
}

// Shared reports whether the log runs in shared-store mode.
func (a *Log) Shared() bool { return a.shared }

// WithMetrics attaches an obs metrics registry, pre-resolving the counters
// on the hot path (PR-6 discipline). Safe to call on either mode; the
// delta counters only move in shared mode.
func (a *Log) WithMetrics(reg *obs.Registry) *Log {
	a.metrics = &logMetrics{
		deltaHits:     reg.Counter("rsm.hist.delta_hits"),
		fullFallbacks: reg.Counter("rsm.hist.full_fallbacks"),
		deltaGaps:     reg.Counter("rsm.hist.delta_gaps"),
		storeBytes:    reg.Gauge("rsm.hist.store_bytes"),
		storeEntries:  reg.Gauge("rsm.hist.store_entries"),
		fdEpochs:      reg.Counter("rsm.fd.epochs"),
		parkedMsgs:    reg.Counter("rsm.parked_msgs"),
		parkedReplay:  reg.Counter("rsm.parked_replayed"),
	}
	return a
}

// WithSampler attaches the shared failure-detector sampler whose samples
// drive this log, subscribing the epoch-fanout counter: every epoch
// change any process's module announces is one rsm.fd.epochs increment.
func (a *Log) WithSampler(s *fd.Sampler) *Log {
	a.sampler = s
	s.Subscribe(func(model.ProcessID, fd.Sample) {
		if a.metrics != nil {
			a.metrics.fdEpochs.Add(1)
		}
	})
	return a
}

// Sampler returns the attached sampler (nil if none).
func (a *Log) Sampler() *fd.Sampler { return a.sampler }

// logMetrics holds the pre-resolved obs instruments. All methods are
// nil-receiver-safe so unmetered runs pay only a nil check.
type logMetrics struct {
	deltaHits     *obs.Counter
	fullFallbacks *obs.Counter
	deltaGaps     *obs.Counter
	storeBytes    *obs.Gauge // high-water wire size of one process's store
	storeEntries  *obs.Gauge // high-water entry count of one process's store
	fdEpochs      *obs.Counter
	// parkedMsgs / parkedReplay count messages entering and leaving the
	// park buffers (see parkedMsg). Both are monotone counters — the live
	// parked population is their difference — because only commutative
	// instruments keep metric dumps deterministic under concurrency.
	parkedMsgs   *obs.Counter
	parkedReplay *obs.Counter
}

func (m *logMetrics) hit() {
	if m != nil {
		m.deltaHits.Add(1)
	}
}

func (m *logMetrics) fallback() {
	if m != nil {
		m.fullFallbacks.Add(1)
	}
}

func (m *logMetrics) gap() {
	if m != nil {
		m.deltaGaps.Add(1)
	}
}

func (m *logMetrics) parked() {
	if m != nil {
		m.parkedMsgs.Add(1)
	}
}

func (m *logMetrics) replayed(n int) {
	if m != nil {
		m.parkedReplay.Add(int64(n))
	}
}

// sharedStore adapts one process's quorum.Versioned to the
// consensus.HistoryStore interface. CloneStore returns the receiver: the
// owning logState clones the Versioned exactly once per step
// (CloneState) and rebinds every cloned instance, so the per-instance
// clone-then-mutate discipline costs O(1) per instance instead of
// O(history) per instance.
type sharedStore struct {
	v *quorum.Versioned
	// lastSizedVer throttles the O(entries) wire-size walk behind version
	// changes, so the per-step gauge update is O(1) in steady state.
	lastSizedVer uint64
	wireBytes    int
}

func newSharedStore(n int) *sharedStore {
	return &sharedStore{v: quorum.NewVersioned(n)}
}

func (s *sharedStore) Add(r model.ProcessID, q model.ProcessSet) { s.v.Add(r, q) }

func (s *sharedStore) Import(h quorum.Histories) {
	if h != nil {
		s.v.Import(h)
	}
}

func (s *sharedStore) Distrusts(p, q model.ProcessID) bool { return s.v.Distrusts(p, q) }

func (s *sharedStore) ConsideredFaulty(p model.ProcessID) model.ProcessSet {
	return s.v.ConsideredFaulty(p)
}

// Outgoing returns nil: shared-mode payloads carry no inline histories —
// the transport ships versioned deltas instead (wrapShared).
func (s *sharedStore) Outgoing() quorum.Histories { return nil }

func (s *sharedStore) CloneStore() consensus.HistoryStore { return s }

func (s *sharedStore) clone() *sharedStore {
	return &sharedStore{v: s.v.Clone(), lastSizedVer: s.lastSizedVer, wireBytes: s.wireBytes}
}

// sizeBytes returns the exact wire size of the store's entries (the bytes
// a full snapshot's add list would occupy), recomputed only when the
// version moved.
func (s *sharedStore) sizeBytes() int {
	if s.v.Version() != s.lastSizedVer {
		total := 0
		for r, set := range s.v.Histories() {
			for q := range set {
				total += uvarintLen(uint64(r)) + uvarintLen(uint64(q))
			}
		}
		s.wireBytes = total
		s.lastSizedVer = s.v.Version()
	}
	return s.wireBytes
}

// uvarintLen is the LEB128 length of v (the wire codec's varint).
func uvarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

// wrapShared converts an inner instance's sends into slot-tagged,
// delta-encoded payloads: LEAD/PROP (whose Hist is nil in shared mode)
// become LeadDeltaPayload/ProposalDeltaPayload carrying everything this
// process's store gained since the version last shipped to that
// destination. Per-link FIFO delivery makes the per-destination chain
// airtight; sends within one step to the same destination chain through
// sentVer just like sends in different steps.
func (s *logState) wrapShared(slot int, sends []model.Send) []model.Send {
	out := make([]model.Send, len(sends))
	for i, snd := range sends {
		pl := snd.Payload
		switch p := pl.(type) {
		case consensus.LeadPayload:
			pl = consensus.LeadDeltaPayload{K: p.K, V: p.V, Delta: s.deltaFor(snd.To)}
		case consensus.ProposalPayload:
			pl = consensus.ProposalDeltaPayload{K: p.K, V: p.V, HasV: p.HasV, Delta: s.deltaFor(snd.To)}
		}
		out[i] = model.Send{To: snd.To, Payload: SlotPayload{Slot: slot, Inner: pl}}
	}
	return out
}

func (s *logState) deltaFor(to model.ProcessID) quorum.Delta {
	d := s.store.v.DeltaSince(s.sentVer[to])
	s.sentVer[to] = d.To
	return d
}

// applyIncoming runs on every slot-wrapped payload a shared-mode process
// receives: delta payloads are applied to the shared store and replaced
// by their history-free plain forms before the inner instance sees them.
// Non-delta payloads (REP, SAW, ACK — and LEAD/PROP from an owned-mode
// peer, which cannot occur in practice) pass through untouched.
func (s *logState) applyIncoming(from model.ProcessID, inner model.Payload, m *logMetrics) model.Payload {
	switch p := inner.(type) {
	case consensus.LeadDeltaPayload:
		s.applyDelta(from, p.Delta, m)
		return p.Plain()
	case consensus.ProposalDeltaPayload:
		s.applyDelta(from, p.Delta, m)
		return p.Plain()
	}
	return inner
}

func (s *logState) applyDelta(from model.ProcessID, d quorum.Delta, m *logMetrics) {
	switch {
	case d.IsSnapshot():
		m.fallback()
	case d.Base <= s.appliedVer[from]:
		m.hit()
	default:
		// A base beyond what we applied means the chain skipped — which
		// per-link FIFO delivery makes impossible under every built-in
		// scheduler and substrate. Count it loudly (the counter pins 0 in
		// tests); the adds below are still true facts and still applied.
		m.gap()
	}
	s.store.v.Apply(d)
	if d.To > s.appliedVer[from] {
		s.appliedVer[from] = d.To
	}
}

// compactStore advances the shared store's compaction floor to the lowest
// version shipped to any destination: every future outgoing delta bases
// at or above it, so the discarded log prefix can never be asked for
// again. Called once per step in shared mode.
func (s *logState) compactStore(m *logMetrics) {
	min := s.sentVer[0]
	for _, v := range s.sentVer[1:] {
		if v < min {
			min = v
		}
	}
	s.store.v.Compact(min)
	if m != nil {
		m.storeBytes.Max(int64(s.store.sizeBytes()))
		m.storeEntries.Max(int64(s.store.v.Len()))
	}
}

// StateStats reports the live-state footprint of one process's log state,
// for the long-log scale experiment (E17): how much history the state
// holds across all live instances (the shared store counted once) and how
// many instances are live.
type StateStats struct {
	LiveInstances int
	HistEntries   int    // total (process, quorum) entries held
	StoreVersion  uint64 // shared mode: version counter; 0 in owned mode
	StoreBytes    int    // shared mode: exact wire size of the store
}

// StatsOf computes StateStats for a log state (zero value for other
// states).
func StatsOf(st model.State) StateStats {
	s, ok := st.(*logState)
	if !ok {
		return StateStats{}
	}
	stats := StateStats{LiveInstances: len(s.instances)}
	if s.store != nil {
		stats.HistEntries = s.store.v.Len()
		stats.StoreVersion = s.store.v.Version()
		stats.StoreBytes = s.store.sizeBytes()
		return stats
	}
	for _, inst := range s.instances {
		stats.HistEntries += consensus.HistoryLen(inst)
	}
	return stats
}

// SamplerForLog wraps PairForLog in a shared fd.Sampler: one (Ω, Σν+)
// module pair per process, queried once per logical tick, fanning
// epoch-stamped samples out to every live slot instance.
func SamplerForLog(pattern *model.FailurePattern, stabilize model.Time, seed int64) *fd.Sampler {
	return fd.NewSampler(PairForLog(pattern, stabilize, seed))
}
