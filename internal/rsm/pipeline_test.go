package rsm_test

import (
	"testing"

	"nuconsensus/internal/model"
	"nuconsensus/internal/rsm"
	"nuconsensus/internal/sim"
)

// testSink collects sunk entries per process, in arrival order.
type testSink struct {
	entries map[model.ProcessID][]sunk
}

type sunk struct {
	slot int
	v    int
}

func newTestSink() *testSink { return &testSink{entries: map[model.ProcessID][]sunk{}} }

func (s *testSink) OnEntry(p model.ProcessID, slot, v int) {
	s.entries[p] = append(s.entries[p], sunk{slot, v})
}

// runPipelined drives a pipelined (optionally sinking) log to completion.
func runPipelined(t *testing.T, cmds [][]int, slots, depth int, crashes map[model.ProcessID]model.Time, seed int64, sink *testSink, shared bool) ([][]int, bool, int) {
	t.Helper()
	n := len(cmds)
	pattern := model.PatternFromCrashes(n, crashes)
	var aut *rsm.Log
	var hist model.History
	if shared {
		sampler := rsm.SamplerForLog(pattern, 80, seed)
		aut = rsm.NewSharedLog(cmds, slots).WithSampler(sampler)
		hist = sampler
	} else {
		aut = rsm.NewLog(cmds, slots)
		hist = rsm.PairForLog(pattern, 80, seed)
	}
	aut = aut.WithPipeline(depth)
	stop := rsm.AllAppended(pattern, slots)
	if sink != nil {
		aut = aut.WithEntrySink(sink)
		// Sink mode keeps no entries in the state; stop on the sink's view.
		correct := pattern.Correct()
		stop = func(c *model.Configuration, _ model.Time) bool {
			done := true
			correct.ForEach(func(p model.ProcessID) {
				if len(sink.entries[p]) < slots {
					done = false
				}
			})
			return done
		}
	}
	res, err := sim.Run(sim.Exec{
		Automaton: aut,
		Pattern:   pattern,
		History:   hist,
		Scheduler: sim.NewFairScheduler(seed, 0.8, 3),
		MaxSteps:  200000,
		StopWhen:  stop,
	})
	if err != nil {
		t.Fatal(err)
	}
	logs := make([][]int, n)
	for i, s := range res.Config.States {
		if lh, ok := s.(rsm.LogHolder); ok {
			logs[i] = lh.Entries()
		}
	}
	return logs, res.Stopped, res.Steps
}

// TestPipelinedAgreement: with k slots in flight, correct logs still agree
// slot-for-slot, every entry is someone's command or a no-op, and no
// command is decided into two different slots more often than the window
// permits — table-driven across depths, modes and adversarial seeds (short
// stabilization keeps the pre-GST failure-detector noise in play).
func TestPipelinedAgreement(t *testing.T) {
	cases := []struct {
		name    string
		depth   int
		shared  bool
		crashes map[model.ProcessID]model.Time
	}{
		{"depth2-owned", 2, false, nil},
		{"depth4-owned", 4, false, map[model.ProcessID]model.Time{3: 60}},
		{"depth2-shared", 2, true, map[model.ProcessID]model.Time{3: 60}},
		{"depth4-shared", 4, true, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				cmds := [][]int{{10, 11, 12}, {20, 21}, {30, 31}, {40}}
				const slots = 8
				logs, done, _ := runPipelined(t, cmds, slots, tc.depth, tc.crashes, seed, nil, tc.shared)
				if !done {
					t.Fatalf("seed=%d: log never filled", seed)
				}
				pattern := model.PatternFromCrashes(4, tc.crashes)
				var ref []int
				pattern.Correct().ForEach(func(p model.ProcessID) {
					if ref == nil {
						ref = logs[p]
						return
					}
					if len(logs[p]) != slots {
						t.Fatalf("seed=%d: p%d has %d entries, want %d", seed, p, len(logs[p]), slots)
					}
					for i := range ref {
						if logs[p][i] != ref[i] {
							t.Fatalf("seed=%d: logs diverge at slot %d: %v vs %v", seed, i, logs[p], ref)
						}
					}
				})
				valid := map[int]bool{rsm.NoOp: true}
				for _, qs := range cmds {
					for _, c := range qs {
						valid[c] = true
					}
				}
				for _, v := range ref {
					if !valid[v] {
						t.Fatalf("seed=%d: log contains unproposed command %d", seed, v)
					}
				}
			}
		})
	}
}

// TestPipelinedDrainsCommands: pipelining must not starve anyone — with
// slots to spare, every process's commands land.
func TestPipelinedDrainsCommands(t *testing.T) {
	cmds := [][]int{{1, 2}, {3}, {4}}
	logs, done, _ := runPipelined(t, cmds, 10, 4, nil, 3, nil, true)
	if !done {
		t.Fatal("log never filled")
	}
	appended := map[int]bool{}
	for _, v := range logs[0] {
		appended[v] = true
	}
	for p, qs := range cmds {
		for _, c := range qs {
			if !appended[c] {
				t.Errorf("p%d's command %d never appended in %v", p, c, logs[0])
			}
		}
	}
}

// TestEntrySinkOrder: sink mode delivers exactly the appended entries, in
// slot order per process, while the state itself retains none of them.
func TestEntrySinkOrder(t *testing.T) {
	sink := newTestSink()
	cmds := [][]int{{10, 11}, {20}, {30}}
	const slots = 6
	logs, done, _ := runPipelined(t, cmds, slots, 2, nil, 5, sink, true)
	if !done {
		t.Fatal("log never filled")
	}
	for p := model.ProcessID(0); p < 3; p++ {
		got := sink.entries[p]
		if len(got) < slots {
			t.Fatalf("p%d sank %d entries, want >= %d", p, len(got), slots)
		}
		for i, e := range got[:slots] {
			if e.slot != i {
				t.Fatalf("p%d entry %d has slot %d (out of order): %v", p, i, e.slot, got)
			}
		}
		if len(logs[p]) != 0 {
			t.Fatalf("p%d retained %d entries in sink mode", p, len(logs[p]))
		}
	}
	// All correct sinks agree on the decided prefix.
	for p := model.ProcessID(1); p < 3; p++ {
		for i := 0; i < slots; i++ {
			if sink.entries[p][i].v != sink.entries[0][i].v {
				t.Fatalf("sinks diverge at slot %d: p%d=%d p0=%d", i, p, sink.entries[p][i].v, sink.entries[0][i].v)
			}
		}
	}
}

// TestInject: commands injected mid-run are forwarded and eventually
// appended, and injecting before the announce step produces no duplicate
// CommandPayload broadcast.
func TestInject(t *testing.T) {
	aut := rsm.NewLog([][]int{{}, {}, {}}, 4)
	st := aut.InitState(0)
	// Before the first step: announce has not run, so Inject stays silent.
	st, sends := aut.Inject(st, 7)
	if len(sends) != 0 {
		t.Fatalf("pre-announce Inject broadcast %d sends, want 0", len(sends))
	}
	// First step performs the announce, forwarding the injected command.
	st, out := aut.Step(0, st, nil, nil)
	var cmdSends int
	for _, s := range out {
		if c, ok := s.Payload.(rsm.CommandPayload); ok {
			if c.Cmd != 7 {
				t.Fatalf("announced command %d, want 7", c.Cmd)
			}
			cmdSends++
		}
	}
	if cmdSends != 2 {
		t.Fatalf("announce forwarded to %d peers, want 2", cmdSends)
	}
	// After the announce, Inject broadcasts immediately.
	_, sends = aut.Inject(st, 8)
	cmdSends = 0
	for _, s := range sends {
		if c, ok := s.Payload.(rsm.CommandPayload); ok && c.Cmd == 8 {
			cmdSends++
		}
	}
	if cmdSends != 2 {
		t.Fatalf("post-announce Inject forwarded to %d peers, want 2", cmdSends)
	}
}

// TestFloorOf starts at zero and the exported accessor tolerates foreign
// states.
func TestFloorOf(t *testing.T) {
	aut := rsm.NewLog([][]int{{1}, {2}}, 2)
	if got := rsm.FloorOf(aut.InitState(0)); got != 0 {
		t.Fatalf("initial floor = %d, want 0", got)
	}
	if got := rsm.FloorOf(nonLogState{}); got != 0 {
		t.Fatalf("foreign-state floor = %d, want 0", got)
	}
}
