package rsm_test

import (
	"context"
	"testing"

	"nuconsensus/internal/model"
	"nuconsensus/internal/netrun"
	"nuconsensus/internal/rsm"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/substrate"
)

// runLog drives a replicated log to completion and returns each process's
// final entries.
func runLog(t *testing.T, cmds [][]int, slots int, crashes map[model.ProcessID]model.Time, seed int64) ([][]int, bool) {
	t.Helper()
	n := len(cmds)
	pattern := model.PatternFromCrashes(n, crashes)
	aut := rsm.NewLog(cmds, slots)
	res, err := sim.Run(sim.Exec{
		Automaton: aut,
		Pattern:   pattern,
		History:   rsm.PairForLog(pattern, 80, seed),
		Scheduler: sim.NewFairScheduler(seed, 0.8, 3),
		MaxSteps:  120000,
		StopWhen:  rsm.AllAppended(pattern, slots),
	})
	if err != nil {
		t.Fatal(err)
	}
	logs := make([][]int, n)
	for i, s := range res.Config.States {
		if lh, ok := s.(rsm.LogHolder); ok {
			logs[i] = lh.Entries()
		}
	}
	return logs, res.Stopped
}

// TestReplicatedLogAgreement: correct processes end with identical logs,
// and every non-noop entry was somebody's command.
func TestReplicatedLogAgreement(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		cmds := [][]int{{10, 11}, {20}, {30, 31}, {40}}
		crashes := map[model.ProcessID]model.Time{3: 60}
		logs, done := runLog(t, cmds, 4, crashes, seed)
		if !done {
			t.Fatalf("seed=%d: log never filled", seed)
		}
		pattern := model.PatternFromCrashes(4, crashes)
		var ref []int
		pattern.Correct().ForEach(func(p model.ProcessID) {
			if ref == nil {
				ref = logs[p]
				return
			}
			if len(logs[p]) != len(ref) {
				t.Fatalf("seed=%d: %v has %d entries, want %d", seed, p, len(logs[p]), len(ref))
			}
			for i := range ref {
				if logs[p][i] != ref[i] {
					t.Fatalf("seed=%d: logs diverge at slot %d: %v vs %v", seed, i, logs[p], ref)
				}
			}
		})
		// Validity: every entry is a proposed command or a no-op.
		valid := map[int]bool{rsm.NoOp: true}
		for _, qs := range cmds {
			for _, c := range qs {
				valid[c] = true
			}
		}
		for _, v := range ref {
			if !valid[v] {
				t.Fatalf("seed=%d: log contains unproposed command %d", seed, v)
			}
		}
		t.Logf("seed=%d: log %v", seed, ref)
	}
}

// TestReplicatedLogDrainsCommands: in a failure-free run with enough slots,
// every process gets all its commands appended (each slot decides some
// pending command, and processes retry until theirs lands).
func TestReplicatedLogDrainsCommands(t *testing.T) {
	cmds := [][]int{{1}, {2}, {3}}
	logs, done := runLog(t, cmds, 6, nil, 2)
	if !done {
		t.Fatal("log never filled")
	}
	appended := map[int]bool{}
	for _, v := range logs[0] {
		appended[v] = true
	}
	for p, qs := range cmds {
		for _, c := range qs {
			if !appended[c] {
				t.Errorf("p%d's command %d never appended in %v", p, c, logs[0])
			}
		}
	}
}

func TestNewLogValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("too small", func() { rsm.NewLog([][]int{{1}}, 1) })
	mustPanic("zero slots", func() { rsm.NewLog([][]int{{1}, {2}}, 0) })
}

// TestReplicatedLogOverTCP runs the full SMR stack over real sockets.
func TestReplicatedLogOverTCP(t *testing.T) {
	cmds := [][]int{{7}, {8}, {9}}
	const slots = 3
	pattern := model.PatternFromCrashes(3, nil)
	// The tick budget is shared across goroutines, so a spinning process
	// burns it on behalf of a socket-delayed laggard — be generous.
	res, err := netrun.New().Run(context.Background(), rsm.NewLog(cmds, slots), rsm.PairForLog(pattern, 100, 4), pattern, substrate.Options{
		Seed:            4,
		MaxSteps:        3_000_000,
		StopWhenDecided: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided {
		t.Fatalf("TCP log never filled (%d ticks)", res.Ticks)
	}
	var ref []int
	for p := 0; p < 3; p++ {
		entries := res.Config.States[p].(rsm.LogHolder).Entries()
		if ref == nil {
			ref = entries
		} else if len(entries) != len(ref) {
			t.Fatalf("log lengths diverge: %v vs %v", entries, ref)
		} else {
			for i := range ref {
				if entries[i] != ref[i] {
					t.Fatalf("logs diverge: %v vs %v", entries, ref)
				}
			}
		}
	}
	t.Logf("TCP replicated log: %v (%d wire bytes)", ref, res.BytesSent)
}

func TestDebugStateRenders(t *testing.T) {
	aut := rsm.NewLog([][]int{{1}, {2}}, 2)
	s := aut.InitState(0)
	if got := rsm.DebugState(s); got == "" || got[:5] != "slot=" {
		t.Errorf("DebugState = %q", got)
	}
	if got := rsm.DebugState(nonLogState{}); got == "" {
		t.Error("DebugState must render foreign states too")
	}
}

type nonLogState struct{}

func (nonLogState) CloneState() model.State { return nonLogState{} }
