// Package rsm builds a replicated log — the classic application the
// paper's introduction motivates ("consensus ... lies at the heart of many
// important problems in fault-tolerant distributed computing") — on top of
// A_nuc: one nonuniform consensus instance per log slot.
//
// Each process has a queue of commands it wants appended. For every slot it
// proposes its next unappended command (or a no-op) and runs A_nuc; the
// decided value becomes the slot's entry at every correct process, so
// correct logs are identical prefix-by-prefix (per-slot nonuniform
// agreement).
//
// Two design points are forced by *nonuniform* consensus specifically:
//
//   - No decided-value gossip. Uniform SMR broadcasts DECIDED(slot, v) so
//     laggards skip ahead — but a nonuniformly-faulty process may have
//     decided a value no correct process decided (experiment E14 measures
//     this happening in ~38% of adversarial runs), so adopting an announced
//     decision would break agreement among the correct. Laggards must run
//     their own instance to completion.
//   - Slot instances stay alive after deciding. A_nuc's termination
//     argument assumes correct processes keep taking steps; a process that
//     halted its instance upon deciding could strand a laggard waiting for
//     the stable leader's next-round message. Each step therefore also
//     advances one older live instance, round-robin.
//
// Retirement is still possible — safely — through progress gossip: once
// every process is known to have passed a slot, its instance is discarded.
package rsm

import (
	"fmt"
	"sort"

	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
)

// NoOp is proposed by processes with empty command queues; it never enters
// the replicated log's visible command stream.
const NoOp = -1

// pumpPeriod throttles old-instance pumping to one inner step per this many
// outer steps (see Log.Step).
const pumpPeriod = 4

// SlotPayload wraps a consensus payload with its slot number.
type SlotPayload struct {
	Slot  int
	Inner model.Payload
}

// Kind implements model.Payload.
func (p SlotPayload) Kind() string { return p.Inner.Kind() }

// String implements model.Payload.
func (p SlotPayload) String() string { return fmt.Sprintf("s%d/%s", p.Slot, p.Inner) }

// CommandPayload forwards a client command to every replica: leader-based
// consensus decides the leader's proposal, so a command only lands once the
// current leader knows about it. Replicas with empty queues re-propose
// outstanding forwarded commands instead of no-ops.
type CommandPayload struct {
	Cmd int
}

// Kind implements model.Payload.
func (CommandPayload) Kind() string { return "CMD" }

// String implements model.Payload.
func (c CommandPayload) String() string { return fmt.Sprintf("CMD(%d)", c.Cmd) }

// ProgressPayload announces that the sender has decided every slot below
// Slot; it drives retirement of old instances.
type ProgressPayload struct {
	Slot int
}

// Kind implements model.Payload.
func (ProgressPayload) Kind() string { return "PRGR" }

// String implements model.Payload.
func (p ProgressPayload) String() string { return fmt.Sprintf("PRGR(%d)", p.Slot) }

// SupersedesOlder implements model.SupersededPayload: progress is monotone.
func (ProgressPayload) SupersedesOlder() {}

// Log is the replicated-log automaton. Drive it with (Ω, Σν+) pair
// histories, like A_nuc itself.
type Log struct {
	n     int
	cmds  [][]int // cmds[p]: commands process p wants appended
	slots int     // stop appending after this many slots
	inner *consensus.ANuc

	shared   bool        // one shared history store per process (see shared.go)
	metrics  *logMetrics // pre-resolved obs instruments; nil if unmetered
	sampler  *fd.Sampler // shared FD sample source; nil unless attached
	pipeline int         // in-flight slot instances; <=1 means sequential
	sink     EntrySink   // decided entries leave the state; nil keeps them
}

// EntrySink receives decided entries the moment a process appends them,
// in slot order per process. Sink mode keeps the automaton state O(window)
// instead of O(log length): entries are not retained in logState, so
// CloneState stops scaling with how much has been decided. The sink is a
// per-process external resource (like the shared fd.Sampler): it is only
// sound on linear executions — sim.Run and the concurrent substrates —
// never under explore, which branches states.
type EntrySink interface {
	OnEntry(p model.ProcessID, slot int, v int)
}

// RoundSink is an optional EntrySink extension: sinks that also implement
// it additionally learn how many A_nuc rounds the slot's instance had
// reached when this process observed the decision — the per-slot consensus
// cost a tracing pipeline attributes to every command in the slot. Round
// counts are per-process observations (a laggard sees a later round than
// the process that drove the decision), which is exactly what a span
// emitted by that process should carry.
type RoundSink interface {
	OnEntryRound(p model.ProcessID, slot int, v int, round int)
}

// WithPipeline keeps up to k slot instances in flight: slots
// [frontier, frontier+k) all run A_nuc concurrently, and each outer step
// advances one of them round-robin, so the per-step send budget — and
// therefore msgs/slot — stays flat as k grows. Decisions can land out of
// order; entries are still appended in slot order, and a command decided
// in two slots (possible when a re-proposal races its own decision) is the
// serving layer's dedup problem. k <= 1 is the sequential log, unchanged.
func (a *Log) WithPipeline(k int) *Log {
	if k < 1 {
		panic("rsm: pipeline depth must be >= 1")
	}
	a.pipeline = k
	return a
}

// WithEntrySink routes appended entries to sink instead of retaining them
// in the state. See EntrySink for the linear-execution restriction.
func (a *Log) WithEntrySink(sink EntrySink) *Log {
	if sink == nil {
		panic("rsm: nil entry sink")
	}
	a.sink = sink
	return a
}

// NewLog returns the replicated-log automaton: process p wants cmds[p]
// appended, and the log closes after slots entries.
func NewLog(cmds [][]int, slots int) *Log {
	n := len(cmds)
	if n < 2 || n > model.MaxProcesses {
		panic(fmt.Sprintf("rsm: invalid system size %d", n))
	}
	if slots <= 0 {
		panic("rsm: slots must be positive")
	}
	cp := make([][]int, n)
	for i, c := range cmds {
		cp[i] = append([]int(nil), c...)
	}
	return &Log{n: n, cmds: cp, slots: slots, inner: consensus.NewANuc(make([]int, n))}
}

// Name implements model.Automaton.
func (a *Log) Name() string { return "RSM∘A_nuc" }

// N implements model.Automaton.
func (a *Log) N() int { return a.n }

// logState is one process's replicated-log state.
type logState struct {
	p       model.ProcessID
	pending []int // own commands not yet appended
	known   []int // forwarded commands from others, not yet appended
	slot    int   // current undecided slot
	slots   int   // total slots in the log
	entries []int // the log: decided values per slot

	announced bool                // own commands forwarded to the others
	instances map[int]model.State // live slot instances (current and older)
	parked    map[int][]parkedMsg // messages for slots not yet opened here
	progress  []int               // known progress of every process
	pump      int                 // round-robin cursor over older instances
	steps     int                 // own step counter (pump throttling)
	appended  int                 // entries appended (== len(entries) unless sinking)

	// Pipeline mode only (Log.pipeline > 1); nil maps otherwise.
	decided      map[int]int // out-of-order decisions >= slot, not yet appended
	decidedRound map[int]int // round observed at harvest, keyed like decided
	myProp       map[int]int // own proposal per open in-flight slot
	rr           int         // round-robin cursor over in-flight instances

	// Shared-store mode only (see shared.go); all nil/empty in owned mode.
	store      *sharedStore
	sentVer    []uint64 // per destination: store version last shipped there
	appliedVer []uint64 // per sender: that sender's version applied through
}

// parkedMsg is a message that arrived for a slot whose instance this
// process has not opened yet. A_nuc's liveness assumes reliable links: a
// process that misses, say, the stable leader's round-k LEAD message waits
// for it forever — the sender transmits each phase message exactly once.
// Lazily opened slot instances would violate that assumption if arrivals
// before the open were dropped, so they are parked instead and replayed,
// in arrival order, the moment the instance opens (see replayParked). The
// payload is stored post-delta-resolution (applyIncoming runs at arrival),
// so replay never re-applies a history delta.
type parkedMsg struct {
	from model.ProcessID
	seq  uint64
	pl   model.Payload
}

// CloneState implements model.State.
func (s *logState) CloneState() model.State {
	c := *s
	c.pending = append([]int(nil), s.pending...)
	c.known = append([]int(nil), s.known...)
	c.entries = append([]int(nil), s.entries...)
	c.progress = append([]int(nil), s.progress...)
	if s.parked != nil {
		c.parked = make(map[int][]parkedMsg, len(s.parked))
		for k, v := range s.parked {
			c.parked[k] = append([]parkedMsg(nil), v...)
		}
	}
	if s.store != nil {
		// Clone the shared store ONCE, then rebind every cloned instance:
		// the instances' own CloneStore is identity for shared stores.
		c.store = s.store.clone()
		c.sentVer = append([]uint64(nil), s.sentVer...)
		c.appliedVer = append([]uint64(nil), s.appliedVer...)
	}
	if s.decided != nil {
		c.decided = make(map[int]int, len(s.decided))
		for k, v := range s.decided {
			c.decided[k] = v
		}
	}
	if s.decidedRound != nil {
		c.decidedRound = make(map[int]int, len(s.decidedRound))
		for k, v := range s.decidedRound {
			c.decidedRound[k] = v
		}
	}
	if s.myProp != nil {
		c.myProp = make(map[int]int, len(s.myProp))
		for k, v := range s.myProp {
			c.myProp[k] = v
		}
	}
	c.instances = make(map[int]model.State, len(s.instances))
	for k, v := range s.instances {
		inst := v.CloneState()
		if s.store != nil {
			inst.(consensus.StoreBound).BindStore(c.store)
		}
		c.instances[k] = inst
	}
	return &c
}

// Entries returns the decided log so far.
func (s *logState) Entries() []int { return append([]int(nil), s.entries...) }

// Decision implements model.Decider: the log "decides" when it is full;
// drivers use it as the stop condition.
func (s *logState) Decision() (int, bool) {
	if s.slot >= s.slots {
		return s.appended, true
	}
	return 0, false
}

// LogHolder is implemented by states exposing a replicated log.
type LogHolder interface {
	Entries() []int
}

// InitState implements model.Automaton.
func (a *Log) InitState(p model.ProcessID) model.State {
	st := &logState{
		p:         p,
		pending:   append([]int(nil), a.cmds[p]...),
		slots:     a.slots,
		entries:   make([]int, 0, a.slots),
		instances: make(map[int]model.State, 2),
		progress:  make([]int, a.n),
	}
	if a.shared {
		st.store = newSharedStore(a.n)
		st.sentVer = make([]uint64, a.n)
		st.appliedVer = make([]uint64, a.n)
	}
	if a.pipeline > 1 {
		st.decided = make(map[int]int, a.pipeline)
		st.decidedRound = make(map[int]int, a.pipeline)
		st.myProp = make(map[int]int, a.pipeline)
		st.openWindow(a, nil) // nothing parked at init: no sends, no FD use
		return st
	}
	st.instances[0] = a.newInstance(p, st)
	return st
}

// newInstance opens a slot instance for p's next proposal, injecting the
// shared history store when the log runs in shared mode.
func (a *Log) newInstance(p model.ProcessID, st *logState) model.State {
	if st.store != nil {
		return a.inner.InitStateProposingWith(p, st.nextProposal(), st.store)
	}
	return a.inner.InitStateProposing(p, st.nextProposal())
}

func (s *logState) nextProposal() int {
	if len(s.pending) > 0 {
		return s.pending[0]
	}
	if len(s.known) > 0 {
		return s.known[0]
	}
	return NoOp
}

// Step implements model.Automaton.
func (a *Log) Step(p model.ProcessID, s model.State, m *model.Message, d model.FDValue) (model.State, []model.Send) {
	st := s.CloneState().(*logState)
	var out []model.Send

	// Deliver the received message to its slot's instance (if live).
	var currentGotMsg bool
	if m != nil {
		switch pl := m.Payload.(type) {
		case CommandPayload:
			st.learnCommand(a, pl.Cmd)
		case ProgressPayload:
			if pl.Slot > st.progress[m.From] {
				st.progress[m.From] = pl.Slot
				st.retire()
			}
		case SlotPayload:
			payload := pl.Inner
			if st.store != nil {
				// Apply any piggybacked history delta to the shared store
				// even when the slot has retired: the delta chain from
				// this sender must stay unbroken for later slots.
				payload = st.applyIncoming(m.From, payload, a.metrics)
			}
			if inst, live := st.instances[pl.Slot]; live {
				inner := &model.Message{From: m.From, To: m.To, Seq: m.Seq, Payload: payload}
				ns, sends := a.inner.Step(p, inst, inner, d)
				st.instances[pl.Slot] = ns
				out = append(out, st.wrap(pl.Slot, sends)...)
				currentGotMsg = pl.Slot >= st.slot
				if a.pipeline > 1 {
					if pl.Slot >= st.slot {
						out = append(out, st.harvest(a, d)...)
					}
				} else if pl.Slot == st.slot {
					out = append(out, st.checkDecided(a, d)...)
				}
			} else if pl.Slot >= st.slot && pl.Slot < st.slots {
				// The sender is ahead: it opened this slot before we did.
				// Park the message for replay when our instance opens —
				// dropping it would break the reliable-link assumption
				// A_nuc's termination proof rests on (see parkedMsg). Slots
				// below st.slot really are droppable: we decided them, and
				// retirement means every process has.
				if st.parked == nil {
					st.parked = make(map[int][]parkedMsg)
				}
				st.parked[pl.Slot] = append(st.parked[pl.Slot], parkedMsg{from: m.From, seq: m.Seq, pl: payload})
				a.metrics.parked()
			}
		default:
			panic(fmt.Sprintf("rsm: unknown payload %T", m.Payload))
		}
	}

	// Forward own commands once, so the eventual leader can propose them.
	if !st.announced {
		st.announced = true
		for _, c := range st.pending {
			out = append(out, model.Broadcast(model.FullSet(a.n).Remove(p), CommandPayload{Cmd: c})...)
		}
	}

	// Advance one in-flight instance (λ step if none just received the
	// message): the current slot sequentially, or the round-robin next of
	// the k open slots under pipelining — one inner step either way, so
	// pipelining does not inflate the per-step send budget.
	if st.slot < a.slots && !currentGotMsg {
		if a.pipeline > 1 {
			if slot, ok := st.nextInflight(a); ok {
				ns, sends := a.inner.Step(p, st.instances[slot], nil, d)
				st.instances[slot] = ns
				out = append(out, st.wrap(slot, sends)...)
				out = append(out, st.harvest(a, d)...)
			}
		} else if inst, live := st.instances[st.slot]; live {
			ns, sends := a.inner.Step(p, inst, nil, d)
			st.instances[st.slot] = ns
			out = append(out, st.wrap(st.slot, sends)...)
			out = append(out, st.checkDecided(a, d)...)
		}
	}

	// Pump one older live instance so laggards are never stranded — but
	// only every few steps. Decided A_nuc instances keep cycling rounds
	// forever (the algorithm never halts), so pumping them at full speed
	// floods laggards faster than the one-receive-per-step model lets them
	// drain, and their round-trip latency grows without bound. Throttling
	// keeps aggregate production below consumption while still advancing
	// old instances infinitely often.
	st.steps++
	if older := st.olderSlots(); len(older) > 0 && st.steps%pumpPeriod == 0 {
		slot := older[st.pump%len(older)]
		st.pump++
		ns, sends := a.inner.Step(p, st.instances[slot], nil, d)
		st.instances[slot] = ns
		out = append(out, st.wrap(slot, sends)...)
	}

	if st.store != nil {
		st.compactStore(a.metrics)
	}

	return st, out
}

// checkDecided harvests a decision of the current slot, opens the next
// instance, and gossips progress. It loops because (in principle) the next
// instance could already be decided... it cannot on creation, but keeping
// the loop makes the invariant local.
func (s *logState) checkDecided(a *Log, d model.FDValue) []model.Send {
	var out []model.Send
	for s.slot < a.slots {
		inst := s.instances[s.slot]
		v, ok := model.DecisionOf(inst)
		if !ok {
			break
		}
		round, _ := model.RoundOf(inst)
		s.appendEntry(a, v, round)
		s.forgetCommand(v)
		s.slot++
		s.progress[s.p] = s.slot
		out = append(out, model.Broadcast(model.FullSet(len(s.progress)).Remove(s.p), ProgressPayload{Slot: s.slot})...)
		if s.slot < a.slots {
			s.instances[s.slot] = a.newInstance(s.p, s)
			out = append(out, s.replayParked(a, s.slot, d)...)
		}
		s.retire()
	}
	return out
}

// appendEntry commits the decided value of the current slot: into the
// retained entries slice, or out through the sink in sink mode. round is
// the A_nuc round this process observed the decision at, forwarded to
// RoundSink implementors.
func (s *logState) appendEntry(a *Log, v, round int) {
	if a.sink != nil {
		// RoundSink first: a tracing sink emits the slot's decide span
		// before OnEntry triggers the applies that causally follow it.
		if rs, ok := a.sink.(RoundSink); ok {
			rs.OnEntryRound(s.p, s.slot, v, round)
		}
		a.sink.OnEntry(s.p, s.slot, v)
	} else {
		s.entries = append(s.entries, v)
	}
	s.appended++
}

// harvest is checkDecided's pipelined counterpart: collect decisions from
// every in-flight slot (they can land out of order), append the contiguous
// prefix at the frontier, gossip progress, and refill the window with
// fresh instances. A decided value leaves the proposal pools immediately —
// before it is appended — so the window never proposes it a second time.
func (s *logState) harvest(a *Log, d model.FDValue) []model.Send {
	end := s.slot + a.pipeline
	if end > s.slots {
		end = s.slots
	}
	for slot := s.slot; slot < end; slot++ {
		if _, done := s.decided[slot]; done {
			continue
		}
		inst, live := s.instances[slot]
		if !live {
			continue
		}
		if v, ok := model.DecisionOf(inst); ok {
			s.decided[slot] = v
			if r, has := model.RoundOf(inst); has {
				s.decidedRound[slot] = r
			}
			s.forgetCommand(v)
			delete(s.myProp, slot)
		}
	}
	var out []model.Send
	for s.slot < a.slots {
		v, ok := s.decided[s.slot]
		if !ok {
			break
		}
		round := s.decidedRound[s.slot]
		delete(s.decided, s.slot)
		delete(s.decidedRound, s.slot)
		delete(s.myProp, s.slot)
		s.appendEntry(a, v, round)
		s.slot++
		s.progress[s.p] = s.slot
		out = append(out, model.Broadcast(model.FullSet(len(s.progress)).Remove(s.p), ProgressPayload{Slot: s.slot})...)
		s.retire()
	}
	out = append(out, s.openWindow(a, d)...)
	return out
}

// openWindow opens an instance for every in-flight slot that lacks one,
// assigning each a proposal no other open slot is already carrying, and
// replays any messages that arrived for those slots before they opened.
func (s *logState) openWindow(a *Log, d model.FDValue) []model.Send {
	end := s.slot + a.pipeline
	if end > s.slots {
		end = s.slots
	}
	var out []model.Send
	for slot := s.slot; slot < end; slot++ {
		if _, done := s.decided[slot]; done {
			continue
		}
		if _, live := s.instances[slot]; live {
			continue
		}
		v := s.nextFreeProposal(a)
		s.myProp[slot] = v
		if s.store != nil {
			s.instances[slot] = a.inner.InitStateProposingWith(s.p, v, s.store)
		} else {
			s.instances[slot] = a.inner.InitStateProposing(s.p, v)
		}
		out = append(out, s.replayParked(a, slot, d)...)
	}
	return out
}

// replayParked delivers the messages that arrived for slot before its
// instance opened, in arrival order (which preserves per-sender FIFO). The
// burst of inner steps runs under one outer step: each parked message
// already paid for an outer step when it arrived, so the per-step send
// budget holds amortized. The parked list for a slot is bounded by what
// faster processes sent between opening the slot themselves and our window
// reaching it — a few rounds of phase messages per peer in practice.
func (s *logState) replayParked(a *Log, slot int, d model.FDValue) []model.Send {
	msgs := s.parked[slot]
	if len(msgs) == 0 {
		return nil
	}
	delete(s.parked, slot)
	a.metrics.replayed(len(msgs))
	var out []model.Send
	for _, pm := range msgs {
		inner := &model.Message{From: pm.from, To: s.p, Seq: pm.seq, Payload: pm.pl}
		ns, sends := a.inner.Step(s.p, s.instances[slot], inner, d)
		s.instances[slot] = ns
		out = append(out, s.wrap(slot, sends)...)
	}
	return out
}

// nextFreeProposal returns the first pending-then-known command not
// already proposed in an open in-flight slot, or NoOp.
func (s *logState) nextFreeProposal(a *Log) int {
	for _, c := range s.pending {
		if !s.proposedInWindow(a, c) {
			return c
		}
	}
	for _, c := range s.known {
		if !s.proposedInWindow(a, c) {
			return c
		}
	}
	return NoOp
}

// proposedInWindow reports whether c is my live proposal at some in-flight
// slot. The scan walks slot numbers, not the map, to stay order-free.
func (s *logState) proposedInWindow(a *Log, c int) bool {
	for slot := s.slot; slot < s.slot+a.pipeline && slot < s.slots; slot++ {
		if v, ok := s.myProp[slot]; ok && v == c {
			return true
		}
	}
	return false
}

// nextInflight picks the in-flight slot whose instance advances this step,
// rotating round-robin so every open slot — decided ones included, their
// instances must keep cycling for laggards — advances infinitely often.
func (s *logState) nextInflight(a *Log) (int, bool) {
	end := s.slot + a.pipeline
	if end > s.slots {
		end = s.slots
	}
	k := end - s.slot
	for i := 0; i < k; i++ {
		slot := s.slot + (s.rr+i)%k
		if _, live := s.instances[slot]; live {
			s.rr = (s.rr + i + 1) % k
			return slot, true
		}
	}
	return 0, false
}

// learnCommand records a forwarded command unless it is already appended,
// pending, known, or decided-in-flight. (In sink mode the entries scan is
// vacuous: a late re-learn of an appended command costs one duplicate
// slot, which the serving layer's session dedup absorbs.)
func (s *logState) learnCommand(a *Log, c int) {
	if c == NoOp {
		return
	}
	for _, v := range s.entries {
		if v == c {
			return
		}
	}
	for slot := s.slot; slot < s.slot+a.pipeline && slot < s.slots; slot++ {
		if v, ok := s.decided[slot]; ok && v == c {
			return
		}
	}
	for _, v := range s.pending {
		if v == c {
			return
		}
	}
	for _, v := range s.known {
		if v == c {
			return
		}
	}
	s.known = append(s.known, c)
}

// forgetCommand drops an appended command from the pending and known pools.
func (s *logState) forgetCommand(v int) {
	if len(s.pending) > 0 && s.pending[0] == v {
		s.pending = s.pending[1:]
	}
	for i, c := range s.known {
		if c == v {
			s.known = append(s.known[:i:i], s.known[i+1:]...)
			break
		}
	}
}

// retire discards instances below everyone's known progress: every process
// has decided those slots, so nobody can still need their messages.
func (s *logState) retire() {
	min := s.progress[0]
	for _, pr := range s.progress[1:] {
		if pr < min {
			min = pr
		}
	}
	for slot := range s.instances {
		if slot < min {
			delete(s.instances, slot)
		}
	}
}

// liveSlots lists live instances strictly below limit, in increasing
// order (the set is tiny, bounded by retirement). It backs both the pump
// cursor (limit = current slot) and DebugState (limit = all slots).
func (s *logState) liveSlots(limit int) []int {
	var out []int
	for slot := range s.instances {
		if slot < limit {
			out = append(out, slot)
		}
	}
	sort.Ints(out)
	return out
}

// olderSlots lists live instances strictly below the current slot.
func (s *logState) olderSlots() []int { return s.liveSlots(s.slot) }

// wrap slot-tags an instance's sends, delta-encoding history payloads in
// shared mode (wrapShared, shared.go).
func (s *logState) wrap(slot int, sends []model.Send) []model.Send {
	if s.store != nil {
		return s.wrapShared(slot, sends)
	}
	return wrapSends(slot, sends)
}

func wrapSends(slot int, sends []model.Send) []model.Send {
	out := make([]model.Send, len(sends))
	for i, snd := range sends {
		out[i] = model.Send{To: snd.To, Payload: SlotPayload{Slot: slot, Inner: snd.Payload}}
	}
	return out
}

// Inject appends freshly arrived commands to a process's pending queue
// outside the message-driven step cycle — the serving layer's ingress
// path. It returns the updated state plus the CommandPayload broadcasts
// forwarding the commands; if the state has not announced yet, the initial
// announce will forward them instead and no sends are produced here.
func (a *Log) Inject(s model.State, cmds ...int) (model.State, []model.Send) {
	st := s.CloneState().(*logState)
	var out []model.Send
	for _, c := range cmds {
		st.pending = append(st.pending, c)
		if st.announced {
			out = append(out, model.Broadcast(model.FullSet(a.n).Remove(st.p), CommandPayload{Cmd: c})...)
		}
	}
	return st, out
}

// FloorOf returns the retirement floor a log state knows: the minimum
// appended-slot progress across all processes. Every process has appended
// every slot below the floor, so decided values there can no longer be
// re-proposed — the serving layer keys its dedup-table compaction on it.
func FloorOf(s model.State) int {
	st, ok := s.(*logState)
	if !ok {
		return 0
	}
	min := st.progress[0]
	for _, pr := range st.progress[1:] {
		if pr < min {
			min = pr
		}
	}
	return min
}

// AllAppended returns a stop predicate: every correct process has filled
// its log.
func AllAppended(pattern *model.FailurePattern, slots int) func(*model.Configuration, model.Time) bool {
	correct := pattern.Correct()
	return func(c *model.Configuration, _ model.Time) bool {
		done := true
		correct.ForEach(func(p model.ProcessID) {
			st, ok := c.States[p].(LogHolder)
			if !ok || len(st.Entries()) < slots {
				done = false
			}
		})
		return done
	}
}

// PairForLog builds the (Ω, Σν+) history the log needs, mirroring A_nuc's
// requirements. The two modules draw from decorrelated sub-streams of the
// configuration seed (fd.DeriveSeed): passing one seed to both used to
// make the pre-stabilization Ω and Σν+ noise move in lockstep.
func PairForLog(pattern *model.FailurePattern, stabilize model.Time, seed int64) model.History {
	return fd.PairHistory{
		First:  fd.NewOmega(pattern, stabilize, fd.DeriveSeed("omega", seed)),
		Second: fd.NewSigmaNuPlus(pattern, stabilize, fd.DeriveSeed("sigmanu+", seed)),
	}
}

// DebugState renders a process's replicated-log state for diagnostics.
func DebugState(s model.State) string {
	st, ok := s.(*logState)
	if !ok {
		return fmt.Sprintf("%T", s)
	}
	live := st.liveSlots(st.slots + 1)
	cur := "nil"
	if inst, ok := st.instances[st.slot]; ok {
		if r, has := model.RoundOf(inst); has {
			cur = fmt.Sprintf("round=%d", r)
		}
	}
	return fmt.Sprintf("slot=%d entries=%v progress=%v live=%v current{%s} pending=%v known=%v",
		st.slot, st.entries, st.progress, live, cur, st.pending, st.known)
}
