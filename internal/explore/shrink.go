package explore

import (
	"nuconsensus/internal/model"
)

// Execute runs a schedule against o's automaton, pattern and menu and
// returns the final configuration. The semantics deliberately mirror
// sim.ScriptedScheduler, so a schedule that violates here also violates
// when replayed through the ordinary Replay path:
//   - an entry for a process that is crashed at the current time is
//     skipped without consuming a tick;
//   - a delivery whose link is empty degrades to λ;
//   - an FD index outside the menu (possible mid-shrink, when deleting
//     entries shifts later entries to times with different menus) makes
//     the schedule invalid: ok is false and cfg is nil.
func Execute(o Options, path []Choice) (cfg *model.Configuration, ok bool) {
	cfg = model.InitialConfiguration(o.Automaton)
	executed := 0
	for _, ch := range path {
		t := model.Time(executed + 1)
		if !o.Pattern.Alive(t).Has(ch.P) {
			continue
		}
		vs := o.Menu.Values(ch.P, t)
		if ch.FD < 0 || ch.FD >= len(vs) {
			return nil, false
		}
		var m *model.Message
		if ch.From != model.NoProcess {
			m = cfg.Buffer.OldestFrom(ch.P, ch.From)
		}
		cfg.Apply(o.Automaton, model.Step{P: ch.P, M: m, D: vs[ch.FD]})
		executed++
	}
	return cfg, true
}

// violates reports whether executing path reaches a state where o.Property
// fails. Safety properties are stable (decisions are irrevocable), so
// checking only the final configuration is sound.
func violates(o Options, path []Choice) bool {
	if o.Property == nil {
		return false
	}
	cfg, ok := Execute(o, path)
	return ok && o.Property(cfg) != nil
}

// Shrink reduces a violating schedule to a locally minimal one that still
// violates o.Property: no single entry can be removed and no adjacent
// swap yields a lexicographically smaller schedule that still violates.
// The pipeline is truncation to the first violating prefix, ddmin-style
// chunk deletion, single-entry deletion, then adjacent-swap
// canonicalization to a fixpoint. Everything is deterministic; Shrink
// panics if the input schedule does not violate.
func Shrink(o Options, path []Choice) []Choice {
	if !violates(o, path) {
		panic("explore: Shrink called on a non-violating schedule")
	}
	cur := truncateToViolation(o, path)

	// ddmin: try deleting chunks, halving the chunk size. Restart from the
	// large chunk size after any successful deletion — later deletions can
	// re-enable earlier ones.
	for size := len(cur) / 2; size >= 1; size /= 2 {
		removed := false
		for start := 0; start+size <= len(cur); {
			cand := append(append([]Choice(nil), cur[:start]...), cur[start+size:]...)
			if violates(o, cand) {
				cur = truncateToViolation(o, cand)
				removed = true
				// do not advance: the next chunk now starts here
			} else {
				start++
			}
		}
		if removed {
			size = len(cur) // restart: /=2 brings it to len/2
		}
	}

	// Adjacent-swap canonicalization: bubble toward the lexicographically
	// least violating schedule of this length.
	for changed := true; changed; {
		changed = false
		for i := 0; i+1 < len(cur); i++ {
			if !choiceLess(cur[i+1], cur[i]) {
				continue
			}
			cand := append([]Choice(nil), cur...)
			cand[i], cand[i+1] = cand[i+1], cand[i]
			if violates(o, cand) {
				cur = cand
				changed = true
			}
		}
	}
	return cur
}

// truncateToViolation cuts path at the first prefix whose final state
// violates. The caller guarantees the full path violates.
func truncateToViolation(o Options, path []Choice) []Choice {
	cfg := model.InitialConfiguration(o.Automaton)
	executed := 0
	for i, ch := range path {
		t := model.Time(executed + 1)
		if !o.Pattern.Alive(t).Has(ch.P) {
			continue
		}
		vs := o.Menu.Values(ch.P, t)
		if ch.FD < 0 || ch.FD >= len(vs) {
			break
		}
		var m *model.Message
		if ch.From != model.NoProcess {
			m = cfg.Buffer.OldestFrom(ch.P, ch.From)
		}
		cfg.Apply(o.Automaton, model.Step{P: ch.P, M: m, D: vs[ch.FD]})
		executed++
		if o.Property(cfg) != nil {
			return append([]Choice(nil), path[:i+1]...)
		}
	}
	return append([]Choice(nil), path...)
}
