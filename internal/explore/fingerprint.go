package explore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"reflect"
	"sort"
	"strconv"
	"sync"

	"nuconsensus/internal/model"
)

// Key is a 128-bit state fingerprint. Two explored states with equal keys
// are merged, so the encoding behind it must be canonical: independent of
// map iteration order, of pointer addresses, and of any String method that
// might elide fields (consensus.LeadPayload.String, for instance, omits
// the quorum histories the payload carries).
type Key [2]uint64

// Less orders keys lexicographically (used only for deterministic output).
func (k Key) Less(o Key) bool {
	if k[0] != o[0] {
		return k[0] < o[0]
	}
	return k[1] < o[1]
}

// String renders the key as 32 hex digits.
func (k Key) String() string { return fmt.Sprintf("%016x%016x", k[0], k[1]) }

// maxEncodeDepth bounds the recursion of encodeCanonical; automaton states
// are trees, so hitting it means a cyclic or degenerate state.
const maxEncodeDepth = 64

// encodeCanonical writes a canonical structural encoding of v to b. It
// walks the value with reflection — unexported fields included — sorting
// map entries by their encoded keys and dereferencing pointers, so the
// encoding is a pure function of the value's content. Nil and empty
// slices/maps encode identically (automata treat them identically), and
// Stringer implementations are deliberately ignored.
func encodeCanonical(b *bytes.Buffer, v reflect.Value, depth int) {
	if depth > maxEncodeDepth {
		panic("explore: state encoding recursion too deep (cyclic state?)")
	}
	if !v.IsValid() {
		b.WriteByte('_')
		return
	}
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			b.WriteByte('T')
		} else {
			b.WriteByte('F')
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		b.WriteString(strconv.FormatInt(v.Int(), 10))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		b.WriteString(strconv.FormatUint(v.Uint(), 10))
	case reflect.Float32, reflect.Float64:
		b.WriteString(strconv.FormatFloat(v.Float(), 'g', -1, 64))
	case reflect.String:
		s := v.String()
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteByte(':')
		b.WriteString(s)
	case reflect.Slice, reflect.Array:
		b.WriteByte('[')
		for i := 0; i < v.Len(); i++ {
			encodeCanonical(b, v.Index(i), depth+1)
			b.WriteByte(',')
		}
		b.WriteByte(']')
	case reflect.Map:
		type entry struct{ k, v string }
		entries := make([]entry, 0, v.Len())
		it := v.MapRange()
		for it.Next() {
			var kb, vb bytes.Buffer
			encodeCanonical(&kb, it.Key(), depth+1)
			encodeCanonical(&vb, it.Value(), depth+1)
			entries = append(entries, entry{kb.String(), vb.String()})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].k < entries[j].k })
		b.WriteByte('{')
		for _, e := range entries {
			b.WriteString(e.k)
			b.WriteByte('>')
			b.WriteString(e.v)
			b.WriteByte(',')
		}
		b.WriteByte('}')
	case reflect.Pointer:
		if v.IsNil() {
			b.WriteByte('_')
			return
		}
		b.WriteByte('*')
		encodeCanonical(b, v.Elem(), depth+1)
	case reflect.Interface:
		if v.IsNil() {
			b.WriteByte('_')
			return
		}
		b.WriteByte('<')
		b.WriteString(v.Elem().Type().String())
		b.WriteByte('>')
		encodeCanonical(b, v.Elem(), depth+1)
	case reflect.Struct:
		b.WriteByte('(')
		b.WriteString(v.Type().String())
		b.WriteByte(':')
		for i := 0; i < v.NumField(); i++ {
			encodeCanonical(b, v.Field(i), depth+1)
			b.WriteByte(',')
		}
		b.WriteByte(')')
	default:
		panic(fmt.Sprintf("explore: cannot canonically encode %s in a state", v.Kind()))
	}
}

// canonicalString returns the canonical encoding of an arbitrary value.
func canonicalString(x interface{}) string {
	var b bytes.Buffer
	encodeCanonical(&b, reflect.ValueOf(x), 0)
	return b.String()
}

// hash64 folds a canonical encoding into 64 bits (FNV-1a).
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// encCache memoizes message encodings: messages are immutable once sent
// and shared between cloned configurations, so within one frontier level
// each is encoded once no matter how many states its link appears in. The
// engine drops the cache after every level — messages are created per
// executed edge, so an unbounded cache would grow with the whole explored
// edge set rather than with the frontier's working set. The key is the
// message pointer; the value is a pure function of the message, so
// concurrent duplicate computation is harmless.
type encCache struct{ m sync.Map } // *model.Message -> string

// messageEncoding canonically encodes a buffered message's content. The
// sender and position are contributed by the link walk in stateKey; the
// per-sender sequence number and global arrival order are deliberately
// excluded — they do not affect future behavior, and arrival order differs
// between commuted interleavings of independent steps.
func (c *encCache) messageEncoding(m *model.Message) string {
	if s, ok := c.m.Load(m); ok {
		return s.(string)
	}
	var b bytes.Buffer
	b.WriteString(fmt.Sprintf("%T", m.Payload))
	b.WriteByte('|')
	encodeCanonical(&b, reflect.ValueOf(m.Payload), 0)
	s := b.String()
	c.m.Store(m, s)
	return s
}

// stateKey fingerprints a configuration at a given depth. procHashes[p]
// must be hash64(canonicalString(c.States[p])); the caller maintains them
// incrementally (only the stepping process's state changes per step). The
// buffer is hashed per (destination, sender) link in FIFO order, so two
// configurations reached by commuting deliveries on distinct links get the
// same key. Depth is part of the key because failure patterns and
// adversary menus are time-indexed: merging across depths would conflate
// states with different futures.
func stateKey(c *model.Configuration, depth int, procHashes []uint64, enc *encCache) Key {
	h := fnv.New128a()
	var scratch [8]byte
	binary.BigEndian.PutUint64(scratch[:], uint64(depth))
	h.Write(scratch[:])
	for _, ph := range procHashes {
		binary.BigEndian.PutUint64(scratch[:], ph)
		h.Write(scratch[:])
	}
	n := len(c.States)
	for to := 0; to < n; to++ {
		pending := c.Buffer.Pending(model.ProcessID(to))
		for from := 0; from < n; from++ {
			empty := true
			for _, m := range pending {
				if int(m.From) != from {
					continue
				}
				if empty {
					fmt.Fprintf(h, "L%d<%d:", to, from)
					empty = false
				}
				h.Write([]byte(enc.messageEncoding(m)))
				h.Write([]byte{','})
			}
			if !empty {
				h.Write([]byte{';'})
			}
		}
	}
	sum := h.Sum(nil)
	return Key{binary.BigEndian.Uint64(sum[:8]), binary.BigEndian.Uint64(sum[8:16])}
}
