package explore

import (
	"fmt"
	"reflect"
	"testing"

	"strings"

	"nuconsensus/internal/check"
	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
	"nuconsensus/internal/obs"
)

// disagreeScenario is a deliberately broken target that violates agreement
// quickly: two processes run the naive MR adaptation with disjoint
// singleton quorums and each trusting itself as leader, so each decides its
// own proposal alone (4 steps per process, a violation at depth 8). Cheap
// enough for cross-checks that run the exploration several times.
func disagreeScenario() Options {
	pattern := model.NewFailurePattern(2)
	quorum := map[model.ProcessID]model.ProcessSet{0: model.SetOf(0), 1: model.SetOf(1)}
	hist := fd.HistoryFunc(func(p model.ProcessID, t model.Time) model.FDValue {
		return fd.PairValue{
			First:  fd.LeaderValue{Leader: p},
			Second: fd.QuorumValue{Quorum: quorum[p]},
		}
	})
	return Options{
		Automaton: consensus.NewMRNaiveNu([]int{0, 1}),
		Pattern:   pattern,
		Menu:      HistoryMenu{H: hist},
		Bound:     8,
		Property: func(c *model.Configuration) error {
			return check.SafetyViolation(c, pattern)
		},
		StopAtViolation: true,
	}
}

func TestChoiceOrderAndString(t *testing.T) {
	lam := Choice{P: 1, From: model.NoProcess, FD: 0}
	del := Choice{P: 1, From: 0, FD: 2}
	if got := lam.String(); got != "p1/0" {
		t.Errorf("λ choice renders %q", got)
	}
	if got := del.String(); got != "p1<p0/2" {
		t.Errorf("delivery choice renders %q", got)
	}
	if !choiceLess(lam, del) {
		t.Error("λ must sort before deliveries of the same process")
	}
	if !choiceLess(Choice{P: 0, From: 1, FD: 5}, Choice{P: 1, From: model.NoProcess, FD: 0}) {
		t.Error("process id must dominate the order")
	}
}

func TestExploreValidation(t *testing.T) {
	if _, err := Explore(Options{}); err == nil {
		t.Error("missing automaton/pattern/menu must error")
	}
	o := disagreeScenario()
	o.Bound = 0
	if _, err := Explore(o); err == nil {
		t.Error("non-positive bound must error")
	}
	o = disagreeScenario()
	o.Pattern = model.NewFailurePattern(3)
	if _, err := Explore(o); err == nil {
		t.Error("pattern/automaton size mismatch must error")
	}
}

func TestCanonicalEncoding(t *testing.T) {
	// Map iteration order must not leak into the encoding.
	m1 := map[int]string{1: "a", 2: "b", 3: "c"}
	m2 := map[int]string{3: "c", 2: "b", 1: "a"}
	if canonicalString(m1) != canonicalString(m2) {
		t.Error("equal maps must encode equally")
	}
	// Nil and empty slices are the same state.
	type s struct{ Xs []int }
	if canonicalString(s{}) != canonicalString(s{Xs: []int{}}) {
		t.Error("nil and empty slices must encode equally")
	}
	if canonicalString(s{Xs: []int{1}}) == canonicalString(s{Xs: []int{2}}) {
		t.Error("different slices must encode differently")
	}
	// Pointers are chased, not printed as addresses.
	x, y := 7, 7
	if canonicalString(&x) != canonicalString(&y) {
		t.Error("pointers to equal values must encode equally")
	}
}

func TestStateKeyCommutesOnDistinctLinks(t *testing.T) {
	// Two orders of the same independent steps must fingerprint equally:
	// run the disagree scenario two λ-steps deep with p0 first and p1
	// first; the resulting configurations differ only in message arrival
	// order, which stateKey deliberately ignores.
	o := disagreeScenario()
	a, ok := Execute(o, []Choice{{P: 0, From: model.NoProcess}, {P: 1, From: model.NoProcess}})
	if !ok {
		t.Fatal("schedule a invalid")
	}
	b, ok := Execute(o, []Choice{{P: 1, From: model.NoProcess}, {P: 0, From: model.NoProcess}})
	if !ok {
		t.Fatal("schedule b invalid")
	}
	hashes := func(c *model.Configuration) []uint64 {
		hs := make([]uint64, len(c.States))
		for p := range hs {
			hs[p] = hash64(canonicalString(c.States[p]))
		}
		return hs
	}
	ka := stateKey(a, 2, hashes(a), &encCache{})
	kb := stateKey(b, 2, hashes(b), &encCache{})
	if ka != kb {
		t.Errorf("commuted independent steps got keys %s vs %s", ka, kb)
	}
	// The same configuration at a different depth is a different state.
	if kc := stateKey(a, 3, hashes(a), &encCache{}); kc == ka {
		t.Error("depth must be part of the fingerprint")
	}
}

func TestDeriveSeedIsStable(t *testing.T) {
	if DeriveSeed("frontier", 3) != DeriveSeed("frontier", 3) {
		t.Error("DeriveSeed must be deterministic")
	}
	if DeriveSeed("frontier", 3) == DeriveSeed("frontier", 4) {
		t.Error("levels must get distinct salts")
	}
	if DeriveSeed("frontier", 3) == DeriveSeed("materialize", 3) {
		t.Error("labels must get distinct salts")
	}
}

func TestDisagreeHuntAndShrink(t *testing.T) {
	o := disagreeScenario()
	res, err := Explore(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 || res.Counterexample == nil {
		t.Fatalf("expected a violation, got %+v", res)
	}
	cex := res.Counterexample.Path
	if len(cex) != 8 {
		t.Errorf("shallowest violation should need 8 steps, got %d: %v", len(cex), cex)
	}
	if !violates(o, cex) {
		t.Fatal("reported counterexample does not violate under Execute")
	}
	shrunk := Shrink(o, cex)
	if !violates(o, shrunk) {
		t.Fatal("shrunk schedule does not violate")
	}
	if len(shrunk) > len(cex) {
		t.Errorf("shrinking grew the schedule: %d -> %d", len(cex), len(shrunk))
	}
	// Shrinking is idempotent: a minimal schedule stays put.
	again := Shrink(o, shrunk)
	if !reflect.DeepEqual(again, shrunk) {
		t.Errorf("Shrink not idempotent: %v then %v", shrunk, again)
	}
	// Minimality: no single deletion still violates.
	for i := range shrunk {
		cand := append(append([]Choice(nil), shrunk[:i]...), shrunk[i+1:]...)
		if violates(o, cand) {
			t.Errorf("deleting step %d (%v) still violates: not minimal", i, shrunk[i])
		}
	}
}

func TestShrinkPanicsOnNonViolating(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Shrink must panic on a non-violating schedule")
		}
	}()
	o := disagreeScenario()
	Shrink(o, []Choice{{P: 0, From: model.NoProcess}})
}

func TestDeterminismAcrossWorkers(t *testing.T) {
	scenarios := []struct {
		label string
		o     Options
	}{
		{"disagree", disagreeScenario()},
	}
	for _, sc := range VerifyANuc(3, 1) {
		o := sc.Opts
		o.Bound = 6
		scenarios = append(scenarios, struct {
			label string
			o     Options
		}{sc.Label, o})
	}
	for _, sc := range scenarios {
		o1 := sc.o
		o1.Parallel = 1
		r1, err := Explore(o1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			ow := sc.o
			ow.Parallel = workers
			rw, err := Explore(ow)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r1, rw) {
				t.Errorf("%s: results differ between -parallel 1 and -parallel %d:\n%+v\nvs\n%+v",
					sc.label, workers, r1, rw)
			}
		}
	}
}

// TestPORPreservesStates cross-checks the sleep-set reduction: it may only
// skip redundant edges, so the visited state set, the violation count, the
// depth and the counterexample must be identical with the reduction off —
// while the executed edge count must actually shrink.
func TestPORPreservesStates(t *testing.T) {
	for _, sc := range []struct {
		label string
		o     Options
	}{
		{"disagree", disagreeScenario()},
		{"anuc-ff", func() Options {
			o := VerifyANuc(3, 0)[0].Opts
			o.Bound = 5
			return o
		}()},
	} {
		on := sc.o
		off := sc.o
		off.DisablePOR = true
		ron, err := Explore(on)
		if err != nil {
			t.Fatal(err)
		}
		roff, err := Explore(off)
		if err != nil {
			t.Fatal(err)
		}
		if ron.States != roff.States || ron.Violations != roff.Violations || ron.Depth != roff.Depth {
			t.Errorf("%s: POR changed verdicts: on=%+v off=%+v", sc.label, ron, roff)
		}
		if !reflect.DeepEqual(ron.Counterexample, roff.Counterexample) {
			t.Errorf("%s: POR changed the counterexample", sc.label)
		}
		if ron.Slept == 0 || ron.Edges >= roff.Edges {
			t.Errorf("%s: POR slept %d and executed %d edges vs %d without: no reduction",
				sc.label, ron.Slept, ron.Edges, roff.Edges)
		}
	}
}

// TestStutterElimPreservesViolations cross-checks stutter elimination: it
// prunes states, but a violation is reachable with it exactly when one is
// reachable without it, and the lexicographically least shallowest
// counterexample contains no stutters, so it is identical either way.
func TestStutterElimPreservesViolations(t *testing.T) {
	on := disagreeScenario()
	off := disagreeScenario()
	off.DisableStutterElim = true
	ron, err := Explore(on)
	if err != nil {
		t.Fatal(err)
	}
	roff, err := Explore(off)
	if err != nil {
		t.Fatal(err)
	}
	if (ron.Violations == 0) != (roff.Violations == 0) {
		t.Errorf("stutter elimination changed the verdict: on=%d off=%d violations", ron.Violations, roff.Violations)
	}
	if !reflect.DeepEqual(ron.Counterexample, roff.Counterexample) {
		t.Errorf("stutter elimination changed the counterexample:\n%+v\nvs\n%+v", ron.Counterexample, roff.Counterexample)
	}
	if ron.Stutters == 0 || ron.States >= roff.States {
		t.Errorf("stutter elimination pruned %d stutters, %d states vs %d without: no reduction",
			ron.Stutters, ron.States, roff.States)
	}
}

func TestVerifyANucQuick(t *testing.T) {
	for _, sc := range VerifyANuc(3, 1) {
		o := sc.Opts
		o.Bound = 6
		res, err := Explore(o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Violations != 0 {
			t.Errorf("%s: A_nuc violated safety: %+v", sc.Label, res.Counterexample)
		}
		if res.Reduction < 2 {
			t.Errorf("%s: reduction %f < 2x over naive enumeration", sc.Label, res.Reduction)
		}
		if !res.Truncated {
			t.Errorf("%s: expected a truncated exploration at bound %d", sc.Label, o.Bound)
		}
	}
}

func TestExecuteSemantics(t *testing.T) {
	// FD index out of a HistoryMenu's singleton range invalidates.
	o := disagreeScenario()
	if _, ok := Execute(o, []Choice{{P: 0, From: model.NoProcess, FD: 1}}); ok {
		t.Error("FD index beyond the menu must invalidate the schedule")
	}
	// A crashed process's entry is skipped without consuming a tick: with
	// p1 crashed from t=1, a p1 entry wedged between two p0 steps must
	// leave the p0 steps at times 1 and 2.
	crashed := o
	crashed.Pattern = model.PatternFromCrashes(2, map[model.ProcessID]model.Time{1: 1})
	a, ok := Execute(crashed, []Choice{
		{P: 0, From: model.NoProcess},
		{P: 1, From: model.NoProcess},
		{P: 0, From: 0},
	})
	if !ok {
		t.Fatal("crash-skipping schedule invalid")
	}
	b, ok := Execute(crashed, []Choice{
		{P: 0, From: model.NoProcess},
		{P: 0, From: 0},
	})
	if !ok {
		t.Fatal("reference schedule invalid")
	}
	if canonicalString(a.States) != canonicalString(b.States) {
		t.Error("crashed-process entry must be skipped without consuming a tick")
	}
	// A delivery on an empty link degrades to λ rather than failing.
	if _, ok := Execute(o, []Choice{{P: 0, From: 1, FD: 0}}); !ok {
		t.Error("empty-link delivery must degrade to λ, not invalidate")
	}
}

func TestPinnedHistory(t *testing.T) {
	menu := PairMenu{
		Leaders: func(model.ProcessID, model.Time) []model.ProcessID { return []model.ProcessID{0, 1} },
		Quorums: func(model.ProcessID, model.Time) []model.ProcessSet {
			return []model.ProcessSet{model.SetOf(0), model.SetOf(1)}
		},
	}
	fallback := fd.HistoryFunc(func(p model.ProcessID, t model.Time) model.FDValue {
		return menu.Values(p, t)[0]
	})
	path := []Choice{
		{P: 0, From: model.NoProcess, FD: 3}, // t=1: leader 1, quorum {1}
		{P: 1, From: model.NoProcess, FD: 1}, // t=2: leader 0, quorum {1}
	}
	h := PinnedHistory(menu, path, fallback)
	if got := h.Output(0, 1); !reflect.DeepEqual(got, menu.Values(0, 1)[3]) {
		t.Errorf("pinned (p0,t1) = %v, want menu entry 3", got)
	}
	if got := h.Output(1, 2); !reflect.DeepEqual(got, menu.Values(1, 2)[1]) {
		t.Errorf("pinned (p1,t2) = %v, want menu entry 1", got)
	}
	// Unpinned points fall back to the first menu entry.
	if got := h.Output(1, 1); !reflect.DeepEqual(got, menu.Values(1, 1)[0]) {
		t.Errorf("unpinned (p1,t1) = %v, want fallback", got)
	}
	// Out-of-range FD indices panic rather than silently mispinning.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PinnedHistory must panic on an FD index outside the menu")
			}
		}()
		PinnedHistory(menu, []Choice{{P: 0, From: model.NoProcess, FD: 9}}, fallback)
	}()
}

// TestProgressCallback pins the Progress contract: called once per
// completed level with cumulative unique states.
func TestProgressCallback(t *testing.T) {
	o := disagreeScenario()
	o.StopAtViolation = false
	o.Bound = 3
	var lines []string
	o.Progress = func(depth, frontier int, states int64) {
		lines = append(lines, fmt.Sprintf("%d:%d:%d", depth, frontier, states))
	}
	res, err := Explore(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("expected 3 progress lines for bound 3, got %v", lines)
	}
	if res.Depth != 3 {
		t.Errorf("depth %d, want 3", res.Depth)
	}
}

// TestMergeShardedMatchesSequential pins the sharded frontier merge: the
// Result and the full metrics dump — including the explore.merge.* totals
// the workers stage in per-worker obs.LocalStores — must be byte-identical
// between -parallel 1 (sequential merge) and -parallel 8 (sharded merge on
// every level wide enough to fan out).
func TestMergeShardedMatchesSequential(t *testing.T) {
	run := func(workers int) (*Result, string) {
		o := VerifyANuc(3, 1)[0].Opts
		o.Bound = 6
		o.Parallel = workers
		reg := obs.NewRegistry()
		o.Metrics = reg
		r, err := Explore(o)
		if err != nil {
			t.Fatal(err)
		}
		var dump strings.Builder
		if _, err := reg.WriteTo(&dump); err != nil {
			t.Fatal(err)
		}
		return r, dump.String()
	}
	r1, m1 := run(1)
	r8, m8 := run(8)
	if !reflect.DeepEqual(r1, r8) {
		t.Errorf("results differ between -parallel 1 and 8:\n%+v\nvs\n%+v", r1, r8)
	}
	if m1 != m8 {
		t.Errorf("metric dumps differ between -parallel 1 and 8:\n%s\nvs\n%s", m1, m8)
	}
	if !strings.Contains(m1, "explore.merge.unique") || !strings.Contains(m1, "explore.merge.dup_hits") {
		t.Errorf("merge counters missing from dump:\n%s", m1)
	}
}
