package explore

import (
	"fmt"

	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
)

// Menu is the finite failure-detector adversary of an exploration: at each
// (process, time) it offers the FD values the enumerator branches over.
// Values must be a pure function of (p, t), return a nonempty slice in a
// fixed canonical order, and never return values whose canonical encoding
// depends on anything but (p, t) — the explorer's determinism and its
// sleep sets both lean on that.
type Menu interface {
	Values(p model.ProcessID, t model.Time) []model.FDValue
}

// HistoryMenu is the singleton menu of a fixed history: the explorer then
// enumerates scheduling nondeterminism only, and every counterexample
// replays directly against the same history.
type HistoryMenu struct{ H model.History }

// Values implements Menu.
func (m HistoryMenu) Values(p model.ProcessID, t model.Time) []model.FDValue {
	return []model.FDValue{m.H.Output(p, t)}
}

// PairMenu enumerates the cross product of Ω leader choices and Σ-family
// quorum choices as PairValue outputs — the finite adversary menu for
// algorithms driven by a pair detector (Ω, Σν+). The order is leaders
// outer, quorums inner.
type PairMenu struct {
	Leaders func(p model.ProcessID, t model.Time) []model.ProcessID
	Quorums func(p model.ProcessID, t model.Time) []model.ProcessSet
}

// Values implements Menu.
func (m PairMenu) Values(p model.ProcessID, t model.Time) []model.FDValue {
	ls := m.Leaders(p, t)
	qs := m.Quorums(p, t)
	out := make([]model.FDValue, 0, len(ls)*len(qs))
	for _, l := range ls {
		for _, q := range qs {
			out = append(out, fd.PairValue{First: fd.LeaderValue{Leader: l}, Second: fd.QuorumValue{Quorum: q}})
		}
	}
	return out
}

// PinnedHistory converts an explored path's FD choices back into a
// History: at the (process, time) points the path exercised, it returns
// exactly the menu value the path chose; everywhere else it falls back.
// This is how a counterexample found under a multi-valued menu becomes
// replayable through the ordinary history-driven Replay path. Step i of a
// path executes at time i+1 (the sim convention), and explored paths never
// contain crashed-process steps, so replayed times line up one to one.
func PinnedHistory(menu Menu, path []Choice, fallback model.History) model.History {
	type pt struct {
		p model.ProcessID
		t model.Time
	}
	pinned := make(map[pt]model.FDValue, len(path))
	for i, ch := range path {
		t := model.Time(i + 1)
		vs := menu.Values(ch.P, t)
		if ch.FD < 0 || ch.FD >= len(vs) {
			panic(fmt.Sprintf("explore: path step %d has FD index %d out of menu range %d", i, ch.FD, len(vs)))
		}
		pinned[pt{ch.P, t}] = vs[ch.FD]
	}
	return fd.HistoryFunc(func(p model.ProcessID, t model.Time) model.FDValue {
		if v, ok := pinned[pt{p, t}]; ok {
			return v
		}
		return fallback.Output(p, t)
	})
}
