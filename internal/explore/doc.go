// Package explore is a deterministic bounded model checker over the
// internal/model + internal/sim substrate. Where the experiment engine
// samples seeded schedules, explore enumerates *every* schedule of an
// automaton up to a depth bound: which process steps, which buffered
// message it receives (per-link FIFO, the discipline the concurrent
// substrates implement), and which failure-detector value it sees from a
// finite adversary menu.
//
// The state space is the level DAG of configurations: two interleavings
// reaching the same (depth, local states, per-link buffer contents) are
// merged by a canonical 128-bit fingerprint, and a sleep-set partial-order
// reduction skips commuting permutations of independent steps (see
// DESIGN.md §"Exhaustive checking" for the independence relation). The
// frontier is expanded level-synchronously by a worker pool whose work
// split derives from the state fingerprints via DeriveSeed, so results are
// byte-identical at any worker count.
//
// On a property violation the lexicographically least schedule reaching
// the shallowest violating state is reported, and Shrink reduces it to a
// locally minimal schedule that still violates. Shrunk schedules convert
// to the root package's RecordedRun format and replay through the
// existing Replay/LoadRecordedRun path.
package explore
