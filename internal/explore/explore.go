package explore

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"nuconsensus/internal/model"
	"nuconsensus/internal/obs"
)

// Choice identifies one transition out of an explored state: process P
// takes a step in which it receives the oldest pending message on the
// link From→P (From == model.NoProcess encodes λ, the empty message), and
// its failure-detector module outputs entry FD of the adversary menu for
// (P, t). Choices are ordered lexicographically by (P, From, FD); the
// enumerator generates them in that order, which makes "the first
// counterexample" well defined and worker-count independent.
type Choice struct {
	P    model.ProcessID `json:"p"`
	From model.ProcessID `json:"from"` // model.NoProcess encodes λ
	FD   int             `json:"fd"`
}

// String renders a choice like "p1<p0/2" (deliver from p0, menu entry 2)
// or "p1/0" (λ).
func (c Choice) String() string {
	if c.From == model.NoProcess {
		return fmt.Sprintf("%s/%d", c.P, c.FD)
	}
	return fmt.Sprintf("%s<%s/%d", c.P, c.From, c.FD)
}

// choiceLess is the canonical (P, From, FD) order; λ sorts before
// deliveries because model.NoProcess is negative.
func choiceLess(a, b Choice) bool {
	if a.P != b.P {
		return a.P < b.P
	}
	if a.From != b.From {
		return a.From < b.From
	}
	return a.FD < b.FD
}

// Options configures one bounded exploration.
type Options struct {
	Automaton model.Automaton
	Pattern   *model.FailurePattern
	Menu      Menu
	// Bound is the exploration depth: states at depth Bound are visited
	// (and checked) but not expanded.
	Bound int
	// Parallel is the frontier worker count; any value yields byte-identical
	// results. Values < 1 mean 1.
	Parallel int
	// Property, when non-nil, is checked on every visited configuration; a
	// non-nil error marks the state as violating. It must be a pure
	// function of the configuration.
	Property func(*model.Configuration) error
	// StopAtViolation stops the exploration at the end of the first level
	// containing a violating state (the level is still completed, so the
	// reported counterexample is the lexicographically least schedule to a
	// shallowest violation regardless of worker count).
	StopAtViolation bool
	// Progress, when non-nil, is called after each completed level with the
	// level depth, the size of the next frontier and the cumulative unique
	// state count. It runs on the calling goroutine; CLI drivers use it for
	// stderr progress lines.
	Progress func(depth, frontier int, states int64)
	// DisablePOR turns the sleep-set reduction off. The set of visited
	// states and all verdicts are identical either way (the reduction only
	// skips redundant edges); tests cross-check that.
	DisablePOR bool
	// DisableStutterElim turns stutter elimination off. A λ step that sends
	// nothing and leaves its process's state unchanged, taken at a time from
	// which the failure pattern and the adversary menu are constant through
	// the bound, is a pure stutter: deleting it from any violating schedule
	// (shifting the rest one slot earlier) yields a shorter violating
	// schedule, so pruning such steps preserves every violation while
	// keeping idle states from being carried forward level after level.
	DisableStutterElim bool
	// Metrics, if non-nil, receives the exploration's engine counters
	// (states, edges, sleep-set skips, stutter prunes, duplicate-target
	// merge hits) and per-level frontier width/depth. All updates are
	// sums and histogram increments, so the dump is deterministic.
	Metrics *obs.Registry
}

// Counterexample is a schedule reaching a violating state.
type Counterexample struct {
	Path []Choice
	Err  string // the Property error at the violating state
}

// Result summarizes an exploration.
type Result struct {
	// States counts unique visited states, including the initial one.
	States int64
	// Edges counts executed transitions (after sleep-set skipping).
	Edges int64
	// Slept counts enabled transitions skipped by the sleep-set reduction.
	Slept int64
	// Stutters counts transitions pruned by stutter elimination.
	Stutters int64
	// Dups counts executed transitions whose target was already visited.
	Dups int64
	// Depth is the deepest visited level.
	Depth int
	// Truncated reports that the frontier was still nonempty when the
	// exploration stopped (bound reached or StopAtViolation fired).
	Truncated bool
	// Violations counts visited states whose Property check failed.
	Violations int64
	// Counterexample is the lexicographically least schedule to a
	// shallowest violating state, or nil.
	Counterexample *Counterexample
	// SchedulePrefixes is the number of schedule prefixes a naive
	// enumerator (no state merging) would visit to cover the explored
	// edges — a lower bound on the naive tree size, computed by dynamic
	// programming over the level DAG.
	SchedulePrefixes float64
	// Reduction is SchedulePrefixes / States: how many naive enumeration
	// visits each unique state stands for.
	Reduction float64
}

// DeriveSeed hashes an explorer label and frontier level into the salt
// that shards states across workers (FNV-1a, the same construction as
// experiments.DeriveSeed). Work splitting is thus a pure function of the
// state fingerprints — never of goroutine timing — which is what keeps
// results byte-identical at any Parallel value. The seedhash analyzer
// checks this package stays on that discipline.
func DeriveSeed(label string, level int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "nuconsensus/explore/%s/%d", label, level)
	return int64(h.Sum64())
}

// shardOf assigns a state to a worker from its fingerprint and the
// level's DeriveSeed salt.
func shardOf(k Key, salt int64, workers int) int {
	x := (k[0] ^ uint64(salt)) * 0x9e3779b97f4a7c15
	x ^= x >> 32
	return int(x % uint64(workers))
}

// node is one unique state of the level DAG. cfg, procH and sleep are
// dropped once the level has been expanded; key, parent and via stay for
// counterexample path reconstruction.
type node struct {
	key    Key
	cfg    *model.Configuration
	procH  []uint64
	sleep  []Choice
	parent int32 // index into the previous level; -1 at the root
	via    Choice
	viol   string
}

// edgeRec is one executed transition produced by the expansion pass.
type edgeRec struct {
	parent int32
	via    Choice
	key    Key
	sleep  []Choice // sleep-set contribution for the child
	viol   string
}

type engine struct {
	o       Options
	n       int
	workers int
	enc     *encCache
	// invariantFrom[t] reports that the failure pattern and the adversary
	// menu are constant on [t, Bound] — the precondition for stutter
	// elimination at time t.
	invariantFrom []bool

	states, edges, slept, dups, violations, stutters int64
}

// Explore runs the bounded exploration described by o.
func Explore(o Options) (*Result, error) {
	if o.Automaton == nil || o.Pattern == nil || o.Menu == nil {
		return nil, fmt.Errorf("explore: Automaton, Pattern and Menu are all required")
	}
	if o.Bound <= 0 {
		return nil, fmt.Errorf("explore: Bound must be positive, got %d", o.Bound)
	}
	if o.Pattern.N() != o.Automaton.N() {
		return nil, fmt.Errorf("explore: pattern is for n=%d but automaton has n=%d", o.Pattern.N(), o.Automaton.N())
	}
	e := &engine{o: o, n: o.Automaton.N(), workers: o.Parallel, enc: &encCache{}}
	if e.workers < 1 {
		e.workers = 1
	}
	e.invariantFrom = e.computeInvariantSuffix(o.Bound)

	cfg0 := model.InitialConfiguration(o.Automaton)
	procH := make([]uint64, e.n)
	for p := range procH {
		procH[p] = hash64(canonicalString(cfg0.States[p]))
	}
	root := node{cfg: cfg0, procH: procH, parent: -1, key: stateKey(cfg0, 0, procH, e.enc)}
	root.viol = e.check(cfg0)
	e.states = 1
	if root.viol != "" {
		e.violations = 1
	}

	levels := [][]node{{root}}
	var edgePairs [][][2]int32 // per level: executed (parent, child) pairs in canonical order
	var cex *Counterexample
	if root.viol != "" {
		cex = &Counterexample{Err: root.viol}
	}
	truncated := false

	for depth := 0; depth < o.Bound; depth++ {
		if cex != nil && o.StopAtViolation {
			truncated = len(levels[depth]) > 0
			break
		}
		cur := levels[depth]
		if len(cur) == 0 {
			break
		}
		t := model.Time(depth + 1) // sim convention: step i executes at time i+1
		alive := o.Pattern.Alive(t)
		if alive.IsEmpty() {
			break
		}
		stable := e.menuStability(t)
		e.enc = &encCache{} // scope message-encoding memoization to this level
		edges := e.expandLevel(cur, depth, t, alive, stable)
		next, pairs := e.merge(edges, depth)
		e.materialize(cur, next, depth, t)
		for i := range cur { // frontier configs are no longer needed
			cur[i].cfg, cur[i].procH, cur[i].sleep = nil, nil, nil
		}
		levels = append(levels, next)
		edgePairs = append(edgePairs, pairs)
		if o.Metrics != nil {
			o.Metrics.Histogram("explore.frontier_width", obs.DefaultBuckets).Observe(int64(len(next)))
		}
		if o.Progress != nil {
			o.Progress(depth+1, len(next), e.states)
		}
		if cex == nil {
			for i := range next {
				if next[i].viol != "" {
					cex = &Counterexample{
						Path: reconstructPath(levels, depth+1, int32(i)),
						Err:  next[i].viol,
					}
					break
				}
			}
		}
		if depth+1 == o.Bound {
			truncated = len(next) > 0
		}
	}

	res := &Result{
		States:         e.states,
		Edges:          e.edges,
		Slept:          e.slept,
		Stutters:       e.stutters,
		Dups:           e.dups,
		Depth:          len(levels) - 1,
		Truncated:      truncated,
		Violations:     e.violations,
		Counterexample: cex,
	}
	res.SchedulePrefixes = schedulePrefixes(levels, edgePairs)
	if e.states > 0 {
		res.Reduction = res.SchedulePrefixes / float64(e.states)
	}
	if o.Metrics != nil {
		o.Metrics.Counter("explore.states").Add(res.States)
		o.Metrics.Counter("explore.edges").Add(res.Edges)
		o.Metrics.Counter("explore.sleep_skips").Add(res.Slept)
		o.Metrics.Counter("explore.stutter_prunes").Add(res.Stutters)
		o.Metrics.Counter("explore.merge_hits").Add(res.Dups)
		o.Metrics.Counter("explore.violations").Add(res.Violations)
		o.Metrics.Gauge("explore.depth").Max(int64(res.Depth))
	}
	return res, nil
}

// check evaluates the property, returning "" when it holds.
func (e *engine) check(c *model.Configuration) string {
	if e.o.Property == nil {
		return ""
	}
	if err := e.o.Property(c); err != nil {
		return err.Error()
	}
	return ""
}

// computeInvariantSuffix returns, indexed by time t in [1, bound], whether
// the failure pattern and the adversary menu are constant on [t, bound].
func (e *engine) computeInvariantSuffix(bound int) []bool {
	inv := make([]bool, bound+1)
	if bound >= 1 {
		inv[bound] = true
	}
	for t := bound - 1; t >= 1; t-- {
		tt := model.Time(t)
		if e.o.Pattern.Alive(tt) != e.o.Pattern.Alive(tt+1) {
			continue
		}
		stable := e.menuStability(tt)
		all := true
		for _, s := range stable {
			all = all && s
		}
		inv[t] = all && inv[t+1]
	}
	return inv
}

// menuStability reports, per process, whether the adversary menu is
// unchanged between t and t+1 (canonical encodings compared entry-wise).
// Stability is what lets a sleeping transition keep denoting the same FD
// value one level deeper — see independent.
func (e *engine) menuStability(t model.Time) []bool {
	stable := make([]bool, e.n)
	for p := 0; p < e.n; p++ {
		a := e.o.Menu.Values(model.ProcessID(p), t)
		b := e.o.Menu.Values(model.ProcessID(p), t+1)
		if len(a) != len(b) {
			continue
		}
		ok := true
		for i := range a {
			if canonicalString(a[i]) != canonicalString(b[i]) {
				ok = false
				break
			}
		}
		stable[p] = ok
	}
	return stable
}

// independent reports whether transitions x and a commute at a state of
// depth t-1 (both about to execute at time t, the second at t+1). The
// relation is conservative:
//   - distinct processes (a process's two steps never commute);
//   - both processes alive at t and t+1 (swapping must not cross a crash);
//   - both menus stable across t/t+1 (the FD value a choice denotes must
//     not depend on which of the two slots it lands in).
//
// Per-link FIFO delivery does the rest: steps of distinct processes touch
// disjoint local states, a delivery drains a link only its own process
// reads, and sends append to link tails without moving any head that a
// concurrently enabled delivery could observe.
func (e *engine) independent(x, a Choice, t model.Time, stable []bool) bool {
	if x.P == a.P {
		return false
	}
	alive2 := e.o.Pattern.Alive(t + 1)
	if !alive2.Has(x.P) || !alive2.Has(a.P) {
		return false
	}
	return stable[x.P] && stable[a.P]
}

// enabled returns the transitions enabled at cfg for steps at time t, in
// canonical (P, From, FD) order.
func (e *engine) enabled(cfg *model.Configuration, t model.Time, alive model.ProcessSet) []Choice {
	var out []Choice
	for p := 0; p < e.n; p++ {
		pid := model.ProcessID(p)
		if !alive.Has(pid) {
			continue
		}
		nvals := len(e.o.Menu.Values(pid, t))
		for f := 0; f < nvals; f++ {
			out = append(out, Choice{P: pid, From: model.NoProcess, FD: f})
		}
		for from := 0; from < e.n; from++ {
			if cfg.Buffer.OldestFrom(pid, model.ProcessID(from)) == nil {
				continue
			}
			for f := 0; f < nvals; f++ {
				out = append(out, Choice{P: pid, From: model.ProcessID(from), FD: f})
			}
		}
	}
	return out
}

// apply executes choice ch (a step at time t) on a clone of cfg and
// returns the child configuration plus its per-process state hashes.
func (e *engine) apply(cfg *model.Configuration, procH []uint64, ch Choice, t model.Time) (*model.Configuration, []uint64, int) {
	child := cfg.Clone()
	var m *model.Message
	if ch.From != model.NoProcess {
		m = child.Buffer.OldestFrom(ch.P, ch.From)
		if m == nil {
			panic(fmt.Sprintf("explore: internal error: delivery %v scheduled on an empty link", ch))
		}
		if _, superseded := m.Payload.(model.SupersededPayload); superseded {
			panic(fmt.Sprintf("explore: superseded payload %T is not supported (collapsing delivery would break per-link enumeration)", m.Payload))
		}
	}
	d := e.o.Menu.Values(ch.P, t)[ch.FD]
	sent := child.Apply(e.o.Automaton, model.Step{P: ch.P, M: m, D: d})
	h := make([]uint64, e.n)
	copy(h, procH)
	h[ch.P] = hash64(canonicalString(child.States[ch.P]))
	return child, h, len(sent)
}

// expandNode runs the sleep-set expansion of one frontier state: enabled
// transitions in canonical order, skipping those in the state's sleep set,
// and computing each executed edge's sleep contribution for its child
// (Godefroid's explore(s, Sleep) with the intersection deferred to merge).
func (e *engine) expandNode(nd *node, idx int32, t model.Time, alive model.ProcessSet, stable []bool, depth int) ([]edgeRec, int64, int64) {
	en := e.enabled(nd.cfg, t, alive)
	var slept, stutters int64
	var done []Choice
	out := make([]edgeRec, 0, len(en))
	for _, a := range en {
		if !e.o.DisablePOR && containsChoice(nd.sleep, a) {
			slept++
			continue
		}
		var contrib []Choice
		if !e.o.DisablePOR {
			for _, x := range nd.sleep {
				if e.independent(x, a, t, stable) {
					contrib = append(contrib, x)
				}
			}
			for _, x := range done {
				if e.independent(x, a, t, stable) {
					contrib = append(contrib, x)
				}
			}
			sort.Slice(contrib, func(i, j int) bool { return choiceLess(contrib[i], contrib[j]) })
		}
		child, procH, sent := e.apply(nd.cfg, nd.procH, a, t)
		if !e.o.DisableStutterElim && a.From == model.NoProcess && sent == 0 &&
			procH[a.P] == nd.procH[a.P] && e.invariantFrom[int(t)] {
			// Pure stutter in a time-invariant suffix: prune, and keep it out
			// of done so no sibling's sleep set is ever justified by it.
			stutters++
			continue
		}
		if !e.o.DisablePOR {
			done = append(done, a)
		}
		out = append(out, edgeRec{
			parent: idx,
			via:    a,
			key:    stateKey(child, depth+1, procH, e.enc),
			sleep:  contrib,
			viol:   e.check(child),
		})
	}
	return out, slept, stutters
}

// expandLevel runs pass 1 over a frontier: every state is expanded, child
// configurations are fingerprinted and dropped. With workers > 1 the
// frontier is sharded by fingerprint; the edge set is a pure function of
// the frontier, so the concatenated-and-sorted result is identical for
// any worker count.
func (e *engine) expandLevel(cur []node, depth int, t model.Time, alive model.ProcessSet, stable []bool) []edgeRec {
	var all []edgeRec
	if e.workers == 1 {
		for i := range cur {
			edges, slept, stutters := e.expandNode(&cur[i], int32(i), t, alive, stable, depth)
			all = append(all, edges...)
			e.slept += slept
			e.stutters += stutters
		}
	} else {
		salt := DeriveSeed("frontier", depth)
		perWorker := make([][]edgeRec, e.workers)
		sleptPer := make([]int64, e.workers)
		stutterPer := make([]int64, e.workers)
		var wg sync.WaitGroup
		for w := 0; w < e.workers; w++ {
			wg.Add(1)
			//lint:allow nodeterm frontier worker pool; the merged edge set is canonicalized below
			go func(w int) {
				defer wg.Done()
				for i := range cur {
					if shardOf(cur[i].key, salt, e.workers) != w {
						continue
					}
					edges, slept, stutters := e.expandNode(&cur[i], int32(i), t, alive, stable, depth)
					perWorker[w] = append(perWorker[w], edges...)
					sleptPer[w] += slept
					stutterPer[w] += stutters
				}
			}(w)
		}
		wg.Wait()
		for w := 0; w < e.workers; w++ {
			all = append(all, perWorker[w]...)
			e.slept += sleptPer[w]
			e.stutters += stutterPer[w]
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].parent != all[j].parent {
				return all[i].parent < all[j].parent
			}
			return choiceLess(all[i].via, all[j].via)
		})
	}
	return all
}

// merge deduplicates pass-1 edges into the next frontier. Edges arrive
// sorted by (parent, choice); since frontier states are themselves stored
// in lex-least-path order, the first edge to reach a key is the lex-least
// path to that state, and it becomes the state's parent pointer. Later
// edges to the same key only intersect sleep sets (a state reached twice
// may only sleep what every arrival agrees to sleep).
//
// Levels big enough to amortize the fan-out run the sharded merge; tiny
// levels use the sequential one. The two produce byte-identical frontiers,
// pairs and counters (TestMergeShardedMatchesSequential).
func (e *engine) merge(edges []edgeRec, depth int) ([]node, [][2]int32) {
	if e.workers > 1 && len(edges) >= 4*e.workers {
		return e.mergeSharded(edges, depth)
	}
	return e.mergeSeq(edges)
}

// mergeSeq is the single-threaded merge.
func (e *engine) mergeSeq(edges []edgeRec) ([]node, [][2]int32) {
	var next []node
	idx := make(map[Key]int32)
	pairs := make([][2]int32, 0, len(edges))
	for i := range edges {
		ed := &edges[i]
		e.edges++
		ci, seen := idx[ed.key]
		if !seen {
			ci = int32(len(next))
			idx[ed.key] = ci
			next = append(next, node{key: ed.key, parent: ed.parent, via: ed.via, sleep: ed.sleep, viol: ed.viol})
			e.states++
			if ed.viol != "" {
				e.violations++
			}
		} else {
			e.dups++
			next[ci].sleep = intersectChoices(next[ci].sleep, ed.sleep)
		}
		pairs = append(pairs, [2]int32{ed.parent, ci})
	}
	if e.o.Metrics != nil {
		// Same totals the sharded merge flushes from its per-worker stores,
		// so metric dumps are identical at any Parallel value.
		e.o.Metrics.Counter("explore.merge.unique").Add(int64(len(next)))
		e.o.Metrics.Counter("explore.merge.dup_hits").Add(int64(len(edges) - len(next)))
	}
	return next, pairs
}

// mergeSharded shards the seen-state set by fingerprint, the ddtxn
// local-store idiom: every edge of a given key hashes to exactly one
// worker's private map (no shared map, no locks), each worker scans the
// canonically ordered edge list recording its keys' first-arrival indices
// and folding later arrivals into the sleep-set intersection, and the
// global frontier order is recovered by sorting unique states by first
// arrival — precisely the order the sequential merge assigns, so the
// result is byte-identical at any worker count. Per-worker tallies stage
// in obs.LocalStores and merge into the registry after the barrier.
func (e *engine) mergeSharded(edges []edgeRec, depth int) ([]node, [][2]int32) {
	salt := DeriveSeed("merge", depth)
	type keyRec struct {
		first int32 // index of the key's first edge in canonical order
		nd    node
	}
	shards := make([]map[Key]*keyRec, e.workers)
	stats := make([]*obs.LocalStore, e.workers)
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		shards[w] = make(map[Key]*keyRec)
		stats[w] = obs.NewLocalStore()
		wg.Add(1)
		//lint:allow nodeterm sharded merge workers; canonical order is restored by the first-arrival sort below
		go func(w int) {
			defer wg.Done()
			seen, st := shards[w], stats[w]
			for i := range edges {
				ed := &edges[i]
				if shardOf(ed.key, salt, e.workers) != w {
					continue
				}
				if kr, ok := seen[ed.key]; ok {
					kr.nd.sleep = intersectChoices(kr.nd.sleep, ed.sleep)
					st.Add("explore.merge.dup_hits", 1)
					continue
				}
				seen[ed.key] = &keyRec{
					first: int32(i),
					nd:    node{key: ed.key, parent: ed.parent, via: ed.via, sleep: ed.sleep, viol: ed.viol},
				}
				st.Add("explore.merge.unique", 1)
			}
		}(w)
	}
	wg.Wait()

	// Canonical frontier order: unique states by first-arrival edge index.
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	recs := make([]*keyRec, 0, total)
	for _, s := range shards {
		for _, kr := range s {
			recs = append(recs, kr)
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].first < recs[j].first })

	next := make([]node, len(recs))
	idx := make(map[Key]int32, len(recs))
	for ci := range recs {
		next[ci] = recs[ci].nd
		idx[recs[ci].nd.key] = int32(ci)
		e.states++
		if recs[ci].nd.viol != "" {
			e.violations++
		}
	}
	pairs := make([][2]int32, len(edges))
	for i := range edges {
		pairs[i] = [2]int32{edges[i].parent, idx[edges[i].key]}
	}
	e.edges += int64(len(edges))
	e.dups += int64(len(edges) - len(next))
	for _, st := range stats {
		st.FlushTo(e.o.Metrics)
	}
	return next, pairs
}

// materialize is pass 2: rebuild the configuration of every unique child
// from its lex-least parent. Re-executing one step per unique state costs
// less than holding a configuration per edge through merge.
func (e *engine) materialize(cur, next []node, depth int, t model.Time) {
	build := func(i int) {
		p := &cur[next[i].parent]
		next[i].cfg, next[i].procH, _ = e.apply(p.cfg, p.procH, next[i].via, t)
	}
	if e.workers == 1 {
		for i := range next {
			build(i)
		}
		return
	}
	salt := DeriveSeed("materialize", depth)
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		//lint:allow nodeterm worker pool over disjoint slice elements; output independent of scheduling
		go func(w int) {
			defer wg.Done()
			for i := range next {
				if shardOf(next[i].key, salt, e.workers) == w {
					build(i)
				}
			}
		}(w)
	}
	wg.Wait()
}

// reconstructPath walks parent pointers from levels[depth][i] back to the
// root, returning the choices in execution order.
func reconstructPath(levels [][]node, depth int, i int32) []Choice {
	path := make([]Choice, depth)
	for d := depth; d > 0; d-- {
		nd := &levels[d][i]
		path[d-1] = nd.via
		i = nd.parent
	}
	return path
}

// schedulePrefixes counts, by backward DP over the level DAG, how many
// schedule prefixes a naive enumerator (a tree walk with no state
// merging) would visit to cover the explored edges: prefixes(s) = 1 +
// Σ_{s→c} prefixes(c). Summation follows the canonical edge order, so the
// float result is bit-identical across runs and worker counts.
func schedulePrefixes(levels [][]node, edgePairs [][][2]int32) float64 {
	if len(levels) == 0 {
		return 0
	}
	paths := make([]float64, len(levels[len(levels)-1]))
	for i := range paths {
		paths[i] = 1
	}
	for d := len(levels) - 2; d >= 0; d-- {
		cur := make([]float64, len(levels[d]))
		for i := range cur {
			cur[i] = 1
		}
		for _, pr := range edgePairs[d] {
			cur[pr[0]] += paths[pr[1]]
		}
		paths = cur
	}
	return paths[0]
}

// containsChoice reports membership in a sorted choice slice.
func containsChoice(s []Choice, c Choice) bool {
	i := sort.Search(len(s), func(i int) bool { return !choiceLess(s[i], c) })
	return i < len(s) && s[i] == c
}

// intersectChoices intersects two sorted choice slices.
func intersectChoices(a, b []Choice) []Choice {
	var out []Choice
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case choiceLess(a[i], b[j]):
			i++
		default:
			j++
		}
	}
	return out
}
