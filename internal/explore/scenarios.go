package explore

import (
	"fmt"

	"nuconsensus/internal/check"
	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
)

// Scenario bundles everything one exploration target needs: the Options
// to explore (property included), a fallback History for pinning
// counterexample FD choices, and a suggested depth bound.
type Scenario struct {
	Label string
	Opts  Options
	// History is the fallback for PinnedHistory when converting a
	// counterexample to a replayable RecordedRun. For HistoryMenu targets
	// it is the menu's own history.
	History model.History
	// Bound is the suggested exploration depth (overridable by callers).
	Bound int
}

// VerifyANuc builds the exhaustive-verification targets for A_nuc with n
// processes and up to f crash failures: one failure-free scenario plus,
// for f >= 1, one scenario per process crashing at t=2 (early crashes are
// the adversarial ones for safety — the crash lands before any quorum
// completes). Process 0 proposes 0, everyone else proposes 1, so both
// values are live. The FD adversary menu offers, at every (p, t), the
// cross product of two leader candidates (p0 and p_{n-1}) and two
// pairwise-intersecting quorums ({p0,p1} and {p1,…,p_{n-1}}) — every
// selection is a prefix of a legal (Ω, Σν+) history, so a violation found
// here would be a genuine counterexample to Theorem 6.25's safety half.
func VerifyANuc(n, f int) []Scenario {
	if n < 2 {
		panic("explore: VerifyANuc needs n >= 2")
	}
	props := make([]int, n)
	for p := 1; p < n; p++ {
		props[p] = 1
	}
	leaders := []model.ProcessID{0, model.ProcessID(n - 1)}
	qa := model.SetOf(0, 1)
	qb := model.EmptySet
	for p := 1; p < n; p++ {
		qb = qb.Add(model.ProcessID(p))
	}
	quorums := []model.ProcessSet{qa, qb}
	menu := PairMenu{
		Leaders: func(model.ProcessID, model.Time) []model.ProcessID { return leaders },
		Quorums: func(model.ProcessID, model.Time) []model.ProcessSet { return quorums },
	}
	// The fallback history for pinning: first menu entry everywhere.
	fallback := fd.HistoryFunc(func(p model.ProcessID, t model.Time) model.FDValue {
		return menu.Values(p, t)[0]
	})

	scenario := func(label string, pattern *model.FailurePattern) Scenario {
		return Scenario{
			Label: label,
			Opts: Options{
				Automaton: consensus.NewANuc(props),
				Pattern:   pattern,
				Menu:      menu,
				Property: func(c *model.Configuration) error {
					return check.SafetyViolation(c, pattern)
				},
				StopAtViolation: true,
			},
			History: fallback,
			// Bound 7 verifies ~45k states in seconds; CI's full experiment
			// runs push it to 8 (see experiments E16), and crash scenarios
			// stay tractable through 9.
			Bound: 7,
		}
	}

	out := []Scenario{scenario("anuc/failure-free", model.NewFailurePattern(n))}
	if f >= 1 {
		for p := 0; p < n; p++ {
			pattern := model.PatternFromCrashes(n, map[model.ProcessID]model.Time{model.ProcessID(p): 2})
			out = append(out, scenario(fmt.Sprintf("anuc/crash-p%d@2", p), pattern))
		}
	}
	return out
}

// Contamination is the exhaustive counterpart of experiment E6: the naive
// MR adaptation with Σν quorums, against a hand-crafted legal Σν history.
// Process 2 proposes 1 and crashes at t=5 (so its race — decide 1 alone
// on quorum {p2} and broadcast its round-2 estimate — must fit in the
// first four slots, which keeps the post-crash state space two-process); processes 0 and 1 are
// correct. The quorums are constant — p0 trusts {p0}, p1 trusts {p0,p1},
// p2 trusts {p2} — which is legal Σν (the correct processes' quorums
// intersect at p0, and eventually contain only correct processes) but not
// Σν+. Ω points p0 at itself through t=8 and at p2 afterwards, and points
// p1 at p2 throughout the window (stabilizing to p0 far beyond the
// bound). Under this history there is a schedule where p0 decides 0 alone
// on quorum {p0}, the crashed p2 has decided 1
// alone on {p2} and broadcast its round-2 estimate, and p1 — whose Ω says p2 — adopts that estimate
// and decides 1 on quorum {p0,p1}: contamination, two correct processes
// deciding differently. The menu is the singleton of this history, so the
// explorer enumerates scheduling nondeterminism only and every
// counterexample replays directly.
func Contamination() Scenario {
	const n = 3
	props := []int{0, 1, 1}
	pattern := model.PatternFromCrashes(n, map[model.ProcessID]model.Time{2: 5})
	quorum := map[model.ProcessID]model.ProcessSet{
		0: model.SetOf(0),
		1: model.SetOf(0, 1),
		2: model.SetOf(2),
	}
	hist := fd.HistoryFunc(func(p model.ProcessID, t model.Time) model.FDValue {
		var leader model.ProcessID
		switch p {
		case 0:
			if t <= 8 {
				leader = 0
			} else {
				leader = 2
			}
		case 1:
			if t <= 60 {
				leader = 2
			} else {
				leader = 0
			}
		default:
			leader = 2
		}
		return fd.PairValue{
			First:  fd.LeaderValue{Leader: leader},
			Second: fd.QuorumValue{Quorum: quorum[p]},
		}
	})
	return Scenario{
		Label: "naive-mr/contamination",
		Opts: Options{
			Automaton: consensus.NewMRNaiveNu(props),
			Pattern:   pattern,
			Menu:      HistoryMenu{H: hist},
			Property: func(c *model.Configuration) error {
				return check.SafetyViolation(c, pattern)
			},
			StopAtViolation: true,
		},
		History: hist,
		Bound:   31,
	}
}
