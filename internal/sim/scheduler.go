package sim

import (
	"math/rand"

	"nuconsensus/internal/model"
)

// Scheduler picks, at each logical time, which alive process takes the next
// step and which in-flight message (if any) it receives. Schedulers embody
// the nondeterminism of the model (§2.4): asynchronous process speeds and
// message delays.
type Scheduler interface {
	// Next returns the process to step at time t and the message it
	// receives (nil encodes λ). alive is Π ∖ F(t); it is never empty when
	// Next is called. The returned message must be pending for the returned
	// process in c.Buffer.
	Next(t model.Time, alive model.ProcessSet, c *model.Configuration) (model.ProcessID, *model.Message)
}

// FairScheduler schedules processes in shuffled passes (every alive process
// steps once per pass) and delivers the oldest pending message with
// probability DeliverProb, forcing delivery after MaxSkip consecutive
// λ-receives at a process. With MaxSkip < ∞ this realizes the two
// admissibility properties (§2.6) on any infinite execution: every correct
// process steps infinitely often, and every message to a correct process is
// eventually received (oldest-first + forced delivery).
type FairScheduler struct {
	rng         *rand.Rand
	deliverProb float64
	maxSkip     int

	// pass is a window into passBuf, refilled in place when exhausted, so
	// the per-pass refill allocates nothing (the step loop's steady state
	// must be allocation-free, DESIGN.md §8). skipped is indexed by process
	// ID; an array beats a map here both on lookup cost and on allocation.
	pass    []model.ProcessID
	passBuf [model.MaxProcesses]model.ProcessID
	skipped [model.MaxProcesses]int
}

// NewFairScheduler returns a fair scheduler with the given seed. deliverProb
// is the per-step probability of receiving the oldest pending message
// (default 0.75 if ≤ 0); maxSkip bounds consecutive λ-receives while
// messages are pending (default 4 if ≤ 0).
func NewFairScheduler(seed int64, deliverProb float64, maxSkip int) *FairScheduler {
	if deliverProb <= 0 {
		deliverProb = 0.75
	}
	if maxSkip <= 0 {
		maxSkip = 4
	}
	return &FairScheduler{
		rng:         rand.New(rand.NewSource(seed)),
		deliverProb: deliverProb,
		maxSkip:     maxSkip,
	}
}

// Next implements Scheduler.
func (s *FairScheduler) Next(_ model.Time, alive model.ProcessSet, c *model.Configuration) (model.ProcessID, *model.Message) {
	p := s.nextProcess(alive)
	m := c.Buffer.Oldest(p)
	if m == nil {
		return p, nil
	}
	if s.rng.Float64() < s.deliverProb || s.skipped[p] >= s.maxSkip {
		s.skipped[p] = 0
		return p, collapseSuperseded(c, p, m)
	}
	s.skipped[p]++
	return p, nil
}

// collapseSuperseded upgrades the delivery of a superseded payload (e.g. a
// DAG snapshot) to the newest pending one from the same sender, dropping
// the subsumed older copies. See model.SupersededPayload.
func collapseSuperseded(c *model.Configuration, p model.ProcessID, m *model.Message) *model.Message {
	if _, ok := m.Payload.(model.SupersededPayload); !ok {
		return m
	}
	return c.Buffer.Collapse(p, m.From, m.Payload.Kind())
}

func (s *FairScheduler) nextProcess(alive model.ProcessSet) model.ProcessID {
	for {
		if len(s.pass) == 0 {
			// Refill in place: same ascending collection and same shuffle
			// (identical rng draws) as the alive.Slice() it replaces, so
			// schedules are byte-for-byte what they were before the
			// allocation was removed.
			n := 0
			alive.ForEach(func(p model.ProcessID) {
				s.passBuf[n] = p
				n++
			})
			s.pass = s.passBuf[:n]
			s.rng.Shuffle(len(s.pass), func(i, j int) {
				s.pass[i], s.pass[j] = s.pass[j], s.pass[i]
			})
		}
		p := s.pass[0]
		s.pass = s.pass[1:]
		if alive.Has(p) {
			return p
		}
		// p crashed mid-pass; skip it.
	}
}

// Choice is one scripted scheduling decision.
type Choice struct {
	P       model.ProcessID
	Deliver bool // receive the oldest pending message (λ if none)
	// From, when non-nil, restricts the delivery to the oldest pending
	// message sent by *From (per-link FIFO, the discipline the concurrent
	// substrates implement). A nil From keeps the original semantics:
	// oldest over all senders. Ignored unless Deliver is set.
	From *model.ProcessID
}

// ScriptedScheduler plays a fixed script of choices, then falls back to a
// fair scheduler. It is the adversary used to stage the paper's
// counterexample executions (the contamination scenario of §6.3 and the
// partition runs of Theorem 7.1).
type ScriptedScheduler struct {
	Script   []Choice
	Fallback Scheduler

	pos int
}

// Next implements Scheduler.
func (s *ScriptedScheduler) Next(t model.Time, alive model.ProcessSet, c *model.Configuration) (model.ProcessID, *model.Message) {
	for s.pos < len(s.Script) {
		ch := s.Script[s.pos]
		s.pos++
		if !alive.Has(ch.P) {
			continue // crashed before its scripted step; drop the choice
		}
		if ch.Deliver {
			var m *model.Message
			if ch.From != nil {
				m = c.Buffer.OldestFrom(ch.P, *ch.From)
			} else {
				m = c.Buffer.Oldest(ch.P)
			}
			if m != nil {
				m = collapseSuperseded(c, ch.P, m)
			}
			return ch.P, m
		}
		return ch.P, nil
	}
	return s.Fallback.Next(t, alive, c)
}

// RoundRobinScheduler steps alive processes in a fixed cyclic order and
// always delivers the oldest pending message. It yields fully deterministic
// executions — useful for reproducible examples and golden tests.
type RoundRobinScheduler struct {
	next model.ProcessID
}

// Next implements Scheduler.
func (s *RoundRobinScheduler) Next(_ model.Time, alive model.ProcessSet, c *model.Configuration) (model.ProcessID, *model.Message) {
	n := model.ProcessID(model.MaxProcesses)
	for i := model.ProcessID(0); i < n; i++ {
		p := (s.next + i) % n
		if alive.Has(p) {
			s.next = (p + 1) % n
			m := c.Buffer.Oldest(p)
			if m != nil {
				m = collapseSuperseded(c, p, m)
			}
			return p, m
		}
	}
	panic("sim: RoundRobinScheduler.Next called with no alive process")
}

// PartialSyncScheduler models partial synchrony: before the (unknown to the
// processes) global stabilization time GST it defers to an arbitrary
// scheduler — typically a hostile or heavily skewed one — and from GST on
// to a timely one (e.g. round-robin with prompt delivery). Heartbeat-based
// detector implementations (internal/hb) are correct exactly because such
// a GST eventually comes.
type PartialSyncScheduler struct {
	GST    model.Time
	Before Scheduler
	After  Scheduler
}

// Next implements Scheduler.
func (s *PartialSyncScheduler) Next(t model.Time, alive model.ProcessSet, c *model.Configuration) (model.ProcessID, *model.Message) {
	if t < s.GST {
		return s.Before.Next(t, alive, c)
	}
	return s.After.Next(t, alive, c)
}
