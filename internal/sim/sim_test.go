package sim_test

import (
	"testing"

	"nuconsensus/internal/check"
	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/substrate"
	"nuconsensus/internal/trace"
)

func checkOutcome(c *model.Configuration) check.ConsensusOutcome {
	return check.OutcomeFromConfig(c)
}

func anucSetup(n int, crashes map[model.ProcessID]model.Time, seed int64) (model.Automaton, *model.FailurePattern, model.History) {
	pattern := model.PatternFromCrashes(n, crashes)
	hist := fd.PairHistory{
		First:  fd.NewOmega(pattern, 80, seed),
		Second: fd.NewSigmaNuPlus(pattern, 80, seed),
	}
	props := make([]int, n)
	for i := range props {
		props[i] = i % 2
	}
	return consensus.NewANuc(props), pattern, hist
}

func TestRunValidatesOptions(t *testing.T) {
	aut, pattern, hist := anucSetup(3, nil, 1)
	cases := []struct {
		name string
		opts sim.Exec
	}{
		{"missing automaton", sim.Exec{Pattern: pattern, History: hist, Scheduler: sim.NewFairScheduler(1, 0, 0), MaxSteps: 10}},
		{"missing steps", sim.Exec{Automaton: aut, Pattern: pattern, History: hist, Scheduler: sim.NewFairScheduler(1, 0, 0)}},
		{"size mismatch", sim.Exec{Automaton: aut, Pattern: model.NewFailurePattern(4), History: hist, Scheduler: sim.NewFairScheduler(1, 0, 0), MaxSteps: 10}},
	}
	for _, tc := range cases {
		if _, err := sim.Run(tc.opts); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// TestSimulatedExecutionIsARun is the key soundness check of the simulator:
// the schedule it produces, together with the times and history, satisfies
// the run properties (1)–(5) of §2.6.
func TestSimulatedExecutionIsARun(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		aut, pattern, hist := anucSetup(4, map[model.ProcessID]model.Time{2: 30}, seed)
		res, err := sim.Run(sim.Exec{
			Automaton:    aut,
			Pattern:      pattern,
			History:      hist,
			Scheduler:    sim.NewFairScheduler(seed, 0.7, 3),
			MaxSteps:     200,
			KeepSchedule: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		run := &model.Run{
			Automaton: aut,
			Pattern:   pattern,
			History:   hist,
			Schedule:  res.Schedule,
			Times:     res.Times,
		}
		if err := run.Validate(); err != nil {
			t.Fatalf("seed %d: simulator produced an invalid run: %v", seed, err)
		}
	}
}

// TestFairSchedulerAdmissibility checks the two admissibility properties on
// a long finite run: every correct process takes many steps, and no message
// to a correct process is stuck while younger ones are delivered (oldest-
// first with forced delivery).
func TestFairSchedulerAdmissibility(t *testing.T) {
	aut, pattern, hist := anucSetup(4, map[model.ProcessID]model.Time{1: 25}, 3)
	rec := &trace.Recorder{RecordSamples: true}
	res, err := sim.Run(sim.Exec{
		Automaton: aut,
		Pattern:   pattern,
		History:   hist,
		Scheduler: sim.NewFairScheduler(3, 0.5, 4),
		MaxSteps:  400,
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := map[model.ProcessID]int{}
	for _, s := range rec.Samples {
		steps[s.P]++
	}
	pattern.Correct().ForEach(func(p model.ProcessID) {
		if steps[p] < 50 {
			t.Errorf("correct %v took only %d steps in 400", p, steps[p])
		}
	})
	// Pending messages to correct processes are bounded-stale: with A_nuc's
	// round structure everything older than the current round gets consumed;
	// here we simply require the buffer not to grow without bound.
	if res.Config.Buffer.Len() > 400 {
		t.Errorf("buffer grew to %d messages", res.Config.Buffer.Len())
	}
}

func TestStopWhenFires(t *testing.T) {
	aut, pattern, hist := anucSetup(3, nil, 9)
	res, err := sim.Run(sim.Exec{
		Automaton: aut,
		Pattern:   pattern,
		History:   hist,
		Scheduler: sim.NewFairScheduler(9, 0.8, 3),
		MaxSteps:  50000,
		StopWhen:  substrate.AllCorrectDecided(pattern),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("expected early stop on decisions")
	}
	if len(substrate.Decisions(res.Config)) != 3 {
		t.Errorf("decisions = %v", substrate.Decisions(res.Config))
	}
}

func TestRoundRobinDeterminism(t *testing.T) {
	run := func() map[model.ProcessID]int {
		aut, pattern, hist := anucSetup(3, nil, 1)
		res, err := sim.Run(sim.Exec{
			Automaton: aut,
			Pattern:   pattern,
			History:   hist,
			Scheduler: &sim.RoundRobinScheduler{},
			MaxSteps:  5000,
			StopWhen:  substrate.AllCorrectDecided(pattern),
		})
		if err != nil {
			t.Fatal(err)
		}
		return substrate.Decisions(res.Config)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic round-robin runs: %v vs %v", a, b)
	}
	for p, v := range a {
		if b[p] != v {
			t.Fatalf("nondeterministic decisions: %v vs %v", a, b)
		}
	}
}

func TestScriptedSchedulerReplay(t *testing.T) {
	// Record a fair run, replay its choices, require identical decisions.
	aut, pattern, hist := anucSetup(3, map[model.ProcessID]model.Time{2: 40}, 4)
	res, err := sim.Run(sim.Exec{
		Automaton:    aut,
		Pattern:      pattern,
		History:      hist,
		Scheduler:    sim.NewFairScheduler(4, 0.8, 3),
		MaxSteps:     2000,
		StopWhen:     substrate.AllCorrectDecided(pattern),
		KeepSchedule: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("baseline run did not decide")
	}
	script := make([]sim.Choice, len(res.Schedule))
	for i, e := range res.Schedule {
		script[i] = sim.Choice{P: e.P, Deliver: e.M != nil}
	}
	res2, err := sim.Run(sim.Exec{
		Automaton: aut,
		Pattern:   pattern,
		History:   hist,
		Scheduler: &sim.ScriptedScheduler{Script: script, Fallback: sim.NewFairScheduler(99, 0.8, 3)},
		MaxSteps:  len(script),
	})
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := substrate.Decisions(res.Config), substrate.Decisions(res2.Config)
	if len(d1) != len(d2) {
		t.Fatalf("replay diverged: %v vs %v", d1, d2)
	}
	for p, v := range d1 {
		if d2[p] != v {
			t.Fatalf("replay diverged at %v: %d vs %d", p, v, d2[p])
		}
	}
}

func TestSchedulerSkipsCrashedScriptEntries(t *testing.T) {
	aut, pattern, hist := anucSetup(3, map[model.ProcessID]model.Time{0: 1}, 5)
	// Script names only the crashed process; scheduler must fall through to
	// the fallback instead of stepping it.
	s := &sim.ScriptedScheduler{
		Script:   []sim.Choice{{P: 0, Deliver: false}, {P: 0, Deliver: true}},
		Fallback: sim.NewFairScheduler(5, 0.8, 3),
	}
	res, err := sim.Run(sim.Exec{
		Automaton: aut,
		Pattern:   pattern,
		History:   hist,
		Scheduler: s,
		MaxSteps:  50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 50 {
		t.Errorf("run ended early: %d", res.Steps)
	}
}

func TestPartialSyncScheduler(t *testing.T) {
	aut, pattern, hist := anucSetup(3, nil, 8)
	inner := &sim.PartialSyncScheduler{
		GST:    50,
		Before: sim.NewFairScheduler(8, 0.1, 50), // starved prefix
		After:  &sim.RoundRobinScheduler{},
	}
	rec := &trace.Recorder{RecordSamples: true}
	res, err := sim.Run(sim.Exec{
		Automaton: aut,
		Pattern:   pattern,
		History:   hist,
		Scheduler: inner,
		MaxSteps:  300,
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Steps happen on both sides of GST, and the run completes its budget.
	pre, post := 0, 0
	for _, s := range rec.Samples {
		if s.T < 50 {
			pre++
		} else {
			post++
		}
	}
	if pre == 0 || post == 0 {
		t.Fatalf("expected steps on both sides of GST (pre=%d post=%d)", pre, post)
	}
	if res.Steps != 300 {
		t.Fatalf("steps = %d", res.Steps)
	}
	// The starved prefix delivers far fewer messages per step than the
	// timely suffix.
	if rec.MessagesRecvd == 0 {
		t.Fatal("no deliveries at all")
	}
}

// TestAllProcessesCrash: the run ends cleanly when nobody is left alive —
// the consensus properties are vacuous (correct(F) = ∅).
func TestAllProcessesCrash(t *testing.T) {
	aut, _, hist := anucSetup(3, nil, 1)
	pattern := model.PatternFromCrashes(3, map[model.ProcessID]model.Time{0: 5, 1: 9, 2: 13})
	res, err := sim.Run(sim.Exec{
		Automaton: aut,
		Pattern:   pattern,
		History:   hist,
		Scheduler: sim.NewFairScheduler(1, 0.8, 3),
		MaxSteps:  200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps >= 13 {
		t.Errorf("steps = %d, want < 13 (everyone dead by t=13)", res.Steps)
	}
	out := checkOutcome(res.Config)
	if err := out.NonuniformConsensus(pattern); err != nil {
		t.Errorf("vacuous consensus must pass: %v", err)
	}
}
