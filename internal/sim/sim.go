// Package sim drives algorithm automata through finite executions of the
// asynchronous model: at each logical time a scheduler picks an alive
// process and a message (or λ), the process's failure-detector module is
// read from the history, and one atomic step (§2.4) is applied. The
// resulting execution is, by construction, a run in the sense of §2.6; with
// a fair scheduler and enough steps it approximates an admissible run.
//
// The package exposes two layers. Run is the step-level engine with an
// injected Scheduler — the full generality the adversarial experiments
// need (scripted schedulers, partial synchrony, kept schedules). S is the
// deterministic "sim" backend of internal/substrate built on top of it: it
// derives a fair (or partially synchronous) scheduler from the shared
// Options, so the same experiments run unchanged on the concurrent
// substrates.
package sim

import (
	"context"
	"fmt"

	"nuconsensus/internal/model"
	"nuconsensus/internal/obs"
	"nuconsensus/internal/substrate"
	"nuconsensus/internal/trace"
)

func init() { substrate.Register(S{}) }

// Exec configures one step-level execution: the run's inputs plus the
// scheduler embodying the model's nondeterminism. (The shared, substrate-
// portable knobs — seed, fairness budget, GST — live in
// substrate.Options; Exec is the lower layer they compile down to.)
type Exec struct {
	Automaton model.Automaton
	Pattern   *model.FailurePattern
	History   model.History
	Scheduler Scheduler

	// MaxSteps bounds the execution length (required, > 0).
	MaxSteps int
	// StopWhen, if non-nil, ends the execution early when it returns true
	// (checked after each step).
	StopWhen func(c *model.Configuration, t model.Time) bool
	// Recorder, if non-nil, receives step/sample/decision events.
	Recorder *trace.Recorder
	// Bus, if non-nil, receives the causal event stream (package obs). On
	// this substrate the emission order is a pure function of the inputs,
	// so exported event logs are byte-identical across runs.
	Bus *obs.Bus
	// KeepSchedule retains the executed schedule and times in the Result so
	// it can be validated or merged (costs memory).
	KeepSchedule bool
}

// Run executes the automaton under the given pattern, history and
// scheduler, and returns the shared substrate result.
func Run(x Exec) (*substrate.Result, error) {
	if err := substrate.Validate("sim", x.Automaton, x.History, x.Pattern, substrate.Options{MaxSteps: x.MaxSteps}); err != nil {
		return nil, err
	}
	if x.Scheduler == nil {
		return nil, fmt.Errorf("sim: Scheduler is required")
	}

	c := model.InitialConfiguration(x.Automaton)
	res := &substrate.Result{Config: c, Rec: x.Recorder}
	decided := make(map[model.ProcessID]bool)

	// Record any processes that decide in their initial state (possible for
	// trivial automata) and initial emulated outputs.
	snapshotOutputs(x, c, 0, decided)

	// prevAlive tracks the alive set so crash events are emitted exactly
	// once, at the first time the pattern reports a process down.
	prevAlive := model.FullSet(x.Automaton.N())

	for step := 0; step < x.MaxSteps; step++ {
		t := model.Time(step + 1)
		alive := x.Pattern.Alive(t)
		if x.Bus != nil && alive != prevAlive {
			for i := 0; i < x.Automaton.N(); i++ {
				q := model.ProcessID(i)
				if prevAlive.Has(q) && !alive.Has(q) {
					x.Bus.OnCrash(t, q)
				}
			}
		}
		prevAlive = alive
		if alive.IsEmpty() {
			break // everyone has crashed; the run is over
		}
		p, m := x.Scheduler.Next(t, alive, c)
		if !alive.Has(p) {
			return nil, fmt.Errorf("sim: scheduler chose crashed process %s at t=%d", p, t)
		}
		d := x.History.Output(p, t)
		e := model.Step{P: p, M: m, D: d}
		if !e.Applicable(c) {
			return nil, fmt.Errorf("sim: scheduler produced inapplicable step %v", e)
		}
		sent := c.Apply(x.Automaton, e)
		res.Steps++
		res.Ticks = t
		x.Recorder.OnStep(step, t, p, m, d, len(sent))
		if x.Recorder != nil {
			for _, sm := range sent {
				x.Recorder.OnSend(sm.Payload)
			}
		}
		x.Bus.OnStep(t, p, m, d, sent, c.States[p])
		if x.KeepSchedule {
			res.Schedule = append(res.Schedule, e)
			res.Times = append(res.Times, t)
		}
		snapshotOutputs(x, c, t, decided)
		if x.StopWhen != nil && x.StopWhen(c, t) {
			res.Stopped = true
			break
		}
	}
	return substrate.Finish(res, x.Pattern), nil
}

// snapshotOutputs records new decisions and emulated-FD outputs.
func snapshotOutputs(x Exec, c *model.Configuration, t model.Time, decided map[model.ProcessID]bool) {
	if x.Recorder == nil {
		return
	}
	for i, s := range c.States {
		substrate.ObserveState(x.Recorder, t, model.ProcessID(i), s, decided)
	}
}

// S is the deterministic step-simulator backend: substrate name "sim".
type S struct{}

// New returns the sim substrate handle.
func New() substrate.Substrate { return S{} }

// Name implements substrate.Substrate.
func (S) Name() string { return "sim" }

// Deterministic implements substrate.Substrate: equal inputs give
// byte-identical results.
func (S) Deterministic() bool { return true }

// Run implements substrate.Substrate by compiling the shared options down
// to a scheduled step-level execution.
func (S) Run(ctx context.Context, aut model.Automaton, hist model.History, pattern *model.FailurePattern, opts substrate.Options) (*substrate.Result, error) {
	if err := substrate.Validate("sim", aut, hist, pattern, opts); err != nil {
		return nil, err
	}
	var stop func(*model.Configuration, model.Time) bool
	if opts.StopWhenDecided {
		stop = substrate.AllCorrectDecided(pattern)
	}
	cancelled := false
	stopOrCancel := func(c *model.Configuration, t model.Time) bool {
		if ctx.Err() != nil {
			cancelled = true
			return true
		}
		return stop != nil && stop(c, t)
	}
	res, err := Run(Exec{
		Automaton: aut,
		Pattern:   pattern,
		History:   hist,
		Scheduler: SchedulerFor(opts),
		MaxSteps:  opts.MaxSteps,
		StopWhen:  stopOrCancel,
		Recorder:  opts.Recorder,
		Bus:       opts.Bus,
	})
	if cancelled {
		return nil, ctx.Err()
	}
	return res, err
}

// SchedulerFor builds the scheduler the shared options describe: a fair
// scheduler with the options' fairness budget (defaults 0.8 / 3), or — when
// GST is set — a partially synchronous one that is hostile before GST and
// timely after.
func SchedulerFor(opts substrate.Options) Scheduler {
	if opts.GST > 0 {
		return &PartialSyncScheduler{
			GST:    opts.GST,
			Before: NewFairScheduler(opts.Seed, 0.3, 10),
			After:  NewFairScheduler(opts.Seed+1, 0.9, 2),
		}
	}
	deliverProb := opts.DeliverProb
	if deliverProb <= 0 {
		deliverProb = 0.8
	}
	maxSkip := opts.MaxSkip
	if maxSkip <= 0 {
		maxSkip = 3
	}
	return NewFairScheduler(opts.Seed, deliverProb, maxSkip)
}
