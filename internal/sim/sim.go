// Package sim drives algorithm automata through finite executions of the
// asynchronous model: at each logical time a scheduler picks an alive
// process and a message (or λ), the process's failure-detector module is
// read from the history, and one atomic step (§2.4) is applied. The
// resulting execution is, by construction, a run in the sense of §2.6; with
// a fair scheduler and enough steps it approximates an admissible run.
package sim

import (
	"errors"
	"fmt"

	"nuconsensus/internal/model"
	"nuconsensus/internal/trace"
)

// Options configures one simulated execution.
type Options struct {
	Automaton model.Automaton
	Pattern   *model.FailurePattern
	History   model.History
	Scheduler Scheduler

	// MaxSteps bounds the execution length (required, > 0).
	MaxSteps int
	// StopWhen, if non-nil, ends the execution early when it returns true
	// (checked after each step).
	StopWhen func(c *model.Configuration, t model.Time) bool
	// Recorder, if non-nil, receives step/sample/decision events.
	Recorder *trace.Recorder
	// KeepSchedule retains the executed schedule and times in the Result so
	// it can be validated or merged (costs memory).
	KeepSchedule bool
}

// Result is the outcome of a simulated execution.
type Result struct {
	Config  *model.Configuration
	Steps   int
	Time    model.Time // time after the last step
	Stopped bool       // StopWhen fired (vs. MaxSteps exhausted)

	Schedule model.Schedule // non-nil iff Options.KeepSchedule
	Times    []model.Time
}

// Run executes the automaton under the given pattern, history and scheduler.
func Run(opts Options) (*Result, error) {
	if opts.Automaton == nil || opts.Pattern == nil || opts.History == nil || opts.Scheduler == nil {
		return nil, errors.New("sim: Automaton, Pattern, History and Scheduler are required")
	}
	if opts.MaxSteps <= 0 {
		return nil, errors.New("sim: MaxSteps must be positive")
	}
	if opts.Automaton.N() != opts.Pattern.N() {
		return nil, fmt.Errorf("sim: automaton n=%d but pattern n=%d", opts.Automaton.N(), opts.Pattern.N())
	}

	c := model.InitialConfiguration(opts.Automaton)
	res := &Result{Config: c}
	decided := make(map[model.ProcessID]bool)

	// Record any processes that decide in their initial state (possible for
	// trivial automata) and initial emulated outputs.
	snapshotOutputs(opts, c, 0, decided, res)

	for step := 0; step < opts.MaxSteps; step++ {
		t := model.Time(step + 1)
		alive := opts.Pattern.Alive(t)
		if alive.IsEmpty() {
			break // everyone has crashed; the run is over
		}
		p, m := opts.Scheduler.Next(t, alive, c)
		if !alive.Has(p) {
			return nil, fmt.Errorf("sim: scheduler chose crashed process %s at t=%d", p, t)
		}
		d := opts.History.Output(p, t)
		e := model.Step{P: p, M: m, D: d}
		if !e.Applicable(c) {
			return nil, fmt.Errorf("sim: scheduler produced inapplicable step %v", e)
		}
		sent := c.Apply(opts.Automaton, e)
		res.Steps++
		res.Time = t
		opts.Recorder.OnStep(step, t, p, m, d, len(sent))
		if opts.Recorder != nil {
			for _, sm := range sent {
				opts.Recorder.OnSend(sm.Payload)
			}
		}
		if opts.KeepSchedule {
			res.Schedule = append(res.Schedule, e)
			res.Times = append(res.Times, t)
		}
		snapshotOutputs(opts, c, t, decided, res)
		if opts.StopWhen != nil && opts.StopWhen(c, t) {
			res.Stopped = true
			break
		}
	}
	return res, nil
}

// snapshotOutputs records new decisions and emulated-FD outputs.
func snapshotOutputs(opts Options, c *model.Configuration, t model.Time, decided map[model.ProcessID]bool, _ *Result) {
	if opts.Recorder == nil {
		return
	}
	for i, s := range c.States {
		p := model.ProcessID(i)
		if !decided[p] {
			if v, ok := model.DecisionOf(s); ok {
				decided[p] = true
				opts.Recorder.OnDecision(t, p, v)
			}
		}
		if out, ok := s.(model.FDOutput); ok {
			opts.Recorder.OnOutput(t, p, out.EmulatedOutput())
		}
	}
}

// AllCorrectDecided returns a StopWhen predicate that fires once every
// correct process (per pattern) has decided.
func AllCorrectDecided(pattern *model.FailurePattern) func(*model.Configuration, model.Time) bool {
	correct := pattern.Correct()
	return func(c *model.Configuration, _ model.Time) bool {
		done := true
		correct.ForEach(func(p model.ProcessID) {
			if _, ok := model.DecisionOf(c.States[p]); !ok {
				done = false
			}
		})
		return done
	}
}

// Decisions extracts the current decision of each process from a
// configuration (NoDecision for processes that have not decided).
func Decisions(c *model.Configuration) map[model.ProcessID]int {
	out := make(map[model.ProcessID]int)
	for i, s := range c.States {
		if v, ok := model.DecisionOf(s); ok {
			out[model.ProcessID(i)] = v
		}
	}
	return out
}
