// Package trace records what happened during a simulated or live execution:
// steps, failure-detector samples, emulated failure-detector outputs,
// decisions, and message counters. Checkers in internal/check consume these
// records to verify the paper's properties on finite executions.
package trace

import (
	"fmt"
	"strings"

	"nuconsensus/internal/model"
)

// Sample records one failure-detector query: process p saw value Val at
// time T. For emulated detectors, Sample also records the values of the
// output_p variables over time (§2.9).
type Sample struct {
	P   model.ProcessID
	T   model.Time
	Val model.FDValue
}

// Decision records that process P decided Val at time T.
type Decision struct {
	P   model.ProcessID
	T   model.Time
	Val int
}

// StepRecord summarizes one step for debugging traces.
type StepRecord struct {
	Index    int
	T        model.Time
	P        model.ProcessID
	Received string // "λ" or the message
	Sent     int    // number of messages sent
}

// Recorder accumulates execution records. The zero value is ready to use.
// RecordSteps controls whether per-step records are kept; RecordSamples
// whether failure-detector samples and emulated outputs are kept (both are
// the bulky parts; counters are always maintained). Callers that read
// Samples or Outputs must set RecordSamples — with it off, samples are
// counted in DroppedSamples/DroppedOutputs instead of retained, which keeps
// long experiment sweeps from accumulating per-step garbage.
type Recorder struct {
	RecordSteps   bool
	RecordSamples bool

	Steps     []StepRecord
	Samples   []Sample // FD values seen in steps (RecordSamples only)
	Outputs   []Sample // emulated FD output_p values (RecordSamples only)
	Decisions []Decision

	StepCount     int
	MessagesSent  int
	MessagesRecvd int
	SentKinds     map[string]int

	DroppedSteps   int // step records skipped because RecordSteps is off
	DroppedSamples int // FD samples skipped because RecordSamples is off
	DroppedOutputs int // output samples skipped because RecordSamples is off
}

// OnSend counts one sent payload by kind.
func (r *Recorder) OnSend(pl model.Payload) {
	if r == nil {
		return
	}
	if r.SentKinds == nil {
		r.SentKinds = make(map[string]int)
	}
	r.SentKinds[pl.Kind()]++
}

// OnStep records one executed step.
func (r *Recorder) OnStep(idx int, t model.Time, p model.ProcessID, m *model.Message, d model.FDValue, sent int) {
	if r == nil {
		return
	}
	r.StepCount++
	r.MessagesSent += sent
	if m != nil {
		r.MessagesRecvd++
	}
	if d != nil {
		r.OnFDSample(t, p, d)
	}
	if r.RecordSteps {
		rec := StepRecord{Index: idx, T: t, P: p, Received: "λ", Sent: sent}
		if m != nil {
			rec.Received = m.String()
		}
		r.Steps = append(r.Steps, rec)
	} else {
		r.DroppedSteps++
	}
}

// OnFDSample records one failure-detector sample. With RecordSamples off
// the sample is dropped (and counted), not retained.
func (r *Recorder) OnFDSample(t model.Time, p model.ProcessID, v model.FDValue) {
	if r == nil || v == nil {
		return
	}
	if !r.RecordSamples {
		r.DroppedSamples++
		return
	}
	r.Samples = append(r.Samples, Sample{P: p, T: t, Val: v})
}

// OnOutput records the value of an emulated failure-detector output
// variable after a step.
func (r *Recorder) OnOutput(t model.Time, p model.ProcessID, v model.FDValue) {
	if r == nil || v == nil {
		return
	}
	if !r.RecordSamples {
		r.DroppedOutputs++
		return
	}
	r.Outputs = append(r.Outputs, Sample{P: p, T: t, Val: v})
}

// OnDecision records a decision event.
func (r *Recorder) OnDecision(t model.Time, p model.ProcessID, v int) {
	if r == nil {
		return
	}
	r.Decisions = append(r.Decisions, Decision{P: p, T: t, Val: v})
}

// DecisionTimes returns, per process, the time of its (first) decision.
func (r *Recorder) DecisionTimes() map[model.ProcessID]model.Time {
	out := make(map[model.ProcessID]model.Time, len(r.Decisions))
	for _, d := range r.Decisions {
		if _, ok := out[d.P]; !ok {
			out[d.P] = d.T
		}
	}
	return out
}

// DecidedValues returns, per process, the value it (first) decided.
func (r *Recorder) DecidedValues() map[model.ProcessID]int {
	out := make(map[model.ProcessID]int, len(r.Decisions))
	for _, d := range r.Decisions {
		if _, ok := out[d.P]; !ok {
			out[d.P] = d.Val
		}
	}
	return out
}

// Summary renders a one-line summary for CLI tools, including how many
// records the RecordSteps/RecordSamples knobs dropped.
func (r *Recorder) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "steps=%d sent=%d recvd=%d decisions=%d",
		r.StepCount, r.MessagesSent, r.MessagesRecvd, len(r.Decisions))
	if n := r.DroppedSteps + r.DroppedSamples + r.DroppedOutputs; n > 0 {
		fmt.Fprintf(&b, " dropped=%d(steps=%d,samples=%d,outputs=%d)",
			n, r.DroppedSteps, r.DroppedSamples, r.DroppedOutputs)
	}
	return b.String()
}
