// Package trace records what happened during a simulated or live execution:
// steps, failure-detector samples, emulated failure-detector outputs,
// decisions, and message counters. Checkers in internal/check consume these
// records to verify the paper's properties on finite executions.
package trace

import (
	"fmt"
	"strings"

	"nuconsensus/internal/model"
)

// Sample records one failure-detector query: process p saw value Val at
// time T. For emulated detectors, Sample also records the values of the
// output_p variables over time (§2.9).
type Sample struct {
	P   model.ProcessID
	T   model.Time
	Val model.FDValue
}

// Decision records that process P decided Val at time T.
type Decision struct {
	P   model.ProcessID
	T   model.Time
	Val int
}

// StepRecord summarizes one step for debugging traces.
type StepRecord struct {
	Index    int
	T        model.Time
	P        model.ProcessID
	Received string // "λ" or the message
	Sent     int    // number of messages sent
}

// Recorder accumulates execution records. The zero value is ready to use.
// RecordSteps controls whether per-step records are kept (they are the
// bulkiest part; counters are always maintained).
type Recorder struct {
	RecordSteps bool

	Steps     []StepRecord
	Samples   []Sample // FD values seen in steps
	Outputs   []Sample // emulated FD output_p values, sampled after steps
	Decisions []Decision

	StepCount     int
	MessagesSent  int
	MessagesRecvd int
	SentKinds     map[string]int
}

// OnSend counts one sent payload by kind.
func (r *Recorder) OnSend(pl model.Payload) {
	if r == nil {
		return
	}
	if r.SentKinds == nil {
		r.SentKinds = make(map[string]int)
	}
	r.SentKinds[pl.Kind()]++
}

// OnStep records one executed step.
func (r *Recorder) OnStep(idx int, t model.Time, p model.ProcessID, m *model.Message, d model.FDValue, sent int) {
	if r == nil {
		return
	}
	r.StepCount++
	r.MessagesSent += sent
	if m != nil {
		r.MessagesRecvd++
	}
	if d != nil {
		r.Samples = append(r.Samples, Sample{P: p, T: t, Val: d})
	}
	if r.RecordSteps {
		rec := StepRecord{Index: idx, T: t, P: p, Received: "λ", Sent: sent}
		if m != nil {
			rec.Received = m.String()
		}
		r.Steps = append(r.Steps, rec)
	}
}

// OnOutput records the value of an emulated failure-detector output
// variable after a step.
func (r *Recorder) OnOutput(t model.Time, p model.ProcessID, v model.FDValue) {
	if r == nil || v == nil {
		return
	}
	r.Outputs = append(r.Outputs, Sample{P: p, T: t, Val: v})
}

// OnDecision records a decision event.
func (r *Recorder) OnDecision(t model.Time, p model.ProcessID, v int) {
	if r == nil {
		return
	}
	r.Decisions = append(r.Decisions, Decision{P: p, T: t, Val: v})
}

// DecisionTimes returns, per process, the time of its (first) decision.
func (r *Recorder) DecisionTimes() map[model.ProcessID]model.Time {
	out := make(map[model.ProcessID]model.Time, len(r.Decisions))
	for _, d := range r.Decisions {
		if _, ok := out[d.P]; !ok {
			out[d.P] = d.T
		}
	}
	return out
}

// DecidedValues returns, per process, the value it (first) decided.
func (r *Recorder) DecidedValues() map[model.ProcessID]int {
	out := make(map[model.ProcessID]int, len(r.Decisions))
	for _, d := range r.Decisions {
		if _, ok := out[d.P]; !ok {
			out[d.P] = d.Val
		}
	}
	return out
}

// Summary renders a one-line summary for CLI tools.
func (r *Recorder) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "steps=%d sent=%d recvd=%d decisions=%d",
		r.StepCount, r.MessagesSent, r.MessagesRecvd, len(r.Decisions))
	return b.String()
}
