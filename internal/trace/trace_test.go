package trace

import (
	"strings"
	"testing"

	"nuconsensus/internal/model"
)

type pl struct{ k string }

func (p pl) Kind() string   { return p.k }
func (p pl) String() string { return p.k }

type val struct{}

func (val) String() string { return "v" }

func TestRecorderCounters(t *testing.T) {
	r := &Recorder{RecordSamples: true}
	m := &model.Message{From: 1, To: 0, Payload: pl{"X"}}
	r.OnStep(0, 1, 0, nil, val{}, 2)
	r.OnStep(1, 2, 0, m, val{}, 0)
	if r.StepCount != 2 || r.MessagesSent != 2 || r.MessagesRecvd != 1 {
		t.Errorf("counters: steps=%d sent=%d recvd=%d", r.StepCount, r.MessagesSent, r.MessagesRecvd)
	}
	if len(r.Samples) != 2 {
		t.Errorf("samples = %d", len(r.Samples))
	}
	if !strings.Contains(r.Summary(), "steps=2") {
		t.Errorf("Summary() = %q", r.Summary())
	}
}

func TestRecorderDropsSamplesWhenDisabled(t *testing.T) {
	r := &Recorder{} // zero value: both record knobs off
	m := &model.Message{From: 1, To: 0, Payload: pl{"X"}}
	r.OnStep(0, 1, 0, nil, val{}, 2)
	r.OnStep(1, 2, 0, m, val{}, 0)
	r.OnOutput(3, 0, val{})
	if len(r.Samples) != 0 || len(r.Outputs) != 0 || len(r.Steps) != 0 {
		t.Errorf("retained records with knobs off: samples=%d outputs=%d steps=%d",
			len(r.Samples), len(r.Outputs), len(r.Steps))
	}
	if r.StepCount != 2 || r.MessagesSent != 2 || r.MessagesRecvd != 1 {
		t.Errorf("counters must survive knobs: steps=%d sent=%d recvd=%d",
			r.StepCount, r.MessagesSent, r.MessagesRecvd)
	}
	if r.DroppedSamples != 2 || r.DroppedOutputs != 1 || r.DroppedSteps != 2 {
		t.Errorf("drop counts: samples=%d outputs=%d steps=%d",
			r.DroppedSamples, r.DroppedOutputs, r.DroppedSteps)
	}
	if s := r.Summary(); !strings.Contains(s, "dropped=5") {
		t.Errorf("Summary() = %q, want dropped=5", s)
	}
}

func TestRecorderStepRecords(t *testing.T) {
	r := &Recorder{RecordSteps: true}
	m := &model.Message{From: 1, To: 0, Payload: pl{"X"}}
	r.OnStep(0, 1, 0, nil, val{}, 0)
	r.OnStep(1, 2, 0, m, val{}, 1)
	if len(r.Steps) != 2 {
		t.Fatalf("Steps = %d", len(r.Steps))
	}
	if r.Steps[0].Received != "λ" {
		t.Errorf("λ step recorded as %q", r.Steps[0].Received)
	}
	if !strings.Contains(r.Steps[1].Received, "X") {
		t.Errorf("message step recorded as %q", r.Steps[1].Received)
	}
}

func TestRecorderDecisions(t *testing.T) {
	r := &Recorder{}
	r.OnDecision(5, 1, 7)
	r.OnDecision(9, 1, 7) // duplicate: keep first
	r.OnDecision(6, 2, 8)
	times := r.DecisionTimes()
	if times[1] != 5 || times[2] != 6 {
		t.Errorf("DecisionTimes = %v", times)
	}
	vals := r.DecidedValues()
	if vals[1] != 7 || vals[2] != 8 {
		t.Errorf("DecidedValues = %v", vals)
	}
}

func TestRecorderOutputsAndKinds(t *testing.T) {
	r := &Recorder{RecordSamples: true}
	r.OnOutput(3, 0, val{})
	r.OnOutput(4, 0, nil) // nil outputs are skipped
	if len(r.Outputs) != 1 {
		t.Errorf("Outputs = %d", len(r.Outputs))
	}
	r.OnSend(pl{"A"})
	r.OnSend(pl{"A"})
	r.OnSend(pl{"B"})
	if r.SentKinds["A"] != 2 || r.SentKinds["B"] != 1 {
		t.Errorf("SentKinds = %v", r.SentKinds)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.OnStep(0, 1, 0, nil, val{}, 1)
	r.OnDecision(1, 0, 1)
	r.OnOutput(1, 0, val{})
	r.OnSend(pl{"A"})
}
