package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is the runtime profiling endpoint started by -debug-addr:
// net/http/pprof and expvar on a private mux (nothing leaks onto
// http.DefaultServeMux), plus the registry's deterministic text dump.
type DebugServer struct {
	Addr string // the bound address, useful when the flag asked for :0
	srv  *http.Server
	ln   net.Listener
}

// ServeDebug binds addr and serves, in the background:
//
//	/debug/pprof/...   the standard pprof index, profiles and traces
//	/debug/vars        expvar (including the registry, see PublishExpvar)
//	/metrics           reg.WriteTo's sorted text dump (may be nil)
//
// The caller owns the returned server and should Close it on shutdown;
// commands typically let process exit tear it down.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if reg != nil {
			reg.WriteTo(w)
		}
	})
	ds := &DebugServer{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
	}
	go ds.srv.Serve(ln)
	return ds, nil
}

// Close shuts the debug server down.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}

// PublishExpvar exposes the registry under the given expvar name as a map
// of metric name to value (histograms report their sample count). expvar
// panics on duplicate names, so re-publishing the same name is a no-op —
// tests and long-lived commands can call this freely.
func PublishExpvar(name string, reg *Registry) {
	if reg == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		out := make(map[string]int64)
		for _, s := range reg.Snapshot() {
			out[s.Name] = s.Value
		}
		return out
	}))
}
