package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// spanFixtures covers every stage with its meaningful field combination.
var spanFixtures = []SpanEvent{
	{Stage: StageSend, P: 1, Client: 3, Seq: 7, Slot: -1, Wall: 1000},
	{Stage: StageIngress, P: 0, Client: 3, Seq: 7, Slot: -1, T0: 1000, Wall: 1200},
	{Stage: StageSeal, P: 0, Client: 3, Seq: 7, Slot: -1, N: 8, Wall: 1300},
	{Stage: StageInject, P: 0, Client: 3, Seq: 7, Batch: 130, Slot: -1, N: 8},
	{Stage: StageDecide, P: 0, Batch: 130, Slot: 0, N: 2},
	{Stage: StageDecide, P: 2, Batch: 131, Slot: 5, N: 1, Wall: 2000},
	{Stage: StageApply, P: 0, Client: 3, Seq: 7, Batch: 130, Slot: 0, N: 0},
	{Stage: StageReply, P: 0, Client: 3, Seq: 7, Slot: -1, N: 2, Wall: 2500},
	{Stage: StageRecv, P: 1, Client: 3, Seq: 7, Slot: -1, Wall: 2600},
}

func TestSpanLineRoundTrip(t *testing.T) {
	for _, ev := range spanFixtures {
		line := SpanLine(ev)
		if !strings.HasSuffix(line, "}\n") || !strings.HasPrefix(line, `{"k":"span"`) {
			t.Fatalf("malformed span line: %q", line)
		}
		got, ok, err := ParseSpanLine(strings.TrimSpace(line))
		if err != nil || !ok {
			t.Fatalf("ParseSpanLine(%q): ok=%v err=%v", line, ok, err)
		}
		if got != ev {
			t.Errorf("round trip changed the event:\n in  %+v\n out %+v", ev, got)
		}
	}
}

func TestSpanLineFixedBytes(t *testing.T) {
	// The canonical byte format is what trace-smoke diffs ride on: pin it.
	ev := SpanEvent{Stage: StageApply, P: 2, Client: 9, Seq: 4, Batch: 577, Slot: 12, N: 0, Wall: 0}
	want := `{"k":"span","st":"apply","p":2,"c":9,"seq":4,"b":577,"slot":12}` + "\n"
	if got := SpanLine(ev); got != want {
		t.Errorf("SpanLine = %q, want %q", got, want)
	}
}

func TestParseSpanLineSkipsOtherKinds(t *testing.T) {
	_, ok, err := ParseSpanLine(`{"k":"step","t":3,"p":0,"l":1,"v":2}`)
	if err != nil {
		t.Fatalf("foreign kind should not error: %v", err)
	}
	if ok {
		t.Error("foreign kind parsed as a span")
	}
	if _, _, err := ParseSpanLine(`{"k":`); err == nil {
		t.Error("truncated JSON should error")
	}
}

func TestTracerLogicalClockIsDeterministic(t *testing.T) {
	emit := func() string {
		var buf bytes.Buffer
		reg := NewRegistry()
		tr := NewTracer(&buf, nil, reg)
		for _, ev := range spanFixtures {
			ev.Wall = 0 // let the tracer stamp
			tr.Span(ev)
		}
		if err := tr.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if got := reg.Counter("obs.spans").Value(); got != int64(len(spanFixtures)) {
			t.Fatalf("obs.spans = %d, want %d", got, len(spanFixtures))
		}
		return buf.String()
	}
	a, b := emit(), emit()
	if a != b {
		t.Errorf("two identical emissions under the Logical clock differ:\n%s\nvs\n%s", a, b)
	}
	if strings.Contains(a, `"w":`) {
		t.Errorf("Logical clock leaked wall stamps into the span stream:\n%s", a)
	}
}

func TestTracerReadSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, nil, nil)
	for _, ev := range spanFixtures {
		tr.Span(ev)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if tr.Spans() != int64(len(spanFixtures)) {
		t.Fatalf("Spans() = %d, want %d", tr.Spans(), len(spanFixtures))
	}
	// Mix in a foreign JSONL line: ReadSpans must skim past it.
	buf.WriteString(`{"k":"decide","t":9,"p":1,"l":4,"v":1}` + "\n")
	got, err := ReadSpans(&buf)
	if err != nil {
		t.Fatalf("ReadSpans: %v", err)
	}
	if len(got) != len(spanFixtures) {
		t.Fatalf("ReadSpans returned %d events, want %d", len(got), len(spanFixtures))
	}
	for i, ev := range spanFixtures {
		if got[i] != ev {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], ev)
		}
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, Wall{}, NewRegistry())
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Span(SpanEvent{Stage: StageApply, P: w, Client: uint32(w + 1), Seq: uint64(i + 1), Slot: i})
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	evs, err := ReadSpans(&buf)
	if err != nil {
		t.Fatalf("ReadSpans: %v", err)
	}
	if len(evs) != workers*per {
		t.Fatalf("got %d events, want %d (lines must never interleave)", len(evs), workers*per)
	}
	for _, ev := range evs {
		if ev.Wall == 0 {
			t.Fatal("Wall clock tracer left an event unstamped")
		}
	}
}
