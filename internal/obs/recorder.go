package obs

import (
	"nuconsensus/internal/trace"
)

// RecorderSink adapts a trace.Recorder onto the bus: drivers that feed a
// Bus get the legacy recorder counters, samples and decisions reconstructed
// from the event stream, so checkers in internal/check keep working without
// a second instrumentation path. Step records and emulated-FD outputs are
// not reconstructible from events alone (outputs come from history
// introspection after a step) — drivers that need those keep calling the
// recorder directly, as internal/sim does.
type RecorderSink struct {
	R *trace.Recorder
}

// Emit implements Sink.
func (rs RecorderSink) Emit(ev Event) {
	r := rs.R
	if r == nil {
		return
	}
	switch ev.Kind {
	case KindStep:
		r.StepCount++
		r.MessagesSent += ev.Value
	case KindDeliver:
		r.MessagesRecvd++
	case KindSend:
		if r.SentKinds == nil {
			r.SentKinds = make(map[string]int)
		}
		r.SentKinds[ev.Payload]++
	case KindFDQuery:
		if ev.FD != nil {
			r.OnFDSample(ev.T, ev.P, ev.FD)
		}
	case KindDecide:
		r.OnDecision(ev.T, ev.P, ev.Value)
	}
}

// Close implements Sink (no-op: the recorder is plain memory).
func (RecorderSink) Close() error { return nil }

// interface check
var _ Sink = RecorderSink{}
