package obs

import "sync"

// Ring is the in-memory sink: a fixed-capacity ring buffer keeping the
// most recent events (capacity <= 0 means unbounded — the engine uses that
// to collect a unit's full log before writing it in canonical order).
// Overwritten events are counted, never silently lost from the accounting.
type Ring struct {
	mu      sync.Mutex
	cap     int
	buf     []Event
	start   int // index of the oldest event when the ring has wrapped
	wrapped bool
	dropped int64
}

// NewRing returns a ring sink holding at most capacity events (<= 0 for
// unbounded).
func NewRing(capacity int) *Ring { return &Ring{cap: capacity} }

// Emit implements Sink.
func (r *Ring) Emit(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cap <= 0 {
		r.buf = append(r.buf, ev)
		return
	}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.start] = ev
	r.start = (r.start + 1) % r.cap
	r.wrapped = true
	r.dropped++
}

// Close implements Sink (no-op: the ring holds memory only).
func (r *Ring) Close() error { return nil }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		out := make([]Event, len(r.buf))
		copy(out, r.buf)
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.start:]...)
	out = append(out, r.buf[:r.start]...)
	return out
}

// Dropped reports how many events were overwritten by capacity pressure.
func (r *Ring) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
