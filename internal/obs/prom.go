package obs

import (
	"fmt"
	"io"
	"strings"
)

// PromName sanitizes a registry metric name into a legal Prometheus metric
// name: [a-zA-Z_:][a-zA-Z0-9_:]*. The registry's dotted names map their
// dots (and any other illegal rune) to underscores; a leading digit gains
// an underscore prefix. The mapping is not injective in general, but the
// registry's own namespace (dotted lowercase words) survives uniquely.
func PromName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # TYPE header per instrument, instruments in
// the snapshot's sorted name order, histogram buckets cumulative with the
// mandatory +Inf bucket plus _sum and _count series. The output is a pure
// function of Snapshot(), so scrapes of a quiesced registry are
// byte-identical to its JSONL dump modulo rendering.
func WritePrometheus(w io.Writer, reg *Registry) (int64, error) {
	var n int64
	if reg == nil {
		return 0, nil
	}
	for _, s := range reg.Snapshot() {
		name := PromName(s.Name)
		var b strings.Builder
		switch s.Kind {
		case "counter":
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, s.Value)
		case "gauge":
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, s.Value)
		case "histogram":
			fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
			var cum int64
			for i, c := range s.Buckets {
				cum += c
				if i < len(s.Bounds) {
					fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", name, s.Bounds[i], cum)
				} else {
					fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
				}
			}
			fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", name, s.Sum, name, s.Value)
		}
		m, err := io.WriteString(w, b.String())
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
