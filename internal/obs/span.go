package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Span stages: the life of one client command through the serving stack,
// keyed end to end by the trace context (Client, Seq). The client host
// emits StageSend/StageRecv, the serving host StageIngress, StageSeal and
// StageReply, and the deterministic core (internal/serve) StageInject,
// StageDecide and StageApply. StageDecide is batch-level — one event per
// decided slot, joined to its member commands through the batch ID the
// StageInject events carry — so a slot span fans out to every command that
// rode in it.
const (
	StageSend    = "send"    // client wrote the request to the wire
	StageIngress = "ingress" // serving node read the request
	StageSeal    = "seal"    // batcher sealed the command into a group
	StageInject  = "inject"  // replica minted the batch ID and injected it into the log
	StageDecide  = "decide"  // the slot carrying the batch decided (batch-level)
	StageApply   = "apply"   // the command applied through sessions into the machine
	StageReply   = "reply"   // serving node wrote the reply
	StageRecv    = "recv"    // client read the reply
)

// SpanEvent is one stage transition of a traced request. Which fields are
// meaningful depends on the stage (see the Stage constants); Slot is -1
// when the event is not tied to a log slot. Wall is stamped by the
// emitting Tracer's clock — zero under the Logical clock, so span streams
// from deterministic runs are a pure function of the execution.
type SpanEvent struct {
	Stage  string
	P      int    // acting process (serving node, or the node a client session targets)
	Client uint32 // trace context: client session id (0 for batch-level events)
	Seq    uint64 // trace context: per-client command sequence number
	Batch  int    // batch ID (0: none/unknown yet)
	Slot   int    // decided log slot (-1: none)
	N      int    // stage payload: batch size (seal/inject/decide=round), reply status (apply/reply/recv)
	T0     int64  // client send stamp carried in the request frame (ingress only)
	Wall   int64  // wall-clock nanoseconds from the tracer's clock; 0 under Logical
}

// SpanLine renders one span event as its canonical JSONL line (with the
// trailing newline). Like JSONLine, the field order is fixed and
// zero-valued optional fields are omitted, so equal event sequences
// serialize byte-identically.
func SpanLine(ev SpanEvent) string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"k":"span","st":%s,"p":%d`, strconv.Quote(ev.Stage), ev.P)
	if ev.Client != 0 || ev.Seq != 0 {
		fmt.Fprintf(&b, `,"c":%d,"seq":%d`, ev.Client, ev.Seq)
	}
	if ev.Batch != 0 {
		fmt.Fprintf(&b, `,"b":%d`, ev.Batch)
	}
	if ev.Slot >= 0 {
		fmt.Fprintf(&b, `,"slot":%d`, ev.Slot)
	}
	if ev.N != 0 {
		fmt.Fprintf(&b, `,"n":%d`, ev.N)
	}
	if ev.T0 != 0 {
		fmt.Fprintf(&b, `,"t0":%d`, ev.T0)
	}
	if ev.Wall != 0 {
		fmt.Fprintf(&b, `,"w":%d`, ev.Wall)
	}
	b.WriteString("}\n")
	return b.String()
}

// spanLine is the parse shape of SpanLine's output.
type spanLine struct {
	K    string `json:"k"`
	St   string `json:"st"`
	P    int    `json:"p"`
	C    uint32 `json:"c"`
	Seq  uint64 `json:"seq"`
	B    int    `json:"b"`
	Slot *int   `json:"slot"`
	N    int    `json:"n"`
	T0   int64  `json:"t0"`
	W    int64  `json:"w"`
}

// ParseSpanLine parses one canonical span JSONL line. Non-span lines
// (other event kinds sharing a log) return ok=false without error, so a
// reader can skim mixed JSONL streams.
func ParseSpanLine(line string) (SpanEvent, bool, error) {
	var raw spanLine
	if err := json.Unmarshal([]byte(line), &raw); err != nil {
		return SpanEvent{}, false, err
	}
	if raw.K != "span" {
		return SpanEvent{}, false, nil
	}
	ev := SpanEvent{
		Stage: raw.St, P: raw.P, Client: raw.C, Seq: raw.Seq,
		Batch: raw.B, Slot: -1, N: raw.N, T0: raw.T0, Wall: raw.W,
	}
	if raw.Slot != nil {
		ev.Slot = *raw.Slot
	}
	return ev, true, nil
}

// ReadSpans reads every span event from a JSONL stream, skipping non-span
// lines. It is the ingest path of cmd/nuctrace.
func ReadSpans(r io.Reader) ([]SpanEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []SpanEvent
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		ev, ok, err := ParseSpanLine(line)
		if err != nil {
			return out, fmt.Errorf("obs: bad span line %q: %w", line, err)
		}
		if ok {
			out = append(out, ev)
		}
	}
	return out, sc.Err()
}

// Tracer emits span events as canonical JSONL. Like *Bus, a nil *Tracer
// is valid and does nothing, which is how the deterministic core stays
// zero-cost when tracing is off; and like the Bus it stamps wall time
// only through the injected Clock, so determinism-critical packages can
// emit spans without ever referencing obs.Wall themselves (the obsclock
// analyzer keeps them honest). All methods are safe for concurrent use.
type Tracer struct {
	mu     sync.Mutex
	clock  Clock
	w      *bufio.Writer
	c      io.Closer
	n      int64
	cSpans *Counter
}

// NewTracer returns a tracer writing span JSONL to w, stamping Wall via
// clock (nil means Logical: wall stays zero) and counting emissions on
// reg's "obs.spans" counter (nil reg: uncounted). If w is an io.Closer (a
// file), Close closes it after flushing.
func NewTracer(w io.Writer, clock Clock, reg *Registry) *Tracer {
	if clock == nil {
		clock = Logical{}
	}
	t := &Tracer{clock: clock, w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	if reg != nil {
		t.cSpans = reg.Counter("obs.spans")
	}
	return t
}

// Span emits one span event, stamping Wall from the tracer's clock unless
// the caller stamped it already (client hosts stamp send time themselves
// so the request frame and the span agree to the nanosecond).
func (t *Tracer) Span(ev SpanEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ev.Wall == 0 {
		ev.Wall = t.clock.Now()
	}
	t.w.WriteString(SpanLine(ev))
	t.n++
	if t.cSpans != nil {
		t.cSpans.Add(1)
	}
}

// Spans reports how many span events were emitted.
func (t *Tracer) Spans() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Flush writes buffered spans through to the underlying writer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.w.Flush()
}

// Close flushes and closes the underlying file, if any.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.w.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
