package obs_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
	"nuconsensus/internal/obs"
	"nuconsensus/internal/trace"
)

// payload is a minimal model.Payload for scripted runs.
type payload struct{ kind string }

func (p payload) Kind() string   { return p.kind }
func (p payload) String() string { return p.kind }

// roundState exposes the optional Rounder/Decider introspection the bus
// derives EpochChange/QuorumFormed/Decide events from.
type roundState struct {
	round   int
	decided bool
	val     int
}

func (s roundState) CloneState() model.State { return s }
func (s roundState) Round() int              { return s.round }
func (s roundState) Decision() (int, bool)   { return s.val, s.decided }

func msg(from, to model.ProcessID, seq uint64, kind string) *model.Message {
	return &model.Message{From: from, To: to, Seq: seq, Payload: payload{kind}}
}

// step is one scripted atomic step fed to Bus.OnStep.
type step struct {
	t    model.Time
	p    model.ProcessID
	recv *model.Message
	fd   model.FDValue
	sent []*model.Message
	st   model.State
}

// script is the shared fixture: three processes exchanging messages with a
// genuinely concurrent λ-step (p2 at t=2 is causally unrelated to p0's
// first step).
func script() []step {
	m01 := msg(0, 1, 1, "EST")
	m02 := msg(0, 2, 2, "EST")
	m12 := msg(1, 2, 1, "ACK")
	return []step{
		{t: 1, p: 0, sent: []*model.Message{m01, m02}},
		{t: 2, p: 2}, // λ-step, concurrent with everything of p0/p1
		{t: 3, p: 1, recv: m01, sent: []*model.Message{m12}},
		{t: 4, p: 2, recv: m12},
		{t: 5, p: 2, recv: m02},
		{t: 6, p: 0},
	}
}

// runScript replays steps through a fresh bus into the given sinks.
func runScript(t *testing.T, steps []step, reg *obs.Registry, sinks ...obs.Sink) {
	t.Helper()
	bus := obs.NewBus(nil, reg, sinks...)
	for _, s := range steps {
		bus.OnStep(s.t, s.p, s.recv, s.fd, s.sent, s.st)
	}
	if err := bus.Close(); err != nil {
		t.Fatalf("bus.Close: %v", err)
	}
}

// happensBefore computes the §2.4 precedence relation over the script's
// steps independently of the bus: the transitive closure of program order
// (same process, earlier step) and send-before-receive (a step receiving a
// message is preceded by the step that sent it, matched by the message
// identity (From, Seq)).
func happensBefore(steps []step) [][]bool {
	n := len(steps)
	hb := make([][]bool, n)
	for i := range hb {
		hb[i] = make([]bool, n)
	}
	sender := make(map[[2]uint64]int) // (from, seq) -> sending step index
	for i, s := range steps {
		for _, m := range s.sent {
			sender[[2]uint64{uint64(m.From), m.Seq}] = i
		}
	}
	for j, s := range steps {
		for i := range steps[:j] {
			if steps[i].p == s.p {
				hb[i][j] = true // program order
			}
		}
		if s.recv != nil {
			if i, ok := sender[[2]uint64{uint64(s.recv.From), s.recv.Seq}]; ok {
				hb[i][j] = true // send-before-receive
			}
		}
	}
	for k := 0; k < n; k++ { // transitive closure
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if hb[i][k] && hb[k][j] {
					hb[i][j] = true
				}
			}
		}
	}
	return hb
}

// TestLamportRespectsHappensBefore is the causal-annotation acceptance
// test: the bus's Lamport stamps must refine the independently computed
// §2.4 precedence — e ≺ e' implies L(e) < L(e') — and every Deliver must
// carry a strictly larger stamp than its matching Send.
func TestLamportRespectsHappensBefore(t *testing.T) {
	steps := script()
	ring := obs.NewRing(0)
	runScript(t, steps, nil, ring)

	// The Step events appear in script order on the deterministic path.
	var stepL []uint64
	sends := make(map[[2]uint64]uint64) // (from, seq) -> send Lamport
	for _, ev := range ring.Events() {
		switch ev.Kind {
		case obs.KindStep:
			stepL = append(stepL, ev.L)
		case obs.KindSend:
			sends[[2]uint64{uint64(ev.From), ev.Seq}] = ev.L
		case obs.KindDeliver:
			sL, ok := sends[[2]uint64{uint64(ev.From), ev.Seq}]
			if !ok {
				t.Fatalf("deliver of (%d,%d) with no prior send event", ev.From, ev.Seq)
			}
			if ev.L <= sL {
				t.Errorf("deliver of (%d,%d) has L=%d, not after its send L=%d", ev.From, ev.Seq, ev.L, sL)
			}
		}
	}
	if len(stepL) != len(steps) {
		t.Fatalf("got %d step events, want %d", len(stepL), len(steps))
	}

	hb := happensBefore(steps)
	for i := range steps {
		for j := range steps {
			if hb[i][j] && stepL[i] >= stepL[j] {
				t.Errorf("step %d ≺ step %d but L=%d ≥ L=%d: Lamport order does not refine §2.4 precedence",
					i, j, stepL[i], stepL[j])
			}
		}
	}
	// Sanity: the fixture really contains a concurrent pair (no order
	// either way), so the test is not vacuously about a total order.
	if hb[0][1] || hb[1][0] {
		t.Fatal("fixture lost its concurrent pair (steps 0 and 1)")
	}
}

// TestBusDerivedEvents: round advances become EpochChange (plus
// QuorumFormed when the module output a quorum), decisions are emitted
// once per process, crashes are emitted, and the attached registry sees
// the commutative counters.
func TestBusDerivedEvents(t *testing.T) {
	reg := obs.NewRegistry()
	ring := obs.NewRing(0)
	bus := obs.NewBus(nil, reg, ring)

	q := fd.QuorumValue{Quorum: model.FullSet(3)}
	bus.OnStep(1, 0, nil, q, nil, roundState{round: 1})
	bus.OnStep(2, 0, nil, nil, nil, roundState{round: 1, decided: true, val: 7})
	bus.OnStep(3, 0, nil, nil, nil, roundState{round: 1, decided: true, val: 7}) // latch: no 2nd decide
	bus.OnCrash(4, 1)

	var kinds []string
	for _, ev := range ring.Events() {
		kinds = append(kinds, ev.Kind.String())
	}
	want := []string{"fdquery", "step", "epoch", "quorum", "step", "decide", "step", "crash"}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
	for _, ev := range ring.Events() {
		switch ev.Kind {
		case obs.KindEpochChange, obs.KindQuorumFormed:
			if ev.Value != 1 {
				t.Errorf("%s carries round %d, want 1", ev.Kind, ev.Value)
			}
		case obs.KindDecide:
			if ev.Value != 7 {
				t.Errorf("decide carries value %d, want 7", ev.Value)
			}
		}
	}
	if got := reg.Counter("bus.steps").Value(); got != 3 {
		t.Errorf("bus.steps = %d, want 3", got)
	}
	if got := reg.Counter("bus.crashes").Value(); got != 1 {
		t.Errorf("bus.crashes = %d, want 1", got)
	}

	// A nil bus is a safe no-op on every method.
	var nb *obs.Bus
	nb.OnStep(1, 0, nil, nil, nil, nil)
	nb.OnCrash(1, 0)
	nb.SetClock(obs.Wall{})
	if err := nb.Close(); err != nil {
		t.Errorf("nil bus Close = %v", err)
	}
}

// TestJSONLByteIdentical: the same scripted run serializes to the same
// bytes, whether through the JSONL sink directly or by replaying a ring's
// events with WriteJSONL — the property CI's -parallel diff relies on.
func TestJSONLByteIdentical(t *testing.T) {
	var direct1, direct2, replayed bytes.Buffer
	ring := obs.NewRing(0)
	runScript(t, script(), nil, obs.NewJSONL(&direct1), ring)
	runScript(t, script(), nil, obs.NewJSONL(&direct2))
	if err := obs.WriteJSONL(&replayed, ring.Events()); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}

	if !bytes.Equal(direct1.Bytes(), direct2.Bytes()) {
		t.Error("two identical runs produced different JSONL bytes")
	}
	if !bytes.Equal(direct1.Bytes(), replayed.Bytes()) {
		t.Error("ring replay produced different JSONL bytes than the direct sink")
	}
	// Every line must be valid JSON with the wall field absent under the
	// Logical clock.
	for _, line := range bytes.Split(bytes.TrimSpace(direct1.Bytes()), []byte("\n")) {
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		if _, ok := m["wall"]; ok {
			t.Errorf("line %q carries a wall stamp under the Logical clock", line)
		}
	}
}

// TestChromeTraceFlows: the Chrome export is valid JSON, every flow-start
// ("s", a Send) has exactly one matching flow-finish ("f", the Deliver)
// under the same id, and each arrow points forward in the independently
// computed precedence (the finish's Lamport annotation exceeds the
// start's).
func TestChromeTraceFlows(t *testing.T) {
	var buf bytes.Buffer
	runScript(t, script(), nil, obs.NewChromeTrace(&buf))

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			ID   uint64         `json:"id"`
			Ts   int64          `json:"ts"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.Bytes())
	}

	starts := make(map[uint64]float64) // flow id -> send lamport
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "s" {
			if _, dup := starts[ev.ID]; dup {
				t.Errorf("duplicate flow start id %d", ev.ID)
			}
			starts[ev.ID] = ev.Args["lamport"].(float64)
		}
	}
	finishes := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "f" {
			continue
		}
		finishes++
		sL, ok := starts[ev.ID]
		if !ok {
			t.Errorf("flow finish id %d has no matching start", ev.ID)
			continue
		}
		if fL := ev.Args["lamport"].(float64); fL <= sL {
			t.Errorf("flow id %d: deliver lamport %v not after send lamport %v", ev.ID, fL, sL)
		}
	}
	if finishes != 3 {
		t.Errorf("got %d flow finishes, want 3 (the script delivers 3 messages)", finishes)
	}
	if len(starts) != 3 {
		t.Errorf("got %d flow starts, want 3 (the script sends 3 messages)", len(starts))
	}
}

// TestRingWraparound: a bounded ring keeps the newest events, oldest
// first, and accounts for every overwrite.
func TestRingWraparound(t *testing.T) {
	r := obs.NewRing(4)
	for i := 1; i <= 10; i++ {
		r.Emit(obs.Event{Kind: obs.KindStep, T: model.Time(i)})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := model.Time(7 + i); ev.T != want {
			t.Errorf("event %d has T=%d, want %d (newest four, oldest first)", i, ev.T, want)
		}
	}
	if got := r.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
}

// TestRegistrySnapshotDeterministic: snapshots are sorted by name and the
// text dump depends only on the final metric values, not on creation or
// update order — the property that makes -metrics dumps comparable across
// -parallel values.
func TestRegistrySnapshotDeterministic(t *testing.T) {
	build := func(reverse bool) *obs.Registry {
		reg := obs.NewRegistry()
		ops := []func(){
			func() { reg.Counter("b.count").Add(3) },
			func() { reg.Gauge("a.depth").Max(7) },
			func() { reg.Histogram("c.hist", obs.DefaultBuckets).Observe(42) },
			func() { reg.Counter("b.count").Add(2) },
			func() { reg.Histogram("c.hist", obs.DefaultBuckets).Observe(1) },
		}
		if reverse {
			for i := len(ops) - 1; i >= 0; i-- {
				ops[i]()
			}
		} else {
			for _, op := range ops {
				op()
			}
		}
		return reg
	}
	var fwd, rev bytes.Buffer
	if _, err := build(false).WriteTo(&fwd); err != nil {
		t.Fatal(err)
	}
	if _, err := build(true).WriteTo(&rev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fwd.Bytes(), rev.Bytes()) {
		t.Errorf("metric dumps differ by update order:\n%s\nvs\n%s", fwd.Bytes(), rev.Bytes())
	}

	snap := build(false).Snapshot()
	var names []string
	for _, m := range snap {
		names = append(names, m.Name)
	}
	want := []string{"a.depth", "b.count", "c.hist"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("snapshot order %v, want sorted %v", names, want)
	}
}

// TestRegistryKindMismatchPanics: re-registering a name as a different
// metric kind is a programming error and must fail loudly.
func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("Gauge(\"x\") after Counter(\"x\") did not panic")
		}
	}()
	reg.Gauge("x")
}

// TestSinkFanoutConcurrent drives one bus from many goroutines (as the
// concurrent substrates do) under -race: every sink must observe the same
// event sequence, and the commutative counters must balance exactly.
func TestSinkFanoutConcurrent(t *testing.T) {
	const procs, per = 8, 200
	reg := obs.NewRegistry()
	rings := []*obs.Ring{obs.NewRing(0), obs.NewRing(0), obs.NewRing(0)}
	bus := obs.NewBus(nil, reg, rings[0], rings[1], rings[2])

	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			pid := model.ProcessID(p)
			for i := 0; i < per; i++ {
				sent := []*model.Message{msg(pid, (pid+1)%procs, uint64(i+1), "EST")}
				bus.OnStep(model.Time(i+1), pid, nil, nil, sent, nil)
			}
		}(p)
	}
	wg.Wait()

	base := rings[0].Events()
	if len(base) != procs*per*2 { // one step + one send event per OnStep
		t.Fatalf("ring 0 holds %d events, want %d", len(base), procs*per*2)
	}
	for i, r := range rings[1:] {
		if !reflect.DeepEqual(base, r.Events()) {
			t.Errorf("ring %d saw a different event sequence than ring 0", i+1)
		}
	}
	if got := reg.Counter("bus.steps").Value(); got != procs*per {
		t.Errorf("bus.steps = %d, want %d", got, procs*per)
	}
	if got := reg.Counter("msgs.sent.EST").Value(); got != procs*per {
		t.Errorf("msgs.sent.EST = %d, want %d", got, procs*per)
	}
}

// TestRecorderSink: the bus reconstructs the legacy trace.Recorder
// counters, samples and decisions from the event stream.
func TestRecorderSink(t *testing.T) {
	rec := &trace.Recorder{RecordSamples: true}
	bus := obs.NewBus(nil, nil, obs.RecorderSink{R: rec})

	m := msg(0, 1, 1, "EST")
	q := fd.QuorumValue{Quorum: model.FullSet(2)}
	bus.OnStep(1, 0, nil, q, []*model.Message{m}, nil)
	bus.OnStep(2, 1, m, nil, nil, roundState{decided: true, val: 3})

	if rec.StepCount != 2 || rec.MessagesSent != 1 || rec.MessagesRecvd != 1 {
		t.Errorf("steps/sent/recvd = %d/%d/%d, want 2/1/1", rec.StepCount, rec.MessagesSent, rec.MessagesRecvd)
	}
	if rec.SentKinds["EST"] != 1 {
		t.Errorf("SentKinds = %v, want EST:1", rec.SentKinds)
	}
	if len(rec.Samples) != 1 {
		t.Errorf("got %d FD samples, want 1", len(rec.Samples))
	}
	if got := rec.DecidedValues(); len(got) != 1 || got[1] != 3 {
		t.Errorf("DecidedValues = %v, want p1:3", got)
	}
}

// TestWallClockStamps: with the Wall shim injected (as the concurrent
// substrates do), events carry nonzero wall stamps and JSONL includes the
// wall field — the diagnostic-only path.
func TestWallClockStamps(t *testing.T) {
	ring := obs.NewRing(0)
	bus := obs.NewBus(nil, nil, ring)
	bus.SetClock(obs.Wall{})
	bus.OnStep(1, 0, nil, nil, nil, nil)
	evs := ring.Events()
	if len(evs) != 1 || evs[0].Wall == 0 {
		t.Fatalf("expected one wall-stamped event, got %+v", evs)
	}
	line := obs.JSONLine(evs[0])
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("bad JSONL line %q: %v", line, err)
	}
	if _, ok := m["wall"]; !ok {
		t.Errorf("wall stamp missing from %q", line)
	}
}

// TestLocalStoreFlush pins the per-worker staging contract: local adds are
// invisible to the registry until FlushTo, flushing merges and resets, and
// concurrent workers flushing after a barrier produce the same totals as
// direct registry updates would (adds commute).
func TestLocalStoreFlush(t *testing.T) {
	reg := obs.NewRegistry()
	ls := obs.NewLocalStore()
	ls.Add("x", 2)
	ls.Add("x", 3)
	ls.Add("y", 1)
	if got := ls.Value("x"); got != 5 {
		t.Errorf("local x = %d, want 5", got)
	}
	if got := reg.Counter("x").Value(); got != 0 {
		t.Errorf("registry saw x=%d before flush", got)
	}
	ls.FlushTo(reg)
	if got := reg.Counter("x").Value(); got != 5 {
		t.Errorf("x = %d after flush, want 5", got)
	}
	if got := reg.Counter("y").Value(); got != 1 {
		t.Errorf("y = %d after flush, want 1", got)
	}
	if got := ls.Value("x"); got != 0 {
		t.Errorf("flush did not reset local x (= %d)", got)
	}
	ls.FlushTo(reg) // flushing an empty store is a no-op
	if got := reg.Counter("x").Value(); got != 5 {
		t.Errorf("empty flush changed x to %d", got)
	}
	ls.Add("z", 7)
	ls.FlushTo(nil) // nil registry discards
	if got := ls.Value("z"); got != 0 {
		t.Errorf("nil flush did not reset local z (= %d)", got)
	}

	// Worker-count independence: N workers staging locally and flushing
	// after the barrier equals one worker counting everything.
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := obs.NewLocalStore()
			for i := 0; i < per; i++ {
				st.Add("work", 1)
			}
			st.FlushTo(reg)
		}()
	}
	wg.Wait()
	if got := reg.Counter("work").Value(); got != workers*per {
		t.Errorf("work = %d, want %d", got, workers*per)
	}
}
