package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultBuckets are the fixed upper bounds used when a caller does not
// bring its own: logical-tick and count scales from 1 to 1e6. Fixed
// buckets (no dynamic resizing, no quantile sketches) keep histogram
// merges commutative, which is what makes metric dumps byte-identical at
// any worker count.
var DefaultBuckets = []int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 100000, 1000000}

// Counter is a monotonically increasing sum. Adds from concurrent units
// commute, so counter values are deterministic whenever the run's work is.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by v.
func (c *Counter) Add(v int64) { c.v.Add(v) }

// Value returns the current sum.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins level. Gauges are NOT deterministic under
// concurrent writers; deterministic paths restrict themselves to counters
// and histograms (DESIGN.md §7) and set gauges only from single-threaded
// code (e.g. the explorer's per-level frontier depth).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Max raises the gauge to v if v is larger.
func (g *Gauge) Max(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution: counts[i] tallies samples
// v <= bounds[i], with one overflow bucket beyond the last bound. Bucket
// increments commute, so histograms are as deterministic as counters.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sum    atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples; Sum their total.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution by linear interpolation inside the bucket holding the
// rank, the standard fixed-bucket estimator: the true quantile lies
// somewhere in [lower bound, upper bound] of that bucket, and the
// estimate assumes samples spread uniformly across it. Ranks landing in
// the overflow bucket clamp to the last finite bound (there is no upper
// edge to interpolate toward). Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) {
				// Overflow bucket: clamp to the largest finite bound.
				if len(h.bounds) == 0 {
					return 0
				}
				return float64(h.bounds[len(h.bounds)-1])
			}
			lo := float64(0)
			if i > 0 {
				lo = float64(h.bounds[i-1])
			}
			hi := float64(h.bounds[i])
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return float64(h.bounds[len(h.bounds)-1])
}

// Sum returns the total of all observed samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// metric is one registered instrument.
type metric struct {
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named instruments. Get-or-create methods are safe for
// concurrent use; snapshots render in sorted name order so dumps are
// byte-identical whenever the underlying values are.
type Registry struct {
	mu sync.Mutex
	m  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]*metric)} }

// get returns the named metric slot, creating it with mk on first use.
func (r *Registry) get(name string, mk func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[string]*metric)
	}
	inst, ok := r.m[name]
	if !ok {
		inst = mk()
		r.m[name] = inst
	}
	return inst
}

// Counter returns the named counter, creating it on first use. Registering
// the same name as two different instrument kinds panics: metric names are
// a global namespace.
func (r *Registry) Counter(name string) *Counter {
	inst := r.get(name, func() *metric { return &metric{counter: &Counter{}} })
	if inst.counter == nil {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
	return inst.counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	inst := r.get(name, func() *metric { return &metric{gauge: &Gauge{}} })
	if inst.gauge == nil {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
	return inst.gauge
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds (sorted ascending) on first use. Later calls ignore bounds.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	inst := r.get(name, func() *metric {
		h := &Histogram{bounds: bounds}
		h.counts = make([]atomic.Int64, len(bounds)+1)
		return &metric{hist: h}
	})
	if inst.hist == nil {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
	return inst.hist
}

// MetricSnapshot is one instrument's point-in-time reading.
type MetricSnapshot struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "counter", "gauge" or "histogram"
	// Value is the counter sum, the gauge level, or the histogram sample
	// count.
	Value int64 `json:"value"`
	// Sum and Buckets are histogram-only: the sample total and the
	// cumulative "<= bound" counts aligned with Bounds (the final entry of
	// Bounds is absent: the last count is the total).
	Sum     int64   `json:"sum,omitempty"`
	Bounds  []int64 `json:"bounds,omitempty"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Snapshot returns every instrument's reading in sorted name order
// (collect-then-sort, so no map iteration order escapes).
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.m))
	insts := make(map[string]*metric, len(r.m))
	for name, inst := range r.m {
		names = append(names, name)
		insts[name] = inst
	}
	r.mu.Unlock()
	sort.Strings(names)

	out := make([]MetricSnapshot, 0, len(names))
	for _, name := range names {
		inst := insts[name]
		switch {
		case inst.counter != nil:
			out = append(out, MetricSnapshot{Name: name, Kind: "counter", Value: inst.counter.Value()})
		case inst.gauge != nil:
			out = append(out, MetricSnapshot{Name: name, Kind: "gauge", Value: inst.gauge.Value()})
		case inst.hist != nil:
			h := inst.hist
			s := MetricSnapshot{Name: name, Kind: "histogram", Value: h.Count(), Sum: h.Sum(), Bounds: h.bounds}
			for i := range h.counts {
				s.Buckets = append(s.Buckets, h.counts[i].Load())
			}
			out = append(out, s)
		}
	}
	return out
}

// WriteTo renders the snapshot as a deterministic text dump: one line per
// instrument in name order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, s := range r.Snapshot() {
		var line string
		switch s.Kind {
		case "histogram":
			parts := make([]string, 0, len(s.Buckets))
			for i, c := range s.Buckets {
				if i < len(s.Bounds) {
					parts = append(parts, fmt.Sprintf("le%d=%d", s.Bounds[i], c))
				} else {
					parts = append(parts, fmt.Sprintf("inf=%d", c))
				}
			}
			line = fmt.Sprintf("%s histogram count=%d sum=%d %s\n", s.Name, s.Value, s.Sum, strings.Join(parts, " "))
		default:
			line = fmt.Sprintf("%s %s %d\n", s.Name, s.Kind, s.Value)
		}
		m, err := io.WriteString(w, line)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
