package obs

import (
	"sync"

	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
)

// Sink consumes events from a Bus. Emit is called with the bus lock held,
// in a deterministic order on deterministic substrates; it must not call
// back into the bus. Close flushes buffered output; a sink must tolerate
// Emit never being called and Close being called exactly once.
type Sink interface {
	Emit(Event)
	Close() error
}

// msgKey is the model's unique message identity (§2.1): sender plus
// per-sender sequence number.
type msgKey struct {
	from model.ProcessID
	seq  uint64
}

// Bus is the causal event bus of one run. Drivers feed it one call per
// atomic step (OnStep) plus crash notifications (OnCrash); the bus
// computes the Lamport annotation, derives the higher-level events
// (decisions, round changes, quorum formations) from state introspection,
// updates the attached metrics registry and fans the events out to its
// sinks.
//
// A nil *Bus is valid and does nothing, mirroring *trace.Recorder. All
// methods are safe for concurrent use: the concurrent substrates emit from
// one goroutine per process.
type Bus struct {
	mu      sync.Mutex
	clock   Clock
	metrics *Registry
	sinks   []Sink

	lamport []uint64          // per-process Lamport clocks
	sendL   map[msgKey]uint64 // Lamport stamp of each in-flight send
	round   []int             // last observed round per process
	roundAt []model.Time      // logical time the round was entered
	decided []bool            // first-decision latch per process

	// Hot-path instruments, resolved once at construction so OnStep pays
	// neither the registry's mutexed get-or-create per event nor the
	// "msgs.sent."+kind concatenation per send (all nil/empty when no
	// registry is attached). sentC is only touched under b.mu.
	cDelivered, cSteps, cCrashes *Counter
	sentC                        map[string]*Counter
}

// NewBus returns a bus stamping events with clock (nil means Logical),
// updating metrics (nil means none) and fanning out to sinks.
func NewBus(clock Clock, metrics *Registry, sinks ...Sink) *Bus {
	if clock == nil {
		clock = Logical{}
	}
	b := &Bus{
		clock:   clock,
		metrics: metrics,
		sinks:   sinks,
		sendL:   make(map[msgKey]uint64),
	}
	if metrics != nil {
		b.cDelivered = metrics.Counter("bus.delivered")
		b.cSteps = metrics.Counter("bus.steps")
		b.cCrashes = metrics.Counter("bus.crashes")
		b.sentC = make(map[string]*Counter)
	}
	return b
}

// SetClock replaces the bus's clock. The concurrent substrates call this
// at run start to inject the wall shim; deterministic paths never do.
func (b *Bus) SetClock(c Clock) {
	if b == nil || c == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.clock = c
}

// grow ensures the per-process tables cover process p.
func (b *Bus) grow(p model.ProcessID) {
	for int(p) >= len(b.lamport) {
		b.lamport = append(b.lamport, 0)
		b.round = append(b.round, 0)
		b.roundAt = append(b.roundAt, 0)
		b.decided = append(b.decided, false)
	}
}

// emit fans one event out to every sink. Callers hold b.mu.
func (b *Bus) emit(ev Event) {
	for _, s := range b.sinks {
		s.Emit(ev)
	}
}

// OnStep records one atomic step of §2.4: process p, at logical time t,
// received m (nil for λ), sampled d (nil when the automaton queries no
// detector), sent the messages in sent, and ended the step in state st.
// The emission order within the step is fixed — Deliver, FDQuery, Step,
// Sends, then the derived EpochChange/QuorumFormed/Decide — so sim event
// logs are byte-identical across runs and worker counts.
func (b *Bus) OnStep(t model.Time, p model.ProcessID, m *model.Message, d model.FDValue, sent []*model.Message, st model.State) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.grow(p)
	wall := b.clock.Now()

	// Lamport: the step is one atomic event; its stamp exceeds the
	// process's previous step and, if the step received a message, the
	// matching send (send-before-receive of §2.4).
	l := b.lamport[p] + 1
	if m != nil {
		if s, ok := b.sendL[msgKey{m.From, m.Seq}]; ok && s+1 > l {
			l = s + 1
		}
	}
	b.lamport[p] = l

	if m != nil {
		delete(b.sendL, msgKey{m.From, m.Seq})
		b.emit(Event{Kind: KindDeliver, T: t, P: p, L: l, From: m.From, Seq: m.Seq, Payload: m.Payload.Kind(), Wall: wall})
		b.add(b.cDelivered, 1)
	}
	if d != nil {
		b.emit(Event{Kind: KindFDQuery, T: t, P: p, L: l, FD: d, Wall: wall})
	}
	b.emit(Event{Kind: KindStep, T: t, P: p, L: l, Value: len(sent), Wall: wall})
	b.add(b.cSteps, 1)
	for _, sm := range sent {
		b.sendL[msgKey{sm.From, sm.Seq}] = l
		b.emit(Event{Kind: KindSend, T: t, P: p, L: l, From: sm.From, To: sm.To, Seq: sm.Seq, Payload: sm.Payload.Kind(), Wall: wall})
		b.countSent(sm.Payload.Kind())
	}

	// Derived events from state introspection: round transitions, quorum
	// completions, decisions.
	if r, ok := model.RoundOf(st); ok && r > b.round[p] {
		b.emit(Event{Kind: KindEpochChange, T: t, P: p, L: l, Value: r, Wall: wall})
		if q, hasQ := fd.QuorumOf(d); hasQ {
			// The round advanced while the module output a quorum: the
			// process's quorum wait (Fig. 5 get_quorum loop) completed.
			b.emit(Event{Kind: KindQuorumFormed, T: t, P: p, L: l, Detail: q.String(), Value: r, Wall: wall})
			b.observe("consensus.quorum_wait_ticks", int64(t-b.roundAt[p]))
		}
		b.round[p] = r
		b.roundAt[p] = t
	}
	if v, ok := model.DecisionOf(st); ok && !b.decided[p] {
		b.decided[p] = true
		b.emit(Event{Kind: KindDecide, T: t, P: p, L: l, Value: v, Wall: wall})
		b.observe("consensus.rounds_to_decide", int64(b.round[p]))
		b.observe("consensus.ticks_to_decide", int64(t))
	}
}

// OnCrash records that process p crashed at logical time t (per the run's
// failure pattern).
func (b *Bus) OnCrash(t model.Time, p model.ProcessID) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.grow(p)
	b.lamport[p]++
	b.emit(Event{Kind: KindCrash, T: t, P: p, L: b.lamport[p], Wall: b.clock.Now()})
	b.add(b.cCrashes, 1)
}

// Close closes every sink, returning the first error.
func (b *Bus) Close() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var first error
	for _, s := range b.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// add bumps a pre-resolved counter (nil when no registry is attached).
func (b *Bus) add(c *Counter, v int64) {
	if c != nil {
		c.Add(v)
	}
}

// countSent bumps the per-kind send counter, resolving "msgs.sent.<KIND>"
// through the registry only on the kind's first appearance: a map hit on a
// string key allocates nothing, while the concatenation it replaces
// allocated on every send. Callers hold b.mu.
func (b *Bus) countSent(kind string) {
	if b.metrics == nil {
		return
	}
	c := b.sentC[kind]
	if c == nil {
		c = b.metrics.Counter("msgs.sent." + kind)
		b.sentC[kind] = c
	}
	c.Add(1)
}

// observe records a histogram sample, if a registry is attached.
func (b *Bus) observe(name string, v int64) {
	if b.metrics != nil {
		b.metrics.Histogram(name, DefaultBuckets).Observe(v)
	}
}
