// Package obs is the unified observability layer beneath every execution
// substrate and driver in this repository: one causal event bus, one
// metrics registry and one set of profiling hooks, consumed identically by
// the deterministic simulator (internal/sim), the concurrent substrates
// (internal/runtime, internal/netrun via internal/substrate.RunCluster),
// the experiment engine (internal/experiments) and the bounded model
// checker (internal/explore).
//
// The paper's arguments are statements about what happened in a run —
// which steps were taken, which failure-detector samples were read, which
// quorums formed, which messages causally preceded a decision (§2.1–2.6,
// the DAG construction of §4). The event bus records exactly that causal
// structure: every event carries the run's logical time, the acting
// process, and a Lamport clock annotation whose order refines the model's
// §2.4 precedence (program order per process plus send-before-receive per
// message identity (From, Seq)).
//
// Determinism rules (DESIGN.md §7):
//
//   - Events on deterministic paths are stamped with logical time only;
//     the Wall field stays zero under the default Logical clock, so sim
//     event logs are byte-identical at any worker count.
//   - Wall-clock stamping lives behind the Clock interface. The wall shim
//     (Wall) is injected only by the intentionally nondeterministic
//     concurrent substrates; determinism-critical packages are barred from
//     it by the obsclock analyzer (internal/lint/obsclock).
//   - Metric snapshots are rendered in sorted name order and accumulate
//     only commutative quantities (counter sums, histogram bucket counts),
//     so metric dumps are byte-identical at any -parallel value.
package obs

import (
	"fmt"
	"time"

	"nuconsensus/internal/model"
)

// Kind enumerates the event taxonomy. The set is deliberately small and
// model-level: every kind maps to a construct of §2 (steps, sends,
// receipts, failure-detector queries, decisions, crashes) or to the
// round/quorum structure the algorithms of §6 expose.
type Kind uint8

const (
	// KindStep is one atomic step of §2.4: process P, at logical time T,
	// received a message or λ, queried its failure-detector module and
	// moved; Value carries the number of messages the step sent.
	KindStep Kind = iota
	// KindSend is one message entering the buffer: P sent (Seq, Payload)
	// to To. Together with KindDeliver it carries the send-before-receive
	// edges of the §2.4 precedence relation.
	KindSend
	// KindDeliver is a message leaving the buffer: P received Seq from
	// From. Its Lamport annotation strictly exceeds the matching send's.
	KindDeliver
	// KindFDQuery is a failure-detector read: P saw FD at time T (§2.3).
	KindFDQuery
	// KindQuorumFormed marks the completion of a quorum wait: P's round
	// advanced while its failure-detector module output the quorum in
	// Detail (get_quorum of Fig. 5); Value is the new round.
	KindQuorumFormed
	// KindDecide is a decision: P decided Value at time T.
	KindDecide
	// KindCrash is a crash from the failure pattern: P halted at time T.
	KindCrash
	// KindEpochChange is a round/epoch transition: P entered round Value.
	KindEpochChange

	numKinds
)

// kindNames are the stable wire names of the kinds (JSONL "k" field).
var kindNames = [numKinds]string{
	"step", "send", "deliver", "fdquery", "quorum", "decide", "crash", "epoch",
}

// String returns the kind's stable wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one observed occurrence. Fields beyond Kind/T/P/L are populated
// per kind (see the Kind constants); zero-valued fields are omitted from
// serialized logs.
type Event struct {
	Kind Kind
	// T is the run's logical time (the shared step clock on every
	// substrate).
	T model.Time
	// P is the acting process.
	P model.ProcessID
	// L is the event's Lamport clock annotation: a total order refining
	// the §2.4 precedence relation. All events of one atomic step carry
	// the step's Lamport time.
	L uint64
	// From/To/Seq identify a message (Send, Deliver); (From, Seq) is the
	// model's unique message identity.
	From model.ProcessID
	To   model.ProcessID
	Seq  uint64
	// Payload is the message payload kind (Send, Deliver).
	Payload string
	// FD is the sampled failure-detector value (FDQuery); sinks render it
	// with String(). FD values are immutable, so retaining them is safe.
	FD model.FDValue
	// Detail is a free-form annotation (the quorum of a QuorumFormed).
	Detail string
	// Value is the kind's integer payload: messages sent (Step), decision
	// value (Decide), new round (EpochChange, QuorumFormed).
	Value int
	// Wall is a wall-clock nanosecond stamp, zero under the Logical clock.
	// Wall stamps are diagnostic only and never part of deterministic
	// comparisons.
	Wall int64
}

// Clock stamps events with wall time. The bus calls Now once per emitted
// step. Deterministic paths use Logical (always zero); the concurrent
// substrates inject the wall shim at run start.
type Clock interface {
	// Now returns a wall-clock nanosecond stamp, or 0 for "no wall time".
	Now() int64
}

// Logical is the deterministic clock: it stamps nothing, so event logs are
// a pure function of the run. It is the default of NewBus.
type Logical struct{}

// Now implements Clock.
func (Logical) Now() int64 { return 0 }

// Wall is the wall-clock shim for the intentionally nondeterministic
// substrates. Determinism-critical packages must not reference it — the
// obsclock analyzer (internal/lint/obsclock) enforces that; the concurrent
// cluster driver injects it via Bus.SetClock.
type Wall struct{}

// Now implements Clock.
func (Wall) Now() int64 { return time.Now().UnixNano() }
