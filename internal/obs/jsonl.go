package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// JSONL is the deterministic line-oriented exporter: one JSON object per
// event, fields hand-rendered in a fixed order with zero-valued fields
// omitted, so two equal event sequences serialize to byte-identical logs.
// (encoding/json would work too, but hand-rendering pins the byte format
// the CI determinism checks diff, independent of library version.)
type JSONL struct {
	w *bufio.Writer
	c io.Closer
	n int64
}

// NewJSONL returns a JSONL sink writing to w. If w is an io.Closer (a
// file), Close closes it after flushing.
func NewJSONL(w io.Writer) *JSONL {
	s := &JSONL{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Sink.
func (s *JSONL) Emit(ev Event) {
	s.w.WriteString(JSONLine(ev))
	s.n++
}

// Close implements Sink: flush, then close the underlying file if any.
func (s *JSONL) Close() error {
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Lines reports how many events were written.
func (s *JSONL) Lines() int64 { return s.n }

// JSONLine renders one event as its canonical JSONL line (with the
// trailing newline). The field order is fixed: k, t, p, l, then the
// kind-specific fields.
func JSONLine(ev Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"k":%s,"t":%d,"p":%d,"l":%d`, strconv.Quote(ev.Kind.String()), int64(ev.T), int(ev.P), ev.L)
	switch ev.Kind {
	case KindSend:
		fmt.Fprintf(&b, `,"from":%d,"to":%d,"seq":%d,"pl":%s`, int(ev.From), int(ev.To), ev.Seq, strconv.Quote(ev.Payload))
	case KindDeliver:
		fmt.Fprintf(&b, `,"from":%d,"seq":%d,"pl":%s`, int(ev.From), ev.Seq, strconv.Quote(ev.Payload))
	case KindFDQuery:
		if ev.FD != nil {
			fmt.Fprintf(&b, `,"fd":%s`, strconv.Quote(ev.FD.String()))
		}
	case KindStep, KindDecide, KindEpochChange:
		fmt.Fprintf(&b, `,"v":%d`, ev.Value)
	case KindQuorumFormed:
		fmt.Fprintf(&b, `,"v":%d,"q":%s`, ev.Value, strconv.Quote(ev.Detail))
	}
	if ev.Wall != 0 {
		fmt.Fprintf(&b, `,"wall":%d`, ev.Wall)
	}
	b.WriteString("}\n")
	return b.String()
}

// WriteJSONL writes a collected event slice through the JSONL sink format
// — the engine path: events gathered per unit, written in canonical order.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		if _, err := bw.WriteString(JSONLine(ev)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
