package obs

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"serve.apply_ok", "serve_apply_ok"},
		{"rsm.slots", "rsm_slots"},
		{"already_legal:name", "already_legal:name"},
		{"9lives", "_9lives"},
		{"dash-and space", "dash_and_space"},
		{"", "_"},
		{"UPPER.Case7", "UPPER_Case7"},
	}
	for _, c := range cases {
		if got := PromName(c.in); got != c.want {
			t.Errorf("PromName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.apply_ok").Add(42)
	reg.Gauge("rsm.frontier").Set(7)
	h := reg.Histogram("nucload.latency_us", []int64{10, 100, 1000})
	for _, v := range []int64{5, 5, 50, 200, 5000} {
		h.Observe(v)
	}
	reg.Counter("9weird-name").Add(1)

	var buf bytes.Buffer
	n, err := WritePrometheus(&buf, reg)
	if err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}
	want := strings.Join([]string{
		"# TYPE _9weird_name counter",
		"_9weird_name 1",
		"# TYPE nucload_latency_us histogram",
		`nucload_latency_us_bucket{le="10"} 2`,
		`nucload_latency_us_bucket{le="100"} 3`,
		`nucload_latency_us_bucket{le="1000"} 4`,
		`nucload_latency_us_bucket{le="+Inf"} 5`,
		"nucload_latency_us_sum 5260",
		"nucload_latency_us_count 5",
		"# TYPE rsm_frontier gauge",
		"rsm_frontier 7",
		"# TYPE serve_apply_ok counter",
		"serve_apply_ok 42",
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	n, err := WritePrometheus(io.Discard, nil)
	if n != 0 || err != nil {
		t.Errorf("nil registry: got (%d, %v), want (0, nil)", n, err)
	}
}

// TestWritePrometheusRace scrapes the registry while counters are being
// bumped; run under -race this pins that exposition never reads unlocked
// state.
func TestWritePrometheusRace(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("race.counter")
	h := reg.Histogram("race.hist", DefaultBuckets)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
					c.Add(1)
					h.Observe(i % 1000)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if _, err := WritePrometheus(io.Discard, reg); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}
