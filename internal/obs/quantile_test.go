package obs

import (
	"math"
	"testing"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestQuantileUniformBucket(t *testing.T) {
	// 100 samples all landing in the (10, 100] bucket: the estimator
	// interpolates linearly across it.
	r := NewRegistry()
	hh := r.Histogram("q", []int64{10, 100, 1000})
	for i := 0; i < 100; i++ {
		hh.Observe(50)
	}
	if got := hh.Quantile(0.5); !almostEq(got, 55) {
		t.Errorf("p50 = %v, want 55 (midpoint interp of (10,100])", got)
	}
	if got := hh.Quantile(1); !almostEq(got, 100) {
		t.Errorf("p100 = %v, want 100 (upper edge)", got)
	}
}

func TestQuantileKnownDistribution(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []int64{10, 20, 30})
	// 10 samples <=10, 10 in (10,20], 10 in (20,30].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
		h.Observe(25)
	}
	// p50: rank 15 lands in the second bucket, halfway: 10 + 0.5*10 = 15.
	if got := h.Quantile(0.5); !almostEq(got, 15) {
		t.Errorf("p50 = %v, want 15", got)
	}
	// p90: rank 27 lands in the third bucket at frac 0.7: 20 + 7 = 27.
	if got := h.Quantile(0.9); !almostEq(got, 27) {
		t.Errorf("p90 = %v, want 27", got)
	}
	// Out-of-range q clamps.
	if got := h.Quantile(-1); !almostEq(got, h.Quantile(0)) {
		t.Errorf("q<0 should clamp to q=0, got %v", got)
	}
	if got := h.Quantile(2); !almostEq(got, 30) {
		t.Errorf("q>1 should clamp to q=1 (=30), got %v", got)
	}
}

func TestQuantileOverflowClampsToLastBound(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []int64{10, 20})
	for i := 0; i < 4; i++ {
		h.Observe(999) // all overflow
	}
	if got := h.Quantile(0.5); !almostEq(got, 20) {
		t.Errorf("overflow p50 = %v, want clamp to 20", got)
	}
}

func TestQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []int64{10})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}
