package obs

// LocalStore is a per-worker metric staging area: plain (non-atomic,
// non-locked) counters a single worker accumulates privately and merges
// into a shared Registry at a canonical point — after the level barrier in
// the explorer, at run end in a driver. The idiom trades the shared
// registry's mutex-per-update for one flush per worker per merge point;
// because counter adds commute, the registry totals are identical to what
// per-update accounting would have produced, at any worker count.
//
// A LocalStore must only ever be touched by one goroutine at a time;
// hand-off between the worker and the flusher needs an external
// happens-before edge (the WaitGroup barrier every caller already has).
type LocalStore struct {
	counts map[string]int64
}

// NewLocalStore returns an empty store.
func NewLocalStore() *LocalStore {
	return &LocalStore{counts: make(map[string]int64)}
}

// Add accumulates v into the named local counter.
func (s *LocalStore) Add(name string, v int64) {
	s.counts[name] += v
}

// Value returns the local (unflushed) sum of the named counter.
func (s *LocalStore) Value(name string) int64 {
	return s.counts[name]
}

// FlushTo merges every local counter into the registry and resets the
// store. Counter adds commute, so flushing workers in any order yields the
// same registry state; flushing an empty store is a no-op. A nil registry
// discards the values (mirroring the bus's nil-metrics tolerance).
func (s *LocalStore) FlushTo(r *Registry) {
	for name, v := range s.counts {
		if r != nil && v != 0 {
			r.Counter(name).Add(v)
		}
		delete(s.counts, name)
	}
}
