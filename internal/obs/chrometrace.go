package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// ChromeTrace exports the event stream in the Chrome trace_event JSON
// format, so a run opens directly in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing. The mapping:
//
//   - one trace "thread" per process (tid = process id, pid = 0);
//   - each Step becomes a complete slice ("ph":"X") of one logical tick,
//     with the Lamport annotation and sent-count in args;
//   - each Send/Deliver pair becomes a flow arrow ("ph":"s" → "ph":"f",
//     binding point "e") keyed by the model's unique message identity
//     (From, Seq), so the §2.4 send-before-receive precedence renders as
//     causal arrows between the step slices;
//   - Decide, Crash, QuorumFormed and EpochChange become instant events
//     ("ph":"i") on the process's row.
//
// Timestamps are the run's logical time interpreted as microseconds: the
// export is a pure function of the event sequence, byte-identical whenever
// the event log is.
type ChromeTrace struct {
	w     *bufio.Writer
	c     io.Closer
	first bool
	err   error
	seenP map[int]bool
	order []int
}

// NewChromeTrace returns a trace sink writing to w. If w is an io.Closer
// (a file), Close closes it after finishing the JSON document.
func NewChromeTrace(w io.Writer) *ChromeTrace {
	s := &ChromeTrace{w: bufio.NewWriter(w), first: true, seenP: make(map[int]bool)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	s.writeString(`{"displayTimeUnit":"ms","traceEvents":[`)
	return s
}

// writeString appends raw JSON, latching the first write error.
func (s *ChromeTrace) writeString(str string) {
	if s.err != nil {
		return
	}
	_, s.err = s.w.WriteString(str)
}

// record appends one trace event object.
func (s *ChromeTrace) record(obj string) {
	if s.first {
		s.first = false
	} else {
		s.writeString(",")
	}
	s.writeString(obj)
}

// flowID packs the model's unique message identity (From, Seq) into one
// trace-wide flow id.
func flowID(from int, seq uint64) uint64 { return uint64(from)<<40 | (seq & (1<<40 - 1)) }

// Emit implements Sink.
func (s *ChromeTrace) Emit(ev Event) {
	p := int(ev.P)
	if !s.seenP[p] {
		s.seenP[p] = true
		s.order = append(s.order, p)
	}
	ts := int64(ev.T)
	switch ev.Kind {
	case KindStep:
		s.record(fmt.Sprintf(`{"name":"step","cat":"step","ph":"X","ts":%d,"dur":1,"pid":0,"tid":%d,"args":{"lamport":%d,"sent":%d}}`,
			ts, p, ev.L, ev.Value))
	case KindSend:
		s.record(fmt.Sprintf(`{"name":%s,"cat":"msg","ph":"s","id":%d,"ts":%d,"pid":0,"tid":%d,"args":{"to":%d,"seq":%d,"lamport":%d}}`,
			strconv.Quote(ev.Payload), flowID(int(ev.From), ev.Seq), ts, p, int(ev.To), ev.Seq, ev.L))
	case KindDeliver:
		s.record(fmt.Sprintf(`{"name":%s,"cat":"msg","ph":"f","bp":"e","id":%d,"ts":%d,"pid":0,"tid":%d,"args":{"from":%d,"seq":%d,"lamport":%d}}`,
			strconv.Quote(ev.Payload), flowID(int(ev.From), ev.Seq), ts, p, int(ev.From), ev.Seq, ev.L))
	case KindFDQuery:
		fd := ""
		if ev.FD != nil {
			fd = ev.FD.String()
		}
		s.record(fmt.Sprintf(`{"name":"fd","cat":"fd","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{"value":%s}}`,
			ts, p, strconv.Quote(fd)))
	case KindDecide:
		s.record(fmt.Sprintf(`{"name":"decide=%d","cat":"consensus","ph":"i","s":"p","ts":%d,"pid":0,"tid":%d,"args":{"lamport":%d}}`,
			ev.Value, ts, p, ev.L))
	case KindCrash:
		s.record(fmt.Sprintf(`{"name":"crash","cat":"fault","ph":"i","s":"p","ts":%d,"pid":0,"tid":%d}`, ts, p))
	case KindQuorumFormed:
		s.record(fmt.Sprintf(`{"name":"quorum","cat":"consensus","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{"round":%d,"quorum":%s}}`,
			ts, p, ev.Value, strconv.Quote(ev.Detail)))
	case KindEpochChange:
		s.record(fmt.Sprintf(`{"name":"round=%d","cat":"consensus","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d}`,
			ev.Value, ts, p))
	}
}

// Close finishes the JSON document (metadata naming each process row comes
// last; tooling accepts metadata anywhere in the array), flushes, and
// closes the underlying file if any.
func (s *ChromeTrace) Close() error {
	s.record(`{"name":"process_name","ph":"M","pid":0,"args":{"name":"nuconsensus run"}}`)
	for _, p := range s.order {
		s.record(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"p%d"}}`, p, p))
	}
	s.writeString("]}\n")
	if ferr := s.w.Flush(); s.err == nil {
		s.err = ferr
	}
	if s.c != nil {
		if cerr := s.c.Close(); s.err == nil {
			s.err = cerr
		}
	}
	return s.err
}
