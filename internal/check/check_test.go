package check_test

import (
	"strings"
	"testing"

	"nuconsensus/internal/check"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
	"nuconsensus/internal/trace"
)

func qs(entries ...check.QuorumSample) []check.QuorumSample { return entries }

func q(p model.ProcessID, t model.Time, members ...model.ProcessID) check.QuorumSample {
	return check.QuorumSample{P: p, T: t, Q: model.SetOf(members...)}
}

func TestIntersection(t *testing.T) {
	good := qs(q(0, 1, 0, 1), q(1, 2, 1, 2), q(2, 3, 0, 1, 2))
	if err := check.Intersection(good); err != nil {
		t.Errorf("intersecting samples rejected: %v", err)
	}
	bad := qs(q(0, 1, 0, 1), q(1, 2, 2, 3))
	if err := check.Intersection(bad); err == nil {
		t.Error("disjoint samples accepted")
	}
	// A single empty quorum is self-disjoint (∅ ∩ ∅ = ∅).
	if err := check.Intersection(qs(q(0, 1))); err == nil {
		t.Error("empty quorum must violate intersection with itself")
	}
}

func TestNonuniformIntersection(t *testing.T) {
	pattern := model.PatternFromCrashes(4, map[model.ProcessID]model.Time{3: 5})
	// Faulty p3's junk quorum does not matter.
	samples := qs(q(0, 1, 0, 1), q(1, 2, 1, 2), q(3, 3, 3))
	if err := check.NonuniformIntersection(samples, pattern); err != nil {
		t.Errorf("junk at faulty process rejected: %v", err)
	}
	// But disjoint quorums at two correct processes do.
	bad := qs(q(0, 1, 0), q(1, 2, 1))
	if err := check.NonuniformIntersection(bad, pattern); err == nil {
		t.Error("disjoint correct quorums accepted")
	}
}

func TestCompleteness(t *testing.T) {
	pattern := model.PatternFromCrashes(3, map[model.ProcessID]model.Time{2: 5})
	samples := qs(
		q(0, 3, 0, 1, 2), // noisy before horizon: fine
		q(0, 20, 0, 1),
		q(1, 21, 0, 1),
		q(2, 2, 2), // faulty process: exempt
	)
	if err := check.Completeness(samples, pattern, 10); err != nil {
		t.Errorf("rejected: %v", err)
	}
	bad := append(samples, q(1, 30, 1, 2))
	if err := check.Completeness(bad, pattern, 10); err == nil {
		t.Error("faulty member after horizon accepted")
	}
	// An empty suffix is an error, not a pass.
	if err := check.Completeness(samples, pattern, 100); err == nil {
		t.Error("empty suffix must not vacuously pass")
	}
}

func TestSelfInclusion(t *testing.T) {
	if err := check.SelfInclusion(qs(q(0, 1, 0, 1), q(1, 1, 1))); err != nil {
		t.Errorf("rejected: %v", err)
	}
	if err := check.SelfInclusion(qs(q(0, 1, 1, 2))); err == nil {
		t.Error("owner-free quorum accepted")
	}
}

func TestConditionalNonintersection(t *testing.T) {
	pattern := model.PatternFromCrashes(4, map[model.ProcessID]model.Time{2: 5, 3: 5})
	// p3's quorum {p3} is disjoint from correct p0's {p0,p1} but all-faulty: OK.
	good := qs(q(0, 1, 0, 1), q(3, 1, 3))
	if err := check.ConditionalNonintersection(good, pattern); err != nil {
		t.Errorf("rejected: %v", err)
	}
	// {p1,p3} disjoint from... {p0}? craft: correct p0 outputs {p0}; p3
	// outputs {p1,p3} which is disjoint from {p0} but contains correct p1.
	bad := qs(q(0, 1, 0), q(3, 1, 1, 3))
	if err := check.ConditionalNonintersection(bad, pattern); err == nil {
		t.Error("disjoint quorum containing a correct process accepted")
	}
}

func TestOmegaChecker(t *testing.T) {
	pattern := model.PatternFromCrashes(3, map[model.ProcessID]model.Time{2: 5})
	ls := []check.LeaderSample{
		{P: 0, T: 1, L: 2}, // noise before horizon
		{P: 0, T: 20, L: 0},
		{P: 1, T: 21, L: 0},
	}
	if err := check.Omega(ls, pattern, 10); err != nil {
		t.Errorf("rejected: %v", err)
	}
	t.Run("faulty leader after horizon", func(t *testing.T) {
		bad := append(ls, check.LeaderSample{P: 1, T: 30, L: 2})
		if err := check.Omega(bad, pattern, 10); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("two leaders after horizon", func(t *testing.T) {
		bad := append(ls, check.LeaderSample{P: 1, T: 30, L: 1})
		if err := check.Omega(bad, pattern, 10); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("empty suffix", func(t *testing.T) {
		if err := check.Omega(ls, pattern, 100); err == nil {
			t.Error("vacuous pass")
		}
	})
	t.Run("no correct processes", func(t *testing.T) {
		all := model.PatternFromCrashes(2, map[model.ProcessID]model.Time{0: 1, 1: 1})
		if err := check.Omega(nil, all, 0); err != nil {
			t.Errorf("Ω is vacuous with no correct process: %v", err)
		}
	})
}

func TestProjectionErrors(t *testing.T) {
	samples := []trace.Sample{{P: 0, T: 1, Val: fd.NullValue{}}}
	if _, err := check.QuorumSamples(samples); err == nil {
		t.Error("non-quorum sample must error")
	}
	if _, err := check.LeaderSamples(samples); err == nil {
		t.Error("non-leader sample must error")
	}
}

func TestLastCompletenessViolation(t *testing.T) {
	pattern := model.PatternFromCrashes(3, map[model.ProcessID]model.Time{2: 5})
	samples := []trace.Sample{
		{P: 0, T: 3, Val: fd.QuorumValue{Quorum: model.SetOf(0, 2)}}, // violation at 3
		{P: 0, T: 9, Val: fd.QuorumValue{Quorum: model.SetOf(0, 1)}}, // clean
		{P: 1, T: 7, Val: fd.QuorumValue{Quorum: model.SetOf(1, 2)}}, // violation at 7
		{P: 2, T: 50, Val: fd.QuorumValue{Quorum: model.SetOf(2)}},   // faulty: exempt
	}
	got, err := check.LastCompletenessViolation(samples, pattern)
	if err != nil || got != 7 {
		t.Errorf("LastCompletenessViolation = %d, %v; want 7", got, err)
	}
	clean := samples[1:2]
	got, err = check.LastCompletenessViolation(clean, pattern)
	if err != nil || got != -1 {
		t.Errorf("clean record horizon = %d, want -1", got)
	}
}

func TestConsensusOutcomeCheckers(t *testing.T) {
	pattern := model.PatternFromCrashes(3, map[model.ProcessID]model.Time{2: 5})
	base := check.ConsensusOutcome{
		Proposals: map[model.ProcessID]int{0: 1, 1: 0, 2: 0},
		Decisions: map[model.ProcessID]int{0: 1, 1: 1},
	}
	if err := base.NonuniformConsensus(pattern); err != nil {
		t.Fatalf("valid outcome rejected: %v", err)
	}

	t.Run("termination", func(t *testing.T) {
		o := base
		o.Decisions = map[model.ProcessID]int{0: 1}
		if err := o.Termination(pattern); err == nil || !strings.Contains(err.Error(), "did not decide") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("validity", func(t *testing.T) {
		o := base
		o.Decisions = map[model.ProcessID]int{0: 9, 1: 9}
		if err := o.Validity(); err == nil {
			t.Error("unproposed value accepted")
		}
	})
	t.Run("nonuniform agreement ignores faulty", func(t *testing.T) {
		o := base
		o.Decisions = map[model.ProcessID]int{0: 1, 1: 1, 2: 0} // faulty p2 differs
		if err := o.NonuniformAgreement(pattern); err != nil {
			t.Errorf("faulty divergence must be allowed: %v", err)
		}
		if err := o.UniformAgreement(); err == nil {
			t.Error("uniform agreement must reject faulty divergence")
		}
		if err := o.NonuniformConsensus(pattern); err != nil {
			t.Errorf("nonuniform consensus must hold: %v", err)
		}
		if err := o.UniformConsensus(pattern); err == nil {
			t.Error("uniform consensus must fail")
		}
	})
	t.Run("nonuniform agreement violation", func(t *testing.T) {
		o := base
		o.Decisions = map[model.ProcessID]int{0: 1, 1: 0}
		if err := o.NonuniformAgreement(pattern); err == nil {
			t.Error("correct divergence accepted")
		}
	})
}

func TestAggregateSpecCheckers(t *testing.T) {
	pattern := model.PatternFromCrashes(3, map[model.ProcessID]model.Time{2: 5})
	correctOnly := model.SetOf(0, 1)
	good := []trace.Sample{
		{P: 0, T: 20, Val: fd.QuorumValue{Quorum: correctOnly}},
		{P: 1, T: 21, Val: fd.QuorumValue{Quorum: correctOnly}},
	}
	if err := check.Sigma(good, pattern, 10); err != nil {
		t.Errorf("Sigma rejected: %v", err)
	}
	if err := check.SigmaNu(good, pattern, 10); err != nil {
		t.Errorf("SigmaNu rejected: %v", err)
	}
	if err := check.SigmaNuPlus(good, pattern, 10); err != nil {
		t.Errorf("SigmaNuPlus rejected: %v", err)
	}
	// Add a junk quorum at the faulty process: Σ breaks, Σν/Σν+ survive.
	junk := append(good, trace.Sample{P: 2, T: 2, Val: fd.QuorumValue{Quorum: model.SetOf(2)}})
	if err := check.Sigma(junk, pattern, 10); err == nil {
		t.Error("Sigma must reject disjoint faulty quorums")
	}
	if err := check.SigmaNu(junk, pattern, 10); err != nil {
		t.Errorf("SigmaNu rejected faulty junk: %v", err)
	}
	if err := check.SigmaNuPlus(junk, pattern, 10); err != nil {
		t.Errorf("SigmaNuPlus rejected all-faulty junk: %v", err)
	}
	// A quorum missing its owner breaks only Σν+.
	noSelf := append(good, trace.Sample{P: 0, T: 22, Val: fd.QuorumValue{Quorum: model.SetOf(1)}})
	if err := check.SigmaNu(noSelf, pattern, 10); err != nil {
		t.Errorf("SigmaNu rejected owner-free quorum: %v", err)
	}
	if err := check.SigmaNuPlus(noSelf, pattern, 10); err == nil {
		t.Error("SigmaNuPlus must require self-inclusion")
	}
	// Non-quorum samples are an error in every aggregate.
	bad := []trace.Sample{{P: 0, T: 1, Val: fd.NullValue{}}}
	for name, f := range map[string]func([]trace.Sample, *model.FailurePattern, model.Time) error{
		"Sigma": check.Sigma, "SigmaNu": check.SigmaNu, "SigmaNuPlus": check.SigmaNuPlus,
	} {
		if err := f(bad, pattern, 0); err == nil {
			t.Errorf("%s accepted non-quorum samples", name)
		}
	}
}

func TestOmegaOutputs(t *testing.T) {
	pattern := model.PatternFromCrashes(3, map[model.ProcessID]model.Time{2: 5})
	good := []trace.Sample{
		{P: 0, T: 20, Val: fd.LeaderValue{Leader: 0}},
		{P: 1, T: 21, Val: fd.LeaderValue{Leader: 0}},
	}
	if err := check.OmegaOutputs(good, pattern, 10); err != nil {
		t.Errorf("rejected: %v", err)
	}
	if err := check.OmegaOutputs([]trace.Sample{{P: 0, T: 1, Val: fd.NullValue{}}}, pattern, 0); err == nil {
		t.Error("non-leader samples must error")
	}
}

func TestStabilizationTime(t *testing.T) {
	pattern := model.PatternFromCrashes(3, map[model.ProcessID]model.Time{2: 5})
	samples := []trace.Sample{
		{P: 0, T: 1, Val: fd.LeaderValue{Leader: 1}},
		{P: 0, T: 5, Val: fd.LeaderValue{Leader: 0}},  // change at 5
		{P: 0, T: 9, Val: fd.LeaderValue{Leader: 0}},  // no change
		{P: 2, T: 30, Val: fd.LeaderValue{Leader: 2}}, // faulty: ignored
		{P: 1, T: 7, Val: fd.LeaderValue{Leader: 0}},  // first sample: no change
	}
	if got := check.StabilizationTime(samples, pattern); got != 5 {
		t.Errorf("StabilizationTime = %d, want 5", got)
	}
	if got := check.StabilizationTime(nil, pattern); got != 0 {
		t.Errorf("empty record = %d, want 0", got)
	}
}

func TestEventuallyPerfect(t *testing.T) {
	pattern := model.PatternFromCrashes(3, map[model.ProcessID]model.Time{2: 5})
	faulty := model.SetOf(2)
	good := []trace.Sample{
		{P: 0, T: 2, Val: fd.SuspectsValue{Suspects: model.SetOf(1)}}, // noise before horizon
		{P: 0, T: 20, Val: fd.SuspectsValue{Suspects: faulty}},
		{P: 1, T: 21, Val: fd.SuspectsValue{Suspects: faulty}},
	}
	if err := check.EventuallyPerfect(good, pattern, 10); err != nil {
		t.Errorf("rejected: %v", err)
	}
	t.Run("misses faulty", func(t *testing.T) {
		bad := append(good, trace.Sample{P: 0, T: 30, Val: fd.SuspectsValue{Suspects: 0}})
		if err := check.EventuallyPerfect(bad, pattern, 10); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("suspects correct", func(t *testing.T) {
		bad := append(good, trace.Sample{P: 0, T: 30, Val: fd.SuspectsValue{Suspects: model.SetOf(1, 2)}})
		if err := check.EventuallyPerfect(bad, pattern, 10); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("wrong value type", func(t *testing.T) {
		bad := []trace.Sample{{P: 0, T: 20, Val: fd.NullValue{}}}
		if err := check.EventuallyPerfect(bad, pattern, 10); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("empty suffix", func(t *testing.T) {
		if err := check.EventuallyPerfect(good, pattern, 100); err == nil {
			t.Error("vacuous pass")
		}
	})
}

func TestOutcomeFromConfig(t *testing.T) {
	pattern := model.NewFailurePattern(3)
	c := model.InitialConfiguration(testConsensusAut{})
	out := check.OutcomeFromConfig(c)
	if len(out.Proposals) != 3 || out.Proposals[1] != 10 {
		t.Errorf("proposals = %v", out.Proposals)
	}
	if v, ok := out.Decisions[2]; !ok || v != 10 {
		t.Errorf("decisions = %v", out.Decisions)
	}
	if err := out.Termination(pattern); err == nil {
		t.Error("p0/p1 undecided: termination must fail")
	}
}

// testConsensusAut is a stub automaton whose p2 starts decided.
type testConsensusAut struct{}

type stubState struct {
	p model.ProcessID
}

func (s stubState) CloneState() model.State { return s }
func (s stubState) Proposal() int           { return 10 }
func (s stubState) Decision() (int, bool)   { return 10, s.p == 2 }

func (testConsensusAut) Name() string { return "stub" }
func (testConsensusAut) N() int       { return 3 }
func (testConsensusAut) InitState(p model.ProcessID) model.State {
	return stubState{p: p}
}
func (testConsensusAut) Step(_ model.ProcessID, s model.State, _ *model.Message, _ model.FDValue) (model.State, []model.Send) {
	return s, nil
}
