package check

import (
	"fmt"
	"sort"

	"nuconsensus/internal/model"
)

// ConsensusOutcome is what a consensus execution produced: who proposed
// what and who decided what. Drivers build it from traces or final
// configurations.
type ConsensusOutcome struct {
	Proposals map[model.ProcessID]int
	Decisions map[model.ProcessID]int
}

// OutcomeFromConfig extracts proposals and decisions from a final
// configuration whose states implement model.Proposer / model.Decider.
func OutcomeFromConfig(c *model.Configuration) ConsensusOutcome {
	out := ConsensusOutcome{
		Proposals: make(map[model.ProcessID]int, len(c.States)),
		Decisions: make(map[model.ProcessID]int),
	}
	for i, s := range c.States {
		p := model.ProcessID(i)
		if pr, ok := s.(model.Proposer); ok {
			out.Proposals[p] = pr.Proposal()
		}
		if v, ok := model.DecisionOf(s); ok {
			out.Decisions[p] = v
		}
	}
	return out
}

// Termination checks that every correct process decided (§2.8).
func (o ConsensusOutcome) Termination(f *model.FailurePattern) error {
	var err error
	f.Correct().ForEach(func(p model.ProcessID) {
		if err != nil {
			return
		}
		if _, ok := o.Decisions[p]; !ok {
			err = fmt.Errorf("check: correct process %s did not decide", p)
		}
	})
	return err
}

// Validity checks that every decided value was proposed by some process.
func (o ConsensusOutcome) Validity() error {
	proposed := make(map[int]bool, len(o.Proposals))
	for _, v := range o.Proposals {
		proposed[v] = true
	}
	for _, p := range o.sortedDeciders() {
		if v := o.Decisions[p]; !proposed[v] {
			return fmt.Errorf("check: %s decided %d, which no process proposed", p, v)
		}
	}
	return nil
}

// NonuniformAgreement checks that no two correct processes decided
// different values.
func (o ConsensusOutcome) NonuniformAgreement(f *model.FailurePattern) error {
	correct := f.Correct()
	val, who := 0, model.NoProcess
	for _, p := range o.sortedDeciders() {
		v := o.Decisions[p]
		if !correct.Has(p) {
			continue
		}
		if who == model.NoProcess {
			val, who = v, p
			continue
		}
		if v != val {
			return fmt.Errorf("check: correct processes %s and %s decided %d and %d", who, p, val, v)
		}
	}
	return nil
}

// UniformAgreement checks that no two processes (correct or faulty)
// decided different values.
func (o ConsensusOutcome) UniformAgreement() error {
	val, who := 0, model.NoProcess
	for _, p := range o.sortedDeciders() {
		v := o.Decisions[p]
		if who == model.NoProcess {
			val, who = v, p
			continue
		}
		if v != val {
			return fmt.Errorf("check: processes %s and %s decided %d and %d", who, p, val, v)
		}
	}
	return nil
}

// sortedDeciders returns the deciding processes in ProcessID order, so
// the first offending process an agreement/validity check reports is
// independent of map iteration order.
func (o ConsensusOutcome) sortedDeciders() []model.ProcessID {
	ps := make([]model.ProcessID, 0, len(o.Decisions))
	for p := range o.Decisions {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps
}

// Safety checks the two safety properties of nonuniform consensus —
// validity and nonuniform agreement — but not termination. Unlike the full
// NonuniformConsensus check it is meaningful on *intermediate*
// configurations: decisions are irrevocable, so once a prefix violates
// safety every extension does too, which is exactly the property the
// bounded model checker (internal/explore) needs to prune at the first
// violating state.
func (o ConsensusOutcome) Safety(f *model.FailurePattern) error {
	if err := o.Validity(); err != nil {
		return err
	}
	return o.NonuniformAgreement(f)
}

// SafetyViolation extracts the outcome of a (possibly unfinished)
// configuration and returns the first safety violation, or nil.
func SafetyViolation(c *model.Configuration, f *model.FailurePattern) error {
	return OutcomeFromConfig(c).Safety(f)
}

// NonuniformConsensus checks all three properties of nonuniform consensus
// (§2.8) on the outcome.
func (o ConsensusOutcome) NonuniformConsensus(f *model.FailurePattern) error {
	if err := o.Termination(f); err != nil {
		return err
	}
	if err := o.Validity(); err != nil {
		return err
	}
	return o.NonuniformAgreement(f)
}

// UniformConsensus checks termination, validity and uniform agreement.
func (o ConsensusOutcome) UniformConsensus(f *model.FailurePattern) error {
	if err := o.Termination(f); err != nil {
		return err
	}
	if err := o.Validity(); err != nil {
		return err
	}
	return o.UniformAgreement()
}
