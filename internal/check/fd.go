// Package check verifies the paper's failure-detector and consensus
// properties on finite execution records. Eventual properties
// ("∃t ∀t' > t: …") are checked on the suffix of the record after a caller
// supplied horizon; safety properties are checked on the whole record.
//
// The same checkers validate native failure-detector histories and the
// emulated detectors produced by the transformation algorithms of
// internal/transform — this is what makes the "transforms D to D'"
// statements of §2.9 executable.
package check

import (
	"fmt"

	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
	"nuconsensus/internal/trace"
)

// QuorumSample is a failure-detector sample projected to its quorum
// component.
type QuorumSample struct {
	P model.ProcessID
	T model.Time
	Q model.ProcessSet
}

// QuorumSamples projects samples to their quorum components. Samples with
// no quorum component are reported as an error, since silently dropping
// them would weaken the checks.
func QuorumSamples(samples []trace.Sample) ([]QuorumSample, error) {
	out := make([]QuorumSample, 0, len(samples))
	for _, s := range samples {
		q, ok := fd.QuorumOf(s.Val)
		if !ok {
			return nil, fmt.Errorf("check: sample %v at (%s,%d) has no quorum component", s.Val, s.P, s.T)
		}
		out = append(out, QuorumSample{P: s.P, T: s.T, Q: q})
	}
	return out, nil
}

// LeaderSample is a failure-detector sample projected to its Ω component.
type LeaderSample struct {
	P model.ProcessID
	T model.Time
	L model.ProcessID
}

// LeaderSamples projects samples to their leader components.
func LeaderSamples(samples []trace.Sample) ([]LeaderSample, error) {
	out := make([]LeaderSample, 0, len(samples))
	for _, s := range samples {
		l, ok := fd.LeaderOf(s.Val)
		if !ok {
			return nil, fmt.Errorf("check: sample %v at (%s,%d) has no leader component", s.Val, s.P, s.T)
		}
		out = append(out, LeaderSample{P: s.P, T: s.T, L: l})
	}
	return out, nil
}

// Omega checks the Ω specification (§3.1) on a finite record: after the
// horizon, every sample at a correct process must be the same correct
// process. An error names the first offending sample.
func Omega(samples []LeaderSample, f *model.FailurePattern, horizon model.Time) error {
	correct := f.Correct()
	if correct.IsEmpty() {
		return nil // Ω's guarantee is conditional on correct(F) ≠ ∅
	}
	leader := model.NoProcess
	sawSuffix := false
	for _, s := range samples {
		if s.T <= horizon || !correct.Has(s.P) {
			continue
		}
		sawSuffix = true
		if !correct.Has(s.L) {
			return fmt.Errorf("check: Ω output faulty process %s at (%s,%d) after horizon %d", s.L, s.P, s.T, horizon)
		}
		if leader == model.NoProcess {
			leader = s.L
		} else if leader != s.L {
			return fmt.Errorf("check: Ω output %s at (%s,%d) but %s earlier after horizon %d", s.L, s.P, s.T, leader, horizon)
		}
	}
	if !sawSuffix {
		return fmt.Errorf("check: no Ω samples at correct processes after horizon %d", horizon)
	}
	return nil
}

// Intersection checks Σ's (uniform) intersection property (§3.2): every two
// quorums, at any processes and times, intersect.
func Intersection(samples []QuorumSample) error {
	for i := range samples {
		for j := i; j < len(samples); j++ {
			if !samples[i].Q.Intersects(samples[j].Q) {
				return fmt.Errorf("check: quorums %s at (%s,%d) and %s at (%s,%d) are disjoint",
					samples[i].Q, samples[i].P, samples[i].T,
					samples[j].Q, samples[j].P, samples[j].T)
			}
		}
	}
	return nil
}

// NonuniformIntersection checks Σν's intersection property (§3.3): every
// two quorums output at correct processes intersect.
func NonuniformIntersection(samples []QuorumSample, f *model.FailurePattern) error {
	correct := f.Correct()
	var cs []QuorumSample
	for _, s := range samples {
		if correct.Has(s.P) {
			cs = append(cs, s)
		}
	}
	if err := Intersection(cs); err != nil {
		return fmt.Errorf("nonuniform %w", err)
	}
	return nil
}

// Completeness checks the completeness property shared by Σ, Σν and Σν+:
// after the horizon, every quorum output at a correct process contains only
// correct processes.
func Completeness(samples []QuorumSample, f *model.FailurePattern, horizon model.Time) error {
	correct := f.Correct()
	sawSuffix := false
	for _, s := range samples {
		if s.T <= horizon || !correct.Has(s.P) {
			continue
		}
		sawSuffix = true
		if !s.Q.SubsetOf(correct) {
			return fmt.Errorf("check: quorum %s at (%s,%d) contains faulty processes after horizon %d",
				s.Q, s.P, s.T, horizon)
		}
	}
	if !correct.IsEmpty() && !sawSuffix {
		return fmt.Errorf("check: no quorum samples at correct processes after horizon %d", horizon)
	}
	return nil
}

// SelfInclusion checks Σν+'s self-inclusion property (§6.1): p ∈ H(p, t)
// for every sample.
func SelfInclusion(samples []QuorumSample) error {
	for _, s := range samples {
		if !s.Q.Has(s.P) {
			return fmt.Errorf("check: quorum %s at (%s,%d) does not contain its owner", s.Q, s.P, s.T)
		}
	}
	return nil
}

// ConditionalNonintersection checks Σν+'s conditional nonintersection
// property (§6.1): any quorum disjoint from some quorum of a correct
// process contains only faulty processes.
func ConditionalNonintersection(samples []QuorumSample, f *model.FailurePattern) error {
	correct := f.Correct()
	faulty := f.Faulty()
	for _, s := range samples {
		if !correct.Has(s.P) {
			continue
		}
		for _, x := range samples {
			if x.Q.Intersects(s.Q) {
				continue
			}
			if !x.Q.SubsetOf(faulty) {
				return fmt.Errorf("check: quorum %s at (%s,%d) is disjoint from correct quorum %s at (%s,%d) yet contains correct processes",
					x.Q, x.P, x.T, s.Q, s.P, s.T)
			}
		}
	}
	return nil
}

// Sigma checks the full Σ specification on a finite record.
func Sigma(samples []trace.Sample, f *model.FailurePattern, horizon model.Time) error {
	qs, err := QuorumSamples(samples)
	if err != nil {
		return err
	}
	if err := Intersection(qs); err != nil {
		return err
	}
	return Completeness(qs, f, horizon)
}

// SigmaNu checks the full Σν specification on a finite record.
func SigmaNu(samples []trace.Sample, f *model.FailurePattern, horizon model.Time) error {
	qs, err := QuorumSamples(samples)
	if err != nil {
		return err
	}
	if err := NonuniformIntersection(qs, f); err != nil {
		return err
	}
	return Completeness(qs, f, horizon)
}

// SigmaNuPlus checks the full Σν+ specification on a finite record.
func SigmaNuPlus(samples []trace.Sample, f *model.FailurePattern, horizon model.Time) error {
	qs, err := QuorumSamples(samples)
	if err != nil {
		return err
	}
	if err := NonuniformIntersection(qs, f); err != nil {
		return err
	}
	if err := SelfInclusion(qs); err != nil {
		return err
	}
	if err := ConditionalNonintersection(qs, f); err != nil {
		return err
	}
	return Completeness(qs, f, horizon)
}

// OmegaOutputs checks the Ω specification over recorded output samples,
// projecting each value to its leader component (bare LeaderValues or the
// first component of pairs).
func OmegaOutputs(samples []trace.Sample, f *model.FailurePattern, horizon model.Time) error {
	ls, err := LeaderSamples(samples)
	if err != nil {
		return err
	}
	return Omega(ls, f, horizon)
}

// LastCompletenessViolation returns the last time a correct process's
// recorded quorum contained a faulty process, or -1 if that never happens.
// It is the canonical horizon for checking the completeness property of
// emulated quorum detectors: Σ-family detectors may keep changing their
// quorums forever (the paper notes Σ "does not require that the quorums of
// correct processes eventually converge"), so the meaningful finite-trace
// statement is "violations cease, with a margin before the end of the
// record". Callers must separately require the returned horizon to fall
// well before the last sample.
func LastCompletenessViolation(samples []trace.Sample, f *model.FailurePattern) (model.Time, error) {
	qs, err := QuorumSamples(samples)
	if err != nil {
		return 0, err
	}
	correct := f.Correct()
	last := model.Time(-1)
	for _, s := range qs {
		if correct.Has(s.P) && !s.Q.SubsetOf(correct) && s.T > last {
			last = s.T
		}
	}
	return last, nil
}

// StabilizationTime returns the time of the last change in any correct
// process's recorded value (0 if nothing ever changed). Tests use it to
// place the horizon for eventual-property checks on emulated detectors,
// whose stabilization time is not known a priori; pairing it with an upper
// bound on how late stabilization may happen keeps the suffix nonempty.
func StabilizationTime(samples []trace.Sample, f *model.FailurePattern) model.Time {
	correct := f.Correct()
	last := make(map[model.ProcessID]string)
	var stab model.Time
	for _, s := range samples {
		if !correct.Has(s.P) {
			continue
		}
		cur := s.Val.String()
		if prev, ok := last[s.P]; ok && prev == cur {
			continue
		}
		if _, ok := last[s.P]; ok {
			stab = s.T
		}
		last[s.P] = cur
	}
	return stab
}

// EventuallyPerfect checks the ◇P specification on recorded suspect-set
// outputs: after the horizon, every sample at a correct process suspects
// exactly the faulty processes — strong completeness (every faulty process
// is permanently suspected) plus eventual strong accuracy (no correct
// process is suspected).
func EventuallyPerfect(samples []trace.Sample, f *model.FailurePattern, horizon model.Time) error {
	correct := f.Correct()
	faulty := f.Faulty()
	sawSuffix := false
	for _, s := range samples {
		if s.T <= horizon || !correct.Has(s.P) {
			continue
		}
		sus, ok := fd.SuspectsOf(s.Val)
		if !ok {
			return fmt.Errorf("check: sample %v at (%s,%d) has no suspects component", s.Val, s.P, s.T)
		}
		sawSuffix = true
		if !faulty.SubsetOf(sus) {
			return fmt.Errorf("check: ◇P misses faulty processes at (%s,%d): suspects %s, faulty %s",
				s.P, s.T, sus, faulty)
		}
		if sus.Intersects(correct) {
			return fmt.Errorf("check: ◇P suspects correct processes at (%s,%d): %s",
				s.P, s.T, sus.Intersect(correct))
		}
	}
	if !correct.IsEmpty() && !sawSuffix {
		return fmt.Errorf("check: no ◇P samples at correct processes after horizon %d", horizon)
	}
	return nil
}
