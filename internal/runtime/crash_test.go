package runtime_test

import (
	"context"
	"testing"

	"nuconsensus/internal/check"
	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
	"nuconsensus/internal/runtime"
	"nuconsensus/internal/substrate"
	"nuconsensus/internal/transform"
)

// TestCrashedProcessesStopStepping: no recorded step by a crashed process
// may carry a time at or after its crash (run property (3)).
func TestCrashedProcessesStopStepping(t *testing.T) {
	pattern := model.PatternFromCrashes(4, map[model.ProcessID]model.Time{1: 60, 2: 120})
	hist := fd.PairHistory{
		First:  fd.NewOmega(pattern, 200, 5),
		Second: fd.NewSigmaNuPlus(pattern, 200, 5),
	}
	res, err := runtime.New().Run(context.Background(), consensus.NewANuc([]int{0, 1, 0, 1}), hist, pattern, substrate.Options{
		Seed:     5,
		MaxSteps: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Rec.Samples {
		if pattern.Crashed(s.P, s.T) {
			t.Fatalf("crashed %v took a step at t=%d", s.P, s.T)
		}
	}
}

// TestRuntimeValidation covers the error paths.
func TestRuntimeValidation(t *testing.T) {
	pattern := model.NewFailurePattern(3)
	hist := fd.NewOmega(pattern, 0, 1)
	aut := consensus.NewMRMajority([]int{0, 1, 1})
	ctx := context.Background()
	ten := substrate.Options{MaxSteps: 10}
	cases := []func() error{
		func() error { _, err := runtime.New().Run(ctx, nil, hist, pattern, ten); return err },
		func() error { _, err := runtime.New().Run(ctx, aut, hist, nil, ten); return err },
		func() error { _, err := runtime.New().Run(ctx, aut, hist, pattern, substrate.Options{}); return err },
		func() error {
			_, err := runtime.New().Run(ctx, aut, hist, model.NewFailurePattern(4), ten)
			return err
		},
	}
	for i, run := range cases {
		if run() == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestRuntimeTransformerEmulation runs T_{Σν→Σν+} on the concurrent
// runtime and validates the emulated history — the necessity machinery
// works outside the deterministic simulator too.
func TestRuntimeTransformerEmulation(t *testing.T) {
	pattern := model.PatternFromCrashes(3, map[model.ProcessID]model.Time{1: 60})
	hist := fd.NewSigmaNu(pattern, 150, 3)
	res, err := runtime.New().Run(context.Background(), transform.NewSigmaNuPlusTransformer(3), hist, pattern, substrate.Options{
		Seed:     3,
		MaxSteps: 900,
	})
	if err != nil {
		t.Fatal(err)
	}
	horizon, herr := check.LastCompletenessViolation(res.Rec.Outputs, pattern)
	if herr != nil {
		t.Fatal(herr)
	}
	if horizon > res.Ticks*4/5 {
		t.Fatalf("emulation did not stabilize (horizon %d of %d)", horizon, res.Ticks)
	}
	if err := check.SigmaNuPlus(res.Rec.Outputs, pattern, horizon); err != nil {
		t.Fatalf("emulated Σν+ invalid on the runtime: %v", err)
	}
}

// TestRuntimeSafetyAcrossSeeds: agreement and validity must hold for every
// interleaving the concurrent runtime produces.
func TestRuntimeSafetyAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		pattern := model.PatternFromCrashes(4, map[model.ProcessID]model.Time{3: 50})
		hist := fd.PairHistory{
			First:  fd.NewOmega(pattern, 150, seed),
			Second: fd.NewSigmaNuPlus(pattern, 150, seed),
		}
		res, err := runtime.New().Run(context.Background(), consensus.NewANuc([]int{1, 0, 1, 0}), hist, pattern, substrate.Options{
			Seed:            seed,
			MaxSteps:        100000,
			StopWhenDecided: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := check.OutcomeFromConfig(res.Config)
		if err := out.Validity(); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if err := out.NonuniformAgreement(pattern); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}
