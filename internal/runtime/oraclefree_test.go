package runtime_test

import (
	"context"
	"testing"

	"nuconsensus/internal/check"
	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/hb"
	"nuconsensus/internal/model"
	"nuconsensus/internal/runtime"
	"nuconsensus/internal/substrate"
	"nuconsensus/internal/transform"
)

// TestOracleFreeOnGoroutineRuntime is the most "real system" execution in
// the repository: actual goroutines exchanging heartbeats and threshold
// rounds over channels, with crash injection, composing into A_nuc — no
// failure-detector oracle anywhere, no deterministic scheduler. Only
// safety is asserted unconditionally; liveness gets a generous budget.
func TestOracleFreeOnGoroutineRuntime(t *testing.T) {
	decidedRuns := 0
	for seed := int64(1); seed <= 6; seed++ {
		n, tf := 5, 2
		pattern := model.PatternFromCrashes(n, map[model.ProcessID]model.Time{1: 400, 3: 700})
		aut := transform.NewOracleFree(
			hb.NewOmega(n, 0, 0),
			transform.NewScratchSigmaNuPlus(n, tf),
			consensus.NewANuc([]int{0, 1, 0, 1, 0}),
		)
		res, err := runtime.New().Run(context.Background(), aut, fd.Null, pattern, substrate.Options{
			Seed:            seed,
			MaxSteps:        300000,
			StopWhenDecided: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := check.OutcomeFromConfig(res.Config)
		if err := out.Validity(); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if err := out.NonuniformAgreement(pattern); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if res.Decided {
			decidedRuns++
		}
	}
	// The concurrent runtime has no timeliness guarantee, but in practice
	// the adaptive timeouts converge; require most runs to decide.
	if decidedRuns < 4 {
		t.Fatalf("only %d/6 oracle-free runs decided", decidedRuns)
	}
	t.Logf("%d/6 oracle-free runs decided", decidedRuns)
}
