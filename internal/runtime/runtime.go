// Package runtime executes algorithm automata as real concurrent processes:
// one goroutine per process, channels-backed links with randomized delivery
// order and delay, crash injection driven by a failure pattern, and local
// failure-detector modules backed by a history queried at a shared logical
// clock. It is the "systems" substrate complementing the model-faithful
// deterministic simulator in internal/sim: the same Automaton values run on
// both, so properties checked under the simulator are exercised under real
// concurrency here.
//
// Executions are inherently nondeterministic; tests assert safety
// properties unconditionally and liveness under generous step budgets.
package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"nuconsensus/internal/model"
	"nuconsensus/internal/trace"
)

// Config configures a cluster execution.
type Config struct {
	Automaton model.Automaton
	Pattern   *model.FailurePattern
	// History backs each process's failure-detector module; it is queried
	// at the cluster's logical time (one tick per step taken by any
	// process) and must be safe for concurrent use (the fd package's
	// histories are pure functions).
	History model.History
	Seed    int64

	// MaxTicks bounds the cluster's logical time (total steps across all
	// processes). Required, > 0.
	MaxTicks model.Time
	// StopWhenDecided, if true, stops the cluster once every correct
	// process has decided.
	StopWhenDecided bool
	// MeanDelay is the average artificial link delay; zero means deliver
	// as fast as the scheduler allows.
	MeanDelay time.Duration
}

// Result is the outcome of a cluster execution.
type Result struct {
	States  []model.State // final state of each process
	Ticks   model.Time    // logical time when the cluster stopped
	Decided bool          // every correct process decided
	Rec     *trace.Recorder
}

// inbox is an unbounded mailbox with SupersededPayload collapsing, so DAG
// snapshot floods cannot deadlock or exhaust memory.
type inbox struct {
	mu   sync.Mutex
	msgs []*model.Message
}

func (b *inbox) put(m *model.Message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := m.Payload.(model.SupersededPayload); ok {
		kept := b.msgs[:0]
		for _, x := range b.msgs {
			if x.From == m.From && x.Payload.Kind() == m.Payload.Kind() {
				continue // superseded by the newcomer
			}
			kept = append(kept, x)
		}
		b.msgs = kept
	}
	b.msgs = append(b.msgs, m)
}

// take removes and returns the oldest message, or nil.
func (b *inbox) take() *model.Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.msgs) == 0 {
		return nil
	}
	m := b.msgs[0]
	b.msgs = b.msgs[1:]
	return m
}

// Run executes the cluster and blocks until it stops.
func Run(cfg Config) (*Result, error) {
	if cfg.Automaton == nil || cfg.Pattern == nil || cfg.History == nil {
		return nil, errors.New("runtime: Automaton, Pattern and History are required")
	}
	if cfg.MaxTicks <= 0 {
		return nil, errors.New("runtime: MaxTicks must be positive")
	}
	n := cfg.Automaton.N()
	if n != cfg.Pattern.N() {
		return nil, fmt.Errorf("runtime: automaton n=%d but pattern n=%d", n, cfg.Pattern.N())
	}

	var (
		clock    atomic.Int64
		seq      atomic.Uint64
		stop     = make(chan struct{})
		stopOnce sync.Once
		wg       sync.WaitGroup
		inboxes  = make([]*inbox, n)

		mu      sync.Mutex
		states  = make([]model.State, n)
		decided = make(map[model.ProcessID]bool)
		rec     = &trace.Recorder{}
	)
	for i := range inboxes {
		inboxes[i] = &inbox{}
	}
	for p := 0; p < n; p++ {
		states[p] = cfg.Automaton.InitState(model.ProcessID(p))
	}
	correct := cfg.Pattern.Correct()

	deliver := func(from model.ProcessID, sends []model.Send, rng *rand.Rand) {
		for _, s := range sends {
			m := &model.Message{From: from, To: s.To, Seq: seq.Add(1), Payload: s.Payload}
			if cfg.MeanDelay > 0 {
				d := time.Duration(rng.Int63n(int64(2*cfg.MeanDelay) + 1))
				time.AfterFunc(d, func() { inboxes[m.To].put(m) })
			} else {
				inboxes[s.To].put(m)
			}
		}
	}

	for i := 0; i < n; i++ {
		p := model.ProcessID(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(p)*7919))
			st := cfg.Automaton.InitState(p)
			for {
				select {
				case <-stop:
					return
				default:
				}
				t := model.Time(clock.Add(1))
				if t > cfg.MaxTicks {
					stopOnce.Do(func() { close(stop) })
					return
				}
				if cfg.Pattern.Crashed(p, t) {
					return // crash: silently halt
				}
				var m *model.Message
				if rng.Float64() < 0.8 {
					m = inboxes[p].take()
				}
				d := cfg.History.Output(p, t)
				ns, sends := cfg.Automaton.Step(p, st, m, d)
				st = ns
				deliver(p, sends, rng)

				mu.Lock()
				states[p] = st
				rec.OnStep(int(t), t, p, m, d, len(sends))
				for _, s := range sends {
					rec.OnSend(s.Payload)
				}
				if out, ok := st.(model.FDOutput); ok {
					rec.OnOutput(t, p, out.EmulatedOutput())
				}
				allDecided := false
				if v, ok := model.DecisionOf(st); ok && !decided[p] {
					decided[p] = true
					rec.OnDecision(t, p, v)
				}
				if cfg.StopWhenDecided {
					allDecided = true
					correct.ForEach(func(q model.ProcessID) {
						if !decided[q] {
							allDecided = false
						}
					})
				}
				mu.Unlock()
				if allDecided {
					stopOnce.Do(func() { close(stop) })
					return
				}
				// Yield so other goroutines interleave even on few cores.
				if rng.Intn(8) == 0 {
					time.Sleep(time.Microsecond)
				}
			}
		}()
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	res := &Result{
		States: states,
		Ticks:  model.Time(clock.Load()),
		Rec:    rec,
	}
	res.Decided = true
	correct.ForEach(func(q model.ProcessID) {
		if !decided[q] {
			res.Decided = false
		}
	})
	return res, nil
}

// FinalConfiguration adapts the result to a model.Configuration so the
// consensus checkers can consume it.
func (r *Result) FinalConfiguration() *model.Configuration {
	return &model.Configuration{States: r.States, Buffer: model.NewMessageBuffer()}
}
