// Package runtime executes algorithm automata as real concurrent processes:
// one goroutine per process, shared in-memory mailboxes with randomized
// drain order and optional delay/drop injection, crash injection driven by
// a failure pattern, and local failure-detector modules backed by a history
// queried at a shared logical clock. It is the "async" backend of
// internal/substrate — the "systems" substrate complementing the
// model-faithful deterministic simulator in internal/sim: the same
// Automaton values run on both, so properties checked under the simulator
// are exercised under real concurrency here.
//
// The goroutine loop, crash injection and decision collection live in the
// shared cluster driver (substrate.RunCluster); this package contributes
// only the in-memory transport.
//
// Executions are inherently nondeterministic; tests assert safety
// properties unconditionally and liveness under generous step budgets.
package runtime

import (
	"context"
	"math/rand"
	"sync/atomic"
	"time"

	"nuconsensus/internal/model"
	"nuconsensus/internal/substrate"
)

func init() { substrate.Register(S{}) }

// seedStride separates the per-process RNG streams (kept from the
// pre-substrate runtime so historical runs remain reproducible).
const seedStride = 7919

// takeProb is the per-step probability of draining the inbox when the
// options don't say otherwise: receiving usually-but-not-always keeps the
// interleavings adversarial.
const takeProb = 0.8

// S is the goroutine-runtime backend: substrate name "async".
type S struct{}

// New returns the async substrate handle.
func New() substrate.Substrate { return S{} }

// Name implements substrate.Substrate.
func (S) Name() string { return "async" }

// Deterministic implements substrate.Substrate: goroutine scheduling makes
// every run different.
func (S) Deterministic() bool { return false }

// Run implements substrate.Substrate: it wires the in-memory transport
// (inboxes plus optional delay and drop injection) into the shared
// concurrent cluster driver and blocks until the cluster stops.
func (S) Run(ctx context.Context, aut model.Automaton, hist model.History, pattern *model.FailurePattern, opts substrate.Options) (*substrate.Result, error) {
	if err := substrate.Validate("runtime", aut, hist, pattern, opts); err != nil {
		return nil, err
	}
	inboxes := substrate.NewInboxes(aut.N())
	var seq atomic.Uint64

	// Wrap applies the lossy-link decision and assigns sequence numbers; a
	// dropped send never becomes a message (and never consumes a seq, which
	// keeps historical seeds reproducing the pre-split message streams).
	wrap := func(from model.ProcessID, sends []model.Send, rng *rand.Rand) []*model.Message {
		msgs := make([]*model.Message, 0, len(sends))
		for _, s := range sends {
			if opts.DropProb > 0 && s.To != from && rng.Float64() < opts.DropProb {
				if opts.Metrics != nil {
					opts.Metrics.Counter("runtime.msgs_dropped").Add(1)
				}
				continue // lossy link; loopback sends always arrive
			}
			msgs = append(msgs, &model.Message{From: from, To: s.To, Seq: seq.Add(1), Payload: s.Payload})
		}
		return msgs
	}

	dispatch := func(msgs []*model.Message, rng *rand.Rand) {
		for _, m := range msgs {
			if opts.MeanDelay > 0 {
				m := m
				d := time.Duration(rng.Int63n(int64(2*opts.MeanDelay) + 1))
				time.AfterFunc(d, func() { inboxes[m.To].Put(m) })
			} else {
				inboxes[m.To].Put(m)
			}
		}
	}

	take := opts.DeliverProb
	if take <= 0 {
		take = takeProb
	}
	return substrate.RunCluster(ctx, aut, hist, pattern, opts, substrate.ClusterHooks{
		Inboxes:    inboxes,
		TakeProb:   take,
		SeedStride: seedStride,
		Wrap:       wrap,
		Dispatch:   dispatch,
	})
}
