package runtime_test

import (
	"context"
	"testing"

	"nuconsensus/internal/check"
	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
	"nuconsensus/internal/runtime"
	"nuconsensus/internal/substrate"
)

func TestANucOnGoroutineRuntime(t *testing.T) {
	n := 5
	pattern := model.PatternFromCrashes(n, map[model.ProcessID]model.Time{2: 200, 4: 350})
	hist := fd.PairHistory{
		First:  fd.NewOmega(pattern, 500, 11),
		Second: fd.NewSigmaNuPlus(pattern, 500, 11),
	}
	res, err := runtime.New().Run(context.Background(), consensus.NewANuc([]int{1, 0, 1, 0, 1}), hist, pattern, substrate.Options{
		Seed:            42,
		MaxSteps:        200000,
		StopWhenDecided: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := check.OutcomeFromConfig(res.Config)
	// Safety always.
	if err := out.Validity(); err != nil {
		t.Fatal(err)
	}
	if err := out.NonuniformAgreement(pattern); err != nil {
		t.Fatal(err)
	}
	// Liveness under the generous budget.
	if !res.Decided {
		t.Fatalf("not all correct processes decided within %d ticks", res.Ticks)
	}
	t.Logf("decided %v after %d ticks", out.Decisions, res.Ticks)
}

func TestMRMajorityOnGoroutineRuntime(t *testing.T) {
	n := 5
	pattern := model.PatternFromCrashes(n, map[model.ProcessID]model.Time{0: 100})
	hist := fd.NewOmega(pattern, 400, 3)
	res, err := runtime.New().Run(context.Background(), consensus.NewMRMajority([]int{9, 9, 4, 4, 4}), hist, pattern, substrate.Options{
		Seed:            7,
		MaxSteps:        200000,
		StopWhenDecided: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := check.OutcomeFromConfig(res.Config)
	if err := out.Validity(); err != nil {
		t.Fatal(err)
	}
	if err := out.UniformAgreement(); err != nil {
		t.Fatal(err)
	}
	if !res.Decided {
		t.Fatalf("not all correct processes decided within %d ticks", res.Ticks)
	}
	t.Logf("decided %v after %d ticks", out.Decisions, res.Ticks)
}
