package wire_test

import (
	"testing"

	"nuconsensus/internal/consensus"
	"nuconsensus/internal/model"
	"nuconsensus/internal/serve"
	"nuconsensus/internal/wire"
)

// FuzzDecodePayload checks that the decoder never panics and never accepts
// bytes it cannot re-encode to an equivalent payload: arbitrary input must
// yield either an error or a well-formed payload.
func FuzzDecodePayload(f *testing.F) {
	seed := []model.Payload{
		consensus.LeadPayload{K: 3, V: -7, Hist: sampleHistories()},
		consensus.ReportPayload{K: 2, V: 42},
		consensus.ProposalPayload{K: 5},
		consensus.SawPayload{Q: model.SetOf(0, 2)},
		consensus.AckPayload{Q: model.SetOf(1), K: 8},
		consensus.LeadDeltaPayload{K: 3, V: -7, Delta: sampleDelta()},
		consensus.ProposalDeltaPayload{K: 5, HasV: true, V: 2, Delta: sampleDelta()},
		serve.BatchPayload{ID: serve.BatchID(1, 0), Cmds: []serve.Command{
			{Client: 1, Seq: 1, Op: serve.OpPut, Key: 9, Val: -42},
			{Client: 2, Seq: 7, Op: serve.OpQPush, Key: 3, Val: 5},
		}},
		serve.RequestPayload{Client: 3, Seq: 11, Op: serve.OpGet, Key: 12, Lin: true, T0: 1722000000123456789},
		serve.ReplyPayload{Client: 3, Seq: 11, Status: serve.StatusOK, Val: 77, T0: 1722000000123456789},
	}
	for _, pl := range seed {
		b, err := wire.EncodePayload(pl)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x01, 0x02})

	f.Fuzz(func(t *testing.T, data []byte) {
		pl, err := wire.DecodePayload(data)
		if err != nil {
			return // rejecting garbage is correct
		}
		// Anything accepted must re-encode.
		if _, err := wire.EncodePayload(pl); err != nil {
			t.Fatalf("decoded payload %#v cannot be re-encoded: %v", pl, err)
		}
	})
}

// FuzzDecodeValue does the same for failure-detector values.
func FuzzDecodeValue(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{2, 4})
	f.Add([]byte{5, 1, 3, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := wire.DecodeValue(data)
		if err != nil {
			return
		}
		if _, err := wire.EncodeValue(v); err != nil {
			t.Fatalf("decoded value %#v cannot be re-encoded: %v", v, err)
		}
	})
}
