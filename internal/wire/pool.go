package wire

import "sync"

// The package buffer pool recycles the byte frames the transports move
// through the codec: netrun's readers lease a buffer per received frame and
// return it once the payload has been decoded at Resolve time, and its
// writer encodes every outgoing message into a leased buffer that goes back
// to the pool after the socket write. Pooling is confined to byte buffers —
// decoded messages and payloads are never pooled, because automata may
// retain payloads indefinitely (see DESIGN.md §8). Buffer contents are
// always overwritten before use (GetBuf returns length 0; readers ReadFull
// into the full frame), so recycled bytes can never influence control flow.
var bufPool = sync.Pool{
	New: func() interface{} { return new([]byte) },
}

// GetBuf leases a byte buffer from the package pool with length 0 and
// capacity at least n. Append into it (AppendMessage) or reslice to length
// (frame reads); pass it to PutBuf when the bytes are no longer referenced.
func GetBuf(n int) []byte {
	bp := bufPool.Get().(*[]byte)
	b := *bp
	*bp = nil
	bufPool.Put(bp)
	if cap(b) < n {
		b = make([]byte, 0, n)
	}
	return b[:0]
}

// PutBuf returns a buffer leased by GetBuf to the pool. The caller must not
// retain any reference into b afterwards: the next GetBuf may hand the same
// backing array to another goroutine. Putting a buffer that still backs a
// live decoded value is the aliasing bug TestPooledFramesNoAliasing hunts.
func PutBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	bp := bufPool.Get().(*[]byte)
	*bp = b[:0]
	bufPool.Put(bp)
}
