package wire_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"nuconsensus/internal/consensus"
	"nuconsensus/internal/dag"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/hb"
	"nuconsensus/internal/model"
	"nuconsensus/internal/wire"
)

// TestPooledFrameAliasing hammers the pooled encode → deliver → decode →
// recycle path from many concurrent links sharing the package buffer pool,
// the shape the tcp substrate runs per connection. The pooling contract
// under test (DESIGN.md §8): once DecodeMessageInto returns, the decoded
// message must not alias the frame, so the frame can be recycled — and
// immediately rewritten by another link — without the message changing
// underneath its owner.
//
// Each consumer therefore recycles the frame FIRST and verifies the
// decoded message afterwards, by re-encoding it and comparing against the
// pristine canonical frame, while the other links churn the shared pool.
// An alias into the recycled buffer surfaces as a byte mismatch here and
// as a read/write race under -race.
func TestPooledFrameAliasing(t *testing.T) {
	const (
		links = 8
		iters = 400
		kinds = 8
	)

	// Per-link canonical messages and their pristine encodings. Graph
	// payloads dominate the mix: they are the deep structures whose decode
	// must copy everything out of the frame.
	type fixture struct {
		msg  *model.Message
		want []byte
	}
	mkGraph := func(l, k int) model.Payload {
		g := dag.NewGraph()
		for i := 0; i < 8*(k%3+1); i++ {
			g.AddSample(model.ProcessID(i%4), fd.QuorumValue{Quorum: model.SetOf(model.ProcessID(l%4), model.ProcessID(i%4))}, i/4+1)
		}
		return dag.GraphPayload{G: g}
	}
	fixtures := make([][]fixture, links)
	for l := 0; l < links; l++ {
		fixtures[l] = make([]fixture, kinds)
		for k := 0; k < kinds; k++ {
			var pl model.Payload
			switch k % 3 {
			case 0:
				pl = hb.HeartbeatPayload{}
			case 1:
				pl = consensus.ReportPayload{K: l, V: k}
			default:
				pl = mkGraph(l, k)
			}
			msg := &model.Message{From: model.ProcessID(l % 4), To: model.ProcessID(k % 4), Seq: uint64(k), Payload: pl}
			want, err := wire.EncodeMessage(msg)
			if err != nil {
				t.Fatal(err)
			}
			fixtures[l][k] = fixture{msg: msg, want: want}
		}
	}

	var wg sync.WaitGroup
	for l := 0; l < links; l++ {
		ch := make(chan []byte, 4)
		wg.Add(2)
		go func(l int) { // producer: encode into pooled frames
			defer wg.Done()
			defer close(ch)
			for i := 0; i < iters; i++ {
				fx := fixtures[l][i%kinds]
				frame, err := wire.AppendMessage(wire.GetBuf(64), fx.msg)
				if err != nil {
					t.Errorf("link %d: encode: %v", l, err)
					return
				}
				ch <- frame
			}
		}(l)
		go func(l int) { // consumer: decode, recycle, then verify
			defer wg.Done()
			for frame := range ch {
				var m model.Message
				if err := wire.DecodeMessageInto(&m, frame); err != nil {
					t.Errorf("link %d: decode: %v", l, err)
					return
				}
				wire.PutBuf(frame) // recycle before verification, on purpose
				got, err := wire.AppendMessage(nil, &m)
				if err != nil {
					t.Errorf("link %d: re-encode: %v", l, err)
					return
				}
				fx := fixtures[l][int(m.Seq)%kinds]
				if !bytes.Equal(got, fx.want) {
					t.Errorf("link %d seq %d: decoded message changed after its frame was recycled (payload %T)",
						l, m.Seq, m.Payload)
					return
				}
			}
		}(l)
	}
	wg.Wait()
}

// TestPooledBufferReuse checks the pool's slice-box round trip: a put
// buffer comes back (possibly to another caller) with its capacity intact
// and zero length, and undersized pool entries are replaced rather than
// returned short.
func TestPooledBufferReuse(t *testing.T) {
	b := wire.GetBuf(16)
	if len(b) != 0 || cap(b) < 16 {
		t.Fatalf("GetBuf(16) = len %d cap %d, want len 0 cap >= 16", len(b), cap(b))
	}
	b = append(b, "0123456789abcdef"...)
	wire.PutBuf(b)
	big := wire.GetBuf(1 << 16)
	if len(big) != 0 || cap(big) < 1<<16 {
		t.Fatalf("GetBuf(64K) = len %d cap %d, want len 0 cap >= 64K", len(big), cap(big))
	}
	wire.PutBuf(big)
	// Zero-capacity puts are dropped, not stored as useless entries.
	wire.PutBuf(nil)
	if b := wire.GetBuf(8); cap(b) < 8 {
		t.Fatalf("GetBuf(8) after PutBuf(nil) = cap %d, want >= 8", cap(b))
	}
}

// TestEncodeSteadyStateAllocFree pins the zero-allocation contract the CI
// perf gate enforces through BENCH_9.json, directly in `go test`: encoding
// any payload kind into a reused buffer and decoding a heartbeat into a
// reused message must not allocate in steady state.
func TestEncodeSteadyStateAllocFree(t *testing.T) {
	payloads := []model.Payload{
		hb.HeartbeatPayload{},
		consensus.ReportPayload{K: 3, V: 1},
		mustGraph(t),
	}
	for _, pl := range payloads {
		pl := pl
		t.Run(fmt.Sprintf("encode-%s", pl.Kind()), func(t *testing.T) {
			msg := &model.Message{From: 1, To: 2, Seq: 7, Payload: pl}
			frame, err := wire.AppendMessage(nil, msg)
			if err != nil {
				t.Fatal(err)
			}
			if allocs := testing.AllocsPerRun(100, func() {
				frame, err = wire.AppendMessage(frame[:0], msg)
				if err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("AppendMessage(%s) steady state: %g allocs/op, want 0", pl.Kind(), allocs)
			}
		})
	}
	t.Run("decode-heartbeat", func(t *testing.T) {
		frame, err := wire.EncodeMessage(&model.Message{From: 1, To: 2, Seq: 7, Payload: hb.HeartbeatPayload{}})
		if err != nil {
			t.Fatal(err)
		}
		var m model.Message
		if allocs := testing.AllocsPerRun(100, func() {
			if err := wire.DecodeMessageInto(&m, frame); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("DecodeMessageInto(heartbeat) steady state: %g allocs/op, want 0", allocs)
		}
	})
}

func mustGraph(t *testing.T) model.Payload {
	t.Helper()
	g := dag.NewGraph()
	for i := 0; i < 32; i++ {
		g.AddSample(model.ProcessID(i%4), fd.QuorumValue{Quorum: model.SetOf(0, 1)}, i/4+1)
	}
	return dag.GraphPayload{G: g}
}
