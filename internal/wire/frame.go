package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"nuconsensus/internal/model"
)

// MaxFrameSize bounds a client-protocol payload frame. A length prefix
// beyond it is treated as a corrupted stream, not an allocation request.
const MaxFrameSize = 1 << 20

// WritePayloadFrame writes one varint-length-prefixed payload frame — the
// client protocol of cmd/nucd — encoding into a pooled buffer so the
// steady-state serving path does not allocate per frame. Callers sharing a
// writer across goroutines serialize externally.
func WritePayloadFrame(w io.Writer, pl model.Payload) error {
	buf := GetBuf(64 + binary.MaxVarintLen64)
	defer PutBuf(buf)
	buf = append(buf, make([]byte, binary.MaxVarintLen64)...) // length hole
	buf, err := AppendPayload(buf, pl)
	if err != nil {
		return err
	}
	body := len(buf) - binary.MaxVarintLen64
	// Right-align the varint against the body so the frame is contiguous.
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(body))
	start := binary.MaxVarintLen64 - n
	copy(buf[start:], hdr[:n])
	_, err = w.Write(buf[start:])
	return err
}

// ReadPayloadFrame reads one varint-length-prefixed payload frame and
// decodes it. The returned payload never aliases the read buffer.
func ReadPayloadFrame(r *bufio.Reader) (model.Payload, error) {
	size, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if size > MaxFrameSize {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds the %d limit", size, MaxFrameSize)
	}
	buf := GetBuf(int(size))[:size]
	defer PutBuf(buf)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return DecodePayload(buf)
}
