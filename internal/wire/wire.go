// Package wire defines a compact binary encoding for every message payload
// and failure-detector value in the repository, so the algorithms can run
// over real byte-stream transports (see internal/netrun). The format is
// deterministic and self-describing at the payload level:
//
//	payload  := kindTag … (per-kind body)
//	fdvalue  := valueTag … (leader | quorum | suspects | pair | null)
//	varint   := unsigned LEB128 (encoding/binary Uvarint)
//
// Quorum histories travel as, per process, a count followed by that many
// 64-bit process sets; DAG snapshots as a node list plus per-node
// predecessor bitsets. Everything round-trips exactly (TestRoundTrip*).
package wire

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"

	"nuconsensus/internal/consensus"
	"nuconsensus/internal/dag"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/hb"
	"nuconsensus/internal/model"
	"nuconsensus/internal/quorum"
	"nuconsensus/internal/rsm"
	"nuconsensus/internal/serve"
	"nuconsensus/internal/transform"
)

// Payload kind tags.
const (
	tagLead byte = iota + 1
	tagReport
	tagProposal
	tagSaw
	tagAck
	tagRound
	tagHeartbeat
	tagGraph
	tagSlot
	tagProgress
	tagCommand
	tagEstimate
	tagCoord
	tagReply
	tagDecide
	tagLeadDelta
	tagProposalDelta
	tagBatch
	tagServeRequest
	tagServeReply
)

// Failure-detector value tags.
const (
	tagValNull byte = iota + 1
	tagValLeader
	tagValQuorum
	tagValSuspects
	tagValPair
)

// buf is a cursor over an encode/decode buffer.
type buf struct {
	b   []byte
	pos int
}

func (w *buf) putUvarint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }
func (w *buf) putByte(v byte)      { w.b = append(w.b, v) }

// putInt zigzag-encodes a signed integer (proposal values may be negative).
func (w *buf) putInt(v int) {
	x := int64(v)
	w.putUvarint(uint64((x << 1) ^ (x >> 63)))
}

// putInt64 zigzag-encodes a signed 64-bit value (serve command values).
func (w *buf) putInt64(x int64) {
	w.putUvarint(uint64((x << 1) ^ (x >> 63)))
}

func (r *buf) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: truncated varint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *buf) byte() (byte, error) {
	if r.pos >= len(r.b) {
		return 0, fmt.Errorf("wire: truncated byte at offset %d", r.pos)
	}
	v := r.b[r.pos]
	r.pos++
	return v, nil
}

func (r *buf) int() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return int(int64(v>>1) ^ -int64(v&1)), nil
}

func (r *buf) int64() (int64, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return int64(v>>1) ^ -int64(v&1), nil
}

// EncodePayload serializes any payload defined by this repository.
func EncodePayload(pl model.Payload) ([]byte, error) {
	return AppendPayload(nil, pl)
}

// AppendPayload appends pl's encoding to dst and returns the extended
// slice. Encoding into a reused buffer (dst[:0] of a previous frame, or a
// GetBuf lease) is the allocation-free hot path; EncodePayload is the
// convenience wrapper that starts from nil.
func AppendPayload(dst []byte, pl model.Payload) ([]byte, error) {
	w := buf{b: dst}
	if err := encodePayload(&w, pl); err != nil {
		return dst, err
	}
	return w.b, nil
}

func encodePayload(w *buf, pl model.Payload) error {
	switch p := pl.(type) {
	case consensus.LeadPayload:
		w.putByte(tagLead)
		w.putInt(p.K)
		w.putInt(p.V)
		encodeHistories(w, p.Hist)
	case consensus.ReportPayload:
		w.putByte(tagReport)
		w.putInt(p.K)
		w.putInt(p.V)
	case consensus.ProposalPayload:
		w.putByte(tagProposal)
		w.putInt(p.K)
		w.putInt(p.V)
		if p.HasV {
			w.putByte(1)
		} else {
			w.putByte(0)
		}
		encodeHistories(w, p.Hist)
	case consensus.SawPayload:
		w.putByte(tagSaw)
		w.putUvarint(uint64(p.Q))
	case consensus.AckPayload:
		w.putByte(tagAck)
		w.putUvarint(uint64(p.Q))
		w.putInt(p.K)
	case transform.RoundPayload:
		w.putByte(tagRound)
		w.putInt(p.K)
	case hb.HeartbeatPayload:
		w.putByte(tagHeartbeat)
	case dag.GraphPayload:
		w.putByte(tagGraph)
		return encodeGraph(w, p.G)
	case rsm.SlotPayload:
		w.putByte(tagSlot)
		w.putInt(p.Slot)
		return encodePayload(w, p.Inner)
	case rsm.ProgressPayload:
		w.putByte(tagProgress)
		w.putInt(p.Slot)
	case rsm.CommandPayload:
		w.putByte(tagCommand)
		w.putInt(p.Cmd)
	case consensus.EstimatePayload:
		w.putByte(tagEstimate)
		w.putInt(p.R)
		w.putInt(p.V)
		w.putInt(p.TS)
	case consensus.CoordPayload:
		w.putByte(tagCoord)
		w.putInt(p.R)
		w.putInt(p.V)
	case consensus.ReplyPayload:
		w.putByte(tagReply)
		w.putInt(p.R)
		if p.Ok {
			w.putByte(1)
		} else {
			w.putByte(0)
		}
	case consensus.DecidePayload:
		w.putByte(tagDecide)
		w.putInt(p.V)
	case consensus.LeadDeltaPayload:
		w.putByte(tagLeadDelta)
		w.putInt(p.K)
		w.putInt(p.V)
		encodeDelta(w, p.Delta)
	case consensus.ProposalDeltaPayload:
		w.putByte(tagProposalDelta)
		w.putInt(p.K)
		w.putInt(p.V)
		if p.HasV {
			w.putByte(1)
		} else {
			w.putByte(0)
		}
		encodeDelta(w, p.Delta)
	case serve.BatchPayload:
		w.putByte(tagBatch)
		w.putInt(p.ID)
		w.putUvarint(uint64(len(p.Cmds)))
		for _, c := range p.Cmds {
			encodeCommand(w, c)
		}
	case serve.RequestPayload:
		w.putByte(tagServeRequest)
		encodeCommand(w, serve.Command{Client: p.Client, Seq: p.Seq, Op: p.Op, Key: p.Key, Val: p.Val})
		if p.Lin {
			w.putByte(1)
		} else {
			w.putByte(0)
		}
		w.putInt64(p.T0)
	case serve.ReplyPayload:
		w.putByte(tagServeReply)
		w.putUvarint(uint64(p.Client))
		w.putUvarint(p.Seq)
		w.putByte(p.Status)
		w.putInt64(p.Val)
		w.putInt64(p.T0)
	default:
		return fmt.Errorf("wire: unknown payload type %T", pl)
	}
	return nil
}

// encodeCommand writes one serve command — the unit both the BATCH gossip
// and the client request frame share.
func encodeCommand(w *buf, c serve.Command) {
	w.putUvarint(uint64(c.Client))
	w.putUvarint(c.Seq)
	w.putByte(c.Op)
	w.putUvarint(c.Key)
	w.putInt64(c.Val)
}

func decodeCommand(r *buf) (serve.Command, error) {
	var c serve.Command
	client, err := r.uvarint()
	if err != nil {
		return c, err
	}
	if client > 0xffffffff {
		return c, fmt.Errorf("wire: client id %d exceeds 32 bits", client)
	}
	c.Client = uint32(client)
	if c.Seq, err = r.uvarint(); err != nil {
		return c, err
	}
	if c.Op, err = r.byte(); err != nil {
		return c, err
	}
	if c.Key, err = r.uvarint(); err != nil {
		return c, err
	}
	if c.Val, err = r.int64(); err != nil {
		return c, err
	}
	return c, nil
}

// DecodePayload parses a payload produced by EncodePayload.
func DecodePayload(b []byte) (model.Payload, error) {
	r := &buf{b: b}
	pl, err := decodePayload(r)
	if err != nil {
		return nil, err
	}
	if r.pos != len(b) {
		return nil, fmt.Errorf("wire: %d trailing bytes after payload", len(b)-r.pos)
	}
	return pl, nil
}

func decodePayload(r *buf) (model.Payload, error) {
	tag, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagLead:
		k, err := r.int()
		if err != nil {
			return nil, err
		}
		v, err := r.int()
		if err != nil {
			return nil, err
		}
		h, err := decodeHistories(r)
		if err != nil {
			return nil, err
		}
		return consensus.LeadPayload{K: k, V: v, Hist: h}, nil
	case tagReport:
		k, err := r.int()
		if err != nil {
			return nil, err
		}
		v, err := r.int()
		if err != nil {
			return nil, err
		}
		return consensus.ReportPayload{K: k, V: v}, nil
	case tagProposal:
		k, err := r.int()
		if err != nil {
			return nil, err
		}
		v, err := r.int()
		if err != nil {
			return nil, err
		}
		hasV, err := r.byte()
		if err != nil {
			return nil, err
		}
		h, err := decodeHistories(r)
		if err != nil {
			return nil, err
		}
		return consensus.ProposalPayload{K: k, V: v, HasV: hasV == 1, Hist: h}, nil
	case tagSaw:
		q, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		return consensus.SawPayload{Q: model.ProcessSet(q)}, nil
	case tagAck:
		q, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		k, err := r.int()
		if err != nil {
			return nil, err
		}
		return consensus.AckPayload{Q: model.ProcessSet(q), K: k}, nil
	case tagRound:
		k, err := r.int()
		if err != nil {
			return nil, err
		}
		return transform.RoundPayload{K: k}, nil
	case tagHeartbeat:
		return hb.HeartbeatPayload{}, nil
	case tagGraph:
		g, err := decodeGraph(r)
		if err != nil {
			return nil, err
		}
		return dag.GraphPayload{G: g}, nil
	case tagSlot:
		slot, err := r.int()
		if err != nil {
			return nil, err
		}
		inner, err := decodePayload(r)
		if err != nil {
			return nil, err
		}
		return rsm.SlotPayload{Slot: slot, Inner: inner}, nil
	case tagProgress:
		slot, err := r.int()
		if err != nil {
			return nil, err
		}
		return rsm.ProgressPayload{Slot: slot}, nil
	case tagCommand:
		cmd, err := r.int()
		if err != nil {
			return nil, err
		}
		return rsm.CommandPayload{Cmd: cmd}, nil
	case tagEstimate:
		k, err := r.int()
		if err != nil {
			return nil, err
		}
		v, err := r.int()
		if err != nil {
			return nil, err
		}
		ts, err := r.int()
		if err != nil {
			return nil, err
		}
		return consensus.EstimatePayload{R: k, V: v, TS: ts}, nil
	case tagCoord:
		k, err := r.int()
		if err != nil {
			return nil, err
		}
		v, err := r.int()
		if err != nil {
			return nil, err
		}
		return consensus.CoordPayload{R: k, V: v}, nil
	case tagReply:
		k, err := r.int()
		if err != nil {
			return nil, err
		}
		ok, err := r.byte()
		if err != nil {
			return nil, err
		}
		return consensus.ReplyPayload{R: k, Ok: ok == 1}, nil
	case tagDecide:
		v, err := r.int()
		if err != nil {
			return nil, err
		}
		return consensus.DecidePayload{V: v}, nil
	case tagLeadDelta:
		k, err := r.int()
		if err != nil {
			return nil, err
		}
		v, err := r.int()
		if err != nil {
			return nil, err
		}
		d, err := decodeDelta(r)
		if err != nil {
			return nil, err
		}
		return consensus.LeadDeltaPayload{K: k, V: v, Delta: d}, nil
	case tagProposalDelta:
		k, err := r.int()
		if err != nil {
			return nil, err
		}
		v, err := r.int()
		if err != nil {
			return nil, err
		}
		hasV, err := r.byte()
		if err != nil {
			return nil, err
		}
		d, err := decodeDelta(r)
		if err != nil {
			return nil, err
		}
		return consensus.ProposalDeltaPayload{K: k, V: v, HasV: hasV == 1, Delta: d}, nil
	case tagBatch:
		id, err := r.int()
		if err != nil {
			return nil, err
		}
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		// Every command costs at least five bytes; a count exceeding the
		// remaining input is forged — reject before allocating.
		if n > uint64(len(r.b)-r.pos)/5 {
			return nil, fmt.Errorf("wire: batch claims %d commands but only %d bytes remain", n, len(r.b)-r.pos)
		}
		b := serve.BatchPayload{ID: id}
		if n > 0 {
			b.Cmds = make([]serve.Command, n)
			for i := range b.Cmds {
				if b.Cmds[i], err = decodeCommand(r); err != nil {
					return nil, err
				}
			}
		}
		return b, nil
	case tagServeRequest:
		c, err := decodeCommand(r)
		if err != nil {
			return nil, err
		}
		lin, err := r.byte()
		if err != nil {
			return nil, err
		}
		t0, err := r.int64()
		if err != nil {
			return nil, err
		}
		return serve.RequestPayload{Client: c.Client, Seq: c.Seq, Op: c.Op, Key: c.Key, Val: c.Val, Lin: lin == 1, T0: t0}, nil
	case tagServeReply:
		client, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if client > 0xffffffff {
			return nil, fmt.Errorf("wire: client id %d exceeds 32 bits", client)
		}
		seq, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		status, err := r.byte()
		if err != nil {
			return nil, err
		}
		val, err := r.int64()
		if err != nil {
			return nil, err
		}
		t0, err := r.int64()
		if err != nil {
			return nil, err
		}
		return serve.ReplyPayload{Client: uint32(client), Seq: seq, Status: status, Val: val, T0: t0}, nil
	default:
		return nil, fmt.Errorf("wire: unknown payload tag %d", tag)
	}
}

// qsetScratch recycles the sort scratch encodeHistories needs to emit each
// quorum set in deterministic order. Elements are plain uint64-backed
// process sets (pointer-free) and the scratch is truncated before every
// use, so pooling cannot leak state between frames.
var qsetScratch = sync.Pool{
	New: func() interface{} { return new([]model.ProcessSet) },
}

// encodeHistories writes a quorum.Histories (nil allowed). Each set's
// quorums travel in ascending order; the sort scratch comes from a pool so
// steady-state encoding of history-bearing payloads allocates nothing.
func encodeHistories(w *buf, h quorum.Histories) {
	w.putUvarint(uint64(len(h)))
	if len(h) == 0 {
		return
	}
	sp := qsetScratch.Get().(*[]model.ProcessSet)
	qs := (*sp)[:0]
	for _, set := range h {
		qs = set.AppendSorted(qs[:0])
		w.putUvarint(uint64(len(qs)))
		for _, q := range qs {
			w.putUvarint(uint64(q))
		}
	}
	*sp = qs[:0]
	qsetScratch.Put(sp)
}

func decodeHistories(r *buf) (quorum.Histories, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > model.MaxProcesses {
		return nil, fmt.Errorf("wire: histories for %d processes", n)
	}
	h := quorum.NewHistories(int(n))
	for i := 0; i < int(n); i++ {
		cnt, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < cnt; j++ {
			q, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			h.Add(model.ProcessID(i), model.ProcessSet(q))
		}
	}
	return h, nil
}

// encodeDelta writes a versioned history delta: the version interval, then
// the add list. The producer (quorum.Versioned) emits Adds in canonical
// (R, Q) order with no duplicates, so the bytes are map-order-free by
// construction; the encoder writes the slice as-is and allocates nothing.
func encodeDelta(w *buf, d quorum.Delta) {
	w.putUvarint(d.Base)
	w.putUvarint(d.To)
	w.putUvarint(uint64(len(d.Adds)))
	for _, e := range d.Adds {
		w.putUvarint(uint64(e.R))
		w.putUvarint(uint64(e.Q))
	}
}

func decodeDelta(r *buf) (quorum.Delta, error) {
	var d quorum.Delta
	var err error
	if d.Base, err = r.uvarint(); err != nil {
		return d, err
	}
	if d.To, err = r.uvarint(); err != nil {
		return d, err
	}
	n, err := r.uvarint()
	if err != nil {
		return d, err
	}
	// Every add costs at least two bytes; a count exceeding the remaining
	// input is forged — reject before allocating (same defense as graphs).
	if n > uint64(len(r.b)-r.pos)/2 {
		return d, fmt.Errorf("wire: delta claims %d adds but only %d bytes remain", n, len(r.b)-r.pos)
	}
	if n == 0 {
		return d, nil
	}
	d.Adds = make([]quorum.DeltaEntry, n)
	for i := range d.Adds {
		pr, err := r.uvarint()
		if err != nil {
			return d, err
		}
		if pr >= model.MaxProcesses {
			return d, fmt.Errorf("wire: delta add for process %d", pr)
		}
		q, err := r.uvarint()
		if err != nil {
			return d, err
		}
		d.Adds[i] = quorum.DeltaEntry{R: model.ProcessID(pr), Q: model.ProcessSet(q)}
	}
	return d, nil
}

// EncodeValue serializes a failure-detector value.
func EncodeValue(v model.FDValue) ([]byte, error) {
	return AppendValue(nil, v)
}

// AppendValue appends v's encoding to dst and returns the extended slice.
func AppendValue(dst []byte, v model.FDValue) ([]byte, error) {
	w := buf{b: dst}
	if err := encodeValue(&w, v); err != nil {
		return dst, err
	}
	return w.b, nil
}

func encodeValue(w *buf, v model.FDValue) error {
	switch x := v.(type) {
	case fd.NullValue:
		w.putByte(tagValNull)
	case fd.LeaderValue:
		w.putByte(tagValLeader)
		w.putInt(int(x.Leader))
	case fd.QuorumValue:
		w.putByte(tagValQuorum)
		w.putUvarint(uint64(x.Quorum))
	case fd.SuspectsValue:
		w.putByte(tagValSuspects)
		w.putUvarint(uint64(x.Suspects))
	case fd.PairValue:
		w.putByte(tagValPair)
		if err := encodeValue(w, x.First); err != nil {
			return err
		}
		return encodeValue(w, x.Second)
	default:
		return fmt.Errorf("wire: unknown failure-detector value type %T", v)
	}
	return nil
}

// DecodeValue parses a failure-detector value.
func DecodeValue(b []byte) (model.FDValue, error) {
	r := &buf{b: b}
	v, err := decodeValue(r)
	if err != nil {
		return nil, err
	}
	if r.pos != len(b) {
		return nil, fmt.Errorf("wire: %d trailing bytes after value", len(b)-r.pos)
	}
	return v, nil
}

func decodeValue(r *buf) (model.FDValue, error) {
	tag, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagValNull:
		return fd.NullValue{}, nil
	case tagValLeader:
		p, err := r.int()
		if err != nil {
			return nil, err
		}
		return fd.LeaderValue{Leader: model.ProcessID(p)}, nil
	case tagValQuorum:
		q, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		return fd.QuorumValue{Quorum: model.ProcessSet(q)}, nil
	case tagValSuspects:
		q, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		return fd.SuspectsValue{Suspects: model.ProcessSet(q)}, nil
	case tagValPair:
		first, err := decodeValue(r)
		if err != nil {
			return nil, err
		}
		second, err := decodeValue(r)
		if err != nil {
			return nil, err
		}
		return fd.PairValue{First: first, Second: second}, nil
	default:
		return nil, fmt.Errorf("wire: unknown value tag %d", tag)
	}
}

// encodeGraph writes a sample DAG: node list, then per-node predecessor
// sets as packed little-endian bitset words. A_DAG edge sets are nearly
// complete (every insertion links from all known nodes), so bitsets are
// ~16× denser on the wire than index lists — the difference between
// megabytes and hundreds of megabytes of gossip in the TCP substrate.
func encodeGraph(w *buf, g *dag.Graph) error {
	w.putUvarint(uint64(g.Len()))
	for i := 0; i < g.Len(); i++ {
		n := g.Node(i)
		w.putInt(int(n.P))
		w.putInt(n.K)
		if err := encodeValue(w, n.D); err != nil {
			return err
		}
	}
	// One bitset scratch serves every node; the stack array covers graphs
	// up to 512 nodes (the common case) without touching the heap.
	var packedArr [8]uint64
	packed := packedArr[:]
	if maxWords := (g.Len() + 62) / 64; maxWords > len(packed) {
		packed = make([]uint64, maxWords)
	}
	for v := 0; v < g.Len(); v++ {
		words := (v + 63) / 64
		for i := 0; i < words; i++ {
			packed[i] = 0
		}
		for u := 0; u < v; u++ {
			if g.HasEdge(u, v) {
				packed[u/64] |= 1 << uint(u%64)
			}
		}
		for _, word := range packed[:words] {
			w.b = binary.LittleEndian.AppendUint64(w.b, word)
		}
	}
	return nil
}

func decodeGraph(r *buf) (*dag.Graph, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Every node costs at least three bytes on the wire (p, k, value tag),
	// so a count exceeding the remaining input is forged — reject it before
	// allocating (found by FuzzDecodePayload).
	if n > uint64(len(r.b)-r.pos)/3 {
		return nil, fmt.Errorf("wire: graph claims %d nodes but only %d bytes remain", n, len(r.b)-r.pos)
	}
	type nodeRec struct {
		p model.ProcessID
		k int
		d model.FDValue
	}
	nodes := make([]nodeRec, n)
	for i := range nodes {
		p, err := r.int()
		if err != nil {
			return nil, err
		}
		k, err := r.int()
		if err != nil {
			return nil, err
		}
		d, err := decodeValue(r)
		if err != nil {
			return nil, err
		}
		nodes[i] = nodeRec{p: model.ProcessID(p), k: k, d: d}
	}
	// One predecessor scratch serves every node: AddSampleWithPreds copies
	// the indices into the graph's own bitset, so reusing the slice is safe
	// and replaces the per-node edge slices (the decode path's dominant
	// allocation) with a single presized buffer.
	g := dag.NewGraph()
	preds := make([]int, 0, n)
	for v := 0; v < int(n); v++ {
		preds = preds[:0]
		words := (v + 63) / 64
		for wi := 0; wi < words; wi++ {
			if r.pos+8 > len(r.b) {
				return nil, fmt.Errorf("wire: truncated graph bitset at node %d", v)
			}
			word := binary.LittleEndian.Uint64(r.b[r.pos:])
			r.pos += 8
			for ; word != 0; word &= word - 1 {
				u := wi*64 + bits.TrailingZeros64(word)
				if u >= v {
					return nil, fmt.Errorf("wire: graph edge %d→%d violates insertion order", u, v)
				}
				preds = append(preds, u)
			}
		}
		g.AddSampleWithPreds(nodes[v].p, nodes[v].d, nodes[v].k, preds)
	}
	return g, nil
}

// EncodeMessage frames a whole model message (from, to, seq, payload).
func EncodeMessage(m *model.Message) ([]byte, error) {
	return AppendMessage(nil, m)
}

// AppendMessage appends m's frame to dst and returns the extended slice.
// This is the transport hot path: netrun encodes every outgoing message
// into a pooled buffer (GetBuf) that returns to the pool after the socket
// write, so steady-state sends allocate nothing.
func AppendMessage(dst []byte, m *model.Message) ([]byte, error) {
	w := buf{b: dst}
	w.putInt(int(m.From))
	w.putInt(int(m.To))
	w.putUvarint(m.Seq)
	if err := encodePayload(&w, m.Payload); err != nil {
		return dst, err
	}
	return w.b, nil
}

// payloadPrototypes maps each kind tag to a zero value of its payload
// type, letting PeekMessage report a frame's kind and supersession
// behavior without decoding the body. Every Kind method is a value-receiver
// constant, so calling it on the zero value is safe (SlotPayload, whose
// Kind delegates to the wrapped payload, is handled structurally).
var payloadPrototypes = map[byte]model.Payload{
	tagLead:      consensus.LeadPayload{},
	tagReport:    consensus.ReportPayload{},
	tagProposal:  consensus.ProposalPayload{},
	tagSaw:       consensus.SawPayload{},
	tagAck:       consensus.AckPayload{},
	tagRound:     transform.RoundPayload{},
	tagHeartbeat: hb.HeartbeatPayload{},
	tagGraph:     dag.GraphPayload{},
	tagProgress:  rsm.ProgressPayload{},
	tagCommand:   rsm.CommandPayload{},
	tagEstimate:  consensus.EstimatePayload{},
	tagCoord:     consensus.CoordPayload{},
	tagReply:     consensus.ReplyPayload{},
	tagDecide:    consensus.DecidePayload{},
	// Delta payloads intentionally do not implement SupersededPayload:
	// collapsing one in an inbox would break the receiver's version chain.
	tagLeadDelta:     consensus.LeadDeltaPayload{},
	tagProposalDelta: consensus.ProposalDeltaPayload{},
	// Serving-layer payloads: batch bodies must never be collapsed (each
	// carries distinct commands), and the client-protocol frames are
	// point-to-point request/response — nothing supersedes.
	tagBatch:        serve.BatchPayload{},
	tagServeRequest: serve.RequestPayload{},
	tagServeReply:   serve.ReplyPayload{},
}

// MessageHead is the envelope of an encoded message: everything a
// transport needs for inbox bookkeeping (routing, per-sender supersession
// collapsing) without paying for a payload decode. Deferring the decode is
// what keeps receivers ahead of DAG-snapshot floods: superseded frames are
// collapsed undecoded.
type MessageHead struct {
	From, To   model.ProcessID
	Seq        uint64
	Kind       string
	Supersedes bool
}

// PeekMessage parses only the envelope of a frame produced by
// EncodeMessage, leaving the payload body untouched.
func PeekMessage(b []byte) (MessageHead, error) {
	r := &buf{b: b}
	var h MessageHead
	from, err := r.int()
	if err != nil {
		return h, err
	}
	to, err := r.int()
	if err != nil {
		return h, err
	}
	seq, err := r.uvarint()
	if err != nil {
		return h, err
	}
	h = MessageHead{From: model.ProcessID(from), To: model.ProcessID(to), Seq: seq}
	tag, err := r.byte()
	if err != nil {
		return h, err
	}
	if tag == tagSlot {
		// SlotPayload reports its wrapped payload's kind and never
		// supersedes; skip the slot number and peek the inner tag.
		if _, err := r.int(); err != nil {
			return h, err
		}
		if tag, err = r.byte(); err != nil {
			return h, err
		}
		proto, ok := payloadPrototypes[tag]
		if !ok {
			return h, fmt.Errorf("wire: unknown payload tag %d inside slot", tag)
		}
		h.Kind = proto.Kind()
		return h, nil
	}
	proto, ok := payloadPrototypes[tag]
	if !ok {
		return h, fmt.Errorf("wire: unknown payload tag %d", tag)
	}
	h.Kind = proto.Kind()
	_, h.Supersedes = proto.(model.SupersededPayload)
	return h, nil
}

// DecodeMessage parses a framed message.
func DecodeMessage(b []byte) (*model.Message, error) {
	m := &model.Message{}
	if err := DecodeMessageInto(m, b); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeMessageInto parses a framed message into a caller-provided Message,
// avoiding DecodeMessage's per-frame allocation. No decoded field aliases
// the input: payloads with indirection (histories, graphs) build their own
// structures and fixed-size payloads are boxed by value, so the caller may
// recycle b (PutBuf) as soon as this returns. On error m is left partially
// written and must not be used.
func DecodeMessageInto(m *model.Message, b []byte) error {
	r := buf{b: b}
	from, err := r.int()
	if err != nil {
		return err
	}
	to, err := r.int()
	if err != nil {
		return err
	}
	seq, err := r.uvarint()
	if err != nil {
		return err
	}
	pl, err := decodePayload(&r)
	if err != nil {
		return err
	}
	if r.pos != len(b) {
		return fmt.Errorf("wire: %d trailing bytes after message", len(b)-r.pos)
	}
	m.From, m.To, m.Seq, m.Payload = model.ProcessID(from), model.ProcessID(to), seq, pl
	return nil
}
