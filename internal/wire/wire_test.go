package wire_test

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"nuconsensus/internal/consensus"
	"nuconsensus/internal/dag"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/hb"
	"nuconsensus/internal/model"
	"nuconsensus/internal/quorum"
	"nuconsensus/internal/rsm"
	"nuconsensus/internal/serve"
	"nuconsensus/internal/transform"
	"nuconsensus/internal/wire"
)

func sampleHistories() quorum.Histories {
	h := quorum.NewHistories(3)
	h.Add(0, model.SetOf(0, 1))
	h.Add(0, model.SetOf(0, 2))
	h.Add(2, model.SetOf(2))
	return h
}

func sampleDelta() quorum.Delta {
	return quorum.Delta{
		Base: 4,
		To:   6,
		Adds: []quorum.DeltaEntry{
			{R: 0, Q: model.SetOf(0, 1)},
			{R: 2, Q: model.SetOf(1, 2)},
		},
	}
}

func TestRoundTripPayloads(t *testing.T) {
	payloads := []model.Payload{
		consensus.LeadPayload{K: 3, V: -7, Hist: sampleHistories()},
		consensus.LeadPayload{K: 1, V: 0},
		consensus.ReportPayload{K: 2, V: 42},
		consensus.ProposalPayload{K: 5, V: 9, HasV: true, Hist: sampleHistories()},
		consensus.ProposalPayload{K: 5},
		consensus.SawPayload{Q: model.SetOf(0, 2)},
		consensus.AckPayload{Q: model.SetOf(1), K: 8},
		transform.RoundPayload{K: 12},
		hb.HeartbeatPayload{},
		consensus.EstimatePayload{R: 4, V: -3, TS: 2},
		consensus.CoordPayload{R: 6, V: 1},
		consensus.ReplyPayload{R: 7, Ok: true},
		consensus.ReplyPayload{R: 8},
		consensus.DecidePayload{V: -1},
		consensus.LeadDeltaPayload{K: 3, V: -7, Delta: sampleDelta()},
		consensus.LeadDeltaPayload{K: 1, V: 0, Delta: quorum.Delta{Base: 2, To: 2}},
		consensus.ProposalDeltaPayload{K: 5, V: 9, HasV: true, Delta: sampleDelta()},
		consensus.ProposalDeltaPayload{K: 5, Delta: quorum.Delta{To: 1, Adds: []quorum.DeltaEntry{{R: 1, Q: model.SetOf(1)}}}},
	}
	for _, pl := range payloads {
		b, err := wire.EncodePayload(pl)
		if err != nil {
			t.Fatalf("%T: %v", pl, err)
		}
		got, err := wire.DecodePayload(b)
		if err != nil {
			t.Fatalf("%T: %v", pl, err)
		}
		if !reflect.DeepEqual(got, pl) {
			t.Errorf("%T round trip: got %#v, want %#v", pl, got, pl)
		}
	}
}

func TestRoundTripValues(t *testing.T) {
	values := []model.FDValue{
		fd.NullValue{},
		fd.LeaderValue{Leader: 5},
		fd.QuorumValue{Quorum: model.SetOf(0, 3, 63)},
		fd.SuspectsValue{Suspects: model.SetOf(1)},
		fd.PairValue{First: fd.LeaderValue{Leader: 0}, Second: fd.QuorumValue{Quorum: model.SetOf(0, 1)}},
		fd.PairValue{
			First:  fd.PairValue{First: fd.NullValue{}, Second: fd.SuspectsValue{}},
			Second: fd.LeaderValue{Leader: 2},
		},
	}
	for _, v := range values {
		b, err := wire.EncodeValue(v)
		if err != nil {
			t.Fatalf("%T: %v", v, err)
		}
		got, err := wire.DecodeValue(b)
		if err != nil {
			t.Fatalf("%T: %v", v, err)
		}
		if !reflect.DeepEqual(got, v) {
			t.Errorf("%T round trip: got %#v, want %#v", v, got, v)
		}
	}
}

func TestRoundTripGraph(t *testing.T) {
	g := dag.NewGraph()
	g.AddSample(0, fd.QuorumValue{Quorum: model.SetOf(0, 1)}, 1)
	g.AddSample(1, fd.LeaderValue{Leader: 0}, 1)
	g.AddSample(0, fd.PairValue{First: fd.LeaderValue{Leader: 1}, Second: fd.QuorumValue{Quorum: model.SetOf(1)}}, 2)

	b, err := wire.EncodePayload(dag.GraphPayload{G: g})
	if err != nil {
		t.Fatal(err)
	}
	got, err := wire.DecodePayload(b)
	if err != nil {
		t.Fatal(err)
	}
	g2 := got.(dag.GraphPayload).G
	if g2.Len() != g.Len() {
		t.Fatalf("node count %d, want %d", g2.Len(), g.Len())
	}
	for i := 0; i < g.Len(); i++ {
		if g2.Node(i).Key() != g.Node(i).Key() || g2.Node(i).D.String() != g.Node(i).D.String() {
			t.Errorf("node %d differs: %v vs %v", i, g2.Node(i), g.Node(i))
		}
		for j := 0; j < i; j++ {
			if g2.HasEdge(j, i) != g.HasEdge(j, i) {
				t.Errorf("edge %d→%d differs", j, i)
			}
		}
	}
}

func TestRoundTripMessage(t *testing.T) {
	m := &model.Message{From: 2, To: 0, Seq: 99, Payload: consensus.ReportPayload{K: 4, V: 1}}
	b, err := wire.EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wire.DecodeMessage(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != m.From || got.To != m.To || got.Seq != m.Seq || !reflect.DeepEqual(got.Payload, m.Payload) {
		t.Errorf("message round trip: %#v vs %#v", got, m)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,             // empty
		{0xFF},          // unknown tag
		{1, 0x80},       // truncated varint in LEAD
		{4, 3, 0, 0, 0}, // trailing bytes after SAW
	}
	for i, b := range cases {
		if _, err := wire.DecodePayload(b); err == nil {
			t.Errorf("case %d: expected decode error", i)
		}
	}
	if _, err := wire.DecodeValue([]byte{0xFE}); err == nil {
		t.Error("unknown value tag must error")
	}
}

func TestDeltaPayloadDecodeRejectsForgedCount(t *testing.T) {
	// tagLeadDelta, K=0, V=0, Base=0, To=0, count=200 with no bytes behind
	// it must be rejected before allocating the adds slice.
	b := []byte{16, 0, 0, 0, 0, 200, 1}
	if _, err := wire.DecodePayload(b); err == nil {
		t.Error("forged delta add count must error")
	}
	// An add naming a process ≥ MaxProcesses is invalid.
	b = []byte{16, 0, 0, 0, 2, 1, 64, 1}
	if _, err := wire.DecodePayload(b); err == nil {
		t.Error("delta add for out-of-range process must error")
	}
}

func TestDeltaPayloadsNeverSupersede(t *testing.T) {
	// Collapsing a delta frame in an inbox would break the receiver's
	// version chain; the envelope must say so without decoding the body.
	for _, pl := range []model.Payload{
		consensus.LeadDeltaPayload{K: 1, Delta: sampleDelta()},
		consensus.ProposalDeltaPayload{K: 1, Delta: sampleDelta()},
	} {
		if _, ok := pl.(model.SupersededPayload); ok {
			t.Fatalf("%T must not implement SupersededPayload", pl)
		}
		m := &model.Message{From: 1, To: 2, Seq: 3, Payload: pl}
		b, err := wire.EncodeMessage(m)
		if err != nil {
			t.Fatal(err)
		}
		h, err := wire.PeekMessage(b)
		if err != nil {
			t.Fatal(err)
		}
		if h.Kind != pl.Kind() || h.Supersedes {
			t.Errorf("peek of %T = %+v", pl, h)
		}
	}
}

type alienPayload struct{}

func (alienPayload) Kind() string   { return "ALIEN" }
func (alienPayload) String() string { return "ALIEN" }

func TestEncodeUnknownPayload(t *testing.T) {
	if _, err := wire.EncodePayload(alienPayload{}); err == nil {
		t.Error("unknown payload type must error")
	}
}

func TestRoundTripRSMPayloads(t *testing.T) {
	payloads := []model.Payload{
		rsm.SlotPayload{Slot: 3, Inner: consensus.ReportPayload{K: 1, V: 9}},
		rsm.SlotPayload{Slot: 0, Inner: consensus.LeadPayload{K: 2, V: -1, Hist: sampleHistories()}},
		rsm.ProgressPayload{Slot: 7},
		rsm.CommandPayload{Cmd: 42},
		rsm.SlotPayload{Slot: 5, Inner: consensus.LeadDeltaPayload{K: 2, V: -1, Delta: sampleDelta()}},
		rsm.SlotPayload{Slot: 6, Inner: consensus.ProposalDeltaPayload{K: 4, V: 0, HasV: true, Delta: sampleDelta()}},
	}
	for _, pl := range payloads {
		b, err := wire.EncodePayload(pl)
		if err != nil {
			t.Fatalf("%T: %v", pl, err)
		}
		got, err := wire.DecodePayload(b)
		if err != nil {
			t.Fatalf("%T: %v", pl, err)
		}
		if !reflect.DeepEqual(got, pl) {
			t.Errorf("%T round trip: got %#v, want %#v", pl, got, pl)
		}
	}
}

func TestRoundTripServePayloads(t *testing.T) {
	payloads := []model.Payload{
		serve.BatchPayload{ID: serve.BatchID(0, 0)},
		serve.BatchPayload{ID: serve.BatchID(2, 5), Cmds: []serve.Command{
			{Client: 1, Seq: 1, Op: serve.OpPut, Key: 9, Val: -42},
			{Client: 4100, Seq: 1 << 40, Op: serve.OpQPop, Key: 1 << 50, Val: 1<<62 - 1},
		}},
		serve.RequestPayload{Client: 3, Seq: 11, Op: serve.OpGet, Key: 12, Lin: true, T0: 1722000000123456789},
		serve.RequestPayload{Client: 1, Seq: 2, Op: serve.OpPut, Val: -1},
		serve.ReplyPayload{Client: 3, Seq: 11, Status: serve.StatusDup, Val: -77, T0: -5},
		serve.ReplyPayload{Client: 9, Seq: 1, Status: serve.StatusRetired},
	}
	for _, pl := range payloads {
		b, err := wire.EncodePayload(pl)
		if err != nil {
			t.Fatalf("%T: %v", pl, err)
		}
		got, err := wire.DecodePayload(b)
		if err != nil {
			t.Fatalf("%T: %v", pl, err)
		}
		if !reflect.DeepEqual(got, pl) {
			t.Errorf("%T round trip: got %#v, want %#v", pl, got, pl)
		}
	}
}

func TestBatchDecodeRejectsForgedCount(t *testing.T) {
	// An empty batch encodes as tag, id, count=0. Splice an absurd count
	// over the trailing zero: the decoder must reject it before allocating.
	good, err := wire.EncodePayload(serve.BatchPayload{ID: serve.BatchID(1, 3)})
	if err != nil {
		t.Fatal(err)
	}
	forged := append(append([]byte{}, good[:len(good)-1]...), 0xFF, 0xFF, 0xFF, 0x7F)
	if _, err := wire.DecodePayload(forged); err == nil {
		t.Fatal("forged batch command count must be rejected")
	}
}

func TestServePayloadsNeverSupersede(t *testing.T) {
	// Batch bodies each carry distinct commands, and the client frames are
	// point-to-point request/response — inbox collapsing must skip them all.
	for _, pl := range []model.Payload{
		serve.BatchPayload{ID: serve.BatchID(0, 1)},
		serve.RequestPayload{Client: 1, Seq: 1},
		serve.ReplyPayload{Client: 1, Seq: 1},
	} {
		if _, ok := pl.(model.SupersededPayload); ok {
			t.Fatalf("%T must not implement SupersededPayload", pl)
		}
		b, err := wire.EncodeMessage(&model.Message{From: 0, To: 1, Seq: 3, Payload: pl})
		if err != nil {
			t.Fatalf("%T: %v", pl, err)
		}
		h, err := wire.PeekMessage(b)
		if err != nil {
			t.Fatalf("%T: %v", pl, err)
		}
		if h.Kind != pl.Kind() || h.Supersedes {
			t.Errorf("peek of %T = %+v", pl, h)
		}
	}
}

// TestPayloadFrameRoundTrip: the client-protocol framing (cmd/nucd ↔
// cmd/nucload) round-trips payloads through a byte stream, and a frame
// claiming an absurd length is rejected without allocation.
func TestPayloadFrameRoundTrip(t *testing.T) {
	var stream bytes.Buffer
	payloads := []model.Payload{
		serve.RequestPayload{Client: 2, Seq: 1, Op: serve.OpPut, Key: 7, Val: 700},
		serve.RequestPayload{Client: 2, Seq: 2, Op: serve.OpGet, Key: 7, Lin: true},
		serve.ReplyPayload{Client: 2, Seq: 2, Status: serve.StatusOK, Val: 700},
	}
	for _, pl := range payloads {
		if err := wire.WritePayloadFrame(&stream, pl); err != nil {
			t.Fatalf("%T: %v", pl, err)
		}
	}
	r := bufio.NewReader(&stream)
	for _, want := range payloads {
		got, err := wire.ReadPayloadFrame(r)
		if err != nil {
			t.Fatalf("%T: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("frame round trip: got %#v, want %#v", got, want)
		}
	}
	if _, err := wire.ReadPayloadFrame(r); err == nil {
		t.Fatal("empty stream must error")
	}
	huge := binary.AppendUvarint(nil, wire.MaxFrameSize+1)
	if _, err := wire.ReadPayloadFrame(bufio.NewReader(bytes.NewReader(huge))); err == nil {
		t.Fatal("oversized frame length must be rejected")
	}
}
