package experiments

import "sort"

// Registry maps experiment IDs to their implementations, in the order they
// appear in EXPERIMENTS.md.
var Registry = map[string]func(Scale) Table{
	"E1":  E1,
	"E2":  E2,
	"E3":  E3,
	"E4":  E4,
	"E5":  E5,
	"E6":  E6,
	"E7":  E7,
	"E8":  E8,
	"E9":  E9,
	"E10": E10,
	"E11": E11,
	"E12": E12,
	"E13": E13,
	"E14": E14,
	"E15": E15,
	"Q1":  Q1,
	"Q2":  Q2,
	"Q3":  Q3,
	"Q4":  Q4,
	"Q5":  Q5,
	"Q6":  Q6,
	"Q7":  Q7,
}

// IDs returns the experiment identifiers in canonical order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if a[0] != b[0] {
			return a[0] < b[0] // E* before Q*
		}
		if len(a) != len(b) {
			return len(a) < len(b) // E2 before E10
		}
		return a < b
	})
	return ids
}

// All runs every experiment at the given scale.
func All(sc Scale) []Table {
	out := make([]Table, 0, len(Registry))
	for _, id := range IDs() {
		out = append(out, Registry[id](sc))
	}
	return out
}
