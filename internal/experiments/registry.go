package experiments

import "sort"

// Registry maps experiment IDs to their specs, in the order they appear in
// EXPERIMENTS.md.
var Registry = map[string]*Spec{
	"E1":  e1Spec,
	"E2":  e2Spec,
	"E3":  e3Spec,
	"E4":  e4Spec,
	"E5":  e5Spec,
	"E6":  e6Spec,
	"E7":  e7Spec,
	"E8":  e8Spec,
	"E9":  e9Spec,
	"E10": e10Spec,
	"E11": e11Spec,
	"E12": e12Spec,
	"E13": e13Spec,
	"E14": e14Spec,
	"E15": e15Spec,
	"E16": e16Spec,
	"E17": e17Spec,
	"E18": e18Spec,
	"Q1":  q1Spec,
	"Q2":  q2Spec,
	"Q3":  q3Spec,
	"Q4":  q4Spec,
	"Q5":  q5Spec,
	"Q6":  q6Spec,
	"Q7":  q7Spec,
}

// IDs returns the experiment identifiers in canonical order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if a[0] != b[0] {
			return a[0] < b[0] // E* before Q*
		}
		if len(a) != len(b) {
			return len(a) < len(b) // E2 before E10
		}
		return a < b
	})
	return ids
}

// PortableIDs returns the identifiers of the substrate-portable
// experiments — the slice that may run with Scale.Substrate set to a
// concurrent backend — in canonical order.
func PortableIDs() []string {
	var ids []string
	for _, id := range IDs() {
		if Registry[id].Portable {
			ids = append(ids, id)
		}
	}
	return ids
}

// All runs every experiment sequentially at the given scale; RunAll is the
// parallel equivalent and produces identical tables.
func All(sc Scale) []Table {
	out := make([]Table, 0, len(Registry))
	for _, id := range IDs() {
		out = append(out, Registry[id].Run(sc))
	}
	return out
}
