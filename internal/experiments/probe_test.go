package experiments

import (
	"fmt"
	"testing"

	"nuconsensus/internal/consensus"
	"nuconsensus/internal/model"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/substrate"
	"nuconsensus/internal/trace"
)

// TestProbeContamination is a diagnostic: it traces the naive algorithm
// under the contamination adversary for a few seeds.
func TestProbeContamination(t *testing.T) {
	adv := contaminationAdversary{n: 3, misleader: 2, period: 40, stabilize: 280}
	for seed := int64(1); seed <= 6; seed++ {
		pattern := adv.pattern()
		props := []int{0, 0, 1}
		hist := adv.sigmaNuHistory(pattern, seed)
		aut := consensus.NewMRNaiveNu(props)
		rec := &trace.Recorder{}
		res, err := sim.Run(sim.Exec{
			Automaton: aut,
			Pattern:   pattern,
			History:   hist,
			Scheduler: sim.NewFairScheduler(seed, 0.8, 3),
			MaxSteps:  20000,
			StopWhen:  substrate.AllCorrectDecided(pattern),
			Recorder:  rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		line := fmt.Sprintf("seed=%d stopped=%v t=%d:", seed, res.Stopped, res.Ticks)
		for _, d := range rec.Decisions {
			line += fmt.Sprintf(" %s→%d@t=%d", d.P, d.Val, d.T)
		}
		for i, s := range res.Config.States {
			r, _ := model.RoundOf(s)
			line += fmt.Sprintf(" [p%d round=%d]", i, r)
		}
		t.Log(line)
	}
}
