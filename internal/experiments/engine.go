package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"nuconsensus/internal/obs"
)

// This file is the parallel experiment engine. Every experiment is declared
// as a Spec: a table header, a canonical list of Configs (one per unit of
// work, typically one per (parameter point, seed) pair), a Unit function
// that runs one config, and a reduction from grouped unit results to table
// rows. The engine fans units out across a worker pool — across experiments
// and across the per-seed configurations inside each experiment — and then
// reduces results in config order, so the rendered tables are bitwise
// identical regardless of worker count or scheduling interleavings.

// Config identifies one unit of experiment work: a parameter point
// (label, n, f, arg) plus the logical seed index. The zero value of a field
// means "unused" for that experiment.
type Config struct {
	Label string // algorithm / strategy / combo discriminator ("" when unused)
	N     int    // system size
	F     int    // number of failures
	Arg   int    // extra integer parameter (adversary period, row index, …)
	Seed  int64  // 1-based logical seed; 0 for seedless (deterministic) units
}

// key is the row-grouping identity of a config: everything but the seed.
// Units whose configs share a key are reduced into the same table row.
func (c Config) key() Config { c.Seed = 0; return c }

// DeriveSeed maps one (experiment, config, seed) unit to the seed of its
// private RNG stream: FNV-1a over the full tuple. The derivation is pure,
// so any worker can run any unit and draw exactly the random values the
// sequential order would have drawn — this is what makes parallel output
// bitwise identical to sequential output.
func DeriveSeed(id string, cfg Config) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d|%d|%d", id, cfg.Label, cfg.N, cfg.F, cfg.Arg, cfg.Seed)
	return int64(h.Sum64() & (1<<63 - 1))
}

// UnitResult is what one unit reports back to the engine.
type UnitResult struct {
	Cfg     Config
	Counted bool           // the unit contributes to its row's "runs" count
	OK      bool           // the unit supported the claim
	Fail    bool           // the unit refuted the claim (fails the table)
	Notes   []string       // appended to the table's notes, in config order
	Metrics map[string]int // summed across the row's units
	Cells   []string       // verbatim row cells (per-unit-row experiments)

	elapsed time.Duration // filled by the engine
	events  []obs.Event   // the unit's causal event stream (Options.EventSinks)
}

// Add accumulates a named metric on the unit.
func (u *UnitResult) Add(k string, v int) {
	if u.Metrics == nil {
		u.Metrics = make(map[string]int)
	}
	u.Metrics[k] += v
}

// Notef appends a formatted note.
func (u *UnitResult) Notef(format string, args ...any) {
	u.Notes = append(u.Notes, fmt.Sprintf(format, args...))
}

// failf marks the unit as refuting the claim, with a note.
func (u *UnitResult) failf(format string, args ...any) {
	u.Fail = true
	u.Notef(format, args...)
}

// Group is the ordered slice of unit results sharing one row configuration.
type Group struct {
	Key   Config
	Units []UnitResult
}

// Runs counts the units that were marked Counted.
func (g Group) Runs() int {
	n := 0
	for _, u := range g.Units {
		if u.Counted {
			n++
		}
	}
	return n
}

// OKs counts the units that supported the claim.
func (g Group) OKs() int {
	n := 0
	for _, u := range g.Units {
		if u.OK {
			n++
		}
	}
	return n
}

// Sum totals a named metric across the group.
func (g Group) Sum(k string) int {
	s := 0
	for _, u := range g.Units {
		s += u.Metrics[k]
	}
	return s
}

// Avg formats Sum(k)/Runs() as a table cell.
func (g Group) Avg(k string) string { return avg(g.Sum(k), g.Runs()) }

// AvgOverOK formats Sum(k)/OKs() as a table cell.
func (g Group) AvgOverOK(k string) string { return avg(g.Sum(k), g.OKs()) }

// Spec declares one experiment: its table header, the configurations to fan
// out, the per-unit body, and how grouped unit results reduce to rows. This
// is the shared runConfigs substrate that replaces the hand-rolled
// seed/config loops the experiments used to carry individually.
type Spec struct {
	ID, Title, Claim string
	Columns          []string

	// Portable marks the experiment as substrate-portable: every execution
	// its Unit performs goes through runConsensus, so it runs unchanged
	// with Scale.Substrate set to a concurrent backend. Non-portable specs
	// depend on sim-only machinery (scripted and partially synchronous
	// schedulers, kept schedules, step-exact replay) and refuse to run on a
	// non-sim substrate.
	Portable bool

	// Configs enumerates the units at a given scale, in canonical row
	// order. Consecutive configs with equal key() form one row group.
	Configs func(sc Scale) []Config

	// Unit runs one configuration. rng is the unit's private deterministic
	// stream (seeded with DeriveSeed); histories and schedulers that take a
	// seed directly should keep using cfg.Seed so runs stay reproducible
	// one experiment at a time.
	Unit func(sc Scale, cfg Config, rng *rand.Rand) UnitResult

	// Row renders one group as table cells. When nil, each unit's Cells
	// field becomes its own row (units with nil Cells emit no row).
	Row func(sc Scale, g Group) []string

	// Finalize optionally post-processes the assembled table: cross-row
	// pass predicates, trailing notes.
	Finalize func(sc Scale, t *Table, gs []Group)
}

// Run executes the spec synchronously on the calling goroutine, unit by
// unit in canonical order. It is the Workers=1 path of the engine.
func (sp *Spec) Run(sc Scale) Table {
	if err := sp.checkSubstrate(sc); err != nil {
		return Table{ID: sp.ID, Title: sp.Title, Claim: sp.Claim, Columns: sp.Columns, Pass: false, Notes: []string{err.Error()}}
	}
	configs := sp.Configs(sc)
	units := make([]UnitResult, len(configs))
	for i, cfg := range configs {
		units[i] = sp.runUnit(sc, cfg, sc.Metrics, false)
	}
	return sp.reduce(sc, configs, units)
}

// runUnit executes one unit with its derived RNG stream and times it.
// The wall-clock reads are sanctioned: elapsed time feeds the Elapsed /
// RowTimes / UnitTimes diagnostics, which Table.Render deliberately
// excludes so the rendered tables stay byte-identical across runs.
//
// With collectEvents on, the unit runs against its own event bus: one bus
// per unit keeps the Lamport clocks and event ordering independent of
// which worker ran it, so the streams can later be written in canonical
// config order byte-identically at any worker count. metrics may be
// shared across units — it accumulates only commutative quantities.
func (sp *Spec) runUnit(sc Scale, cfg Config, metrics *obs.Registry, collectEvents bool) UnitResult {
	var ring *obs.Ring
	sc.Metrics = metrics
	if collectEvents {
		ring = obs.NewRing(0)
		sc.Bus = obs.NewBus(nil, metrics, ring)
	}
	rng := rand.New(rand.NewSource(DeriveSeed(sp.ID, cfg)))
	start := time.Now() //lint:allow nodeterm timing is diagnostic-only, never rendered
	u := sp.Unit(sc, cfg, rng)
	u.Cfg = cfg
	u.elapsed = time.Since(start) //lint:allow nodeterm timing is diagnostic-only, never rendered
	if ring != nil {
		u.events = ring.Events()
	}
	return u
}

// checkSubstrate rejects non-portable specs on non-sim substrates.
func (sp *Spec) checkSubstrate(sc Scale) error {
	if !sp.Portable && sc.SubstrateName() != "sim" {
		return fmt.Errorf("experiments: %s is not substrate-portable; run it with -substrate sim", sp.ID)
	}
	return nil
}

// reduce assembles the final table from per-unit results in config order,
// independent of the order the units actually ran in.
func (sp *Spec) reduce(sc Scale, configs []Config, units []UnitResult) Table {
	t := Table{ID: sp.ID, Title: sp.Title, Claim: sp.Claim, Columns: sp.Columns, Pass: true}
	var gs []Group
	for i, u := range units {
		key := configs[i].key()
		if len(gs) == 0 || gs[len(gs)-1].Key != key {
			gs = append(gs, Group{Key: key})
		}
		gs[len(gs)-1].Units = append(gs[len(gs)-1].Units, u)
		if u.Fail {
			t.Pass = false
		}
		t.Notes = append(t.Notes, u.Notes...)
		t.Elapsed += u.elapsed
		t.UnitTimes = append(t.UnitTimes, u.elapsed)
	}
	for _, g := range gs {
		var rowTime time.Duration
		for _, u := range g.Units {
			rowTime += u.elapsed
		}
		if sp.Row != nil {
			t.AddRow(sp.Row(sc, g)...)
			t.RowTimes = append(t.RowTimes, rowTime)
			continue
		}
		for _, u := range g.Units {
			if u.Cells != nil {
				t.AddRow(u.Cells...)
				t.RowTimes = append(t.RowTimes, u.elapsed)
			}
		}
	}
	if sp.Finalize != nil {
		sp.Finalize(sc, &t, gs)
	}
	return t
}

// Options configures the parallel engine.
type Options struct {
	// Workers is the worker-pool size; <= 0 means runtime.NumCPU().
	Workers int

	// EventSinks, when non-empty, receive every unit's causal event
	// stream. Units collect events on private buses while the pool runs;
	// the engine replays them into the sinks in canonical (experiment,
	// config) order after the pool drains, so exported logs are
	// byte-identical at any worker count. The caller closes the sinks.
	EventSinks []obs.Sink

	// Metrics, if non-nil, receives the run's counters and histograms
	// (commutative only, so its dump is also worker-count-independent).
	Metrics *obs.Registry
}

// RunAll runs every registered experiment at the given scale on a worker
// pool and returns the tables in canonical order. The output is bitwise
// identical for every worker count.
func RunAll(ctx context.Context, sc Scale, opts Options) ([]Table, error) {
	return RunIDs(ctx, IDs(), sc, opts)
}

// RunIDs runs the selected experiments on a worker pool. Units from all
// experiments share one queue, so a long tail in one experiment overlaps
// with the others. Cancelling ctx stops feeding the pool and returns
// ctx.Err() once in-flight units finish.
func RunIDs(ctx context.Context, ids []string, sc Scale, opts Options) ([]Table, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	specs := make([]*Spec, len(ids))
	for i, id := range ids {
		sp, ok := Registry[id]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q", id)
		}
		if err := sp.checkSubstrate(sc); err != nil {
			return nil, err
		}
		specs[i] = sp
	}

	type task struct{ spec, unit int }
	configs := make([][]Config, len(specs))
	units := make([][]UnitResult, len(specs))
	var tasks []task
	for i, sp := range specs {
		configs[i] = sp.Configs(sc)
		units[i] = make([]UnitResult, len(configs[i]))
		for j := range configs[i] {
			tasks = append(tasks, task{i, j})
		}
	}

	collectEvents := len(opts.EventSinks) > 0
	queue := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:allow nodeterm this IS the sanctioned engine worker pool
		go func() {
			defer wg.Done()
			for tk := range queue {
				units[tk.spec][tk.unit] = specs[tk.spec].runUnit(sc, configs[tk.spec][tk.unit], opts.Metrics, collectEvents)
			}
		}()
	}
	var err error
feed:
	for _, tk := range tasks {
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break feed
		case queue <- tk:
		}
	}
	close(queue)
	wg.Wait()
	if err != nil {
		return nil, err
	}

	// Replay the units' event streams into the sinks in canonical task
	// order — the same order a single worker would have produced them in.
	if collectEvents {
		for _, tk := range tasks {
			for _, ev := range units[tk.spec][tk.unit].events {
				for _, s := range opts.EventSinks {
					s.Emit(ev)
				}
			}
		}
	}

	tables := make([]Table, len(specs))
	for i, sp := range specs {
		tables[i] = sp.reduce(sc, configs[i], units[i])
	}
	return tables, nil
}

// seedRange enumerates configs seed-by-seed for one parameter point: the
// common helper the per-experiment Configs functions build their grids on.
func seedRange(base Config, seeds int) []Config {
	out := make([]Config, 0, seeds)
	for s := int64(1); s <= int64(seeds); s++ {
		c := base
		c.Seed = s
		out = append(out, c)
	}
	return out
}
