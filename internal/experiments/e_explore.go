package experiments

import (
	"fmt"
	"math/rand"

	"nuconsensus/internal/explore"
)

// e16Scenarios enumerates E16's exploration targets in canonical order:
// the A_nuc exhaustive-verification scenarios (failure-free plus one
// crash-at-2 pattern per process) followed by the naive-MR contamination
// hunt. Rebuilt per call — scenarios carry closures, not state.
func e16Scenarios() []explore.Scenario {
	return append(explore.VerifyANuc(3, 1), explore.Contamination())
}

// e16Bound picks the exploration depth for one scenario at one scale: the
// verification scenarios deepen from 6 to 8 at full scale (bound 8 visits
// ~160k states on the failure-free pattern), while the contamination hunt
// always runs at the scenario's own bound — the shallowest violation sits
// at depth 29, so there is nothing to scale down.
func e16Bound(sc Scale, s explore.Scenario) int {
	if s.Label == "naive-mr/contamination" {
		return s.Bound
	}
	if sc.Seeds >= Full.Seeds {
		return 8
	}
	return 6
}

// e16Spec runs the bounded model checker (internal/explore) as an
// experiment: schedule-space exhaustive verification of A_nuc's safety on
// the one hand, exhaustive discovery + shrinking of the §6.3 contamination
// on the other. It complements E6: where E6 samples randomized schedules
// for violations, E16 enumerates every schedule and every finite-menu
// detector choice up to a depth bound.
var e16Spec = &Spec{
	ID:    "E16",
	Title: "Bounded model checking: A_nuc exhaustively safe; naive MR contamination found and shrunk",
	Claim: "Theorem 6.25 (safety half) / §6.3: within the explored bound, no " +
		"schedule and no legal finite-menu (Ω, Σν+) choice makes A_nuc violate " +
		"validity or nonuniform agreement, while the naive MR+Σν adaptation has " +
		"a concrete minimal schedule that does — found exhaustively and shrunk " +
		"to a replayable counterexample.",
	Columns: []string{"target", "bound", "states", "naive prefixes", "reduction", "violations", "counterexample"},
	Configs: func(sc Scale) []Config {
		var cfgs []Config
		for i, s := range e16Scenarios() {
			cfgs = append(cfgs, Config{Label: s.Label, N: 3, Arg: i})
		}
		return cfgs
	},
	Unit: func(sc Scale, cfg Config, _ *rand.Rand) UnitResult {
		var u UnitResult
		u.Counted = true
		s := e16Scenarios()[cfg.Arg]
		o := s.Opts
		o.Bound = e16Bound(sc, s)
		o.Parallel = 1 // the engine's pool is the parallelism; output is identical anyway
		res, err := explore.Explore(o)
		if err != nil {
			u.failf("%s: %v", s.Label, err)
			return u
		}
		cex := "none"
		if s.Label == "naive-mr/contamination" {
			if res.Counterexample == nil {
				u.failf("%s: exhaustive search found no contamination within bound %d", s.Label, o.Bound)
			} else {
				shrunk := explore.Shrink(o, res.Counterexample.Path)
				cex = fmt.Sprintf("found at depth %d, shrunk to %d steps", len(res.Counterexample.Path), len(shrunk))
			}
		} else if res.Violations != 0 {
			u.failf("%s: A_nuc safety violation: %s", s.Label, res.Counterexample.Err)
		}
		if res.Reduction < 2 {
			u.failf("%s: reduction %.2f < 2x over naive schedule enumeration", s.Label, res.Reduction)
		}
		u.OK = !u.Fail
		u.Cells = []string{
			s.Label,
			itoa(o.Bound),
			itoa(int(res.States)),
			fmt.Sprintf("%.3g", res.SchedulePrefixes),
			fmt.Sprintf("%.3gx", res.Reduction),
			itoa(int(res.Violations)),
			cex,
		}
		return u
	},
	Finalize: func(_ Scale, t *Table, gs []Group) {
		t.Notes = append(t.Notes,
			"exhaustive up to the depth bound: every interleaving of process steps, every per-link message delivery and every finite-menu FD value; reduction = naive schedule prefixes / unique states (state merging + sleep-set POR + stutter elimination)")
	},
}
