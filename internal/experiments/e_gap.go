package experiments

import (
	"math/rand"

	"nuconsensus/internal/check"
	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/hb"
	"nuconsensus/internal/model"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/trace"
	"nuconsensus/internal/transform"
)

// e13Spec exercises the ◇P view of the heartbeat detector: under partial
// synchrony, the emitted suspect sets eventually equal exactly the faulty
// set at every correct process (strong completeness + eventual strong
// accuracy).
var e13Spec = &Spec{
	ID:    "E13",
	Title: "Heartbeat suspicion is eventually perfect (◇P) (extension)",
	Claim: "Adaptive-timeout heartbeats under eventual timeliness suspect exactly " +
		"the crashed processes, permanently — the ◇P specification.",
	Columns: []string{"n", "f", "runs", "ok", "avg accurate-from t"},
	Configs: func(sc Scale) []Config {
		var cfgs []Config
		for _, n := range []int{3, 5, 8} {
			fs := []int{1}
			if n/2 > 1 {
				fs = append(fs, n/2)
			}
			for _, f := range fs {
				cfgs = append(cfgs, seedRange(Config{N: n, F: f}, sc.Seeds)...)
			}
		}
		return cfgs
	},
	Unit: func(_ Scale, cfg Config, _ *rand.Rand) UnitResult {
		u := UnitResult{Counted: true}
		n, f, seed := cfg.N, cfg.F, cfg.Seed
		pattern := model.NewFailurePattern(n)
		for i := 0; i < f; i++ {
			pattern.SetCrash(model.ProcessID(n-1-i), model.Time(40+30*i))
		}
		rec := &trace.Recorder{RecordSamples: true}
		res, err := sim.Run(sim.Exec{
			Automaton: hb.NewSuspector(n, 0, 0),
			Pattern:   pattern,
			History:   fd.Null,
			Scheduler: &sim.PartialSyncScheduler{
				GST:    300,
				Before: sim.NewFairScheduler(seed, 0.2, 20),
				After:  sim.NewFairScheduler(seed+99, 0.9, 2),
			},
			MaxSteps: 2500,
			Recorder: rec,
		})
		if err != nil {
			u.Fail = true
			return u
		}
		stab := suspicionHorizon(rec.Outputs, pattern)
		if stab > res.Ticks*4/5 {
			u.failf("n=%d f=%d seed=%d: suspicion unstable until %d of %d", n, f, seed, stab, res.Ticks)
			return u
		}
		if err := check.EventuallyPerfect(rec.Outputs, pattern, stab); err != nil {
			u.failf("n=%d f=%d seed=%d: %v", n, f, seed, err)
			return u
		}
		u.OK = true
		if stab > 0 {
			u.Add("stab", int(stab))
		}
		return u
	},
	Row: func(_ Scale, g Group) []string {
		return []string{itoa(g.Key.N), itoa(g.Key.F),
			itoa(g.Runs()), itoa(g.OKs()), g.AvgOverOK("stab")}
	},
}

// suspicionHorizon returns the last time a correct process's suspect set
// differed from faulty(F), or -1.
func suspicionHorizon(outs []trace.Sample, pattern *model.FailurePattern) model.Time {
	correct := pattern.Correct()
	faulty := pattern.Faulty()
	last := model.Time(-1)
	for _, s := range outs {
		if !correct.Has(s.P) {
			continue
		}
		if sus, ok := fd.SuspectsOf(s.Val); ok && sus != faulty && s.T > last {
			last = s.T
		}
	}
	return last
}

// e14Contestants are the two sides of the nonuniform/uniform gap.
var e14Contestants = []struct {
	label string
	build func(props []int) model.Automaton
	hist  func(*model.FailurePattern, int64) model.History
}{
	{
		label: "A_nuc + (Ω,Σν+)",
		build: func(props []int) model.Automaton { return consensus.NewANuc(props) },
		hist: func(p *model.FailurePattern, seed int64) model.History {
			return fd.PairHistory{First: fd.NewOmega(p, 200, seed), Second: fd.NewSigmaNuPlus(p, 200, seed)}
		},
	},
	{
		label: "MR-Σ + (Ω,Σ)",
		build: func(props []int) model.Automaton { return consensus.NewMRSigma(props) },
		hist: func(p *model.FailurePattern, seed int64) model.History {
			return fd.PairHistory{First: fd.NewOmega(p, 200, seed), Second: fd.NewSigma(p, 200, seed)}
		},
	},
}

// e14Spec demonstrates the nonuniform/uniform gap the paper's title is
// about: A_nuc with (Ω, Σν+) admits runs in which a *faulty* process
// decides a different value than the correct ones (legal for nonuniform
// consensus), while MR-Σ with (Ω, Σ) — a uniform algorithm — never does on
// the same failure patterns. This is why Σν (and Σν+) are strictly cheaper
// detectors than Σ: they buy agreement only among the correct.
var e14Spec = &Spec{
	ID:    "E14",
	Title: "The nonuniform/uniform gap: faulty divergence under A_nuc",
	Claim: "§1: in nonuniform consensus 'a faulty process can reach a decision on " +
		"any proposed value' — and A_nuc actually exhibits such runs, while a " +
		"uniform algorithm (MR-Σ) never can.",
	Columns: []string{"algorithm", "runs", "faulty-divergent runs", "correct-divergent runs"},
	Configs: func(sc Scale) []Config {
		seeds := sc.Seeds * 10
		var cfgs []Config
		for i, c := range e14Contestants {
			cfgs = append(cfgs, seedRange(Config{Label: c.label, Arg: i}, seeds)...)
		}
		return cfgs
	},
	Unit: func(sc Scale, cfg Config, _ *rand.Rand) UnitResult {
		var u UnitResult
		c := e14Contestants[cfg.Arg]
		// The faulty process proposes the odd value out and crashes late
		// enough to decide on its own junk quorum.
		n := 3
		pattern := model.PatternFromCrashes(n, map[model.ProcessID]model.Time{2: 150})
		r, err := runConsensus(sc, c.build([]int{0, 0, 1}), pattern, c.hist(pattern, cfg.Seed), cfg.Seed, 30000)
		if err != nil || !r.Decided {
			return u
		}
		u.Counted = true
		u.Add("runs", 1)
		if r.Outcome.NonuniformAgreement(pattern) != nil {
			u.Add("correctDiv", 1)
		} else if r.Outcome.UniformAgreement() != nil {
			u.Add("faultyDiv", 1)
		}
		return u
	},
	Row: func(_ Scale, g Group) []string {
		return []string{g.Key.Label, itoa(g.Sum("runs")),
			itoa(g.Sum("faultyDiv")), itoa(g.Sum("correctDiv"))}
	},
	Finalize: func(_ Scale, t *Table, gs []Group) {
		anuc, mr := gs[0], gs[1]
		// The gap is real iff A_nuc exhibits faulty divergence (but never
		// correct divergence) and the uniform algorithm exhibits neither.
		t.Pass = anuc.Sum("faultyDiv") > 0 && anuc.Sum("correctDiv") == 0 &&
			mr.Sum("faultyDiv") == 0 && mr.Sum("correctDiv") == 0
		if anuc.Sum("faultyDiv") == 0 {
			t.Notes = append(t.Notes, "A_nuc never showed faulty divergence — adversary too weak to exhibit the gap")
		}
	},
}

// q6Strategies are the two schedule-search path strategies Q6 compares.
var q6Strategies = []struct {
	name string
	s    transform.PathStrategy
}{
	{"longest-chain", transform.LongestChain},
	{"own-chain (ablated)", transform.OwnChain},
}

// q6Spec ablates the extraction's schedule-search path strategy: the
// canonical longest chain simulates cross-process schedules and converges;
// searching only the process's own samples can never find deciding
// schedules (a solo run of a consensus algorithm cannot decide), so the
// emulation stays stuck at Π and completeness is never achieved.
var q6Spec = &Spec{
	ID:    "Q6",
	Title: "Extraction search ablation: longest chain vs own-samples chain",
	Claim: "§4.2/Lemma 4.10: the simulated schedules must interleave all live " +
		"processes; the path choice is load-bearing, not an implementation detail.",
	Columns: []string{"strategy", "runs", "emulation valid", "stuck at Π"},
	Configs: func(sc Scale) []Config {
		seeds := min(sc.Seeds, 3)
		var cfgs []Config
		for i, st := range q6Strategies {
			cfgs = append(cfgs, seedRange(Config{Label: st.name, Arg: i}, seeds)...)
		}
		return cfgs
	},
	Unit: func(_ Scale, cfg Config, _ *rand.Rand) UnitResult {
		var u UnitResult
		strat := q6Strategies[cfg.Arg]
		n := 3
		pattern := model.PatternFromCrashes(n, map[model.ProcessID]model.Time{2: 30})
		hist := fd.PairHistory{First: fd.NewOmega(pattern, 40, cfg.Seed), Second: fd.NewSigmaNuPlus(pattern, 40, cfg.Seed)}
		aut := transform.NewSigmaNuExtractorWithStrategy(n,
			func(props []int) model.Automaton { return consensus.NewANuc(props) }, 1, strat.s)
		outs, stab, end, err := runTransformer(aut, pattern, hist, cfg.Seed, extractionBudget(n))
		if err != nil {
			u.Fail = true
			return u
		}
		u.Counted = true
		u.Add("runs", 1)
		if stab <= end*4/5 && check.SigmaNu(outs, pattern, stab) == nil && stab >= 0 {
			// Valid requires genuinely tightening beyond Π at correct
			// processes, else "valid" is vacuous (Π forever fails
			// completeness whenever f > 0 — which stab > end*4/5 caught).
			u.Add("valid", 1)
		}
		allPi := true
		for _, s := range outs {
			if q, _ := fd.QuorumOf(s.Val); pattern.Correct().Has(s.P) && q != pattern.All() {
				allPi = false
				break
			}
		}
		if allPi {
			u.Add("stuck", 1)
		}
		return u
	},
	Row: func(_ Scale, g Group) []string {
		return []string{g.Key.Label, itoa(g.Sum("runs")),
			itoa(g.Sum("valid")), itoa(g.Sum("stuck"))}
	},
	Finalize: func(_ Scale, t *Table, gs []Group) {
		for _, g := range gs {
			switch q6Strategies[g.Key.Arg].s {
			case transform.LongestChain:
				if g.Sum("valid") != g.Sum("runs") {
					t.Pass = false
				}
			case transform.OwnChain:
				if g.Sum("stuck") != g.Sum("runs") {
					t.Pass = false
					t.Notes = append(t.Notes, "own-chain ablation unexpectedly made progress")
				}
			}
		}
		t.Notes = append(t.Notes,
			"the ablated strategy stays at Π forever: with f > 0 its emulation can never satisfy completeness")
	},
}
