package experiments

import (
	"fmt"

	"nuconsensus/internal/check"
	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/hb"
	"nuconsensus/internal/model"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/trace"
	"nuconsensus/internal/transform"
)

// E13 exercises the ◇P view of the heartbeat detector: under partial
// synchrony, the emitted suspect sets eventually equal exactly the faulty
// set at every correct process (strong completeness + eventual strong
// accuracy).
func E13(sc Scale) Table {
	t := Table{
		ID:    "E13",
		Title: "Heartbeat suspicion is eventually perfect (◇P) (extension)",
		Claim: "Adaptive-timeout heartbeats under eventual timeliness suspect exactly " +
			"the crashed processes, permanently — the ◇P specification.",
		Columns: []string{"n", "f", "runs", "ok", "avg accurate-from t"},
		Pass:    true,
	}
	for _, n := range []int{3, 5, 8} {
		fs := []int{1}
		if n/2 > 1 {
			fs = append(fs, n/2)
		}
		for _, f := range fs {
			var runs, ok int
			var stabSum model.Time
			for seed := int64(1); seed <= int64(sc.Seeds); seed++ {
				pattern := model.NewFailurePattern(n)
				for i := 0; i < f; i++ {
					pattern.SetCrash(model.ProcessID(n-1-i), model.Time(40+30*i))
				}
				rec := &trace.Recorder{}
				res, err := sim.Run(sim.Options{
					Automaton: hb.NewSuspector(n, 0, 0),
					Pattern:   pattern,
					History:   fd.Null,
					Scheduler: &sim.PartialSyncScheduler{
						GST:    300,
						Before: sim.NewFairScheduler(seed, 0.2, 20),
						After:  sim.NewFairScheduler(seed+99, 0.9, 2),
					},
					MaxSteps: 2500,
					Recorder: rec,
				})
				runs++
				if err != nil {
					t.Pass = false
					continue
				}
				stab := suspicionHorizon(rec.Outputs, pattern)
				if stab > res.Time*4/5 {
					t.Pass = false
					t.Notes = append(t.Notes, fmt.Sprintf("n=%d f=%d seed=%d: suspicion unstable until %d of %d", n, f, seed, stab, res.Time))
					continue
				}
				if err := check.EventuallyPerfect(rec.Outputs, pattern, stab); err != nil {
					t.Pass = false
					t.Notes = append(t.Notes, fmt.Sprintf("n=%d f=%d seed=%d: %v", n, f, seed, err))
					continue
				}
				ok++
				if stab > 0 {
					stabSum += stab
				}
			}
			t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", f),
				fmt.Sprintf("%d", runs), fmt.Sprintf("%d", ok), avg(int(stabSum), ok))
		}
	}
	return t
}

// suspicionHorizon returns the last time a correct process's suspect set
// differed from faulty(F), or -1.
func suspicionHorizon(outs []trace.Sample, pattern *model.FailurePattern) model.Time {
	correct := pattern.Correct()
	faulty := pattern.Faulty()
	last := model.Time(-1)
	for _, s := range outs {
		if !correct.Has(s.P) {
			continue
		}
		if sus, ok := fd.SuspectsOf(s.Val); ok && sus != faulty && s.T > last {
			last = s.T
		}
	}
	return last
}

// E14 demonstrates the nonuniform/uniform gap the paper's title is about:
// A_nuc with (Ω, Σν+) admits runs in which a *faulty* process decides a
// different value than the correct ones (legal for nonuniform consensus),
// while MR-Σ with (Ω, Σ) — a uniform algorithm — never does on the same
// failure patterns. This is why Σν (and Σν+) are strictly cheaper
// detectors than Σ: they buy agreement only among the correct.
func E14(sc Scale) Table {
	t := Table{
		ID:    "E14",
		Title: "The nonuniform/uniform gap: faulty divergence under A_nuc",
		Claim: "§1: in nonuniform consensus 'a faulty process can reach a decision on " +
			"any proposed value' — and A_nuc actually exhibits such runs, while a " +
			"uniform algorithm (MR-Σ) never can.",
		Columns: []string{"algorithm", "runs", "faulty-divergent runs", "correct-divergent runs"},
	}
	seeds := sc.Seeds * 10
	n := 3
	countDivergence := func(build func(props []int) model.Automaton, hist func(*model.FailurePattern, int64) model.History, uniform bool) (int, int, int) {
		var runs, faultyDiv, correctDiv int
		for seed := int64(1); seed <= int64(seeds); seed++ {
			// The faulty process proposes the odd value out and crashes late
			// enough to decide on its own junk quorum.
			pattern := model.PatternFromCrashes(n, map[model.ProcessID]model.Time{2: 150})
			r, err := runConsensus(build([]int{0, 0, 1}), pattern, hist(pattern, seed), seed, 30000)
			if err != nil || !r.Decided {
				continue
			}
			runs++
			if r.Outcome.NonuniformAgreement(pattern) != nil {
				correctDiv++
			} else if r.Outcome.UniformAgreement() != nil {
				faultyDiv++
			}
			_ = uniform
		}
		return runs, faultyDiv, correctDiv
	}

	anucRuns, anucFaulty, anucCorrect := countDivergence(
		func(props []int) model.Automaton { return consensus.NewANuc(props) },
		func(p *model.FailurePattern, seed int64) model.History {
			return fd.PairHistory{First: fd.NewOmega(p, 200, seed), Second: fd.NewSigmaNuPlus(p, 200, seed)}
		}, false)
	t.AddRow("A_nuc + (Ω,Σν+)", fmt.Sprintf("%d", anucRuns), fmt.Sprintf("%d", anucFaulty), fmt.Sprintf("%d", anucCorrect))

	mrRuns, mrFaulty, mrCorrect := countDivergence(
		func(props []int) model.Automaton { return consensus.NewMRSigma(props) },
		func(p *model.FailurePattern, seed int64) model.History {
			return fd.PairHistory{First: fd.NewOmega(p, 200, seed), Second: fd.NewSigma(p, 200, seed)}
		}, true)
	t.AddRow("MR-Σ + (Ω,Σ)", fmt.Sprintf("%d", mrRuns), fmt.Sprintf("%d", mrFaulty), fmt.Sprintf("%d", mrCorrect))

	// The gap is real iff A_nuc exhibits faulty divergence (but never
	// correct divergence) and the uniform algorithm exhibits neither.
	t.Pass = anucFaulty > 0 && anucCorrect == 0 && mrFaulty == 0 && mrCorrect == 0
	if anucFaulty == 0 {
		t.Notes = append(t.Notes, "A_nuc never showed faulty divergence — adversary too weak to exhibit the gap")
	}
	return t
}

// Q6 ablates the extraction's schedule-search path strategy: the canonical
// longest chain simulates cross-process schedules and converges; searching
// only the process's own samples can never find deciding schedules (a solo
// run of a consensus algorithm cannot decide), so the emulation stays stuck
// at Π and completeness is never achieved.
func Q6(sc Scale) Table {
	t := Table{
		ID:    "Q6",
		Title: "Extraction search ablation: longest chain vs own-samples chain",
		Claim: "§4.2/Lemma 4.10: the simulated schedules must interleave all live " +
			"processes; the path choice is load-bearing, not an implementation detail.",
		Columns: []string{"strategy", "runs", "emulation valid", "stuck at Π"},
		Pass:    true,
	}
	n := 3
	seeds := min(sc.Seeds, 3)
	for _, strat := range []struct {
		name string
		s    transform.PathStrategy
	}{
		{"longest-chain", transform.LongestChain},
		{"own-chain (ablated)", transform.OwnChain},
	} {
		var runs, valid, stuck int
		for seed := int64(1); seed <= int64(seeds); seed++ {
			pattern := model.PatternFromCrashes(n, map[model.ProcessID]model.Time{2: 30})
			hist := fd.PairHistory{First: fd.NewOmega(pattern, 40, seed), Second: fd.NewSigmaNuPlus(pattern, 40, seed)}
			aut := transform.NewSigmaNuExtractorWithStrategy(n,
				func(props []int) model.Automaton { return consensus.NewANuc(props) }, 1, strat.s)
			outs, stab, end, err := runTransformer(aut, pattern, hist, seed, extractionBudget(n))
			if err != nil {
				t.Pass = false
				continue
			}
			runs++
			if stab <= end*4/5 && check.SigmaNu(outs, pattern, stab) == nil && stab >= 0 {
				// Valid requires genuinely tightening beyond Π at correct
				// processes, else "valid" is vacuous (Π forever fails
				// completeness whenever f > 0 — which stab > end*4/5 caught).
				valid++
			}
			allPi := true
			for _, s := range outs {
				if q, _ := fd.QuorumOf(s.Val); pattern.Correct().Has(s.P) && q != pattern.All() {
					allPi = false
					break
				}
			}
			if allPi {
				stuck++
			}
		}
		t.AddRow(strat.name, fmt.Sprintf("%d", runs), fmt.Sprintf("%d", valid), fmt.Sprintf("%d", stuck))
		if strat.s == transform.LongestChain && valid != runs {
			t.Pass = false
		}
		if strat.s == transform.OwnChain && stuck != runs {
			t.Pass = false
			t.Notes = append(t.Notes, "own-chain ablation unexpectedly made progress")
		}
	}
	t.Notes = append(t.Notes,
		"the ablated strategy stays at Π forever: with f > 0 its emulation can never satisfy completeness")
	return t
}
