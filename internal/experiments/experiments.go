// Package experiments implements the reproduction experiments of
// EXPERIMENTS.md: one Spec per experiment (E1–E17) and per quantitative
// figure (Q1–Q7), each producing a Table that cmd/experiments renders and
// bench_test.go regenerates. Every theorem, algorithm and proof scenario of
// the paper maps to one of these. The specs run on the parallel
// deterministic engine in engine.go: RunAll fans the per-seed units of
// every experiment out across a worker pool and reduces them in canonical
// order, so the tables are bitwise identical for any worker count.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"nuconsensus/internal/check"
	"nuconsensus/internal/model"
	"nuconsensus/internal/obs"
	"nuconsensus/internal/substrate"
	"nuconsensus/internal/trace"

	// The substrate backends register themselves on import, so every
	// consumer of this package can resolve -substrate sim|async|tcp.
	_ "nuconsensus/internal/netrun"
	_ "nuconsensus/internal/runtime"
	_ "nuconsensus/internal/sim"
)

// Table is one regenerated experiment table.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Claim   string     `json:"claim"` // the paper's claim being exercised
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Pass    bool       `json:"pass"`
	Notes   []string   `json:"notes,omitempty"`

	// Elapsed is the summed unit work time of the table; RowTimes is the
	// per-row breakdown and UnitTimes the per-unit wall-clock durations in
	// canonical config order. All three are nondeterministic diagnostics:
	// they vary run to run, are deliberately excluded from Render, and
	// golden comparisons must strip them (CI compares rendered tables and
	// event logs, never the *_ns fields).
	Elapsed   time.Duration   `json:"elapsed_ns"`
	RowTimes  []time.Duration `json:"row_times_ns,omitempty"`
	UnitTimes []time.Duration `json:"unit_times_ns,omitempty"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render prints the table as GitHub-flavored markdown.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "Claim: %s\n\n", t.Claim)
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(seps, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(r, " | "))
	}
	b.WriteString("\n")
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "- %s\n", n)
	}
	fmt.Fprintf(&b, "- verdict: %s\n", map[bool]string{true: "PASS", false: "FAIL"}[t.Pass])
	return b.String()
}

// Report is the machine-readable form of one engine run — what
// cmd/experiments -json writes and CI archives.
type Report struct {
	Scale   Scale         `json:"scale"`
	Workers int           `json:"workers"`
	Pass    bool          `json:"pass"`
	Wall    time.Duration `json:"wall_ns"`
	Tables  []Table       `json:"tables"`

	// MemAllocBytes and NumGC summarize the process's allocation activity
	// over the run (runtime.MemStats deltas). Like Wall and the tables'
	// *_ns fields they are nondeterministic diagnostics, excluded from
	// golden comparisons.
	MemAllocBytes uint64 `json:"mem_alloc_bytes,omitempty"`
	NumGC         uint32 `json:"num_gc,omitempty"`
}

// NewReport assembles a Report from finished tables.
func NewReport(tables []Table, sc Scale, workers int, wall time.Duration) Report {
	r := Report{Scale: sc, Workers: workers, Pass: true, Wall: wall, Tables: tables}
	for _, t := range tables {
		if !t.Pass {
			r.Pass = false
		}
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Scale controls how much work the experiments do; benchmarks and the CLI
// use Quick, the recorded EXPERIMENTS.md run uses Full.
type Scale struct {
	Seeds    int `json:"seeds"`
	MaxSteps int `json:"max_steps"`

	// Substrate names the execution backend the portable experiments run
	// on ("sim", "async", "tcp"); empty means "sim". Experiments not marked
	// Portable refuse to run on a non-sim substrate.
	Substrate string `json:"substrate,omitempty"`

	// Bus and Metrics instrument every substrate execution a unit
	// performs (runConsensus wires them into substrate.Options). The
	// engine sets Bus per unit when event collection is on — one bus per
	// unit keeps Lamport clocks and event streams independent, so the
	// canonical-order export is byte-identical at any worker count.
	// Runtime wiring, not scale parameters: excluded from JSON.
	Bus     *obs.Bus      `json:"-"`
	Metrics *obs.Registry `json:"-"`
}

// SubstrateName resolves the scale's backend name, defaulting to "sim".
func (sc Scale) SubstrateName() string {
	if sc.Substrate == "" {
		return "sim"
	}
	return sc.Substrate
}

// substrate resolves the scale's execution backend from the registry.
func (sc Scale) substrate() (substrate.Substrate, error) {
	return substrate.Get(sc.SubstrateName())
}

// Quick is the default scale for tests and benchmarks.
var Quick = Scale{Seeds: 3, MaxSteps: 30000}

// Full is the scale used to record EXPERIMENTS.md.
var Full = Scale{Seeds: 10, MaxSteps: 60000}

// randomPattern draws a failure pattern with exactly f crashes at times in
// [1, maxCrash].
func randomPattern(n, f int, maxCrash model.Time, rng *rand.Rand) *model.FailurePattern {
	pat := model.NewFailurePattern(n)
	perm := rng.Perm(n)
	for i := 0; i < f; i++ {
		pat.SetCrash(model.ProcessID(perm[i]), 1+model.Time(rng.Int63n(int64(maxCrash))))
	}
	return pat
}

// mixedProposals assigns binary proposals, guaranteeing both values appear.
func mixedProposals(n int, rng *rand.Rand) []int {
	ps := make([]int, n)
	for i := range ps {
		ps[i] = rng.Intn(2)
	}
	ps[0], ps[n-1] = 0, 1
	return ps
}

// consensusRun is one measured consensus execution.
type consensusRun struct {
	Decided  bool
	Steps    int
	MaxRound int
	Sent     int
	Kinds    map[string]int
	Outcome  check.ConsensusOutcome
}

// concurrentBudgetFloor and concurrentBudgetPerProc set the minimum
// logical-clock budget granted on the concurrent substrates: their shared
// clock ticks once per step of *any* process (including idle spins while
// messages are in flight), so a per-step budget tuned for the simulator
// starves them, and the starvation grows with n. StopWhenDecided keeps the
// real cost of a deciding run far below the floor.
const (
	concurrentBudgetFloor   = 200000
	concurrentBudgetPerProc = 100000
)

// blockBudget marks a deliberately bounded budget: runConsensus will not
// raise it to the concurrent-substrate floor. Units use it when they expect
// the algorithm to block — the budget only bounds how long they wait before
// declaring "it blocked", so raising it would just burn time.
func blockBudget(ticks int) int { return -ticks }

// runConsensus drives a consensus automaton on the scale's substrate until
// every correct process decides (or maxSteps). On "sim" (the default) it
// reproduces the historical fair-scheduled execution exactly, so the sim
// tables stay byte-identical. A negative maxSteps (see blockBudget) means
// "exactly that many ticks, even on a concurrent substrate".
func runConsensus(sc Scale, aut model.Automaton, pattern *model.FailurePattern, hist model.History, seed int64, maxSteps int) (consensusRun, error) {
	sub, err := sc.substrate()
	if err != nil {
		return consensusRun{}, err
	}
	exact := maxSteps < 0
	if exact {
		maxSteps = -maxSteps
	}
	if !sub.Deterministic() && !exact {
		floor := concurrentBudgetFloor
		if perN := aut.N() * concurrentBudgetPerProc; perN > floor {
			floor = perN
		}
		if maxSteps < floor {
			maxSteps = floor
		}
	}
	rec := &trace.Recorder{}
	res, err := sub.Run(context.Background(), aut, hist, pattern, substrate.Options{
		Seed:            seed,
		MaxSteps:        maxSteps,
		StopWhenDecided: true,
		Recorder:        rec,
		Bus:             sc.Bus,
		Metrics:         sc.Metrics,
	})
	if err != nil {
		return consensusRun{}, err
	}
	if sc.Metrics != nil {
		sc.Metrics.Histogram("consensus.msgs_per_run", obs.DefaultBuckets).Observe(int64(rec.MessagesSent))
		sc.Metrics.Histogram("consensus.steps_per_run", obs.DefaultBuckets).Observe(int64(res.Steps))
	}
	return consensusRun{
		Decided:  res.Decided,
		Steps:    res.Steps,
		MaxRound: res.MaxRound,
		Sent:     rec.MessagesSent,
		Kinds:    rec.SentKinds,
		Outcome:  check.OutcomeFromConfig(res.Config),
	}, nil
}

// avg is a small integer-average helper for table cells.
func avg(sum, n int) string {
	if n == 0 {
		return "—"
	}
	return fmt.Sprintf("%.1f", float64(sum)/float64(n))
}
