package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"

	"nuconsensus/internal/model"
	"nuconsensus/internal/obs"
	"nuconsensus/internal/rsm"
	"nuconsensus/internal/serve"
	"nuconsensus/internal/substrate"
	"nuconsensus/internal/wire"
)

// E18 measures the serving layer (internal/serve) end to end: a generated
// client workload — Zipf-skewed keys, mixed kv/queue ops, per-client
// session seqs — batched into consensus values and served off the
// replicated log, with exactly-once application checked on every run.
//
// Two grids, one claim each:
//
//   - batch: the per-slot consensus cost is independent of how many
//     commands ride in the slot's batch, so throughput (commands applied
//     per step) scales with batch size;
//   - pipe: the pipelined window advances one in-flight instance per step
//     (round-robin), so deepening the window must NOT inflate the message
//     cost per decided slot.

const (
	e18N       = 4
	e18Batches = 8  // batches per run, both grids
	e18Slots   = 24 // fixed log capacity: 8 value slots + generous noop slack
)

var (
	e18BatchGrid = []int{1, 4, 16, 64} // commands per batch (pipeline fixed at 2)
	e18PipeGrid  = []int{1, 2, 4}      // slot instances in flight (batch fixed at 4)
)

// e18Meter counts sends and bytes-on-wire through the real codec. The
// concurrent substrates step processes from independent goroutines, so the
// taps are atomics; they are per-unit, so the recorded numbers stay
// deterministic on sim at any engine worker count.
type e18Meter struct {
	model.Automaton
	msgs      atomic.Int64
	wireBytes atomic.Int64
}

func (a *e18Meter) Step(p model.ProcessID, s model.State, m *model.Message, d model.FDValue) (model.State, []model.Send) {
	ns, sends := a.Automaton.Step(p, s, m, d)
	var total int64
	for _, snd := range sends {
		if b, err := wire.EncodePayload(snd.Payload); err == nil {
			total += int64(len(b))
		}
	}
	a.msgs.Add(int64(len(sends)))
	a.wireBytes.Add(total)
	return ns, sends
}

var e18Spec = &Spec{
	ID:    "E18",
	Title: "Serving layer: batched throughput and pipelined slot cost",
	Claim: "§1 motivation, as a service: consensus per slot costs the same " +
		"whether the slot carries one command or sixty-four, so batching " +
		"multiplies served throughput; and the pipelined window advances one " +
		"in-flight instance per step, so message cost per decided slot stays " +
		"flat as the window deepens. Exactly-once application and machine " +
		"agreement hold on every run.",
	Columns: []string{"grid", "arg", "runs", "ok", "cmds/run", "steps/run", "cmds/kstep", "msgs/slot", "dups/run"},
	// Portable: the unit drives the substrate interface with
	// StopWhenDecided (replicaState implements model.Decider), so it runs
	// unchanged on the async and tcp backends.
	Portable: true,
	Configs: func(sc Scale) []Config {
		var cfgs []Config
		for _, b := range e18BatchGrid {
			cfgs = append(cfgs, seedRange(Config{Label: "batch", N: e18N, Arg: b}, sc.Seeds)...)
		}
		for _, k := range e18PipeGrid {
			cfgs = append(cfgs, seedRange(Config{Label: "pipe", N: e18N, Arg: k}, sc.Seeds)...)
		}
		return cfgs
	},
	Unit: func(sc Scale, cfg Config, rng *rand.Rand) UnitResult {
		u := UnitResult{Counted: true}
		seed := cfg.Seed
		sub, err := sc.substrate()
		if err != nil {
			u.failf("%v", err)
			return u
		}
		batch, pipe := cfg.Arg, 2
		if cfg.Label == "pipe" {
			batch, pipe = 4, cfg.Arg
		}
		wl := serve.Workload{
			Commands: batch * e18Batches, Batch: batch,
			Clients: 8, Keys: 64, Zipf: 1.3, QueueFrac: 0.25,
		}.Gen(rng, e18N)
		total := 0
		for _, bs := range wl {
			for _, b := range bs {
				total += len(b.Cmds)
			}
		}
		pattern := model.NewFailurePattern(e18N)
		reg := obs.NewRegistry()
		// The tracer runs with the logical clock (nil) and a discarded
		// stream: E18 exercises the span-emission path on every unit and
		// folds the span count below, proving tracing adds nothing
		// nondeterministic to the experiment bytes.
		tracer := obs.NewTracer(io.Discard, nil, reg)
		cl := serve.NewCluster(serve.Config{
			N: e18N, Slots: e18Slots, Pipeline: pipe,
			Workload: wl, Target: total, Registry: reg, Tracer: tracer,
		})
		sampler := rsm.SamplerForLog(pattern, 60, seed)
		cl.Log().WithSampler(sampler)
		meter := &e18Meter{Automaton: cl.Automaton()}
		budget := min(sc.MaxSteps*8, 400000)
		if !sub.Deterministic() && budget < 3_000_000 {
			budget = 3_000_000
		}
		res, err := sub.Run(context.Background(), meter, sampler, pattern, substrate.Options{
			Seed:            seed,
			MaxSteps:        budget,
			StopWhenDecided: true,
			Bus:             sc.Bus,
			Metrics:         sc.Metrics,
		})
		if err != nil || !res.Decided {
			u.failf("%s=%d seed=%d: err=%v decided=%v", cfg.Label, cfg.Arg, seed, err, res != nil && res.Decided)
			return u
		}
		// Exactly-once and agreement, on every unit: each replica applied
		// every distinct command exactly once, and the machines agree.
		var refSum uint64
		slots, dups := 0, 0
		for p := 0; p < e18N; p++ {
			st := cl.Applier(model.ProcessID(p)).StatsOf()
			if st.Commands != int64(total) {
				u.failf("%s=%d seed=%d: p%d applied %d distinct commands, want %d",
					cfg.Label, cfg.Arg, seed, p, st.Commands, total)
				return u
			}
			sum := cl.Applier(model.ProcessID(p)).Checksum()
			if p == 0 {
				refSum = sum
			} else if sum != refSum {
				u.failf("%s=%d seed=%d: p%d machine checksum %x != %x", cfg.Label, cfg.Arg, seed, p, sum, refSum)
				return u
			}
			if st.Frontier > slots {
				slots = st.Frontier
			}
			dups += int(st.Dups)
		}
		u.OK = true
		u.Add("cmds", total)
		u.Add("steps", res.Steps)
		u.Add("msgs", int(meter.msgs.Load()))
		u.Add("wire", int(meter.wireBytes.Load()))
		u.Add("slots", slots)
		u.Add("dups", dups)
		// Fold the per-unit registry into the run-wide metrics registry
		// (commutative adds/maxes only, so dumps stay worker-count-free).
		if sc.Metrics != nil {
			for _, name := range []string{
				"serve.apply.commands", "serve.apply.dup_commands",
				"serve.apply.batches", "serve.apply.dup_batches",
				"serve.apply.noops", "serve.apply.stalls",
				"serve.sessions.compactions",
				"obs.spans",
			} {
				sc.Metrics.Counter(name).Add(reg.Counter(name).Value())
			}
			sc.Metrics.Gauge("serve.sessions.live").Max(reg.Gauge("serve.sessions.live").Value())
		}
		return u
	},
	Row: func(_ Scale, g Group) []string {
		return []string{g.Key.Label, itoa(g.Key.Arg), itoa(g.Runs()), itoa(g.OKs()),
			g.AvgOverOK("cmds"), g.AvgOverOK("steps"),
			avg(g.Sum("cmds")*1000, g.Sum("steps")),
			avg(g.Sum("msgs"), g.Sum("slots")),
			g.AvgOverOK("dups")}
	},
	Finalize: func(sc Scale, t *Table, gs []Group) {
		// Throughput per grid point (commands per kilo-step) and message
		// cost per decided slot.
		thru := map[string]map[int]float64{"batch": {}, "pipe": {}}
		msgsPerSlot := map[string]map[int]float64{"batch": {}, "pipe": {}}
		for _, g := range gs {
			if g.OKs() == 0 {
				t.Pass = false
				return
			}
			thru[g.Key.Label][g.Key.Arg] = 1000 * float64(g.Sum("cmds")) / float64(g.Sum("steps"))
			msgsPerSlot[g.Key.Label][g.Key.Arg] = float64(g.Sum("msgs")) / float64(g.Sum("slots"))
		}
		bLo, bHi := e18BatchGrid[0], e18BatchGrid[len(e18BatchGrid)-1]
		pLo, pHi := e18PipeGrid[0], e18PipeGrid[len(e18PipeGrid)-1]
		t.Notes = append(t.Notes,
			fmt.Sprintf("throughput, batch %d→%d: %.1f → %.1f cmds/kstep (%.1fx)",
				bLo, bHi, thru["batch"][bLo], thru["batch"][bHi], thru["batch"][bHi]/thru["batch"][bLo]),
			fmt.Sprintf("msgs per decided slot, pipeline %d→%d: %.1f → %.1f",
				pLo, pHi, msgsPerSlot["pipe"][pLo], msgsPerSlot["pipe"][pHi]))
		if thru["batch"][bHi] < 5*thru["batch"][bLo] {
			t.Pass = false
			t.Notes = append(t.Notes, fmt.Sprintf(
				"FAIL: batching %d→%d should multiply throughput at least 5x", bLo, bHi))
		}
		if msgsPerSlot["pipe"][pHi] > 1.5*msgsPerSlot["pipe"][pLo] {
			t.Pass = false
			t.Notes = append(t.Notes, fmt.Sprintf(
				"FAIL: message cost per slot should stay flat as the window deepens (%d→%d grew %.1f→%.1f)",
				pLo, pHi, msgsPerSlot["pipe"][pLo], msgsPerSlot["pipe"][pHi]))
		}
	},
}
