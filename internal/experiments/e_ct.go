package experiments

import (
	"math/rand"

	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
)

// e15Spec exercises the Chandra–Toueg baseline (the paper's reference [2]):
// ◇S plus a correct majority solves uniform consensus; without the
// majority the algorithm (correctly) blocks. Alongside Q1 it completes the
// baseline picture: majority algorithms (MR-Ω, CT-◇S) stop at f < n/2,
// quorum-detector algorithms (MR-Σ, A_nuc) cover every f < n.
var e15Spec = &Spec{
	ID: "E15",
	// Portable: every execution goes through runConsensus, and the claim
	// is about outcomes, not step order.
	Portable: true,
	Title:    "Chandra–Toueg (◇S + majority) baseline",
	Claim: "[2]: the rotating-coordinator algorithm solves uniform consensus " +
		"with ◇S when a majority is correct — and cannot terminate otherwise.",
	Columns: []string{"n", "f", "runs", "ok", "avg steps", "avg rounds"},
	Configs: func(sc Scale) []Config {
		var cfgs []Config
		for _, n := range []int{3, 5, 7} {
			for _, f := range []int{0, (n - 1) / 2, (n + 1) / 2} {
				cfgs = append(cfgs, seedRange(Config{N: n, F: f}, sc.Seeds)...)
			}
		}
		return cfgs
	},
	Unit: func(sc Scale, cfg Config, _ *rand.Rand) UnitResult {
		u := UnitResult{Counted: true}
		n, f, seed := cfg.N, cfg.F, cfg.Seed
		majorityOK := 2*f < n
		pattern := model.NewFailurePattern(n)
		for i := 0; i < f; i++ {
			crashAt := model.Time(10 + 11*i)
			if !majorityOK {
				// The blocking claim needs the majority to be gone from the
				// start: with late crashes a round can legitimately finish
				// before they happen.
				crashAt = 1
			}
			pattern.SetCrash(model.ProcessID(i), crashAt)
		}
		props := make([]int, n)
		for i := range props {
			props[i] = i % 2
		}
		budget := sc.MaxSteps
		if !majorityOK {
			budget = blockBudget(4000) // expecting a block, keep it cheap
		}
		r, err := runConsensus(sc, consensus.NewCT(props), pattern,
			fd.NewSuspicion(pattern, 90, seed), seed, budget)
		if err != nil {
			u.Fail = true
			return u
		}
		if majorityOK {
			if r.Decided && r.Outcome.UniformConsensus(pattern) == nil {
				u.OK = true
				u.Add("steps", r.Steps)
				u.Add("rounds", r.MaxRound)
			} else {
				u.failf("n=%d f=%d seed=%d: decided=%v %v",
					n, f, seed, r.Decided, r.Outcome.UniformConsensus(pattern))
			}
		} else {
			// Correct behavior is to block, never to decide wrongly.
			if !r.Decided && r.Outcome.UniformAgreement() == nil {
				u.OK = true
			} else {
				u.failf("n=%d f=%d seed=%d: decided without a majority", n, f, seed)
			}
		}
		return u
	},
	Row: func(_ Scale, g Group) []string {
		cell := g.AvgOverOK("steps")
		roundCell := g.AvgOverOK("rounds")
		if 2*g.Key.F >= g.Key.N {
			cell, roundCell = "blocks (f ≥ n/2)", "—"
		}
		return []string{itoa(g.Key.N), itoa(g.Key.F), itoa(g.Runs()),
			itoa(g.OKs()), cell, roundCell}
	},
}
