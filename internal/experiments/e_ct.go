package experiments

import (
	"fmt"

	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
)

// E15 exercises the Chandra–Toueg baseline (the paper's reference [2]):
// ◇S plus a correct majority solves uniform consensus; without the
// majority the algorithm (correctly) blocks. Alongside Q1 it completes the
// baseline picture: majority algorithms (MR-Ω, CT-◇S) stop at f < n/2,
// quorum-detector algorithms (MR-Σ, A_nuc) cover every f < n.
func E15(sc Scale) Table {
	t := Table{
		ID:    "E15",
		Title: "Chandra–Toueg (◇S + majority) baseline",
		Claim: "[2]: the rotating-coordinator algorithm solves uniform consensus " +
			"with ◇S when a majority is correct — and cannot terminate otherwise.",
		Columns: []string{"n", "f", "runs", "ok", "avg steps", "avg rounds"},
		Pass:    true,
	}
	for _, n := range []int{3, 5, 7} {
		for _, f := range []int{0, (n - 1) / 2, (n + 1) / 2} {
			majorityOK := 2*f < n
			var runs, ok, steps, rounds int
			for seed := int64(1); seed <= int64(sc.Seeds); seed++ {
				pattern := model.NewFailurePattern(n)
				for i := 0; i < f; i++ {
					crashAt := model.Time(10 + 11*i)
					if !majorityOK {
						// The blocking claim needs the majority to be gone
						// from the start: with late crashes a round can
						// legitimately finish before they happen.
						crashAt = 1
					}
					pattern.SetCrash(model.ProcessID(i), crashAt)
				}
				props := make([]int, n)
				for i := range props {
					props[i] = i % 2
				}
				budget := sc.MaxSteps
				if !majorityOK {
					budget = 4000 // expecting a block, keep it cheap
				}
				r, err := runConsensus(consensus.NewCT(props), pattern,
					fd.NewSuspicion(pattern, 90, seed), seed, budget)
				runs++
				if err != nil {
					t.Pass = false
					continue
				}
				if majorityOK {
					if r.Decided && r.Outcome.UniformConsensus(pattern) == nil {
						ok++
						steps += r.Steps
						rounds += r.MaxRound
					} else {
						t.Pass = false
						t.Notes = append(t.Notes, fmt.Sprintf("n=%d f=%d seed=%d: decided=%v %v",
							n, f, seed, r.Decided, r.Outcome.UniformConsensus(pattern)))
					}
				} else {
					// Correct behavior is to block, never to decide wrongly.
					if !r.Decided && r.Outcome.UniformAgreement() == nil {
						ok++
					} else {
						t.Pass = false
						t.Notes = append(t.Notes, fmt.Sprintf("n=%d f=%d seed=%d: decided without a majority", n, f, seed))
					}
				}
			}
			cell := avg(steps, ok)
			roundCell := avg(rounds, ok)
			if !majorityOK {
				cell, roundCell = "blocks (f ≥ n/2)", "—"
			}
			t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", f), fmt.Sprintf("%d", runs),
				fmt.Sprintf("%d", ok), cell, roundCell)
		}
	}
	return t
}
