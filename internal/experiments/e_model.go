package experiments

import (
	"fmt"
	"math/rand"
	"reflect"

	"nuconsensus/internal/consensus"
	"nuconsensus/internal/dag"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/trace"
)

// restrictedScheduler confines a fair scheduler to a subset of processes,
// producing the partial runs merged in E9.
type restrictedScheduler struct {
	allowed model.ProcessSet
	inner   sim.Scheduler
}

func (s *restrictedScheduler) Next(t model.Time, alive model.ProcessSet, c *model.Configuration) (model.ProcessID, *model.Message) {
	return s.inner.Next(t, alive.Intersect(s.allowed), c)
}

// e9Spec exercises Lemma 2.2: a merging of two mergeable finite runs is
// itself a run (properties (1)–(5)) and preserves every participant's final
// state.
var e9Spec = &Spec{
	ID:    "E9",
	Title: "Run merging (partition argument substrate)",
	Claim: "Lemma 2.2: merging runs with disjoint participants yields a run of " +
		"the algorithm in which each participant's state is unchanged.",
	Columns: []string{"seed", "|S₀|", "|S₁|", "merged validates", "states preserved"},
	Configs: func(sc Scale) []Config {
		var cfgs []Config
		for s := 1; s <= sc.Seeds; s++ {
			cfgs = append(cfgs, Config{Arg: s, Seed: int64(s)})
		}
		return cfgs
	},
	Unit: func(_ Scale, cfg Config, _ *rand.Rand) UnitResult {
		u := UnitResult{Counted: true}
		seed := cfg.Seed
		n := 4
		sideA := model.SetOf(0, 1)
		sideB := model.SetOf(2, 3)
		pattern := model.NewFailurePattern(n)
		hist := fd.PairHistory{First: fd.NewOmega(pattern, 0, seed), Second: fd.NewSigma(pattern, 0, seed)}
		run := func(aut model.Automaton, side model.ProcessSet, s int64) (*model.Run, error) {
			res, err := sim.Run(sim.Exec{
				Automaton:    aut,
				Pattern:      pattern,
				History:      hist,
				Scheduler:    &restrictedScheduler{allowed: side, inner: sim.NewFairScheduler(s, 0.8, 3)},
				MaxSteps:     30,
				KeepSchedule: true,
			})
			if err != nil {
				return nil, err
			}
			return &model.Run{Automaton: aut, Pattern: pattern, History: hist, Schedule: res.Schedule, Times: res.Times}, nil
		}
		// Proposals agree with the merged automaton on each side's
		// participants (the mergeability condition on initial states).
		a0 := consensus.NewMRMajority([]int{5, 5, 0, 0})
		a1 := consensus.NewMRMajority([]int{0, 0, 9, 9})
		merged := consensus.NewMRMajority([]int{5, 5, 9, 9})
		r0, err0 := run(a0, sideA, seed)
		r1, err1 := run(a1, sideB, seed+100)
		if err0 != nil || err1 != nil {
			u.failf("seed=%d: %v %v", seed, err0, err1)
			return u
		}
		m, err := model.MergeRuns(r0, r1, merged)
		validates := "no"
		preserved := "no"
		if err == nil {
			if err := m.Validate(); err == nil {
				validates = "yes"
				final, ferr := m.FinalStates()
				if ferr == nil {
					f0, _ := r0.FinalStates()
					f1, _ := r1.FinalStates()
					okAll := true
					sideA.ForEach(func(p model.ProcessID) {
						if !reflect.DeepEqual(final.States[p], f0.States[p]) {
							okAll = false
						}
					})
					sideB.ForEach(func(p model.ProcessID) {
						if !reflect.DeepEqual(final.States[p], f1.States[p]) {
							okAll = false
						}
					})
					if okAll {
						preserved = "yes"
					}
				}
			} else {
				u.Notef("seed=%d: validate: %v", seed, err)
			}
		} else {
			u.Notef("seed=%d: merge: %v", seed, err)
		}
		if validates != "yes" || preserved != "yes" {
			u.Fail = true
		} else {
			u.OK = true
		}
		u.Cells = []string{fmt.Sprintf("%d", seed), itoa(len(r0.Schedule)),
			itoa(len(r1.Schedule)), validates, preserved}
		return u
	},
}

// e10Spec exercises the §4 DAG lemmas on real A_DAG executions: sample
// times strictly increase along edges (Observation 4.4), same-process
// samples chain (Observation 4.2), fresh subgraphs contain only correct
// samples (Lemma 4.6), and long canonical paths visit every correct process
// many times (Lemma 4.8's finite shadow).
var e10Spec = &Spec{
	ID:    "E10",
	Title: "Sample-DAG structure (§4 lemmas)",
	Claim: "Observations 4.2/4.4 and Lemmas 4.6/4.8: edges respect sample times, " +
		"own samples chain, fresh subgraphs are correct-only, canonical paths " +
		"revisit all correct processes.",
	Columns: []string{"seed", "nodes", "edge-times ok", "own-chain ok", "fresh-correct ok", "path visits/correct"},
	Configs: func(sc Scale) []Config {
		var cfgs []Config
		for s := 1; s <= sc.Seeds; s++ {
			cfgs = append(cfgs, Config{Arg: s, Seed: int64(s)})
		}
		return cfgs
	},
	Unit: func(_ Scale, cfg Config, _ *rand.Rand) UnitResult {
		u := UnitResult{Counted: true}
		seed := cfg.Seed
		n := 4
		pattern := model.PatternFromCrashes(n, map[model.ProcessID]model.Time{1: 40})
		rec := &trace.Recorder{RecordSamples: true}
		res, err := sim.Run(sim.Exec{
			Automaton: dag.NewADag(n),
			Pattern:   pattern,
			History:   fd.NewOmega(pattern, 60, seed),
			Scheduler: sim.NewFairScheduler(seed, 0.8, 3),
			MaxSteps:  300,
			Recorder:  rec,
		})
		if err != nil {
			u.failf("seed=%d: %v", seed, err)
			return u
		}
		p0 := model.ProcessID(0)
		g := res.Config.States[p0].(dag.GraphHolder).SampleGraph()

		// τ(v): the k-th sample of process q was taken at the time of q's
		// k-th recorded step.
		tau := make(map[dag.Key]model.Time)
		count := make(map[model.ProcessID]int)
		for _, s := range rec.Samples {
			count[s.P]++
			tau[dag.Key{P: s.P, K: count[s.P]}] = s.T
		}

		edgeOK, chainOK := true, true
		for v := 0; v < g.Len(); v++ {
			nv := g.Node(v)
			for q := 0; q < v; q++ {
				if !g.HasEdge(q, v) {
					continue
				}
				nq := g.Node(q)
				if tau[nq.Key()] >= tau[nv.Key()] {
					edgeOK = false
				}
			}
		}
		// Observation 4.2 on p0's own samples within its graph.
		var own []int
		for v := 0; v < g.Len(); v++ {
			if g.Node(v).P == p0 {
				own = append(own, v)
			}
		}
		for i := 1; i < len(own); i++ {
			if !g.HasEdge(own[i-1], own[i]) {
				chainOK = false
			}
		}
		// Lemma 4.6: the subgraph from a sample taken after all crashes
		// contains only correct samples.
		freshOK := true
		fresh := -1
		for v := g.Len() - 1; v >= 0; v-- {
			if g.Node(v).P == p0 && tau[g.Node(v).Key()] > pattern.MaxCrashTime() {
				fresh = v
			}
		}
		if fresh >= 0 {
			if !g.SamplesOf(g.Descendants(fresh)).SubsetOf(pattern.Correct()) {
				freshOK = false
			}
		}
		// Lemma 4.8 finite shadow: the canonical path visits each correct
		// process at least a few times.
		path := g.Nodes(g.LongestPathFrom(0, g.Descendants(0)))
		visits := make(map[model.ProcessID]int)
		for _, nd := range path {
			visits[nd.P]++
		}
		minVisits := 1 << 30
		pattern.Correct().ForEach(func(p model.ProcessID) {
			if visits[p] < minVisits {
				minVisits = visits[p]
			}
		})
		if !edgeOK || !chainOK || !freshOK || minVisits < 3 {
			u.Fail = true
		} else {
			u.OK = true
		}
		u.Cells = []string{fmt.Sprintf("%d", seed), itoa(g.Len()),
			fmt.Sprintf("%v", edgeOK), fmt.Sprintf("%v", chainOK),
			fmt.Sprintf("%v", freshOK), itoa(minVisits)}
		return u
	},
}
