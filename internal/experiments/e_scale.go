package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"

	"nuconsensus/internal/consensus"
	"nuconsensus/internal/model"
	"nuconsensus/internal/obs"
	"nuconsensus/internal/rsm"
	"nuconsensus/internal/substrate"
	"nuconsensus/internal/wire"
)

// E17 measures how the replicated log's costs scale with log length, in
// the two history-plumbing modes:
//
//   - owned (the PR-7-and-earlier baseline): every live slot instance owns
//     a full copy of its process's quorum histories, and every LEAD/PROP
//     carries a complete clone inline;
//   - shared: one versioned store per process, shared by all live slot
//     instances, with LEAD/PROP carrying (base, delta) against what this
//     process last shipped to that destination (see internal/rsm/shared.go).
//
// Three quantities per run, all through the real wire codec: total
// bytes-on-wire, the history share of each message (encoded size minus the
// size of the same payload with its inline histories / delta frame
// stripped), and the high-water live-state history footprint of any single
// process (rsm.StatsOf, sampled at every step).

const e17N = 5

var e17SlotsGrid = []int{4, 8, 16}

// e17Meter wraps the log automaton with measurement taps. The substrate
// steps processes from independent goroutines on the concurrent backends,
// so both taps are atomics; they are per-unit, so the recorded numbers
// stay deterministic on sim at any engine worker count.
type e17Meter struct {
	model.Automaton
	msgs      atomic.Int64 // sends observed
	wireBytes atomic.Int64 // Σ encoded payload size over all sends
	histBytes atomic.Int64 // Σ history share: encoded minus history-free encoded
	peakHist  atomic.Int64 // high-water StatsOf().HistEntries of any process
}

func (a *e17Meter) Step(p model.ProcessID, s model.State, m *model.Message, d model.FDValue) (model.State, []model.Send) {
	ns, sends := a.Automaton.Step(p, s, m, d)
	var total, hist int64
	for _, snd := range sends {
		b, err := wire.EncodePayload(snd.Payload)
		if err != nil {
			continue
		}
		total += int64(len(b))
		if stripped := historyFree(snd.Payload); stripped != nil {
			if sb, err := wire.EncodePayload(stripped); err == nil {
				hist += int64(len(b) - len(sb))
			}
		}
	}
	a.msgs.Add(int64(len(sends)))
	a.wireBytes.Add(total)
	a.histBytes.Add(hist)
	atomicMax(&a.peakHist, int64(rsm.StatsOf(ns).HistEntries))
	return ns, sends
}

// historyFree strips the history freight from a slot-wrapped payload —
// inline Hist clones in owned mode, the whole (base, delta) frame in
// shared mode — returning nil for payloads that carry none.
func historyFree(pl model.Payload) model.Payload {
	sp, ok := pl.(rsm.SlotPayload)
	if !ok {
		return nil
	}
	switch inner := sp.Inner.(type) {
	case consensus.LeadPayload:
		inner.Hist = nil
		sp.Inner = inner
	case consensus.ProposalPayload:
		inner.Hist = nil
		sp.Inner = inner
	case consensus.LeadDeltaPayload:
		sp.Inner = inner.Plain()
	case consensus.ProposalDeltaPayload:
		sp.Inner = inner.Plain()
	default:
		return nil
	}
	return sp
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

var e17Spec = &Spec{
	ID:    "E17",
	Title: "Long-log scale: bytes-on-wire and live state, owned vs shared histories",
	Claim: "§1 motivation, run long enough to hurt: with retirement stalled " +
		"by a crash, owned mode holds one full history copy per live slot " +
		"instance (live state grows with log length) and re-ships full " +
		"histories in every LEAD/PROP; the shared versioned store holds one " +
		"copy and ships O(delta) frames, so live state stays flat and " +
		"incremental deltas dominate snapshot fallbacks.",
	Columns: []string{"mode", "slots", "runs", "ok", "msgs/slot", "hist bytes/msg", "peak hist entries", "delta hits", "fallbacks"},
	// Portable: the unit drives the substrate interface directly (with
	// StopWhenDecided — logState implements model.Decider), so it runs
	// unchanged on the async and tcp backends.
	Portable: true,
	Configs: func(sc Scale) []Config {
		var cfgs []Config
		for _, mode := range []string{"owned", "shared"} {
			for _, slots := range e17SlotsGrid {
				cfgs = append(cfgs, seedRange(Config{Label: mode, N: e17N, Arg: slots}, sc.Seeds)...)
			}
		}
		return cfgs
	},
	Unit: func(sc Scale, cfg Config, _ *rand.Rand) UnitResult {
		u := UnitResult{Counted: true}
		slots, seed := cfg.Arg, cfg.Seed
		sub, err := sc.substrate()
		if err != nil {
			u.failf("%v", err)
			return u
		}
		pattern := model.NewFailurePattern(e17N)
		// One early crash stalls progress gossip at the crashed process's
		// last slot: instances above it never retire, so owned mode pays
		// one full history copy per unretired instance — the live-state
		// footprint that grows with log length.
		pattern.SetCrash(model.ProcessID(e17N-1), 30)
		cmds := make([][]int, e17N)
		for p := range cmds {
			cmds[p] = []int{100*p + 1}
		}
		reg := obs.NewRegistry()
		var aut model.Automaton
		var hist model.History
		if cfg.Label == "shared" {
			sampler := rsm.SamplerForLog(pattern, 80, seed)
			aut = rsm.NewSharedLog(cmds, slots).WithMetrics(reg).WithSampler(sampler)
			hist = sampler
		} else {
			aut = rsm.NewLog(cmds, slots).WithMetrics(reg)
			hist = rsm.PairForLog(pattern, 80, seed)
		}
		meter := &e17Meter{Automaton: aut}
		budget := min(sc.MaxSteps*8, 400000)
		if !sub.Deterministic() && budget < 3_000_000 {
			// The concurrent substrates' shared clock ticks on idle spins
			// too (see runConsensus); StopWhenDecided keeps real cost low.
			budget = 3_000_000
		}
		res, err := sub.Run(context.Background(), meter, hist, pattern, substrate.Options{
			Seed:            seed,
			MaxSteps:        budget,
			StopWhenDecided: true,
			Bus:             sc.Bus,
			Metrics:         sc.Metrics,
		})
		if err != nil || !res.Decided {
			u.failf("%s slots=%d seed=%d: err=%v filled=%v", cfg.Label, slots, seed, err, res != nil && res.Decided)
			return u
		}
		var ref []int
		agree := true
		pattern.Correct().ForEach(func(p model.ProcessID) {
			entries := res.Config.States[p].(rsm.LogHolder).Entries()
			if ref == nil {
				ref = entries
				return
			}
			if len(entries) != len(ref) {
				agree = false
				return
			}
			for i := range ref {
				if entries[i] != ref[i] {
					agree = false
				}
			}
		})
		if !agree {
			u.failf("%s slots=%d seed=%d: correct logs diverged", cfg.Label, slots, seed)
			return u
		}
		hits := int(reg.Counter("rsm.hist.delta_hits").Value())
		falls := int(reg.Counter("rsm.hist.full_fallbacks").Value())
		gaps := int(reg.Counter("rsm.hist.delta_gaps").Value())
		if gaps != 0 {
			u.failf("%s slots=%d seed=%d: %d delta gaps on a FIFO substrate", cfg.Label, slots, seed, gaps)
			return u
		}
		u.OK = true
		u.Add("msgs", int(meter.msgs.Load()))
		u.Add("wire", int(meter.wireBytes.Load()))
		u.Add("histwire", int(meter.histBytes.Load()))
		u.Add("hist", int(meter.peakHist.Load()))
		u.Add("hits", hits)
		u.Add("falls", falls)
		// Fold the per-unit registry into the run-wide metrics registry
		// (commutative adds/maxes only, so dumps stay worker-count-free).
		if sc.Metrics != nil {
			sc.Metrics.Counter("rsm.hist.delta_hits").Add(int64(hits))
			sc.Metrics.Counter("rsm.hist.full_fallbacks").Add(int64(falls))
			sc.Metrics.Counter("rsm.hist.delta_gaps").Add(int64(gaps))
			sc.Metrics.Gauge("rsm.hist.store_bytes").Max(reg.Gauge("rsm.hist.store_bytes").Value())
			sc.Metrics.Gauge("rsm.hist.store_entries").Max(reg.Gauge("rsm.hist.store_entries").Value())
		}
		return u
	},
	Row: func(_ Scale, g Group) []string {
		slots := g.Key.Arg
		return []string{g.Key.Label, itoa(slots), itoa(g.Runs()), itoa(g.OKs()),
			avg(g.Sum("msgs")/slots, g.OKs()), avg(g.Sum("histwire"), g.Sum("msgs")),
			g.AvgOverOK("hist"), g.AvgOverOK("hits"), g.AvgOverOK("falls")}
	},
	Finalize: func(sc Scale, t *Table, gs []Group) {
		// Per-(mode, slots) aggregates: history bytes per message and the
		// high-water live-state entry count.
		perMsg := map[string]map[int]float64{"owned": {}, "shared": {}}
		peak := map[string]map[int]float64{"owned": {}, "shared": {}}
		var hits, falls int
		for _, g := range gs {
			if g.OKs() == 0 {
				t.Pass = false
				return
			}
			perMsg[g.Key.Label][g.Key.Arg] = float64(g.Sum("histwire")) / float64(g.Sum("msgs"))
			peak[g.Key.Label][g.Key.Arg] = float64(g.Sum("hist")) / float64(g.OKs())
			if g.Key.Label == "shared" {
				hits += g.Sum("hits")
				falls += g.Sum("falls")
			}
		}
		long := e17SlotsGrid[len(e17SlotsGrid)-1]
		short := e17SlotsGrid[0]
		t.Notes = append(t.Notes,
			fmt.Sprintf("history freight at %d slots: owned %.1f bytes/msg vs shared %.1f bytes/msg (delta frames)",
				long, perMsg["owned"][long], perMsg["shared"][long]),
			fmt.Sprintf("peak live-state entries, %d→%d slots: owned %.0f→%.0f (one history copy per unretired instance), shared %.0f→%.0f (one store)",
				short, long, peak["owned"][short], peak["owned"][long], peak["shared"][short], peak["shared"][long]),
			fmt.Sprintf("shared transport: %d incremental delta applications vs %d full-snapshot fallbacks", hits, falls))
		if perMsg["owned"][long] < 3*perMsg["shared"][long] {
			t.Pass = false
			t.Notes = append(t.Notes, "FAIL: owned history freight per message should be at least 3x shared's on long logs")
		}
		if peak["owned"][long] < 2*peak["owned"][short] {
			t.Pass = false
			t.Notes = append(t.Notes, "FAIL: owned live state should grow with log length under stalled retirement")
		}
		if peak["shared"][long] > 1.5*peak["shared"][short] {
			t.Pass = false
			t.Notes = append(t.Notes, "FAIL: shared live state should stay flat as the log grows")
		}
		if hits <= 10*falls {
			t.Pass = false
			t.Notes = append(t.Notes, "FAIL: incremental deltas should dominate snapshot fallbacks")
		}
	},
}
