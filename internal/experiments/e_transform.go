package experiments

import (
	"fmt"
	"math/rand"

	"nuconsensus/internal/check"
	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/trace"
	"nuconsensus/internal/transform"
)

// runTransformer drives a transformation automaton and returns the recorded
// output samples plus their stabilization time.
func runTransformer(aut model.Automaton, pattern *model.FailurePattern, hist model.History, seed int64, maxSteps int) ([]trace.Sample, model.Time, model.Time, error) {
	rec := &trace.Recorder{RecordSamples: true}
	res, err := sim.Run(sim.Exec{
		Automaton: aut,
		Pattern:   pattern,
		History:   hist,
		Scheduler: sim.NewFairScheduler(seed, 0.8, 3),
		MaxSteps:  maxSteps,
		Recorder:  rec,
	})
	if err != nil {
		return nil, 0, 0, err
	}
	horizon, herr := check.LastCompletenessViolation(rec.Outputs, pattern)
	if herr != nil {
		return nil, 0, 0, herr
	}
	return rec.Outputs, horizon, res.Ticks, nil
}

// extractionBudget scales the step budget of DAG-extraction runs with n:
// the canonical path must be long enough for the simulated target algorithm
// to decide several times over, and decisions take more simulated steps at
// larger n.
func extractionBudget(n int) int { return 300 + 200*n }

// e3Spec exercises Theorem 6.7: T_{Σν→Σν+} emits a valid Σν+ history — all
// four properties — when fed adversarial Σν histories (faulty modules
// emitting junk quorums).
var e3Spec = &Spec{
	ID:    "E3",
	Title: "T_{Σν→Σν+} transforms Σν to Σν+",
	Claim: "Theorem 6.7: in any environment, the DAG-based transformer's output " +
		"satisfies nonuniform intersection, completeness, self-inclusion and " +
		"conditional nonintersection.",
	Columns: []string{"n", "f", "runs", "ok", "avg stabilization t"},
	Configs: func(sc Scale) []Config {
		seeds := min(sc.Seeds, 3)
		var cfgs []Config
		for _, n := range []int{3, 4, 5, 6} {
			for _, f := range []int{0, 1, n - 1} {
				cfgs = append(cfgs, seedRange(Config{N: n, F: f}, seeds)...)
			}
		}
		return cfgs
	},
	Unit: func(_ Scale, cfg Config, rng *rand.Rand) UnitResult {
		u := UnitResult{Counted: true}
		n, f := cfg.N, cfg.F
		pattern := randomPattern(n, f, 50, rng)
		hist := fd.NewSigmaNu(pattern, 90, cfg.Seed)
		aut := transform.NewSigmaNuPlusTransformer(n)
		outs, stab, end, err := runTransformer(aut, pattern, hist, cfg.Seed, 500)
		switch {
		case err != nil:
			u.failf("n=%d f=%d seed=%d: %v", n, f, cfg.Seed, err)
		case stab > end*4/5:
			u.failf("n=%d f=%d seed=%d: never stabilized", n, f, cfg.Seed)
		case check.SigmaNuPlus(outs, pattern, stab) != nil:
			u.failf("n=%d f=%d seed=%d: %v", n, f, cfg.Seed, check.SigmaNuPlus(outs, pattern, stab))
		default:
			u.OK = true
			if stab > 0 {
				u.Add("stab", int(stab))
			}
		}
		return u
	},
	Row: func(_ Scale, g Group) []string {
		return []string{itoa(g.Key.N), itoa(g.Key.F), itoa(g.Runs()), itoa(g.OKs()),
			g.AvgOverOK("stab")}
	},
}

// e4Combo is one (D, A) pair exercised by E4.
type e4Combo struct {
	dName, aName string
	hist         func(*model.FailurePattern, int64) model.History
	target       func([]int) model.Automaton
}

var e4Combos = []e4Combo{
	{
		dName: "(Ω,Σν+)", aName: "A_nuc",
		hist: func(p *model.FailurePattern, seed int64) model.History {
			return fd.PairHistory{First: fd.NewOmega(p, 40, seed), Second: fd.NewSigmaNuPlus(p, 40, seed)}
		},
		target: func(props []int) model.Automaton { return consensus.NewANuc(props) },
	},
	{
		dName: "(Ω,Σ)", aName: "MR-Σ",
		hist: func(p *model.FailurePattern, seed int64) model.History {
			return fd.PairHistory{First: fd.NewOmega(p, 40, seed), Second: fd.NewSigma(p, 40, seed)}
		},
		target: func(props []int) model.Automaton { return consensus.NewMRSigma(props) },
	},
}

// e4Spec exercises Theorem 5.4: T_{D→Σν} emits a valid Σν history for two
// different detectors D that solve nonuniform consensus — D = (Ω, Σν+)
// with A = A_nuc, and D = (Ω, Σ) with A = MR-Σ.
var e4Spec = &Spec{
	ID:    "E4",
	Title: "T_{D→Σν} extracts Σν from any D that solves nonuniform consensus",
	Claim: "Theorem 5.4: the DAG/simulation extraction emits quorums satisfying " +
		"nonuniform intersection and completeness, for any (D, A) pair.",
	Columns: []string{"D", "A", "n", "f", "runs", "ok", "avg stabilization t"},
	Configs: func(sc Scale) []Config {
		seeds := min(sc.Seeds, 2)
		var cfgs []Config
		for i, cb := range e4Combos {
			for _, n := range []int{3, 4} {
				for _, f := range []int{1, n - 1} {
					cfgs = append(cfgs, seedRange(Config{Label: cb.dName, Arg: i, N: n, F: f}, seeds)...)
				}
			}
		}
		return cfgs
	},
	Unit: func(_ Scale, cfg Config, rng *rand.Rand) UnitResult {
		u := UnitResult{Counted: true}
		cb := e4Combos[cfg.Arg]
		n, f := cfg.N, cfg.F
		pattern := randomPattern(n, f, 40, rng)
		aut := transform.NewSigmaNuExtractor(n, cb.target, 1)
		outs, stab, end, err := runTransformer(aut, pattern, cb.hist(pattern, cfg.Seed), cfg.Seed, extractionBudget(n))
		switch {
		case err != nil:
			u.failf("%s n=%d f=%d seed=%d: %v", cb.dName, n, f, cfg.Seed, err)
		case stab > end*4/5:
			u.failf("%s n=%d f=%d seed=%d: never stabilized", cb.dName, n, f, cfg.Seed)
		case check.SigmaNu(outs, pattern, stab) != nil:
			u.failf("%s n=%d f=%d seed=%d: %v", cb.dName, n, f, cfg.Seed, check.SigmaNu(outs, pattern, stab))
		default:
			u.OK = true
			u.Add("stab", int(stab))
		}
		return u
	},
	Row: func(_ Scale, g Group) []string {
		cb := e4Combos[g.Key.Arg]
		return []string{cb.dName, cb.aName, itoa(g.Key.N), itoa(g.Key.F),
			itoa(g.Runs()), itoa(g.OKs()), g.AvgOverOK("stab")}
	},
}

// e5Spec exercises Theorem 5.8: the same extraction algorithm, run with a D
// that solves uniform consensus, emits a valid Σ history (uniform
// intersection over all processes' outputs, not just correct ones).
var e5Spec = &Spec{
	ID:    "E5",
	Title: "T_{D→Σν} extracts Σ when D solves uniform consensus",
	Claim: "Theorem 5.8: with D = (Ω, Σ) and A = MR-Σ (uniform consensus), the " +
		"extractor's outputs satisfy Σ's uniform intersection and completeness.",
	Columns: []string{"n", "f", "runs", "ok", "avg stabilization t"},
	Configs: func(sc Scale) []Config {
		seeds := min(sc.Seeds, 2)
		var cfgs []Config
		for _, n := range []int{3, 4} {
			for _, f := range []int{1, n - 1} {
				cfgs = append(cfgs, seedRange(Config{N: n, F: f}, seeds)...)
			}
		}
		return cfgs
	},
	Unit: func(_ Scale, cfg Config, rng *rand.Rand) UnitResult {
		u := UnitResult{Counted: true}
		n, f := cfg.N, cfg.F
		pattern := randomPattern(n, f, 40, rng)
		hist := fd.PairHistory{First: fd.NewOmega(pattern, 40, cfg.Seed), Second: fd.NewSigma(pattern, 40, cfg.Seed)}
		aut := transform.NewSigmaNuExtractor(n, func(props []int) model.Automaton { return consensus.NewMRSigma(props) }, 1)
		outs, stab, end, err := runTransformer(aut, pattern, hist, cfg.Seed, extractionBudget(n))
		switch {
		case err != nil:
			u.failf("n=%d f=%d seed=%d: %v", n, f, cfg.Seed, err)
		case stab > end*4/5:
			u.failf("n=%d f=%d seed=%d: never stabilized", n, f, cfg.Seed)
		case check.Sigma(outs, pattern, stab) != nil:
			u.failf("n=%d f=%d seed=%d: %v", n, f, cfg.Seed, check.Sigma(outs, pattern, stab))
		default:
			u.OK = true
			if stab > 0 {
				u.Add("stab", int(stab))
			}
		}
		return u
	},
	Row: func(_ Scale, g Group) []string {
		return []string{itoa(g.Key.N), itoa(g.Key.F), itoa(g.Runs()), itoa(g.OKs()),
			g.AvgOverOK("stab")}
	},
}

// q3Spec measures extraction convergence: how long until T_{D→Σν}'s emitted
// quorums contain only correct processes, and how large the sample DAG and
// the canonical path grow.
var q3Spec = &Spec{
	ID:    "Q3",
	Title: "Extraction convergence and DAG growth vs n",
	Claim: "§4–5: the emulation stabilizes once the fresh subgraph contains " +
		"deciding simulated schedules of correct processes only; cost grows " +
		"quadratically with the sample DAG.",
	Columns: []string{"n", "f", "first correct-only output t", "stabilization t", "steps run"},
	Configs: func(_ Scale) []Config {
		var cfgs []Config
		for _, n := range []int{3, 4, 5} {
			cfgs = append(cfgs, Config{N: n, F: 1, Seed: 1})
		}
		return cfgs
	},
	Unit: func(_ Scale, cfg Config, rng *rand.Rand) UnitResult {
		u := UnitResult{Counted: true}
		n, f := cfg.N, cfg.F
		pattern := randomPattern(n, f, 40, rng)
		hist := fd.PairHistory{First: fd.NewOmega(pattern, 40, cfg.Seed), Second: fd.NewSigmaNuPlus(pattern, 40, cfg.Seed)}
		aut := transform.NewSigmaNuExtractor(n, func(props []int) model.Automaton { return consensus.NewANuc(props) }, 1)
		// Q3 charts convergence itself, so it gets a longer budget than the
		// pass/fail extraction checks.
		outs, stab, end, err := runTransformer(aut, pattern, hist, cfg.Seed, 400+300*n)
		if err != nil {
			u.failf("n=%d: %v", n, err)
			return u
		}
		firstCorrect := model.Time(-1)
		correct := pattern.Correct()
		for _, s := range outs {
			q, _ := fd.QuorumOf(s.Val)
			if correct.Has(s.P) && q.SubsetOf(correct) {
				firstCorrect = s.T
				break
			}
		}
		if firstCorrect < 0 || stab > end*4/5 {
			u.Fail = true
		} else {
			u.OK = true
		}
		u.Cells = []string{itoa(n), itoa(f),
			fmt.Sprintf("%d", firstCorrect), fmt.Sprintf("%d", stab), fmt.Sprintf("%d", end)}
		return u
	},
}
