package experiments

import (
	"fmt"
	"math/rand"

	"nuconsensus/internal/check"
	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/trace"
	"nuconsensus/internal/transform"
)

// runTransformer drives a transformation automaton and returns the recorded
// output samples plus their stabilization time.
func runTransformer(aut model.Automaton, pattern *model.FailurePattern, hist model.History, seed int64, maxSteps int) ([]trace.Sample, model.Time, model.Time, error) {
	rec := &trace.Recorder{}
	res, err := sim.Run(sim.Options{
		Automaton: aut,
		Pattern:   pattern,
		History:   hist,
		Scheduler: sim.NewFairScheduler(seed, 0.8, 3),
		MaxSteps:  maxSteps,
		Recorder:  rec,
	})
	if err != nil {
		return nil, 0, 0, err
	}
	horizon, herr := check.LastCompletenessViolation(rec.Outputs, pattern)
	if herr != nil {
		return nil, 0, 0, herr
	}
	return rec.Outputs, horizon, res.Time, nil
}

// extractionBudget scales the step budget of DAG-extraction runs with n:
// the canonical path must be long enough for the simulated target algorithm
// to decide several times over, and decisions take more simulated steps at
// larger n.
func extractionBudget(n int) int { return 300 + 200*n }

// E3 exercises Theorem 6.7: T_{Σν→Σν+} emits a valid Σν+ history — all
// four properties — when fed adversarial Σν histories (faulty modules
// emitting junk quorums).
func E3(sc Scale) Table {
	t := Table{
		ID:    "E3",
		Title: "T_{Σν→Σν+} transforms Σν to Σν+",
		Claim: "Theorem 6.7: in any environment, the DAG-based transformer's output " +
			"satisfies nonuniform intersection, completeness, self-inclusion and " +
			"conditional nonintersection.",
		Columns: []string{"n", "f", "runs", "ok", "avg stabilization t"},
		Pass:    true,
	}
	seeds := min(sc.Seeds, 3)
	for _, n := range []int{3, 4, 5, 6} {
		for _, f := range []int{0, 1, n - 1} {
			var runs, ok int
			var stabSum model.Time
			for seed := int64(1); seed <= int64(seeds); seed++ {
				rng := rand.New(rand.NewSource(seed*5000 + int64(n*10+f)))
				pattern := randomPattern(n, f, 50, rng)
				hist := fd.NewSigmaNu(pattern, 90, seed)
				aut := transform.NewSigmaNuPlusTransformer(n)
				outs, stab, end, err := runTransformer(aut, pattern, hist, seed, 500)
				runs++
				switch {
				case err != nil:
					t.Pass = false
					t.Notes = append(t.Notes, fmt.Sprintf("n=%d f=%d seed=%d: %v", n, f, seed, err))
				case stab > end*4/5:
					t.Pass = false
					t.Notes = append(t.Notes, fmt.Sprintf("n=%d f=%d seed=%d: never stabilized", n, f, seed))
				case check.SigmaNuPlus(outs, pattern, stab) != nil:
					t.Pass = false
					t.Notes = append(t.Notes, fmt.Sprintf("n=%d f=%d seed=%d: %v", n, f, seed, check.SigmaNuPlus(outs, pattern, stab)))
				default:
					ok++
					if stab > 0 {
						stabSum += stab
					}
				}
			}
			t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", f), fmt.Sprintf("%d", runs),
				fmt.Sprintf("%d", ok), avg(int(stabSum), ok))
		}
	}
	return t
}

// E4 exercises Theorem 5.4: T_{D→Σν} emits a valid Σν history for two
// different detectors D that solve nonuniform consensus — D = (Ω, Σν+)
// with A = A_nuc, and D = (Ω, Σ) with A = MR-Σ.
func E4(sc Scale) Table {
	t := Table{
		ID:    "E4",
		Title: "T_{D→Σν} extracts Σν from any D that solves nonuniform consensus",
		Claim: "Theorem 5.4: the DAG/simulation extraction emits quorums satisfying " +
			"nonuniform intersection and completeness, for any (D, A) pair.",
		Columns: []string{"D", "A", "n", "f", "runs", "ok", "avg stabilization t"},
		Pass:    true,
	}
	type combo struct {
		dName, aName string
		hist         func(*model.FailurePattern, int64) model.History
		target       func([]int) model.Automaton
	}
	combos := []combo{
		{
			dName: "(Ω,Σν+)", aName: "A_nuc",
			hist: func(p *model.FailurePattern, seed int64) model.History {
				return fd.PairHistory{First: fd.NewOmega(p, 40, seed), Second: fd.NewSigmaNuPlus(p, 40, seed)}
			},
			target: func(props []int) model.Automaton { return consensus.NewANuc(props) },
		},
		{
			dName: "(Ω,Σ)", aName: "MR-Σ",
			hist: func(p *model.FailurePattern, seed int64) model.History {
				return fd.PairHistory{First: fd.NewOmega(p, 40, seed), Second: fd.NewSigma(p, 40, seed)}
			},
			target: func(props []int) model.Automaton { return consensus.NewMRSigma(props) },
		},
	}
	seeds := min(sc.Seeds, 2)
	for _, cb := range combos {
		for _, n := range []int{3, 4} {
			for _, f := range []int{1, n - 1} {
				var runs, ok int
				var stabSum model.Time
				for seed := int64(1); seed <= int64(seeds); seed++ {
					rng := rand.New(rand.NewSource(seed*6000 + int64(n*10+f)))
					pattern := randomPattern(n, f, 40, rng)
					aut := transform.NewSigmaNuExtractor(n, cb.target, 1)
					outs, stab, end, err := runTransformer(aut, pattern, cb.hist(pattern, seed), seed, extractionBudget(n))
					runs++
					switch {
					case err != nil:
						t.Pass = false
						t.Notes = append(t.Notes, fmt.Sprintf("%s n=%d f=%d seed=%d: %v", cb.dName, n, f, seed, err))
					case stab > end*4/5:
						t.Pass = false
						t.Notes = append(t.Notes, fmt.Sprintf("%s n=%d f=%d seed=%d: never stabilized", cb.dName, n, f, seed))
					case check.SigmaNu(outs, pattern, stab) != nil:
						t.Pass = false
						t.Notes = append(t.Notes, fmt.Sprintf("%s n=%d f=%d seed=%d: %v", cb.dName, n, f, seed, check.SigmaNu(outs, pattern, stab)))
					default:
						ok++
						stabSum += stab
					}
				}
				t.AddRow(cb.dName, cb.aName, fmt.Sprintf("%d", n), fmt.Sprintf("%d", f),
					fmt.Sprintf("%d", runs), fmt.Sprintf("%d", ok), avg(int(stabSum), ok))
			}
		}
	}
	return t
}

// E5 exercises Theorem 5.8: the same extraction algorithm, run with a D
// that solves uniform consensus, emits a valid Σ history (uniform
// intersection over all processes' outputs, not just correct ones).
func E5(sc Scale) Table {
	t := Table{
		ID:    "E5",
		Title: "T_{D→Σν} extracts Σ when D solves uniform consensus",
		Claim: "Theorem 5.8: with D = (Ω, Σ) and A = MR-Σ (uniform consensus), the " +
			"extractor's outputs satisfy Σ's uniform intersection and completeness.",
		Columns: []string{"n", "f", "runs", "ok", "avg stabilization t"},
		Pass:    true,
	}
	seeds := min(sc.Seeds, 2)
	for _, n := range []int{3, 4} {
		for _, f := range []int{1, n - 1} {
			var runs, ok int
			var stabSum model.Time
			for seed := int64(1); seed <= int64(seeds); seed++ {
				rng := rand.New(rand.NewSource(seed*7000 + int64(n*10+f)))
				pattern := randomPattern(n, f, 40, rng)
				hist := fd.PairHistory{First: fd.NewOmega(pattern, 40, seed), Second: fd.NewSigma(pattern, 40, seed)}
				aut := transform.NewSigmaNuExtractor(n, func(props []int) model.Automaton { return consensus.NewMRSigma(props) }, 1)
				outs, stab, end, err := runTransformer(aut, pattern, hist, seed, extractionBudget(n))
				runs++
				switch {
				case err != nil:
					t.Pass = false
					t.Notes = append(t.Notes, fmt.Sprintf("n=%d f=%d seed=%d: %v", n, f, seed, err))
				case stab > end*4/5:
					t.Pass = false
					t.Notes = append(t.Notes, fmt.Sprintf("n=%d f=%d seed=%d: never stabilized", n, f, seed))
				case check.Sigma(outs, pattern, stab) != nil:
					t.Pass = false
					t.Notes = append(t.Notes, fmt.Sprintf("n=%d f=%d seed=%d: %v", n, f, seed, check.Sigma(outs, pattern, stab)))
				default:
					ok++
					if stab > 0 {
						stabSum += stab
					}
				}
			}
			t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", f), fmt.Sprintf("%d", runs),
				fmt.Sprintf("%d", ok), avg(int(stabSum), ok))
		}
	}
	return t
}

// Q3 measures extraction convergence: how long until T_{D→Σν}'s emitted
// quorums contain only correct processes, and how large the sample DAG and
// the canonical path grow.
func Q3(sc Scale) Table {
	t := Table{
		ID:    "Q3",
		Title: "Extraction convergence and DAG growth vs n",
		Claim: "§4–5: the emulation stabilizes once the fresh subgraph contains " +
			"deciding simulated schedules of correct processes only; cost grows " +
			"quadratically with the sample DAG.",
		Columns: []string{"n", "f", "first correct-only output t", "stabilization t", "steps run"},
		Pass:    true,
	}
	for _, n := range []int{3, 4, 5} {
		f := 1
		seed := int64(1)
		rng := rand.New(rand.NewSource(seed*8000 + int64(n)))
		pattern := randomPattern(n, f, 40, rng)
		hist := fd.PairHistory{First: fd.NewOmega(pattern, 40, seed), Second: fd.NewSigmaNuPlus(pattern, 40, seed)}
		aut := transform.NewSigmaNuExtractor(n, func(props []int) model.Automaton { return consensus.NewANuc(props) }, 1)
		// Q3 charts convergence itself, so it gets a longer budget than the
		// pass/fail extraction checks.
		outs, stab, end, err := runTransformer(aut, pattern, hist, seed, 400+300*n)
		if err != nil {
			t.Pass = false
			t.Notes = append(t.Notes, fmt.Sprintf("n=%d: %v", n, err))
			continue
		}
		firstCorrect := model.Time(-1)
		correct := pattern.Correct()
		for _, s := range outs {
			q, _ := fd.QuorumOf(s.Val)
			if correct.Has(s.P) && q.SubsetOf(correct) {
				firstCorrect = s.T
				break
			}
		}
		if firstCorrect < 0 || stab > end*4/5 {
			t.Pass = false
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", f),
			fmt.Sprintf("%d", firstCorrect), fmt.Sprintf("%d", stab), fmt.Sprintf("%d", end))
	}
	return t
}
