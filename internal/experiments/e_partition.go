package experiments

import (
	"fmt"
	"math/rand"

	"nuconsensus/internal/check"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/trace"
	"nuconsensus/internal/transform"
)

// PartitionOutcome is the result of staging the Theorem 7.1 (ONLY-IF)
// partition argument against one candidate transformation algorithm.
type PartitionOutcome struct {
	Candidate string
	N         int
	T         int
	AQuorum   model.ProcessSet // A' ⊆ A output in run R (and R′, by indistinguishability)
	BQuorum   model.ProcessSet // B' ⊆ B output in run R′
	Tau       model.Time       // time τ at which A' was output in R
	Disjoint  bool             // A' ∩ B' = ∅ — the Σ intersection violation
	Err       error
}

// RunPartition stages the two runs R and R′ of Theorem 7.1's ONLY-IF proof
// against a candidate algorithm that purports to transform (Ω, Σν) to Σ in
// E_t with t ≥ n/2:
//
//	R:  all of B crashes at time 0; every process's (Ω, Σν) module outputs
//	    (min A, A) in A and (min B, B) in B — a legal Σν history because
//	    quorums at *correct* processes (all in A) intersect. Completeness
//	    forces the candidate to eventually output some A' ⊆ A at a ∈ A, at
//	    a time τ.
//	R′: identical prefix for A (B's messages delayed past τ; B takes no
//	    steps before τ), then A crashes at τ+1 and B runs alone. A cannot
//	    distinguish R′ from R through time τ, so a outputs the same A' at
//	    τ; completeness then forces some B' ⊆ B at b ∈ B. A' ∩ B' = ∅
//	    violates Σ's intersection — no candidate can win.
func RunPartition(name string, candidate model.Automaton, n, tFaults int) PartitionOutcome {
	out := PartitionOutcome{Candidate: name, N: n, T: tFaults}
	if n%2 != 0 || tFaults < n/2 {
		out.Err = fmt.Errorf("experiments: partition needs even n and t ≥ n/2 (got n=%d t=%d)", n, tFaults)
		return out
	}
	sideA := model.FullSet(n / 2)
	sideB := model.FullSet(n).Minus(sideA)
	a, b := sideA.Min(), sideB.Min()

	// The hand-crafted (Ω, Σν) history of the proof, identical in R and R′.
	vals := make([]model.FDValue, n)
	for p := 0; p < n; p++ {
		side, leader := sideA, a
		if sideB.Has(model.ProcessID(p)) {
			side, leader = sideB, b
		}
		vals[p] = fd.PairValue{
			First:  fd.LeaderValue{Leader: leader},
			Second: fd.QuorumValue{Quorum: side},
		}
	}
	hist := fd.ConstPerProcess{Values: vals}

	// Run R: B crashes before taking a step.
	patternR := model.NewFailurePattern(n)
	sideB.ForEach(func(p model.ProcessID) { patternR.SetCrash(p, 0) })
	stopAtSubsetOutput := func(p model.ProcessID, side model.ProcessSet) func(*model.Configuration, model.Time) bool {
		return func(c *model.Configuration, _ model.Time) bool {
			o, ok := c.States[p].(model.FDOutput)
			if !ok {
				return false
			}
			q, ok := fd.QuorumOf(o.EmulatedOutput())
			return ok && q.SubsetOf(side)
		}
	}
	resR, err := sim.Run(sim.Exec{
		Automaton:    candidate,
		Pattern:      patternR,
		History:      hist,
		Scheduler:    sim.NewFairScheduler(1, 0.9, 3),
		MaxSteps:     4000,
		StopWhen:     stopAtSubsetOutput(a, sideA),
		KeepSchedule: true,
	})
	if err != nil {
		out.Err = fmt.Errorf("run R: %w", err)
		return out
	}
	if !resR.Stopped {
		out.Err = fmt.Errorf("run R: candidate never output a quorum ⊆ A at %s — completeness of Σ violated already", a)
		return out
	}
	qa, _ := fd.QuorumOf(resR.Config.States[a].(model.FDOutput).EmulatedOutput())
	out.AQuorum = qa
	out.Tau = resR.Ticks

	// Run R′: replay R's schedule (A-only steps; B silent), then crash A at
	// τ+1 and let B run alone.
	script := make([]sim.Choice, len(resR.Schedule))
	for i, e := range resR.Schedule {
		script[i] = sim.Choice{P: e.P, Deliver: e.M != nil}
	}
	patternRp := model.NewFailurePattern(n)
	sideA.ForEach(func(p model.ProcessID) { patternRp.SetCrash(p, out.Tau+1) })
	resRp, err := sim.Run(sim.Exec{
		Automaton: candidate,
		Pattern:   patternRp,
		History:   hist,
		Scheduler: &sim.ScriptedScheduler{Script: script, Fallback: sim.NewFairScheduler(2, 0.9, 3)},
		MaxSteps:  8000,
		StopWhen:  stopAtSubsetOutput(b, sideB),
	})
	if err != nil {
		out.Err = fmt.Errorf("run R′: %w", err)
		return out
	}
	if !resRp.Stopped {
		out.Err = fmt.Errorf("run R′: candidate never output a quorum ⊆ B at %s — completeness of Σ violated already", b)
		return out
	}
	qb, _ := fd.QuorumOf(resRp.Config.States[b].(model.FDOutput).EmulatedOutput())
	out.BQuorum = qb
	out.Disjoint = !qa.Intersects(qb)
	return out
}

// e7Candidates are the two natural (Ω, Σν)→Σ candidates E7 defeats.
var e7Candidates = []struct {
	name string
	aut  func(n, t int) model.Automaton
}{
	{"(n−t)-threshold", func(n, t int) model.Automaton { return transform.NewThresholdQuorum(n, t) }},
	{"Σν-passthrough", func(n, t int) model.Automaton { return transform.NewPassthroughQuorum(n) }},
}

// e7Spec exercises Theorem 7.1 (ONLY-IF): for t ≥ n/2 there is no algorithm
// transforming (Ω, Σν) to Σ. We run the proof's partition argument against
// two natural candidates and exhibit, for each, a pair of runs whose
// emitted quorums violate Σ's intersection property.
var e7Spec = &Spec{
	ID:    "E7",
	Title: "Partition argument: (Ω, Σν) cannot be transformed to Σ when t ≥ n/2",
	Claim: "Theorem 7.1 (ONLY-IF): runs R and R′ force any candidate to output " +
		"disjoint quorums A' ⊆ A and B' ⊆ B, violating Σ's intersection.",
	Columns: []string{"candidate", "n", "t", "A' (run R, at τ)", "B' (run R′)", "disjoint?"},
	Configs: func(_ Scale) []Config {
		var cfgs []Config
		for _, n := range []int{4, 6} {
			for i := range e7Candidates {
				cfgs = append(cfgs, Config{Label: e7Candidates[i].name, Arg: i, N: n, F: n / 2})
			}
		}
		return cfgs
	},
	Unit: func(_ Scale, cfg Config, _ *rand.Rand) UnitResult {
		u := UnitResult{Counted: true}
		n, tf := cfg.N, cfg.F
		c := e7Candidates[cfg.Arg]
		o := RunPartition(c.name, c.aut(n, tf), n, tf)
		if o.Err != nil {
			u.failf("%s n=%d: %v", c.name, n, o.Err)
			return u
		}
		if !o.Disjoint {
			u.Fail = true
		} else {
			u.OK = true
		}
		u.Cells = []string{c.name, itoa(n), itoa(tf),
			fmt.Sprintf("%s @t=%d", o.AQuorum, o.Tau), o.BQuorum.String(),
			fmt.Sprintf("%v", o.Disjoint)}
		return u
	},
	Finalize: func(_ Scale, t *Table, _ []Group) {
		t.Notes = append(t.Notes,
			"every candidate that satisfies completeness in both runs is forced into the intersection violation; a candidate that avoided it would have to fail completeness instead")
	},
}

// e8Spec exercises Theorem 7.1 (IF): with t < n/2, Σ is implementable from
// scratch — no failure detector at all.
var e8Spec = &Spec{
	ID:    "E8",
	Title: "From-scratch Σ in majority-correct environments",
	Claim: "Theorem 7.1 (IF): for t < n/2, the (n−t)-threshold round algorithm " +
		"implements Σ without any failure detector.",
	Columns: []string{"n", "t", "f", "runs", "ok"},
	Configs: func(sc Scale) []Config {
		var cfgs []Config
		for _, n := range []int{3, 5, 7, 9} {
			tf := (n - 1) / 2
			for _, f := range []int{0, tf} {
				cfgs = append(cfgs, seedRange(Config{N: n, F: f}, sc.Seeds)...)
			}
		}
		return cfgs
	},
	Unit: func(_ Scale, cfg Config, rng *rand.Rand) UnitResult {
		u := UnitResult{Counted: true}
		n, f := cfg.N, cfg.F
		tf := (n - 1) / 2
		pattern := randomPattern(n, f, 50, rng)
		rec := &trace.Recorder{RecordSamples: true}
		res, err := sim.Run(sim.Exec{
			Automaton: transform.NewScratchSigma(n, tf),
			Pattern:   pattern,
			History:   fd.Null,
			Scheduler: sim.NewFairScheduler(cfg.Seed, 0.8, 3),
			MaxSteps:  800,
			Recorder:  rec,
		})
		if err != nil {
			u.Fail = true
			return u
		}
		stab, herr := check.LastCompletenessViolation(rec.Outputs, pattern)
		if herr == nil && stab <= res.Ticks*4/5 && check.Sigma(rec.Outputs, pattern, stab) == nil {
			u.OK = true
		} else {
			u.failf("n=%d f=%d seed=%d: horizon=%d %v %v", n, f, cfg.Seed, stab, herr, check.Sigma(rec.Outputs, pattern, stab))
		}
		return u
	},
	Row: func(_ Scale, g Group) []string {
		return []string{itoa(g.Key.N), itoa((g.Key.N - 1) / 2), itoa(g.Key.F),
			itoa(g.Runs()), itoa(g.OKs())}
	},
}
