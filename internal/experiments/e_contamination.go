package experiments

import (
	"fmt"
	"math/rand"

	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
	"nuconsensus/internal/transform"
)

// contaminationAdversary builds the §6.3 contamination setup: a faulty
// process whose Σν module emits junk quorums (so it races ahead deciding
// alone on its own estimate) and an Ω that swings between the real leader
// and the faulty process before stabilizing, so stragglers adopt the
// faulty process's stale estimate.
type contaminationAdversary struct {
	n         int
	misleader model.ProcessID
	period    model.Time
	stabilize model.Time
}

func (a contaminationAdversary) pattern() *model.FailurePattern {
	return model.PatternFromCrashes(a.n, map[model.ProcessID]model.Time{a.misleader: a.stabilize + 40})
}

// sigmaNuHistory returns the (Ω, Σν) pair history of the adversary.
func (a contaminationAdversary) sigmaNuHistory(pattern *model.FailurePattern, seed int64) model.History {
	return fd.PairHistory{
		First: &fd.AlternatingOmega{
			Misleader: a.misleader,
			Leader:    pattern.Correct().Min(),
			Period:    a.period,
			Stabilize: a.stabilize,
			SelfLoyal: true,
		},
		Second: fd.NewSigmaNu(pattern, a.stabilize, seed),
	}
}

// sigmaNuPlusHistory is the same adversary with a Σν+ quorum component,
// for algorithms that consume Σν+ directly.
func (a contaminationAdversary) sigmaNuPlusHistory(pattern *model.FailurePattern, seed int64) model.History {
	return fd.PairHistory{
		First: &fd.AlternatingOmega{
			Misleader: a.misleader,
			Leader:    pattern.Correct().Min(),
			Period:    a.period,
			Stabilize: a.stabilize,
			SelfLoyal: true,
		},
		Second: fd.NewSigmaNuPlus(pattern, a.stabilize, seed),
	}
}

// huntSeed runs the adversary against an algorithm for one seed and records
// the outcome on u as the counters "runs", "viol" and "undec". Runs that
// error out are not counted — exactly the accounting of the old sequential
// hunt loop, just one seed at a time so the engine can fan seeds out.
func huntSeed(u *UnitResult, sc Scale, adv contaminationAdversary, build func(props []int) model.Automaton, history func(*model.FailurePattern, int64) model.History, seed int64, maxSteps int) {
	pattern := adv.pattern()
	props := make([]int, adv.n)
	props[adv.misleader] = 1 // the faulty process's divergent estimate
	r, err := runConsensus(sc, build(props), pattern, history(pattern, seed), seed, maxSteps)
	if err != nil {
		return
	}
	u.Add("runs", 1)
	if r.Outcome.NonuniformAgreement(pattern) != nil {
		u.Add("viol", 1)
	}
	if !r.Decided {
		u.Add("undec", 1)
	}
}

// e6Adversary is the fixed adversary of E6 (and the Q5 ablations).
var e6Adversary = contaminationAdversary{n: 3, misleader: 2, period: 40, stabilize: 280}

// buildNaive and buildBoostedANuc are the two contestants of E6/Q4.
func buildNaive(props []int) model.Automaton { return consensus.NewMRNaiveNu(props) }

func buildBoostedANuc(n int) func(props []int) model.Automaton {
	return func(props []int) model.Automaton {
		return transform.NewComposed(transform.NewSigmaNuPlusTransformer(n), consensus.NewANuc(props))
	}
}

// e6Spec stages the contamination scenario of §6.3: the naive Mostéfaoui–
// Raynal adaptation with Σν quorums violates nonuniform agreement under
// the adversary, while A_nuc (composed with T_{Σν→Σν+} per Theorem 6.28)
// never does on the same histories.
var e6Spec = &Spec{
	ID:    "E6",
	Title: "Contamination: naive MR+Σν violates agreement; A_nuc does not",
	Claim: "§6.3: replacing majorities by Σν quorums in MR admits contamination " +
		"(a correct process adopts a faulty process's estimate after another " +
		"correct process decided differently); A_nuc's distrust + quorum-awareness " +
		"machinery prevents it.",
	Columns: []string{"algorithm", "runs", "agreement violations", "undecided"},
	Configs: func(sc Scale) []Config {
		seeds := sc.Seeds * 10
		var cfgs []Config
		cfgs = append(cfgs, seedRange(Config{Label: "MR-naiveΣν"}, seeds)...)
		cfgs = append(cfgs, seedRange(Config{Label: "T_{Σν→Σν+}∘A_nuc"}, seeds)...)
		return cfgs
	},
	Unit: func(sc Scale, cfg Config, _ *rand.Rand) UnitResult {
		var u UnitResult
		adv := e6Adversary
		if cfg.Label == "MR-naiveΣν" {
			huntSeed(&u, sc, adv, buildNaive, adv.sigmaNuHistory, cfg.Seed, 20000)
		} else {
			huntSeed(&u, sc, adv, buildBoostedANuc(adv.n), adv.sigmaNuHistory, cfg.Seed, 8000)
		}
		return u
	},
	Row: func(_ Scale, g Group) []string {
		return []string{g.Key.Label, itoa(g.Sum("runs")), itoa(g.Sum("viol")), itoa(g.Sum("undec"))}
	},
	Finalize: func(_ Scale, t *Table, gs []Group) {
		naive, anuc := gs[0], gs[1]
		t.Pass = naive.Sum("viol") > 0 && anuc.Sum("viol") == 0 && anuc.Sum("undec") == 0
		if naive.Sum("viol") == 0 {
			t.Notes = append(t.Notes, "hunt failed to exhibit the naive algorithm's contamination — adversary too weak")
		}
	},
}

// q4Spec sweeps the adversary's Ω swing period and reports contamination
// frequency for the naive algorithm vs A_nuc.
var q4Spec = &Spec{
	ID:    "Q4",
	Title: "Contamination frequency vs adversary swing period",
	Claim: "§6.3: contamination is a scheduling/detector-timing phenomenon — its " +
		"frequency in the naive algorithm varies with the adversary, while A_nuc " +
		"stays at zero violations for every adversary.",
	Columns: []string{"Ω swing period", "naive violations/runs", "A_nuc violations/runs"},
	Configs: func(sc Scale) []Config {
		seeds := sc.Seeds * 7
		var cfgs []Config
		for _, period := range []int{15, 40, 80, 140} {
			for _, alg := range []string{"naive", "anuc"} {
				cfgs = append(cfgs, seedRange(Config{Label: alg, Arg: period}, seeds)...)
			}
		}
		return cfgs
	},
	Unit: func(sc Scale, cfg Config, _ *rand.Rand) UnitResult {
		var u UnitResult
		adv := contaminationAdversary{n: 3, misleader: 2, period: model.Time(cfg.Arg), stabilize: 280}
		if cfg.Label == "naive" {
			huntSeed(&u, sc, adv, buildNaive, adv.sigmaNuHistory, cfg.Seed, 20000)
		} else {
			huntSeed(&u, sc, adv, buildBoostedANuc(adv.n), adv.sigmaNuHistory, cfg.Seed, 8000)
			if u.Metrics["viol"] > 0 {
				u.Fail = true
			}
		}
		return u
	},
	Row: nil, // rows assembled in Finalize: one per period, spanning both groups
	Finalize: func(_ Scale, t *Table, gs []Group) {
		// Groups alternate naive/anuc per period, in config order.
		for i := 0; i+1 < len(gs); i += 2 {
			naive, anuc := gs[i], gs[i+1]
			t.AddRow(itoa(naive.Key.Arg),
				fmt.Sprintf("%d/%d", naive.Sum("viol"), naive.Sum("runs")),
				fmt.Sprintf("%d/%d", anuc.Sum("viol"), anuc.Sum("runs")))
		}
	},
}

// q5Variants are the A_nuc ablations exercised by Q5.
var q5Variants = []struct {
	name string
	ab   consensus.Ablation
}{
	{"A_nuc (full)", consensus.Ablation{}},
	{"A_nuc −distrust", consensus.Ablation{NoDistrust: true}},
	{"A_nuc −seen-gate", consensus.Ablation{NoSeenGate: true}},
	{"A_nuc −both", consensus.Ablation{NoDistrust: true, NoSeenGate: true}},
}

// q5Spec ablates A_nuc's machinery and reports which consensus property
// breaks under the contamination adversary, plus the freshness-barrier
// ablation's effect on the Σν+ transformer.
var q5Spec = &Spec{
	ID:    "Q5",
	Title: "Ablations: which defense prevents which failure",
	Claim: "§6.3's design discussion: the distrust rule blocks estimate " +
		"contamination; the seen-gate (quorum awareness, Lemma 6.24) gates " +
		"decisions on quorum visibility. Removing defenses must not be safe.",
	Columns: []string{"variant", "runs", "agreement violations", "undecided"},
	Configs: func(sc Scale) []Config {
		seeds := sc.Seeds * 10
		var cfgs []Config
		for i, v := range q5Variants {
			cfgs = append(cfgs, seedRange(Config{Label: v.name, Arg: i}, seeds)...)
		}
		return cfgs
	},
	Unit: func(sc Scale, cfg Config, _ *rand.Rand) UnitResult {
		var u UnitResult
		adv := e6Adversary
		ab := q5Variants[cfg.Arg].ab
		huntSeed(&u, sc, adv, func(props []int) model.Automaton {
			return consensus.NewANucAblated(props, ab)
		}, adv.sigmaNuPlusHistory, cfg.Seed, 20000)
		return u
	},
	Row: func(_ Scale, g Group) []string {
		return []string{g.Key.Label, itoa(g.Sum("runs")), itoa(g.Sum("viol")), itoa(g.Sum("undec"))}
	},
	Finalize: func(_ Scale, t *Table, gs []Group) {
		for _, g := range gs {
			if g.Key.Label == "A_nuc (full)" && (g.Sum("viol") > 0 || g.Sum("undec") > 0) {
				t.Pass = false
			}
		}
		t.Notes = append(t.Notes,
			"the full algorithm must show zero violations; ablated variants document the observed failure mode under this adversary (absence of violations for an ablation means this particular adversary does not exercise that defense)")
	},
}
