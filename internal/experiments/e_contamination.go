package experiments

import (
	"fmt"
	"math/rand"

	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
	"nuconsensus/internal/transform"
)

// contaminationAdversary builds the §6.3 contamination setup: a faulty
// process whose Σν module emits junk quorums (so it races ahead deciding
// alone on its own estimate) and an Ω that swings between the real leader
// and the faulty process before stabilizing, so stragglers adopt the
// faulty process's stale estimate.
type contaminationAdversary struct {
	n         int
	misleader model.ProcessID
	period    model.Time
	stabilize model.Time
}

func (a contaminationAdversary) pattern() *model.FailurePattern {
	return model.PatternFromCrashes(a.n, map[model.ProcessID]model.Time{a.misleader: a.stabilize + 40})
}

// sigmaNuHistory returns the (Ω, Σν) pair history of the adversary.
func (a contaminationAdversary) sigmaNuHistory(pattern *model.FailurePattern, seed int64) model.History {
	return fd.PairHistory{
		First: &fd.AlternatingOmega{
			Misleader: a.misleader,
			Leader:    pattern.Correct().Min(),
			Period:    a.period,
			Stabilize: a.stabilize,
			SelfLoyal: true,
		},
		Second: fd.NewSigmaNu(pattern, a.stabilize, seed),
	}
}

// sigmaNuPlusHistory is the same adversary with a Σν+ quorum component,
// for algorithms that consume Σν+ directly.
func (a contaminationAdversary) sigmaNuPlusHistory(pattern *model.FailurePattern, seed int64) model.History {
	return fd.PairHistory{
		First: &fd.AlternatingOmega{
			Misleader: a.misleader,
			Leader:    pattern.Correct().Min(),
			Period:    a.period,
			Stabilize: a.stabilize,
			SelfLoyal: true,
		},
		Second: fd.NewSigmaNuPlus(pattern, a.stabilize, seed),
	}
}

// huntResult counts outcomes of a randomized contamination hunt.
type huntResult struct {
	runs, violations, undecided int
}

// hunt runs the adversary against an algorithm across seeds and counts
// nonuniform-agreement violations.
func hunt(adv contaminationAdversary, build func(props []int) model.Automaton, history func(*model.FailurePattern, int64) model.History, seeds, maxSteps int) huntResult {
	var res huntResult
	for seed := int64(1); seed <= int64(seeds); seed++ {
		rng := rand.New(rand.NewSource(seed * 911))
		pattern := adv.pattern()
		props := make([]int, adv.n)
		props[adv.misleader] = 1 // the faulty process's divergent estimate
		for i := range props {
			if model.ProcessID(i) != adv.misleader {
				props[i] = 0
			}
		}
		_ = rng
		r, err := runConsensus(build(props), pattern, history(pattern, seed), seed, maxSteps)
		if err != nil {
			continue
		}
		res.runs++
		if r.Outcome.NonuniformAgreement(pattern) != nil {
			res.violations++
		}
		if !r.Decided {
			res.undecided++
		}
	}
	return res
}

// E6 stages the contamination scenario of §6.3: the naive Mostéfaoui–
// Raynal adaptation with Σν quorums violates nonuniform agreement under
// the adversary, while A_nuc (composed with T_{Σν→Σν+} per Theorem 6.28)
// never does on the same histories.
func E6(sc Scale) Table {
	t := Table{
		ID:    "E6",
		Title: "Contamination: naive MR+Σν violates agreement; A_nuc does not",
		Claim: "§6.3: replacing majorities by Σν quorums in MR admits contamination " +
			"(a correct process adopts a faulty process's estimate after another " +
			"correct process decided differently); A_nuc's distrust + quorum-awareness " +
			"machinery prevents it.",
		Columns: []string{"algorithm", "runs", "agreement violations", "undecided"},
	}
	adv := contaminationAdversary{n: 3, misleader: 2, period: 40, stabilize: 280}
	seeds := sc.Seeds * 10

	naive := hunt(adv, func(props []int) model.Automaton { return consensus.NewMRNaiveNu(props) },
		adv.sigmaNuHistory, seeds, 20000)
	t.AddRow("MR-naiveΣν", fmt.Sprintf("%d", naive.runs), fmt.Sprintf("%d", naive.violations), fmt.Sprintf("%d", naive.undecided))

	anuc := hunt(adv, func(props []int) model.Automaton {
		return transform.NewComposed(transform.NewSigmaNuPlusTransformer(adv.n), consensus.NewANuc(props))
	}, adv.sigmaNuHistory, seeds, 8000)
	t.AddRow("T_{Σν→Σν+}∘A_nuc", fmt.Sprintf("%d", anuc.runs), fmt.Sprintf("%d", anuc.violations), fmt.Sprintf("%d", anuc.undecided))

	t.Pass = naive.violations > 0 && anuc.violations == 0 && anuc.undecided == 0
	if naive.violations == 0 {
		t.Notes = append(t.Notes, "hunt failed to exhibit the naive algorithm's contamination — adversary too weak")
	}
	return t
}

// Q4 sweeps the adversary's Ω swing period and reports contamination
// frequency for the naive algorithm vs A_nuc.
func Q4(sc Scale) Table {
	t := Table{
		ID:    "Q4",
		Title: "Contamination frequency vs adversary swing period",
		Claim: "§6.3: contamination is a scheduling/detector-timing phenomenon — its " +
			"frequency in the naive algorithm varies with the adversary, while A_nuc " +
			"stays at zero violations for every adversary.",
		Columns: []string{"Ω swing period", "naive violations/runs", "A_nuc violations/runs"},
		Pass:    true,
	}
	seeds := sc.Seeds * 7
	for _, period := range []model.Time{15, 40, 80, 140} {
		adv := contaminationAdversary{n: 3, misleader: 2, period: period, stabilize: 280}
		naive := hunt(adv, func(props []int) model.Automaton { return consensus.NewMRNaiveNu(props) },
			adv.sigmaNuHistory, seeds, 20000)
		anuc := hunt(adv, func(props []int) model.Automaton {
			return transform.NewComposed(transform.NewSigmaNuPlusTransformer(adv.n), consensus.NewANuc(props))
		}, adv.sigmaNuHistory, seeds, 8000)
		if anuc.violations > 0 {
			t.Pass = false
		}
		t.AddRow(fmt.Sprintf("%d", period),
			fmt.Sprintf("%d/%d", naive.violations, naive.runs),
			fmt.Sprintf("%d/%d", anuc.violations, anuc.runs))
	}
	return t
}

// Q5 ablates A_nuc's machinery and reports which consensus property breaks
// under the contamination adversary, plus the freshness-barrier ablation's
// effect on the Σν+ transformer.
func Q5(sc Scale) Table {
	t := Table{
		ID:    "Q5",
		Title: "Ablations: which defense prevents which failure",
		Claim: "§6.3's design discussion: the distrust rule blocks estimate " +
			"contamination; the seen-gate (quorum awareness, Lemma 6.24) gates " +
			"decisions on quorum visibility. Removing defenses must not be safe.",
		Columns: []string{"variant", "runs", "agreement violations", "undecided"},
		Pass:    true,
	}
	adv := contaminationAdversary{n: 3, misleader: 2, period: 40, stabilize: 280}
	seeds := sc.Seeds * 10
	variants := []struct {
		name string
		ab   consensus.Ablation
	}{
		{"A_nuc (full)", consensus.Ablation{}},
		{"A_nuc −distrust", consensus.Ablation{NoDistrust: true}},
		{"A_nuc −seen-gate", consensus.Ablation{NoSeenGate: true}},
		{"A_nuc −both", consensus.Ablation{NoDistrust: true, NoSeenGate: true}},
	}
	for _, v := range variants {
		ab := v.ab
		res := hunt(adv, func(props []int) model.Automaton {
			return consensus.NewANucAblated(props, ab)
		}, adv.sigmaNuPlusHistory, seeds, 20000)
		t.AddRow(v.name, fmt.Sprintf("%d", res.runs), fmt.Sprintf("%d", res.violations), fmt.Sprintf("%d", res.undecided))
		if v.name == "A_nuc (full)" && (res.violations > 0 || res.undecided > 0) {
			t.Pass = false
		}
	}
	t.Notes = append(t.Notes,
		"the full algorithm must show zero violations; ablated variants document the observed failure mode under this adversary (absence of violations for an ablation means this particular adversary does not exercise that defense)")
	return t
}
