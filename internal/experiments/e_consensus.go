package experiments

import (
	"fmt"
	"math/rand"

	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
	"nuconsensus/internal/transform"
)

// E1 exercises Theorem 6.27: A_nuc solves nonuniform consensus using
// (Ω, Σν+) in any environment — here swept over n, every number of
// failures f (including f ≥ n/2, where majority-based algorithms are
// stuck), randomized crash times and detector noise.
func E1(sc Scale) Table {
	t := Table{
		ID:    "E1",
		Title: "A_nuc solves nonuniform consensus with (Ω, Σν+)",
		Claim: "Theorem 6.27: in any environment, every admissible run of A_nuc " +
			"using (Ω, Σν+) satisfies termination, validity and nonuniform agreement.",
		Columns: []string{"n", "f", "runs", "ok", "avg steps", "avg rounds", "avg msgs"},
		Pass:    true,
	}
	for _, n := range []int{3, 4, 5, 6, 7} {
		for f := 0; f < n; f++ {
			var runs, ok, steps, rounds, msgs int
			for seed := int64(1); seed <= int64(sc.Seeds); seed++ {
				rng := rand.New(rand.NewSource(seed*1000 + int64(n*10+f)))
				pattern := randomPattern(n, f, 80, rng)
				hist := fd.PairHistory{
					First:  fd.NewOmega(pattern, 120, seed),
					Second: fd.NewSigmaNuPlus(pattern, 120, seed),
				}
				r, err := runConsensus(consensus.NewANuc(mixedProposals(n, rng)), pattern, hist, seed, sc.MaxSteps)
				runs++
				if err == nil && r.Decided && r.Outcome.NonuniformConsensus(pattern) == nil {
					ok++
				} else {
					t.Pass = false
					t.Notes = append(t.Notes, fmt.Sprintf("n=%d f=%d seed=%d: decided=%v err=%v consensus=%v",
						n, f, seed, r.Decided, err, r.Outcome.NonuniformConsensus(pattern)))
				}
				steps += r.Steps
				rounds += r.MaxRound
				msgs += r.Sent
			}
			t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", f), fmt.Sprintf("%d", runs),
				fmt.Sprintf("%d", ok), avg(steps, runs), avg(rounds, runs), avg(msgs, runs))
		}
	}
	return t
}

// E2 exercises Theorems 6.28/6.29: (Ω, Σν) suffices end to end — A_nuc
// composed with T_{Σν→Σν+}, driven by adversarial Σν histories whose
// faulty modules emit junk quorums.
func E2(sc Scale) Table {
	t := Table{
		ID:    "E2",
		Title: "(Ω, Σν) solves nonuniform consensus via T_{Σν→Σν+} ∘ A_nuc",
		Claim: "Theorem 6.28: running T_{Σν→Σν+} concurrently with A_nuc solves " +
			"nonuniform consensus with (Ω, Σν) in any environment.",
		Columns: []string{"n", "f", "runs", "ok", "avg steps", "avg rounds"},
		Pass:    true,
	}
	seeds := min(sc.Seeds, 3) // DAG-based runs are quadratic in steps
	for _, n := range []int{3, 4, 5} {
		for _, f := range []int{0, 1, n - 1} {
			var runs, ok, steps, rounds int
			for seed := int64(1); seed <= int64(seeds); seed++ {
				rng := rand.New(rand.NewSource(seed*2000 + int64(n*10+f)))
				pattern := randomPattern(n, f, 60, rng)
				hist := fd.PairHistory{
					First:  fd.NewOmega(pattern, 100, seed),
					Second: fd.NewSigmaNu(pattern, 100, seed),
				}
				aut := transform.NewComposed(
					transform.NewSigmaNuPlusTransformer(n),
					consensus.NewANuc(mixedProposals(n, rng)),
				)
				r, err := runConsensus(aut, pattern, hist, seed, min(sc.MaxSteps, 6000))
				runs++
				if err == nil && r.Decided && r.Outcome.NonuniformConsensus(pattern) == nil {
					ok++
				} else {
					t.Pass = false
					t.Notes = append(t.Notes, fmt.Sprintf("n=%d f=%d seed=%d: decided=%v err=%v consensus=%v",
						n, f, seed, r.Decided, err, r.Outcome.NonuniformConsensus(pattern)))
				}
				steps += r.Steps
				rounds += r.MaxRound
			}
			t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", f), fmt.Sprintf("%d", runs),
				fmt.Sprintf("%d", ok), avg(steps, runs), avg(rounds, runs))
		}
	}
	return t
}

// Q1 measures decision latency (steps and rounds until every correct
// process decides) for A_nuc vs the Mostéfaoui–Raynal baselines, at
// minority failures (all three run) and at f = n−1 (only the
// quorum-failure-detector algorithms terminate; MR-majority blocks, which
// is the separation the paper's "any environment" claim is about).
func Q1(sc Scale) Table {
	t := Table{
		ID:    "Q1",
		Title: "Decision latency vs n and f: A_nuc vs MR-majority vs MR-Σ",
		Claim: "§6.3: A_nuc pays extra rounds/messages over MR for nonuniformity " +
			"defenses; MR-majority cannot terminate once f ≥ n/2 while A_nuc and MR-Σ can.",
		Columns: []string{"n", "f", "A_nuc steps", "A_nuc rounds", "MR-maj steps", "MR-Σ steps"},
		Pass:    true,
	}
	for _, n := range []int{3, 5, 7, 9, 11} {
		for _, f := range []int{(n - 1) / 2, n - 1} {
			var aSteps, aRounds, aN int
			var mSteps, mN int
			var sSteps, sN int
			majorityWorks := 2*f < n
			for seed := int64(1); seed <= int64(sc.Seeds); seed++ {
				rng := rand.New(rand.NewSource(seed*3000 + int64(n*100+f)))
				pattern := randomPattern(n, f, 60, rng)
				props := mixedProposals(n, rng)
				pairNuPlus := fd.PairHistory{First: fd.NewOmega(pattern, 100, seed), Second: fd.NewSigmaNuPlus(pattern, 100, seed)}
				pairSigma := fd.PairHistory{First: fd.NewOmega(pattern, 100, seed), Second: fd.NewSigma(pattern, 100, seed)}

				if r, err := runConsensus(consensus.NewANuc(props), pattern, pairNuPlus, seed, sc.MaxSteps); err == nil && r.Decided {
					aSteps += r.Steps
					aRounds += r.MaxRound
					aN++
				} else {
					t.Pass = false
				}
				if majorityWorks {
					if r, err := runConsensus(consensus.NewMRMajority(props), pattern, pairSigma, seed, sc.MaxSteps); err == nil && r.Decided {
						mSteps += r.Steps
						mN++
					} else {
						t.Pass = false
					}
				}
				if r, err := runConsensus(consensus.NewMRSigma(props), pattern, pairSigma, seed, sc.MaxSteps); err == nil && r.Decided {
					sSteps += r.Steps
					sN++
				} else {
					t.Pass = false
				}
			}
			mCell := "blocks (f ≥ n/2)"
			if majorityWorks {
				mCell = avg(mSteps, mN)
			}
			t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", f),
				avg(aSteps, aN), avg(aRounds, aN), mCell, avg(sSteps, sN))
		}
	}
	return t
}

// Q2 measures message complexity per decision by payload kind, showing the
// SAW/ACK overhead A_nuc pays for the quorum-awareness property.
func Q2(sc Scale) Table {
	t := Table{
		ID:    "Q2",
		Title: "Messages per decided run, by kind (A_nuc vs MR-Σ)",
		Claim: "§6.3: A_nuc adds the SAW/ACK quorum-awareness traffic and history " +
			"piggybacking on top of MR's LEAD/REP/PROP pattern.",
		Columns: []string{"algorithm", "n", "LEAD", "REP", "PROP", "SAW", "ACK", "total"},
		Pass:    true,
	}
	for _, n := range []int{3, 5, 7, 9} {
		for _, alg := range []string{"A_nuc", "MR-Σ"} {
			kinds := map[string]int{}
			total, runs := 0, 0
			for seed := int64(1); seed <= int64(sc.Seeds); seed++ {
				rng := rand.New(rand.NewSource(seed*4000 + int64(n)))
				pattern := randomPattern(n, (n-1)/2, 60, rng)
				props := mixedProposals(n, rng)
				var aut model.Automaton
				var hist model.History
				if alg == "A_nuc" {
					aut = consensus.NewANuc(props)
					hist = fd.PairHistory{First: fd.NewOmega(pattern, 100, seed), Second: fd.NewSigmaNuPlus(pattern, 100, seed)}
				} else {
					aut = consensus.NewMRSigma(props)
					hist = fd.PairHistory{First: fd.NewOmega(pattern, 100, seed), Second: fd.NewSigma(pattern, 100, seed)}
				}
				r, err := runConsensus(aut, pattern, hist, seed, sc.MaxSteps)
				if err != nil || !r.Decided {
					t.Pass = false
					continue
				}
				for k, v := range r.Kinds {
					kinds[k] += v
				}
				total += r.Sent
				runs++
			}
			t.AddRow(alg, fmt.Sprintf("%d", n),
				avg(kinds["LEAD"], runs), avg(kinds["REP"], runs), avg(kinds["PROP"], runs),
				avg(kinds["SAW"], runs), avg(kinds["ACK"], runs), avg(total, runs))
		}
	}
	return t
}
