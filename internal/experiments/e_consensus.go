package experiments

import (
	"math/rand"
	"strconv"

	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
	"nuconsensus/internal/transform"
)

// itoa is the cell formatter for integer columns.
func itoa(v int) string { return strconv.Itoa(v) }

// e1Spec exercises Theorem 6.27: A_nuc solves nonuniform consensus using
// (Ω, Σν+) in any environment — here swept over n, every number of
// failures f (including f ≥ n/2, where majority-based algorithms are
// stuck), randomized crash times and detector noise.
var e1Spec = &Spec{
	ID: "E1",
	// Portable: every execution goes through runConsensus, and the claim
	// is about outcomes, not step order.
	Portable: true,
	Title:    "A_nuc solves nonuniform consensus with (Ω, Σν+)",
	Claim: "Theorem 6.27: in any environment, every admissible run of A_nuc " +
		"using (Ω, Σν+) satisfies termination, validity and nonuniform agreement.",
	Columns: []string{"n", "f", "runs", "ok", "avg steps", "avg rounds", "avg msgs"},
	Configs: func(sc Scale) []Config {
		var cfgs []Config
		for _, n := range []int{3, 4, 5, 6, 7} {
			for f := 0; f < n; f++ {
				cfgs = append(cfgs, seedRange(Config{N: n, F: f}, sc.Seeds)...)
			}
		}
		return cfgs
	},
	Unit: func(sc Scale, cfg Config, rng *rand.Rand) UnitResult {
		u := UnitResult{Counted: true}
		pattern := randomPattern(cfg.N, cfg.F, 80, rng)
		hist := fd.PairHistory{
			First:  fd.NewOmega(pattern, 120, cfg.Seed),
			Second: fd.NewSigmaNuPlus(pattern, 120, cfg.Seed),
		}
		r, err := runConsensus(sc, consensus.NewANuc(mixedProposals(cfg.N, rng)), pattern, hist, cfg.Seed, sc.MaxSteps)
		if err == nil && r.Decided && r.Outcome.NonuniformConsensus(pattern) == nil {
			u.OK = true
		} else {
			u.failf("n=%d f=%d seed=%d: decided=%v err=%v consensus=%v",
				cfg.N, cfg.F, cfg.Seed, r.Decided, err, r.Outcome.NonuniformConsensus(pattern))
		}
		u.Add("steps", r.Steps)
		u.Add("rounds", r.MaxRound)
		u.Add("msgs", r.Sent)
		return u
	},
	Row: func(_ Scale, g Group) []string {
		return []string{itoa(g.Key.N), itoa(g.Key.F), itoa(g.Runs()), itoa(g.OKs()),
			g.Avg("steps"), g.Avg("rounds"), g.Avg("msgs")}
	},
}

// e2Spec exercises Theorems 6.28/6.29: (Ω, Σν) suffices end to end — A_nuc
// composed with T_{Σν→Σν+}, driven by adversarial Σν histories whose
// faulty modules emit junk quorums.
var e2Spec = &Spec{
	ID: "E2",
	// Portable: every execution goes through runConsensus, and the claim
	// is about outcomes, not step order.
	Portable: true,
	Title:    "(Ω, Σν) solves nonuniform consensus via T_{Σν→Σν+} ∘ A_nuc",
	Claim: "Theorem 6.28: running T_{Σν→Σν+} concurrently with A_nuc solves " +
		"nonuniform consensus with (Ω, Σν) in any environment.",
	Columns: []string{"n", "f", "runs", "ok", "avg steps", "avg rounds"},
	Configs: func(sc Scale) []Config {
		seeds := min(sc.Seeds, 3) // DAG-based runs are quadratic in steps
		var cfgs []Config
		for _, n := range []int{3, 4, 5} {
			for _, f := range []int{0, 1, n - 1} {
				cfgs = append(cfgs, seedRange(Config{N: n, F: f}, seeds)...)
			}
		}
		return cfgs
	},
	Unit: func(sc Scale, cfg Config, rng *rand.Rand) UnitResult {
		u := UnitResult{Counted: true}
		pattern := randomPattern(cfg.N, cfg.F, 60, rng)
		hist := fd.PairHistory{
			First:  fd.NewOmega(pattern, 100, cfg.Seed),
			Second: fd.NewSigmaNu(pattern, 100, cfg.Seed),
		}
		aut := transform.NewComposed(
			transform.NewSigmaNuPlusTransformer(cfg.N),
			consensus.NewANuc(mixedProposals(cfg.N, rng)),
		)
		r, err := runConsensus(sc, aut, pattern, hist, cfg.Seed, min(sc.MaxSteps, 6000))
		if err == nil && r.Decided && r.Outcome.NonuniformConsensus(pattern) == nil {
			u.OK = true
		} else {
			u.failf("n=%d f=%d seed=%d: decided=%v err=%v consensus=%v",
				cfg.N, cfg.F, cfg.Seed, r.Decided, err, r.Outcome.NonuniformConsensus(pattern))
		}
		u.Add("steps", r.Steps)
		u.Add("rounds", r.MaxRound)
		return u
	},
	Row: func(_ Scale, g Group) []string {
		return []string{itoa(g.Key.N), itoa(g.Key.F), itoa(g.Runs()), itoa(g.OKs()),
			g.Avg("steps"), g.Avg("rounds")}
	},
}

// q1Spec measures decision latency (steps and rounds until every correct
// process decides) for A_nuc vs the Mostéfaoui–Raynal baselines, at
// minority failures (all three run) and at f = n−1 (only the
// quorum-failure-detector algorithms terminate; MR-majority blocks, which
// is the separation the paper's "any environment" claim is about).
var q1Spec = &Spec{
	ID: "Q1",
	// Portable: every execution goes through runConsensus, and the claim
	// is about outcomes, not step order.
	Portable: true,
	Title:    "Decision latency vs n and f: A_nuc vs MR-majority vs MR-Σ",
	Claim: "§6.3: A_nuc pays extra rounds/messages over MR for nonuniformity " +
		"defenses; MR-majority cannot terminate once f ≥ n/2 while A_nuc and MR-Σ can.",
	Columns: []string{"n", "f", "A_nuc steps", "A_nuc rounds", "MR-maj steps", "MR-Σ steps"},
	Configs: func(sc Scale) []Config {
		var cfgs []Config
		for _, n := range []int{3, 5, 7, 9, 11} {
			for _, f := range []int{(n - 1) / 2, n - 1} {
				cfgs = append(cfgs, seedRange(Config{N: n, F: f}, sc.Seeds)...)
			}
		}
		return cfgs
	},
	Unit: func(sc Scale, cfg Config, rng *rand.Rand) UnitResult {
		u := UnitResult{Counted: true}
		n, f := cfg.N, cfg.F
		majorityWorks := 2*f < n
		pattern := randomPattern(n, f, 60, rng)
		props := mixedProposals(n, rng)
		pairNuPlus := fd.PairHistory{First: fd.NewOmega(pattern, 100, cfg.Seed), Second: fd.NewSigmaNuPlus(pattern, 100, cfg.Seed)}
		pairSigma := fd.PairHistory{First: fd.NewOmega(pattern, 100, cfg.Seed), Second: fd.NewSigma(pattern, 100, cfg.Seed)}

		if r, err := runConsensus(sc, consensus.NewANuc(props), pattern, pairNuPlus, cfg.Seed, sc.MaxSteps); err == nil && r.Decided {
			u.Add("aSteps", r.Steps)
			u.Add("aRounds", r.MaxRound)
			u.Add("aN", 1)
		} else {
			u.Fail = true
		}
		if majorityWorks {
			if r, err := runConsensus(sc, consensus.NewMRMajority(props), pattern, pairSigma, cfg.Seed, sc.MaxSteps); err == nil && r.Decided {
				u.Add("mSteps", r.Steps)
				u.Add("mN", 1)
			} else {
				u.Fail = true
			}
		}
		if r, err := runConsensus(sc, consensus.NewMRSigma(props), pattern, pairSigma, cfg.Seed, sc.MaxSteps); err == nil && r.Decided {
			u.Add("sSteps", r.Steps)
			u.Add("sN", 1)
		} else {
			u.Fail = true
		}
		return u
	},
	Row: func(_ Scale, g Group) []string {
		mCell := "blocks (f ≥ n/2)"
		if 2*g.Key.F < g.Key.N {
			mCell = avg(g.Sum("mSteps"), g.Sum("mN"))
		}
		return []string{itoa(g.Key.N), itoa(g.Key.F),
			avg(g.Sum("aSteps"), g.Sum("aN")), avg(g.Sum("aRounds"), g.Sum("aN")),
			mCell, avg(g.Sum("sSteps"), g.Sum("sN"))}
	},
}

// q2Spec measures message complexity per decision by payload kind, showing
// the SAW/ACK overhead A_nuc pays for the quorum-awareness property.
var q2Spec = &Spec{
	ID: "Q2",
	// Portable: every execution goes through runConsensus, and the claim
	// is about outcomes, not step order.
	Portable: true,
	Title:    "Messages per decided run, by kind (A_nuc vs MR-Σ)",
	Claim: "§6.3: A_nuc adds the SAW/ACK quorum-awareness traffic and history " +
		"piggybacking on top of MR's LEAD/REP/PROP pattern.",
	Columns: []string{"algorithm", "n", "LEAD", "REP", "PROP", "SAW", "ACK", "total"},
	Configs: func(sc Scale) []Config {
		var cfgs []Config
		for _, n := range []int{3, 5, 7, 9} {
			for _, alg := range []string{"A_nuc", "MR-Σ"} {
				cfgs = append(cfgs, seedRange(Config{Label: alg, N: n}, sc.Seeds)...)
			}
		}
		return cfgs
	},
	Unit: func(sc Scale, cfg Config, rng *rand.Rand) UnitResult {
		var u UnitResult
		n := cfg.N
		pattern := randomPattern(n, (n-1)/2, 60, rng)
		props := mixedProposals(n, rng)
		var aut model.Automaton
		var hist model.History
		if cfg.Label == "A_nuc" {
			aut = consensus.NewANuc(props)
			hist = fd.PairHistory{First: fd.NewOmega(pattern, 100, cfg.Seed), Second: fd.NewSigmaNuPlus(pattern, 100, cfg.Seed)}
		} else {
			aut = consensus.NewMRSigma(props)
			hist = fd.PairHistory{First: fd.NewOmega(pattern, 100, cfg.Seed), Second: fd.NewSigma(pattern, 100, cfg.Seed)}
		}
		r, err := runConsensus(sc, aut, pattern, hist, cfg.Seed, sc.MaxSteps)
		if err != nil || !r.Decided {
			u.Fail = true
			return u
		}
		u.Counted, u.OK = true, true
		for k, v := range r.Kinds {
			u.Add(k, v)
		}
		u.Add("total", r.Sent)
		return u
	},
	Row: func(_ Scale, g Group) []string {
		return []string{g.Key.Label, itoa(g.Key.N),
			g.Avg("LEAD"), g.Avg("REP"), g.Avg("PROP"),
			g.Avg("SAW"), g.Avg("ACK"), g.Avg("total")}
	},
}
