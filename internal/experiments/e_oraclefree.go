package experiments

import (
	"math/rand"

	"nuconsensus/internal/check"
	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/hb"
	"nuconsensus/internal/model"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/substrate"
	"nuconsensus/internal/trace"
	"nuconsensus/internal/transform"
)

// e11Spec exercises the heartbeat implementation of Ω (internal/hb): under
// partial synchrony — including a hostile pre-GST prefix — the emitted
// leader history satisfies the Ω specification.
var e11Spec = &Spec{
	ID:    "E11",
	Title: "Heartbeat Ω under partial synchrony (extension)",
	Claim: "Ω is implementable without oracles given eventual timeliness: " +
		"adaptive-timeout heartbeats converge on the smallest correct process " +
		"at all correct processes.",
	Columns: []string{"n", "f", "GST", "runs", "ok", "avg leader-stable t"},
	Configs: func(sc Scale) []Config {
		var cfgs []Config
		for _, n := range []int{3, 5, 8} {
			fs := []int{1}
			if mid := (n - 1) / 2; mid != 1 {
				fs = append(fs, mid)
			}
			for _, f := range fs {
				cfgs = append(cfgs, seedRange(Config{N: n, F: f}, sc.Seeds)...)
			}
		}
		return cfgs
	},
	Unit: func(_ Scale, cfg Config, _ *rand.Rand) UnitResult {
		u := UnitResult{Counted: true}
		n, f, seed := cfg.N, cfg.F, cfg.Seed
		pattern := model.NewFailurePattern(n)
		for i := 0; i < f; i++ {
			pattern.SetCrash(model.ProcessID(i), model.Time(30+20*i))
		}
		rec := &trace.Recorder{RecordSamples: true}
		res, err := sim.Run(sim.Exec{
			Automaton: hb.NewOmega(n, 0, 0),
			Pattern:   pattern,
			History:   fd.Null,
			Scheduler: &sim.PartialSyncScheduler{
				GST:    300,
				Before: sim.NewFairScheduler(seed, 0.2, 20),
				After:  sim.NewFairScheduler(seed+99, 0.9, 2),
			},
			MaxSteps: 2500,
			Recorder: rec,
		})
		if err != nil {
			u.Fail = true
			return u
		}
		stab := leaderHorizon(rec.Outputs, pattern)
		if stab > res.Ticks*4/5 {
			u.failf("n=%d f=%d seed=%d: leader unstable until %d of %d", n, f, seed, stab, res.Ticks)
			return u
		}
		if err := check.OmegaOutputs(rec.Outputs, pattern, stab); err != nil {
			u.failf("n=%d f=%d seed=%d: %v", n, f, seed, err)
			return u
		}
		u.OK = true
		if stab > 0 {
			u.Add("stab", int(stab))
		}
		return u
	},
	Row: func(_ Scale, g Group) []string {
		return []string{itoa(g.Key.N), itoa(g.Key.F), "300",
			itoa(g.Runs()), itoa(g.OKs()), g.AvgOverOK("stab")}
	},
}

// leaderHorizon returns the last time a correct process's emitted leader
// differed from the eventual leader (min correct), or -1.
func leaderHorizon(outs []trace.Sample, pattern *model.FailurePattern) model.Time {
	correct := pattern.Correct()
	leader := correct.Min()
	last := model.Time(-1)
	for _, s := range outs {
		if !correct.Has(s.P) {
			continue
		}
		if l, ok := fd.LeaderOf(s.Val); ok && l != leader && s.T > last {
			last = s.T
		}
	}
	return last
}

// e12Spec exercises the oracle-free stack: heartbeat Ω + from-scratch Σν+
// + A_nuc solves nonuniform consensus with no failure detector in
// majority-correct environments under partial synchrony.
var e12Spec = &Spec{
	ID:    "E12",
	Title: "Oracle-free nonuniform consensus (extension)",
	Claim: "With a correct majority and eventual timeliness, the weakest-detector " +
		"pair (Ω, Σν+) is constructible from scratch, so A_nuc runs with zero " +
		"oracles (heartbeats + Theorem 7.1 IF threshold quorums).",
	Columns: []string{"n", "f", "runs", "ok", "avg steps"},
	Configs: func(sc Scale) []Config {
		var cfgs []Config
		for _, n := range []int{3, 5, 7} {
			tf := (n - 1) / 2
			for _, f := range []int{0, tf} {
				cfgs = append(cfgs, seedRange(Config{N: n, F: f}, sc.Seeds)...)
			}
		}
		return cfgs
	},
	Unit: func(sc Scale, cfg Config, _ *rand.Rand) UnitResult {
		u := UnitResult{Counted: true}
		n, f, seed := cfg.N, cfg.F, cfg.Seed
		tf := (n - 1) / 2
		pattern := model.NewFailurePattern(n)
		for i := 0; i < f; i++ {
			pattern.SetCrash(model.ProcessID(i), model.Time(40+25*i))
		}
		props := make([]int, n)
		for i := range props {
			props[i] = i % 2
		}
		aut := transform.NewOracleFree(
			hb.NewOmega(n, 0, 0),
			transform.NewScratchSigmaNuPlus(n, tf),
			consensus.NewANuc(props),
		)
		res, err := sim.Run(sim.Exec{
			Automaton: aut,
			Pattern:   pattern,
			History:   fd.Null,
			Scheduler: &sim.PartialSyncScheduler{
				GST:    250,
				Before: sim.NewFairScheduler(seed, 0.3, 10),
				After:  sim.NewFairScheduler(seed+99, 0.9, 2),
			},
			MaxSteps: sc.MaxSteps,
			StopWhen: substrate.AllCorrectDecided(pattern),
		})
		if err != nil || !res.Stopped {
			u.failf("n=%d f=%d seed=%d: err=%v stopped=%v", n, f, seed, err, res != nil && res.Stopped)
			return u
		}
		if err := check.OutcomeFromConfig(res.Config).NonuniformConsensus(pattern); err != nil {
			u.failf("n=%d f=%d seed=%d: %v", n, f, seed, err)
			return u
		}
		u.OK = true
		u.Add("steps", res.Steps)
		return u
	},
	Row: func(_ Scale, g Group) []string {
		return []string{itoa(g.Key.N), itoa(g.Key.F), itoa(g.Runs()),
			itoa(g.OKs()), g.AvgOverOK("steps")}
	},
}
