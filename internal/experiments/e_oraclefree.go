package experiments

import (
	"fmt"

	"nuconsensus/internal/check"
	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/hb"
	"nuconsensus/internal/model"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/trace"
	"nuconsensus/internal/transform"
)

// E11 exercises the heartbeat implementation of Ω (internal/hb): under
// partial synchrony — including a hostile pre-GST prefix — the emitted
// leader history satisfies the Ω specification.
func E11(sc Scale) Table {
	t := Table{
		ID:    "E11",
		Title: "Heartbeat Ω under partial synchrony (extension)",
		Claim: "Ω is implementable without oracles given eventual timeliness: " +
			"adaptive-timeout heartbeats converge on the smallest correct process " +
			"at all correct processes.",
		Columns: []string{"n", "f", "GST", "runs", "ok", "avg leader-stable t"},
		Pass:    true,
	}
	for _, n := range []int{3, 5, 8} {
		fs := []int{1}
		if mid := (n - 1) / 2; mid != 1 {
			fs = append(fs, mid)
		}
		for _, f := range fs {
			gst := model.Time(300)
			var runs, ok int
			var stabSum model.Time
			for seed := int64(1); seed <= int64(sc.Seeds); seed++ {
				pattern := model.NewFailurePattern(n)
				for i := 0; i < f; i++ {
					pattern.SetCrash(model.ProcessID(i), model.Time(30+20*i))
				}
				rec := &trace.Recorder{}
				res, err := sim.Run(sim.Options{
					Automaton: hb.NewOmega(n, 0, 0),
					Pattern:   pattern,
					History:   fd.Null,
					Scheduler: &sim.PartialSyncScheduler{
						GST:    gst,
						Before: sim.NewFairScheduler(seed, 0.2, 20),
						After:  sim.NewFairScheduler(seed+99, 0.9, 2),
					},
					MaxSteps: 2500,
					Recorder: rec,
				})
				runs++
				if err != nil {
					t.Pass = false
					continue
				}
				stab := leaderHorizon(rec.Outputs, pattern)
				if stab > res.Time*4/5 {
					t.Pass = false
					t.Notes = append(t.Notes, fmt.Sprintf("n=%d f=%d seed=%d: leader unstable until %d of %d", n, f, seed, stab, res.Time))
					continue
				}
				if err := check.OmegaOutputs(rec.Outputs, pattern, stab); err != nil {
					t.Pass = false
					t.Notes = append(t.Notes, fmt.Sprintf("n=%d f=%d seed=%d: %v", n, f, seed, err))
					continue
				}
				ok++
				if stab > 0 {
					stabSum += stab
				}
			}
			t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", f), fmt.Sprintf("%d", gst),
				fmt.Sprintf("%d", runs), fmt.Sprintf("%d", ok), avg(int(stabSum), ok))
		}
	}
	return t
}

// leaderHorizon returns the last time a correct process's emitted leader
// differed from the eventual leader (min correct), or -1.
func leaderHorizon(outs []trace.Sample, pattern *model.FailurePattern) model.Time {
	correct := pattern.Correct()
	leader := correct.Min()
	last := model.Time(-1)
	for _, s := range outs {
		if !correct.Has(s.P) {
			continue
		}
		if l, ok := fd.LeaderOf(s.Val); ok && l != leader && s.T > last {
			last = s.T
		}
	}
	return last
}

// E12 exercises the oracle-free stack: heartbeat Ω + from-scratch Σν+ +
// A_nuc solves nonuniform consensus with no failure detector in
// majority-correct environments under partial synchrony.
func E12(sc Scale) Table {
	t := Table{
		ID:    "E12",
		Title: "Oracle-free nonuniform consensus (extension)",
		Claim: "With a correct majority and eventual timeliness, the weakest-detector " +
			"pair (Ω, Σν+) is constructible from scratch, so A_nuc runs with zero " +
			"oracles (heartbeats + Theorem 7.1 IF threshold quorums).",
		Columns: []string{"n", "f", "runs", "ok", "avg steps"},
		Pass:    true,
	}
	for _, n := range []int{3, 5, 7} {
		tf := (n - 1) / 2
		for _, f := range []int{0, tf} {
			var runs, ok, steps int
			for seed := int64(1); seed <= int64(sc.Seeds); seed++ {
				pattern := model.NewFailurePattern(n)
				for i := 0; i < f; i++ {
					pattern.SetCrash(model.ProcessID(i), model.Time(40+25*i))
				}
				props := make([]int, n)
				for i := range props {
					props[i] = i % 2
				}
				aut := transform.NewOracleFree(
					hb.NewOmega(n, 0, 0),
					transform.NewScratchSigmaNuPlus(n, tf),
					consensus.NewANuc(props),
				)
				res, err := sim.Run(sim.Options{
					Automaton: aut,
					Pattern:   pattern,
					History:   fd.Null,
					Scheduler: &sim.PartialSyncScheduler{
						GST:    250,
						Before: sim.NewFairScheduler(seed, 0.3, 10),
						After:  sim.NewFairScheduler(seed+99, 0.9, 2),
					},
					MaxSteps: sc.MaxSteps,
					StopWhen: sim.AllCorrectDecided(pattern),
				})
				runs++
				if err != nil || !res.Stopped {
					t.Pass = false
					t.Notes = append(t.Notes, fmt.Sprintf("n=%d f=%d seed=%d: err=%v stopped=%v", n, f, seed, err, res != nil && res.Stopped))
					continue
				}
				if err := check.OutcomeFromConfig(res.Config).NonuniformConsensus(pattern); err != nil {
					t.Pass = false
					t.Notes = append(t.Notes, fmt.Sprintf("n=%d f=%d seed=%d: %v", n, f, seed, err))
					continue
				}
				ok++
				steps += res.Steps
			}
			t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", f), fmt.Sprintf("%d", runs),
				fmt.Sprintf("%d", ok), avg(steps, ok))
		}
	}
	return t
}
