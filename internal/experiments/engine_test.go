package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"regexp"
	"testing"
	"time"
)

// TestRunAllDeterministic is the engine's core guarantee: the rendered
// tables are byte-identical whether units run sequentially, on 1 worker, or
// on 8 workers with arbitrary interleavings. A sample of cheap experiments
// keeps the test fast while covering RNG-drawing grids (E1, E8), per-unit
// rows (E7, E9, E10), and cross-row finalizers (E14).
func TestRunAllDeterministic(t *testing.T) {
	ids := []string{"E1", "E7", "E8", "E9", "E10", "E14", "E15", "Q7"}
	render := func(tables []Table) string {
		var b bytes.Buffer
		for _, tb := range tables {
			b.WriteString(tb.Render())
		}
		return b.String()
	}

	seq := make([]Table, 0, len(ids))
	for _, id := range ids {
		seq = append(seq, Registry[id].Run(tiny))
	}
	one, err := RunIDs(context.Background(), ids, tiny, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := RunIDs(context.Background(), ids, tiny, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}

	if got, want := render(one), render(seq); got != want {
		t.Errorf("RunIDs(workers=1) differs from sequential Spec.Run output:\n--- parallel ---\n%s\n--- sequential ---\n%s", got, want)
	}
	if got, want := render(eight), render(one); got != want {
		t.Errorf("RunIDs(workers=8) differs from RunIDs(workers=1):\n--- 8 workers ---\n%s\n--- 1 worker ---\n%s", got, want)
	}
}

// TestRunIDsUnknown rejects unknown experiment IDs up front.
func TestRunIDsUnknown(t *testing.T) {
	if _, err := RunIDs(context.Background(), []string{"E999"}, tiny, Options{Workers: 1}); err == nil {
		t.Fatal("RunIDs accepted an unknown experiment ID")
	}
}

// TestRunIDsCancelled propagates context cancellation out of the pool.
func TestRunIDsCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunIDs(ctx, []string{"E1"}, tiny, Options{Workers: 2}); err != context.Canceled {
		t.Fatalf("RunIDs on a cancelled context returned %v, want context.Canceled", err)
	}
}

// TestDeriveSeed checks the unit-RNG derivation is pure, sensitive to every
// tuple component, and non-negative (rand.NewSource accepts any int64, but
// non-negativity keeps logs readable).
func TestDeriveSeed(t *testing.T) {
	base := Config{Label: "x", N: 5, F: 2, Arg: 7, Seed: 3}
	if got, again := DeriveSeed("E1", base), DeriveSeed("E1", base); got != again {
		t.Fatalf("DeriveSeed is not pure: %d vs %d", got, again)
	}
	if DeriveSeed("E1", base) < 0 {
		t.Fatal("DeriveSeed returned a negative seed")
	}
	variants := []Config{
		{Label: "y", N: 5, F: 2, Arg: 7, Seed: 3},
		{Label: "x", N: 6, F: 2, Arg: 7, Seed: 3},
		{Label: "x", N: 5, F: 3, Arg: 7, Seed: 3},
		{Label: "x", N: 5, F: 2, Arg: 8, Seed: 3},
		{Label: "x", N: 5, F: 2, Arg: 7, Seed: 4},
	}
	for _, v := range variants {
		if DeriveSeed("E1", v) == DeriveSeed("E1", base) {
			t.Errorf("DeriveSeed collision between %+v and %+v", v, base)
		}
	}
	if DeriveSeed("E2", base) == DeriveSeed("E1", base) {
		t.Error("DeriveSeed ignores the experiment ID")
	}
}

// TestExperimentsMDCoverage cross-checks the documentation: every table ID
// referenced in EXPERIMENTS.md's summary exists in the registry, and every
// registered experiment is documented.
func TestExperimentsMDCoverage(t *testing.T) {
	raw, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^\| ([EQ]\d+) \|`)
	documented := map[string]bool{}
	for _, m := range re.FindAllStringSubmatch(string(raw), -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("found no experiment IDs in EXPERIMENTS.md — summary table format changed?")
	}
	for id := range documented {
		if _, ok := Registry[id]; !ok {
			t.Errorf("EXPERIMENTS.md references %s but the registry does not implement it", id)
		}
	}
	for id := range Registry {
		if !documented[id] {
			t.Errorf("registry implements %s but EXPERIMENTS.md's summary does not document it", id)
		}
	}
}

// TestReportJSON round-trips the machine-readable report.
func TestReportJSON(t *testing.T) {
	tb := Registry["E7"].Run(tiny)
	rep := NewReport([]Table{tb}, tiny, 4, 123*time.Millisecond)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	if len(back.Tables) != 1 || back.Tables[0].ID != "E7" || back.Workers != 4 {
		t.Fatalf("report round-trip mangled data: %+v", back)
	}
	if back.Pass != tb.Pass {
		t.Fatalf("report Pass = %v, table Pass = %v", back.Pass, tb.Pass)
	}
	if len(back.Tables[0].Rows) == 0 || len(back.Tables[0].RowTimes) != len(back.Tables[0].Rows) {
		t.Fatalf("report rows/timing inconsistent: %d rows, %d row times",
			len(back.Tables[0].Rows), len(back.Tables[0].RowTimes))
	}
}
