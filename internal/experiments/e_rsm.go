package experiments

import (
	"math/rand"

	"nuconsensus/internal/model"
	"nuconsensus/internal/rsm"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/trace"
)

// q7Slots is the log length Q7 fills per run.
const q7Slots = 5

// q7Spec measures the replicated-log application built on per-slot A_nuc
// instances: steps and messages per appended slot, and the agreement of
// correct replicas' logs, across n and f.
var q7Spec = &Spec{
	ID:    "Q7",
	Title: "Replicated log (SMR over A_nuc): cost per slot",
	Claim: "§1 motivation: consensus is the substrate of fault-tolerant " +
		"replication. The per-slot pipeline (live old instances, command " +
		"forwarding, no DECIDED-gossip — unsound under nonuniformity, see E14) " +
		"sustains a steady per-slot cost.",
	Columns: []string{"n", "f", "slots", "runs", "ok", "avg steps/slot", "avg msgs/slot"},
	Configs: func(sc Scale) []Config {
		var cfgs []Config
		for _, n := range []int{3, 4, 5} {
			for _, f := range []int{0, 1} {
				cfgs = append(cfgs, seedRange(Config{N: n, F: f}, sc.Seeds)...)
			}
		}
		return cfgs
	},
	Unit: func(sc Scale, cfg Config, _ *rand.Rand) UnitResult {
		u := UnitResult{Counted: true}
		n, f, seed := cfg.N, cfg.F, cfg.Seed
		pattern := model.NewFailurePattern(n)
		for i := 0; i < f; i++ {
			pattern.SetCrash(model.ProcessID(n-1-i), model.Time(40+20*i))
		}
		cmds := make([][]int, n)
		for p := range cmds {
			cmds[p] = []int{100*p + 1}
		}
		rec := &trace.Recorder{}
		res, err := sim.Run(sim.Exec{
			Automaton: rsm.NewLog(cmds, q7Slots),
			Pattern:   pattern,
			History:   rsm.PairForLog(pattern, 80, seed),
			Scheduler: sim.NewFairScheduler(seed, 0.8, 3),
			MaxSteps:  min(sc.MaxSteps*4, 200000),
			StopWhen:  rsm.AllAppended(pattern, q7Slots),
			Recorder:  rec,
		})
		if err != nil || !res.Stopped {
			u.failf("n=%d f=%d seed=%d: err=%v filled=%v", n, f, seed, err, res != nil && res.Stopped)
			return u
		}
		// All correct replicas must hold identical logs.
		agree := true
		var ref []int
		pattern.Correct().ForEach(func(p model.ProcessID) {
			entries := res.Config.States[p].(rsm.LogHolder).Entries()
			if ref == nil {
				ref = entries
				return
			}
			if len(entries) != len(ref) {
				agree = false
				return
			}
			for i := range ref {
				if entries[i] != ref[i] {
					agree = false
				}
			}
		})
		if !agree {
			u.failf("n=%d f=%d seed=%d: correct logs diverged", n, f, seed)
			return u
		}
		u.OK = true
		u.Add("steps", res.Steps)
		u.Add("msgs", rec.MessagesSent)
		return u
	},
	Row: func(_ Scale, g Group) []string {
		return []string{itoa(g.Key.N), itoa(g.Key.F), itoa(q7Slots),
			itoa(g.Runs()), itoa(g.OKs()),
			avg(g.Sum("steps")/q7Slots, g.OKs()), avg(g.Sum("msgs")/q7Slots, g.OKs())}
	},
}
