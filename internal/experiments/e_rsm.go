package experiments

import (
	"fmt"

	"nuconsensus/internal/model"
	"nuconsensus/internal/rsm"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/trace"
)

// Q7 measures the replicated-log application built on per-slot A_nuc
// instances: steps and messages per appended slot, and the agreement of
// correct replicas' logs, across n and f.
func Q7(sc Scale) Table {
	t := Table{
		ID:    "Q7",
		Title: "Replicated log (SMR over A_nuc): cost per slot",
		Claim: "§1 motivation: consensus is the substrate of fault-tolerant " +
			"replication. The per-slot pipeline (live old instances, command " +
			"forwarding, no DECIDED-gossip — unsound under nonuniformity, see E14) " +
			"sustains a steady per-slot cost.",
		Columns: []string{"n", "f", "slots", "runs", "ok", "avg steps/slot", "avg msgs/slot"},
		Pass:    true,
	}
	const slots = 5
	for _, n := range []int{3, 4, 5} {
		for _, f := range []int{0, 1} {
			var runs, ok, steps, msgs int
			for seed := int64(1); seed <= int64(sc.Seeds); seed++ {
				pattern := model.NewFailurePattern(n)
				for i := 0; i < f; i++ {
					pattern.SetCrash(model.ProcessID(n-1-i), model.Time(40+20*i))
				}
				cmds := make([][]int, n)
				for p := range cmds {
					cmds[p] = []int{100*p + 1}
				}
				rec := &trace.Recorder{}
				res, err := sim.Run(sim.Options{
					Automaton: rsm.NewLog(cmds, slots),
					Pattern:   pattern,
					History:   rsm.PairForLog(pattern, 80, seed),
					Scheduler: sim.NewFairScheduler(seed, 0.8, 3),
					MaxSteps:  min(sc.MaxSteps*4, 200000),
					StopWhen:  rsm.AllAppended(pattern, slots),
					Recorder:  rec,
				})
				runs++
				if err != nil || !res.Stopped {
					t.Pass = false
					t.Notes = append(t.Notes, fmt.Sprintf("n=%d f=%d seed=%d: err=%v filled=%v", n, f, seed, err, res != nil && res.Stopped))
					continue
				}
				// All correct replicas must hold identical logs.
				agree := true
				var ref []int
				pattern.Correct().ForEach(func(p model.ProcessID) {
					entries := res.Config.States[p].(rsm.LogHolder).Entries()
					if ref == nil {
						ref = entries
						return
					}
					if len(entries) != len(ref) {
						agree = false
						return
					}
					for i := range ref {
						if entries[i] != ref[i] {
							agree = false
						}
					}
				})
				if !agree {
					t.Pass = false
					t.Notes = append(t.Notes, fmt.Sprintf("n=%d f=%d seed=%d: correct logs diverged", n, f, seed))
					continue
				}
				ok++
				steps += res.Steps
				msgs += rec.MessagesSent
			}
			t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", f), fmt.Sprintf("%d", slots),
				fmt.Sprintf("%d", runs), fmt.Sprintf("%d", ok),
				avg(steps/slots, ok), avg(msgs/slots, ok))
		}
	}
	return t
}
