package experiments

import (
	"strings"
	"testing"
)

// tiny is the smallest scale that still exercises each experiment's logic.
var tiny = Scale{Seeds: 1, MaxSteps: 30000}

// TestRegistryComplete ensures the registry matches EXPERIMENTS.md's index.
func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
		"E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs() = %v, want %v", got, want)
		}
	}
	for id, sp := range Registry {
		if sp.ID != id {
			t.Errorf("Registry[%q].ID = %q", id, sp.ID)
		}
	}
}

// TestFastExperimentsPass runs the cheap experiments end to end; the
// expensive DAG-extraction ones run in short form only when -short is not
// set.
func TestFastExperimentsPass(t *testing.T) {
	fast := []string{"E1", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E18", "Q1", "Q2", "Q5", "Q7"}
	for _, id := range fast {
		id := id
		t.Run(id, func(t *testing.T) {
			table := Registry[id].Run(tiny)
			if !table.Pass {
				t.Fatalf("%s failed:\n%s", id, table.Render())
			}
		})
	}
}

func TestSlowExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping DAG-extraction experiments in -short mode")
	}
	slow := []string{"E2", "E3", "E6", "Q6", "E16"}
	for _, id := range slow {
		id := id
		t.Run(id, func(t *testing.T) {
			table := Registry[id].Run(tiny)
			if !table.Pass {
				t.Fatalf("%s failed:\n%s", id, table.Render())
			}
		})
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{
		ID:      "X1",
		Title:   "demo",
		Claim:   "something",
		Columns: []string{"a", "b"},
		Pass:    true,
		Notes:   []string{"note"},
	}
	tb.AddRow("1", "2")
	out := tb.Render()
	for _, want := range []string{"## X1", "| a | b |", "| 1 | 2 |", "- note", "PASS"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
}

func TestAvg(t *testing.T) {
	if got := avg(10, 4); got != "2.5" {
		t.Errorf("avg = %q", got)
	}
	if got := avg(10, 0); got != "—" {
		t.Errorf("avg with zero runs = %q", got)
	}
}

func TestRandomPattern(t *testing.T) {
	tab := Registry["E9"].Run(tiny) // also doubles as a quick E9 sanity check
	if !tab.Pass {
		t.Fatalf("E9 failed:\n%s", tab.Render())
	}
}
