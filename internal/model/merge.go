package model

import (
	"fmt"
	"reflect"
)

// Mergeable reports whether two finite runs can be merged in the sense of
// §2.10: (a) their participant sets are disjoint, and (b) the merged
// automaton has an initial configuration agreeing with each run's initial
// configuration on that run's participants. Both runs must share the
// failure pattern and history (the caller is responsible for that; this
// function checks what is checkable structurally).
func Mergeable(r0, r1 *Run, merged Automaton) error {
	p0 := r0.Schedule.Participants()
	p1 := r1.Schedule.Participants()
	if p0.Intersects(p1) {
		return fmt.Errorf("model: participants %s and %s intersect", p0, p1)
	}
	check := func(r *Run, ps ProcessSet) error {
		var err error
		ps.ForEach(func(p ProcessID) {
			if err != nil {
				return
			}
			want := r.Automaton.InitState(p)
			got := merged.InitState(p)
			if !reflect.DeepEqual(want, got) {
				err = fmt.Errorf("model: initial state of %s differs between run and merged automaton", p)
			}
		})
		return err
	}
	if err := check(r0, p0); err != nil {
		return err
	}
	return check(r1, p1)
}

// MergeRuns produces a merging R = (F, H, I, S, T) of two mergeable finite
// runs per §2.10: T consists of the times of both runs in nondecreasing
// order, and S merges the two schedules in the same order (ties broken in
// favor of r0). The merged run uses the provided automaton, whose initial
// configuration plays the role of I.
//
// By Lemma 2.2 the result is again a run of the algorithm, and each
// participant's state in S(I) equals its state in its original run; callers
// verify this with Run.Validate and FinalStates.
func MergeRuns(r0, r1 *Run, merged Automaton) (*Run, error) {
	if err := Mergeable(r0, r1, merged); err != nil {
		return nil, err
	}
	if len(r0.Schedule) != len(r0.Times) || len(r1.Schedule) != len(r1.Times) {
		return nil, fmt.Errorf("model: malformed input run: |S| != |T|")
	}
	n := len(r0.Schedule) + len(r1.Schedule)
	schedule := make(Schedule, 0, n)
	times := make([]Time, 0, n)
	i, j := 0, 0
	for i < len(r0.Schedule) || j < len(r1.Schedule) {
		take0 := j >= len(r1.Schedule) ||
			(i < len(r0.Schedule) && r0.Times[i] <= r1.Times[j])
		if take0 {
			schedule = append(schedule, r0.Schedule[i])
			times = append(times, r0.Times[i])
			i++
		} else {
			schedule = append(schedule, r1.Schedule[j])
			times = append(times, r1.Times[j])
			j++
		}
	}
	return &Run{
		Automaton: merged,
		Pattern:   r0.Pattern,
		History:   r0.History,
		Schedule:  schedule,
		Times:     times,
	}, nil
}

// FinalStates replays the run's schedule from the initial configuration and
// returns the resulting configuration S(I).
func (r *Run) FinalStates() (*Configuration, error) {
	c := InitialConfiguration(r.Automaton)
	for i, e := range r.Schedule {
		if !e.Applicable(c) {
			return nil, fmt.Errorf("model: step %d (%v) not applicable during replay", i, e)
		}
		c.Apply(r.Automaton, e)
	}
	return c, nil
}
