package model

import (
	"fmt"
	"sort"
	"strings"
)

// FailurePattern is a function F : ℕ → 2^Π, where F(t) is the set of
// processes that have crashed through time t (§2.2). Processes never
// recover, so F(t) ⊆ F(t+1); we therefore represent F by each process's
// crash time (NeverCrashes for correct processes).
type FailurePattern struct {
	crashAt []Time
}

// NewFailurePattern returns the failure-free pattern over n processes.
func NewFailurePattern(n int) *FailurePattern {
	if n < 2 || n > MaxProcesses {
		panic(fmt.Sprintf("model: invalid system size n=%d (want 2..%d)", n, MaxProcesses))
	}
	crash := make([]Time, n)
	for i := range crash {
		crash[i] = NeverCrashes
	}
	return &FailurePattern{crashAt: crash}
}

// PatternFromCrashes returns the failure pattern over n processes in which
// each process p listed in crashes crashes at crashes[p], and every other
// process is correct.
func PatternFromCrashes(n int, crashes map[ProcessID]Time) *FailurePattern {
	f := NewFailurePattern(n)
	for p, t := range crashes {
		f.SetCrash(p, t)
	}
	return f
}

// N returns the number of processes in the system.
func (f *FailurePattern) N() int { return len(f.crashAt) }

// All returns Π.
func (f *FailurePattern) All() ProcessSet { return FullSet(len(f.crashAt)) }

// SetCrash marks p as crashing at time t.
func (f *FailurePattern) SetCrash(p ProcessID, t Time) {
	f.checkP(p)
	if t < 0 {
		panic("model: crash time must be ≥ 0")
	}
	f.crashAt[p] = t
}

// CrashTime returns the time at which p crashes (NeverCrashes if correct).
func (f *FailurePattern) CrashTime(p ProcessID) Time {
	f.checkP(p)
	return f.crashAt[p]
}

// Crashed reports whether p ∈ F(t), i.e. p has crashed through time t.
func (f *FailurePattern) Crashed(p ProcessID, t Time) bool {
	f.checkP(p)
	return f.crashAt[p] <= t
}

// At returns F(t), the set of processes crashed through time t.
func (f *FailurePattern) At(t Time) ProcessSet {
	var s ProcessSet
	for p, ct := range f.crashAt {
		if ct <= t {
			s = s.Add(ProcessID(p))
		}
	}
	return s
}

// Alive returns Π ∖ F(t).
func (f *FailurePattern) Alive(t Time) ProcessSet { return f.All().Minus(f.At(t)) }

// Faulty returns faulty(F) = ∪_t F(t).
func (f *FailurePattern) Faulty() ProcessSet {
	var s ProcessSet
	for p, ct := range f.crashAt {
		if ct != NeverCrashes {
			s = s.Add(ProcessID(p))
		}
	}
	return s
}

// Correct returns correct(F) = Π ∖ faulty(F).
func (f *FailurePattern) Correct() ProcessSet { return f.All().Minus(f.Faulty()) }

// MaxCrashTime returns the latest crash time in the pattern, or 0 if the
// pattern is failure-free. After this time only correct processes are alive.
func (f *FailurePattern) MaxCrashTime() Time {
	var m Time
	for _, ct := range f.crashAt {
		if ct != NeverCrashes && ct > m {
			m = ct
		}
	}
	return m
}

// Clone returns a deep copy of f.
func (f *FailurePattern) Clone() *FailurePattern {
	crash := make([]Time, len(f.crashAt))
	copy(crash, f.crashAt)
	return &FailurePattern{crashAt: crash}
}

// String implements fmt.Stringer.
func (f *FailurePattern) String() string {
	type cr struct {
		p ProcessID
		t Time
	}
	var cs []cr
	for p, ct := range f.crashAt {
		if ct != NeverCrashes {
			cs = append(cs, cr{ProcessID(p), ct})
		}
	}
	if len(cs) == 0 {
		return fmt.Sprintf("F(n=%d, failure-free)", len(f.crashAt))
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].t < cs[j].t })
	var b strings.Builder
	fmt.Fprintf(&b, "F(n=%d,", len(f.crashAt))
	for i, c := range cs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, " p%d@%d", int(c.p), int64(c.t))
	}
	b.WriteByte(')')
	return b.String()
}

func (f *FailurePattern) checkP(p ProcessID) {
	if p < 0 || int(p) >= len(f.crashAt) {
		panic(fmt.Sprintf("model: process %d out of range [0,%d)", int(p), len(f.crashAt)))
	}
}

// Environment is a set of failure patterns (§2.2). A result that applies to
// all environments holds regardless of the number and timing of failures.
type Environment interface {
	// Contains reports whether F belongs to the environment.
	Contains(f *FailurePattern) bool
	// String names the environment.
	String() string
}

// EnvT is the environment E_t = {F : |faulty(F)| ≤ t} of §7: any set of up
// to T processes may crash, at any times.
type EnvT struct {
	N int // system size
	T int // maximum number of faulty processes
}

// Contains implements Environment.
func (e EnvT) Contains(f *FailurePattern) bool {
	return f.N() == e.N && f.Faulty().Len() <= e.T
}

// String implements Environment.
func (e EnvT) String() string { return fmt.Sprintf("E_%d(n=%d)", e.T, e.N) }

// MajorityCorrect reports whether the environment guarantees a majority of
// correct processes (t < n/2), the regime in which Σ is implementable from
// scratch (Theorem 7.1).
func (e EnvT) MajorityCorrect() bool { return 2*e.T < e.N }

// EnvAny is the environment of all failure patterns over N processes — the
// "any environment" of the paper's main theorems.
type EnvAny struct{ N int }

// Contains implements Environment.
func (e EnvAny) Contains(f *FailurePattern) bool { return f.N() == e.N }

// String implements Environment.
func (e EnvAny) String() string { return fmt.Sprintf("E_any(n=%d)", e.N) }
