package model

// FDValue is the value d a process obtains when it queries its local
// failure-detector module in a step (§2.4). Concrete values live in the fd
// package (leader values, quorum values, and pairs); the model only needs to
// carry them opaquely through steps, schedules and DAG samples.
//
// FDValues must be immutable: they are shared between histories, traces and
// DAG nodes.
type FDValue interface {
	String() string
}

// History is a failure-detector history H : Π × ℕ → R (§2.3): H(p, t) is
// the value output by the failure-detector module of process p at time t.
type History interface {
	Output(p ProcessID, t Time) FDValue
}

// State is the local state of one process automaton. States must be deeply
// clonable because the DAG-based extraction of §4–5 simulates alternative
// schedules by branching configurations.
type State interface {
	CloneState() State
}

// Automaton is the deterministic automaton A(p) of one algorithm (§2.4).
// A single Automaton value describes the whole collection {A(p)}: InitState
// gives each process's initial state and Step is the transition function.
//
// One Step call is one atomic step of the model: the process receives a
// single message m (nil encodes the empty message λ), queries its failure
// detector receiving d, changes state, and sends messages. The new state
// and the messages sent are uniquely determined by (p, s, m, d).
//
// Step must not mutate s; it returns a new (or structurally shared but
// observationally distinct) state. Implementations typically clone eagerly.
type Automaton interface {
	// Name identifies the algorithm in traces and errors.
	Name() string
	// N returns the number of processes the automaton is configured for.
	N() int
	// InitState returns process p's state in the initial configuration.
	InitState(p ProcessID) State
	// Step applies one atomic step of process p.
	Step(p ProcessID, s State, m *Message, d FDValue) (State, []Send)
}

// Decider is implemented by states of consensus automata so that drivers
// and checkers can observe decisions without knowing the algorithm.
type Decider interface {
	// Decision returns the decided value, and whether the process has
	// decided. Decisions are irrevocable (§2.8).
	Decision() (int, bool)
}

// DecisionOf extracts the decision from a state if it exposes one.
func DecisionOf(s State) (int, bool) {
	d, ok := s.(Decider)
	if !ok {
		return 0, false
	}
	return d.Decision()
}

// Proposer is implemented by states of consensus automata that record the
// value the process proposed, for validity checking.
type Proposer interface {
	Proposal() int
}

// Rounder is implemented by states of round-based algorithms to expose the
// current asynchronous round for instrumentation.
type Rounder interface {
	Round() int
}

// RoundOf extracts the current round from a state if it exposes one.
func RoundOf(s State) (int, bool) {
	r, ok := s.(Rounder)
	if !ok {
		return 0, false
	}
	return r.Round(), true
}

// FDOutput is implemented by states of failure-detector transformation
// algorithms (T_{D→Σν}, T_{Σν→Σν+}, the from-scratch Σ) to expose the
// emulated failure-detector output variable of §2.9.
type FDOutput interface {
	// EmulatedOutput returns the current value of output_p.
	EmulatedOutput() FDValue
}
