package model

import "fmt"

// Configuration is a pair (s, M): a function s mapping each process to its
// local state, plus the message buffer M (§2.5).
type Configuration struct {
	States []State
	Buffer *MessageBuffer
}

// InitialConfiguration returns the initial configuration of a: every process
// in its initial state and an empty message buffer.
func InitialConfiguration(a Automaton) *Configuration {
	n := a.N()
	states := make([]State, n)
	for p := 0; p < n; p++ {
		states[p] = a.InitState(ProcessID(p))
	}
	return &Configuration{States: states, Buffer: NewMessageBuffer()}
}

// Clone returns a deep copy of the configuration. Messages are shared (they
// are immutable); states are cloned.
func (c *Configuration) Clone() *Configuration {
	states := make([]State, len(c.States))
	for i, s := range c.States {
		states[i] = s.CloneState()
	}
	return &Configuration{States: states, Buffer: c.Buffer.Clone()}
}

// Step is a tuple e = (p, m, d, A): process p takes a step in which it
// receives message m (nil for λ) and sees failure-detector value d (§2.4).
// The algorithm A is implicit: a Step is always applied through an
// Automaton.
type Step struct {
	P ProcessID
	M *Message // nil encodes the empty message λ
	D FDValue
}

// String implements fmt.Stringer.
func (e Step) String() string {
	msg := "λ"
	if e.M != nil {
		msg = e.M.String()
	}
	return fmt.Sprintf("(%s, %s, %s)", e.P, msg, e.D)
}

// Applicable reports whether e is applicable to c: m ∈ M ∪ {λ} (§2.5).
func (e Step) Applicable(c *Configuration) bool {
	if e.P < 0 || int(e.P) >= len(c.States) {
		return false
	}
	return e.M == nil || c.Buffer.Contains(e.M)
}

// Apply applies step e to configuration c in place using automaton a, and
// returns the messages sent. It panics if e is not applicable: callers are
// expected to check Applicable (or construct steps from buffer contents).
// The message passed to the automaton is the buffer's own instance of e.M's
// identity, so replays of a schedule in a different configuration (e.g. a
// merged run) see that configuration's payloads.
func (c *Configuration) Apply(a Automaton, e Step) []*Message {
	m := e.M
	if m != nil {
		if m = c.Buffer.Take(m); m == nil {
			panic(fmt.Sprintf("model: step %v not applicable: message not in buffer", e))
		}
	}
	ns, sends := a.Step(e.P, c.States[e.P], m, e.D)
	c.States[e.P] = ns
	return c.Buffer.Put(e.P, sends)
}
