package model

import "testing"

func TestFailurePatternBasics(t *testing.T) {
	f := NewFailurePattern(4)
	if got := f.Faulty(); !got.IsEmpty() {
		t.Fatalf("fresh pattern Faulty() = %v", got)
	}
	if got := f.Correct(); got != FullSet(4) {
		t.Fatalf("fresh pattern Correct() = %v", got)
	}

	f.SetCrash(1, 10)
	f.SetCrash(3, 20)
	if f.Crashed(1, 9) {
		t.Error("p1 must not be crashed at t=9")
	}
	if !f.Crashed(1, 10) {
		t.Error("p1 must be crashed at t=10 (F(t) = crashed through t)")
	}
	if got := f.At(15); got != SetOf(1) {
		t.Errorf("At(15) = %v, want {p1}", got)
	}
	if got := f.At(25); got != SetOf(1, 3) {
		t.Errorf("At(25) = %v, want {p1,p3}", got)
	}
	if got := f.Alive(15); got != SetOf(0, 2, 3) {
		t.Errorf("Alive(15) = %v", got)
	}
	if got := f.Faulty(); got != SetOf(1, 3) {
		t.Errorf("Faulty() = %v", got)
	}
	if got := f.Correct(); got != SetOf(0, 2) {
		t.Errorf("Correct() = %v", got)
	}
	if got := f.MaxCrashTime(); got != 20 {
		t.Errorf("MaxCrashTime() = %d", got)
	}
	if got := f.CrashTime(0); got != NeverCrashes {
		t.Errorf("CrashTime(0) = %d", got)
	}
}

func TestFailurePatternMonotone(t *testing.T) {
	// F(t) ⊆ F(t+1) by construction.
	f := PatternFromCrashes(5, map[ProcessID]Time{0: 3, 2: 7, 4: 7})
	for tt := Time(0); tt < 10; tt++ {
		if !f.At(tt).SubsetOf(f.At(tt + 1)) {
			t.Fatalf("F(%d)=%v ⊄ F(%d)=%v", tt, f.At(tt), tt+1, f.At(tt+1))
		}
	}
}

func TestFailurePatternClone(t *testing.T) {
	f := PatternFromCrashes(3, map[ProcessID]Time{0: 5})
	c := f.Clone()
	c.SetCrash(1, 9)
	if f.Crashed(1, 10) {
		t.Error("mutating the clone must not affect the original")
	}
}

func TestFailurePatternString(t *testing.T) {
	f := NewFailurePattern(3)
	if got := f.String(); got != "F(n=3, failure-free)" {
		t.Errorf("String() = %q", got)
	}
	f.SetCrash(2, 4)
	if got := f.String(); got != "F(n=3, p2@4)" {
		t.Errorf("String() = %q", got)
	}
}

func TestFailurePatternPanics(t *testing.T) {
	mustPanic(t, "n too small", func() { NewFailurePattern(1) })
	mustPanic(t, "n too large", func() { NewFailurePattern(65) })
	f := NewFailurePattern(3)
	mustPanic(t, "process out of range", func() { f.SetCrash(3, 1) })
	mustPanic(t, "negative crash time", func() { f.SetCrash(0, -1) })
}

func TestEnvironments(t *testing.T) {
	e := EnvT{N: 5, T: 2}
	if !e.Contains(PatternFromCrashes(5, map[ProcessID]Time{0: 1, 1: 1})) {
		t.Error("E_2 must contain a 2-crash pattern")
	}
	if e.Contains(PatternFromCrashes(5, map[ProcessID]Time{0: 1, 1: 1, 2: 1})) {
		t.Error("E_2 must not contain a 3-crash pattern")
	}
	if e.Contains(PatternFromCrashes(4, nil)) {
		t.Error("environment must reject mismatched system size")
	}
	if !e.MajorityCorrect() {
		t.Error("t=2, n=5 guarantees a correct majority")
	}
	if (EnvT{N: 4, T: 2}).MajorityCorrect() {
		t.Error("t=2, n=4 does not guarantee a correct majority")
	}
	if got := e.String(); got != "E_2(n=5)" {
		t.Errorf("String() = %q", got)
	}

	any := EnvAny{N: 5}
	if !any.Contains(PatternFromCrashes(5, map[ProcessID]Time{0: 1, 1: 1, 2: 1, 3: 1, 4: 1})) {
		t.Error("E_any must contain the all-crash pattern")
	}
	if got := any.String(); got != "E_any(n=5)" {
		t.Errorf("String() = %q", got)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
