package model

import (
	"reflect"
	"testing"
)

// loopAut is a test algorithm in which every process, on each step, sends a
// numbered note to its partner within its half: {0,1} exchange, {2,3}
// exchange. Halves never communicate, so runs confined to one half are
// mergeable with runs confined to the other.
type loopAut struct{ n int }

type loopState struct {
	Sent     int
	Received []int
}

func (s *loopState) CloneState() State {
	return &loopState{Sent: s.Sent, Received: append([]int(nil), s.Received...)}
}

type notePayload struct{ N int }

func (notePayload) Kind() string            { return "NOTE" }
func (p notePayload) String() string        { return "NOTE" }
func (a loopAut) Name() string              { return "loop" }
func (a loopAut) N() int                    { return a.n }
func (a loopAut) InitState(ProcessID) State { return &loopState{} }

func (a loopAut) Step(p ProcessID, s State, m *Message, _ FDValue) (State, []Send) {
	st := s.CloneState().(*loopState)
	if m != nil {
		st.Received = append(st.Received, m.Payload.(notePayload).N)
	}
	partner := p ^ 1 // 0↔1, 2↔3
	st.Sent++
	return st, []Send{{To: partner, Payload: notePayload{N: st.Sent}}}
}

// runHalf executes k steps confined to the given processes, delivering the
// oldest pending message on every second step.
func runHalf(t *testing.T, a Automaton, ps []ProcessID, k int, baseTime Time) *Run {
	t.Helper()
	c := InitialConfiguration(a)
	var schedule Schedule
	var times []Time
	for i := 0; i < k; i++ {
		p := ps[i%len(ps)]
		var m *Message
		if i%2 == 1 {
			m = c.Buffer.Oldest(p)
		}
		e := Step{P: p, M: m, D: nullFD{}}
		if !e.Applicable(c) {
			t.Fatalf("step %v not applicable", e)
		}
		c.Apply(a, e)
		schedule = append(schedule, e)
		times = append(times, baseTime+Time(i))
	}
	return &Run{
		Automaton: a,
		Pattern:   NewFailurePattern(a.N()),
		History:   constHistory{},
		Schedule:  schedule,
		Times:     times,
	}
}

func TestMergeRunsLemma22(t *testing.T) {
	a := loopAut{n: 4}
	r0 := runHalf(t, a, []ProcessID{0, 1}, 12, 1)
	r1 := runHalf(t, a, []ProcessID{2, 3}, 9, 1)

	merged, err := MergeRuns(r0, r1, a)
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 2.2(a): the merging is a run.
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged run invalid: %v", err)
	}
	if len(merged.Schedule) != len(r0.Schedule)+len(r1.Schedule) {
		t.Fatalf("merged length %d", len(merged.Schedule))
	}
	for i := 1; i < len(merged.Times); i++ {
		if merged.Times[i] < merged.Times[i-1] {
			t.Fatal("merged times must be nondecreasing")
		}
	}

	// Lemma 2.2(b): each participant's state is the same in S(I) as in its
	// own run.
	final, err := merged.FinalStates()
	if err != nil {
		t.Fatal(err)
	}
	f0, _ := r0.FinalStates()
	f1, _ := r1.FinalStates()
	for _, p := range []ProcessID{0, 1} {
		if !reflect.DeepEqual(final.States[p], f0.States[p]) {
			t.Errorf("state of %v differs after merging", p)
		}
	}
	for _, p := range []ProcessID{2, 3} {
		if !reflect.DeepEqual(final.States[p], f1.States[p]) {
			t.Errorf("state of %v differs after merging", p)
		}
	}
}

func TestMergeRejectsOverlappingParticipants(t *testing.T) {
	a := loopAut{n: 4}
	r0 := runHalf(t, a, []ProcessID{0, 1}, 6, 1)
	r1 := runHalf(t, a, []ProcessID{1, 2}, 6, 1)
	if _, err := MergeRuns(r0, r1, a); err == nil {
		t.Fatal("overlapping participants must be rejected")
	}
}

// mismatchedAut wraps loopAut with a different initial state, to violate
// the initial-configuration compatibility condition.
type mismatchedAut struct{ loopAut }

func (a mismatchedAut) InitState(ProcessID) State { return &loopState{Sent: 42} }

func TestMergeRejectsMismatchedInitialStates(t *testing.T) {
	a := loopAut{n: 4}
	r0 := runHalf(t, a, []ProcessID{0, 1}, 6, 1)
	r1 := runHalf(t, a, []ProcessID{2, 3}, 6, 1)
	if _, err := MergeRuns(r0, r1, mismatchedAut{a}); err == nil {
		t.Fatal("mismatched initial states must be rejected")
	}
}

func TestMergeTieBreaking(t *testing.T) {
	// Ties in T must interleave stably (r0 first), per the deterministic
	// merging this implementation produces.
	a := loopAut{n: 4}
	r0 := runHalf(t, a, []ProcessID{0}, 2, 5)
	r1 := runHalf(t, a, []ProcessID{2}, 2, 5)
	m, err := MergeRuns(r0, r1, a)
	if err != nil {
		t.Fatal(err)
	}
	wantP := []ProcessID{0, 2, 0, 2}
	wantT := []Time{5, 5, 6, 6}
	for i := range m.Schedule {
		if m.Schedule[i].P != wantP[i] || m.Times[i] != wantT[i] {
			t.Fatalf("merged[%d] = (%v, %d), want (%v, %d)",
				i, m.Schedule[i].P, m.Times[i], wantP[i], wantT[i])
		}
	}
}
