package model

import "testing"

type testPayload struct {
	kind string
	body string
}

func (p testPayload) Kind() string   { return p.kind }
func (p testPayload) String() string { return p.kind + "(" + p.body + ")" }

type supersededPayload struct{ testPayload }

func (supersededPayload) SupersedesOlder() {}

func TestMessageBufferPutTake(t *testing.T) {
	b := NewMessageBuffer()
	ms := b.Put(0, []Send{
		{To: 1, Payload: testPayload{"A", "x"}},
		{To: 1, Payload: testPayload{"A", "y"}},
		{To: 2, Payload: testPayload{"B", "z"}},
	})
	if len(ms) != 3 || b.Len() != 3 {
		t.Fatalf("Put returned %d messages, Len=%d", len(ms), b.Len())
	}
	if ms[0].Seq != 0 || ms[1].Seq != 1 || ms[2].Seq != 2 {
		t.Errorf("per-sender sequence numbers wrong: %d %d %d", ms[0].Seq, ms[1].Seq, ms[2].Seq)
	}

	// Per-sender counters: a different sender starts at 0.
	other := b.Put(1, []Send{{To: 0, Payload: testPayload{"C", "w"}}})
	if other[0].Seq != 0 {
		t.Errorf("sender p1 first Seq = %d, want 0", other[0].Seq)
	}

	if got := b.Oldest(1); got != ms[0] {
		t.Errorf("Oldest(1) = %v, want %v", got, ms[0])
	}
	if !b.Contains(ms[1]) {
		t.Error("Contains must find pending message")
	}
	taken := b.Take(ms[0])
	if taken != ms[0] {
		t.Errorf("Take returned %v", taken)
	}
	if b.Contains(ms[0]) {
		t.Error("taken message must leave the buffer")
	}
	if got := b.Oldest(1); got != ms[1] {
		t.Errorf("Oldest(1) after take = %v", got)
	}
	if b.Take(ms[0]) != nil {
		t.Error("double Take must return nil")
	}
}

func TestMessageIdentity(t *testing.T) {
	m1 := &Message{From: 0, To: 1, Seq: 5}
	m2 := &Message{From: 0, To: 2, Seq: 5} // same identity, routing differs
	m3 := &Message{From: 1, To: 1, Seq: 5}
	if !m1.SameIdentity(m2) {
		t.Error("same (From, Seq) must be the same identity")
	}
	if m1.SameIdentity(m3) {
		t.Error("different senders must differ")
	}
}

func TestMessageBufferCloneIndependence(t *testing.T) {
	b := NewMessageBuffer()
	ms := b.Put(0, []Send{{To: 1, Payload: testPayload{"A", "x"}}})
	c := b.Clone()
	if c.Take(ms[0]) == nil {
		t.Fatal("clone must contain the message")
	}
	if !b.Contains(ms[0]) {
		t.Error("taking from the clone must not affect the original")
	}
	// Sequence numbering continues consistently in the clone.
	nm := c.Put(0, []Send{{To: 1, Payload: testPayload{"A", "y"}}})
	if nm[0].Seq != 1 {
		t.Errorf("clone continued Seq = %d, want 1", nm[0].Seq)
	}
}

func TestMessageBufferCollapse(t *testing.T) {
	b := NewMessageBuffer()
	mk := func(body string) Send {
		return Send{To: 1, Payload: supersededPayload{testPayload{"DAG", body}}}
	}
	b.Put(0, []Send{mk("v1")})
	b.Put(0, []Send{mk("v2")})
	b.Put(2, []Send{mk("other")})
	b.Put(0, []Send{mk("v3"), {To: 1, Payload: testPayload{"X", "keep"}}})

	m := b.Collapse(1, 0, "DAG")
	if m == nil || m.Payload.String() != "DAG(v3)" {
		t.Fatalf("Collapse returned %v, want newest DAG from p0", m)
	}
	// Older DAGs from p0 are gone; DAG from p2 and the X payload remain.
	if b.Len() != 3 {
		t.Fatalf("Len after collapse = %d, want 3 (newest DAG + other sender + X)", b.Len())
	}
	if got := b.Collapse(1, 5, "DAG"); got != nil {
		t.Errorf("Collapse with no match = %v, want nil", got)
	}
}

func TestBroadcast(t *testing.T) {
	sends := Broadcast(SetOf(0, 2, 3), testPayload{"A", "x"})
	if len(sends) != 3 {
		t.Fatalf("Broadcast produced %d sends", len(sends))
	}
	want := []ProcessID{0, 2, 3}
	for i, s := range sends {
		if s.To != want[i] {
			t.Errorf("send %d to %v, want %v", i, s.To, want[i])
		}
	}
}

func TestMessageBufferAllOrder(t *testing.T) {
	b := NewMessageBuffer()
	b.Put(0, []Send{{To: 1, Payload: testPayload{"A", "1"}}})
	b.Put(1, []Send{{To: 0, Payload: testPayload{"B", "2"}}})
	b.Put(0, []Send{{To: 2, Payload: testPayload{"C", "3"}}})
	all := b.All()
	if len(all) != 3 {
		t.Fatalf("All() returned %d", len(all))
	}
	if all[0].Payload.Kind() != "A" || all[1].Payload.Kind() != "B" || all[2].Payload.Kind() != "C" {
		t.Errorf("All() not in arrival order: %v", all)
	}
}
