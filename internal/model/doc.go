// Package model implements the asynchronous message-passing model of
// computation used by the paper: the Fischer–Lynch–Paterson model augmented
// with failure detectors (Chandra–Hadzilacos–Toueg), as specified in §2 of
// Eisler, Hadzilacos, Toueg, "The weakest failure detector to solve
// nonuniform consensus".
//
// The package provides:
//
//   - processes and process sets (Π = {0, …, n−1}),
//   - failure patterns F : ℕ → 2^Π and environments (sets of failure
//     patterns), including the E_t environments of §7,
//   - failure-detector histories H : Π × ℕ → R as an interface,
//   - algorithms as deterministic automata whose atomic step receives at
//     most one message, queries the local failure-detector module, changes
//     state and sends messages (§2.4),
//   - configurations, schedules, runs, applicability, causal precedence
//     (§2.5–2.6), and
//   - run merging for the partition argument (§2.10, Lemma 2.2).
package model
