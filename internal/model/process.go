package model

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxProcesses is the largest system size supported by ProcessSet's bitset
// representation. The paper's constructions are parameterized by n ≥ 2; all
// of its algorithms are practical only for small n, so a 64-bit set is ample.
const MaxProcesses = 64

// ProcessID identifies a process in Π = {0, 1, …, n−1}.
type ProcessID int

// NoProcess is a sentinel for "no process" (e.g. an unset Ω output).
const NoProcess ProcessID = -1

// String implements fmt.Stringer.
func (p ProcessID) String() string {
	if p == NoProcess {
		return "⊥"
	}
	return fmt.Sprintf("p%d", int(p))
}

// Time is a tick of the discrete global clock of §2.2. Processes do not have
// access to it; it orders steps and failure events.
type Time int64

// NeverCrashes is the crash time of a correct process.
const NeverCrashes Time = 1<<62 - 1

// ProcessSet is a set of processes represented as a bitset. The zero value
// is the empty set and is ready to use.
type ProcessSet uint64

// EmptySet is the empty process set.
const EmptySet ProcessSet = 0

// Singleton returns the set {p}.
func Singleton(p ProcessID) ProcessSet {
	return 1 << uint(p)
}

// FullSet returns Π for a system of n processes.
func FullSet(n int) ProcessSet {
	if n <= 0 {
		return 0
	}
	if n >= MaxProcesses {
		return ^ProcessSet(0)
	}
	return (1 << uint(n)) - 1
}

// SetOf returns the set containing exactly the given processes.
func SetOf(ps ...ProcessID) ProcessSet {
	var s ProcessSet
	for _, p := range ps {
		s = s.Add(p)
	}
	return s
}

// Add returns s ∪ {p}.
func (s ProcessSet) Add(p ProcessID) ProcessSet { return s | Singleton(p) }

// Remove returns s ∖ {p}.
func (s ProcessSet) Remove(p ProcessID) ProcessSet { return s &^ Singleton(p) }

// Has reports whether p ∈ s.
func (s ProcessSet) Has(p ProcessID) bool {
	return p >= 0 && p < MaxProcesses && s&Singleton(p) != 0
}

// Union returns s ∪ t.
func (s ProcessSet) Union(t ProcessSet) ProcessSet { return s | t }

// Intersect returns s ∩ t.
func (s ProcessSet) Intersect(t ProcessSet) ProcessSet { return s & t }

// Minus returns s ∖ t.
func (s ProcessSet) Minus(t ProcessSet) ProcessSet { return s &^ t }

// Intersects reports whether s ∩ t ≠ ∅.
func (s ProcessSet) Intersects(t ProcessSet) bool { return s&t != 0 }

// SubsetOf reports whether s ⊆ t.
func (s ProcessSet) SubsetOf(t ProcessSet) bool { return s&^t == 0 }

// IsEmpty reports whether s = ∅.
func (s ProcessSet) IsEmpty() bool { return s == 0 }

// Len returns |s|.
func (s ProcessSet) Len() int { return bits.OnesCount64(uint64(s)) }

// Min returns the smallest process in s, or NoProcess if s is empty.
func (s ProcessSet) Min() ProcessID {
	if s == 0 {
		return NoProcess
	}
	return ProcessID(bits.TrailingZeros64(uint64(s)))
}

// Slice returns the members of s in increasing order.
func (s ProcessSet) Slice() []ProcessID {
	out := make([]ProcessID, 0, s.Len())
	for v := uint64(s); v != 0; v &= v - 1 {
		out = append(out, ProcessID(bits.TrailingZeros64(v)))
	}
	return out
}

// ForEach calls f for each member of s in increasing order.
func (s ProcessSet) ForEach(f func(ProcessID)) {
	for v := uint64(s); v != 0; v &= v - 1 {
		f(ProcessID(bits.TrailingZeros64(v)))
	}
}

// String implements fmt.Stringer, e.g. "{p0,p2,p3}".
func (s ProcessSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(p ProcessID) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "p%d", int(p))
	})
	b.WriteByte('}')
	return b.String()
}
