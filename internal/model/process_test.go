package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProcessSetBasics(t *testing.T) {
	tests := []struct {
		name string
		set  ProcessSet
		want []ProcessID
	}{
		{"empty", EmptySet, nil},
		{"singleton", Singleton(3), []ProcessID{3}},
		{"set of", SetOf(0, 2, 5), []ProcessID{0, 2, 5}},
		{"full small", FullSet(3), []ProcessID{0, 1, 2}},
		{"add remove", SetOf(1, 2).Add(4).Remove(2), []ProcessID{1, 4}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.set.Slice()
			if len(got) != len(tc.want) {
				t.Fatalf("Slice() = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("Slice() = %v, want %v", got, tc.want)
				}
			}
			if tc.set.Len() != len(tc.want) {
				t.Errorf("Len() = %d, want %d", tc.set.Len(), len(tc.want))
			}
			for _, p := range tc.want {
				if !tc.set.Has(p) {
					t.Errorf("Has(%v) = false", p)
				}
			}
		})
	}
}

func TestProcessSetMin(t *testing.T) {
	if got := EmptySet.Min(); got != NoProcess {
		t.Errorf("empty Min() = %v, want NoProcess", got)
	}
	if got := SetOf(7, 3, 9).Min(); got != 3 {
		t.Errorf("Min() = %v, want 3", got)
	}
}

func TestProcessSetHasOutOfRange(t *testing.T) {
	s := FullSet(64)
	if s.Has(NoProcess) {
		t.Error("Has(NoProcess) must be false")
	}
	if s.Has(ProcessID(64)) {
		t.Error("Has(64) must be false")
	}
}

func TestFullSetBounds(t *testing.T) {
	if FullSet(0) != EmptySet {
		t.Error("FullSet(0) must be empty")
	}
	if FullSet(-1) != EmptySet {
		t.Error("FullSet(-1) must be empty")
	}
	if FullSet(64) != ^ProcessSet(0) {
		t.Error("FullSet(64) must be all ones")
	}
	if FullSet(65) != ^ProcessSet(0) {
		t.Error("FullSet(65) must clamp to all ones")
	}
}

func TestProcessSetString(t *testing.T) {
	if got := SetOf(0, 2).String(); got != "{p0,p2}" {
		t.Errorf("String() = %q", got)
	}
	if got := EmptySet.String(); got != "{}" {
		t.Errorf("String() = %q", got)
	}
	if got := ProcessID(3).String(); got != "p3" {
		t.Errorf("ProcessID String() = %q", got)
	}
	if got := NoProcess.String(); got != "⊥" {
		t.Errorf("NoProcess String() = %q", got)
	}
}

// TestProcessSetAlgebra checks set-algebra laws with testing/quick.
func TestProcessSetAlgebra(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}

	if err := quick.Check(func(a, b uint64) bool {
		x, y := ProcessSet(a), ProcessSet(b)
		return x.Union(y) == y.Union(x) &&
			x.Intersect(y) == y.Intersect(x) &&
			x.Intersect(y).SubsetOf(x) &&
			x.SubsetOf(x.Union(y)) &&
			x.Minus(y).Intersect(y) == EmptySet
	}, cfg); err != nil {
		t.Error(err)
	}

	if err := quick.Check(func(a, b uint64) bool {
		x, y := ProcessSet(a), ProcessSet(b)
		// Intersects agrees with Intersect non-emptiness; SubsetOf agrees
		// with union absorption.
		return x.Intersects(y) == !x.Intersect(y).IsEmpty() &&
			x.SubsetOf(y) == (x.Union(y) == y)
	}, cfg); err != nil {
		t.Error(err)
	}

	if err := quick.Check(func(a uint64) bool {
		x := ProcessSet(a)
		n := 0
		x.ForEach(func(p ProcessID) {
			if !x.Has(p) {
				t.Errorf("ForEach yielded non-member %v", p)
			}
			n++
		})
		return n == x.Len() && len(x.Slice()) == x.Len()
	}, cfg); err != nil {
		t.Error(err)
	}
}
