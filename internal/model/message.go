package model

import (
	"fmt"
	"sort"
)

// Payload is the algorithm-specific content of a message. Implementations
// must be immutable once sent: messages are shared between the message
// buffer, traces and cloned configurations.
type Payload interface {
	// Kind returns a short tag naming the payload type (e.g. "LEAD").
	Kind() string
	// String renders the payload for traces.
	String() string
}

// Message is a triple (p, data, q) in the message buffer M: p has sent data
// to q and q has not yet received it (§2.1). The pair (From, Seq) makes
// every message unique, as the model requires ("each message sent by a
// process ... is unique; this can be guaranteed by having the sender include
// a counter with each message"). Seq is a per-sender counter so that a
// process's k-th send has the same identity in any run in which the process
// behaves the same way — this is what lets merged runs (Lemma 2.2) resolve
// messages deterministically.
type Message struct {
	From    ProcessID
	To      ProcessID
	Seq     uint64 // per-sender counter
	Payload Payload

	order uint64 // buffer insertion order, for "oldest message" queries
}

// SameIdentity reports whether m and x denote the same model message.
func (m *Message) SameIdentity(x *Message) bool {
	return m == x || (m.From == x.From && m.Seq == x.Seq)
}

// String implements fmt.Stringer.
func (m *Message) String() string {
	return fmt.Sprintf("%s#%d→%s %s", m.From, m.Seq, m.To, m.Payload)
}

// SupersededPayload is implemented by payloads for which a newer message of
// the same kind from the same sender carries strictly more information —
// e.g. the monotonically growing DAG snapshots of A_DAG (Fig. 1), where
// G_p only ever grows and each message carries the whole of it. Schedulers
// may deliver the newest such pending message and discard the older ones:
// the discarded content is subsumed, so every property the algorithms
// derive from received messages is preserved while the per-link backlog
// stays bounded (each process produces n messages per step but consumes
// only one, so without collapsing the backlog — and the staleness of what
// is delivered — grows without bound).
type SupersededPayload interface {
	Payload
	// SupersedesOlder is a marker; it carries no behavior.
	SupersedesOlder()
}

// Send is a message produced by a step, before it is assigned a sequence
// number by the message buffer.
type Send struct {
	To      ProcessID
	Payload Payload
}

// Broadcast returns one Send per process in dst carrying payload. It is a
// convenience for the ubiquitous "send to all" of the paper's algorithms.
func Broadcast(dst ProcessSet, payload Payload) []Send {
	out := make([]Send, 0, dst.Len())
	dst.ForEach(func(q ProcessID) {
		out = append(out, Send{To: q, Payload: payload})
	})
	return out
}

// MessageBuffer is the multiset M of in-flight messages, organized per
// destination in arrival order so that schedulers can implement
// oldest-message-first delivery (the construction of Lemma 4.10).
type MessageBuffer struct {
	byDest    map[ProcessID][]*Message
	senderSeq map[ProcessID]uint64
	nextOrder uint64
	size      int
}

// NewMessageBuffer returns an empty message buffer (M = ∅).
func NewMessageBuffer() *MessageBuffer {
	return &MessageBuffer{
		byDest:    make(map[ProcessID][]*Message),
		senderSeq: make(map[ProcessID]uint64),
	}
}

// Put appends sends from process p to the buffer, assigning per-sender
// sequence numbers, and returns the resulting messages.
func (b *MessageBuffer) Put(from ProcessID, sends []Send) []*Message {
	if len(sends) == 0 {
		return nil
	}
	out := make([]*Message, 0, len(sends))
	for _, s := range sends {
		m := &Message{
			From:    from,
			To:      s.To,
			Seq:     b.senderSeq[from],
			Payload: s.Payload,
			order:   b.nextOrder,
		}
		b.senderSeq[from]++
		b.nextOrder++
		b.byDest[s.To] = append(b.byDest[s.To], m)
		b.size++
		out = append(out, m)
	}
	return out
}

// Pending returns the in-flight messages addressed to q, oldest first. The
// returned slice is owned by the buffer and must not be mutated.
func (b *MessageBuffer) Pending(q ProcessID) []*Message { return b.byDest[q] }

// Oldest returns the oldest in-flight message addressed to q, or nil.
func (b *MessageBuffer) Oldest(q ProcessID) *Message {
	ms := b.byDest[q]
	if len(ms) == 0 {
		return nil
	}
	return ms[0]
}

// OldestFrom returns the oldest in-flight message addressed to q that was
// sent by from, or nil. Together with Oldest it gives schedulers per-link
// FIFO delivery: the substrates (substrate.Inbox, netrun readers) already
// deliver each link in send order, and the explorer (internal/explore)
// enumerates delivery choices per link so that commuted deliveries on
// distinct links reach identical configurations.
func (b *MessageBuffer) OldestFrom(q, from ProcessID) *Message {
	for _, m := range b.byDest[q] {
		if m.From == from {
			return m
		}
	}
	return nil
}

// Contains reports whether a message with m's identity is in the buffer.
func (b *MessageBuffer) Contains(m *Message) bool {
	for _, x := range b.byDest[m.To] {
		if x.SameIdentity(m) {
			return true
		}
	}
	return false
}

// Take removes the message with m's identity from the buffer and returns
// the buffer's instance, or nil if absent.
func (b *MessageBuffer) Take(m *Message) *Message {
	ms := b.byDest[m.To]
	for i, x := range ms {
		if x.SameIdentity(m) {
			b.byDest[m.To] = append(ms[:i:i], ms[i+1:]...)
			b.size--
			return x
		}
	}
	return nil
}

// Collapse returns the newest pending message to q from sender 'from' with
// the given payload kind, removing every older pending message to q from
// that sender and kind. It returns nil if there is none. Use only for
// payloads implementing SupersededPayload.
func (b *MessageBuffer) Collapse(to, from ProcessID, kind string) *Message {
	ms := b.byDest[to]
	var newest *Message
	for _, m := range ms {
		if m.From == from && m.Payload.Kind() == kind {
			if newest == nil || m.order > newest.order {
				newest = m
			}
		}
	}
	if newest == nil {
		return nil
	}
	kept := ms[:0]
	for _, m := range ms {
		if m != newest && m.From == from && m.Payload.Kind() == kind {
			b.size--
			continue
		}
		kept = append(kept, m)
	}
	b.byDest[to] = kept
	return newest
}

// Len returns |M|.
func (b *MessageBuffer) Len() int { return b.size }

// Clone returns a deep copy of the buffer. Messages themselves are shared:
// they are immutable once sent.
func (b *MessageBuffer) Clone() *MessageBuffer {
	nb := &MessageBuffer{
		byDest:    make(map[ProcessID][]*Message, len(b.byDest)),
		senderSeq: make(map[ProcessID]uint64, len(b.senderSeq)),
		nextOrder: b.nextOrder,
		size:      b.size,
	}
	for q, ms := range b.byDest {
		cp := make([]*Message, len(ms))
		copy(cp, ms)
		nb.byDest[q] = cp
	}
	for p, s := range b.senderSeq {
		nb.senderSeq[p] = s
	}
	return nb
}

// All returns every in-flight message in arrival order.
func (b *MessageBuffer) All() []*Message {
	out := make([]*Message, 0, b.size)
	for _, ms := range b.byDest {
		out = append(out, ms...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].order < out[j].order })
	return out
}
