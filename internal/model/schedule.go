package model

import (
	"errors"
	"fmt"
)

// Schedule is a finite sequence of steps of an algorithm (§2.6).
type Schedule []Step

// Participants returns the set of processes that take at least one step.
func (s Schedule) Participants() ProcessSet {
	var ps ProcessSet
	for _, e := range s {
		ps = ps.Add(e.P)
	}
	return ps
}

// ApplicableTo reports whether s is applicable to the initial configuration
// of a: s[0] applicable to I, s[1] applicable to s[0](I), and so on.
func (s Schedule) ApplicableTo(a Automaton, c *Configuration) bool {
	cur := c.Clone()
	for _, e := range s {
		if !e.Applicable(cur) {
			return false
		}
		cur.Apply(a, e)
	}
	return true
}

// Apply applies the whole schedule to a clone of c and returns the resulting
// configuration S(C). It panics if the schedule is not applicable.
func (s Schedule) Apply(a Automaton, c *Configuration) *Configuration {
	cur := c.Clone()
	for _, e := range s {
		cur.Apply(a, e)
	}
	return cur
}

// Run is a tuple R = (F, H, I, S, T) (§2.6). I is represented by the
// automaton (whose InitState defines the initial configuration); T[i] is the
// time at which step S[i] is taken.
type Run struct {
	Automaton Automaton
	Pattern   *FailurePattern
	History   History
	Schedule  Schedule
	Times     []Time
}

// Validate checks the run properties (1)–(5) of §2.6 on the finite run:
//
//	(1) S is applicable to I;
//	(2) |S| = |T|;
//	(3) no process steps after crashing, and d = H(p, T[i]);
//	(4) T is nondecreasing;
//	(5) times respect causal precedence.
//
// History values are compared by their String rendering, since FDValue is
// opaque at this level.
func (r *Run) Validate() error {
	if len(r.Schedule) != len(r.Times) {
		return fmt.Errorf("property (2): |S|=%d but |T|=%d", len(r.Schedule), len(r.Times))
	}
	for i := 1; i < len(r.Times); i++ {
		if r.Times[i] < r.Times[i-1] {
			return fmt.Errorf("property (4): T[%d]=%d < T[%d]=%d", i, r.Times[i], i-1, r.Times[i-1])
		}
	}
	for i, e := range r.Schedule {
		t := r.Times[i]
		if r.Pattern.Crashed(e.P, t) {
			return fmt.Errorf("property (3): step %d taken by %s at time %d after its crash", i, e.P, t)
		}
		if r.History != nil {
			want := r.History.Output(e.P, t)
			if e.D == nil || want == nil {
				if e.D != want {
					return fmt.Errorf("property (3): step %d FD value %v != history %v", i, e.D, want)
				}
			} else if e.D.String() != want.String() {
				return fmt.Errorf("property (3): step %d FD value %s != history %s at (%s,%d)", i, e.D, want, e.P, t)
			}
		}
	}
	// Property (1), and collect send/receive matching for (5).
	prec, err := causalEdges(r.Automaton, r.Schedule)
	if err != nil {
		return fmt.Errorf("property (1): %w", err)
	}
	// Property (5): direct causal edges must have strictly increasing times;
	// transitivity then follows since times are nondecreasing... it does not
	// in general (a chain of strict inequalities is strict), so checking the
	// direct edges suffices: any causal chain i ≺ k ≺ j yields T[i] < T[k] <
	// T[j].
	for _, ed := range prec {
		if !(r.Times[ed.i] < r.Times[ed.j]) {
			return fmt.Errorf("property (5): step %d causally precedes step %d but T[%d]=%d ≥ T[%d]=%d",
				ed.i, ed.j, ed.i, r.Times[ed.i], ed.j, r.Times[ed.j])
		}
	}
	return nil
}

type causalEdge struct{ i, j int }

// causalEdges replays the schedule from the initial configuration of a and
// returns the direct causal edges of §2.6: same-process program order and
// send/receive pairs. It errors if the schedule is not applicable.
func causalEdges(a Automaton, s Schedule) ([]causalEdge, error) {
	c := InitialConfiguration(a)
	type msgID struct {
		from ProcessID
		seq  uint64
	}
	var edges []causalEdge
	lastStepOf := make(map[ProcessID]int)
	sentAt := make(map[msgID]int) // message identity → sending step index
	for i, e := range s {
		if !e.Applicable(c) {
			return nil, fmt.Errorf("step %d (%v) not applicable", i, e)
		}
		if prev, ok := lastStepOf[e.P]; ok {
			edges = append(edges, causalEdge{prev, i})
		}
		lastStepOf[e.P] = i
		if e.M != nil {
			if j, ok := sentAt[msgID{e.M.From, e.M.Seq}]; ok {
				edges = append(edges, causalEdge{j, i})
			}
			// Messages present in I's buffer cannot exist (M = ∅ in initial
			// configurations), so an unmatched receive is an applicability
			// bug that Applicable would already have caught.
		}
		sent := c.Apply(a, e)
		for _, m := range sent {
			sentAt[msgID{m.From, m.Seq}] = i
		}
	}
	return edges, nil
}

// CausallyPrecedes reports whether step i causally precedes step j in s with
// respect to the initial configuration of a (§2.6). It computes the
// transitive closure of the direct edges.
func CausallyPrecedes(a Automaton, s Schedule, i, j int) (bool, error) {
	if i < 0 || j < 0 || i >= len(s) || j >= len(s) {
		return false, errors.New("model: step index out of range")
	}
	edges, err := causalEdges(a, s)
	if err != nil {
		return false, err
	}
	adj := make([][]int, len(s))
	for _, e := range edges {
		adj[e.i] = append(adj[e.i], e.j)
	}
	// DFS from i; Observation 2.1 guarantees edges go forward, so this
	// terminates without a visited set, but keep one for safety.
	seen := make([]bool, len(s))
	var stack []int
	stack = append(stack, i)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if w == j {
				return true, nil
			}
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false, nil
}
