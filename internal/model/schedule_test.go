package model

import (
	"strings"
	"testing"
)

// chainAut is a deterministic test algorithm: process 0's first step sends
// a TOKEN to process 1; any process receiving TOKEN(h) forwards TOKEN(h+1)
// to the next process (mod n). It produces controlled causal chains.
type chainAut struct{ n int }

type chainState struct {
	started bool
	hops    []int
}

func (s *chainState) CloneState() State {
	c := &chainState{started: s.started, hops: append([]int(nil), s.hops...)}
	return c
}

type tokenPayload struct{ Hop int }

func (tokenPayload) Kind() string     { return "TOKEN" }
func (p tokenPayload) String() string { return "TOKEN" }
func (a chainAut) Name() string       { return "chain" }
func (a chainAut) N() int             { return a.n }
func (a chainAut) InitState(ProcessID) State {
	return &chainState{}
}

func (a chainAut) Step(p ProcessID, s State, m *Message, _ FDValue) (State, []Send) {
	st := s.CloneState().(*chainState)
	var out []Send
	if p == 0 && !st.started {
		st.started = true
		out = append(out, Send{To: 1, Payload: tokenPayload{Hop: 0}})
	}
	if m != nil {
		tok := m.Payload.(tokenPayload)
		st.hops = append(st.hops, tok.Hop)
		out = append(out, Send{To: (p + 1) % ProcessID(a.n), Payload: tokenPayload{Hop: tok.Hop + 1}})
	}
	return st, out
}

// nullFD is a trivial FD value for tests.
type nullFD struct{}

func (nullFD) String() string { return "⊥" }

type constHistory struct{}

func (constHistory) Output(ProcessID, Time) FDValue { return nullFD{} }

// buildChainRun produces the run: p0 sends token, p1 receives and forwards,
// p2 receives. Returns the automaton and the run.
func buildChainRun(t *testing.T) (*Run, []*Message) {
	t.Helper()
	a := chainAut{n: 3}
	c := InitialConfiguration(a)

	var msgs []*Message
	var schedule Schedule
	var times []Time

	step := func(p ProcessID, m *Message, at Time) {
		e := Step{P: p, M: m, D: nullFD{}}
		if !e.Applicable(c) {
			t.Fatalf("step %v not applicable", e)
		}
		sent := c.Apply(a, e)
		msgs = append(msgs, sent...)
		schedule = append(schedule, e)
		times = append(times, at)
	}

	step(0, nil, 1) // sends TOKEN(0) to p1
	if len(msgs) != 1 {
		t.Fatalf("expected 1 message after p0's step, got %d", len(msgs))
	}
	step(1, msgs[0], 2) // receives, forwards TOKEN(1) to p2
	if len(msgs) != 2 {
		t.Fatalf("expected 2 messages, got %d", len(msgs))
	}
	step(2, msgs[1], 3)

	return &Run{
		Automaton: a,
		Pattern:   NewFailurePattern(3),
		History:   constHistory{},
		Schedule:  schedule,
		Times:     times,
	}, msgs
}

func TestScheduleApplicabilityAndApply(t *testing.T) {
	run, _ := buildChainRun(t)
	init := InitialConfiguration(run.Automaton)
	if !run.Schedule.ApplicableTo(run.Automaton, init) {
		t.Fatal("schedule must be applicable to the initial configuration")
	}
	final := run.Schedule.Apply(run.Automaton, init)
	// Apply must not mutate its input configuration.
	if len(init.States[2].(*chainState).hops) != 0 {
		t.Error("Apply mutated the input configuration")
	}
	if got := final.States[2].(*chainState).hops; len(got) != 1 || got[0] != 1 {
		t.Errorf("p2 hops = %v, want [1]", got)
	}
	if got := run.Schedule.Participants(); got != SetOf(0, 1, 2) {
		t.Errorf("Participants() = %v", got)
	}
}

func TestScheduleNotApplicable(t *testing.T) {
	a := chainAut{n: 3}
	init := InitialConfiguration(a)
	ghost := &Message{From: 0, To: 1, Seq: 99, Payload: tokenPayload{}}
	s := Schedule{{P: 1, M: ghost, D: nullFD{}}}
	if s.ApplicableTo(a, init) {
		t.Error("schedule receiving an unsent message must not be applicable")
	}
}

func TestCausalPrecedence(t *testing.T) {
	run, _ := buildChainRun(t)
	a := run.Automaton

	cases := []struct {
		i, j int
		want bool
	}{
		{0, 1, true},  // send → receive
		{1, 2, true},  // forward → receive
		{0, 2, true},  // transitive
		{1, 0, false}, // no backwards causality
		{2, 0, false},
	}
	for _, tc := range cases {
		got, err := CausallyPrecedes(a, run.Schedule, tc.i, tc.j)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("CausallyPrecedes(%d,%d) = %v, want %v", tc.i, tc.j, got, tc.want)
		}
	}
	if _, err := CausallyPrecedes(a, run.Schedule, 0, 9); err == nil {
		t.Error("out-of-range index must error")
	}
}

func TestRunValidate(t *testing.T) {
	run, _ := buildChainRun(t)
	if err := run.Validate(); err != nil {
		t.Fatalf("valid run rejected: %v", err)
	}

	t.Run("property 2: length mismatch", func(t *testing.T) {
		bad := *run
		bad.Times = bad.Times[:2]
		requireValidateError(t, &bad, "property (2)")
	})
	t.Run("property 4: decreasing times", func(t *testing.T) {
		bad := *run
		bad.Times = []Time{3, 2, 1}
		requireValidateError(t, &bad, "property (4)")
	})
	t.Run("property 3: step after crash", func(t *testing.T) {
		bad := *run
		bad.Pattern = PatternFromCrashes(3, map[ProcessID]Time{1: 1})
		requireValidateError(t, &bad, "property (3)")
	})
	t.Run("property 5: causality vs equal times", func(t *testing.T) {
		bad := *run
		bad.Times = []Time{1, 1, 2} // step 0 causally precedes step 1 but T equal
		requireValidateError(t, &bad, "property (5)")
	})
	t.Run("property 1: inapplicable schedule", func(t *testing.T) {
		bad := *run
		ghost := &Message{From: 2, To: 1, Seq: 42, Payload: tokenPayload{}}
		bad.Schedule = Schedule{{P: 1, M: ghost, D: nullFD{}}}
		bad.Times = []Time{1}
		requireValidateError(t, &bad, "property (1)")
	})
}

func requireValidateError(t *testing.T, r *Run, want string) {
	t.Helper()
	err := r.Validate()
	if err == nil {
		t.Fatalf("expected %s violation", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("got %q, want mention of %s", err, want)
	}
}

func TestApplyPanicsOnMissingMessage(t *testing.T) {
	a := chainAut{n: 3}
	c := InitialConfiguration(a)
	ghost := &Message{From: 0, To: 1, Seq: 7, Payload: tokenPayload{}}
	defer func() {
		if recover() == nil {
			t.Error("Apply must panic on a message not in the buffer")
		}
	}()
	c.Apply(a, Step{P: 1, M: ghost, D: nullFD{}})
}

func TestStepString(t *testing.T) {
	e := Step{P: 1, M: nil, D: nullFD{}}
	if got := e.String(); !strings.Contains(got, "λ") {
		t.Errorf("λ step renders as %q", got)
	}
}

func TestStateHelpers(t *testing.T) {
	// chainState implements neither Decider, Proposer nor Rounder.
	s := &chainState{}
	if _, ok := DecisionOf(s); ok {
		t.Error("DecisionOf on a non-decider must report false")
	}
	if _, ok := RoundOf(s); ok {
		t.Error("RoundOf on a non-rounder must report false")
	}
}

func TestConfigurationClone(t *testing.T) {
	a := chainAut{n: 3}
	c := InitialConfiguration(a)
	c.Apply(a, Step{P: 0, M: nil, D: nullFD{}}) // p0 sends the token
	cl := c.Clone()
	// Advancing the clone must not affect the original.
	m := cl.Buffer.Oldest(1)
	if m == nil {
		t.Fatal("clone lost the in-flight token")
	}
	cl.Apply(a, Step{P: 1, M: m, D: nullFD{}})
	if c.Buffer.Len() != 1 {
		t.Error("original buffer changed when the clone stepped")
	}
	if len(c.States[1].(*chainState).hops) != 0 {
		t.Error("original state changed when the clone stepped")
	}
}
