// Package hb implements the leader failure detector Ω from scratch with
// heartbeats and adaptive timeouts. Ω is not implementable in a purely
// asynchronous system (that would contradict FLP), but it is implementable
// under partial synchrony — eventually-bounded message delays and process
// speeds — which the simulator's fair schedulers provide after an arbitrary
// prefix (sim.PartialSyncScheduler makes the prefix explicitly adversarial).
//
// Together with the from-scratch Σν+ of Theorem 7.1's IF direction
// (transform.NewScratchSigmaNuPlus) and A_nuc, this closes the loop from
// the paper back to a deployable system: in environments with a correct
// majority and eventual timeliness, nonuniform consensus needs no oracle at
// all (see transform.NewOracleFreeANuc and examples/oraclefree).
package hb

import (
	"fmt"

	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
)

// HeartbeatPayload is a liveness beacon. A newer heartbeat from the same
// sender carries strictly more information than an older one, so pending
// heartbeats collapse (model.SupersededPayload) — exactly the property that
// keeps heartbeat queues from masking timeliness.
type HeartbeatPayload struct{}

// Kind implements model.Payload.
func (HeartbeatPayload) Kind() string { return "HB" }

// String implements model.Payload.
func (HeartbeatPayload) String() string { return "HB" }

// SupersedesOlder implements model.SupersededPayload.
func (HeartbeatPayload) SupersedesOlder() {}

// Omega emits a leader estimate from heartbeats: each process beats every
// Every of its own steps, suspects processes whose beats are overdue by an
// adaptive per-process timeout (measured in own steps), and trusts the
// smallest unsuspected process. False suspicions grow the timeout, so under
// eventual timeliness suspicion of correct processes ceases and all correct
// processes converge on the smallest correct one — the Ω specification.
type Omega struct {
	n       int
	every   int  // heartbeat period in own steps
	timeout int  // initial timeout in own steps
	suspect bool // emit the ◇P suspect set instead of the Ω leader
}

// NewOmega returns the heartbeat Ω implementation. every is the heartbeat
// period (default 2 if ≤ 0) and timeout the initial suspicion timeout
// (default 8·n if ≤ 0).
func NewOmega(n, every, timeout int) *Omega {
	if n < 2 || n > model.MaxProcesses {
		panic(fmt.Sprintf("hb: invalid system size %d", n))
	}
	if every <= 0 {
		every = 2
	}
	if timeout <= 0 {
		timeout = 8 * n
	}
	return &Omega{n: n, every: every, timeout: timeout}
}

// NewSuspector returns the same heartbeat machinery emitting its suspicion
// set instead of a leader — an eventually perfect failure detector (◇P)
// under partial synchrony: after timeouts adapt past the eventual delay
// bound, correct processes suspect exactly the crashed ones.
func NewSuspector(n, every, timeout int) *Omega {
	a := NewOmega(n, every, timeout)
	a.suspect = true
	return a
}

// Name implements model.Automaton.
func (a *Omega) Name() string {
	if a.suspect {
		return "◇P-heartbeat"
	}
	return "Ω-heartbeat"
}

// N implements model.Automaton.
func (a *Omega) N() int { return a.n }

// omegaState is one process's heartbeat bookkeeping.
type omegaState struct {
	p        model.ProcessID
	clock    int   // own step counter
	lastBeat []int // clock value when q's last heartbeat arrived
	timeout  []int // adaptive per-process timeout
	output   model.ProcessID
	suspect  bool
}

// CloneState implements model.State.
func (s *omegaState) CloneState() model.State {
	c := *s
	c.lastBeat = append([]int(nil), s.lastBeat...)
	c.timeout = append([]int(nil), s.timeout...)
	return &c
}

// EmulatedOutput implements model.FDOutput.
func (s *omegaState) EmulatedOutput() model.FDValue {
	if s.suspect {
		return fd.SuspectsValue{Suspects: s.Suspects()}
	}
	return fd.LeaderValue{Leader: s.output}
}

// Suspects returns the currently suspected processes (a ◇P-style view),
// exposed for instrumentation and the E11 experiment.
func (s *omegaState) Suspects() model.ProcessSet {
	var out model.ProcessSet
	for q := 0; q < len(s.lastBeat); q++ {
		if model.ProcessID(q) == s.p {
			continue // never suspect yourself
		}
		if s.clock-s.lastBeat[q] > s.timeout[q] {
			out = out.Add(model.ProcessID(q))
		}
	}
	return out
}

// SuspectHolder is implemented by states exposing a suspicion set.
type SuspectHolder interface {
	Suspects() model.ProcessSet
}

// InitState implements model.Automaton.
func (a *Omega) InitState(p model.ProcessID) model.State {
	st := &omegaState{
		p:        p,
		lastBeat: make([]int, a.n),
		timeout:  make([]int, a.n),
		output:   p,
		suspect:  a.suspect,
	}
	for i := range st.timeout {
		st.timeout[i] = a.timeout
	}
	return st
}

// Step implements model.Automaton.
func (a *Omega) Step(p model.ProcessID, s model.State, m *model.Message, _ model.FDValue) (model.State, []model.Send) {
	st := s.CloneState().(*omegaState)
	st.clock++
	if m != nil {
		if _, ok := m.Payload.(HeartbeatPayload); !ok {
			panic(fmt.Sprintf("hb: unknown payload %T", m.Payload))
		}
		q := m.From
		if st.clock-st.lastBeat[q] > st.timeout[q] {
			// q was suspected and proved alive: it was a false suspicion
			// (or q recovered order); widen q's timeout so that, under
			// eventual timeliness, suspicion of correct processes ceases.
			st.timeout[q] *= 2
		}
		st.lastBeat[q] = st.clock
	}
	// Trust the smallest unsuspected process (self counts as unsuspected).
	leader := p
	suspects := st.Suspects()
	for q := 0; q < a.n; q++ {
		if pid := model.ProcessID(q); !suspects.Has(pid) {
			leader = pid
			break
		}
	}
	st.output = leader

	var out []model.Send
	if st.clock%a.every == 0 {
		out = model.Broadcast(model.FullSet(a.n).Remove(p), HeartbeatPayload{})
	}
	return st, out
}
