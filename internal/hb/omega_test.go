package hb_test

import (
	"testing"

	"nuconsensus/internal/check"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/hb"
	"nuconsensus/internal/model"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/trace"
)

// runHB drives the heartbeat Ω and returns recorded emulated outputs.
func runHB(t *testing.T, pattern *model.FailurePattern, sched sim.Scheduler, steps int) ([]trace.Sample, model.Time) {
	t.Helper()
	rec := &trace.Recorder{RecordSamples: true}
	res, err := sim.Run(sim.Exec{
		Automaton: hb.NewOmega(pattern.N(), 0, 0),
		Pattern:   pattern,
		History:   fd.Null,
		Scheduler: sched,
		MaxSteps:  steps,
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec.Outputs, res.Ticks
}

// omegaHorizon finds the last time a correct process's emitted leader was
// not the eventual common correct leader, analogous to
// check.LastCompletenessViolation for quorums.
func omegaHorizon(t *testing.T, outs []trace.Sample, pattern *model.FailurePattern) model.Time {
	t.Helper()
	ls, err := check.LeaderSamples(outs)
	if err != nil {
		t.Fatal(err)
	}
	correct := pattern.Correct()
	// The heartbeat algorithm elects the smallest unsuspected process, so
	// the eventual leader is min(correct).
	leader := correct.Min()
	last := model.Time(-1)
	for _, s := range ls {
		if correct.Has(s.P) && s.L != leader && s.T > last {
			last = s.T
		}
	}
	return last
}

func TestHeartbeatOmegaFairScheduler(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		pattern := model.PatternFromCrashes(4, map[model.ProcessID]model.Time{0: 60, 2: 100})
		outs, end := runHB(t, pattern, sim.NewFairScheduler(seed, 0.8, 3), 1600)
		horizon := omegaHorizon(t, outs, pattern)
		if horizon > end*4/5 {
			t.Fatalf("seed=%d: leader did not stabilize (last deviation %d of %d)", seed, horizon, end)
		}
		if err := check.OmegaOutputs(outs, pattern, horizon); err != nil {
			t.Fatalf("seed=%d: emitted history violates Ω: %v", seed, err)
		}
	}
}

func TestHeartbeatOmegaPartialSynchrony(t *testing.T) {
	// Hostile prefix: starve delivery entirely before GST; timely afterwards.
	pattern := model.PatternFromCrashes(4, map[model.ProcessID]model.Time{0: 150})
	sched := &sim.PartialSyncScheduler{
		GST:    400,
		Before: sim.NewFairScheduler(1, 0.05, 50), // long delays, false suspicion galore
		After:  &sim.RoundRobinScheduler{},
	}
	outs, end := runHB(t, pattern, sched, 3000)
	horizon := omegaHorizon(t, outs, pattern)
	if horizon > end*9/10 {
		t.Fatalf("leader did not stabilize after GST (last deviation %d of %d)", horizon, end)
	}
	if err := check.OmegaOutputs(outs, pattern, horizon); err != nil {
		t.Fatalf("emitted history violates Ω: %v", err)
	}
}

func TestHeartbeatSuspectsExposed(t *testing.T) {
	pattern := model.PatternFromCrashes(3, map[model.ProcessID]model.Time{2: 30})
	res, err := sim.Run(sim.Exec{
		Automaton: hb.NewOmega(3, 0, 0),
		Pattern:   pattern,
		History:   fd.Null,
		Scheduler: &sim.RoundRobinScheduler{},
		MaxSteps:  900,
	})
	if err != nil {
		t.Fatal(err)
	}
	sus := res.Config.States[0].(hb.SuspectHolder).Suspects()
	if !sus.Has(2) {
		t.Errorf("p0 should suspect crashed p2, suspects %v", sus)
	}
	if sus.Has(1) {
		t.Errorf("p0 must not suspect correct p1 after stabilization, suspects %v", sus)
	}
}

func TestHeartbeatPayloadSupersedes(t *testing.T) {
	var pl model.Payload = hb.HeartbeatPayload{}
	if _, ok := pl.(model.SupersededPayload); !ok {
		t.Error("heartbeats must supersede older ones")
	}
}
