package consensus_test

import (
	"testing"

	"nuconsensus/internal/check"
	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/hb"
	"nuconsensus/internal/model"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/substrate"
	"nuconsensus/internal/transform"
)

// TestCTUniformConsensus: the Chandra–Toueg algorithm solves uniform
// consensus with ◇S and a correct majority, across failure counts and
// seeds.
func TestCTUniformConsensus(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		maxF := (n - 1) / 2
		for f := 0; f <= maxF; f++ {
			for seed := int64(1); seed <= 3; seed++ {
				pattern := model.NewFailurePattern(n)
				for i := 0; i < f; i++ {
					pattern.SetCrash(model.ProcessID(i), model.Time(10+13*i))
				}
				props := make([]int, n)
				for i := range props {
					props[i] = i % 2
				}
				res, err := sim.Run(sim.Exec{
					Automaton: consensus.NewCT(props),
					Pattern:   pattern,
					History:   fd.NewSuspicion(pattern, 90, seed),
					Scheduler: sim.NewFairScheduler(seed, 0.8, 3),
					MaxSteps:  30000,
					StopWhen:  substrate.AllCorrectDecided(pattern),
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Stopped {
					t.Fatalf("n=%d f=%d seed=%d: no decision", n, f, seed)
				}
				if err := check.OutcomeFromConfig(res.Config).UniformConsensus(pattern); err != nil {
					t.Fatalf("n=%d f=%d seed=%d: %v", n, f, seed, err)
				}
			}
		}
	}
}

// TestCTWithHeartbeatSuspector composes CT with the heartbeat ◇P via the
// generic Feed product — a fully oracle-free *uniform* consensus stack
// under partial synchrony (complementing the nonuniform oracle-free stack
// of E12).
func TestCTWithHeartbeatSuspector(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		n := 5
		pattern := model.PatternFromCrashes(n, map[model.ProcessID]model.Time{1: 60, 4: 110})
		aut := transform.NewFeed(
			hb.NewSuspector(n, 0, 0),
			consensus.NewCT([]int{0, 1, 0, 1, 0}),
			func(pl model.Payload) bool { _, ok := pl.(hb.HeartbeatPayload); return ok },
		)
		res, err := sim.Run(sim.Exec{
			Automaton: aut,
			Pattern:   pattern,
			History:   fd.Null,
			Scheduler: &sim.PartialSyncScheduler{
				GST:    300,
				Before: sim.NewFairScheduler(seed, 0.3, 10),
				After:  sim.NewFairScheduler(seed+50, 0.9, 2),
			},
			MaxSteps: 60000,
			StopWhen: substrate.AllCorrectDecided(pattern),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stopped {
			t.Fatalf("seed=%d: oracle-free CT did not decide in %d steps", seed, res.Steps)
		}
		if err := check.OutcomeFromConfig(res.Config).UniformConsensus(pattern); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

// TestCTBlocksWithoutMajority: with f ≥ n/2 the algorithm cannot gather
// majorities and must not decide.
func TestCTBlocksWithoutMajority(t *testing.T) {
	pattern := model.PatternFromCrashes(4, map[model.ProcessID]model.Time{2: 1, 3: 1})
	res, err := sim.Run(sim.Exec{
		Automaton: consensus.NewCT([]int{0, 1, 0, 1}),
		Pattern:   pattern,
		History:   fd.NewSuspicion(pattern, 30, 1),
		Scheduler: sim.NewFairScheduler(1, 0.8, 3),
		MaxSteps:  4000,
		StopWhen:  substrate.AllCorrectDecided(pattern),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped || len(substrate.Decisions(res.Config)) != 0 {
		t.Fatalf("CT decided without a correct majority: %v", substrate.Decisions(res.Config))
	}
}

// TestCTSafetyFuzz: uniform agreement and validity must hold in every
// bounded execution regardless of decisions.
func TestCTSafetyFuzz(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		pattern := model.PatternFromCrashes(5, map[model.ProcessID]model.Time{
			model.ProcessID(seed % 5): model.Time(5 + seed%40),
		})
		res, err := sim.Run(sim.Exec{
			Automaton: consensus.NewCT([]int{1, 2, 3, 4, 5}),
			Pattern:   pattern,
			History:   fd.NewSuspicion(pattern, 60, seed),
			Scheduler: sim.NewFairScheduler(seed, 0.7, 4),
			MaxSteps:  500,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := check.OutcomeFromConfig(res.Config)
		if err := out.Validity(); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if err := out.UniformAgreement(); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}
