package consensus_test

import (
	"testing"

	"nuconsensus/internal/check"
	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/substrate"
	"nuconsensus/internal/trace"
)

// TestANucSmoke runs A_nuc on a small crashy system under a fair scheduler
// and checks nonuniform consensus end to end.
func TestANucSmoke(t *testing.T) {
	n := 4
	pattern := model.PatternFromCrashes(n, map[model.ProcessID]model.Time{3: 40})
	hist := fd.PairHistory{
		First:  fd.NewOmega(pattern, 60, 7),
		Second: fd.NewSigmaNuPlus(pattern, 60, 7),
	}
	aut := consensus.NewANuc([]int{0, 1, 1, 0})
	rec := &trace.Recorder{}
	res, err := sim.Run(sim.Exec{
		Automaton: aut,
		Pattern:   pattern,
		History:   hist,
		Scheduler: sim.NewFairScheduler(1, 0.8, 3),
		MaxSteps:  20000,
		StopWhen:  substrate.AllCorrectDecided(pattern),
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatalf("not all correct processes decided within %d steps (%s)", res.Steps, rec.Summary())
	}
	out := check.OutcomeFromConfig(res.Config)
	if err := out.NonuniformConsensus(pattern); err != nil {
		t.Fatal(err)
	}
	t.Logf("decided %v after %d steps, %s", out.Decisions, res.Steps, rec.Summary())
}
