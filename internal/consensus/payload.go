// Package consensus implements the paper's consensus algorithms as model
// automata:
//
//   - ANuc — the core contribution: algorithm A_nuc of §6.3 (Figs. 4–5),
//     which solves nonuniform consensus using (Ω, Σν+) in any environment
//     (Theorem 6.27);
//   - MR — the Mostéfaoui–Raynal leader-based algorithm the paper builds
//     on, in its three variants: majorities (uniform consensus with a
//     correct majority), Σ quorums (uniform consensus in any environment,
//     footnote 5), and the *naive* Σν-quorum adaptation that §6.3 shows is
//     contaminated and violates nonuniform agreement.
//
// Every automaton follows the paper's step discipline: the blocking waits
// of the pseudocode become phases, one wait-iteration (one failure-detector
// query) per atomic step, with the straight-line code between waits
// executing in the step whose wait completed.
package consensus

import (
	"fmt"

	"nuconsensus/internal/model"
	"nuconsensus/internal/quorum"
)

// Unknown stands for the special proposal value "?" of the third phase.
// Payloads encode it with HasV = false.
const Unknown = -1

// LeadPayload is the leader message (LEAD, k, x, H) of the first phase
// (Fig. 4 line 15). Hist is nil for MR variants, which carry no quorum
// histories.
type LeadPayload struct {
	K    int
	V    int
	Hist quorum.Histories // cloned at send; nil for MR
}

// Kind implements model.Payload.
func (LeadPayload) Kind() string { return "LEAD" }

// String implements model.Payload.
func (m LeadPayload) String() string { return fmt.Sprintf("LEAD(k=%d,v=%d)", m.K, m.V) }

// ReportPayload is the report message (REP, k, x) of the second phase
// (Fig. 4 line 19).
type ReportPayload struct {
	K int
	V int
}

// Kind implements model.Payload.
func (ReportPayload) Kind() string { return "REP" }

// String implements model.Payload.
func (m ReportPayload) String() string { return fmt.Sprintf("REP(k=%d,v=%d)", m.K, m.V) }

// ProposalPayload is the proposal message (PROP, k, v|?, H) of the third
// phase (Fig. 4 lines 22/24).
type ProposalPayload struct {
	K    int
	V    int
	HasV bool             // false encodes "?"
	Hist quorum.Histories // nil for MR
}

// Kind implements model.Payload.
func (ProposalPayload) Kind() string { return "PROP" }

// String implements model.Payload.
func (m ProposalPayload) String() string {
	if !m.HasV {
		return fmt.Sprintf("PROP(k=%d,?)", m.K)
	}
	return fmt.Sprintf("PROP(k=%d,v=%d)", m.K, m.V)
}

// LeadDeltaPayload is the delta-encoded form of LeadPayload used by the
// shared-store rsm mode: instead of a full history clone it carries the
// canonical additions since the version the sender last shipped to this
// receiver (Delta.Base == 0 marks the full-snapshot fallback for receivers
// whose base has been compacted away). The rsm transport applies the delta
// to the receiver's shared store and hands the inner instance a plain
// LeadPayload with Hist == nil. Delta payloads must never implement
// model.SupersededPayload: dropping one would break the version chain.
type LeadDeltaPayload struct {
	K     int
	V     int
	Delta quorum.Delta
}

// Kind implements model.Payload.
func (LeadDeltaPayload) Kind() string { return "LEADD" }

// String implements model.Payload.
func (m LeadDeltaPayload) String() string {
	return fmt.Sprintf("LEADD(k=%d,v=%d,%s)", m.K, m.V, m.Delta)
}

// Plain returns the equivalent history-free LeadPayload for the inner
// instance, once the transport has applied the delta.
func (m LeadDeltaPayload) Plain() LeadPayload { return LeadPayload{K: m.K, V: m.V} }

// ProposalDeltaPayload is the delta-encoded form of ProposalPayload (see
// LeadDeltaPayload).
type ProposalDeltaPayload struct {
	K     int
	V     int
	HasV  bool
	Delta quorum.Delta
}

// Kind implements model.Payload.
func (ProposalDeltaPayload) Kind() string { return "PROPD" }

// String implements model.Payload.
func (m ProposalDeltaPayload) String() string {
	if !m.HasV {
		return fmt.Sprintf("PROPD(k=%d,?,%s)", m.K, m.Delta)
	}
	return fmt.Sprintf("PROPD(k=%d,v=%d,%s)", m.K, m.V, m.Delta)
}

// Plain returns the equivalent history-free ProposalPayload.
func (m ProposalDeltaPayload) Plain() ProposalPayload {
	return ProposalPayload{K: m.K, V: m.V, HasV: m.HasV}
}

// SawPayload is the quorum-awareness message (SAW, p, Q) (Fig. 4 line 32);
// the sender p is the message's From field.
type SawPayload struct {
	Q model.ProcessSet
}

// Kind implements model.Payload.
func (SawPayload) Kind() string { return "SAW" }

// String implements model.Payload.
func (m SawPayload) String() string { return fmt.Sprintf("SAW(%s)", m.Q) }

// AckPayload is the acknowledgment (ACK, q, Q, k) (Fig. 4 line 37): the
// sender acknowledges having inserted Q into H_q[p] during its round K.
type AckPayload struct {
	Q model.ProcessSet
	K int
}

// Kind implements model.Payload.
func (AckPayload) Kind() string { return "ACK" }

// String implements model.Payload.
func (m AckPayload) String() string { return fmt.Sprintf("ACK(%s,k=%d)", m.Q, m.K) }
