package consensus_test

import (
	"reflect"
	"testing"

	"nuconsensus/internal/check"
	"nuconsensus/internal/consensus"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
	"nuconsensus/internal/sim"
	"nuconsensus/internal/substrate"
	"nuconsensus/internal/trace"
)

// drive runs one consensus execution and returns the result plus recorder.
func drive(t *testing.T, aut model.Automaton, pattern *model.FailurePattern, hist model.History, seed int64, maxSteps int) (*substrate.Result, *trace.Recorder) {
	t.Helper()
	rec := &trace.Recorder{}
	res, err := sim.Run(sim.Exec{
		Automaton: aut,
		Pattern:   pattern,
		History:   hist,
		Scheduler: sim.NewFairScheduler(seed, 0.8, 3),
		MaxSteps:  maxSteps,
		StopWhen:  substrate.AllCorrectDecided(pattern),
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, rec
}

func pairNuPlus(pattern *model.FailurePattern, stab model.Time, seed int64) model.History {
	return fd.PairHistory{First: fd.NewOmega(pattern, stab, seed), Second: fd.NewSigmaNuPlus(pattern, stab, seed)}
}

func pairSigma(pattern *model.FailurePattern, stab model.Time, seed int64) model.History {
	return fd.PairHistory{First: fd.NewOmega(pattern, stab, seed), Second: fd.NewSigma(pattern, stab, seed)}
}

// TestANucAllFailureCounts sweeps every f < n for a couple of sizes,
// including f ≥ n/2 where majorities are dead (the "any environment" claim).
func TestANucAllFailureCounts(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		for f := 0; f < n; f++ {
			for seed := int64(1); seed <= 3; seed++ {
				pattern := model.NewFailurePattern(n)
				for i := 0; i < f; i++ {
					pattern.SetCrash(model.ProcessID(n-1-i), model.Time(10+7*i))
				}
				props := make([]int, n)
				for i := range props {
					props[i] = i % 2
				}
				res, _ := drive(t, consensus.NewANuc(props), pattern, pairNuPlus(pattern, 90, seed), seed, 30000)
				if !res.Stopped {
					t.Fatalf("n=%d f=%d seed=%d: no decision", n, f, seed)
				}
				if err := check.OutcomeFromConfig(res.Config).NonuniformConsensus(pattern); err != nil {
					t.Fatalf("n=%d f=%d seed=%d: %v", n, f, seed, err)
				}
			}
		}
	}
}

// TestANucUnanimousProposalDecided: when every process proposes v, the only
// decidable value is v (a corollary of validity).
func TestANucUnanimousProposal(t *testing.T) {
	pattern := model.PatternFromCrashes(4, map[model.ProcessID]model.Time{0: 20})
	res, _ := drive(t, consensus.NewANuc([]int{6, 6, 6, 6}), pattern, pairNuPlus(pattern, 60, 2), 2, 30000)
	for p, v := range substrate.Decisions(res.Config) {
		if v != 6 {
			t.Errorf("%v decided %d, want 6", p, v)
		}
	}
}

// TestANucDeterministic: the same seed and history must reproduce the same
// execution (the automaton and scheduler are deterministic).
func TestANucDeterministic(t *testing.T) {
	run := func() (map[model.ProcessID]int, int) {
		pattern := model.PatternFromCrashes(4, map[model.ProcessID]model.Time{3: 40})
		res, _ := drive(t, consensus.NewANuc([]int{0, 1, 0, 1}), pattern, pairNuPlus(pattern, 60, 5), 5, 30000)
		return substrate.Decisions(res.Config), res.Steps
	}
	d1, s1 := run()
	d2, s2 := run()
	if s1 != s2 || !reflect.DeepEqual(d1, d2) {
		t.Fatalf("nondeterministic: (%v, %d) vs (%v, %d)", d1, s1, d2, s2)
	}
}

// TestANucStepPurity: Step must not mutate its input state (the DAG
// extraction branches configurations and relies on this).
func TestANucStepPurity(t *testing.T) {
	aut := consensus.NewANuc([]int{0, 1, 1})
	s0 := aut.InitState(0)
	snapshot := s0.CloneState()
	d := fd.PairValue{First: fd.LeaderValue{Leader: 0}, Second: fd.QuorumValue{Quorum: model.SetOf(0, 1)}}
	_, _ = aut.Step(0, s0, nil, d)
	if !reflect.DeepEqual(s0, snapshot) {
		t.Fatal("Step mutated its input state")
	}
}

// TestANucDecisionIrrevocable: once a process decides, its decision never
// changes even as the protocol continues (§2.8).
func TestANucDecisionIrrevocable(t *testing.T) {
	pattern := model.PatternFromCrashes(3, map[model.ProcessID]model.Time{2: 30})
	aut := consensus.NewANuc([]int{0, 1, 1})
	hist := pairNuPlus(pattern, 50, 3)

	first := make(map[model.ProcessID]int)
	rec := &trace.Recorder{}
	_, err := sim.Run(sim.Exec{
		Automaton: aut,
		Pattern:   pattern,
		History:   hist,
		Scheduler: sim.NewFairScheduler(3, 0.8, 3),
		MaxSteps:  1500, // keep running long after everyone decided
		Recorder:  rec,
		StopWhen: func(c *model.Configuration, _ model.Time) bool {
			for i, s := range c.States {
				if v, ok := model.DecisionOf(s); ok {
					p := model.ProcessID(i)
					if old, seen := first[p]; seen && old != v {
						t.Fatalf("%v changed its decision from %d to %d", p, old, v)
					}
					first[p] = v
				}
			}
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("nobody decided")
	}
}

// TestANucPanicsOnWrongDetector: driving A_nuc without a pair value is a
// misconfiguration and must fail loudly.
func TestANucPanicsOnWrongDetector(t *testing.T) {
	aut := consensus.NewANuc([]int{0, 1})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on missing Ω component")
		}
	}()
	st := aut.InitState(0)
	st, _ = aut.Step(0, st, nil, fd.QuorumValue{Quorum: model.SetOf(0)}) // phaseInit ok
	aut.Step(0, st, nil, fd.QuorumValue{Quorum: model.SetOf(0)})         // phaseLead needs Ω
}

func TestNewANucValidation(t *testing.T) {
	for _, bad := range [][]int{{}, {1}, make([]int, 65)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewANuc(%d proposals) must panic", len(bad))
				}
			}()
			consensus.NewANuc(bad)
		}()
	}
}

// TestMRMajorityUniform: MR with majorities and a correct majority solves
// uniform consensus.
func TestMRMajorityUniform(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		pattern := model.PatternFromCrashes(5, map[model.ProcessID]model.Time{1: 15, 3: 25})
		res, _ := drive(t, consensus.NewMRMajority([]int{2, 2, 8, 8, 8}), pattern, fd.NewOmega(pattern, 60, seed), seed, 30000)
		if !res.Stopped {
			t.Fatalf("seed=%d: no decision", seed)
		}
		if err := check.OutcomeFromConfig(res.Config).UniformConsensus(pattern); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

// TestMRMajorityBlocksWithoutMajority: with f ≥ n/2 the majority algorithm
// cannot terminate — the separation that motivates quorum detectors.
func TestMRMajorityBlocksWithoutMajority(t *testing.T) {
	pattern := model.PatternFromCrashes(4, map[model.ProcessID]model.Time{2: 10, 3: 12})
	res, _ := drive(t, consensus.NewMRMajority([]int{0, 1, 0, 1}), pattern, fd.NewOmega(pattern, 30, 1), 1, 4000)
	if res.Stopped {
		t.Fatal("majority MR decided with half the processes crashed")
	}
	if len(substrate.Decisions(res.Config)) != 0 {
		t.Fatalf("unexpected decisions %v", substrate.Decisions(res.Config))
	}
}

// TestMRSigmaAnyEnvironment: MR with Σ quorums solves uniform consensus
// even with n−1 crashes.
func TestMRSigmaAnyEnvironment(t *testing.T) {
	for _, f := range []int{0, 2, 3} {
		pattern := model.NewFailurePattern(4)
		for i := 0; i < f; i++ {
			pattern.SetCrash(model.ProcessID(i+1), model.Time(8*(i+1)))
		}
		res, _ := drive(t, consensus.NewMRSigma([]int{4, 9, 9, 4}), pattern, pairSigma(pattern, 60, 7), 7, 30000)
		if !res.Stopped {
			t.Fatalf("f=%d: no decision", f)
		}
		if err := check.OutcomeFromConfig(res.Config).UniformConsensus(pattern); err != nil {
			t.Fatalf("f=%d: %v", f, err)
		}
	}
}

// TestRoundsAreMonotone: the exposed round counter never decreases.
func TestRoundsAreMonotone(t *testing.T) {
	pattern := model.NewFailurePattern(3)
	aut := consensus.NewANuc([]int{0, 1, 0})
	hist := pairNuPlus(pattern, 40, 1)
	last := make(map[model.ProcessID]int)
	_, err := sim.Run(sim.Exec{
		Automaton: aut,
		Pattern:   pattern,
		History:   hist,
		Scheduler: sim.NewFairScheduler(1, 0.8, 3),
		MaxSteps:  600,
		StopWhen: func(c *model.Configuration, _ model.Time) bool {
			for i, s := range c.States {
				r, _ := model.RoundOf(s)
				p := model.ProcessID(i)
				if r < last[p] {
					t.Fatalf("%v round went backwards: %d → %d", p, last[p], r)
				}
				last[p] = r
			}
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPayloadMetadata covers Kind/String of every payload.
func TestPayloadMetadata(t *testing.T) {
	payloads := []model.Payload{
		consensus.LeadPayload{K: 1, V: 2},
		consensus.ReportPayload{K: 1, V: 2},
		consensus.ProposalPayload{K: 1, V: 2, HasV: true},
		consensus.ProposalPayload{K: 1},
		consensus.SawPayload{Q: model.SetOf(0)},
		consensus.AckPayload{Q: model.SetOf(0), K: 3},
	}
	kinds := map[string]bool{}
	for _, pl := range payloads {
		if pl.Kind() == "" || pl.String() == "" {
			t.Errorf("%T has empty metadata", pl)
		}
		kinds[pl.Kind()] = true
	}
	for _, want := range []string{"LEAD", "REP", "PROP", "SAW", "ACK"} {
		if !kinds[want] {
			t.Errorf("missing payload kind %s", want)
		}
	}
	// The "?" proposal renders distinctly.
	unknown := consensus.ProposalPayload{K: 1}
	known := consensus.ProposalPayload{K: 1, V: 0, HasV: true}
	if unknown.String() == known.String() {
		t.Error("? proposal must render differently from value 0")
	}
}

// TestANucSawAckBookkeeping drives the SAW/ACK handshake directly: after p
// announces quorum Q and every member acknowledges, decisions in later
// rounds become possible (seen gate open); the test observes the handshake
// messages in a real run.
func TestANucSawAckBookkeeping(t *testing.T) {
	pattern := model.NewFailurePattern(3)
	res, rec := drive(t, consensus.NewANuc([]int{1, 1, 1}), pattern, pairNuPlus(pattern, 0, 4), 4, 30000)
	if !res.Stopped {
		t.Fatal("no decision")
	}
	if rec.SentKinds["SAW"] == 0 || rec.SentKinds["ACK"] == 0 {
		t.Errorf("expected SAW/ACK traffic, got %v", rec.SentKinds)
	}
	// One ACK per SAW recipient: with a single stable quorum of size 3,
	// ACKs ≥ SAWs.
	if rec.SentKinds["ACK"] < rec.SentKinds["SAW"] {
		t.Errorf("fewer ACKs (%d) than SAWs (%d)", rec.SentKinds["ACK"], rec.SentKinds["SAW"])
	}
}

// TestAblatedNamesAndBehavior: ablations advertise themselves and the full
// variant still solves consensus.
func TestAblatedNamesAndBehavior(t *testing.T) {
	names := map[string]consensus.Ablation{
		"A_nuc":                  {},
		"A_nuc[-distrust]":       {NoDistrust: true},
		"A_nuc[-seen]":           {NoSeenGate: true},
		"A_nuc[-distrust,-seen]": {NoDistrust: true, NoSeenGate: true},
	}
	for want, ab := range names {
		if got := consensus.NewANucAblated([]int{0, 1}, ab).Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

// TestMRPanicsOnWrongDetector: misconfigured detector values fail loudly.
func TestMRPanicsOnWrongDetector(t *testing.T) {
	t.Run("missing leader", func(t *testing.T) {
		aut := consensus.NewMRMajority([]int{0, 1})
		st := aut.InitState(0)
		st, _ = aut.Step(0, st, nil, fd.NullValue{}) // phaseInit ignores d
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		aut.Step(0, st, nil, fd.NullValue{}) // phaseLead needs Ω
	})
	t.Run("missing quorum", func(t *testing.T) {
		aut := consensus.NewMRSigma([]int{0, 1})
		s0 := aut.InitState(0)
		s1, _ := aut.Step(0, s0, nil, fd.LeaderValue{Leader: 0})
		// Feed itself its own LEAD so phaseLead completes, reaching the
		// quorum wait with a leader-only value.
		c := model.InitialConfiguration(aut)
		c.States[0] = s1
		_ = c
		// Hand-deliver a LEAD(1) message from p0 to itself: the wait at
		// phaseLead completes and the process parks at the report wait.
		m := &model.Message{From: 0, To: 0, Seq: 0, Payload: consensus.LeadPayload{K: 1, V: 0}}
		s2, _ := aut.Step(0, s1, m, fd.LeaderValue{Leader: 0})
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		// The report wait polls the quorum component — absent here.
		aut.Step(0, s2, nil, fd.LeaderValue{Leader: 0})
	})
}

// TestCTPayloadMetadata covers the CT payload kinds.
func TestCTPayloadMetadata(t *testing.T) {
	payloads := []model.Payload{
		consensus.EstimatePayload{R: 1, V: 2, TS: 0},
		consensus.CoordPayload{R: 1, V: 2},
		consensus.ReplyPayload{R: 1, Ok: true},
		consensus.DecidePayload{V: 2},
	}
	seen := map[string]bool{}
	for _, pl := range payloads {
		if pl.Kind() == "" || pl.String() == "" {
			t.Errorf("%T has empty metadata", pl)
		}
		if seen[pl.Kind()] {
			t.Errorf("duplicate payload kind %s", pl.Kind())
		}
		seen[pl.Kind()] = true
	}
}
