package consensus_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nuconsensus/internal/check"
	"nuconsensus/internal/consensus"
	"nuconsensus/internal/model"
	"nuconsensus/internal/sim"
)

// TestLemma620And621Invariants runs A_nuc under adversarial Σν+ histories
// and checks, at every step of every process:
//
//	Lemma 6.20: p never considers itself faulty (p ∉ F_p);
//	Lemma 6.21: a correct process never considers another correct process
//	            faulty (their Σν+ quorums always intersect).
func TestLemma620And621Invariants(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		pattern := model.PatternFromCrashes(4, map[model.ProcessID]model.Time{3: 60})
		correct := pattern.Correct()
		aut := consensus.NewANuc([]int{0, 1, 0, 1})
		_, err := sim.Run(sim.Exec{
			Automaton: aut,
			Pattern:   pattern,
			History:   pairNuPlus(pattern, 90, seed),
			Scheduler: sim.NewFairScheduler(seed, 0.8, 3),
			MaxSteps:  800,
			StopWhen: func(c *model.Configuration, _ model.Time) bool {
				for i, s := range c.States {
					p := model.ProcessID(i)
					fv, ok := s.(consensus.FaultView)
					if !ok {
						t.Fatal("A_nuc state must expose FaultView")
					}
					fp := fv.ConsideredFaulty()
					if fp.Has(p) {
						t.Fatalf("Lemma 6.20 violated: %v ∈ F_%v", p, p)
					}
					if correct.Has(p) && fp.Intersects(correct) {
						t.Fatalf("Lemma 6.21 violated: correct %v considers correct %v faulty",
							p, fp.Intersect(correct))
					}
				}
				return false
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestANucSafetyFuzz is a property-based safety check: for random failure
// patterns, proposals and schedules, validity and nonuniform agreement must
// hold in every (possibly unfinished) execution. Termination is checked
// elsewhere with explicit budgets; safety must never depend on them.
func TestANucSafetyFuzz(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(99))}
	property := func(seed int64, rawN, crashMask uint8, propBits uint8) bool {
		n := 3 + int(rawN%4) // 3..6
		pattern := model.NewFailurePattern(n)
		for i := 0; i < n; i++ {
			// Leave at least p_{n-1} alive.
			if crashMask&(1<<uint(i)) != 0 && i != n-1 {
				pattern.SetCrash(model.ProcessID(i), model.Time(1+(int64(seed)+int64(i)*13)%120&0x7f))
			}
		}
		props := make([]int, n)
		for i := range props {
			props[i] = int(propBits >> uint(i) & 1)
		}
		res, err := sim.Run(sim.Exec{
			Automaton: consensus.NewANuc(props),
			Pattern:   pattern,
			History:   pairNuPlus(pattern, 70, seed),
			Scheduler: sim.NewFairScheduler(seed, 0.7, 4),
			MaxSteps:  400, // deliberately short: safety mustn't need liveness
		})
		if err != nil {
			t.Log(err)
			return false
		}
		out := check.OutcomeFromConfig(res.Config)
		if err := out.Validity(); err != nil {
			t.Log(err)
			return false
		}
		if err := out.NonuniformAgreement(pattern); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// TestMRSigmaSafetyFuzz does the same for the uniform baseline, with the
// stronger uniform agreement property.
func TestMRSigmaSafetyFuzz(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(7))}
	property := func(seed int64, rawN, crashMask uint8) bool {
		n := 3 + int(rawN%4)
		pattern := model.NewFailurePattern(n)
		for i := 0; i < n-1; i++ {
			if crashMask&(1<<uint(i)) != 0 {
				pattern.SetCrash(model.ProcessID(i), model.Time(1+int64(i)*17))
			}
		}
		props := make([]int, n)
		for i := range props {
			props[i] = i % 2
		}
		res, err := sim.Run(sim.Exec{
			Automaton: consensus.NewMRSigma(props),
			Pattern:   pattern,
			History:   pairSigma(pattern, 70, seed),
			Scheduler: sim.NewFairScheduler(seed, 0.7, 4),
			MaxSteps:  400,
		})
		if err != nil {
			return false
		}
		out := check.OutcomeFromConfig(res.Config)
		return out.Validity() == nil && out.UniformAgreement() == nil
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}
