package consensus

import (
	"fmt"

	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
)

// QuorumMode selects where an MR process's wait-sets come from.
type QuorumMode int

const (
	// Majority waits for messages from any strict majority of processes —
	// the original Mostéfaoui–Raynal algorithm [6], correct in environments
	// with a majority of correct processes.
	Majority QuorumMode = iota
	// FDQuorum waits for messages from every member of the quorum currently
	// output by the failure detector's quorum component (re-read at each
	// wait-iteration). With Σ this solves uniform consensus in any
	// environment (§6.3, footnote 5); with Σν it is the *naive* adaptation
	// that §6.3 shows violates nonuniform agreement via contamination.
	FDQuorum
)

// MR is the Mostéfaoui–Raynal leader-based consensus algorithm in the
// round/phase form described in §6.3: leader phase, report phase, proposal
// phase. It has no quorum histories, no distrust, and no quorum-awareness
// mechanism — it is both the baseline A_nuc is measured against and the
// foil whose contamination motivates A_nuc's machinery.
type MR struct {
	proposals []int
	mode      QuorumMode
	name      string
}

// NewMRMajority returns the majority-based MR automaton (uses Ω only; the
// failure-detector value may be a bare LeaderValue or any pair with an Ω
// first component).
func NewMRMajority(proposals []int) *MR {
	return newMR(proposals, Majority, "MR-majority")
}

// NewMRSigma returns the Σ-quorum MR automaton. Drive it with (Ω, Σ) pair
// values; it solves uniform consensus in any environment.
func NewMRSigma(proposals []int) *MR {
	return newMR(proposals, FDQuorum, "MR-Σ")
}

// NewMRNaiveNu returns the naive Σν-quorum MR automaton. Drive it with
// (Ω, Σν) pair values; it is NOT a correct nonuniform consensus algorithm —
// it exists to exhibit the contamination scenario of §6.3.
func NewMRNaiveNu(proposals []int) *MR {
	return newMR(proposals, FDQuorum, "MR-naiveΣν")
}

func newMR(proposals []int, mode QuorumMode, name string) *MR {
	if len(proposals) < 2 || len(proposals) > model.MaxProcesses {
		panic(fmt.Sprintf("consensus: invalid system size %d", len(proposals)))
	}
	ps := make([]int, len(proposals))
	copy(ps, proposals)
	return &MR{proposals: ps, mode: mode, name: name}
}

// Name implements model.Automaton.
func (a *MR) Name() string { return a.name }

// N implements model.Automaton.
func (a *MR) N() int { return len(a.proposals) }

// mrState is the local state of one MR process.
type mrState struct {
	p        model.ProcessID
	proposal int

	x  int
	k  int
	ph phase

	leads map[int]map[model.ProcessID]LeadPayload
	reps  map[int]map[model.ProcessID]ReportPayload
	props map[int]map[model.ProcessID]ProposalPayload

	decided  bool
	decision int
}

// CloneState implements model.State.
func (s *mrState) CloneState() model.State {
	c := *s
	c.leads = cloneInbox(s.leads)
	c.reps = cloneInbox(s.reps)
	c.props = cloneInbox(s.props)
	return &c
}

// Decision implements model.Decider.
func (s *mrState) Decision() (int, bool) { return s.decision, s.decided }

// Proposal implements model.Proposer.
func (s *mrState) Proposal() int { return s.proposal }

// Round exposes the current round for instrumentation.
func (s *mrState) Round() int { return s.k }

// InitState implements model.Automaton.
func (a *MR) InitState(p model.ProcessID) model.State {
	return &mrState{
		p:        p,
		proposal: a.proposals[p],
		x:        a.proposals[p],
		ph:       phaseInit,
		leads:    make(map[int]map[model.ProcessID]LeadPayload),
		reps:     make(map[int]map[model.ProcessID]ReportPayload),
		props:    make(map[int]map[model.ProcessID]ProposalPayload),
	}
}

// Step implements model.Automaton.
func (a *MR) Step(p model.ProcessID, s model.State, m *model.Message, d model.FDValue) (model.State, []model.Send) {
	st := s.CloneState().(*mrState)
	if m != nil {
		st.handleMessage(m)
	}
	return st, st.advance(a, d)
}

func (s *mrState) handleMessage(m *model.Message) {
	switch pl := m.Payload.(type) {
	case LeadPayload:
		if pl.K >= s.k {
			putInbox(s.leads, pl.K, m.From, pl)
		}
	case ReportPayload:
		if pl.K >= s.k {
			putInbox(s.reps, pl.K, m.From, pl)
		}
	case ProposalPayload:
		if pl.K >= s.k {
			putInbox(s.props, pl.K, m.From, pl)
		}
	default:
		panic(fmt.Sprintf("consensus: MR received unknown payload %T", m.Payload))
	}
}

// majority returns the strict-majority threshold ⌊n/2⌋+1.
func majority(n int) int { return n/2 + 1 }

func (s *mrState) advance(a *MR, d model.FDValue) []model.Send {
	all := model.FullSet(a.N())
	var out []model.Send
	switch s.ph {
	case phaseInit:
		s.startRound(all, &out)

	case phaseLead:
		leader, ok := fd.LeaderOf(d)
		if !ok {
			panic(fmt.Sprintf("consensus: MR needs an Ω component, got %v", d))
		}
		lead, got := s.leads[s.k][leader]
		if !got {
			return out
		}
		s.x = lead.V // MR adopts the leader's estimate unconditionally
		out = append(out, model.Broadcast(all, ReportPayload{K: s.k, V: s.x})...)
		s.ph = phaseReport

	case phaseReport:
		collected, ok := s.collected(a, d, len(s.reps[s.k]), func(q model.ProcessSet) bool {
			return receivedFromAll(s.reps[s.k], q)
		})
		if !ok {
			return out
		}
		pl := ProposalPayload{K: s.k}
		switch a.mode {
		case Majority:
			// Propose v if a majority reported the same estimate.
			if v, got := majorityValue(s.reps[s.k], majority(a.N()), func(r ReportPayload) (int, bool) { return r.V, true }); got {
				pl.V, pl.HasV = v, true
			}
		case FDQuorum:
			if v, unanimous := unanimousValue(s.reps[s.k], collected, func(r ReportPayload) (int, bool) { return r.V, true }); unanimous {
				pl.V, pl.HasV = v, true
			}
		}
		out = append(out, model.Broadcast(all, pl)...)
		s.ph = phaseProp

	case phaseProp:
		collected, ok := s.collected(a, d, len(s.props[s.k]), func(q model.ProcessSet) bool {
			return receivedFromAll(s.props[s.k], q)
		})
		if !ok {
			return out
		}
		props := s.props[s.k]
		switch a.mode {
		case Majority:
			// Adopt any non-? proposal; decide on a majority of identical
			// non-? proposals.
			for _, r := range senderSet(props).Slice() {
				if pl := props[r]; pl.HasV {
					s.x = pl.V
					break
				}
			}
			if v, got := majorityValue(props, majority(a.N()), func(r ProposalPayload) (int, bool) { return r.V, r.HasV }); got {
				s.decide(v)
			}
		case FDQuorum:
			if v, any := anyValue(props, collected); any {
				s.x = v
			}
			if v, unanimous := unanimousValue(props, collected, func(r ProposalPayload) (int, bool) { return r.V, r.HasV }); unanimous {
				s.decide(v)
			}
		}
		s.startRound(all, &out)
	}
	return out
}

// collected reports whether the current wait-set condition holds and, for
// FDQuorum mode, which quorum satisfied it.
func (s *mrState) collected(a *MR, d model.FDValue, count int, haveAll func(model.ProcessSet) bool) (model.ProcessSet, bool) {
	switch a.mode {
	case Majority:
		return model.EmptySet, count >= majority(a.N())
	case FDQuorum:
		q, ok := fd.QuorumOf(d)
		if !ok {
			panic(fmt.Sprintf("consensus: MR (quorum mode) needs a quorum component, got %v", d))
		}
		return q, haveAll(q)
	default:
		panic("consensus: unknown quorum mode")
	}
}

func (s *mrState) decide(v int) {
	if !s.decided {
		s.decided = true
		s.decision = v
	}
}

func (s *mrState) startRound(all model.ProcessSet, out *[]model.Send) {
	s.k++
	pruneInbox(s.leads, s.k)
	pruneInbox(s.reps, s.k)
	pruneInbox(s.props, s.k)
	*out = append(*out, model.Broadcast(all, LeadPayload{K: s.k, V: s.x})...)
	s.ph = phaseLead
}

// majorityValue returns a value reported by at least threshold senders.
func majorityValue[P any](byP map[model.ProcessID]P, threshold int, val func(P) (int, bool)) (int, bool) {
	counts := make(map[int]int)
	for _, pl := range byP {
		if v, ok := val(pl); ok {
			counts[v]++
			if counts[v] >= threshold {
				return v, true
			}
		}
	}
	return 0, false
}

// senderSet returns the set of processes with a buffered message.
func senderSet[P any](byP map[model.ProcessID]P) model.ProcessSet {
	var s model.ProcessSet
	for p := range byP {
		s = s.Add(p)
	}
	return s
}
