package consensus

import (
	"nuconsensus/internal/model"
	"nuconsensus/internal/quorum"
)

// HistoryStore abstracts the quorum-history variable H_p of A_nuc so the
// state can either own its histories (the paper's single-instance shape —
// the default, byte-identical to the pre-interface behavior) or share one
// per-process store across many slot instances (internal/rsm). History
// entries are global facts — "process r saw quorum q" — so sharing only
// makes the distrusts predicate better informed; it never unsays anything.
type HistoryStore interface {
	// Add records that process r saw quorum q (Fig. 5 line 49 for r == p,
	// Fig. 4 line 36 for SAW senders).
	Add(r model.ProcessID, q model.ProcessSet)
	// Import merges a received history (procedure import_history, Fig. 5
	// lines 44–46). A nil argument is a no-op: delta-mode payloads carry
	// no inline histories because the transport applied them already.
	Import(h quorum.Histories)
	// Distrusts is the distrusts(q) predicate (Fig. 5 lines 51–53).
	Distrusts(p, q model.ProcessID) bool
	// ConsideredFaulty is F_p (Fig. 5 line 52).
	ConsideredFaulty(p model.ProcessID) model.ProcessSet
	// Outgoing returns the history snapshot a LEAD/PROP payload should
	// carry inline: a clone for owned stores, nil for shared stores whose
	// transport ships versioned deltas out-of-band instead.
	Outgoing() quorum.Histories
	// CloneStore supports the clone-then-mutate step discipline. Owned
	// stores deep-copy; a shared store returns itself and relies on its
	// owner (the rsm log state) to clone once per step and rebind.
	CloneStore() HistoryStore
}

// StoreBound is implemented by states whose history store can be rebound
// after a clone. The rsm log state clones its shared store once per step
// and rebinds every cloned slot instance to the copy.
type StoreBound interface {
	BindStore(HistoryStore)
}

// ownedHistories is the default HistoryStore: a private quorum.Histories,
// cloned on CloneStore and on every Outgoing snapshot — exactly the
// pre-HistoryStore semantics and bytes.
type ownedHistories struct {
	h quorum.Histories
}

func newOwnedHistories(n int) *ownedHistories {
	return &ownedHistories{h: quorum.NewHistories(n)}
}

func (o *ownedHistories) Add(r model.ProcessID, q model.ProcessSet) { o.h.Add(r, q) }

func (o *ownedHistories) Import(h quorum.Histories) {
	if h != nil {
		o.h.Import(h)
	}
}

func (o *ownedHistories) Distrusts(p, q model.ProcessID) bool { return o.h.Distrusts(p, q) }

func (o *ownedHistories) ConsideredFaulty(p model.ProcessID) model.ProcessSet {
	return o.h.ConsideredFaulty(p)
}

func (o *ownedHistories) Outgoing() quorum.Histories { return o.h.Clone() }

func (o *ownedHistories) CloneStore() HistoryStore { return &ownedHistories{h: o.h.Clone()} }

// Histories exposes the owned state for tests and size accounting.
func (o *ownedHistories) Histories() quorum.Histories { return o.h }

// HistoryLen returns the number of distinct (process, quorum) entries a
// state's store holds, for live-state accounting (E17). Shared stores are
// counted once by their owner, so they report 0 here.
func HistoryLen(s model.State) int {
	st, ok := s.(*anucState)
	if !ok {
		return 0
	}
	if o, ok := st.store.(*ownedHistories); ok {
		n := 0
		for _, set := range o.h {
			n += len(set)
		}
		return n
	}
	return 0
}
