package consensus

import (
	"fmt"

	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
)

// CT is the classic Chandra–Toueg rotating-coordinator consensus algorithm
// (reference [2] of the paper): uniform consensus from an eventually-strong
// suspicion detector (◇S — here driven with fd.SuspectsValue histories such
// as fd.NewSuspicion or the heartbeat suspector) in environments with a
// correct majority. It predates the quorum detectors and completes the
// repository's baseline family: majorities + Ω (MR), majorities + ◇S (CT),
// Σ quorums (MR-Σ), Σν+ quorums (A_nuc).
//
// Round r: the coordinator c = (r−1) mod n gathers a majority of timestamped
// estimates, picks the freshest, and broadcasts it; participants either
// adopt-and-ACK or, upon suspecting c, NACK and move on; a coordinator that
// gathers a majority of pure ACKs reliably broadcasts DECIDE. Locking
// estimates under majority ACKs is what makes agreement *uniform*.
type CT struct {
	proposals []int
}

// NewCT returns the Chandra–Toueg automaton for len(proposals) processes.
func NewCT(proposals []int) *CT {
	if len(proposals) < 2 || len(proposals) > model.MaxProcesses {
		panic(fmt.Sprintf("consensus: invalid system size %d", len(proposals)))
	}
	ps := make([]int, len(proposals))
	copy(ps, proposals)
	return &CT{proposals: ps}
}

// Name implements model.Automaton.
func (a *CT) Name() string { return "CT-◇S" }

// N implements model.Automaton.
func (a *CT) N() int { return len(a.proposals) }

// Coordinator returns round r's coordinator.
func (a *CT) Coordinator(r int) model.ProcessID {
	return model.ProcessID((r - 1) % a.N())
}

// ctPhase mirrors the four phases of a Chandra–Toueg round.
type ctPhase int

const (
	ctStart ctPhase = iota
	ctWaitEstimates
	ctWaitCoord
	ctWaitAcks
	ctDone // decided and relayed: the process halts
)

// EstimatePayload is the phase-1 message (ESTIMATE, r, x, ts).
type EstimatePayload struct {
	R  int
	V  int
	TS int
}

// Kind implements model.Payload.
func (EstimatePayload) Kind() string { return "EST" }

// String implements model.Payload.
func (m EstimatePayload) String() string { return fmt.Sprintf("EST(r=%d,v=%d,ts=%d)", m.R, m.V, m.TS) }

// CoordPayload is the phase-2 message (COORD, r, est).
type CoordPayload struct {
	R int
	V int
}

// Kind implements model.Payload.
func (CoordPayload) Kind() string { return "CRD" }

// String implements model.Payload.
func (m CoordPayload) String() string { return fmt.Sprintf("CRD(r=%d,v=%d)", m.R, m.V) }

// ReplyPayload is the phase-3 reply (ACK/NACK, r).
type ReplyPayload struct {
	R  int
	Ok bool
}

// Kind implements model.Payload.
func (ReplyPayload) Kind() string { return "RPL" }

// String implements model.Payload.
func (m ReplyPayload) String() string { return fmt.Sprintf("RPL(r=%d,ok=%v)", m.R, m.Ok) }

// DecidePayload is the reliably-broadcast decision.
type DecidePayload struct {
	V int
}

// Kind implements model.Payload.
func (DecidePayload) Kind() string { return "DCD" }

// String implements model.Payload.
func (m DecidePayload) String() string { return fmt.Sprintf("DCD(v=%d)", m.V) }

// ctState is one process's Chandra–Toueg state.
type ctState struct {
	p        model.ProcessID
	proposal int

	x  int // estimate
	ts int // round in which x was last locked
	r  int // current round
	ph ctPhase

	estimates map[int]map[model.ProcessID]EstimatePayload
	coords    map[int]CoordPayload
	replies   map[int][]bool

	decided  bool
	decision int
}

// CloneState implements model.State.
func (s *ctState) CloneState() model.State {
	c := *s
	c.estimates = make(map[int]map[model.ProcessID]EstimatePayload, len(s.estimates))
	for r, byP := range s.estimates {
		m := make(map[model.ProcessID]EstimatePayload, len(byP))
		for p, e := range byP {
			m[p] = e
		}
		c.estimates[r] = m
	}
	c.coords = make(map[int]CoordPayload, len(s.coords))
	for r, v := range s.coords {
		c.coords[r] = v
	}
	c.replies = make(map[int][]bool, len(s.replies))
	for r, v := range s.replies {
		c.replies[r] = append([]bool(nil), v...)
	}
	return &c
}

// Decision implements model.Decider.
func (s *ctState) Decision() (int, bool) { return s.decision, s.decided }

// Proposal implements model.Proposer.
func (s *ctState) Proposal() int { return s.proposal }

// Round implements model.Rounder.
func (s *ctState) Round() int { return s.r }

// InitState implements model.Automaton.
func (a *CT) InitState(p model.ProcessID) model.State {
	return &ctState{
		p:         p,
		proposal:  a.proposals[p],
		x:         a.proposals[p],
		estimates: make(map[int]map[model.ProcessID]EstimatePayload),
		coords:    make(map[int]CoordPayload),
		replies:   make(map[int][]bool),
	}
}

// Step implements model.Automaton.
func (a *CT) Step(p model.ProcessID, s model.State, m *model.Message, d model.FDValue) (model.State, []model.Send) {
	st := s.CloneState().(*ctState)
	var out []model.Send
	if m != nil {
		out = append(out, st.handle(a, m)...)
	}
	if st.ph != ctDone {
		out = append(out, st.advance(a, d)...)
	}
	return st, out
}

func (s *ctState) handle(a *CT, m *model.Message) []model.Send {
	switch pl := m.Payload.(type) {
	case EstimatePayload:
		if pl.R >= s.r {
			byP := s.estimates[pl.R]
			if byP == nil {
				byP = make(map[model.ProcessID]EstimatePayload)
				s.estimates[pl.R] = byP
			}
			byP[m.From] = pl
		}
	case CoordPayload:
		if pl.R >= s.r {
			s.coords[pl.R] = pl
		}
	case ReplyPayload:
		if pl.R >= s.r {
			s.replies[pl.R] = append(s.replies[pl.R], pl.Ok)
		}
	case DecidePayload:
		if !s.decided {
			s.decided = true
			s.decision = pl.V
			s.ph = ctDone
			// Relay (reliable broadcast), then halt.
			return model.Broadcast(model.FullSet(a.N()).Remove(s.p), DecidePayload{V: pl.V})
		}
	default:
		panic(fmt.Sprintf("consensus: CT received unknown payload %T", m.Payload))
	}
	return nil
}

func (s *ctState) advance(a *CT, d model.FDValue) []model.Send {
	var out []model.Send
	switch s.ph {
	case ctStart:
		// New round: send the timestamped estimate to the coordinator.
		s.r++
		s.prune()
		coord := a.Coordinator(s.r)
		out = append(out, model.Send{To: coord, Payload: EstimatePayload{R: s.r, V: s.x, TS: s.ts}})
		if s.p == coord {
			s.ph = ctWaitEstimates
		} else {
			s.ph = ctWaitCoord
		}

	case ctWaitEstimates:
		// Phase 2 (coordinator): majority of estimates, freshest wins.
		byP := s.estimates[s.r]
		if len(byP) < majority(a.N()) {
			return out
		}
		best := EstimatePayload{TS: -1}
		for _, e := range byP {
			if e.TS > best.TS || (e.TS == best.TS && e.V < best.V) {
				best = e
			}
		}
		out = append(out, model.Broadcast(model.FullSet(a.N()).Remove(s.p), CoordPayload{R: s.r, V: best.V})...)
		// The coordinator adopts and ACKs its own proposal implicitly.
		s.x = best.V
		s.ts = s.r
		s.replies[s.r] = append(s.replies[s.r], true)
		s.ph = ctWaitAcks

	case ctWaitCoord:
		coord := a.Coordinator(s.r)
		if pl, ok := s.coords[s.r]; ok {
			s.x = pl.V
			s.ts = s.r
			out = append(out, model.Send{To: coord, Payload: ReplyPayload{R: s.r, Ok: true}})
			s.ph = ctStart
			return out
		}
		sus, ok := fd.SuspectsOf(d)
		if !ok {
			panic(fmt.Sprintf("consensus: CT needs a suspects component, got %v", d))
		}
		if sus.Has(coord) {
			out = append(out, model.Send{To: coord, Payload: ReplyPayload{R: s.r, Ok: false}})
			s.ph = ctStart
		}

	case ctWaitAcks:
		rs := s.replies[s.r]
		if len(rs) < majority(a.N()) {
			return out
		}
		allOk := true
		for _, ok := range rs[:majority(a.N())] {
			if !ok {
				allOk = false
			}
		}
		if allOk {
			// Reliable broadcast of the decision, then halt.
			s.decided = true
			s.decision = s.x
			s.ph = ctDone
			out = append(out, model.Broadcast(model.FullSet(a.N()).Remove(s.p), DecidePayload{V: s.x})...)
			return out
		}
		s.ph = ctStart
	}
	return out
}

// prune drops buffered messages for completed rounds.
func (s *ctState) prune() {
	for r := range s.estimates {
		if r < s.r {
			delete(s.estimates, r)
		}
	}
	for r := range s.coords {
		if r < s.r {
			delete(s.coords, r)
		}
	}
	for r := range s.replies {
		if r < s.r {
			delete(s.replies, r)
		}
	}
}
