package consensus

import (
	"fmt"

	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
)

// phase identifies where in the round structure a process is parked. The
// pseudocode's blocking waits each query the failure detector, so the model
// permits at most one wait-iteration per atomic step; the straight-line
// code after a completed wait (sending the next message, starting the next
// round) runs in the same step.
type phase int

const (
	phaseInit   phase = iota // before the first round's LEAD send
	phaseLead                // waiting at Fig. 4 line 16
	phaseReport              // waiting at Fig. 4 line 20
	phaseProp                // in the repeat loop of Fig. 4 lines 25–28
)

func (ph phase) String() string {
	switch ph {
	case phaseInit:
		return "init"
	case phaseLead:
		return "lead"
	case phaseReport:
		return "report"
	case phaseProp:
		return "prop"
	default:
		return fmt.Sprintf("phase(%d)", int(ph))
	}
}

// ANuc is algorithm A_nuc (Figs. 4–5): nonuniform consensus using
// (Ω, Σν+) in any environment. Steps must be driven with PairValue
// failure-detector values whose first component is a LeaderValue (Ω) and
// whose second is a QuorumValue (Σν+).
type ANuc struct {
	proposals []int
	ablation  Ablation
}

// Ablation disables pieces of A_nuc's machinery for the ablation
// experiments (Q5): each switch removes one of the defenses §6.3 motivates,
// and the experiments show which consensus property breaks without it.
type Ablation struct {
	// NoDistrust makes distrusts(q) always false: processes adopt leader
	// estimates and accept proposal quorums unconditionally, as in the
	// naive Mostéfaoui–Raynal adaptation.
	NoDistrust bool
	// NoSeenGate drops the seen_p[Q_p] < k_p condition of line 30: a
	// process may decide before its quorum has acknowledged the SAW
	// message, losing the quorum-awareness property (Lemma 6.24).
	NoSeenGate bool
}

// NewANuc returns the A_nuc automaton for a system of n = len(proposals)
// processes in which process p proposes proposals[p].
func NewANuc(proposals []int) *ANuc {
	return NewANucAblated(proposals, Ablation{})
}

// NewANucAblated returns A_nuc with parts of its machinery disabled. Only
// the zero Ablation yields a correct nonuniform consensus algorithm.
func NewANucAblated(proposals []int, ab Ablation) *ANuc {
	if len(proposals) < 2 || len(proposals) > model.MaxProcesses {
		panic(fmt.Sprintf("consensus: invalid system size %d", len(proposals)))
	}
	ps := make([]int, len(proposals))
	copy(ps, proposals)
	return &ANuc{proposals: ps, ablation: ab}
}

// Name implements model.Automaton.
func (a *ANuc) Name() string {
	switch {
	case a.ablation.NoDistrust && a.ablation.NoSeenGate:
		return "A_nuc[-distrust,-seen]"
	case a.ablation.NoDistrust:
		return "A_nuc[-distrust]"
	case a.ablation.NoSeenGate:
		return "A_nuc[-seen]"
	default:
		return "A_nuc"
	}
}

// N implements model.Automaton.
func (a *ANuc) N() int { return len(a.proposals) }

// anucState is the local state of one A_nuc process (Fig. 4 lines 1–11
// plus the wait bookkeeping).
type anucState struct {
	p        model.ProcessID
	proposal int

	x     int          // estimate x_p
	k     int          // round k_p
	store HistoryStore // quorum histories H_p (owned by default, shared in rsm)
	ph    phase

	sent    map[model.ProcessSet]bool             // sent_p[Q]
	acks    map[model.ProcessSet]model.ProcessSet // Acks_p[Q]
	roundOf map[model.ProcessSet]int              // round_p[Q]
	seen    map[model.ProcessSet]int              // seen_p[Q]; missing key = ∞

	leads map[int]map[model.ProcessID]LeadPayload
	reps  map[int]map[model.ProcessID]ReportPayload
	props map[int]map[model.ProcessID]ProposalPayload

	decided  bool
	decision int
}

// CloneState implements model.State.
func (s *anucState) CloneState() model.State {
	c := *s
	c.store = s.store.CloneStore()
	c.sent = make(map[model.ProcessSet]bool, len(s.sent))
	for k, v := range s.sent {
		c.sent[k] = v
	}
	c.acks = make(map[model.ProcessSet]model.ProcessSet, len(s.acks))
	for k, v := range s.acks {
		c.acks[k] = v
	}
	c.roundOf = make(map[model.ProcessSet]int, len(s.roundOf))
	for k, v := range s.roundOf {
		c.roundOf[k] = v
	}
	c.seen = make(map[model.ProcessSet]int, len(s.seen))
	for k, v := range s.seen {
		c.seen[k] = v
	}
	c.leads = cloneInbox(s.leads)
	c.reps = cloneInbox(s.reps)
	c.props = cloneInbox(s.props)
	return &c
}

// cloneInbox deep-copies the per-round inboxes; payloads are immutable and
// shared.
func cloneInbox[P any](in map[int]map[model.ProcessID]P) map[int]map[model.ProcessID]P {
	out := make(map[int]map[model.ProcessID]P, len(in))
	for k, byP := range in {
		m := make(map[model.ProcessID]P, len(byP))
		for p, v := range byP {
			m[p] = v
		}
		out[k] = m
	}
	return out
}

// Decision implements model.Decider.
func (s *anucState) Decision() (int, bool) { return s.decision, s.decided }

// Proposal implements model.Proposer.
func (s *anucState) Proposal() int { return s.proposal }

// Round exposes the current round for instrumentation.
func (s *anucState) Round() int { return s.k }

// InitState implements model.Automaton.
func (a *ANuc) InitState(p model.ProcessID) model.State {
	return &anucState{
		p:        p,
		proposal: a.proposals[p],
		x:        a.proposals[p],
		store:    newOwnedHistories(a.N()),
		ph:       phaseInit,
		sent:     make(map[model.ProcessSet]bool),
		acks:     make(map[model.ProcessSet]model.ProcessSet),
		roundOf:  make(map[model.ProcessSet]int),
		seen:     make(map[model.ProcessSet]int),
		leads:    make(map[int]map[model.ProcessID]LeadPayload),
		reps:     make(map[int]map[model.ProcessID]ReportPayload),
		props:    make(map[int]map[model.ProcessID]ProposalPayload),
	}
}

// Step implements model.Automaton.
func (a *ANuc) Step(p model.ProcessID, s model.State, m *model.Message, d model.FDValue) (model.State, []model.Send) {
	st := s.CloneState().(*anucState)
	var out []model.Send
	if m != nil {
		out = append(out, st.handleMessage(m)...)
	}
	out = append(out, st.advance(a, d)...)
	return st, out
}

// handleMessage buffers phase messages and runs the upon-handlers of
// Fig. 4 lines 35–42 (SAW and ACK), which the cobegin makes part of the
// same atomic step as the main loop's wait-iteration.
func (s *anucState) handleMessage(m *model.Message) []model.Send {
	switch pl := m.Payload.(type) {
	case LeadPayload:
		if pl.K >= s.k {
			putInbox(s.leads, pl.K, m.From, pl)
		}
	case ReportPayload:
		if pl.K >= s.k {
			putInbox(s.reps, pl.K, m.From, pl)
		}
	case ProposalPayload:
		if pl.K >= s.k {
			putInbox(s.props, pl.K, m.From, pl)
		}
	case SawPayload:
		// Lines 35–37: record that m.From saw quorum pl.Q and acknowledge
		// with the current round number.
		s.store.Add(m.From, pl.Q)
		return []model.Send{{To: m.From, Payload: AckPayload{Q: pl.Q, K: s.k}}}
	case AckPayload:
		// Lines 39–42.
		s.acks[pl.Q] = s.acks[pl.Q].Add(m.From)
		if pl.K > s.roundOf[pl.Q] {
			s.roundOf[pl.Q] = pl.K
		}
		if s.acks[pl.Q] == pl.Q {
			s.seen[pl.Q] = s.roundOf[pl.Q]
		}
	default:
		panic(fmt.Sprintf("consensus: A_nuc received unknown payload %T", m.Payload))
	}
	return nil
}

func putInbox[P any](in map[int]map[model.ProcessID]P, k int, from model.ProcessID, pl P) {
	byP := in[k]
	if byP == nil {
		byP = make(map[model.ProcessID]P)
		in[k] = byP
	}
	byP[from] = pl
}

// advance executes at most one wait-iteration of the current phase with
// this step's failure-detector value, plus the straight-line code up to the
// next wait if the wait completed.
func (s *anucState) advance(a *ANuc, d model.FDValue) []model.Send {
	all := model.FullSet(a.N())
	var out []model.Send
	switch s.ph {
	case phaseInit:
		s.startRound(all, &out)

	case phaseLead:
		// Line 16: q ← Ω_p; completed if (LEAD, k_p, v, Hist_q) received
		// from q.
		leader, ok := fd.LeaderOf(d)
		if !ok {
			panic(fmt.Sprintf("consensus: A_nuc needs an Ω component, got %v", d))
		}
		lead, got := s.leads[s.k][leader]
		if !got {
			return out
		}
		// Line 17: import_history(Hist_q).
		s.store.Import(lead.Hist)
		// Line 18: adopt the leader's estimate unless distrusted.
		if a.ablation.NoDistrust || !s.store.Distrusts(s.p, leader) {
			s.x = lead.V
		}
		// Line 19: send report.
		out = append(out, model.Broadcast(all, ReportPayload{K: s.k, V: s.x})...)
		s.ph = phaseReport

	case phaseReport:
		// Line 20: Q_p ← get_quorum(); completed if (REP, k_p, −) received
		// from all of Q_p. get_quorum records the quorum in H_p[p]
		// (Fig. 5 line 49) on every call.
		q := s.getQuorum(d)
		if !receivedFromAll(s.reps[s.k], q) {
			return out
		}
		// Lines 21–24: propose v if the reports from Q_p are unanimous,
		// else "?". The proposal carries the current H_p.
		pl := ProposalPayload{K: s.k, Hist: s.store.Outgoing()}
		if v, unanimous := unanimousValue(s.reps[s.k], q, func(r ReportPayload) (int, bool) { return r.V, true }); unanimous {
			pl.V, pl.HasV = v, true
		}
		out = append(out, model.Broadcast(all, pl)...)
		s.ph = phaseProp

	case phaseProp:
		// Lines 25–28: one iteration of the nested repeat. Get a fresh
		// quorum, require proposals from all of it, import their
		// histories, and only proceed when no member is distrusted.
		q := s.getQuorum(d)
		if !receivedFromAll(s.props[s.k], q) {
			return out
		}
		props := s.props[s.k]
		q.ForEach(func(r model.ProcessID) {
			s.store.Import(props[r].Hist)
		})
		distrusted := false
		if !a.ablation.NoDistrust {
			q.ForEach(func(r model.ProcessID) {
				if !distrusted && s.store.Distrusts(s.p, r) {
					distrusted = true
				}
			})
		}
		if distrusted {
			return out // stay in the loop; next step retries with a fresh quorum
		}
		// Line 29: adopt any non-? proposal from Q_p (Lemma 6.23: all such
		// proposals agree; take the smallest sender's for determinism).
		if v, any := anyValue(props, q); any {
			s.x = v
		}
		// Line 30: decide if the proposals from Q_p are unanimously v ≠ ?
		// and every member of Q_p acknowledged the SAW for Q_p in an
		// earlier round (seen_p[Q_p] < k_p).
		if _, unanimous := unanimousValue(props, q, func(r ProposalPayload) (int, bool) { return r.V, r.HasV }); unanimous {
			seen, ok := s.seen[q]
			if (a.ablation.NoSeenGate || (ok && seen < s.k)) && !s.decided {
				s.decided = true
				s.decision = s.x
			}
		}
		// Lines 31–33: announce the first use of Q_p for collecting
		// proposals.
		if !s.sent[q] {
			out = append(out, model.Broadcast(q, SawPayload{Q: q})...)
			s.sent[q] = true
		}
		// Back to line 13: the next round's LEAD send is straight-line
		// code and runs in this same step.
		s.startRound(all, &out)
	}
	return out
}

// getQuorum implements function get_quorum() (Fig. 5 lines 47–50).
func (s *anucState) getQuorum(d model.FDValue) model.ProcessSet {
	q, ok := fd.QuorumOf(d)
	if !ok {
		panic(fmt.Sprintf("consensus: A_nuc needs a Σν+ component, got %v", d))
	}
	s.store.Add(s.p, q)
	return q
}

// startRound runs lines 14–15: advance to the next round and broadcast the
// leader message. Inboxes for completed rounds are pruned.
func (s *anucState) startRound(all model.ProcessSet, out *[]model.Send) {
	s.k++
	pruneInbox(s.leads, s.k)
	pruneInbox(s.reps, s.k)
	pruneInbox(s.props, s.k)
	*out = append(*out, model.Broadcast(all, LeadPayload{K: s.k, V: s.x, Hist: s.store.Outgoing()})...)
	s.ph = phaseLead
}

func pruneInbox[P any](in map[int]map[model.ProcessID]P, k int) {
	for r := range in {
		if r < k {
			delete(in, r)
		}
	}
}

// receivedFromAll reports whether the inbox holds a message from every
// member of q.
func receivedFromAll[P any](byP map[model.ProcessID]P, q model.ProcessSet) bool {
	if q.IsEmpty() {
		return false // an empty quorum never completes a wait
	}
	ok := true
	q.ForEach(func(r model.ProcessID) {
		if _, got := byP[r]; !got {
			ok = false
		}
	})
	return ok
}

// unanimousValue reports whether every member of q sent the same value
// (per the extractor, whose second result marks "?"-proposals as absent).
func unanimousValue[P any](byP map[model.ProcessID]P, q model.ProcessSet, val func(P) (int, bool)) (int, bool) {
	v, have := 0, false
	unanimous := true
	q.ForEach(func(r model.ProcessID) {
		x, ok := val(byP[r])
		if !ok {
			unanimous = false
			return
		}
		if !have {
			v, have = x, true
		} else if x != v {
			unanimous = false
		}
	})
	return v, unanimous && have
}

// anyValue returns the non-? proposal of the smallest member of q that
// sent one.
func anyValue(byP map[model.ProcessID]ProposalPayload, q model.ProcessSet) (int, bool) {
	for _, r := range q.Slice() {
		if pl := byP[r]; pl.HasV {
			return pl.V, true
		}
	}
	return 0, false
}

// ConsideredFaulty exposes F_p (Fig. 5 line 52) for invariant checking:
// Lemma 6.20 (p ∉ F_p, by Σν+ self-inclusion) and Lemma 6.21 (for correct
// p and q, q ∉ F_p, by nonuniform intersection).
func (s *anucState) ConsideredFaulty() model.ProcessSet {
	return s.store.ConsideredFaulty(s.p)
}

// BindStore implements StoreBound.
func (s *anucState) BindStore(store HistoryStore) { s.store = store }

// FaultView is implemented by states exposing their considered-faulty set.
type FaultView interface {
	ConsideredFaulty() model.ProcessSet
}

// InitStateProposing returns p's initial state proposing v, overriding the
// constructor's proposal vector. Multi-instance users (the replicated log
// in internal/rsm) determine proposals at runtime — a process's slot-k
// proposal is its next unappended command — so the static vector cannot be
// known when the automaton is built.
func (a *ANuc) InitStateProposing(p model.ProcessID, v int) model.State {
	st := a.InitState(p).(*anucState)
	st.proposal = v
	st.x = v
	return st
}

// InitStateProposingWith is InitStateProposing with an injected history
// store: the shared-store mode of internal/rsm, where every live slot
// instance of a process reads and writes one per-process H_p.
func (a *ANuc) InitStateProposingWith(p model.ProcessID, v int, store HistoryStore) model.State {
	st := a.InitStateProposing(p, v).(*anucState)
	st.store = store
	return st
}
