// Package quorum implements the quorum-history machinery of the paper's
// consensus algorithm A_nuc (Figs. 4–5): the per-process history variable
// H_p (all quorums of each process that p knows about), the set F_p of
// processes p considers faulty, and the distrusts predicate (lines 51–53).
package quorum

import (
	"fmt"
	"slices"
	"strings"

	"nuconsensus/internal/model"
)

// Set is a set of quorums (process sets). The zero value is empty but not
// ready for writes; use NewSet or Histories, which allocate on demand.
type Set map[model.ProcessSet]struct{}

// NewSet returns a quorum set containing the given quorums.
func NewSet(qs ...model.ProcessSet) Set {
	s := make(Set, len(qs))
	for _, q := range qs {
		s[q] = struct{}{}
	}
	return s
}

// Add inserts q.
func (s Set) Add(q model.ProcessSet) { s[q] = struct{}{} }

// Has reports whether q ∈ s.
func (s Set) Has(q model.ProcessSet) bool { _, ok := s[q]; return ok }

// Union inserts all quorums of t into s.
func (s Set) Union(t Set) {
	for q := range t {
		s[q] = struct{}{}
	}
}

// Clone returns a copy of s.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	for q := range s {
		c[q] = struct{}{}
	}
	return c
}

// AnyDisjointFrom reports whether some quorum in s is disjoint from some
// quorum in t, returning the canonical (smallest) witness pair if so.
func (s Set) AnyDisjointFrom(t Set) (model.ProcessSet, model.ProcessSet, bool) {
	if !s.hasDisjointWith(t) {
		return 0, 0, false
	}
	// A witness exists. Rescan in sorted order so the reported pair does
	// not depend on map iteration order; the existence fast path above
	// keeps the common (no-witness) case allocation-free.
	for _, a := range s.Slice() {
		for _, b := range t.Slice() {
			if !a.Intersects(b) {
				return a, b, true
			}
		}
	}
	return 0, 0, false
}

// hasDisjointWith reports whether some quorum of s is disjoint from some
// quorum of t. The predicate is order-independent, so scanning the maps
// directly is safe.
func (s Set) hasDisjointWith(t Set) bool {
	for a := range s {
		for b := range t {
			if !a.Intersects(b) {
				return true
			}
		}
	}
	return false
}

// Slice returns the quorums in a deterministic order (for rendering).
func (s Set) Slice() []model.ProcessSet {
	return s.AppendSorted(make([]model.ProcessSet, 0, len(s)))
}

// AppendSorted appends the quorums to dst in ascending order and returns
// the extended slice. Callers on hot paths (the wire encoder) pass a reused
// scratch buffer so the per-set allocation of Slice disappears.
func (s Set) AppendSorted(dst []model.ProcessSet) []model.ProcessSet {
	start := len(dst)
	for q := range s {
		dst = append(dst, q)
	}
	slices.Sort(dst[start:])
	return dst
}

// Histories is the variable H_p of A_nuc: Histories[r] contains all the
// quorums of process r that the owner knows about. It is indexed by the
// full Π of the system.
type Histories []Set

// NewHistories returns empty histories for an n-process system
// (H_p[q] ← ∅ for all q, Fig. 4 lines 5–6).
func NewHistories(n int) Histories {
	h := make(Histories, n)
	for i := range h {
		h[i] = make(Set)
	}
	return h
}

// Add records that process r saw quorum q.
func (h Histories) Add(r model.ProcessID, q model.ProcessSet) { h[r].Add(q) }

// Import merges another history into h (procedure import_history, Fig. 5
// lines 44–46).
func (h Histories) Import(other Histories) {
	for r := range other {
		h[r].Union(other[r])
	}
}

// Clone deep-copies h. Messages carry cloned histories: the paper's
// messages contain the value of H_p at send time.
func (h Histories) Clone() Histories {
	c := make(Histories, len(h))
	for i := range h {
		c[i] = h[i].Clone()
	}
	return c
}

// ConsideredFaulty computes F_p for owner p (Fig. 5 line 52): the set of
// processes q' for which some quorum in H_p[q'] is disjoint from some
// quorum in H_p[p]. By the nonuniform intersection property of Σν+, p then
// knows that either it or q' is faulty — and in nonuniform consensus it is
// safe for p to consider itself correct.
func (h Histories) ConsideredFaulty(p model.ProcessID) model.ProcessSet {
	var f model.ProcessSet
	own := h[p]
	for r := range h {
		if _, _, disjoint := h[r].AnyDisjointFrom(own); disjoint {
			f = f.Add(model.ProcessID(r))
		}
	}
	return f
}

// Distrusts implements function distrusts(q) (Fig. 5 lines 51–53): p
// distrusts q iff there is a process r ∉ F_p such that H_p[q] and H_p[r]
// contain nonintersecting quorums.
func (h Histories) Distrusts(p, q model.ProcessID) bool {
	fp := h.ConsideredFaulty(p)
	for r := range h {
		if fp.Has(model.ProcessID(r)) {
			continue
		}
		if _, _, disjoint := h[q].AnyDisjointFrom(h[r]); disjoint {
			return true
		}
	}
	return false
}

// String renders the nonempty entries of h.
func (h Histories) String() string {
	var b strings.Builder
	b.WriteByte('[')
	first := true
	for r := range h {
		if len(h[r]) == 0 {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "p%d:%v", r, h[r].Slice())
	}
	b.WriteByte(']')
	return b.String()
}
