package quorum

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nuconsensus/internal/model"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(model.SetOf(0, 1), model.SetOf(2))
	if !s.Has(model.SetOf(0, 1)) || !s.Has(model.SetOf(2)) {
		t.Fatal("NewSet lost members")
	}
	s.Add(model.SetOf(0, 1)) // idempotent
	if len(s) != 2 {
		t.Fatalf("len = %d", len(s))
	}
	u := NewSet(model.SetOf(3))
	s.Union(u)
	if !s.Has(model.SetOf(3)) {
		t.Error("Union missed a quorum")
	}

	c := s.Clone()
	c.Add(model.SetOf(0, 3))
	if s.Has(model.SetOf(0, 3)) {
		t.Error("mutating a clone must not affect the original")
	}

	sl := s.Slice()
	for i := 1; i < len(sl); i++ {
		if sl[i-1] >= sl[i] {
			t.Error("Slice must be sorted deterministically")
		}
	}
}

func TestAnyDisjointFrom(t *testing.T) {
	a := NewSet(model.SetOf(0, 1), model.SetOf(1, 2))
	b := NewSet(model.SetOf(1), model.SetOf(0, 2, 3))
	if _, _, disjoint := a.AnyDisjointFrom(b); disjoint {
		t.Error("all pairs here intersect")
	}
	b.Add(model.SetOf(3))
	x, y, disjoint := a.AnyDisjointFrom(b)
	if !disjoint {
		t.Fatal("expected a disjoint witness")
	}
	if x.Intersects(y) {
		t.Errorf("witness %v, %v intersect", x, y)
	}
}

func TestHistoriesImportClone(t *testing.T) {
	h := NewHistories(3)
	h.Add(0, model.SetOf(0, 1))
	h.Add(2, model.SetOf(2))

	other := NewHistories(3)
	other.Add(1, model.SetOf(1, 2))
	h.Import(other)
	if !h[1].Has(model.SetOf(1, 2)) {
		t.Error("Import missed an entry")
	}

	c := h.Clone()
	c.Add(0, model.SetOf(0))
	if h[0].Has(model.SetOf(0)) {
		t.Error("clone mutation leaked to the original")
	}
	if h.String() == "" {
		t.Error("String must render")
	}
}

// TestDistrustsPaperScenario replays the §6.3 reasoning:
//
//   - p0 (correct) has seen its own quorum {p0,p1};
//   - p2 (faulty) saw quorum {p2}, disjoint from p0's — so p0 considers p2
//     faulty (F_p0 = {p2}) and, since p0 does not consider ITSELF faulty,
//     p0 distrusts p2;
//   - p0 never distrusts p1, whose quorums intersect everything p0 has
//     from non-considered-faulty processes.
func TestDistrustsPaperScenario(t *testing.T) {
	h := NewHistories(3)
	h.Add(0, model.SetOf(0, 1)) // p0's own quorum
	h.Add(1, model.SetOf(0, 1)) // p1's quorum
	h.Add(2, model.SetOf(2))    // faulty p2's junk quorum

	if got := h.ConsideredFaulty(0); got != model.SetOf(2) {
		t.Fatalf("F_p0 = %v, want {p2}", got)
	}
	if !h.Distrusts(0, 2) {
		t.Error("p0 must distrust p2")
	}
	if h.Distrusts(0, 1) {
		t.Error("p0 must not distrust p1")
	}
	// Lemma 6.20: p never considers itself faulty here (self-inclusion).
	if h.ConsideredFaulty(0).Has(0) {
		t.Error("p0 must not consider itself faulty")
	}
}

// TestDistrustsConditional covers the subtler case: p0 considers p2 faulty,
// and p2's quorum is also disjoint from p3's quorum; since p2 ∈ F_p0 and
// p3 ∉ F_p0, p0 distrusts p2 but NOT p3 (the r in the definition must be
// outside F_p).
func TestDistrustsConditional(t *testing.T) {
	h := NewHistories(4)
	h.Add(0, model.SetOf(0, 1))
	h.Add(2, model.SetOf(2))    // disjoint from p0's own → p2 ∈ F_p0
	h.Add(3, model.SetOf(0, 3)) // intersects p0's own → p3 ∉ F_p0

	if got := h.ConsideredFaulty(0); got != model.SetOf(2) {
		t.Fatalf("F_p0 = %v", got)
	}
	if !h.Distrusts(0, 2) {
		t.Error("p2's quorum conflicts with p3 ∉ F_p0: must distrust p2")
	}
	if h.Distrusts(0, 3) {
		t.Error("p3's only conflict is with p2 ∈ F_p0: must not distrust p3")
	}
}

func TestDistrustsEmptyHistories(t *testing.T) {
	h := NewHistories(3)
	if h.Distrusts(0, 1) || h.Distrusts(0, 0) {
		t.Error("no quorums, no distrust")
	}
}

// TestImportIdempotentCommutative uses testing/quick: importing histories
// is idempotent and order-independent.
func TestImportIdempotentCommutative(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	gen := func(r *rand.Rand) Histories {
		h := NewHistories(4)
		for i := 0; i < r.Intn(6); i++ {
			h.Add(model.ProcessID(r.Intn(4)), model.ProcessSet(r.Uint64()%16))
		}
		return h
	}
	equal := func(a, b Histories) bool {
		for i := range a {
			if len(a[i]) != len(b[i]) {
				return false
			}
			for q := range a[i] {
				if !b[i].Has(q) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := gen(r), gen(r)

		ab := a.Clone()
		ab.Import(b)
		ab.Import(b) // idempotent
		ab2 := a.Clone()
		ab2.Import(b)

		ba := b.Clone()
		ba.Import(a)
		return equal(ab, ab2) && equal(ab, ba)
	}, cfg); err != nil {
		t.Error(err)
	}
}
