package quorum

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"nuconsensus/internal/model"
)

func TestVersionedAddAndVersion(t *testing.T) {
	v := NewVersioned(3)
	if v.Version() != 0 || v.Len() != 0 {
		t.Fatalf("empty store: version=%d len=%d", v.Version(), v.Len())
	}
	if !v.Add(0, model.SetOf(0, 1)) {
		t.Fatal("first add must be novel")
	}
	if v.Add(0, model.SetOf(0, 1)) {
		t.Fatal("duplicate add must not be novel")
	}
	if v.Version() != 1 {
		t.Fatalf("version after dup = %d, want 1", v.Version())
	}
	v.Add(1, model.SetOf(1, 2))
	v.Add(2, model.SetOf(0, 2))
	if v.Version() != 3 || v.Len() != 3 {
		t.Fatalf("version=%d len=%d, want 3", v.Version(), v.Len())
	}
	if !v.Histories()[1].Has(model.SetOf(1, 2)) {
		t.Error("Add must reach the underlying histories")
	}
}

func TestVersionedDeltaSinceChains(t *testing.T) {
	v := NewVersioned(3)
	v.Add(0, model.SetOf(0, 1))
	v.Add(1, model.SetOf(1, 2))
	mid := v.Version()
	v.Add(2, model.SetOf(0, 2))
	v.Add(0, model.SetOf(0, 2))

	d := v.DeltaSince(mid)
	if d.Base != mid || d.To != v.Version() || d.IsSnapshot() {
		t.Fatalf("delta = %v", d)
	}
	want := []DeltaEntry{{R: 0, Q: model.SetOf(0, 2)}, {R: 2, Q: model.SetOf(0, 2)}}
	if !reflect.DeepEqual(d.Adds, want) {
		t.Fatalf("Adds = %v, want %v", d.Adds, want)
	}

	// Applying the chain delta to a replica at version mid converges it.
	r := NewVersioned(3)
	r.Apply(v.DeltaSince(0))
	if r.Histories().String() != v.Histories().String() {
		t.Fatalf("full chain apply diverged: %s vs %s", r.Histories(), v.Histories())
	}
}

func TestVersionedDeltaEmptyWhenCurrent(t *testing.T) {
	v := NewVersioned(3)
	v.Add(0, model.SetOf(0, 1))
	d := v.DeltaSince(v.Version())
	if len(d.Adds) != 0 || d.Base != v.Version() || d.To != v.Version() {
		t.Fatalf("delta at head = %v", d)
	}
}

func TestVersionedSnapshotFallbackAfterCompact(t *testing.T) {
	v := NewVersioned(3)
	v.Add(0, model.SetOf(0, 1))
	v.Add(1, model.SetOf(1, 2))
	v.Add(2, model.SetOf(0, 2))
	v.Compact(2)
	if v.Floor() != 2 {
		t.Fatalf("floor = %d, want 2", v.Floor())
	}

	// base 2 is still answerable incrementally.
	d := v.DeltaSince(2)
	if d.IsSnapshot() || len(d.Adds) != 1 {
		t.Fatalf("post-compact incremental delta = %v", d)
	}

	// base 1 predates the floor: full snapshot fallback.
	d = v.DeltaSince(1)
	if !d.IsSnapshot() {
		t.Fatalf("want snapshot, got %v", d)
	}
	if len(d.Adds) != 3 || d.To != 3 {
		t.Fatalf("snapshot = %v", d)
	}
	if !slices.IsSortedFunc(d.Adds, compareEntries) {
		t.Error("snapshot adds must be canonically sorted")
	}
	r := NewVersioned(3)
	r.Apply(d)
	if r.Histories().String() != v.Histories().String() {
		t.Error("snapshot apply diverged")
	}
}

func TestVersionedFutureBaseResyncs(t *testing.T) {
	v := NewVersioned(3)
	v.Add(0, model.SetOf(0, 1))
	d := v.DeltaSince(99) // peer claims a version this store never issued
	if !d.IsSnapshot() || len(d.Adds) != 1 {
		t.Fatalf("future base must snapshot, got %v", d)
	}
}

func TestVersionedCompactIdempotentAndBounded(t *testing.T) {
	v := NewVersioned(3)
	for i := 0; i < 5; i++ {
		v.Add(model.ProcessID(i%3), model.SetOf(model.ProcessID(i%3), model.ProcessID((i+1)%3)))
	}
	n := v.Version()
	v.Compact(n + 10) // clamped to version
	if v.Floor() != n {
		t.Fatalf("floor = %d, want %d", v.Floor(), n)
	}
	v.Compact(1) // below floor: no-op
	if v.Floor() != n {
		t.Fatalf("floor moved backwards: %d", v.Floor())
	}
	d := v.DeltaSince(n)
	if len(d.Adds) != 0 {
		t.Fatalf("head delta after full compact = %v", d)
	}
}

func TestVersionedImportDedups(t *testing.T) {
	v := NewVersioned(3)
	v.Add(0, model.SetOf(0, 1))
	other := NewHistories(3)
	other.Add(0, model.SetOf(0, 1)) // already known
	other.Add(1, model.SetOf(1, 2))
	if novel := v.Import(other); novel != 1 {
		t.Fatalf("novel = %d, want 1", novel)
	}
	if v.Version() != 2 {
		t.Fatalf("version = %d, want 2", v.Version())
	}
}

func TestVersionedCloneIsolated(t *testing.T) {
	v := NewVersioned(3)
	v.Add(0, model.SetOf(0, 1))
	v.Add(1, model.SetOf(1, 2))
	c := v.Clone()
	c.Add(2, model.SetOf(0, 2))
	if v.Version() != 2 || c.Version() != 3 {
		t.Fatalf("versions: orig=%d clone=%d", v.Version(), c.Version())
	}
	if v.Histories()[2].Has(model.SetOf(0, 2)) {
		t.Error("clone mutation leaked into original histories")
	}
	// The add logs must not share a backing array.
	d := v.DeltaSince(0)
	if len(d.Adds) != 2 {
		t.Fatalf("orig delta = %v", d)
	}
}

func TestVersionedAppendSinceReusesScratch(t *testing.T) {
	v := NewVersioned(3)
	v.Add(0, model.SetOf(0, 1))
	v.Add(1, model.SetOf(1, 2))
	scratch := make([]DeltaEntry, 0, 8)
	adds, to, full := v.AppendSince(scratch, 0)
	if full || to != 2 || len(adds) != 2 {
		t.Fatalf("AppendSince = %v to=%d full=%v", adds, to, full)
	}
	if &adds[0] != &scratch[:1][0] {
		t.Error("AppendSince must append into the provided scratch")
	}
}

// TestVersionedConvergesUnderRandomExchange drives two stores with random
// interleaved adds and delta exchange (including compaction-forced
// snapshots) and checks they always converge to the same histories.
func TestVersionedConvergesUnderRandomExchange(t *testing.T) {
	rng := rand.New(rand.NewSource(8)) //lint:allow nodeterm test-local rng
	const n = 4
	a, b := NewVersioned(n), NewVersioned(n)
	var aSent, bSent uint64
	for step := 0; step < 400; step++ {
		r := model.ProcessID(rng.Intn(n))
		q := model.SetOf(model.ProcessID(rng.Intn(n)), model.ProcessID(rng.Intn(n)))
		switch rng.Intn(4) {
		case 0:
			a.Add(r, q)
		case 1:
			b.Add(r, q)
		case 2: // a ships a delta to b
			d := a.DeltaSince(aSent)
			b.Apply(d)
			aSent = d.To
			if rng.Intn(3) == 0 {
				a.Compact(aSent)
			}
		case 3: // b ships a delta to a
			d := b.DeltaSince(bSent)
			a.Apply(d)
			bSent = d.To
			if rng.Intn(3) == 0 {
				b.Compact(bSent)
			}
		}
	}
	// Final flush both ways.
	b.Apply(a.DeltaSince(aSent))
	a.Apply(b.DeltaSince(bSent))
	if a.Histories().String() != b.Histories().String() {
		t.Fatalf("stores diverged:\n a=%s\n b=%s", a.Histories(), b.Histories())
	}
}
