// Versioned histories: the same H_p state as Histories, wrapped with a
// monotone version counter and an append-only add log so that senders can
// ship O(delta) updates ("everything since the version I last sent you")
// instead of cloning the full history into every LEAD/PROP message.
//
// Version numbers are local to one Versioned store: version v means "v
// distinct (process, quorum) pairs have been recorded here". A Delta
// carries an interval [Base, To] in the *sender's* version space; the
// receiver merges the adds into its own store (set union — adds commute
// and dedup, so redundant or re-ordered deltas are harmless) and tracks
// the sender's To separately to know which future deltas chain.
package quorum

import (
	"fmt"
	"slices"

	"nuconsensus/internal/model"
)

// DeltaEntry records one addition to a history: process R saw quorum Q.
type DeltaEntry struct {
	R model.ProcessID
	Q model.ProcessSet
}

// compareEntries is the canonical (R, then Q) order used everywhere a
// delta is rendered or encoded, so the bytes never depend on map order.
func compareEntries(a, b DeltaEntry) int {
	if a.R != b.R {
		return int(a.R) - int(b.R)
	}
	switch {
	case a.Q < b.Q:
		return -1
	case a.Q > b.Q:
		return 1
	}
	return 0
}

// Delta is a canonical batch of history additions. Base is the sender-side
// version the receiver must already have applied for the delta to be
// complete; Base == 0 marks a full snapshot, applicable unconditionally
// (the fallback when the sender has compacted past the receiver's base).
// To is the sender-side version reached after applying. Adds is sorted by
// (R, Q) and free of duplicates.
type Delta struct {
	Base uint64
	To   uint64
	Adds []DeltaEntry
}

// IsSnapshot reports whether d is a full-history fallback rather than an
// incremental delta.
func (d Delta) IsSnapshot() bool { return d.Base == 0 && d.To > 0 }

// String renders the delta compactly (for debug output and tests).
func (d Delta) String() string {
	return fmt.Sprintf("Δ[%d→%d]%v", d.Base, d.To, d.Adds)
}

// Versioned wraps Histories with the version counter and add log. The zero
// value is not usable; call NewVersioned.
type Versioned struct {
	h       Histories
	log     []DeltaEntry // adds for versions floor+1 .. version, in add order
	floor   uint64       // versions ≤ floor have been compacted out of log
	version uint64       // == total distinct (R, Q) entries in h
}

// NewVersioned returns an empty versioned store for an n-process system.
func NewVersioned(n int) *Versioned {
	return &Versioned{h: NewHistories(n)}
}

// Histories exposes the underlying history state for read-only queries
// (distrusts, rendering). Callers must not mutate it directly — mutations
// that bypass Add would desynchronise the version counter.
func (v *Versioned) Histories() Histories { return v.h }

// Version returns the current version: the number of distinct
// (process, quorum) pairs recorded.
func (v *Versioned) Version() uint64 { return v.version }

// Floor returns the compaction floor: DeltaSince(base) for base < floor
// can no longer be answered incrementally.
func (v *Versioned) Floor() uint64 { return v.floor }

// Len returns the number of distinct history entries (== Version, kept as
// a separate accessor so size accounting reads naturally).
func (v *Versioned) Len() int { return int(v.version) }

// Add records that process r saw quorum q. It returns true iff the entry
// is new; only novel entries advance the version.
func (v *Versioned) Add(r model.ProcessID, q model.ProcessSet) bool {
	if v.h[r].Has(q) {
		return false
	}
	v.h[r].Add(q)
	v.version++
	v.log = append(v.log, DeltaEntry{R: r, Q: q})
	return true
}

// Import merges a plain history (e.g. from a legacy full-clone payload),
// returning the number of novel entries.
func (v *Versioned) Import(other Histories) int {
	novel := 0
	for r := range other {
		// Collect-then-sort: the add log must not inherit map order.
		for _, q := range other[r].Slice() {
			if v.Add(model.ProcessID(r), q) {
				novel++
			}
		}
	}
	return novel
}

// ConsideredFaulty delegates to the underlying histories (Fig. 5 line 52).
func (v *Versioned) ConsideredFaulty(p model.ProcessID) model.ProcessSet {
	return v.h.ConsideredFaulty(p)
}

// Distrusts delegates to the underlying histories (Fig. 5 lines 51–53).
func (v *Versioned) Distrusts(p, q model.ProcessID) bool {
	return v.h.Distrusts(p, q)
}

// AppendSince appends the canonical adds needed to bring a receiver from
// sender-side version base up to the current version onto dst, returning
// the extended slice, the To version, and whether the result is a full
// snapshot (base predates the compaction floor, or base is in the future —
// a receiver that never saw this store). The appended tail is sorted by
// (R, Q); dst lets hot callers reuse a scratch buffer.
func (v *Versioned) AppendSince(dst []DeltaEntry, base uint64) ([]DeltaEntry, uint64, bool) {
	if base >= v.version {
		if base > v.version {
			// The peer claims a version we never issued (e.g. after a
			// restart of this store); resynchronise with a snapshot.
			return v.appendSnapshot(dst), v.version, true
		}
		return dst, v.version, false
	}
	if base < v.floor {
		return v.appendSnapshot(dst), v.version, true
	}
	start := len(dst)
	dst = append(dst, v.log[base-v.floor:]...)
	slices.SortFunc(dst[start:], compareEntries)
	return dst, v.version, false
}

// appendSnapshot appends every entry of the store in canonical order.
func (v *Versioned) appendSnapshot(dst []DeltaEntry) []DeltaEntry {
	start := len(dst)
	for r := range v.h {
		for q := range v.h[r] {
			dst = append(dst, DeltaEntry{R: model.ProcessID(r), Q: q})
		}
	}
	slices.SortFunc(dst[start:], compareEntries)
	return dst
}

// DeltaSince returns the delta bringing a receiver from base to the
// current version, falling back to a full snapshot (Base == 0) when base
// predates the compaction floor.
func (v *Versioned) DeltaSince(base uint64) Delta {
	adds, to, full := v.AppendSince(nil, base)
	if full {
		base = 0
	}
	return Delta{Base: base, To: to, Adds: adds}
}

// Snapshot returns the full history as an unconditional delta.
func (v *Versioned) Snapshot() Delta {
	return Delta{Base: 0, To: v.version, Adds: v.appendSnapshot(nil)}
}

// Apply merges the delta's adds into the store (set union), returning the
// number of novel entries. Version bookkeeping for the *sender's* To is
// the caller's concern; Apply only advances this store's own version for
// entries it had not seen.
func (v *Versioned) Apply(d Delta) int {
	novel := 0
	for _, e := range d.Adds {
		if v.Add(e.R, e.Q) {
			novel++
		}
	}
	return novel
}

// Compact discards log entries for versions ≤ upTo. After compaction,
// DeltaSince(base) for base < upTo answers with a full snapshot. Callers
// compact up to the minimum version acknowledged (or last shipped) across
// peers so steady-state traffic stays incremental.
func (v *Versioned) Compact(upTo uint64) {
	if upTo > v.version {
		upTo = v.version
	}
	if upTo <= v.floor {
		return
	}
	keep := v.log[upTo-v.floor:]
	// Slide retained entries to the front so the backing array does not
	// pin the compacted prefix.
	n := copy(v.log, keep)
	v.log = v.log[:n]
	v.floor = upTo
}

// Clone deep-copies the store, including the add log (the clone must not
// share backing arrays with the original — rsm clones its shared store
// once per step).
func (v *Versioned) Clone() *Versioned {
	c := &Versioned{
		h:       v.h.Clone(),
		floor:   v.floor,
		version: v.version,
	}
	if len(v.log) > 0 {
		c.log = append(make([]DeltaEntry, 0, len(v.log)), v.log...)
	}
	return c
}
