package dag

import "math/bits"

// bitset is a growable set of node indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i/64] |= 1 << uint(i%64) }

func (b bitset) get(i int) bool {
	w := i / 64
	return w < len(b) && b[w]&(1<<uint(i%64)) != 0
}

// grow returns a bitset of word-capacity for n bits, preserving contents.
func (b bitset) grow(n int) bitset {
	want := (n + 63) / 64
	if want <= len(b) {
		return b
	}
	nb := make(bitset, want)
	copy(nb, b)
	return nb
}

func (b bitset) clone() bitset {
	nb := make(bitset, len(b))
	copy(nb, b)
	return nb
}

func (b bitset) or(o bitset) bitset {
	b = b.grow(len(o) * 64)
	for i := range o {
		b[i] |= o[i]
	}
	return b
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// forEach calls f with each set index in increasing order.
func (b bitset) forEach(f func(int)) {
	for wi, w := range b {
		for ; w != 0; w &= w - 1 {
			f(wi*64 + bits.TrailingZeros64(w))
		}
	}
}
