package dag

import "nuconsensus/internal/model"

// This file implements the simulated schedules of §4.2: given a path
// g = (p1,d1,k1), (p2,d2,k2), … of a sample DAG and an initial
// configuration I of an algorithm A, the schedules compatible with g are
// the schedules (p1,m1,d1), (p2,m2,d2), … applicable to I, one per choice
// of received messages. Sch(G, I) — all schedules compatible with some path
// of G — is exponential; the searches below follow the canonical choice of
// Lemma 4.10 (deliver the *oldest* pending message, or λ), which is the
// choice whose infinite limit is an admissible run. This is the bounded
// substitution documented in DESIGN.md §4(5): if the canonical schedule
// along the canonical path decides, a deciding schedule exists in Sch(G, I);
// completeness of the search holds in the limit because the canonical path
// eventually contains enough fresh samples of every correct process.

// Simulate executes the canonical schedule compatible with path, applicable
// to the initial configuration of aut: the i-th step is taken by path[i].P
// with failure-detector value path[i].D, receiving the oldest pending
// message (λ if none). After each step, observe (if non-nil) is called with
// the number of steps applied so far and the current configuration;
// returning true stops the simulation early. Simulate returns the final
// configuration.
func Simulate(aut model.Automaton, path []Node, observe func(steps int, c *model.Configuration) bool) *model.Configuration {
	c := model.InitialConfiguration(aut)
	for i, node := range path {
		e := model.Step{P: node.P, M: c.Buffer.Oldest(node.P), D: node.D}
		c.Apply(aut, e)
		if observe != nil && observe(i+1, c) {
			break
		}
	}
	return c
}

// DecidesAlong reports whether process p decides in the canonical schedule
// along path. If so it returns the participants of the shortest deciding
// prefix (the schedule S with "p decides in S(I)" of Fig. 2 line 17) and
// the decided value.
func DecidesAlong(aut model.Automaton, path []Node, p model.ProcessID) (model.ProcessSet, int, bool) {
	var participants model.ProcessSet
	decidedVal := 0
	decided := false
	Simulate(aut, path, func(steps int, c *model.Configuration) bool {
		participants = participants.Add(path[steps-1].P)
		if v, ok := model.DecisionOf(c.States[p]); ok {
			decidedVal = v
			decided = true
			return true
		}
		return false
	})
	if !decided {
		return 0, 0, false
	}
	return participants, decidedVal, true
}

// Participants returns the set of processes appearing in the path
// (participants(g) of Fig. 3 lines 20–21).
func Participants(path []Node) model.ProcessSet {
	var ps model.ProcessSet
	for _, n := range path {
		ps = ps.Add(n.P)
	}
	return ps
}
