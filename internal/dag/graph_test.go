package dag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nuconsensus/internal/model"
)

type fakeVal int

func (v fakeVal) String() string { return "v" }

func TestAddSampleEdges(t *testing.T) {
	g := NewGraph()
	a := g.AddSample(0, fakeVal(0), 1)
	b := g.AddSample(1, fakeVal(0), 1)
	c := g.AddSample(0, fakeVal(0), 2)
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
	// Fig. 1 line 10: edges from every other node to the new one.
	if !g.HasEdge(a, b) || !g.HasEdge(a, c) || !g.HasEdge(b, c) {
		t.Error("missing edges to newly inserted nodes")
	}
	if g.HasEdge(b, a) || g.HasEdge(c, a) {
		t.Error("edges must not point backwards")
	}
	if got := g.IndexOf(Key{P: 1, K: 1}); got != b {
		t.Errorf("IndexOf = %d, want %d", got, b)
	}
	if got := g.IndexOf(Key{P: 1, K: 9}); got != -1 {
		t.Errorf("IndexOf missing = %d, want -1", got)
	}
}

func TestAddSampleDuplicatePanics(t *testing.T) {
	g := NewGraph()
	g.AddSample(0, fakeVal(0), 1)
	defer func() {
		if recover() == nil {
			t.Error("duplicate sample must panic")
		}
	}()
	g.AddSample(0, fakeVal(1), 1)
}

// exchange simulates two A_DAG processes gossiping: each takes samples and
// unions the other's graph, as the algorithm does. It returns both graphs.
func exchange(steps int, seed int64) (*Graph, *Graph) {
	rng := rand.New(rand.NewSource(seed))
	gs := []*Graph{NewGraph(), NewGraph()}
	k := []int{0, 0}
	for i := 0; i < steps; i++ {
		p := rng.Intn(2)
		if rng.Intn(2) == 0 {
			gs[p].Union(gs[1-p].Clone())
		}
		k[p]++
		gs[p].AddSample(model.ProcessID(p), fakeVal(i), k[p])
	}
	return gs[0], gs[1]
}

func TestUnionPreservesInvariants(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g0, g1 := exchange(60, seed)
		g0.Union(g1)
		// Every edge goes from an earlier-inserted node to a later one, so
		// Descendants' forward scan is sound.
		for v := 0; v < g0.Len(); v++ {
			for u := v; u < g0.Len(); u++ {
				if u != v && g0.HasEdge(u, v) {
					t.Fatalf("seed %d: backward edge %d→%d", seed, u, v)
				}
			}
		}
		// Same-process samples are totally ordered (Observation 4.2).
		var prev0 int = -1
		for v := 0; v < g0.Len(); v++ {
			if g0.Node(v).P == 0 {
				if prev0 >= 0 && !g0.HasEdge(prev0, v) {
					t.Fatalf("seed %d: own samples not chained", seed)
				}
				prev0 = v
			}
		}
	}
}

func TestDescendantsMatchesBruteForce(t *testing.T) {
	g0, g1 := exchange(40, 3)
	g0.Union(g1)
	n := g0.Len()
	// Brute-force reachability via repeated relaxation.
	reach := make([][]bool, n)
	for u := 0; u < n; u++ {
		reach[u] = make([]bool, n)
		reach[u][u] = true
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if !reach[u][v] {
					continue
				}
				for w := v + 1; w < n; w++ {
					if g0.HasEdge(v, w) && !reach[u][w] {
						reach[u][w] = true
						changed = true
					}
				}
			}
		}
	}
	for u := 0; u < n; u++ {
		d := g0.Descendants(u)
		for v := 0; v < n; v++ {
			if d.get(v) != reach[u][v] {
				t.Fatalf("Descendants(%d) disagrees at %d", u, v)
			}
		}
	}
}

func TestLongestPathFromIsAChain(t *testing.T) {
	g0, g1 := exchange(50, 5)
	g0.Union(g1)
	for u := 0; u < g0.Len(); u += 7 {
		mask := g0.Descendants(u)
		path := g0.LongestPathFrom(u, mask)
		if len(path) == 0 || path[0] != u {
			t.Fatalf("path from %d = %v", u, path)
		}
		for i := 1; i < len(path); i++ {
			if !g0.HasEdge(path[i-1], path[i]) {
				t.Fatalf("path %v is not a chain at %d", path, i)
			}
			if !mask.get(path[i]) {
				t.Fatalf("path leaves the mask")
			}
		}
	}
}

func TestLongestPathMaximalOnSmallGraph(t *testing.T) {
	// Diamond: a → b, a → c, a,b,c → d; b and c incomparable.
	g := NewGraph()
	a := g.AddSample(0, fakeVal(0), 1)
	b := g.AddSample(1, fakeVal(0), 1)
	g2 := NewGraph()
	g2.AddSample(0, fakeVal(0), 1) // same identity as a
	c := 0
	_ = c
	// Build incomparability via a second graph that knows a but not b.
	g2k := g2.Clone()
	ci := g2k.AddSample(2, fakeVal(0), 1) // c: edges only from a
	g.Union(g2k)
	cIdx := g.IndexOf(Key{P: 2, K: 1})
	if cIdx < 0 {
		t.Fatal("c not merged")
	}
	if g.HasEdge(b, cIdx) {
		t.Fatal("b→c must not exist (incomparable)")
	}
	d := g.AddSample(0, fakeVal(0), 2)
	path := g.LongestPathFrom(a, g.Descendants(a))
	// Longest chain is a → (b or c) → d: length 3.
	if len(path) != 3 || path[0] != a || path[2] != d {
		t.Fatalf("longest path = %v, want length 3 from a to d", path)
	}
	_ = ci
}

func TestCloneIndependence(t *testing.T) {
	g := NewGraph()
	g.AddSample(0, fakeVal(0), 1)
	c := g.Clone()
	c.AddSample(1, fakeVal(0), 1)
	if g.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone not independent: %d, %d", g.Len(), c.Len())
	}
	if g.IndexOf(Key{P: 1, K: 1}) != -1 {
		t.Error("original gained a node from its clone")
	}
}

func TestSamplesOf(t *testing.T) {
	g0, g1 := exchange(30, 9)
	g0.Union(g1)
	all := g0.Descendants(0)
	if got := g0.SamplesOf(all); got != model.SetOf(0, 1) {
		t.Errorf("SamplesOf = %v", got)
	}
}

// TestUnionAlgebra uses testing/quick: for graphs arising from genuine
// exchanges, union is idempotent and commutative up to node/edge content.
func TestUnionAlgebra(t *testing.T) {
	equal := func(a, b *Graph) bool {
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			bi := b.IndexOf(a.Node(i).Key())
			if bi < 0 {
				return false
			}
			for j := 0; j < a.Len(); j++ {
				bj := b.IndexOf(a.Node(j).Key())
				if bj < 0 || a.HasEdge(j, i) != b.HasEdge(bj, bi) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(func(seed int64) bool {
		g0, g1 := exchange(30, seed)

		ab := g0.Clone()
		ab.Union(g1)
		ab2 := ab.Clone()
		ab2.Union(g1) // idempotent
		ba := g1.Clone()
		ba.Union(g0)
		return equal(ab, ab2) && equal(ab, ba)
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestDescendantsMonotone: unioning more information never removes
// reachability (Observation 4.1's shadow).
func TestDescendantsMonotone(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(func(seed int64) bool {
		g0, g1 := exchange(25, seed)
		before := g0.Descendants(0)
		merged := g0.Clone()
		merged.Union(g1)
		after := merged.Descendants(0)
		// Every node reachable before must map to a reachable node after.
		for v := 0; v < g0.Len(); v++ {
			if !before.get(v) {
				continue
			}
			mv := merged.IndexOf(g0.Node(v).Key())
			if mv < 0 || !after.get(mv) {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}
