package dag

import (
	"fmt"

	"nuconsensus/internal/model"
)

// GraphPayload carries a snapshot of a process's sample DAG (Fig. 1
// line 11: "send G_p to every process"). The snapshot is immutable; the
// sender clones its graph once per step and all recipients share it.
type GraphPayload struct {
	G *Graph
}

// Kind implements model.Payload.
func (GraphPayload) Kind() string { return "DAG" }

// SupersedesOlder marks DAG snapshots as monotone: a process's graph only
// grows and every message carries all of it, so the newest pending snapshot
// from a sender subsumes the older ones (see model.SupersededPayload).
func (GraphPayload) SupersedesOlder() {}

// String implements model.Payload.
func (p GraphPayload) String() string { return fmt.Sprintf("DAG(%d nodes)", p.G.Len()) }

// Builder is the state core shared by every algorithm that embeds A_DAG
// (Fig. 1): the DAG-building loop of T_{D→Σν} (Fig. 2 lines 5–12) and
// T_{Σν→Σν+} (Fig. 3 lines 5–12) is A_DAG verbatim.
type Builder struct {
	P model.ProcessID
	K int // k_p: number of samples taken
	G *Graph
}

// NewBuilder returns the initial builder state for process p (Fig. 1
// lines 1–3).
func NewBuilder(p model.ProcessID) Builder {
	return Builder{P: p, G: NewGraph()}
}

// Clone deep-copies the builder.
func (b Builder) Clone() Builder {
	b.G = b.G.Clone()
	return b
}

// DoStep performs one iteration of the A_DAG loop (Fig. 1 lines 5–12):
// merge the received DAG (if any), take sample d as node (p, d, k_p+1) with
// edges from every other node, and send the updated DAG to every process.
// It returns the new node's index and the snapshot sends.
func (b *Builder) DoStep(m *model.Message, d model.FDValue, all model.ProcessSet) (int, []model.Send) {
	if m != nil {
		if pl, ok := m.Payload.(GraphPayload); ok {
			b.G.Union(pl.G)
		}
	}
	b.K++
	idx := b.G.AddSample(b.P, d, b.K)
	snap := GraphPayload{G: b.G.Clone()}
	return idx, model.Broadcast(all, snap)
}

// ADag is algorithm A_DAG (Fig. 1) as a standalone automaton, used to test
// the §4 lemmas about sample DAGs directly.
type ADag struct {
	n int
}

// NewADag returns the A_DAG automaton for an n-process system.
func NewADag(n int) *ADag {
	if n < 2 || n > model.MaxProcesses {
		panic(fmt.Sprintf("dag: invalid system size %d", n))
	}
	return &ADag{n: n}
}

// Name implements model.Automaton.
func (a *ADag) Name() string { return "A_DAG" }

// N implements model.Automaton.
func (a *ADag) N() int { return a.n }

// adagState wraps a Builder as a model.State.
type adagState struct {
	b Builder
}

// CloneState implements model.State.
func (s *adagState) CloneState() model.State { return &adagState{b: s.b.Clone()} }

// SampleGraph exposes the DAG for inspection.
func (s *adagState) SampleGraph() *Graph { return s.b.G }

// GraphHolder is implemented by states that carry a sample DAG.
type GraphHolder interface {
	SampleGraph() *Graph
}

// InitState implements model.Automaton.
func (a *ADag) InitState(p model.ProcessID) model.State {
	return &adagState{b: NewBuilder(p)}
}

// Step implements model.Automaton.
func (a *ADag) Step(p model.ProcessID, s model.State, m *model.Message, d model.FDValue) (model.State, []model.Send) {
	st := s.CloneState().(*adagState)
	_, sends := st.b.DoStep(m, d, model.FullSet(a.n))
	return st, sends
}
