package dag_test

import (
	"testing"

	"nuconsensus/internal/dag"
	"nuconsensus/internal/fd"
	"nuconsensus/internal/model"
	"nuconsensus/internal/sim"
)

func TestADagBuildsSharedDAG(t *testing.T) {
	n := 3
	pattern := model.NewFailurePattern(n)
	res, err := sim.Run(sim.Exec{
		Automaton: dag.NewADag(n),
		Pattern:   pattern,
		History:   fd.NewOmega(pattern, 0, 1),
		Scheduler: sim.NewFairScheduler(1, 0.8, 3),
		MaxSteps:  120,
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < n; p++ {
		g := res.Config.States[p].(dag.GraphHolder).SampleGraph()
		if g.Len() == 0 {
			t.Fatalf("p%d has an empty DAG", p)
		}
		// Everyone's DAG contains samples of everyone (Lemma 4.7's shadow).
		if got := g.SamplesOf(g.Descendants(0)); got != model.FullSet(n) {
			t.Errorf("p%d DAG participants = %v", p, got)
		}
	}
}

func TestADagStepIsPure(t *testing.T) {
	a := dag.NewADag(2)
	s0 := a.InitState(0)
	s1, _ := a.Step(0, s0, nil, fd.LeaderValue{Leader: 0})
	if s0.(dag.GraphHolder).SampleGraph().Len() != 0 {
		t.Error("Step mutated its input state")
	}
	if s1.(dag.GraphHolder).SampleGraph().Len() != 1 {
		t.Error("Step did not add a sample")
	}
}

func TestGraphPayloadSupersedes(t *testing.T) {
	var pl model.Payload = dag.GraphPayload{G: dag.NewGraph()}
	if _, ok := pl.(model.SupersededPayload); !ok {
		t.Error("GraphPayload must be superseded by newer snapshots")
	}
	if pl.Kind() != "DAG" || pl.String() == "" {
		t.Error("payload metadata wrong")
	}
}

// decideAfter is a trivial consensus-ish automaton: process p decides its
// proposal after taking `after` steps. It drives Simulate/DecidesAlong.
type decideAfter struct {
	n     int
	after int
}

type decideAfterState struct {
	steps   int
	after   int
	decided bool
}

func (s *decideAfterState) CloneState() model.State { c := *s; return &c }
func (s *decideAfterState) Decision() (int, bool)   { return 7, s.decided }

func (a decideAfter) Name() string { return "decideAfter" }
func (a decideAfter) N() int       { return a.n }
func (a decideAfter) InitState(model.ProcessID) model.State {
	return &decideAfterState{after: a.after}
}

func (a decideAfter) Step(_ model.ProcessID, s model.State, _ *model.Message, _ model.FDValue) (model.State, []model.Send) {
	st := s.CloneState().(*decideAfterState)
	st.steps++
	if st.steps >= st.after {
		st.decided = true
	}
	return st, nil
}

func TestDecidesAlong(t *testing.T) {
	path := []dag.Node{
		{P: 0, K: 1, D: fd.NullValue{}},
		{P: 1, K: 1, D: fd.NullValue{}},
		{P: 0, K: 2, D: fd.NullValue{}},
		{P: 0, K: 3, D: fd.NullValue{}},
	}
	aut := decideAfter{n: 2, after: 2}

	parts, v, ok := dag.DecidesAlong(aut, path, 0)
	if !ok || v != 7 {
		t.Fatalf("DecidesAlong = %v, %d", ok, v)
	}
	// p0 decides at its 2nd step, which is path index 2 → the shortest
	// deciding prefix has participants {p0, p1}.
	if parts != model.SetOf(0, 1) {
		t.Errorf("participants = %v", parts)
	}

	// p1 takes only one step on this path, so it never decides.
	if _, _, ok := dag.DecidesAlong(aut, path, 1); ok {
		t.Error("p1 must not decide along this path")
	}

	if got := dag.Participants(path); got != model.SetOf(0, 1) {
		t.Errorf("Participants = %v", got)
	}
}

func TestSimulateObserverStops(t *testing.T) {
	path := make([]dag.Node, 10)
	for i := range path {
		path[i] = dag.Node{P: 0, K: i + 1, D: fd.NullValue{}}
	}
	calls := 0
	dag.Simulate(decideAfter{n: 1, after: 100}, path, func(steps int, _ *model.Configuration) bool {
		calls = steps
		return steps == 4
	})
	if calls != 4 {
		t.Errorf("observer saw %d steps, want stop at 4", calls)
	}
}
