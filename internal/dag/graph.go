// Package dag implements the DAGs of failure-detector samples of §4: the
// DAG-building algorithm A_DAG (Fig. 1), the induced "fresh" subgraphs G|u,
// canonical paths, and the simulation of schedules of an arbitrary
// algorithm A that are compatible with DAG paths (the sets Sch(G, I) of
// §4.2). These are the engine of both transformation algorithms in
// internal/transform.
package dag

import (
	"fmt"

	"nuconsensus/internal/model"
)

// Node is a sample (q, d, k): process q obtained value d from its local
// failure-detector module when it queried it for the k-th time (§4.1).
type Node struct {
	P model.ProcessID
	K int
	D model.FDValue
}

// String implements fmt.Stringer.
func (n Node) String() string { return fmt.Sprintf("(%s,%s,%d)", n.P, n.D, n.K) }

// Key identifies a sample: distinct samplings yield distinct (P, K) pairs.
type Key struct {
	P model.ProcessID
	K int
}

// Key returns the node's identity.
func (n Node) Key() Key { return Key{P: n.P, K: n.K} }

// Graph is a DAG of samples. Nodes are stored in insertion order; an A_DAG
// execution maintains the invariant that every edge goes from an
// earlier-inserted node to a later-inserted one (graphs only grow and are
// exchanged wholesale, so any graph containing a node also contains all the
// nodes it was inserted after — see the Union assertion), which makes
// insertion order a topological order.
type Graph struct {
	nodes []Node
	index map[Key]int
	preds []bitset // preds[i] = indices of nodes with an edge into node i
}

// NewGraph returns the empty graph.
func NewGraph() *Graph {
	return &Graph{index: make(map[Key]int)}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns the node at index i.
func (g *Graph) Node(i int) Node { return g.nodes[i] }

// IndexOf returns the index of the node with key k, or -1.
func (g *Graph) IndexOf(k Key) int {
	if i, ok := g.index[k]; ok {
		return i
	}
	return -1
}

// HasEdge reports whether there is an edge u → v.
func (g *Graph) HasEdge(u, v int) bool { return g.preds[v].get(u) }

// AddSample appends the sample (p, d, k) and adds an edge from every other
// node to it (Fig. 1 line 10). It returns the new node's index.
func (g *Graph) AddSample(p model.ProcessID, d model.FDValue, k int) int {
	key := Key{P: p, K: k}
	if _, dup := g.index[key]; dup {
		panic(fmt.Sprintf("dag: duplicate sample %v", key))
	}
	i := len(g.nodes)
	g.nodes = append(g.nodes, Node{P: p, K: k, D: d})
	g.index[key] = i
	pr := newBitset(i + 1)
	for j := 0; j < i; j++ {
		pr.set(j)
	}
	g.preds = append(g.preds, pr)
	return i
}

// AddSampleWithPreds appends a sample with an explicit predecessor set —
// the wire decoder's entry point for reconstructing a received snapshot.
// Predecessor indices must be smaller than the new node's index.
func (g *Graph) AddSampleWithPreds(p model.ProcessID, d model.FDValue, k int, preds []int) int {
	key := Key{P: p, K: k}
	if _, dup := g.index[key]; dup {
		panic(fmt.Sprintf("dag: duplicate sample %v", key))
	}
	i := len(g.nodes)
	g.nodes = append(g.nodes, Node{P: p, K: k, D: d})
	g.index[key] = i
	pr := newBitset(i + 1)
	for _, u := range preds {
		if u >= i {
			panic(fmt.Sprintf("dag: predecessor %d of node %d violates insertion order", u, i))
		}
		pr.set(u)
	}
	g.preds = append(g.preds, pr)
	return i
}

// Union merges other into g (Fig. 1 line 7: G_p ← G_p ∪ m). New nodes are
// appended in other's insertion order; edges are unioned. It panics if the
// merge would break the earlier-to-later edge invariant, which cannot
// happen for graphs produced by a genuine A_DAG execution.
func (g *Graph) Union(other *Graph) {
	if other == nil {
		return
	}
	// Map other's indices to g's indices, appending missing nodes.
	xlat := make([]int, other.Len())
	for oi, n := range other.nodes {
		key := n.Key()
		gi, ok := g.index[key]
		if !ok {
			gi = len(g.nodes)
			g.nodes = append(g.nodes, n)
			g.index[key] = gi
			g.preds = append(g.preds, newBitset(gi+1))
		}
		xlat[oi] = gi
	}
	for oi := range other.nodes {
		gi := xlat[oi]
		g.preds[gi] = g.preds[gi].grow(len(g.nodes))
		other.preds[oi].forEach(func(opj int) {
			gj := xlat[opj]
			if gj >= gi {
				panic(fmt.Sprintf("dag: union would create edge %d→%d violating insertion-order invariant", gj, gi))
			}
			g.preds[gi].set(gj)
		})
	}
}

// Clone returns a deep copy of g. Nodes (and their FDValues) are immutable
// and shared.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes: append([]Node(nil), g.nodes...),
		index: make(map[Key]int, len(g.index)),
		preds: make([]bitset, len(g.preds)),
	}
	for k, v := range g.index {
		c.index[k] = v
	}
	for i, b := range g.preds {
		c.preds[i] = b.clone()
	}
	return c
}

// Descendants returns the set of nodes reachable from u, including u itself
// — the node set of the induced subgraph G|u of §4.1.
func (g *Graph) Descendants(u int) bitset {
	out := newBitset(len(g.nodes))
	out.set(u)
	// Edges respect insertion order, so a single forward scan suffices.
	for v := u + 1; v < len(g.nodes); v++ {
		reachable := false
		g.preds[v].forEach(func(w int) {
			if !reachable && out.get(w) {
				reachable = true
			}
		})
		if reachable {
			out.set(v)
		}
	}
	return out
}

// SamplesOf returns the set of processes owning nodes in mask.
func (g *Graph) SamplesOf(mask bitset) model.ProcessSet {
	var ps model.ProcessSet
	mask.forEach(func(i int) { ps = ps.Add(g.nodes[i].P) })
	return ps
}

// LongestPathFrom returns a maximum-length path of G that starts at u and
// stays within mask (which must contain u), as a slice of node indices.
// This is the canonical path used for the bounded schedule search: in fair
// executions the sample DAG is chain-dense (every insertion links from all
// known nodes), so the longest chain from a fresh u visits samples of every
// live process many times — it plays the role of the path g^∞ of Lemma 4.8.
func (g *Graph) LongestPathFrom(u int, mask bitset) []int {
	n := len(g.nodes)
	// best[v] = length of the longest masked path u → … → v; prev[v] backlink.
	best := make([]int, n)
	prev := make([]int, n)
	for i := range best {
		best[i] = -1
		prev[i] = -1
	}
	best[u] = 1
	for v := u + 1; v < n; v++ {
		if !mask.get(v) {
			continue
		}
		g.preds[v].forEach(func(w int) {
			if w >= u && best[w] > 0 && best[w]+1 > best[v] {
				best[v] = best[w] + 1
				prev[v] = w
			}
		})
	}
	end, bl := u, 1
	for v := u; v < n; v++ {
		if best[v] > bl {
			bl, end = best[v], v
		}
	}
	path := make([]int, 0, bl)
	for v := end; v != -1; v = prev[v] {
		path = append(path, v)
	}
	// Reverse into forward order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// OwnChainFrom returns the chain of p's own samples within mask starting
// at or after u (own samples are totally ordered, Observation 4.2). Used by
// the extraction's OwnChain ablation.
func (g *Graph) OwnChainFrom(u int, mask bitset, p model.ProcessID) []int {
	var out []int
	for v := u; v < len(g.nodes); v++ {
		if mask.get(v) && g.nodes[v].P == p {
			out = append(out, v)
		}
	}
	return out
}

// Nodes returns the nodes at the given indices.
func (g *Graph) Nodes(idx []int) []Node {
	out := make([]Node, len(idx))
	for i, v := range idx {
		out[i] = g.nodes[v]
	}
	return out
}
