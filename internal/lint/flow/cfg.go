// Package flow is the dataflow core under nuclint's flow-sensitive
// analyzers: a control-flow-graph builder over go/ast function bodies, a
// generic forward/backward worklist solver over lattice facts, and a
// small value-tracking layer (local variables, aliasing through simple
// assignments, escape classification). It is the offline analogue of
// golang.org/x/tools/go/cfg plus the solver those analyses hand-roll —
// kept on the standard library only, like the rest of internal/lint
// (see the note on internal/lint/analysis).
//
// The graph is intraprocedural and syntactic: one CFG per function body,
// blocks of statements in execution order, edges for branches, loops,
// switches, selects, labeled jumps and explicit panics. A single
// synthetic exit block terminates every path, so "on all paths P holds
// at exit" is a plain dataflow question. Deferred calls are NOT hoisted
// to the exit: a *ast.DeferStmt stays in the block where it executes, so
// a solver can track which defers are registered on which paths (the
// locksafe analyzer depends on that to credit `defer mu.Unlock()` only
// on paths that actually registered it).
package flow

import (
	"fmt"
	"go/ast"
	"strings"
)

// A CFG is the control-flow graph of one function body. Blocks[0] is the
// entry; Exit is the unique synthetic exit every return, panic and
// fall-off-the-end path reaches.
type CFG struct {
	Blocks []*Block
	Exit   *Block
}

// A Block is a maximal run of statements with no internal control
// transfer. Nodes holds the statements and control sub-expressions the
// block owns, in execution order; bodies of nested control statements
// live in their own blocks (use Inspect to walk a node without crossing
// into them).
type Block struct {
	Index int
	Kind  string // "entry", "if.then", "for.body", … (diagnostic aid)
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	Live  bool // reachable from the entry block
}

func (b *Block) String() string { return fmt.Sprintf("b%d(%s)", b.Index, b.Kind) }

// Format renders the graph structure for tests and debugging: one line
// per block with its kind, liveness and successor indices.
func (g *CFG) Format() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "%d %s", b.Index, b.Kind)
		if !b.Live {
			sb.WriteString(" dead")
		}
		sb.WriteString(" ->")
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " %d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// New builds the CFG of one function body. noReturn, when non-nil,
// reports calls that never return (beyond the built-in panic/os.Exit
// recognition); such calls end their block with an edge to Exit.
func New(body *ast.BlockStmt, noReturn func(*ast.CallExpr) bool) *CFG {
	b := &builder{cfg: &CFG{}, noReturn: noReturn, labels: map[string]*labelBlocks{}}
	entry := b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cur = entry
	b.stmtList(body.List)
	b.linkCur(b.cfg.Exit) // falling off the end returns
	markLive(b.cfg)
	for _, blk := range b.cfg.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.cfg
}

// builder carries the construction state: the current block (nil while
// the builder is in dead code after an unconditional transfer), the
// stack of break/continue targets, and the label table.
type builder struct {
	cfg      *CFG
	cur      *Block
	targets  *targets
	labels   map[string]*labelBlocks
	noReturn func(*ast.CallExpr) bool
}

// targets is one level of the break/continue stack. brk is always set;
// cont only for loops. label names the enclosing LabeledStmt, if any.
type targets struct {
	tail      *targets
	label     string
	brk, cont *Block
	isLoop    bool
	fallTo    *Block // next case body, for fallthrough
}

// labelBlocks resolves goto targets: the block a `goto L` jumps to,
// created on first reference and adopted when `L:` is reached.
type labelBlocks struct {
	target  *Block
	adopted bool
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// add appends a node to the current block, materializing an unreachable
// block when the builder is in dead code (so every statement stays
// addressable by analyzers, just on a dead block).
func (b *builder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// link adds the edge from → to.
func (b *builder) link(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// linkCur closes the current block with an edge to `to` and leaves the
// builder in dead code.
func (b *builder) linkCur(to *Block) {
	if b.cur != nil {
		b.link(b.cur, to)
		b.cur = nil
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.add(s.Init)
		b.add(s.Cond)
		cond := b.cur
		if cond == nil { // dead if: still build the arms, on dead blocks
			cond = b.newBlock("unreachable")
		}
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		b.link(cond, then)
		els := done
		if s.Else != nil {
			els = b.newBlock("if.else")
		}
		b.link(cond, els)
		b.cur = then
		b.stmt(s.Body)
		b.linkCur(done)
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else)
			b.linkCur(done)
		}
		b.cur = done

	case *ast.ForStmt:
		b.loop(s, "", s.Init, s.Cond, s.Post, s.Body)

	case *ast.RangeStmt:
		b.rangeLoop(s, "")

	case *ast.LabeledStmt:
		b.labeled(s)

	case *ast.SwitchStmt:
		b.add(s.Init)
		b.add(s.Tag)
		b.switchBody(s.Body, "", "switch")

	case *ast.TypeSwitchStmt:
		b.add(s.Init)
		b.add(s.Assign)
		b.switchBody(s.Body, "", "typeswitch")

	case *ast.SelectStmt:
		b.selectStmt(s, "")

	case *ast.ReturnStmt:
		b.add(s)
		b.linkCur(b.cfg.Exit)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.callExits(call) {
			b.linkCur(b.cfg.Exit)
		}

	default:
		// Assign, IncDec, Decl, Send, Defer, Go, Empty: plain statements.
		b.add(s)
	}
}

// loop builds for-loops: init → head(cond) → body → post → head, with
// done as the break target and post (or head) as the continue target.
func (b *builder) loop(s ast.Stmt, label string, init ast.Stmt, cond ast.Expr, post ast.Stmt, body *ast.BlockStmt) {
	b.add(init)
	head := b.newBlock("for.head")
	b.linkCur(head)
	bodyB := b.newBlock("for.body")
	done := b.newBlock("for.done")
	b.cur = head
	b.add(cond)
	b.link(head, bodyB)
	if cond != nil {
		b.link(head, done)
	}
	contTo := head
	var postB *Block
	if post != nil {
		postB = b.newBlock("for.post")
		contTo = postB
	}
	b.targets = &targets{tail: b.targets, label: label, brk: done, cont: contTo, isLoop: true}
	b.cur = bodyB
	b.stmt(body)
	b.targets = b.targets.tail
	b.linkCur(contTo)
	if postB != nil {
		b.cur = postB
		b.add(post)
		b.linkCur(head)
	}
	b.cur = done
	_ = s
}

// rangeLoop builds range loops. The RangeStmt itself sits in the head
// block, standing for the per-iteration key/value assignment and the
// (once-evaluated) range operand; Inspect walks those parts without
// descending into the body.
func (b *builder) rangeLoop(s *ast.RangeStmt, label string) {
	head := b.newBlock("range.head")
	b.linkCur(head)
	b.cur = head
	b.add(s)
	bodyB := b.newBlock("range.body")
	done := b.newBlock("range.done")
	b.link(head, bodyB)
	b.link(head, done)
	b.targets = &targets{tail: b.targets, label: label, brk: done, cont: head, isLoop: true}
	b.cur = bodyB
	b.stmt(s.Body)
	b.targets = b.targets.tail
	b.linkCur(head)
	b.cur = done
}

// labeled peels a LabeledStmt: loops and switches get the label on their
// break/continue targets; any statement becomes a goto target.
func (b *builder) labeled(s *ast.LabeledStmt) {
	lb := b.labelTarget(s.Label.Name)
	lb.adopted = true
	b.linkCur(lb.target)
	b.cur = lb.target
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.loop(inner, s.Label.Name, inner.Init, inner.Cond, inner.Post, inner.Body)
	case *ast.RangeStmt:
		b.rangeLoop(inner, s.Label.Name)
	case *ast.SwitchStmt:
		b.add(inner.Init)
		b.add(inner.Tag)
		b.switchBody(inner.Body, s.Label.Name, "switch")
	case *ast.TypeSwitchStmt:
		b.add(inner.Init)
		b.add(inner.Assign)
		b.switchBody(inner.Body, s.Label.Name, "typeswitch")
	case *ast.SelectStmt:
		b.selectStmt(inner, s.Label.Name)
	default:
		b.stmt(s.Stmt)
	}
}

// labelTarget returns (creating on first use) the jump block of a label.
func (b *builder) labelTarget(name string) *labelBlocks {
	lb := b.labels[name]
	if lb == nil {
		lb = &labelBlocks{target: b.newBlock("label." + name)}
		b.labels[name] = lb
	}
	return lb
}

// switchBody builds the clause blocks of a switch/type-switch: the head
// branches to every case body (and to done when there is no default);
// fallthrough links a body to the next.
func (b *builder) switchBody(body *ast.BlockStmt, label, kind string) {
	head := b.cur
	if head == nil {
		head = b.newBlock("unreachable")
	}
	done := b.newBlock(kind + ".done")

	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		bodies[i] = b.newBlock(kind + ".case")
		b.link(head, bodies[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.link(head, done)
	}
	for i, cc := range clauses {
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		var fallTo *Block
		if i+1 < len(clauses) {
			fallTo = bodies[i+1]
		}
		b.targets = &targets{tail: b.targets, label: label, brk: done, fallTo: fallTo}
		b.stmtList(cc.Body)
		b.targets = b.targets.tail
		b.linkCur(done)
	}
	b.cur = done
}

// selectStmt builds select: the head branches to one block per comm
// clause; each clause block owns its comm statement.
func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	if head == nil {
		head = b.newBlock("unreachable")
	}
	done := b.newBlock("select.done")
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("select.case")
		b.link(head, blk)
		b.cur = blk
		b.add(cc.Comm)
		b.targets = &targets{tail: b.targets, label: label, brk: done}
		b.stmtList(cc.Body)
		b.targets = b.targets.tail
		b.linkCur(done)
	}
	b.cur = done
}

// branch resolves break/continue/goto/fallthrough against the target
// stack and label table.
func (b *builder) branch(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok.String() {
	case "break":
		for t := b.targets; t != nil; t = t.tail {
			if s.Label == nil || t.label == s.Label.Name {
				b.linkCur(t.brk)
				return
			}
		}
	case "continue":
		for t := b.targets; t != nil; t = t.tail {
			if t.isLoop && (s.Label == nil || t.label == s.Label.Name) {
				b.linkCur(t.cont)
				return
			}
		}
	case "goto":
		if s.Label != nil {
			b.linkCur(b.labelTarget(s.Label.Name).target)
			return
		}
	case "fallthrough":
		for t := b.targets; t != nil; t = t.tail {
			if t.fallTo != nil {
				b.linkCur(t.fallTo)
				return
			}
		}
	}
	b.cur = nil // malformed branch: treat as opaque transfer
}

// callExits reports whether a call statement terminates the function:
// the built-in panic, os.Exit / runtime.Goexit / log.Fatal* by name, or
// whatever the caller's noReturn hook recognizes.
func (b *builder) callExits(call *ast.CallExpr) bool {
	if b.noReturn != nil && b.noReturn(call) {
		return true
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fn.X.(*ast.Ident); ok {
			switch pkg.Name + "." + fn.Sel.Name {
			case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
				return true
			}
		}
	}
	return false
}

// markLive flags every block reachable from the entry.
func markLive(g *CFG) {
	var dfs func(b *Block)
	dfs = func(b *Block) {
		if b.Live {
			return
		}
		b.Live = true
		for _, s := range b.Succs {
			dfs(s)
		}
	}
	if len(g.Blocks) > 0 {
		dfs(g.Blocks[0])
	}
}

// Inspect walks the parts of a block node that the block owns, calling
// fn in ast.Inspect style. It does not descend into the body of a
// RangeStmt (only X, Key and Value are owned by the head block) nor into
// FuncLit bodies (a closure is a separate function with its own CFG; the
// FuncLit node itself is still visited).
func Inspect(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.RangeStmt:
			if !fn(m) {
				return false
			}
			for _, part := range []ast.Node{m.Key, m.Value, m.X} {
				if part != nil {
					Inspect(part, fn)
				}
			}
			return false
		case *ast.FuncLit:
			return fn(m) && false
		}
		return fn(m)
	})
}
